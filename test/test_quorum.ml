(** Tests for quorum-based termination ({!Engine.Runtime.Quorum}): the
    partition-tolerant alternative to the paper's decision rule, trading
    liveness (minorities block) for safety under unreliable failure
    detection. *)

module R = Engine.Runtime
module FP = Engine.Failure_plan

let rb3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))
let rb3_5 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 5))

let qcfg ?votes ?plan ?partition ?(seed = 1) rb n =
  R.config ?votes ?plan ?partition ~seed ~termination:(R.Quorum (R.majority n)) rb

let test_majority () =
  Alcotest.(check int) "majority of 3" 2 (R.majority 3);
  Alcotest.(check int) "majority of 4" 3 (R.majority 4);
  Alcotest.(check int) "majority of 5" 3 (R.majority 5)

let test_failure_free_unchanged () =
  let r = R.run (qcfg (Lazy.force rb3) 3) in
  List.iter
    (fun (s : R.site_report) ->
      Alcotest.(check (option Helpers.outcome)) "committed" (Some Core.Types.Committed) s.outcome)
    r.R.reports

let test_abort_side_termination () =
  (* coordinator dies before the prepare round: both survivors report w,
     2 unprepared >= quorum 2 -> abort *)
  let plan = FP.crash_at_step ~site:1 ~step:1 ~mode:(FP.After_logging 0) in
  let r = R.run (qcfg ~plan (Lazy.force rb3) 3) in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  List.iter
    (fun (s : R.site_report) ->
      if s.operational then
        Alcotest.(check (option Helpers.outcome)) "aborted" (Some Core.Types.Aborted) s.outcome)
    r.R.reports

let test_commit_side_termination () =
  (* coordinator dies after everyone is prepared: 2 prepared >= 2 ->
     move up and commit *)
  let plan = FP.crash_at_step ~site:1 ~step:2 ~mode:(FP.After_logging 0) in
  let r = R.run (qcfg ~plan (Lazy.force rb3) 3) in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  List.iter
    (fun (s : R.site_report) ->
      if s.operational then
        Alcotest.(check (option Helpers.outcome)) "committed" (Some Core.Types.Committed) s.outcome)
    r.R.reports

let test_lone_survivor_blocks () =
  (* the price of quorum termination: with n-1 failures the lone survivor
     cannot assemble a quorum and blocks — where Skeen's rule decides *)
  let plan =
    FP.make
      ~step_crashes:
        [
          { FP.site = 1; step = 1; mode = FP.After_logging 0 };
          (* site 2 dies right after casting its yes vote *)
          { FP.site = 2; step = 0; mode = FP.After_transition };
        ]
      ()
  in
  let quorum = R.run (qcfg ~plan (Lazy.force rb3) 3) in
  Alcotest.(check int) "quorum: survivor blocked" 1 quorum.R.blocked_operational;
  Alcotest.(check bool) "quorum: still consistent" true quorum.R.consistent;
  let skeen = R.run (R.config ~plan (Lazy.force rb3)) in
  Alcotest.(check int) "skeen: survivor decides" 0 skeen.R.blocked_operational

let test_partition_safe () =
  (* the E13 split-brain scenario: under the quorum rule the minority
     blocks instead of aborting, so consistency survives the partition *)
  let r =
    R.run (qcfg ~partition:(1.5, 200.0, [ [ 1; 2 ]; [ 3 ] ]) (Lazy.force rb3) 3)
  in
  Alcotest.(check bool) "consistent under partition" true r.R.consistent;
  (* after healing everyone converges on commit *)
  List.iter
    (fun (s : R.site_report) ->
      Alcotest.(check (option Helpers.outcome))
        (Fmt.str "site %d converged" s.site)
        (Some Core.Types.Committed) s.outcome)
    r.R.reports

let test_partition_minority_blocks_until_heal () =
  (* a partition that never heals: the majority decides, the minority
     stays blocked — consistent, just not live *)
  let r =
    R.run (qcfg ~partition:(1.5, 9_999.0, [ [ 1; 2 ]; [ 3 ] ]) (Lazy.force rb3) 3)
  in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  let outcome s = (List.nth r.R.reports (s - 1)).R.outcome in
  Alcotest.(check (option Helpers.outcome)) "majority committed" (Some Core.Types.Committed) (outcome 1);
  Alcotest.(check (option Helpers.outcome)) "minority undecided" None (outcome 3)

let test_five_sites_partition () =
  (* 2-3 split on five sites during the prepare window: only the
     three-site side can decide *)
  let r =
    R.run (qcfg ~partition:(4.5, 400.0, [ [ 1; 2 ]; [ 3; 4; 5 ] ]) (Lazy.force rb3_5) 5)
  in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  List.iter
    (fun (s : R.site_report) ->
      Alcotest.(check bool) (Fmt.str "site %d decided after heal" s.site) true (s.outcome <> None))
    r.R.reports

let test_cascade_below_quorum_blocks () =
  (* backup dies mid move-up leaving a single survivor: below the quorum
     it must block — safety over liveness *)
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 1; step = 2; mode = FP.After_logging 0 } ]
      ~move_crashes:[ (2, 0) ] ()
  in
  let r = R.run (qcfg ~plan (Lazy.force rb3) 3) in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  Alcotest.(check int) "survivor blocked" 1 r.R.blocked_operational

let test_cascade_above_quorum_commits () =
  (* five sites: coordinator dies pre-broadcast, first backup dies after
     one move; three survivors still form a quorum of prepared sites and
     the next backup finishes the commit (monotone counts) *)
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 1; step = 2; mode = FP.After_logging 0 } ]
      ~move_crashes:[ (2, 1) ] ()
  in
  let r = R.run (qcfg ~plan (Lazy.force rb3_5) 5) in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  List.iter
    (fun (s : R.site_report) ->
      if s.operational && not s.ever_crashed then
        Alcotest.(check (option Helpers.outcome))
          (Fmt.str "survivor %d committed" s.site)
          (Some Core.Types.Committed) s.outcome)
    r.R.reports

let test_sweep_consistent () =
  (* the full single-crash sweep stays consistent under the quorum rule *)
  let modes = [ FP.Before_transition; FP.After_logging 0; FP.After_logging 1; FP.After_transition ] in
  List.iter
    (fun site ->
      List.iter
        (fun step ->
          List.iter
            (fun mode ->
              let plan = FP.crash_at_step ~site ~step ~mode in
              let r = R.run (qcfg ~plan ~seed:(site + step) (Lazy.force rb3) 3) in
              Alcotest.(check bool)
                (Fmt.str "site %d step %d consistent" site step)
                true r.R.consistent)
            modes)
        [ 0; 1; 2; 3 ])
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "majority sizes" `Quick test_majority;
    Alcotest.test_case "failure-free unchanged" `Quick test_failure_free_unchanged;
    Alcotest.test_case "abort-side termination" `Quick test_abort_side_termination;
    Alcotest.test_case "commit-side termination" `Quick test_commit_side_termination;
    Alcotest.test_case "lone survivor blocks (the trade-off)" `Quick test_lone_survivor_blocks;
    Alcotest.test_case "partition-safe (fixes E13)" `Quick test_partition_safe;
    Alcotest.test_case "unhealed partition: minority blocks" `Quick
      test_partition_minority_blocks_until_heal;
    Alcotest.test_case "five sites, 2-3 split" `Quick test_five_sites_partition;
    Alcotest.test_case "cascade below quorum blocks" `Quick test_cascade_below_quorum_blocks;
    Alcotest.test_case "cascade above quorum commits" `Quick test_cascade_above_quorum_commits;
    Alcotest.test_case "single-crash sweep consistent" `Slow test_sweep_consistent;
  ]
