(** Tests for the engine substrate: {!Engine.Wal}, {!Engine.Failure_plan}
    and {!Engine.Rulebook}. *)

module W = Engine.Wal
module FP = Engine.Failure_plan
module RB = Engine.Rulebook

(* ---------------- Wal ---------------- *)

let test_wal_replay () =
  let w = W.create () in
  W.append w (W.Began { protocol = "x"; initial = "q" });
  Alcotest.(check (option string)) "initial" (Some "q") (W.last_state w);
  W.append w (W.Transitioned { to_state = "w"; vote = Some Core.Types.Yes });
  Alcotest.(check (option string)) "after transition" (Some "w") (W.last_state w);
  Alcotest.(check bool) "voted yes" true (W.voted_yes w);
  W.append w (W.Moved { to_state = "p" });
  Alcotest.(check (option string)) "after move" (Some "p") (W.last_state w);
  Alcotest.(check (option Helpers.outcome)) "undecided" None (W.decided w);
  W.append w (W.Decided Core.Types.Committed);
  Alcotest.(check (option Helpers.outcome)) "decided" (Some Core.Types.Committed) (W.decided w)

let test_wal_no_vote () =
  let w = W.create () in
  W.append w (W.Began { protocol = "x"; initial = "q" });
  W.append w (W.Transitioned { to_state = "a"; vote = Some Core.Types.No });
  Alcotest.(check bool) "no vote is not a yes vote" false (W.voted_yes w)

let test_wal_store () =
  let store = W.Store.create ~n_sites:3 () in
  W.append (W.Store.log store ~site:2) (W.Decided Core.Types.Aborted);
  Alcotest.(check int) "site 2 log grew" 1 (W.length (W.Store.log store ~site:2));
  Alcotest.(check int) "site 1 untouched" 0 (W.length (W.Store.log store ~site:1))

(* ---------------- Failure_plan ---------------- *)

let test_plan_lookup () =
  let plan = FP.crash_at_step ~site:2 ~step:1 ~mode:(FP.After_logging 1) in
  Alcotest.(check bool) "found" true (FP.find_step_crash plan ~site:2 ~step:1 = Some (FP.After_logging 1));
  Alcotest.(check bool) "other step" true (FP.find_step_crash plan ~site:2 ~step:0 = None);
  Alcotest.(check bool) "other site" true (FP.find_step_crash plan ~site:1 ~step:1 = None)

let test_plan_crashing_sites () =
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 1; step = 0; mode = FP.Before_transition } ]
      ~timed_crashes:[ (3, 4.0) ] ~move_crashes:[ (2, 0) ] ()
  in
  Alcotest.(check (list int)) "all crashing sites" [ 1; 2; 3 ] (FP.crashing_sites plan)

(* ---------------- Rulebook ---------------- *)

let test_rulebook_3pc () =
  let rb = RB.compile (Core.Catalog.central_3pc 3) in
  Alcotest.(check bool) "nonblocking" true rb.RB.nonblocking;
  Alcotest.(check int) "resilience" 2 rb.RB.resilience;
  List.iter
    (fun site ->
      Alcotest.check Helpers.verdict
        (Fmt.str "site %d p -> commit" site)
        (RB.Decide Core.Types.Committed) (RB.verdict rb ~site ~state:"p");
      Alcotest.check Helpers.verdict
        (Fmt.str "site %d w -> abort" site)
        (RB.Decide Core.Types.Aborted) (RB.verdict rb ~site ~state:"w"))
    [ 1; 2; 3 ]

let test_rulebook_2pc () =
  let rb = RB.compile (Core.Catalog.central_2pc 3) in
  Alcotest.(check bool) "blocking" false rb.RB.nonblocking;
  (* slaves block in w; the coordinator can abort from w *)
  Alcotest.check Helpers.verdict "slave w blocked" RB.Blocked (RB.verdict rb ~site:2 ~state:"w");
  Alcotest.check Helpers.verdict "coordinator w aborts" (RB.Decide Core.Types.Aborted)
    (RB.verdict rb ~site:1 ~state:"w");
  Alcotest.check Helpers.verdict "slave c commits" (RB.Decide Core.Types.Committed)
    (RB.verdict rb ~site:2 ~state:"c")

let test_rulebook_final_states () =
  let rb = RB.compile (Core.Catalog.decentralized_2pc 2) in
  Alcotest.check Helpers.verdict "c decides commit" (RB.Decide Core.Types.Committed)
    (RB.verdict rb ~site:1 ~state:"c");
  Alcotest.check Helpers.verdict "a decides abort" (RB.Decide Core.Types.Aborted)
    (RB.verdict rb ~site:1 ~state:"a")

let test_rulebook_unknown_state_blocked () =
  let rb = RB.compile (Core.Catalog.central_2pc 2) in
  Alcotest.check Helpers.verdict "unknown state conservatively blocked" RB.Blocked
    (RB.verdict rb ~site:1 ~state:"zz")

let test_rulebook_consistent_with_theorem () =
  (* a state is Blocked in the rulebook iff it appears in a theorem
     violation *)
  List.iter
    (fun p ->
      let graph = Core.Reachability.build p in
      let rb = RB.compile p in
      let report = Core.Nonblocking.analyze graph in
      let cs = Core.Concurrency.compute graph in
      List.iter
        (fun site ->
          List.iter
            (fun state ->
              let blocked = RB.verdict rb ~site ~state = RB.Blocked in
              let violated =
                List.exists
                  (fun v -> v.Core.Nonblocking.site = site && v.Core.Nonblocking.state = state)
                  report.Core.Nonblocking.violations
              in
              Alcotest.(check bool) (Fmt.str "%s (%d,%s)" p.Core.Protocol.name site state) violated
                blocked)
            (Core.Concurrency.occupied_states cs ~site))
        (Core.Protocol.sites p))
    [ Core.Catalog.central_2pc 3; Core.Catalog.central_3pc 3; Core.Catalog.decentralized_2pc 2 ]

let suite =
  [
    Alcotest.test_case "wal replay" `Quick test_wal_replay;
    Alcotest.test_case "wal no-vote" `Quick test_wal_no_vote;
    Alcotest.test_case "wal store" `Quick test_wal_store;
    Alcotest.test_case "failure plan lookup" `Quick test_plan_lookup;
    Alcotest.test_case "failure plan crashing sites" `Quick test_plan_crashing_sites;
    Alcotest.test_case "rulebook 3PC" `Quick test_rulebook_3pc;
    Alcotest.test_case "rulebook 2PC" `Quick test_rulebook_2pc;
    Alcotest.test_case "rulebook final states" `Quick test_rulebook_final_states;
    Alcotest.test_case "rulebook unknown state" `Quick test_rulebook_unknown_state_blocked;
    Alcotest.test_case "rulebook = theorem violations" `Quick test_rulebook_consistent_with_theorem;
  ]
