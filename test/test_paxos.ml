(** Paxos Commit, the third protocol family: KV decision-replication
    liveness under the schedules that block 2PC, ballot/epoch
    monotonicity against the PR-5 election encoding, and the engine-side
    three-way fault differential. *)

module KC = Kv.Chaos_db
module KN = Kv.Node

let bank_cfg ?(protocol = KN.Paxos 1) ?(seed = 11) ?(crashes = []) ?(recoveries = [])
    ?(lease_faults = []) () =
  Kv.Db.config ~n_sites:4 ~protocol ~seed ~crashes ~recoveries ~lease_faults
    ~initial_data:(Kv.Workload.bank_initial ~accounts:24 ~initial_balance:100) ()

let bank_wl ?(n_txns = 80) ~seed () =
  let rng = Sim.Rng.create ~seed in
  Kv.Workload.bank rng ~n_txns ~accounts:24 ~arrival_rate:0.7

let expected_total = Kv.Workload.bank_total ~accounts:24 ~initial_balance:100

(* ---------------- failure-free: Paxos is a working commit protocol ---------------- *)

let test_paxos_no_failures () =
  let r = Kv.Db.run (bank_cfg ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check int) "all committed" 80 r.Kv.Db.committed;
  Alcotest.(check int) "none pending" 0 r.Kv.Db.pending;
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "bank invariant" expected_total r.Kv.Db.storage_totals

let test_paxos_f0_degenerates_to_2pc_cost () =
  (* Gray & Lamport's observation: F=0 Paxos Commit IS 2PC up to the
     coordinator's self-directed accept round *)
  let r2 = Kv.Db.run (bank_cfg ~protocol:KN.Two_phase ()) (bank_wl ~seed:11 ()) in
  let r0 = Kv.Db.run (bank_cfg ~protocol:(KN.Paxos 0) ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check int) "same commits" r2.Kv.Db.committed r0.Kv.Db.committed;
  Alcotest.(check int) "bank invariant" expected_total r0.Kv.Db.storage_totals

let test_paxos_replication_costs_messages () =
  (* the price of F=1 survival: one accept round across 3 acceptors *)
  let r2 = Kv.Db.run (bank_cfg ~protocol:KN.Two_phase ()) (bank_wl ~seed:11 ()) in
  let r1 = Kv.Db.run (bank_cfg ~protocol:(KN.Paxos 1) ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check bool) "paxos f=1 sends more messages" true
    (r1.Kv.Db.messages_sent > r2.Kv.Db.messages_sent)

(* ---------------- the 2PC-blocking schedule: Paxos stays live ---------------- *)

(* single cross-site transfer, coordinator crashes in the vote window:
   2PC leaves the transaction pending forever; Paxos F=1 recovers the
   (free) instance through a standby acceptor and aborts it. *)
let blocking_run protocol =
  let n_sites = 3 in
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 3) (List.init 100 Kv.Workload.key_name) in
  let txn = { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, -5); Kv.Txn.Add (k2, 5) ] } in
  let wl = [ (1.0, txn) ] in
  let coord = Kv.Txn.coordinator ~n_sites txn in
  Kv.Db.run
    (Kv.Db.config ~n_sites ~protocol ~seed:3 ~crashes:[ (coord, 3.05) ]
       ~initial_data:[ (k1, 100); (k2, 100) ] ())
    wl

let test_coordinator_crash_blocks_2pc_not_paxos () =
  let r2 = blocking_run KN.Two_phase in
  let rp = blocking_run (KN.Paxos 1) in
  Alcotest.(check int) "2pc: blocked in doubt" 1 r2.Kv.Db.pending;
  Alcotest.(check int) "paxos f=1: resolved" 0 rp.Kv.Db.pending;
  Alcotest.(check bool) "paxos: no site left in doubt" true (rp.Kv.Db.in_doubt = []);
  Alcotest.(check bool) "paxos: atomicity" true rp.Kv.Db.atomicity_ok

let test_paxos_survives_coordinator_crash_mid_run () =
  (* a coordinator dies mid-run and never comes back: every transaction
     still resolves, the bank invariant holds on the survivors *)
  (* transactions submitted TO the dead site after it crashed never start
     and stay pending for any protocol; the nonblocking claim is that no
     surviving site ends the run holding locks in doubt *)
  let r = Kv.Db.run (bank_cfg ~crashes:[ (2, 40.0) ] ()) (bank_wl ~seed:13 ()) in
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok;
  Alcotest.(check bool) "no operational site in doubt" true (r.Kv.Db.in_doubt = []);
  Alcotest.(check int) "bank invariant" expected_total r.Kv.Db.storage_totals

(* ---------------- lease faults: safety under a live deposed leader ---------------- *)

let test_lease_faults_are_safe () =
  (* inject lease expiries while every coordinator is alive: standby
     acceptors race the live leaders at higher ballots; fencing must keep
     every decision consistent *)
  let r = Kv.Db.run (bank_cfg ~lease_faults:[ 20.0; 45.0; 70.0 ] ()) (bank_wl ~seed:17 ()) in
  Alcotest.(check bool) "atomicity under lease races" true r.Kv.Db.atomicity_ok;
  Alcotest.(check bool) "no outcome contradiction" true (not r.Kv.Db.outcome_contradiction);
  Alcotest.(check int) "bank invariant" expected_total r.Kv.Db.storage_totals;
  Alcotest.(check int) "nothing left pending" 0 r.Kv.Db.pending

let test_lease_fault_noop_under_2pc_3pc () =
  (* the injection is protocol-gated: 2PC/3PC runs are byte-identical
     with and without lease faults *)
  List.iter
    (fun protocol ->
      let a = Kv.Db.run (bank_cfg ~protocol ()) (bank_wl ~seed:11 ()) in
      let b = Kv.Db.run (bank_cfg ~protocol ~lease_faults:[ 25.0; 50.0 ] ()) (bank_wl ~seed:11 ()) in
      Alcotest.(check int) "committed unchanged" a.Kv.Db.committed b.Kv.Db.committed;
      Alcotest.(check int) "aborted unchanged" a.Kv.Db.aborted b.Kv.Db.aborted)
    [ KN.Two_phase; KN.Three_phase ]

(* ---------------- ballot/epoch monotonicity (satellite) ---------------- *)

let test_ballots_never_reuse_epoch_site () =
  (* Paxos ballots ride the PR-5 epoch encoding: across coordinator
     crashes and lease races, no site may assume leadership of the same
     transaction twice at one epoch, and no (txn, epoch) pair may be
     claimed by two sites *)
  let r =
    Kv.Db.run
      (bank_cfg ~crashes:[ (2, 30.0); (3, 60.0) ] ~recoveries:[ (2, 80.0) ]
         ~lease_faults:[ 45.0 ] ())
      (bank_wl ~seed:19 ())
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (txn, site, epoch) ->
      (match Hashtbl.find_opt seen (txn, epoch) with
      | Some site' when site' <> site ->
          Alcotest.failf "(txn %d, epoch %d) claimed by sites %d and %d" txn epoch site' site
      | Some _ -> Alcotest.failf "site %d re-emitted (txn %d, epoch %d)" site txn epoch
      | None -> ());
      Hashtbl.replace seen (txn, epoch) site;
      (* recovery ballots must outrank every possible round-0 coordinator
         ballot (site - 1 < n_sites) or adoption could be skipped *)
      Alcotest.(check bool)
        (Fmt.str "recovery epoch %d outranks all round-0 ballots" epoch)
        true (epoch >= 4))
    r.Kv.Db.directive_epochs

(* ---------------- chaos sweep: the five oracles hold ---------------- *)

let acceptor_profile =
  {
    KC.default_profile with
    Sim.Nemesis.p_acceptor_crash = 0.5;
    acceptor_sites = [ 1; 2; 3 ];
    max_acceptor_crashes = 1;
    p_lease_fault = 0.3;
  }

let test_paxos_sweep_clean () =
  let s =
    KC.sweep ~profile:acceptor_profile ~protocol:(KN.Paxos 1) ~n_sites:4 ~k:1 ~seeds:50 ()
  in
  Alcotest.(check int) "all seeds ran" 50 s.KC.seeds_run;
  match s.KC.failing with
  | [] -> ()
  | (seed, vs, plan) :: _ ->
      Alcotest.failf "seed %d violates %a under %s" seed
        (Fmt.list ~sep:Fmt.comma KC.pp_violation)
        vs
        (Engine.Failure_plan.to_string (Engine.Failure_plan.of_schedule plan))

(* ================= engine harness: vote-level Paxos Commit ================= *)

module EP = Engine.Paxos
module EC = Engine.Chaos
module FP = Engine.Failure_plan

let rb_2pc3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_2pc 3))

let ep_result ?votes ?(plan = FP.none) ?(n_sites = 4) ?(f = 1) ?(seed = 7) () =
  let cfg = EP.config ?votes ~plan ~n_sites ~f ~seed () in
  (cfg, EP.run cfg)

let test_engine_paxos_commits_failure_free () =
  let cfg, r = ep_result () in
  Alcotest.(check bool) "committed" true (r.Engine.Runtime.global_outcome = Some Core.Types.Committed);
  Alcotest.(check bool) "everyone decided" true r.Engine.Runtime.all_operational_decided;
  Alcotest.(check bool) "consistent" true r.Engine.Runtime.consistent;
  Alcotest.(check int) "no oracle violations" 0 (List.length (EP.violations ~cfg r))

let test_engine_paxos_no_vote_aborts () =
  let cfg, r = ep_result ~votes:[ (3, Core.Types.No) ] () in
  Alcotest.(check bool) "aborted" true (r.Engine.Runtime.global_outcome = Some Core.Types.Aborted);
  Alcotest.(check bool) "everyone decided" true r.Engine.Runtime.all_operational_decided;
  Alcotest.(check int) "no oracle violations" 0 (List.length (EP.violations ~cfg r))

let test_engine_replication_costs_messages () =
  let _, r0 = ep_result ~f:0 () in
  let _, r1 = ep_result ~f:1 () in
  Alcotest.(check bool) "f=1 sends more messages" true
    (r1.Engine.Runtime.messages_sent > r0.Engine.Runtime.messages_sent)

let test_catalog_projection_model_checks_blocking () =
  (* the catalog's single-site projection of Paxos Commit is 2PC-shaped:
     the model checker and the theorem agree it is safe but blocking —
     the nonblocking win lives in the replicated coordinator, which only
     the runtime harnesses exercise *)
  let module MC = Engine.Model_check in
  let rb = Engine.Rulebook.compile (Core.Catalog.paxos_commit 3) in
  let r = MC.run { MC.rulebook = rb; max_crashes = 1; limit = 4_000_000; rule = `Skeen } in
  Alcotest.(check bool) "projection safe under 1 crash" true r.MC.safe;
  Alcotest.(check bool) "projection blocks (like 2PC)" false r.MC.nonblocking;
  let n = Core.Nonblocking.analyze_protocol (Core.Catalog.paxos_commit 3) in
  Alcotest.(check bool) "theorem agrees" false n.Core.Nonblocking.nonblocking

(* the seed-35 chaos counterexample: the 2PC coordinator dies before its
   first transition and every participant blocks forever *)
let coordinator_blocking_plan = "step-crash site=1 step=1 mode=before"

let has oracle vs = List.exists (fun (v : EC.violation) -> v.EC.oracle = oracle) vs

let test_pinned_coordinator_crash_blocks_2pc_not_paxos () =
  let r2, v2 =
    EC.run_plan (Lazy.force rb_2pc3) ~plan:(FP.of_string_exn coordinator_blocking_plan) ~seed:35 ()
  in
  Alcotest.(check bool) "2pc: operational sites blocked" true
    (r2.Engine.Runtime.blocked_operational > 0);
  Alcotest.(check bool) "2pc: progress violation" true (has EC.Progress v2);
  let cfg, rp =
    ep_result ~plan:(FP.of_string_exn coordinator_blocking_plan) ~n_sites:3 ~f:1 ~seed:35 ()
  in
  Alcotest.(check bool) "paxos f=1: every survivor decides" true
    rp.Engine.Runtime.all_operational_decided;
  Alcotest.(check int) "paxos f=1: clean on all five oracles" 0
    (List.length (EP.violations ~cfg rp))

(* the PR-5 three-fault split-brain plan that forces fencing in 3PC:
   coordinator dies mid-broadcast, a backup stalls through the election,
   the elected backup decides and crashes before announcing *)
let fencing_pinned =
  "step-crash site=1 step=1 mode=after-logging:1; stall site=2 from=4 until=14; decide-crash \
   site=3 sent=0"

let test_pinned_split_brain_plan_survived () =
  let cfg, r = ep_result ~plan:(FP.of_string_exn fencing_pinned) ~n_sites:4 ~f:1 ~seed:1 () in
  Alcotest.(check bool) "every survivor decides" true r.Engine.Runtime.all_operational_decided;
  Alcotest.(check bool) "consistent" true r.Engine.Runtime.consistent;
  Alcotest.(check int) "clean on all five oracles" 0 (List.length (EP.violations ~cfg r))

let test_engine_ballots_unique_per_site () =
  (* TM crash plus a lease race: every leadership of the run must claim a
     distinct ballot, and recovery ballots must decode to their site *)
  let n_sites = 4 in
  let _, r =
    ep_result
      ~plan:(FP.of_string_exn "crash site=1 at=3; lease-fault at=8")
      ~n_sites ~f:1 ~seed:5 ()
  in
  let epochs = r.Engine.Runtime.directive_epochs in
  Alcotest.(check bool) "at least one recovery leadership" true
    (List.exists (fun (_, e) -> e > 0) epochs);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (site, e) ->
      (match Hashtbl.find_opt seen e with
      | Some site' -> Alcotest.failf "ballot %d claimed by sites %d and %d" e site' site
      | None -> ());
      Hashtbl.replace seen e site;
      Alcotest.(check int) (Fmt.str "ballot %d decodes to its site" e) site ((e mod n_sites) + 1))
    epochs

let test_engine_family_validation () =
  (* the CLI gate: acceptor-crash / lease-fault clauses only run under
     Paxos; move-crash names a 3PC termination phase Paxos lacks *)
  let plan = FP.of_string_exn "acceptor-crash site=2 at=3; lease-fault at=5" in
  Alcotest.(check int) "2pc rejects both paxos clauses" 2
    (List.length (FP.unsupported_clauses ~protocol:"central-2pc" plan));
  Alcotest.(check int) "paxos runs both" 0
    (List.length (FP.unsupported_clauses ~protocol:"paxos-commit" plan));
  let mv = FP.of_string_exn "move-crash site=2 sent=1" in
  Alcotest.(check int) "move-crash rejected under paxos" 1
    (List.length (FP.unsupported_clauses ~protocol:"paxos-commit" mv))

let test_engine_sweep_clean () =
  let s = EP.sweep ~n_sites:4 ~f:1 ~k:1 ~seeds:50 () in
  Alcotest.(check int) "all seeds ran" 50 s.EP.ps_seeds_run;
  match s.EP.ps_failing with
  | [] -> ()
  | (seed, vs, plan) :: _ ->
      Alcotest.failf "seed %d violates %a under %s" seed
        (Fmt.list ~sep:Fmt.comma EC.pp_violation)
        vs (FP.to_string plan)

let suite =
  [
    Alcotest.test_case "kv: paxos commits failure-free" `Quick test_paxos_no_failures;
    Alcotest.test_case "kv: paxos f=0 matches 2pc commits" `Quick test_paxos_f0_degenerates_to_2pc_cost;
    Alcotest.test_case "kv: f=1 replication costs messages" `Quick test_paxos_replication_costs_messages;
    Alcotest.test_case "kv: coordinator crash blocks 2pc, not paxos" `Quick
      test_coordinator_crash_blocks_2pc_not_paxos;
    Alcotest.test_case "kv: paxos survives mid-run coordinator crash" `Quick
      test_paxos_survives_coordinator_crash_mid_run;
    Alcotest.test_case "kv: lease faults are safe" `Quick test_lease_faults_are_safe;
    Alcotest.test_case "kv: lease faults no-op under 2pc/3pc" `Quick
      test_lease_fault_noop_under_2pc_3pc;
    Alcotest.test_case "kv: ballots never reuse (txn, epoch, site)" `Quick
      test_ballots_never_reuse_epoch_site;
    Alcotest.test_case "kv: paxos chaos sweep clean (50 seeds)" `Slow test_paxos_sweep_clean;
    Alcotest.test_case "engine: paxos commits failure-free" `Quick
      test_engine_paxos_commits_failure_free;
    Alcotest.test_case "engine: a no vote aborts everywhere" `Quick test_engine_paxos_no_vote_aborts;
    Alcotest.test_case "engine: f=1 replication costs messages" `Quick
      test_engine_replication_costs_messages;
    Alcotest.test_case "engine: catalog projection model-checks safe-but-blocking" `Quick
      test_catalog_projection_model_checks_blocking;
    Alcotest.test_case "engine: pinned coordinator crash blocks 2pc, not paxos" `Quick
      test_pinned_coordinator_crash_blocks_2pc_not_paxos;
    Alcotest.test_case "engine: pinned 3-fault split-brain plan survived" `Quick
      test_pinned_split_brain_plan_survived;
    Alcotest.test_case "engine: ballots unique and decodable per site" `Quick
      test_engine_ballots_unique_per_site;
    Alcotest.test_case "engine: plan family validation" `Quick test_engine_family_validation;
    Alcotest.test_case "engine: paxos chaos sweep clean (50 seeds)" `Slow test_engine_sweep_clean;
  ]
