(** End-to-end durability tests: the force discipline under storage
    faults.  Torn and corrupt tails are vacuous when every record is
    forced before the protocol acts (the paper's rule) — the fault-on
    chaos sweeps stay clean.  The two ways to break the discipline are
    both caught by the durability oracle: mis-placing the force point
    after the sends ([late_force], a code bug), and a lying fsync
    ([Lost_flush], a broken stable-storage axiom). *)

module C = Engine.Chaos
module FP = Engine.Failure_plan
module N = Sim.Nemesis
module KC = Kv.Chaos_db

let rb_c3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))
let rb_d3 = lazy (Engine.Rulebook.compile (Core.Catalog.decentralized_3pc 3))

let has_durability vs = List.exists (fun (v : C.violation) -> v.C.oracle = C.Durability) vs

(* ---------------- torn/corrupt faults are vacuous under the rule ---------------- *)

let faulty_profile = { N.default_profile with N.p_disk_fault = 0.6 }

let test_engine_fault_on_sweeps_clean () =
  (* every crash may tear or corrupt the unsynced tail; with the force
     discipline in place there is no unsynced tail that matters, so both
     3PC paradigms stay clean across all four oracles *)
  let sc = C.sweep ~profile:faulty_profile (Lazy.force rb_c3) ~k:1 ~seeds:80 () in
  Alcotest.(check int) "central 3PC clean" 0 (List.length sc.C.violations_by_oracle);
  let sd = C.sweep ~profile:faulty_profile (Lazy.force rb_d3) ~k:1 ~seeds:40 () in
  Alcotest.(check int) "decentralized 3PC clean" 0 (List.length sd.C.violations_by_oracle)

let test_kv_fault_on_sweep_clean () =
  let s =
    KC.sweep ~profile:{ KC.default_profile with N.p_disk_fault = 0.6 } ~n_sites:4 ~k:1 ~seeds:40 ()
  in
  Alcotest.(check int) "kv 3PC clean under torn/corrupt faults" 0
    (List.length s.KC.violations_by_oracle)

(* ---------------- the late-force ablation is caught ---------------- *)

let late_force_plan = "step-crash site=2 step=0 mode=after-logging:1"

let test_late_force_pinned_plan_caught () =
  (* site 2 appends its yes-vote record, sends the vote, and crashes
     before the deferred sync: the world saw a vote the durable log
     cannot justify.  The same plan under the correct force order is
     breach-free. *)
  let plan = FP.of_string_exn late_force_plan in
  let _, late = C.run_plan ~late_force:true (Lazy.force rb_c3) ~plan ~seed:7 () in
  Alcotest.(check bool) "late force breaches durability" true (has_durability late);
  let _, correct = C.run_plan (Lazy.force rb_c3) ~plan ~seed:7 () in
  Alcotest.(check bool) "correct force order is clean" false (has_durability correct)

let test_late_force_found_and_shrunk_by_sweep () =
  (* the harness finds the mis-placed force point on its own: some chaos
     seed trips the durability oracle, and the schedule shrinks to a
     reproducible plan that still trips it through the textual round
     trip.  Seed 34 is the first (pinned by the determinism tests). *)
  let rec first_breach seed =
    if seed > 100 then Alcotest.fail "no durability breach found in seeds 0..100"
    else
      let o = C.run_one ~late_force:true (Lazy.force rb_c3) ~k:1 ~seed () in
      if has_durability o.C.violations then (seed, o.C.plan) else first_breach (seed + 1)
  in
  let seed, plan = first_breach 0 in
  Alcotest.(check int) "seed 34 is the first breach" 34 seed;
  let minimal, _runs =
    C.shrink ~late_force:true (Lazy.force rb_c3) ~seed ~oracle:C.Durability plan
  in
  Alcotest.(check bool) "shrunk to at most 2 faults" true (FP.fault_count minimal <= 2);
  let reloaded = FP.of_string_exn (FP.to_string minimal) in
  let _, violations = C.run_plan ~late_force:true (Lazy.force rb_c3) ~plan:reloaded ~seed () in
  Alcotest.(check bool) "reloaded minimal plan still trips the oracle" true
    (has_durability violations)

(* ---------------- a lying fsync is caught ---------------- *)

let lost_flush_plan =
  (* sync 0 is the forced [Began]; sync 1 is site 2's forced yes-vote
     record — the lie targets exactly that barrier, and the crash lands
     right after the vote is sent *)
  "disk site=2 fault=lost-flush nth=1; step-crash site=2 step=0 mode=after-logging:1"

let test_engine_lost_flush_breach () =
  let plan = FP.of_string_exn lost_flush_plan in
  List.iter
    (fun (name, rb) ->
      let _, violations = C.run_plan (Lazy.force rb) ~plan ~seed:7 () in
      Alcotest.(check bool) (name ^ ": lying fsync breaches durability") true
        (has_durability violations))
    [ ("central 3PC", rb_c3); ("decentralized 3PC", rb_d3) ]

let test_kv_lost_flush_breach () =
  (* participant 3's first sync (its forced prepared record for txn 1)
     lies; the crash at t=3 lands before any later sync flushes the
     limbo, so the yes vote on the wire has no prepared record on the
     repaired log *)
  let schedule =
    [
      N.Disk_fault { site = 3; fault = Sim.Disk.Lost_flush; nth = 0 };
      N.Crash { site = 3; at = 3.0 };
    ]
  in
  let _, violations = KC.run_schedule ~n_sites:4 ~seed:7 schedule in
  Alcotest.(check bool) "kv durability breach" true
    (List.exists (fun (v : KC.violation) -> v.KC.oracle = KC.Durability) violations);
  (* the same crash without the lying sync is clean: the breach comes
     from the broken barrier, not the crash *)
  let _, clean = KC.run_schedule ~n_sites:4 ~seed:7 [ N.Crash { site = 3; at = 3.0 } ] in
  Alcotest.(check int) "crash alone is clean" 0 (List.length clean)

(* ---------------- durable and in-memory logs are observationally equal ---------------- *)

let test_kv_durable_run_equals_memory_run () =
  (* with no storage faults armed the durable WAL must not perturb the
     simulation: same commits, same aborts, same message count, same
     verdicts — every PR-3 seed replays unchanged *)
  List.iter
    (fun seed ->
      let a = KC.run_one ~n_sites:4 ~k:1 ~seed () in
      let b = KC.run_one ~n_sites:4 ~k:1 ~seed ~durable_wal:false () in
      Alcotest.(check int) (Fmt.str "seed %d committed" seed) b.KC.result.Kv.Db.committed
        a.KC.result.Kv.Db.committed;
      Alcotest.(check int) (Fmt.str "seed %d aborted" seed) b.KC.result.Kv.Db.aborted
        a.KC.result.Kv.Db.aborted;
      Alcotest.(check int)
        (Fmt.str "seed %d messages" seed)
        b.KC.result.Kv.Db.messages_sent a.KC.result.Kv.Db.messages_sent;
      Alcotest.(check int)
        (Fmt.str "seed %d violations" seed)
        (List.length b.KC.violations) (List.length a.KC.violations))
    [ 0; 15; 35; 48; 176 ]

let suite =
  [
    Alcotest.test_case "engine: fault-on sweeps clean" `Quick test_engine_fault_on_sweeps_clean;
    Alcotest.test_case "kv: fault-on sweep clean" `Quick test_kv_fault_on_sweep_clean;
    Alcotest.test_case "late force: pinned plan caught" `Quick test_late_force_pinned_plan_caught;
    Alcotest.test_case "late force: found and shrunk by sweep" `Quick
      test_late_force_found_and_shrunk_by_sweep;
    Alcotest.test_case "engine: lying fsync caught" `Quick test_engine_lost_flush_breach;
    Alcotest.test_case "kv: lying fsync caught" `Quick test_kv_lost_flush_breach;
    Alcotest.test_case "kv: durable run = in-memory run" `Quick
      test_kv_durable_run_equals_memory_run;
  ]
