(** Tests for the simulation substrate: {!Sim.Rng}, {!Sim.Eventq},
    {!Sim.Metrics} and {!Sim.World}. *)

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:42 and b = Sim.Rng.create ~seed:42 in
  let xs = List.init 50 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" false (xs = ys)

let prop_rng_int_range =
  Helpers.qtest "int draws stay in range"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 500))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create ~seed in
      List.for_all
        (fun _ ->
          let x = Sim.Rng.int rng bound in
          x >= 0 && x < bound)
        (List.init 100 Fun.id))

let prop_rng_float_range =
  Helpers.qtest "float draws stay in range" (QCheck2.Gen.int_range 0 10_000) (fun seed ->
      let rng = Sim.Rng.create ~seed in
      List.for_all
        (fun _ ->
          let x = Sim.Rng.float rng 2.5 in
          x >= 0.0 && x < 2.5)
        (List.init 100 Fun.id))

let prop_shuffle_permutation =
  Helpers.qtest "shuffle is a permutation"
    QCheck2.Gen.(pair (int_range 0 1000) (list_size (int_range 0 30) (int_range 0 100)))
    (fun (seed, l) ->
      let rng = Sim.Rng.create ~seed in
      List.sort compare (Sim.Rng.shuffle rng l) = List.sort compare l)

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:5 in
  let b = Sim.Rng.split a in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check bool) "split stream differs" false (xs = ys)

let test_rng_bool_mixes () =
  let rng = Sim.Rng.create ~seed:3 in
  let draws = List.init 200 (fun _ -> Sim.Rng.bool rng) in
  let trues = List.length (List.filter Fun.id draws) in
  Alcotest.(check bool) "both outcomes occur" true (trues > 50 && trues < 150)

let test_rng_flip_extremes () =
  let rng = Sim.Rng.create ~seed:3 in
  Alcotest.(check bool) "p=0 never" false (Sim.Rng.flip rng ~p:0.0);
  Alcotest.(check bool) "p=1 always" true (Sim.Rng.flip rng ~p:1.0)

let test_rng_choice_empty () =
  let rng = Sim.Rng.create ~seed:1 in
  Alcotest.check_raises "choice of empty" (Invalid_argument "Rng.choice: empty list") (fun () ->
      ignore (Sim.Rng.choice rng []))

let test_exponential_positive () =
  let rng = Sim.Rng.create ~seed:9 in
  for _ = 1 to 100 do
    let x = Sim.Rng.exponential rng ~mean:3.0 in
    Alcotest.(check bool) "exponential >= 0" true (x >= 0.0)
  done

(* ---------------- Eventq ---------------- *)

let test_eventq_ordering () =
  let q = Sim.Eventq.create () in
  Sim.Eventq.push q ~time:3.0 "c";
  Sim.Eventq.push q ~time:1.0 "a";
  Sim.Eventq.push q ~time:2.0 "b";
  let pops = List.init 3 (fun _ -> Option.get (Sim.Eventq.pop q)) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.map snd pops)

let test_eventq_fifo_ties () =
  let q = Sim.Eventq.create () in
  List.iter (fun s -> Sim.Eventq.push q ~time:1.0 s) [ "x"; "y"; "z" ];
  let pops = List.init 3 (fun _ -> snd (Option.get (Sim.Eventq.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] pops

let test_eventq_empty () =
  let q = Sim.Eventq.create () in
  Alcotest.(check bool) "empty pop" true (Sim.Eventq.pop q = None);
  Alcotest.(check bool) "peek none" true (Sim.Eventq.peek_time q = None);
  Alcotest.(check int) "length 0" 0 (Sim.Eventq.length q)

let test_eventq_bad_time () =
  let q = Sim.Eventq.create () in
  Alcotest.check_raises "negative time" (Invalid_argument "Eventq.push: bad time") (fun () ->
      Sim.Eventq.push q ~time:(-1.0) "x")

let prop_eventq_sorted =
  Helpers.qtest "pops come out time-sorted"
    QCheck2.Gen.(list_size (int_range 0 100) (float_range 0.0 1000.0))
    (fun times ->
      let q = Sim.Eventq.create () in
      List.iteri (fun i t -> Sim.Eventq.push q ~time:t i) times;
      let rec drain acc = match Sim.Eventq.pop q with None -> List.rev acc | Some (t, _) -> drain (t :: acc) in
      let popped = drain [] in
      popped = List.sort compare popped && List.length popped = List.length times)

(* ---------------- Metrics ---------------- *)

let test_metrics () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.incr m "x";
  Sim.Metrics.incr m ~by:4 "x";
  Alcotest.(check int) "counter" 5 (Sim.Metrics.counter m "x");
  Alcotest.(check int) "missing counter" 0 (Sim.Metrics.counter m "y");
  Sim.Metrics.observe m "lat" 1.0;
  Sim.Metrics.observe m "lat" 3.0;
  match Sim.Metrics.summarize m "lat" with
  | Some s ->
      Alcotest.(check int) "n" 2 s.Sim.Metrics.count;
      Alcotest.(check (float 0.001)) "mean" 2.0 s.Sim.Metrics.mean;
      Alcotest.(check (float 0.001)) "min" 1.0 s.Sim.Metrics.min
  | None -> Alcotest.fail "expected summary"

(* ---------------- World ---------------- *)

type wmsg = Ping | Pong

let wmsg_str = function Ping -> "ping" | Pong -> "pong"

let quiet_handlers ?(on_message = fun _ ~src:_ _ -> ()) ?(on_start = fun _ -> ())
    ?(on_peer_down = fun _ _ -> ()) ?(on_restart = fun _ -> ()) () _site =
  { Sim.World.on_start; on_message; on_peer_down; on_peer_up = (fun _ _ -> ()); on_restart }

let test_world_delivery () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:wmsg_str () in
  let got = ref [] in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 Ping)
      ~on_message:(fun ctx ~src m ->
        got := (ctx.Sim.World.self, src, m) :: !got;
        if m = Ping then Sim.World.send ctx ~dst:src Pong)
      ()
  in
  let t_end = Sim.World.run w ~handlers () in
  Alcotest.(check int) "two deliveries" 2 (List.length !got);
  Alcotest.(check bool) "positive end time" true (t_end > 0.0);
  Alcotest.(check int) "metrics sent" 2 (Sim.Metrics.counter (Sim.World.metrics w) "messages_sent")

let test_world_crash_drops_messages () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.schedule_crash w ~at:0.5 2;
  let got = ref 0 in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 Ping)
      ~on_message:(fun _ ~src:_ _ -> incr got)
      ()
  in
  ignore (Sim.World.run w ~handlers ());
  (* latency ~1.0 > crash at 0.5: the message dies with the target *)
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "drop recorded" 1
    (Sim.Metrics.counter (Sim.World.metrics w) "messages_dropped")

let test_world_detector () =
  let w = Sim.World.create ~n_sites:3 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.schedule_crash w ~at:1.0 3;
  let reports = ref [] in
  let handlers =
    quiet_handlers ~on_peer_down:(fun ctx failed -> reports := (ctx.Sim.World.self, failed) :: !reports) ()
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check (list (pair int int))) "both survivors notified" [ (1, 3); (2, 3) ]
    (List.sort compare !reports);
  Alcotest.(check bool) "detector view" false (Sim.World.is_alive w 3);
  Alcotest.(check (list int)) "operational sites" [ 1; 2 ] (Sim.World.operational_sites w)

let test_world_recovery_and_restart () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.schedule_crash w ~at:1.0 2;
  Sim.World.schedule_recovery w ~at:5.0 2;
  let restarted = ref false and ups = ref [] in
  let handlers site =
    {
      (quiet_handlers ~on_restart:(fun ctx -> if ctx.Sim.World.self = 2 then restarted := true) () site)
      with
      Sim.World.on_peer_up = (fun ctx s -> ups := (ctx.Sim.World.self, s) :: !ups);
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check bool) "restart handler ran" true !restarted;
  Alcotest.(check (list (pair int int))) "peer-up notification" [ (1, 2) ] !ups;
  Alcotest.(check bool) "alive again" true (Sim.World.is_alive w 2)

let test_world_timer_cancelled_by_crash () =
  let w = Sim.World.create ~n_sites:1 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.schedule_crash w ~at:1.0 1;
  let fired = ref false in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx -> ignore (Sim.World.set_timer ctx ~delay:5.0 (fun () -> fired := true)))
      ()
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check bool) "timer died with the site" false !fired

let test_world_timer_cancel () =
  let w = Sim.World.create ~n_sites:1 ~seed:1 ~msg_to_string:wmsg_str () in
  let fired = ref false in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx ->
        let id = Sim.World.set_timer ctx ~delay:2.0 (fun () -> fired := true) in
        ignore (Sim.World.set_timer ctx ~delay:1.0 (fun () -> Sim.World.cancel_timer ctx id)))
      ()
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_world_timer_cancel_many () =
  (* regression: cancellations used to accumulate in an int list, making
     each timer dispatch a linear scan (O(n^2) over a run). 10k cancelled
     timers must dispatch silently and finish instantly. *)
  let n = 10_000 in
  let w = Sim.World.create ~n_sites:1 ~seed:1 ~msg_to_string:wmsg_str () in
  let fired = ref 0 in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx ->
        for i = 1 to n do
          let id =
            Sim.World.set_timer ctx ~delay:(float_of_int i *. 0.001) (fun () -> incr fired)
          in
          Sim.World.cancel_timer ctx id
        done)
      ()
  in
  let (), elapsed = Sim.Clock.time (fun () -> ignore (Sim.World.run w ~handlers ())) in
  Alcotest.(check int) "no cancelled timer fired" 0 !fired;
  Alcotest.(check int) "all cancellations accounted for" n
    (Sim.Metrics.counter (Sim.World.metrics w) "timers_cancelled");
  (* generous bound: the O(n^2) list-scan version takes far longer *)
  Alcotest.(check bool) (Fmt.str "completed quickly (%.3fs)" elapsed) true (elapsed < 2.0)

let test_world_sender_crash_partial_broadcast () =
  (* crash_self between two sends models a partially completed transition:
     the second message must not leave the site *)
  let w = Sim.World.create ~n_sites:3 ~seed:1 ~msg_to_string:wmsg_str () in
  let got = ref [] in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx ->
        if ctx.Sim.World.self = 1 then begin
          Sim.World.send ctx ~dst:2 Ping;
          Sim.World.crash_self ctx;
          Sim.World.send ctx ~dst:3 Ping
        end)
      ~on_message:(fun ctx ~src:_ _ -> got := ctx.Sim.World.self :: !got)
      ()
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check (list int)) "only the first send arrives" [ 2 ] !got

let test_world_inject_and_generations () =
  let w = Sim.World.create ~n_sites:1 ~seed:1 ~msg_to_string:wmsg_str () in
  (* message injected for generation 0, but the site crashes and recovers
     (generation 1) before delivery: the stale message is dropped *)
  Sim.World.inject w ~dst:1 ~at:5.0 Ping;
  Sim.World.schedule_crash w ~at:1.0 1;
  Sim.World.schedule_recovery w ~at:2.0 1;
  let got = ref 0 in
  let handlers = quiet_handlers ~on_message:(fun _ ~src:_ _ -> incr got) () in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "stale-generation message dropped" 0 !got

let test_world_trace_and_pp () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.set_tracing w true;
  let handlers =
    quiet_handlers ~on_start:(fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 Ping) ()
  in
  ignore (Sim.World.run w ~handlers ());
  let entries = Sim.World.trace_entries w in
  Alcotest.(check bool) "trace nonempty" true (List.length entries >= 2);
  Alcotest.(check bool) "trace ordered" true
    (let times = List.map (fun e -> e.Sim.World.at) entries in
     List.sort compare times = times);
  let rendered = Fmt.str "%a" Sim.World.pp_trace w in
  let contains needle hay =
    let rec go i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "pp_trace mentions the send" true (contains "send 1->2 ping" rendered)

let test_metrics_pp () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.incr m "events";
  Sim.Metrics.observe m "lat" 2.0;
  let s = Fmt.str "%a" Sim.Metrics.pp m in
  Alcotest.(check bool) "mentions counter" true
    (let needle = "events" in
     let rec go i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let test_world_until () =
  let w = Sim.World.create ~n_sites:1 ~seed:1 ~msg_to_string:wmsg_str () in
  let count = ref 0 in
  let handlers =
    quiet_handlers
      ~on_start:(fun ctx ->
        let rec tick () =
          incr count;
          ignore (Sim.World.set_timer ctx ~delay:1.0 tick)
        in
        tick ())
      ()
  in
  ignore (Sim.World.run w ~handlers ~until:10.5 ());
  Alcotest.(check bool) "bounded by until" true (!count <= 12)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    prop_rng_int_range;
    prop_rng_float_range;
    prop_shuffle_permutation;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bool mixes" `Quick test_rng_bool_mixes;
    Alcotest.test_case "rng flip extremes" `Quick test_rng_flip_extremes;
    Alcotest.test_case "rng choice empty" `Quick test_rng_choice_empty;
    Alcotest.test_case "rng exponential" `Quick test_exponential_positive;
    Alcotest.test_case "eventq ordering" `Quick test_eventq_ordering;
    Alcotest.test_case "eventq fifo ties" `Quick test_eventq_fifo_ties;
    Alcotest.test_case "eventq empty" `Quick test_eventq_empty;
    Alcotest.test_case "eventq bad time" `Quick test_eventq_bad_time;
    prop_eventq_sorted;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "world delivery" `Quick test_world_delivery;
    Alcotest.test_case "crash drops in-flight messages" `Quick test_world_crash_drops_messages;
    Alcotest.test_case "failure detector" `Quick test_world_detector;
    Alcotest.test_case "recovery and restart" `Quick test_world_recovery_and_restart;
    Alcotest.test_case "timers die with their site" `Quick test_world_timer_cancelled_by_crash;
    Alcotest.test_case "timer cancellation" `Quick test_world_timer_cancel;
    Alcotest.test_case "10k timer cancellations stay fast" `Quick test_world_timer_cancel_many;
    Alcotest.test_case "partial broadcast on crash" `Quick test_world_sender_crash_partial_broadcast;
    Alcotest.test_case "inject and incarnations" `Quick test_world_inject_and_generations;
    Alcotest.test_case "run until bound" `Quick test_world_until;
    Alcotest.test_case "tracing and pp_trace" `Quick test_world_trace_and_pp;
    Alcotest.test_case "metrics pp" `Quick test_metrics_pp;
  ]
