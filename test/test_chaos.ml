(** Tests for the chaos harness ({!Engine.Chaos} and {!Kv.Chaos_db}):
    determinism per seed, a clean 3PC corpus, the pinned 2PC blocking
    counterexample and its shrink-to-one-fault, replay of a shrunk plan
    through the textual round-trip, and the duplicate-delivery
    idempotence regressions the nemesis originally surfaced. *)

module C = Engine.Chaos
module FP = Engine.Failure_plan
module R = Engine.Runtime

let rb_c2 = lazy (Engine.Rulebook.compile (Core.Catalog.central_2pc 3))
let rb_c3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))
let rb_d3 = lazy (Engine.Rulebook.compile (Core.Catalog.decentralized_3pc 3))

let has o vs = List.exists (fun (v : C.violation) -> v.C.oracle = o) vs

(* ---------------- determinism ---------------- *)

let test_run_one_deterministic () =
  List.iter
    (fun seed ->
      let a = C.run_one (Lazy.force rb_c3) ~k:1 ~seed () in
      let b = C.run_one (Lazy.force rb_c3) ~k:1 ~seed () in
      Alcotest.(check bool) (Fmt.str "seed %d same plan" seed) true (FP.equal a.C.plan b.C.plan);
      Alcotest.(check int)
        (Fmt.str "seed %d same verdicts" seed)
        (List.length a.C.violations) (List.length b.C.violations))
    [ 0; 35; 48; 911 ]

let test_replay_trace_byte_identical () =
  (* the debuggability contract: replaying a seed's plan reproduces not
     just the verdict but the exact event trace *)
  let trace_of () =
    let o = C.run_one (Lazy.force rb_c2) ~k:1 ~seed:35 () in
    let result, _ = C.run_plan (Lazy.force rb_c2) ~plan:o.C.plan ~seed:35 ~tracing:true () in
    List.map (fun (e : Sim.World.trace_entry) -> Fmt.str "%.6f %s" e.Sim.World.at e.Sim.World.what)
      result.R.trace
  in
  let a = trace_of () and b = trace_of () in
  Alcotest.(check bool) "trace nonempty" true (a <> []);
  Alcotest.(check (list string)) "byte-identical trace" a b

(* ---------------- 3PC corpus is clean ---------------- *)

let test_central_3pc_corpus_clean () =
  let s = C.sweep (Lazy.force rb_c3) ~k:1 ~seeds:60 () in
  Alcotest.(check int) "no violations" 0 (List.length s.C.violations_by_oracle);
  Alcotest.(check int) "60 seeds run" 60 s.C.seeds_run

let test_decentralized_3pc_corpus_clean () =
  let s = C.sweep (Lazy.force rb_d3) ~k:1 ~seeds:40 () in
  Alcotest.(check int) "no violations" 0 (List.length s.C.violations_by_oracle)

(* ---------------- 2PC blocks, and the counterexample shrinks ---------------- *)

let test_2pc_pinned_blocking_seed () =
  (* seed 35 is the sweep's first blocking schedule: the coordinator
     crashes mid-protocol and both survivors stall in doubt *)
  let o = C.run_one (Lazy.force rb_c2) ~k:1 ~seed:35 () in
  Alcotest.(check bool) "progress violation found" true (has C.Progress o.C.violations);
  Alcotest.(check bool) "atomicity still holds" false (has C.Atomicity o.C.violations)

let test_2pc_counterexample_shrinks_to_one_fault () =
  let o = C.run_one (Lazy.force rb_c2) ~k:1 ~seed:35 () in
  let minimal, _runs = C.shrink (Lazy.force rb_c2) ~seed:35 ~oracle:C.Progress o.C.plan in
  Alcotest.(check int) "one fault suffices" 1 (FP.fault_count minimal);
  (* the textbook schedule: the coordinator dies at its commit point *)
  Alcotest.(check string) "the textbook counterexample" "step-crash site=1 step=1 mode=before"
    (FP.to_string minimal)

let test_shrunk_plan_replays_through_text () =
  (* a counterexample pasted into a report must reproduce: round-trip the
     minimal plan through its printed form and re-judge it *)
  let o = C.run_one (Lazy.force rb_c2) ~k:1 ~seed:35 () in
  let minimal, _ = C.shrink (Lazy.force rb_c2) ~seed:35 ~oracle:C.Progress o.C.plan in
  let reloaded = FP.of_string_exn (FP.to_string minimal) in
  let _, violations = C.run_plan (Lazy.force rb_c2) ~plan:reloaded ~seed:35 () in
  Alcotest.(check bool) "reloaded plan still trips the oracle" true (has C.Progress violations)

let test_2pc_sweep_reports_blocking () =
  let s = C.sweep (Lazy.force rb_c2) ~k:1 ~seeds:100 () in
  Alcotest.(check bool) "progress violations reported" true
    (List.mem_assoc C.Progress s.C.violations_by_oracle);
  Alcotest.(check bool) "atomicity violations absent" false
    (List.mem_assoc C.Atomicity s.C.violations_by_oracle);
  List.iter
    (fun cx ->
      Alcotest.(check bool)
        (Fmt.str "seed %d shrunk to <= 2 faults" cx.C.cx_seed)
        true (cx.C.cx_shrunk_faults <= 2))
    s.C.counterexamples

(* ---------------- duplicate-delivery idempotence ---------------- *)

let dup_everything = FP.make ~msg_faults:(List.init 60 (fun i -> (i, Sim.World.Fault_duplicate))) ()

let decided_records (r : R.result) site =
  List.length
    (List.filter
       (function Engine.Wal.Decided _ -> true | _ -> false)
       (Engine.Wal.records (Engine.Wal.Store.log r.R.store ~site)))

let test_runtime_idempotent_under_duplicates () =
  (* every message delivered twice: the run must still decide once per
     site — duplicates must neither violate an oracle nor double-log *)
  List.iter
    (fun (name, rb) ->
      let result, violations = C.run_plan (Lazy.force rb) ~plan:dup_everything ~seed:7 () in
      Alcotest.(check int) (name ^ ": no violations") 0 (List.length violations);
      Alcotest.(check bool) (name ^ ": consistent") true result.R.consistent;
      List.iter
        (fun site ->
          Alcotest.(check int)
            (Fmt.str "%s: site %d logs exactly one decision" name site)
            1 (decided_records result site))
        [ 1; 2; 3 ])
    [ ("c2", rb_c2); ("c3", rb_c3); ("d3", rb_d3) ]

(* ---------------- the database harness ---------------- *)

let kv_has o vs = List.exists (fun (v : Kv.Chaos_db.violation) -> v.Kv.Chaos_db.oracle = o) vs

let test_kv_regression_seeds_clean () =
  (* the two schedules that found real 3PC bugs in the Kv layer: seed 48
     wedged the coordinator precommitting to a dead participant, seed 176
     resurrected an aborted transaction from a chaos-delayed Prepare.
     Both must stay clean. *)
  List.iter
    (fun seed ->
      let o = Kv.Chaos_db.run_one ~n_sites:4 ~k:1 ~seed () in
      Alcotest.(check int) (Fmt.str "seed %d clean" seed) 0 (List.length o.Kv.Chaos_db.violations))
    [ 48; 176 ]

let test_kv_3pc_corpus_clean () =
  let s = Kv.Chaos_db.sweep ~protocol:Kv.Node.Three_phase ~n_sites:4 ~k:1 ~seeds:30 () in
  Alcotest.(check int) "no violations" 0 (List.length s.Kv.Chaos_db.violations_by_oracle)

let test_kv_2pc_blocks_and_shrinks () =
  (* seed 15 crashes a coordinator for good: 2PC leaves participants in
     doubt, and the schedule shrinks to that single permanent crash *)
  let o = Kv.Chaos_db.run_one ~protocol:Kv.Node.Two_phase ~n_sites:4 ~k:1 ~seed:15 () in
  Alcotest.(check bool) "progress violation" true
    (kv_has Kv.Chaos_db.Progress o.Kv.Chaos_db.violations);
  Alcotest.(check bool) "atomicity still holds" false
    (kv_has Kv.Chaos_db.Atomicity o.Kv.Chaos_db.violations);
  let minimal, _ =
    Kv.Chaos_db.shrink ~protocol:Kv.Node.Two_phase ~n_sites:4 ~seed:15
      ~oracle:Kv.Chaos_db.Progress o.Kv.Chaos_db.schedule
  in
  Alcotest.(check int) "one fault suffices" 1 (List.length minimal);
  match minimal with
  | [ Sim.Nemesis.Crash _ ] -> ()
  | other -> Alcotest.failf "expected a single crash, got %s" (Sim.Nemesis.to_string other)

let test_kv_run_one_deterministic () =
  let a = Kv.Chaos_db.run_one ~n_sites:4 ~k:1 ~seed:48 () in
  let b = Kv.Chaos_db.run_one ~n_sites:4 ~k:1 ~seed:48 () in
  Alcotest.(check bool) "same schedule" true
    (Sim.Nemesis.equal_schedule a.Kv.Chaos_db.schedule b.Kv.Chaos_db.schedule);
  Alcotest.(check int) "same commits" a.Kv.Chaos_db.result.Kv.Db.committed
    b.Kv.Chaos_db.result.Kv.Db.committed;
  Alcotest.(check int) "same messages" a.Kv.Chaos_db.result.Kv.Db.messages_sent
    b.Kv.Chaos_db.result.Kv.Db.messages_sent

let suite =
  [
    Alcotest.test_case "run_one is deterministic" `Quick test_run_one_deterministic;
    Alcotest.test_case "replay trace byte-identical" `Quick test_replay_trace_byte_identical;
    Alcotest.test_case "central 3PC corpus clean" `Quick test_central_3pc_corpus_clean;
    Alcotest.test_case "decentralized 3PC corpus clean" `Quick test_decentralized_3pc_corpus_clean;
    Alcotest.test_case "2PC: pinned blocking seed" `Quick test_2pc_pinned_blocking_seed;
    Alcotest.test_case "2PC: shrinks to one fault" `Quick test_2pc_counterexample_shrinks_to_one_fault;
    Alcotest.test_case "shrunk plan replays through text" `Quick test_shrunk_plan_replays_through_text;
    Alcotest.test_case "2PC: sweep reports blocking" `Quick test_2pc_sweep_reports_blocking;
    Alcotest.test_case "runtime idempotent under duplicates" `Quick
      test_runtime_idempotent_under_duplicates;
    Alcotest.test_case "kv: regression seeds 48 and 176 clean" `Quick test_kv_regression_seeds_clean;
    Alcotest.test_case "kv: 3PC corpus clean" `Quick test_kv_3pc_corpus_clean;
    Alcotest.test_case "kv: 2PC blocks and shrinks" `Quick test_kv_2pc_blocks_and_shrinks;
    Alcotest.test_case "kv: run_one deterministic" `Quick test_kv_run_one_deterministic;
  ]
