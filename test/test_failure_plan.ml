(** Tests for {!Engine.Failure_plan}: the textual round-trip a shrunk
    chaos counterexample relies on ([of_string (to_string p) = p]), and
    the lowering of generated nemesis schedules into executable plans. *)

module FP = Engine.Failure_plan
module N = Sim.Nemesis

let plan : FP.t Alcotest.testable = Alcotest.testable FP.pp FP.equal

(* ---------------- to_string / of_string ---------------- *)

let test_round_trip_every_clause () =
  let p =
    FP.make
      ~step_crashes:
        [
          { FP.site = 1; step = 1; mode = FP.Before_transition };
          { FP.site = 2; step = 0; mode = FP.After_logging 1 };
          { FP.site = 3; step = 2; mode = FP.After_transition };
        ]
      ~timed_crashes:[ (1, 3.5); (2, 10.25) ]
      ~recoveries:[ (1, 40.0) ]
      ~move_crashes:[ (2, 1) ] ~decide_crashes:[ (3, 0) ]
      ~partitions:[ { FP.from_t = 5.0; until_t = 9.5; groups = [ [ 1 ]; [ 2; 3 ] ] } ]
      ~msg_faults:
        [ (0, Sim.World.Fault_drop); (4, Sim.World.Fault_duplicate); (7, Sim.World.Fault_delay 2.75) ]
      ~disk_faults:
        [
          (1, { Sim.Disk.fault = Sim.Disk.Torn; nth = 0 });
          (2, { Sim.Disk.fault = Sim.Disk.Corrupt; nth = 1 });
          (3, { Sim.Disk.fault = Sim.Disk.Lost_flush; nth = 4 });
        ]
      ~delay_spikes:[ { FP.d_site = 2; d_from = 3.0; d_until = 9.75; d_extra = 2.5 } ]
      ~stalls:[ { FP.w_site = 1; w_from = 4.0; w_until = 14.5 } ]
      ~hb_losses:[ { FP.w_site = 3; w_from = 0.25; w_until = 60.0 } ]
      ~acceptor_crashes:[ (3, 2.0); (5, 4.75) ]
      ~lease_faults:[ 1.25; 8.0 ]
      ~storms:[ { FP.s_site = 2; s_first = 10.0; s_waves = 3; s_period = 80.0; s_down = 25.5 } ]
      ()
  in
  Alcotest.check plan "round trip" p (FP.of_string_exn (FP.to_string p))

let test_round_trip_empty () =
  Alcotest.check plan "empty plan" FP.none (FP.of_string_exn (FP.to_string FP.none))

let test_parse_pinned_syntax () =
  (* the exact strings counterexamples print in — pinned so a plan pasted
     into a regression test keeps parsing across releases *)
  let p = FP.of_string_exn "step-crash site=1 step=1 mode=before; msg nth=4 fault=dup" in
  Alcotest.check plan "parses the documented syntax"
    (FP.make
       ~step_crashes:[ { FP.site = 1; step = 1; mode = FP.Before_transition } ]
       ~msg_faults:[ (4, Sim.World.Fault_duplicate) ]
       ())
    p;
  Alcotest.check plan "newlines separate clauses too"
    (FP.of_string_exn "crash site=2 at=3\nrecover site=2 at=20")
    (FP.make ~timed_crashes:[ (2, 3.0) ] ~recoveries:[ (2, 20.0) ] ());
  Alcotest.check plan "disk clause parses"
    (FP.of_string_exn "disk site=2 fault=torn nth=0")
    (FP.make ~disk_faults:[ (2, { Sim.Disk.fault = Sim.Disk.Torn; nth = 0 }) ] ());
  (* the detector-fault clauses a PR-5 counterexample prints in *)
  Alcotest.check plan "delay clause parses"
    (FP.of_string_exn "delay site=2 from=3 until=9.75 extra=2.5")
    (FP.make ~delay_spikes:[ { FP.d_site = 2; d_from = 3.0; d_until = 9.75; d_extra = 2.5 } ] ());
  Alcotest.check plan "stall clause parses"
    (FP.of_string_exn "stall site=2 from=4 until=14")
    (FP.make ~stalls:[ { FP.w_site = 2; w_from = 4.0; w_until = 14.0 } ] ());
  Alcotest.check plan "hb-loss clause parses"
    (FP.of_string_exn "hb-loss site=3 from=1 until=60")
    (FP.make ~hb_losses:[ { FP.w_site = 3; w_from = 1.0; w_until = 60.0 } ] ());
  (* the Paxos-Commit clauses a paxos counterexample prints in *)
  Alcotest.check plan "acceptor-crash clause parses"
    (FP.of_string_exn "acceptor-crash site=5 at=2")
    (FP.make ~acceptor_crashes:[ (5, 2.0) ] ());
  Alcotest.check plan "lease-fault clause parses"
    (FP.of_string_exn "lease-fault at=1.89")
    (FP.make ~lease_faults:[ 1.89 ] ());
  (* the crash-recover storm clause the explorer's corpus files print in *)
  Alcotest.check plan "storm clause parses"
    (FP.of_string_exn "storm site=2 first=10 waves=3 period=80 down=25.5")
    (FP.make
       ~storms:[ { FP.s_site = 2; s_first = 10.0; s_waves = 3; s_period = 80.0; s_down = 25.5 } ]
       ())

let test_parse_error () =
  Alcotest.check_raises "garbage raises Parse_error"
    (FP.Parse_error "unknown fault kind: \"frobnicate\"") (fun () ->
      ignore (FP.of_string_exn "frobnicate site=1"))

let test_of_string_is_total () =
  (* the CLI path: every malformed input must come back as [Error msg],
     never an exception, and the message must name what went wrong *)
  let table =
    [
      ("frobnicate site=1", "unknown fault kind");
      ("crash site=x at=3", "site");
      ("crash at=3", "site");
      ("crash site=1 at=soon", "at");
      ("step-crash site=1 step=1 mode=sideways", "mode");
      ("msg nth=4 fault=explode", "fault");
      ("msg nth=four fault=dup", "nth");
      ("disk site=1 fault=melted nth=0", "disk fault");
      ("disk site=1 fault=torn", "nth");
      ("partition from=1 until=2 groups=a", "groups");
      ("crash site=1 at", "key=value");
      ("delay site=2 from=3 until=9 extra=lots", "extra");
      ("delay site=2 from=3 extra=1", "until");
      ("stall site=2 from=now until=9", "from");
      ("stall from=3 until=9", "site");
      ("hb-loss site=3 from=1 until=never", "until");
      ("acceptor-crash at=2", "site");
      ("acceptor-crash site=5 at=soon", "at");
      ("lease-fault", "at");
      ("lease-fault at=whenever", "at");
      ("storm site=2 first=10 waves=lots period=80 down=25", "waves");
      ("storm site=2 waves=3 period=80 down=25", "first");
    ]
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (input, needle) ->
      match FP.of_string input with
      | Ok p -> Alcotest.failf "%S parsed as %s" input (FP.to_string p)
      | Error msg ->
          Alcotest.(check bool)
            (Fmt.str "%S error mentions %S: %S" input needle msg)
            true (contains msg needle))
    table

let gen_plan =
  let open QCheck2.Gen in
  let site = int_range 1 5 in
  let mode =
    oneof
      [
        return FP.Before_transition;
        map (fun k -> FP.After_logging k) (int_range 0 3);
        return FP.After_transition;
      ]
  in
  let tf = map (fun x -> float_of_int x /. 4.0) (int_range 0 400) in
  let fault =
    oneof
      [
        return Sim.World.Fault_drop;
        return Sim.World.Fault_duplicate;
        map (fun d -> Sim.World.Fault_delay d) tf;
      ]
  in
  let* step_crashes =
    small_list (map2 (fun s (step, mode) -> { FP.site = s; step; mode }) site (pair (int_range 0 4) mode))
  in
  let* timed_crashes = small_list (pair site tf) in
  let* recoveries = small_list (pair site tf) in
  let* move_crashes = small_list (pair site (int_range 0 3)) in
  let* decide_crashes = small_list (pair site (int_range 0 3)) in
  let* partitions =
    small_list
      (map2
         (fun (f, u) g -> { FP.from_t = f; until_t = u; groups = [ g; [ 9 ] ] })
         (pair tf tf)
         (small_list site))
  in
  let* msg_faults = small_list (pair (int_range 0 50) fault) in
  let* disk_faults =
    small_list
      (map2
         (fun site (fault, nth) -> (site, { Sim.Disk.fault; nth }))
         site
         (pair
            (oneof [ return Sim.Disk.Torn; return Sim.Disk.Corrupt; return Sim.Disk.Lost_flush ])
            (int_range 0 5)))
  in
  let* delay_spikes =
    small_list
      (map2
         (fun s ((f, u), e) -> { FP.d_site = s; d_from = f; d_until = u; d_extra = e })
         site
         (pair (pair tf tf) tf))
  in
  let window =
    map2 (fun s (f, u) -> { FP.w_site = s; w_from = f; w_until = u }) site (pair tf tf)
  in
  let* stalls = small_list window in
  let* hb_losses = small_list window in
  let* acceptor_crashes = small_list (pair site tf) in
  let* lease_faults = small_list tf in
  let* storms =
    small_list
      (map2
         (fun s ((first, waves), (period, down_frac)) ->
           (* down strictly inside the period, as the generator guarantees *)
           { FP.s_site = s; s_first = first; s_waves = waves; s_period = period;
             s_down = period *. down_frac })
         site
         (pair (pair tf (int_range 1 4)) (pair (map (fun x -> 20.0 +. x) tf) (return 0.5))))
  in
  return
    (FP.make ~step_crashes ~timed_crashes ~recoveries ~move_crashes ~decide_crashes ~partitions
       ~msg_faults ~disk_faults ~delay_spikes ~stalls ~hb_losses ~acceptor_crashes ~lease_faults
       ~storms ())

let prop_round_trip =
  Helpers.qtest "of_string (to_string p) = p" gen_plan (fun p ->
      FP.equal p (FP.of_string_exn (FP.to_string p)))

let prop_fault_count_matches_clauses =
  Helpers.qtest "fault_count counts every clause" gen_plan (fun p ->
      let clauses =
        List.length p.FP.step_crashes + List.length p.FP.timed_crashes
        + List.length p.FP.recoveries + List.length p.FP.move_crashes
        + List.length p.FP.decide_crashes + List.length p.FP.partitions
        + List.length p.FP.msg_faults + List.length p.FP.disk_faults
        + List.length p.FP.delay_spikes + List.length p.FP.stalls
        + List.length p.FP.hb_losses + List.length p.FP.acceptor_crashes
        + List.length p.FP.lease_faults + List.length p.FP.storms
      in
      FP.fault_count p = clauses)

let prop_unsupported_clauses_partition_by_family =
  (* the CLI's family gate: on any mixed plan, 2PC rejects exactly the
     termination + paxos clauses, 3PC exactly the paxos clauses, Paxos
     exactly the move-crash (termination phase 1) clauses — and every
     family accepts a plan stripped of the clauses it names *)
  Helpers.qtest "unsupported_clauses partitions any mixed plan" gen_plan (fun p ->
      let count protocol = List.length (FP.unsupported_clauses ~protocol p) in
      count "central-2pc"
      = List.length p.FP.move_crashes + List.length p.FP.decide_crashes
        + List.length p.FP.acceptor_crashes + List.length p.FP.lease_faults
      && count "central-3pc" = List.length p.FP.acceptor_crashes + List.length p.FP.lease_faults
      && count "paxos-commit" = List.length p.FP.move_crashes
      && FP.unsupported_clauses ~protocol:"paxos-commit" { p with FP.move_crashes = [] } = []
      && FP.unsupported_clauses ~protocol:"central-3pc"
           { p with FP.acceptor_crashes = []; lease_faults = [] }
         = [])

(* ---------------- of_schedule ---------------- *)

let test_of_schedule_mapping () =
  let schedule =
    [
      N.Crash { site = 2; at = 3.0 };
      N.Step_crash { site = 1; step = 1; sent = None };
      N.Step_crash { site = 3; step = 0; sent = Some 2 };
      N.Backup_crash { site = 2; phase = N.Move; sent = 1 };
      N.Backup_crash { site = 3; phase = N.Decide; sent = 0 };
      N.Recover { site = 2; at = 30.0 };
      N.Partition { from_t = 4.0; until_t = 8.0; groups = [ [ 1 ]; [ 2; 3 ] ] };
      N.Msg { nth = 5; fault = Sim.World.Fault_duplicate };
    ]
  in
  Alcotest.check plan "lowers one-to-one"
    (FP.make
       ~step_crashes:
         [
           { FP.site = 1; step = 1; mode = FP.Before_transition };
           { FP.site = 3; step = 0; mode = FP.After_logging 2 };
         ]
       ~timed_crashes:[ (2, 3.0) ]
       ~recoveries:[ (2, 30.0) ]
       ~move_crashes:[ (2, 1) ] ~decide_crashes:[ (3, 0) ]
       ~partitions:[ { FP.from_t = 4.0; until_t = 8.0; groups = [ [ 1 ]; [ 2; 3 ] ] } ]
       ~msg_faults:[ (5, Sim.World.Fault_duplicate) ]
       ())
    (FP.of_schedule schedule)

let prop_to_schedule_round_trips =
  (* the corpus-replay path: kv harnesses consume schedules, so a plan
     persisted as text must survive plan -> schedule -> plan losslessly.
     After_transition step crashes are the documented exception
     (of_schedule never emits them), so strip those first. *)
  Helpers.qtest "of_schedule (to_schedule p) = p" gen_plan (fun p ->
      let p =
        {
          p with
          FP.step_crashes =
            List.filter (fun (c : FP.step_crash) -> c.FP.mode <> FP.After_transition)
              p.FP.step_crashes;
        }
      in
      FP.equal p (FP.of_schedule (FP.to_schedule p)))

let prop_of_schedule_round_trips_textually =
  Helpers.qtest "generated schedules lower to printable plans"
    QCheck2.Gen.(int_range 0 2_000)
    (fun seed ->
      let schedule =
        N.generate (Sim.Rng.create ~seed) ~n_sites:3 ~k:2 N.default_profile
      in
      let p = FP.of_schedule schedule in
      FP.equal p (FP.of_string_exn (FP.to_string p)))

let suite =
  [
    Alcotest.test_case "round trip: every clause kind" `Quick test_round_trip_every_clause;
    Alcotest.test_case "round trip: empty" `Quick test_round_trip_empty;
    Alcotest.test_case "pinned counterexample syntax parses" `Quick test_parse_pinned_syntax;
    Alcotest.test_case "parse error on garbage" `Quick test_parse_error;
    Alcotest.test_case "of_string is total on malformed input" `Quick test_of_string_is_total;
    prop_round_trip;
    prop_fault_count_matches_clauses;
    prop_unsupported_clauses_partition_by_family;
    Alcotest.test_case "of_schedule maps each fault kind" `Quick test_of_schedule_mapping;
    prop_to_schedule_round_trips;
    prop_of_schedule_round_trips_textually;
  ]
