(** Tests for {!Sim.Sweep} and the sharded chaos sweeps built on it: the
    worker count must be unobservable — identical results, merged
    metrics, counterexamples and per-seed rng streams at any sharding. *)

module M = Sim.Metrics
module J = Sim.Json
module C = Engine.Chaos
module KC = Kv.Chaos_db

let det_json m = J.to_string (M.to_json ~drop_wall:true m)

(* ---------------- Sweep.map ---------------- *)

let test_map_matches_sequential () =
  let f ~seed =
    let rng = Sim.Rng.create ~seed in
    (seed, Sim.Rng.int rng 1_000_000)
  in
  let seq = Sim.Sweep.map ~workers:1 ~seeds:37 f in
  List.iter
    (fun workers ->
      let par = Sim.Sweep.map ~workers ~seeds:37 f in
      Alcotest.(check bool) (Fmt.str "workers=%d = sequential" workers) true (par = seq))
    [ 2; 3; 8; 64 ];
  (* results land at their seed's index, not completion order *)
  Array.iteri (fun i (seed, _) -> Alcotest.(check int) "seed order" i seed) seq

let test_map_seed_base () =
  let f ~seed = seed * seed in
  let a = Sim.Sweep.map ~workers:3 ~seed_base:100 ~seeds:10 f in
  Alcotest.(check (list int))
    "offset range"
    (List.init 10 (fun i -> (100 + i) * (100 + i)))
    (Array.to_list a)

let test_map_edge_cases () =
  Alcotest.(check int) "zero seeds" 0 (Array.length (Sim.Sweep.map ~workers:4 ~seeds:0 (fun ~seed -> seed)));
  (* more workers than seeds clamps rather than spawning idle domains *)
  Alcotest.(check (list int))
    "workers > seeds" [ 0; 1 ]
    (Array.to_list (Sim.Sweep.map ~workers:16 ~seeds:2 (fun ~seed -> seed)));
  Alcotest.check_raises "negative seeds rejected"
    (Invalid_argument "Sweep.map: seeds must be >= 0") (fun () ->
      ignore (Sim.Sweep.map ~seeds:(-1) (fun ~seed -> seed)));
  Alcotest.check_raises "zero workers rejected"
    (Invalid_argument "Sweep.map: workers must be >= 1") (fun () ->
      ignore (Sim.Sweep.map ~workers:0 ~seeds:3 (fun ~seed -> seed)))

let test_map_propagates_exceptions () =
  List.iter
    (fun workers ->
      match Sim.Sweep.map ~workers ~seeds:20 (fun ~seed -> if seed = 13 then failwith "boom" else seed) with
      | _ -> Alcotest.fail "expected the worker's exception to propagate"
      | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg)
    [ 1; 3 ]

(* ---------------- Sweep.sweep: isolated registries, seed-order merge ---------------- *)

let test_sweep_merges_in_seed_order () =
  let run ~workers =
    Sim.Sweep.sweep ~workers ~seeds:50 (fun ~metrics ~seed ->
        M.incr metrics "runs";
        M.observe metrics "v" (float_of_int (seed + 1));
        (* one deliberately leaked timer per run: sweep must drain it
           into the per-seed registry before merging *)
        M.timer_start metrics "leak" ~key:seed ~at:0.0;
        seed)
  in
  let seq_results, seq_metrics = run ~workers:1 in
  Alcotest.(check int) "runs counted" 50 (M.counter seq_metrics "runs");
  Alcotest.(check int) "leaks drained and counted" 50 (M.counter seq_metrics "timers_in_flight_leak");
  Alcotest.(check (list (pair string int))) "merged registry has no open timers" []
    (M.timers_in_flight seq_metrics);
  List.iter
    (fun workers ->
      let results, metrics = run ~workers in
      Alcotest.(check bool) (Fmt.str "results workers=%d" workers) true (results = seq_results);
      Alcotest.(check string)
        (Fmt.str "metrics workers=%d" workers)
        (det_json seq_metrics) (det_json metrics))
    [ 2; 4 ]

(* ---------------- chaos sweeps: workers unobservable ---------------- *)

(* central-2pc blocks, so this exercises the interesting paths — violation
   aggregation, shrinking, counterexample tracing — not just clean runs. *)
let engine_summary ~workers =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  C.sweep rb ~workers ~k:1 ~seeds:60 ()

let test_engine_sweep_workers_unobservable () =
  let seq = engine_summary ~workers:1 in
  Alcotest.(check bool) "corpus has counterexamples" true (seq.C.counterexamples <> []);
  let par = engine_summary ~workers:4 in
  Alcotest.(check bool) "violation counts" true
    (par.C.violations_by_oracle = seq.C.violations_by_oracle);
  Alcotest.(check bool) "counterexamples (plans, traces, shrink cost)" true
    (par.C.counterexamples = seq.C.counterexamples);
  Alcotest.(check string) "merged deterministic metrics"
    (det_json seq.C.metrics) (det_json par.C.metrics)

let kv_summary ~workers =
  KC.sweep ~protocol:Kv.Node.Three_phase ~n_sites:4 ~workers ~k:1 ~seeds:20 ()

let test_kv_sweep_workers_unobservable () =
  let seq = kv_summary ~workers:1 in
  let par = kv_summary ~workers:3 in
  Alcotest.(check bool) "violation counts" true
    (par.KC.violations_by_oracle = seq.KC.violations_by_oracle);
  Alcotest.(check bool) "failing seeds and shrunk schedules" true
    (par.KC.failing = seq.KC.failing);
  Alcotest.(check string) "merged deterministic metrics"
    (det_json seq.KC.metrics) (det_json par.KC.metrics)

(* the per-seed rng is derived from the seed alone (root [Rng.create
   ~seed], streams forked with [Rng.split]), so the values a seed draws
   cannot depend on which worker ran it or on what other seeds did *)
let test_seed_stream_worker_independent () =
  let streams ~workers =
    Sim.Sweep.map ~workers ~seeds:40 (fun ~seed ->
        let root = Sim.Rng.create ~seed in
        let a = Sim.Rng.split root in
        let b = Sim.Rng.split root in
        ( List.init 16 (fun _ -> Sim.Rng.int a 1_000_000),
          List.init 16 (fun _ -> Sim.Rng.float b 1.0) ))
  in
  let seq = streams ~workers:1 in
  List.iter
    (fun workers ->
      Alcotest.(check bool)
        (Fmt.str "split streams workers=%d" workers)
        true
        (streams ~workers = seq))
    [ 2; 5 ]

let suite =
  [
    Alcotest.test_case "map = sequential at any worker count" `Quick test_map_matches_sequential;
    Alcotest.test_case "map honours seed_base" `Quick test_map_seed_base;
    Alcotest.test_case "map edge cases" `Quick test_map_edge_cases;
    Alcotest.test_case "map propagates worker exceptions" `Quick test_map_propagates_exceptions;
    Alcotest.test_case "sweep merges isolated registries in seed order" `Quick
      test_sweep_merges_in_seed_order;
    Alcotest.test_case "engine chaos: workers unobservable" `Quick
      test_engine_sweep_workers_unobservable;
    Alcotest.test_case "kv chaos: workers unobservable" `Quick test_kv_sweep_workers_unobservable;
    Alcotest.test_case "per-seed rng independent of sharding" `Quick
      test_seed_stream_worker_independent;
  ]
