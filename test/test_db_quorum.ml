(** Tests for quorum termination and network partitions at the database
    level: the KV store survives the partition that split-brains the
    paper's rule, and pays for it by blocking below-quorum survivors. *)

let n_sites = 3
let q = (n_sites / 2) + 1

(* one cross-site transfer between sites 2 and 3, coordinated by site 2 *)
let keys () =
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 3) (List.init 100 Kv.Workload.key_name) in
  (k1, k2)

let transfer () =
  let k1, k2 = keys () in
  { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, -5); Kv.Txn.Add (k2, 5) ] }

let run ?(termination = Kv.Node.T_quorum q) ?(crashes = []) ?(recoveries = []) ?(partitions = [])
    () =
  let k1, k2 = keys () in
  Kv.Db.run
    (Kv.Db.config ~n_sites ~protocol:Kv.Node.Three_phase ~termination ~seed:3 ~crashes ~recoveries
       ~partitions ~initial_data:[ (k1, 100); (k2, 100) ] ())
    [ (1.0, transfer ()) ]

let test_failure_free () =
  let r = run () in
  Alcotest.(check int) "committed" 1 r.Kv.Db.committed;
  Alcotest.(check bool) "atomic" true r.Kv.Db.atomicity_ok

let test_coordinator_crash_abort_side () =
  (* coordinator (site 2) dies in the vote window: the quorum of survivors
     {1?, 3} — here participants are {2,3}, so survivor 3 alone is below
     quorum and blocks; with a recovery the transaction resolves *)
  let r = run ~crashes:[ (2, 3.05) ] () in
  Alcotest.(check bool) "atomic" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "pending (below quorum)" 1 r.Kv.Db.pending;
  let r' = run ~crashes:[ (2, 3.05) ] ~recoveries:[ (2, 60.0) ] () in
  Alcotest.(check bool) "atomic after recovery" true r'.Kv.Db.atomicity_ok;
  Alcotest.(check int) "resolved after recovery" 0 r'.Kv.Db.pending

let test_partition_consistent () =
  (* partition site 3 away during the commit window: under the quorum rule
     nothing can go inconsistent; after healing everything resolves *)
  let r =
    run ~partitions:[ (3.05, 80.0, [ [ 1; 2 ]; [ 3 ] ]) ] ()
  in
  Alcotest.(check bool) "atomic through partition" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "resolved after heal" 0 r.Kv.Db.pending;
  Alcotest.(check int) "storage total conserved" 200 r.Kv.Db.storage_totals

let test_partition_bank_workload () =
  (* a whole workload through a partition window, quorum termination:
     atomicity must hold; pending only for requests lost to the minority *)
  let accounts = 16 in
  let rng = Sim.Rng.create ~seed:41 in
  let wl = Kv.Workload.bank rng ~n_txns:100 ~accounts ~arrival_rate:1.0 in
  let cfg =
    Kv.Db.config ~n_sites:4 ~protocol:Kv.Node.Three_phase ~termination:(Kv.Node.T_quorum 3)
      ~seed:41
      ~partitions:[ (40.0, 120.0, [ [ 1; 2; 3 ]; [ 4 ] ]) ]
      ~initial_data:(Kv.Workload.bank_initial ~accounts ~initial_balance:100)
      ()
  in
  let r = Kv.Db.run cfg wl in
  Alcotest.(check bool) "atomicity through partition" true r.Kv.Db.atomicity_ok;
  (* transactions touching the isolated site are refused or aborted during
     the window; the rest commit *)
  Alcotest.(check bool) "a healthy fraction commits" true (r.Kv.Db.committed > 30);
  Alcotest.(check int) "every transaction accounted for" 100
    (r.Kv.Db.committed + r.Kv.Db.aborted + r.Kv.Db.pending);
  Alcotest.(check int) "money conserved" (Kv.Workload.bank_total ~accounts ~initial_balance:100)
    r.Kv.Db.storage_totals

let test_skeen_vs_quorum_on_partition () =
  (* the database-level version of E13/E14: same partition, the paper's
     rule may split-brain, the quorum rule may not.  (Whether the Skeen
     run actually violates atomicity depends on the timing of the window —
     here it does: the minority participant aborts an in-doubt transfer
     the majority commits.) *)
  (* the window must open after the participants send their votes (so the
     coordinator will precommit and, on detecting the "failure", commit)
     but before it sends the precommit — the partition check happens at
     send time, so only a window straddling the precommit send leaves the
     minority participant prepared, where the paper's rule aborts it *)
  let partitions = [ (2.8, 200.0, [ [ 1; 2 ]; [ 3 ] ]) ] in
  let skeen = run ~termination:Kv.Node.T_skeen ~partitions () in
  let quorum = run ~termination:(Kv.Node.T_quorum q) ~partitions () in
  Alcotest.(check bool) "quorum stays atomic" true quorum.Kv.Db.atomicity_ok;
  Alcotest.(check bool) "skeen split-brains on this schedule" false skeen.Kv.Db.atomicity_ok

let suite =
  [
    Alcotest.test_case "failure-free with quorum termination" `Quick test_failure_free;
    Alcotest.test_case "coordinator crash: below-quorum survivor blocks" `Quick
      test_coordinator_crash_abort_side;
    Alcotest.test_case "partition: consistent and converges" `Quick test_partition_consistent;
    Alcotest.test_case "bank workload through a partition" `Quick test_partition_bank_workload;
    Alcotest.test_case "skeen vs quorum on the same partition" `Quick
      test_skeen_vs_quorum_on_partition;
  ]
