(** Differential tests for the interned state-space engines: the packed
    int-array representation must change {e nothing} observable.

    - [Reachability.build] is checked against an inline reference BFS
      over [Global.successors] (the algorithm the pre-interning
      implementation used): same states, same edge multiset, same stats.
    - [Model_check.run] is checked against [Model_check_ref] (the
      original string-keyed engine, kept verbatim): identical [explored]
      counts and verdicts for every catalog protocol at small n/k, under
      both termination rules.
    - The packed encoding round-trips: [Packed.decode (Packed.encode st)]
      reproduces [st] exactly, including the order-sensitive move/poll
      bookkeeping lists. *)

module MC = Engine.Model_check

(* ---------------- reference reachability BFS ---------------- *)

module GTbl = Hashtbl.Make (Core.Global)

type ref_graph = { r_states : int; r_edges : int; r_terminal : int; r_final : int }

let reference_reach (p : Core.Protocol.t) : ref_graph =
  let seen = GTbl.create 256 in
  let queue = Queue.create () in
  let g0 = Core.Global.initial p in
  GTbl.add seen g0 ();
  Queue.add g0 queue;
  let states = ref 0 and edges = ref 0 and terminal = ref 0 and final = ref 0 in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    incr states;
    if Core.Global.is_final p g then incr final;
    let succs = Core.Global.successors p g in
    edges := !edges + List.length succs;
    if succs = [] then incr terminal;
    List.iter
      (fun (_, _, g') ->
        if not (GTbl.mem seen g') then begin
          GTbl.add seen g' ();
          Queue.add g' queue
        end)
      succs
  done;
  { r_states = !states; r_edges = !edges; r_terminal = !terminal; r_final = !final }

let test_reachability_differential () =
  List.iter
    (fun (e : Core.Catalog.entry) ->
      List.iter
        (fun n ->
          let p = e.Core.Catalog.build n in
          let g = Core.Reachability.build p in
          let s = Core.Reachability.stats g in
          let r = reference_reach p in
          let ctx = Fmt.str "%s n=%d" e.Core.Catalog.label n in
          Alcotest.(check int) (ctx ^ " states") r.r_states s.Core.Reachability.states;
          Alcotest.(check int) (ctx ^ " edges") r.r_edges s.Core.Reachability.edges;
          Alcotest.(check int) (ctx ^ " terminal") r.r_terminal s.Core.Reachability.terminal;
          Alcotest.(check int) (ctx ^ " final") r.r_final s.Core.Reachability.final)
        [ 2; 3 ])
    Core.Catalog.all

(* The interned graph must also agree with itself structurally: the edge
   list of every node targets valid indices and node [i] is at index [i]
   (DOT rendering and the analyses index directly). *)
let test_reachability_indices () =
  let g = Core.Reachability.build (Core.Catalog.decentralized_3pc 3) in
  Core.Reachability.iter_nodes
    (fun node ->
      Alcotest.(check bool) "self index" true (Core.Reachability.node g node.Core.Reachability.index == node);
      List.iter
        (fun (site, _, target) ->
          Alcotest.(check bool) "site in range" true (site >= 1 && site <= 3);
          Alcotest.(check bool) "target in range" true
            (target >= 0 && target < Core.Reachability.n_nodes g))
        node.Core.Reachability.succs)
    g

(* One-pass stats must equal the list-based accessors it replaced. *)
let test_stats_consistency () =
  List.iter
    (fun (e : Core.Catalog.entry) ->
      let g = Core.Reachability.build (e.Core.Catalog.build 3) in
      let s = Core.Reachability.stats g in
      Alcotest.(check int) "states" (Core.Reachability.n_nodes g) s.Core.Reachability.states;
      Alcotest.(check int) "edges" (Core.Reachability.n_edges g) s.Core.Reachability.edges;
      Alcotest.(check int) "terminal"
        (List.length (Core.Reachability.terminal_nodes g))
        s.Core.Reachability.terminal;
      Alcotest.(check int) "deadlocked"
        (List.length (Core.Reachability.deadlocked_nodes g))
        s.Core.Reachability.deadlocked;
      Alcotest.(check int) "inconsistent"
        (List.length (Core.Reachability.inconsistent_nodes g))
        s.Core.Reachability.inconsistent;
      let commit, abort = Core.Reachability.reachable_outcomes g in
      Alcotest.(check bool) "commit" commit s.Core.Reachability.commit_reachable;
      Alcotest.(check bool) "abort" abort s.Core.Reachability.abort_reachable)
    Core.Catalog.all

(* ---------------- model-check differential ---------------- *)

let check_config p k rule =
  { MC.rulebook = Engine.Rulebook.compile p; max_crashes = k; limit = 2_000_000; rule }

let assert_reports_equal ctx (a : MC.report) (b : MC.report) =
  Alcotest.(check int) (ctx ^ " explored") b.MC.explored a.MC.explored;
  Alcotest.(check bool) (ctx ^ " safe") b.MC.safe a.MC.safe;
  Alcotest.(check bool) (ctx ^ " nonblocking") b.MC.nonblocking a.MC.nonblocking;
  Alcotest.(check int) (ctx ^ " inconsistent") (List.length b.MC.inconsistent)
    (List.length a.MC.inconsistent);
  Alcotest.(check int) (ctx ^ " blocked") (List.length b.MC.blocked_terminals)
    (List.length a.MC.blocked_terminals);
  Alcotest.(check bool) (ctx ^ " cex") (b.MC.counterexample <> None) (a.MC.counterexample <> None)

let test_model_check_differential () =
  List.iter
    (fun (e : Core.Catalog.entry) ->
      List.iter
        (fun (n, k) ->
          let cfg = check_config (e.Core.Catalog.build n) k `Skeen in
          assert_reports_equal
            (Fmt.str "%s n=%d k=%d" e.Core.Catalog.label n k)
            (MC.run cfg) (Engine.Model_check_ref.run cfg))
        [ (2, 0); (2, 1); (2, 2); (3, 0); (3, 1) ])
    Core.Catalog.all

let test_model_check_differential_quorum () =
  List.iter
    (fun (e : Core.Catalog.entry) ->
      List.iter
        (fun (n, k) ->
          let cfg = check_config (e.Core.Catalog.build n) k (`Quorum ((n / 2) + 1)) in
          assert_reports_equal
            (Fmt.str "%s n=%d k=%d quorum" e.Core.Catalog.label n k)
            (MC.run cfg) (Engine.Model_check_ref.run cfg))
        [ (2, 1); (3, 1) ])
    Core.Catalog.all

(* The deliberately broken 2PC variant (coordinator may abort without
   reading votes) and 1PC: the engines must agree on the impaired
   protocols too, and both must still see 2PC-family blocking. *)
let test_model_check_differential_broken () =
  let cfg = check_config (Core.Catalog.central_2pc_hasty 3) 1 `Skeen in
  let a = MC.run cfg and b = Engine.Model_check_ref.run cfg in
  assert_reports_equal "hasty-2pc n=3 k=1" a b;
  Alcotest.(check bool) "hasty 2PC blocks" false a.MC.nonblocking;
  let cfg = check_config (Core.Catalog.one_pc 3) 1 `Skeen in
  let a = MC.run cfg and b = Engine.Model_check_ref.run cfg in
  assert_reports_equal "1pc n=3 k=1" a b;
  Alcotest.(check bool) "1PC blocks" false a.MC.nonblocking

(* ---------------- packed round-trip ---------------- *)

let equal_st (a : MC.st) (b : MC.st) =
  a.MC.locals = b.MC.locals && a.MC.voted = b.MC.voted && a.MC.alive = b.MC.alive
  && a.MC.aware = b.MC.aware
  && a.MC.crashes_left = b.MC.crashes_left
  && Core.Message.Multiset.equal a.MC.network b.MC.network
  && a.MC.moving = b.MC.moving && a.MC.polling = b.MC.polling && a.MC.polled = b.MC.polled
  && a.MC.epoch = b.MC.epoch

let roundtrip ctx st = equal_st st (MC.Packed.decode ctx (MC.Packed.encode ctx st))

(* Round-trip every state the checker itself reports (blocked terminals
   of 2PC carry crashes, awareness and in-flight decides). *)
let test_roundtrip_reported () =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  let ctx = MC.Packed.ctx rb in
  let r = MC.run { MC.rulebook = rb; max_crashes = 2; limit = 2_000_000; rule = `Skeen } in
  Alcotest.(check bool) "2PC k=2 has blocked terminals" true (r.MC.blocked_terminals <> []);
  List.iter
    (fun st -> Alcotest.(check bool) "round-trip" true (roundtrip ctx st))
    r.MC.blocked_terminals

(* Hand-built states exercise the encoding corners the checker's own
   reports rarely show: in-flight moves and polls (order-sensitive
   lists), termination messages of every tag in the network, epochs. *)
let test_roundtrip_synthetic () =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let ctx = MC.Packed.ctx rb in
  let msg name src dst = Core.Message.make ~name ~src ~dst in
  let st =
    {
      MC.locals = [| "p"; "w"; "c" |];
      voted = [| false; true; true |];
      alive = [| true; false; true |];
      aware = [| true; false; true |];
      crashes_left = 1;
      network =
        Core.Message.Multiset.of_list
          [
            msg "!move:p" 1 2; msg "!mack" 2 1; msg "!streq" 3 2; msg "!strep:w" 2 3;
            msg "!decide:c" 1 3; msg "!decide:a" 3 1; msg "ack" 2 1; msg "ack" 2 1;
          ];
      moving = [| Some ("p", [ 3; 2 ]); None; None |];
      polling = [| None; None; Some ([ 2 ], [ (2, "w"); (1, "p") ]) |];
      polled = [| false; false; true |];
      epoch = [| 1; 3; 1 |];
    }
  in
  Alcotest.(check bool) "synthetic round-trip" true (roundtrip ctx st);
  (* order of the bookkeeping lists is part of state identity: permuting
     it must change the encoding *)
  let swapped = { st with MC.moving = [| Some ("p", [ 2; 3 ]); None; None |] } in
  Alcotest.(check bool) "list order is preserved" false
    (MC.Packed.encode ctx st = MC.Packed.encode ctx swapped);
  Alcotest.(check bool) "swapped round-trips too" true (roundtrip ctx swapped)

(* Distinct states must produce distinct encodings (the encoding is the
   dedup identity, so a collision would silently merge states). *)
let test_encoding_injective () =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_2pc 2) in
  let ctx = MC.Packed.ctx rb in
  let r = MC.run { MC.rulebook = rb; max_crashes = 1; limit = 2_000_000; rule = `Skeen } in
  let sts = r.MC.blocked_terminals in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "distinct states, distinct encodings" false
              (MC.Packed.encode ctx a = MC.Packed.encode ctx b))
        sts)
    sts

let suite =
  [
    Alcotest.test_case "reachability matches reference BFS." `Quick test_reachability_differential;
    Alcotest.test_case "reachability indices are consistent." `Quick test_reachability_indices;
    Alcotest.test_case "one-pass stats match the accessors." `Quick test_stats_consistency;
    Alcotest.test_case "model check matches reference (Skeen)." `Slow test_model_check_differential;
    Alcotest.test_case "model check matches reference (quorum)." `Slow
      test_model_check_differential_quorum;
    Alcotest.test_case "broken protocol verdicts agree." `Quick test_model_check_differential_broken;
    Alcotest.test_case "packed round-trip: reported states." `Quick test_roundtrip_reported;
    Alcotest.test_case "packed round-trip: synthetic states." `Quick test_roundtrip_synthetic;
    Alcotest.test_case "packed encoding is injective." `Quick test_encoding_injective;
  ]
