(** Tests for {!Sim.Backoff}: the jitter bound [base, 1.25 * base], cap
    saturation, exponent saturation at attempt 12, determinism under a
    fixed seed, and the exactly-one-rng-draw contract the replay layer
    depends on. *)

module B = Sim.Backoff

(* mirror of the implementation's jitter-free base *)
let base ~interval ~cap ~attempt =
  Float.min (interval *. (2.0 ** float_of_int (min attempt 12))) cap

let delay ~seed ~interval ~cap ~attempt =
  B.delay ~rng:(Sim.Rng.create ~seed) ~interval ~cap ~attempt

let gen_params =
  QCheck2.Gen.(
    let* interval = float_range 0.01 10.0 in
    let* cap = float_range interval (interval *. 1000.0) in
    let* attempt = int_range 0 40 in
    let* seed = int_range 0 100_000 in
    return (interval, cap, attempt, seed))

let prop_jitter_bounds =
  Helpers.qtest "delay lies in [base, 1.25 * base]" gen_params
    (fun (interval, cap, attempt, seed) ->
      let b = base ~interval ~cap ~attempt in
      let d = delay ~seed ~interval ~cap ~attempt in
      d >= b && d <= 1.25 *. b)

let prop_never_exceeds_jittered_cap =
  Helpers.qtest "delay never exceeds 1.25 * cap" gen_params
    (fun (interval, cap, attempt, seed) ->
      delay ~seed ~interval ~cap ~attempt <= 1.25 *. cap)

let prop_cap_saturation =
  (* once interval * 2^attempt crosses the cap, the base is exactly the
     cap: delays for very different large attempts share the window
     [cap, 1.25 * cap] *)
  Helpers.qtest "large attempts saturate at the cap"
    QCheck2.Gen.(triple (float_range 0.5 5.0) (int_range 20 100) (int_range 0 100_000))
    (fun (interval, attempt, seed) ->
      let cap = interval *. 8.0 in
      let d = delay ~seed ~interval ~cap ~attempt in
      d >= cap && d <= 1.25 *. cap)

let prop_exponent_saturates_at_12 =
  (* with an effectively infinite cap, attempts 12 and 13 share the same
     base, so under the same seed they yield the same delay *)
  Helpers.qtest "exponent saturates at 12 (same seed, same delay)"
    QCheck2.Gen.(pair (float_range 0.01 2.0) (int_range 0 100_000))
    (fun (interval, seed) ->
      let cap = Float.max_float in
      let d12 = delay ~seed ~interval ~cap ~attempt:12 in
      let d13 = delay ~seed ~interval ~cap ~attempt:13 in
      Float.equal d12 d13)

let prop_deterministic =
  Helpers.qtest "same seed, same delay" gen_params
    (fun (interval, cap, attempt, seed) ->
      Float.equal
        (delay ~seed ~interval ~cap ~attempt)
        (delay ~seed ~interval ~cap ~attempt))

let prop_consumes_exactly_one_draw =
  (* the replay layer pins determinism on delay consuming exactly one
     draw: the rng position after a delay call must equal the position
     after one manual draw on a fresh stream with the same seed *)
  Helpers.qtest "delay consumes exactly one rng draw" gen_params
    (fun (interval, cap, attempt, seed) ->
      let rng_a = Sim.Rng.create ~seed in
      ignore (B.delay ~rng:rng_a ~interval ~cap ~attempt);
      let rng_b = Sim.Rng.create ~seed in
      ignore (Sim.Rng.float rng_b 1.0);
      Float.equal (Sim.Rng.float rng_a 1.0) (Sim.Rng.float rng_b 1.0))

let test_attempt_zero_base () =
  (* attempt 0 waits at least one full interval, at most 1.25 of it *)
  let d = delay ~seed:7 ~interval:5.0 ~cap:45.0 ~attempt:0 in
  Alcotest.(check bool) "attempt 0 >= interval" true (d >= 5.0);
  Alcotest.(check bool) "attempt 0 <= 1.25 * interval" true (d <= 6.25)

let test_growth_before_cap () =
  (* pre-cap, consecutive bases double; since the jitter tops out at a
     quarter of the base, the floor of attempt n+1 strictly exceeds the
     ceiling of attempt n no matter the seeds *)
  let interval = 1.0 and cap = 1.0e9 in
  for attempt = 0 to 10 do
    let hi_n = 1.25 *. base ~interval ~cap ~attempt in
    let lo_next = base ~interval ~cap ~attempt:(attempt + 1) in
    Alcotest.(check bool)
      (Fmt.str "floor(attempt %d) > ceiling(attempt %d)" (attempt + 1) attempt)
      true (lo_next > hi_n)
  done

let suite =
  [
    Alcotest.test_case "attempt zero base" `Quick test_attempt_zero_base;
    Alcotest.test_case "growth before cap" `Quick test_growth_before_cap;
    prop_jitter_bounds;
    prop_never_exceeds_jittered_cap;
    prop_cap_saturation;
    prop_exponent_saturates_at_12;
    prop_deterministic;
    prop_consumes_exactly_one_draw;
  ]
