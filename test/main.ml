(** The aggregated test runner: one suite per module of the library. *)

let () =
  Alcotest.run "skeen81"
    [
      ("message", Test_message.suite);
      ("automaton", Test_automaton.suite);
      ("catalog", Test_catalog.suite);
      ("protocol", Test_protocol.suite);
      ("global", Test_global.suite);
      ("reachability", Test_reachability.suite);
      ("concurrency", Test_concurrency.suite);
      ("committable", Test_committable.suite);
      ("nonblocking", Test_nonblocking.suite);
      ("synchrony", Test_synchrony.suite);
      ("skeleton", Test_skeleton.suite);
      ("synthesis", Test_synthesis.suite);
      ("termination-rule", Test_termination_rule.suite);
      ("sim", Test_sim.suite);
      ("metrics", Test_metrics.suite);
      ("engine", Test_engine.suite);
      ("election", Test_election.suite);
      ("partition", Test_partition.suite);
      ("properties", Test_properties.suite);
      ("quorum", Test_quorum.suite);
      ("presumption", Test_presumption.suite);
      ("render", Test_render.suite);
      ("model-check", Test_model_check.suite);
      ("statespace", Test_statespace.suite);
      ("model-check-quorum", Test_model_check_quorum.suite);
      ("db-quorum", Test_db_quorum.suite);
      ("read-only-termination", Test_read_only_termination.suite);
      ("runtime", Test_runtime.suite);
      ("lock-table", Test_lock_table.suite);
      ("kv", Test_kv.suite);
      ("db", Test_db.suite);
      ("nemesis", Test_nemesis.suite);
      ("failure-plan", Test_failure_plan.suite);
      ("chaos", Test_chaos.suite);
      ("disk", Test_disk.suite);
      ("wal", Test_wal.suite);
      ("durability", Test_durability.suite);
      ("detector", Test_detector.suite);
      ("sweep", Test_sweep.suite);
      ("commit-levers", Test_commit_levers.suite);
      ("paxos", Test_paxos.suite);
      ("backoff", Test_backoff.suite);
      ("explore", Test_explore.suite);
    ]
