(** Tests for {!Core.Catalog}: structural properties of every protocol
    figure in the paper, across site counts. *)

module C = Core.Catalog
module P = Core.Protocol
module A = Core.Automaton

let ns = [ 2; 3; 4 ]

let all_protocols n =
  [ C.one_pc n; C.central_2pc n; C.central_3pc n; C.decentralized_2pc n; C.decentralized_3pc n ]

let test_all_valid () =
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          List.iter
            (fun site ->
              Alcotest.(check (list string))
                (Fmt.str "%s site %d valid" p.P.name site)
                []
                (List.map A.show_violation (A.validate (P.automaton p site))))
            (P.sites p))
        (all_protocols n))
    ns

let test_site_counts () =
  List.iter
    (fun n ->
      List.iter
        (fun p -> Alcotest.(check int) (p.P.name ^ " n_sites") n (P.n_sites p))
        (all_protocols n))
    ns

let test_state_sets () =
  let p2 = C.central_2pc 3 and p3 = C.central_3pc 3 in
  Alcotest.(check (list string)) "2pc states" [ "a"; "c"; "q"; "w" ]
    (Core.Protocol.state_ids p2);
  Alcotest.(check (list string)) "3pc states" [ "a"; "c"; "p"; "q"; "w" ]
    (Core.Protocol.state_ids p3);
  Alcotest.(check (list string)) "1pc states" [ "a"; "c"; "q" ] (Core.Protocol.state_ids (C.one_pc 3))

let test_decentralized_homogeneous () =
  List.iter
    (fun n ->
      Alcotest.(check bool) "dec 2pc homogeneous" true (P.homogeneous (C.decentralized_2pc n));
      Alcotest.(check bool) "dec 3pc homogeneous" true (P.homogeneous (C.decentralized_3pc n));
      Alcotest.(check bool) "central 2pc heterogeneous" false (P.homogeneous (C.central_2pc n)))
    ns

let test_paradigms () =
  Alcotest.(check bool) "central paradigm" true
    ((C.central_2pc 3).P.paradigm = P.Central_site);
  Alcotest.(check bool) "decentralized paradigm" true
    ((C.decentralized_3pc 3).P.paradigm = P.Decentralized)

let test_slave_transition_count () =
  (* the 2PC slave of the paper's figure: 4 transitions exactly *)
  let p = C.central_2pc 4 in
  List.iter
    (fun site ->
      Alcotest.(check int)
        (Fmt.str "slave %d has 4 transitions" site)
        4
        (List.length (P.automaton p site).A.transitions))
    [ 2; 3; 4 ]

let test_coordinator_vote_vectors () =
  (* coordinator of central 2PC on n sites: 1 start + 2^(n-1) vote vectors
     + 1 extra transition for the all-yes veto *)
  List.iter
    (fun n ->
      let coord = P.automaton (C.central_2pc n) 1 in
      let expected = 1 + (1 lsl (n - 1)) + 1 in
      Alcotest.(check int) (Fmt.str "coordinator transitions n=%d" n) expected
        (List.length coord.A.transitions))
    ns

let test_initial_network () =
  let p = C.central_2pc 3 in
  Alcotest.(check int) "central: one request" 1 (List.length p.P.initial_network);
  let d = C.decentralized_2pc 3 in
  Alcotest.(check int) "decentralized: one xact per site" 3 (List.length d.P.initial_network)

let test_one_pc_no_veto () =
  (* the paper's point: 1PC slaves cannot vote no *)
  let p = C.one_pc 3 in
  List.iter
    (fun site ->
      let a = P.automaton p site in
      Alcotest.(check bool)
        (Fmt.str "slave %d has no vote transitions" site)
        true
        (List.for_all (fun (tr : A.transition) -> tr.A.vote = None) a.A.transitions))
    [ 2; 3 ]

let test_bad_site_counts () =
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Catalog: need at least 2 sites, got 1")
    (fun () -> ignore (C.central_2pc 1));
  Alcotest.check_raises "n too large rejected"
    (Invalid_argument "Catalog: vote-vector FSAs limited to 10 sites, got 11") (fun () ->
      ignore (C.decentralized_3pc 11))

let test_find () =
  Alcotest.(check bool) "find central-3pc" true
    ((C.find "central-3pc").C.nonblocking_expected);
  Alcotest.(check bool) "find central-2pc" false
    ((C.find "central-2pc").C.nonblocking_expected);
  Alcotest.check_raises "unknown protocol"
    (Invalid_argument
       "Catalog.find: unknown protocol \"nope\" (known: 1pc, central-2pc, decentralized-2pc, \
        central-3pc, decentralized-3pc, paxos-commit)") (fun () -> ignore (C.find "nope"))

let test_hasty_variant () =
  let p = C.central_2pc_hasty 3 in
  let coord = P.automaton p 1 in
  Alcotest.(check bool) "hasty coordinator has a spontaneous abort" true
    (List.exists
       (fun (tr : A.transition) -> tr.A.consumes = [] && tr.A.to_state = "a")
       coord.A.transitions)

let test_phases () =
  (* the protocols' names fall out of the phase count (paper §2) *)
  List.iter
    (fun n ->
      Alcotest.(check int) "1pc has 1 phase" 1 (P.phases (C.one_pc n));
      Alcotest.(check int) "central 2pc has 2 phases" 2 (P.phases (C.central_2pc n));
      Alcotest.(check int) "decentralized 2pc has 2 phases" 2 (P.phases (C.decentralized_2pc n));
      Alcotest.(check int) "central 3pc has 3 phases" 3 (P.phases (C.central_3pc n));
      Alcotest.(check int) "decentralized 3pc has 3 phases" 3 (P.phases (C.decentralized_3pc n)))
    ns

let test_synthesis_adds_one_phase () =
  let graph = Core.Reachability.build (C.central_2pc 3) in
  let { Core.Synthesis.protocol; _ } = Core.Synthesis.buffer_protocol graph in
  Alcotest.(check int) "2pc + buffer = 3 phases" 3 (P.phases protocol)

let test_buffer_state_kinds () =
  let p3 = C.central_3pc 3 in
  List.iter
    (fun site ->
      Alcotest.check Helpers.state_kind
        (Fmt.str "p is a buffer state at site %d" site)
        Core.Types.Buffer
        (A.kind_of (P.automaton p3 site) "p"))
    (P.sites p3)

let suite =
  [
    Alcotest.test_case "all catalog FSAs valid" `Quick test_all_valid;
    Alcotest.test_case "site counts" `Quick test_site_counts;
    Alcotest.test_case "state id sets" `Quick test_state_sets;
    Alcotest.test_case "decentralized protocols homogeneous" `Quick test_decentralized_homogeneous;
    Alcotest.test_case "paradigms" `Quick test_paradigms;
    Alcotest.test_case "2PC slave figure: 4 transitions" `Quick test_slave_transition_count;
    Alcotest.test_case "coordinator vote vectors" `Quick test_coordinator_vote_vectors;
    Alcotest.test_case "initial network" `Quick test_initial_network;
    Alcotest.test_case "1PC slaves cannot veto" `Quick test_one_pc_no_veto;
    Alcotest.test_case "bad site counts rejected" `Quick test_bad_site_counts;
    Alcotest.test_case "catalog lookup" `Quick test_find;
    Alcotest.test_case "hasty 2PC variant" `Quick test_hasty_variant;
    Alcotest.test_case "3PC buffer state kind" `Quick test_buffer_state_kinds;
    Alcotest.test_case "phase counts name the protocols" `Quick test_phases;
    Alcotest.test_case "synthesis adds exactly one phase" `Quick test_synthesis_adds_one_phase;
  ]
