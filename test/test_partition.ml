(** Tests for the partition ablation: what happens when the paper's
    reliable-failure-detection assumption is violated.

    The headline negative result (well known since the paper): under a
    network partition, 3PC's termination protocol can split-brain — the
    minority side elects its own backup and decides from its local state
    while the majority decides the other way.  2PC, by contrast, merely
    blocks the orphaned side.  Skeen's assumptions exclude partitions for
    exactly this reason; these tests pin the behaviour down. *)

module R = Engine.Runtime
module FP = Engine.Failure_plan

let rb3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))
let rb2 = lazy (Engine.Rulebook.compile (Core.Catalog.central_2pc 3))

(* World-level sanity: partitions drop cross-group messages and produce
   false suspicions, and heal cleanly. *)
let test_world_partition_drops () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:(fun s -> s) () in
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:50.0 [ [ 1 ]; [ 2 ] ];
  let got = ref 0 and suspected = ref [] in
  let handlers _site =
    {
      Sim.World.on_start = (fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 "hi");
      on_message = (fun _ ~src:_ _ -> incr got);
      on_peer_down = (fun ctx s -> suspected := (ctx.Sim.World.self, s) :: !suspected);
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "message dropped" 0 !got;
  Alcotest.(check (list (pair int int))) "mutual false suspicion" [ (1, 2); (2, 1) ]
    (List.sort compare !suspected);
  Alcotest.(check int) "partition drop counted" 1
    (Sim.Metrics.counter (Sim.World.metrics w) "messages_partitioned")

let test_world_partition_heals () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:(fun s -> s) () in
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:5.0 [ [ 1 ]; [ 2 ] ];
  let ups = ref [] and got = ref 0 in
  let handlers _site =
    {
      Sim.World.on_start = (fun _ -> ());
      on_message = (fun _ ~src:_ _ -> incr got);
      on_peer_down = (fun _ _ -> ());
      on_peer_up =
        (fun ctx s ->
          ups := (ctx.Sim.World.self, s) :: !ups;
          (* the link works again *)
          Sim.World.send ctx ~dst:s "hello-again");
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check (list (pair int int))) "mutual recovery report" [ (1, 2); (2, 1) ]
    (List.sort compare !ups);
  Alcotest.(check int) "post-heal messages flow" 2 !got

let test_short_partition_invisible () =
  (* healed before the detection delay: no false suspicion fires *)
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~detection_delay:2.0 ~msg_to_string:(fun s -> s) () in
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:1.0 [ [ 1 ]; [ 2 ] ];
  let suspected = ref 0 in
  let handlers _site =
    {
      Sim.World.on_start = (fun _ -> ());
      on_message = (fun _ ~src:_ _ -> ());
      on_peer_down = (fun _ _ -> incr suspected);
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "no suspicion" 0 !suspected

(* Send-time semantics: whether a message crosses a partition is decided
   the moment it is sent, not when it would be delivered.  A message
   already in flight when the partition opens still arrives (the packets
   left the site); a message sent inside the window is lost for good even
   if the network heals before its would-be delivery time. *)
let test_send_before_partition_delivered () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:(fun s -> s) () in
  (* sent at t=0, delivered ~1.05 — the window covers the delivery time only *)
  Sim.World.schedule_partition w ~from_t:0.5 ~until_t:5.0 [ [ 1 ]; [ 2 ] ];
  let got = ref 0 in
  let handlers _site =
    {
      Sim.World.on_start = (fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 "early");
      on_message = (fun _ ~src:_ _ -> incr got);
      on_peer_down = (fun _ _ -> ());
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "in-flight message survives" 1 !got;
  Alcotest.(check int) "no partition drop" 0
    (Sim.Metrics.counter (Sim.World.metrics w) "messages_partitioned")

let test_send_during_partition_dropped () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:(fun s -> s) () in
  (* sent at t=0.5 inside the window, would-be delivery ~1.55 after the
     heal at 1.0 — still dropped, because the send happened while cut *)
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:1.0 [ [ 1 ]; [ 2 ] ];
  let got = ref 0 in
  let handlers _site =
    {
      Sim.World.on_start =
        (fun ctx ->
          if ctx.Sim.World.self = 1 then
            ignore
              (Sim.World.set_timer ctx ~delay:0.5 (fun () -> Sim.World.send ctx ~dst:2 "mid-window")));
      on_message = (fun _ ~src:_ _ -> incr got);
      on_peer_down = (fun _ _ -> ());
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "mid-window message lost despite heal" 0 !got;
  Alcotest.(check int) "partition drop counted" 1
    (Sim.Metrics.counter (Sim.World.metrics w) "messages_partitioned")

(* Protocol-level ablation.  Partition the lone slave 3 away from {1,2}
   after the votes are sent but before the coordinator's precommit goes
   out (t = 1.5; the partition check happens at send time, so a window
   opening at 1.5 lets the in-flight votes through and drops the
   precommit): under 3PC both sides terminate — in opposite directions;
   under 2PC the minority blocks instead. *)
let test_3pc_splits_brain_under_partition () =
  let r =
    Engine.Partition_ablation.run ~rulebook:(Lazy.force rb3) ~from_t:1.5 ~until_t:200.0
      ~groups:[ [ 1; 2 ]; [ 3 ] ] ~seed:1 ()
  in
  Alcotest.(check bool) "INCONSISTENT outcome (split brain)" false r.R.consistent;
  (* majority side committed, minority aborted *)
  let outcome s = (List.nth r.R.reports (s - 1)).R.outcome in
  Alcotest.(check (option Helpers.outcome)) "site 1 committed" (Some Core.Types.Committed) (outcome 1);
  Alcotest.(check (option Helpers.outcome)) "site 2 committed" (Some Core.Types.Committed) (outcome 2);
  Alcotest.(check (option Helpers.outcome)) "site 3 aborted" (Some Core.Types.Aborted) (outcome 3)

let test_2pc_blocks_but_stays_consistent () =
  let r =
    Engine.Partition_ablation.run ~rulebook:(Lazy.force rb2) ~from_t:1.5 ~until_t:200.0
      ~groups:[ [ 1; 2 ]; [ 3 ] ] ~seed:1 ()
  in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  let outcome s = (List.nth r.R.reports (s - 1)).R.outcome in
  Alcotest.(check (option Helpers.outcome)) "site 1 committed" (Some Core.Types.Committed) (outcome 1);
  (* the partitioned slave eventually learns the outcome after healing *)
  Alcotest.(check (option Helpers.outcome)) "site 3 resolves after heal"
    (Some Core.Types.Committed) (outcome 3)

let test_no_partition_no_difference () =
  (* the ablation entry point with an empty partition behaves like run *)
  let r =
    Engine.Partition_ablation.run ~rulebook:(Lazy.force rb3) ~from_t:0.0 ~until_t:0.0 ~groups:[]
      ~seed:1 ()
  in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  Alcotest.(check bool) "all decided" true r.R.all_operational_decided

let suite =
  [
    Alcotest.test_case "partition drops messages + false suspicion" `Quick
      test_world_partition_drops;
    Alcotest.test_case "partition heals" `Quick test_world_partition_heals;
    Alcotest.test_case "short partition invisible" `Quick test_short_partition_invisible;
    Alcotest.test_case "in-flight message survives partition" `Quick
      test_send_before_partition_delivered;
    Alcotest.test_case "mid-window send dropped despite heal" `Quick
      test_send_during_partition_dropped;
    Alcotest.test_case "3PC split-brain under partition (known limit)" `Quick
      test_3pc_splits_brain_under_partition;
    Alcotest.test_case "2PC blocks but stays consistent" `Quick
      test_2pc_blocks_but_stays_consistent;
    Alcotest.test_case "ablation with no partition" `Quick test_no_partition_no_difference;
  ]
