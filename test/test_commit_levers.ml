(** Tests for the latency levers (presumption, read-only participants,
    group commit, coordinator pipelining): {!Sim.Batch} unit semantics,
    crash-inside-a-batch durability, levers-off byte-identity on the
    pinned regression seeds, lever-combination chaos/durability sweeps,
    and the group-commit amortization the bench measures. *)

module B = Sim.Batch
module KW = Kv.Kv_wal
module KC = Kv.Chaos_db
module KN = Kv.Node
module C = Engine.Chaos
module R = Engine.Runtime

let rb_c3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))

(* A manual timer queue standing in for the site-bound scheduler: the
   batcher only needs "run this later, unless crashed first". *)
let manual_clock () =
  let timers = Queue.create () in
  let schedule _delay k = Queue.push k timers in
  let fire_all () =
    while not (Queue.is_empty timers) do
      (Queue.pop timers) ()
    done
  in
  (schedule, fire_all)

(* ---------------- Sim.Batch unit semantics ---------------- *)

let test_batch_unattached_is_synchronous () =
  let syncs = ref 0 in
  let b = B.create ~group:{ B.max_batch = 8; max_wait = 1.0 } ~sync_latency:2.0
      ~sync:(fun () -> incr syncs) ()
  in
  let fired = ref false in
  B.submit b (fun () -> fired := true);
  Alcotest.(check bool) "callback ran synchronously" true !fired;
  Alcotest.(check int) "one sync" 1 !syncs;
  Alcotest.(check int) "nothing pending" 0 (B.pending b)

let test_batch_max_batch_coalesces () =
  let syncs = ref 0 and flushes = ref [] and order = ref [] in
  let b = B.create ~group:{ B.max_batch = 3; max_wait = 5.0 } ~sync:(fun () -> incr syncs) () in
  let schedule, fire_all = manual_clock () in
  B.attach b ~schedule ~on_flush:(fun ~batch -> flushes := batch :: !flushes) ();
  B.submit b (fun () -> order := 1 :: !order);
  B.submit b (fun () -> order := 2 :: !order);
  Alcotest.(check int) "below max_batch: no sync yet" 0 !syncs;
  Alcotest.(check int) "two pending" 2 (B.pending b);
  B.submit b (fun () -> order := 3 :: !order);
  Alcotest.(check int) "one shared sync" 1 !syncs;
  Alcotest.(check (list int)) "one flush of three records" [ 3 ] !flushes;
  Alcotest.(check (list int)) "callbacks in submission order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "drained" 0 (B.pending b);
  fire_all ();
  Alcotest.(check int) "stale max_wait timers are no-ops" 1 !syncs

let test_batch_max_wait_flushes_stragglers () =
  let syncs = ref 0 and flushes = ref [] and order = ref [] in
  let b = B.create ~group:{ B.max_batch = 8; max_wait = 0.05 } ~sync:(fun () -> incr syncs) () in
  let schedule, fire_all = manual_clock () in
  B.attach b ~schedule ~on_flush:(fun ~batch -> flushes := batch :: !flushes) ();
  B.submit b (fun () -> order := 1 :: !order);
  B.submit b (fun () -> order := 2 :: !order);
  Alcotest.(check int) "nothing flushed before the timer" 0 !syncs;
  fire_all ();
  Alcotest.(check int) "timer flushed the stragglers" 1 !syncs;
  Alcotest.(check (list int)) "both records in one batch" [ 2 ] !flushes;
  Alcotest.(check (list int)) "in order" [ 1; 2 ] (List.rev !order)

let test_batch_fifo_across_batches_under_latency () =
  (* the saturated-disk regime: arrivals accumulate while a sync is in
     flight, and the next batch forms the moment it completes *)
  let syncs = ref 0 and flushes = ref [] and order = ref [] in
  let b = B.create ~group:{ B.max_batch = 2; max_wait = 0.5 } ~sync_latency:1.0
      ~sync:(fun () -> incr syncs) ()
  in
  let schedule, fire_all = manual_clock () in
  B.attach b ~schedule ~on_flush:(fun ~batch -> flushes := batch :: !flushes) ();
  List.iter (fun i -> B.submit b (fun () -> order := i :: !order)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "first sync still in flight" 0 !syncs;
  Alcotest.(check int) "all five pending" 5 (B.pending b);
  fire_all ();
  Alcotest.(check int) "three syncs for five records" 3 !syncs;
  Alcotest.(check (list int)) "batch sizes 2,2,1" [ 2; 2; 1 ] (List.rev !flushes);
  Alcotest.(check (list int)) "strict FIFO across batches" [ 1; 2; 3; 4; 5 ] (List.rev !order);
  Alcotest.(check int) "drained" 0 (B.pending b)

let test_batch_barrier_semantics () =
  let syncs = ref 0 and order = ref [] in
  let b = B.create ~group:{ B.max_batch = 4; max_wait = 0.05 } ~sync:(fun () -> incr syncs) () in
  let schedule, fire_all = manual_clock () in
  B.attach b ~schedule ();
  (* idle: a barrier runs immediately and never syncs *)
  let idle = ref false in
  B.barrier b (fun () -> idle := true);
  Alcotest.(check bool) "idle barrier immediate" true !idle;
  Alcotest.(check int) "no sync for a bare barrier" 0 !syncs;
  (* queued behind a record: rides the record's batch *)
  B.submit b (fun () -> order := 1 :: !order);
  B.barrier b (fun () -> order := 2 :: !order);
  Alcotest.(check (list int)) "barrier waits for the record" [] !order;
  fire_all ();
  Alcotest.(check (list int)) "record then barrier" [ 1; 2 ] (List.rev !order);
  Alcotest.(check int) "one sync covered both" 1 !syncs

let test_batch_crash_drops_queue_and_fences_inflight () =
  let syncs = ref 0 and order = ref [] in
  let b = B.create ~group:{ B.max_batch = 2; max_wait = 0.5 } ~sync_latency:1.0
      ~sync:(fun () -> incr syncs) ()
  in
  let schedule, fire_all = manual_clock () in
  B.attach b ~schedule ();
  (* batch of two in flight, a third queued behind it *)
  List.iter (fun i -> B.submit b (fun () -> order := i :: !order)) [ 1; 2; 3 ];
  B.crash b;
  Alcotest.(check int) "crash clears pending" 0 (B.pending b);
  fire_all ();
  Alcotest.(check int) "fenced in-flight completion never syncs" 0 !syncs;
  Alcotest.(check (list int)) "no callback survives the crash" [] !order;
  (* the batcher is usable again after the crash *)
  B.submit b (fun () -> order := 9 :: !order);
  fire_all ();
  Alcotest.(check (list int)) "post-crash submission completes" [ 9 ] !order;
  Alcotest.(check int) "post-crash sync ran" 1 !syncs

(* ---------------- crash inside a group-commit batch ---------------- *)

let test_kv_wal_crash_inside_batch_loses_decision () =
  (* a coordinator's decision record is appended and ticketed but the
     covering sync never completes: the crash must lose the record and
     the completion callback — the covered transaction never commits *)
  let wal = KW.create ~durable:true ~group_commit:{ KW.max_batch = 8; max_wait = 0.05 }
      ~sync_latency:0.5 ()
  in
  let schedule, fire_all = manual_clock () in
  KW.attach wal ~metrics:(Sim.Metrics.create ()) ~schedule;
  let committed = ref false in
  KW.force_k wal (KW.C_decided { txn = 1; commit = true }) (fun () -> committed := true);
  Alcotest.(check int) "force ticketed, not yet durable" 1 (KW.pending_forces wal);
  Alcotest.(check bool) "decision not yet acknowledged" false !committed;
  ignore (KW.crash wal);
  fire_all ();
  Alcotest.(check bool) "crash inside the batch: commit never acknowledged" false !committed;
  Alcotest.(check int) "no pending forces after crash" 0 (KW.pending_forces wal);
  (match KW.classify_coordinator wal ~txn:1 with
  | KW.C_unknown -> ()
  | c ->
      Alcotest.failf "decision record survived the crash: %s"
        (match c with
        | KW.C_unknown -> "unknown"
        | KW.C_collecting _ -> "collecting"
        | KW.C_in_precommit _ -> "in-precommit"
        | KW.C_resolved _ -> "resolved"));
  (* same force after recovery completes normally *)
  let committed' = ref false in
  KW.force_k wal (KW.C_decided { txn = 1; commit = true }) (fun () -> committed' := true);
  fire_all ();
  Alcotest.(check bool) "post-recovery force completes" true !committed'

(* ---------------- levers off: pinned seeds replay unchanged ---------------- *)

let test_kv_pinned_seeds_unchanged_with_levers_off () =
  List.iter
    (fun seed ->
      let a = KC.run_one ~n_sites:4 ~k:1 ~seed () in
      let b =
        KC.run_one ~presumption:KN.No_presumption ~read_only_opt:false ~sync_latency:0.0
          ~pipeline_depth:1 ~n_sites:4 ~k:1 ~seed ()
      in
      Alcotest.(check int) (Fmt.str "seed %d committed" seed) a.KC.result.Kv.Db.committed
        b.KC.result.Kv.Db.committed;
      Alcotest.(check int) (Fmt.str "seed %d aborted" seed) a.KC.result.Kv.Db.aborted
        b.KC.result.Kv.Db.aborted;
      Alcotest.(check int)
        (Fmt.str "seed %d messages" seed)
        a.KC.result.Kv.Db.messages_sent b.KC.result.Kv.Db.messages_sent;
      Alcotest.(check int) (Fmt.str "seed %d clean" seed) 0 (List.length b.KC.violations);
      Alcotest.(check string)
        (Fmt.str "seed %d metrics byte-identical" seed)
        (Sim.Json.to_string (Sim.Metrics.to_json ~drop_wall:true a.KC.result.Kv.Db.run_metrics))
        (Sim.Json.to_string (Sim.Metrics.to_json ~drop_wall:true b.KC.result.Kv.Db.run_metrics)))
    [ 48; 176 ]

let test_engine_seed34_ablation_unchanged_with_levers_off () =
  (* the pinned durability-ablation seed still breaches — and the
     explicit levers-off spelling changes nothing about the run *)
  let has_durability vs = List.exists (fun (v : C.violation) -> v.C.oracle = C.Durability) vs in
  let a = C.run_one ~late_force:true (Lazy.force rb_c3) ~k:1 ~seed:34 () in
  let b =
    C.run_one ~presumption:R.No_presumption ~read_only:[] ~sync_latency:0.0 ~late_force:true
      (Lazy.force rb_c3) ~k:1 ~seed:34 ()
  in
  Alcotest.(check bool) "seed 34 still breaches" true (has_durability a.C.violations);
  Alcotest.(check bool) "same plan" true (Engine.Failure_plan.equal a.C.plan b.C.plan);
  Alcotest.(check int) "same messages" a.C.result.R.messages_sent b.C.result.R.messages_sent;
  Alcotest.(check int) "same verdicts" (List.length a.C.violations) (List.length b.C.violations)

(* ---------------- lever combinations stay oracle-clean ---------------- *)

let gc = { KW.max_batch = 8; max_wait = 0.05 }

let test_kv_lever_combos_sweep_clean () =
  let sweep name f =
    let s = f () in
    Alcotest.(check int) (name ^ " clean") 0 (List.length s.KC.violations_by_oracle)
  in
  sweep "presume-abort" (fun () ->
      KC.sweep ~presumption:KN.Presume_abort ~durable_wal:true ~n_sites:4 ~k:1 ~seeds:10 ());
  sweep "presume-commit + read-only" (fun () ->
      KC.sweep ~presumption:KN.Presume_commit ~read_only_opt:true ~durable_wal:true ~n_sites:4
        ~k:1 ~seeds:10 ());
  sweep "group commit + pipelining" (fun () ->
      KC.sweep ~group_commit:gc ~sync_latency:0.3 ~pipeline_depth:4 ~durable_wal:true ~n_sites:4
        ~k:1 ~seeds:10 ());
  sweep "all levers" (fun () ->
      KC.sweep ~presumption:KN.Presume_commit ~read_only_opt:true ~group_commit:gc
        ~sync_latency:0.3 ~pipeline_depth:4 ~durable_wal:true ~n_sites:4 ~k:1 ~seeds:10 ())

let test_engine_lever_combos_sweep_clean () =
  let rb = Lazy.force rb_c3 in
  let egc = { Engine.Wal.max_batch = 4; max_wait = 0.05 } in
  let sweep name f =
    let s = f () in
    Alcotest.(check int) (name ^ " clean") 0 (List.length s.C.violations_by_oracle)
  in
  sweep "presume-abort" (fun () -> C.sweep ~presumption:R.Presume_abort rb ~k:1 ~seeds:15 ());
  sweep "presume-commit" (fun () -> C.sweep ~presumption:R.Presume_commit rb ~k:1 ~seeds:15 ());
  sweep "read-only participant" (fun () -> C.sweep ~read_only:[ 2 ] rb ~k:1 ~seeds:15 ());
  sweep "group commit + sync latency" (fun () ->
      C.sweep ~group_commit:egc ~sync_latency:0.3 rb ~k:1 ~seeds:15 ());
  sweep "all levers" (fun () ->
      C.sweep ~presumption:R.Presume_abort ~read_only:[ 2 ] ~group_commit:egc ~sync_latency:0.3
        rb ~k:1 ~seeds:15 ());
  sweep "all levers under detector" (fun () ->
      C.sweep ~presumption:R.Presume_abort ~read_only:[ 2 ] ~group_commit:egc ~sync_latency:0.3
        ~detector:true rb ~k:1 ~seeds:10 ())

(* ---------------- group commit amortizes, pipelining overlaps ---------------- *)

let test_kv_group_commit_amortizes_syncs () =
  let workload =
    Kv.Workload.bank (Sim.Rng.create ~seed:11) ~n_txns:40 ~accounts:64 ~arrival_rate:8.0
  in
  let initial_data = Kv.Workload.bank_initial ~accounts:64 ~initial_balance:100 in
  let run cfg = Kv.Db.run cfg workload in
  let base =
    run (Kv.Db.config ~n_sites:4 ~durable_wal:true ~sync_latency:0.4 ~initial_data ())
  in
  let levers =
    run
      (Kv.Db.config ~n_sites:4 ~durable_wal:true ~sync_latency:0.4 ~group_commit:gc
         ~pipeline_depth:8 ~initial_data ())
  in
  Alcotest.(check bool) "baseline commits" true (base.Kv.Db.committed > 0);
  Alcotest.(check bool) "levers commit at least as much" true
    (levers.Kv.Db.committed >= base.Kv.Db.committed);
  Alcotest.(check bool) "both atomic" true (base.Kv.Db.atomicity_ok && levers.Kv.Db.atomicity_ok);
  let counter r name =
    match List.assoc_opt name r.Kv.Db.metrics with Some v -> v | None -> 0
  in
  let forces = counter levers "wal_forces" and flushes = counter levers "wal_group_flushes" in
  Alcotest.(check bool) "forces happened" true (forces > 0);
  Alcotest.(check bool)
    (Fmt.str "syncs amortized (%d flushes for %d forces)" flushes forces)
    true
    (flushes > 0 && flushes < forces);
  Alcotest.(check bool)
    (Fmt.str "pipelining finishes no later (%.1f vs %.1f)" levers.Kv.Db.duration
       base.Kv.Db.duration)
    true
    (levers.Kv.Db.duration <= base.Kv.Db.duration)

(* Regression: a chaos-delayed Prepare delivered after its coordinator's
   failure notification must be refused (unilateral abort + no vote), not
   voted on — nothing would ever re-examine the transaction, leaving the
   participant in-doubt at quiescence.  Seed 0 under presume-commit +
   sync latency at n=3 pins the original counterexample (shrunk plan:
   crash site 1 at t=27 with prepare #28 delayed past the crash). *)
let test_kv_orphan_prepare_is_refused () =
  let o =
    KC.run_one ~protocol:KN.Three_phase ~n_sites:3 ~presumption:KN.Presume_commit
      ~sync_latency:0.3 ~k:1 ~seed:0 ()
  in
  Alcotest.(check int) "no violations" 0 (List.length o.KC.violations);
  let refused =
    match List.assoc_opt "orphan_prepare_refused" o.KC.result.Kv.Db.metrics with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check bool)
    (Fmt.str "the orphaned prepare was exercised (%d refused)" refused)
    true (refused > 0)

let suite =
  [
    Alcotest.test_case "batch: unattached is synchronous" `Quick test_batch_unattached_is_synchronous;
    Alcotest.test_case "batch: max_batch coalesces" `Quick test_batch_max_batch_coalesces;
    Alcotest.test_case "batch: max_wait flushes stragglers" `Quick
      test_batch_max_wait_flushes_stragglers;
    Alcotest.test_case "batch: FIFO across batches under latency" `Quick
      test_batch_fifo_across_batches_under_latency;
    Alcotest.test_case "batch: barrier semantics" `Quick test_batch_barrier_semantics;
    Alcotest.test_case "batch: crash drops queue, fences in-flight" `Quick
      test_batch_crash_drops_queue_and_fences_inflight;
    Alcotest.test_case "kv wal: crash inside batch loses decision" `Quick
      test_kv_wal_crash_inside_batch_loses_decision;
    Alcotest.test_case "kv: pinned seeds unchanged with levers off" `Quick
      test_kv_pinned_seeds_unchanged_with_levers_off;
    Alcotest.test_case "engine: seed 34 ablation unchanged with levers off" `Quick
      test_engine_seed34_ablation_unchanged_with_levers_off;
    Alcotest.test_case "kv: orphaned prepare is refused" `Quick test_kv_orphan_prepare_is_refused;
    Alcotest.test_case "kv: lever combos sweep clean" `Quick test_kv_lever_combos_sweep_clean;
    Alcotest.test_case "engine: lever combos sweep clean" `Quick
      test_engine_lever_combos_sweep_clean;
    Alcotest.test_case "kv: group commit amortizes syncs" `Quick
      test_kv_group_commit_amortizes_syncs;
  ]
