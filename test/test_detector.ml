(** Tests for the unreliable failure detector ({!Sim.Detector} wired into
    {!Engine.Runtime}): crash-hook composability, suspicion-driven
    termination, false-suspicion retraction (and the thaw that undoes an
    unwarranted freeze), the stall grace on wake-up, oracle-mode runs
    staying detector-free, the election/rank differential against the
    paper's reliable-detector oracle, and the pinned epoch-fencing
    ablation that reproduces a split-brain when fencing is off. *)

module C = Engine.Chaos
module FP = Engine.Failure_plan
module R = Engine.Runtime
module M = Sim.Metrics

let rb_c3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))
let rb_c4 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 4))

let has o vs = List.exists (fun (v : C.violation) -> v.C.oracle = o) vs
let plan_of = FP.of_string_exn

(* ---------------- crash hooks compose ---------------- *)

let test_crash_hooks_compose () =
  (* the WAL layer and the detector both register crash hooks on the same
     world; each registration must append, and all hooks must run, in
     registration order, on every crash *)
  let world = Sim.World.create ~n_sites:3 ~seed:0 ~msg_to_string:(fun (s : string) -> s) () in
  let calls = ref [] in
  Sim.World.add_crash_hook world (fun s -> calls := ("first", s) :: !calls);
  Sim.World.add_crash_hook world (fun s -> calls := ("second", s) :: !calls);
  Sim.World.schedule_crash world ~at:1.0 2;
  Sim.World.schedule_crash world ~at:2.0 3;
  let nop _ =
    {
      Sim.World.on_start = (fun _ -> ());
      on_message = (fun _ ~src:_ _ -> ());
      on_peer_down = (fun _ _ -> ());
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run world ~handlers:nop ~until:5.0 ());
  Alcotest.(check (list (pair string int)))
    "both hooks fire on each crash, in registration order"
    [ ("first", 2); ("second", 2); ("first", 3); ("second", 3) ]
    (List.rev !calls)

(* ---------------- suspicion-driven termination ---------------- *)

let test_detector_terminates_after_real_crash () =
  (* no oracle: the survivors must suspect the crashed coordinator by
     timeout, elect a backup and finish the transaction on their own *)
  let result, violations =
    C.run_plan (Lazy.force rb_c3) ~detector:true ~plan:(plan_of "crash site=1 at=0.5") ~seed:3 ()
  in
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check bool) "consistent" true result.R.consistent;
  Alcotest.(check bool) "operational sites decided" true result.R.all_operational_decided;
  Alcotest.(check bool)
    "at least one election was started by suspicion" true
    (M.counter result.R.run_metrics "elections_started" >= 1);
  Alcotest.(check int) "a real crash is not a false suspicion" 0
    (M.counter result.R.run_metrics "false_suspicions")

(* ---------------- false suspicion: retraction and thaw ---------------- *)

let stall_plan = "stall site=2 from=2 until=10"

let test_false_suspicion_retracts_and_run_decides () =
  (* a GC pause longer than the suspicion timeout: site 2 is falsely
     suspected while stalled, the suspicion is retracted when its
     heartbeats resume, and the unwarranted freeze thaws — the run must
     still decide everywhere, with zero violations *)
  let result, violations =
    C.run_plan (Lazy.force rb_c3) ~detector:true ~plan:(plan_of stall_plan) ~seed:5 ()
  in
  Alcotest.(check bool) "somebody was falsely suspected" true
    (M.counter result.R.run_metrics "false_suspicions" >= 1);
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check bool) "consistent" true result.R.consistent;
  Alcotest.(check bool) "every operational site decided" true result.R.all_operational_decided

let test_stall_wakeup_grace () =
  (* waking from a stall refreshes the sleeper's last-heard table: site 2
     must not mass-suspect the peers whose messages were parked during
     its pause *)
  let result, _ =
    C.run_plan (Lazy.force rb_c3) ~detector:true ~tracing:true ~plan:(plan_of stall_plan) ~seed:5 ()
  in
  let offending =
    List.filter
      (fun (e : Sim.World.trace_entry) ->
        let w = e.Sim.World.what in
        let prefix = "site 2 FALSELY suspects" in
        String.length w >= String.length prefix && String.sub w 0 (String.length prefix) = prefix)
      result.R.trace
  in
  Alcotest.(check int) "the stalled site suspects nobody on wake-up" 0 (List.length offending)

(* ---------------- oracle mode stays detector-free ---------------- *)

let test_oracle_mode_has_no_detector_traffic () =
  (* the default (reliable-oracle) configuration must not grow
     heartbeats, suspicions or timeout elections: pre-detector runs
     replay unchanged *)
  let result, violations =
    C.run_plan (Lazy.force rb_c3) ~tracing:true ~plan:(plan_of "crash site=1 at=0.5") ~seed:3 ()
  in
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check int) "no false suspicions" 0 (M.counter result.R.run_metrics "false_suspicions");
  Alcotest.(check int) "no timeout elections" 0
    (M.counter result.R.run_metrics "elections_started");
  let suspicious =
    List.filter
      (fun (e : Sim.World.trace_entry) ->
        let w = e.Sim.World.what in
        let contains sub =
          let n = String.length w and m = String.length sub in
          let rec go i = i + m <= n && (String.sub w i m = sub || go (i + 1)) in
          go 0
        in
        contains "suspects" || contains "heartbeat")
      result.R.trace
  in
  Alcotest.(check int) "no suspicion or heartbeat trace lines" 0 (List.length suspicious)

(* ---------------- election vs. the paper's rank rule ---------------- *)

let leaders_of (r : R.result) =
  (* distinct leader sites in directive order *)
  List.rev
    (List.fold_left
       (fun acc (site, _) -> if List.mem site acc then acc else site :: acc)
       []
       r.R.directive_epochs)

let check_epochs_monotone name (r : R.result) =
  let rec go = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        Alcotest.(check bool) (Fmt.str "%s: epoch %d < %d" name a b) true (a < b);
        go rest
    | _ -> ()
  in
  go r.R.directive_epochs

let test_election_matches_rank_rule () =
  (* under pure crash schedules the timeout detector must elect exactly
     the site the paper's deterministic rank rule picks (smallest
     operational never-crashed id), and reach the same verdict *)
  List.iter
    (fun (plan, expected_leader) ->
      let oracle, ov = C.run_plan (Lazy.force rb_c3) ~plan:(plan_of plan) ~seed:11 () in
      let detect, dv =
        C.run_plan (Lazy.force rb_c3) ~detector:true ~plan:(plan_of plan) ~seed:11 ()
      in
      Alcotest.(check int) (plan ^ ": oracle run clean") 0 (List.length ov);
      Alcotest.(check int) (plan ^ ": detector run clean") 0 (List.length dv);
      Alcotest.(check (list int)) (plan ^ ": same leaders as the oracle") (leaders_of oracle)
        (leaders_of detect);
      Alcotest.(check (option int))
        (plan ^ ": rank rule elects the expected backup")
        (Some expected_leader)
        (match leaders_of detect with [] -> None | s :: _ -> Some s);
      Alcotest.(check bool)
        (plan ^ ": same global outcome")
        true
        (oracle.R.global_outcome = detect.R.global_outcome);
      check_epochs_monotone (plan ^ ": oracle") oracle;
      check_epochs_monotone (plan ^ ": detector") detect)
    [
      ("crash site=1 at=0.5", 2);
      ("crash site=1 at=0.5; crash site=2 at=1", 3);
    ]

(* ---------------- the epoch-fencing ablation ---------------- *)

(* The pinned split-brain schedule (experiment E16, n = 4): the
   coordinator logs its own precommit and reaches only site 2 before
   crashing; site 2 then stalls through the first termination round, so
   site 3 leads at epoch 2, plants that epoch at site 4 via its phase-1
   [Move_to], decides from the freshest state — and crashes before
   announcing ([sent=0]).  When site 2 wakes it leads at its stale epoch
   1 and moves everyone to its older state.  Fencing makes site 4 refuse
   the stale directive; without fencing site 2's branch decides against
   site 3's logged decision. *)
let fencing_pinned =
  "step-crash site=1 step=1 mode=after-logging:1; stall site=2 from=4 until=14; decide-crash \
   site=3 sent=0"

let test_fencing_ablation_pinned () =
  let _, off =
    C.run_plan (Lazy.force rb_c4) ~detector:true ~fencing:false ~plan:(plan_of fencing_pinned)
      ~seed:1 ()
  in
  Alcotest.(check bool) "no fencing: atomicity violated" true (has C.Atomicity off);
  let on_result, on_ =
    C.run_plan (Lazy.force rb_c4) ~detector:true ~plan:(plan_of fencing_pinned) ~seed:1 ()
  in
  Alcotest.(check bool) "fencing: atomicity holds" false (has C.Atomicity on_);
  Alcotest.(check bool) "fencing: no split-brain" false (has C.Split_brain on_);
  Alcotest.(check bool)
    "fencing: the stale directive was rejected" true
    (M.counter on_result.R.run_metrics "epoch_rejected_directives" >= 1)

let test_fencing_counterexample_shrinks_and_replays () =
  let minimal, _runs =
    C.shrink (Lazy.force rb_c4) ~detector:true ~fencing:false ~seed:1 ~oracle:C.Atomicity
      (plan_of fencing_pinned)
  in
  (* all three faults are load-bearing: drop any one and the split heals *)
  Alcotest.(check int) "three faults are minimal" 3 (FP.fault_count minimal);
  let reloaded = plan_of (FP.to_string minimal) in
  let _, violations =
    C.run_plan (Lazy.force rb_c4) ~detector:true ~fencing:false ~plan:reloaded ~seed:1 ()
  in
  Alcotest.(check bool) "reloaded plan still splits the brain" true (has C.Atomicity violations)

(* ---------------- the database harness under the detector ---------------- *)

let kv_safety_violations (s : Kv.Chaos_db.summary) =
  List.filter
    (fun (o, _) ->
      match o with
      | Kv.Chaos_db.Atomicity | Kv.Chaos_db.Conservation | Kv.Chaos_db.Split_brain -> true
      | Kv.Chaos_db.Progress | Kv.Chaos_db.Durability -> false)
    s.Kv.Chaos_db.violations_by_oracle

let test_kv_detector_sweep_safe () =
  (* the end-to-end bank under timeout suspicion: slower terminations are
     acceptable, lost money or split decisions are not *)
  let s = Kv.Chaos_db.sweep ~n_sites:4 ~detector:true ~k:1 ~seeds:12 () in
  Alcotest.(check int) "12 seeds run" 12 s.Kv.Chaos_db.seeds_run;
  Alcotest.(check int) "no safety violations" 0 (List.length (kv_safety_violations s))

let suite =
  [
    Alcotest.test_case "crash hooks compose" `Quick test_crash_hooks_compose;
    Alcotest.test_case "detector terminates after a real crash" `Quick
      test_detector_terminates_after_real_crash;
    Alcotest.test_case "false suspicion retracts; run decides" `Quick
      test_false_suspicion_retracts_and_run_decides;
    Alcotest.test_case "stall wake-up grace" `Quick test_stall_wakeup_grace;
    Alcotest.test_case "oracle mode has no detector traffic" `Quick
      test_oracle_mode_has_no_detector_traffic;
    Alcotest.test_case "election matches the rank rule" `Quick test_election_matches_rank_rule;
    Alcotest.test_case "fencing ablation: pinned split-brain" `Quick test_fencing_ablation_pinned;
    Alcotest.test_case "fencing counterexample shrinks and replays" `Quick
      test_fencing_counterexample_shrinks_and_replays;
    Alcotest.test_case "kv: detector sweep is safe" `Quick test_kv_detector_sweep_safe;
  ]
