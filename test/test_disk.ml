(** Tests for {!Sim.Disk}: the write/sync/crash durability contract, the
    three injectable storage faults, and the {!Sim.Disk.Frame} scan that
    recovery relies on to cut a damaged log back to its valid prefix. *)

module D = Sim.Disk

let b s = Bytes.of_string s
let s b = Bytes.to_string b

(* ---------------- write / sync / crash ---------------- *)

let test_write_is_volatile_until_sync () =
  let d = D.create ~seed:1 () in
  D.write d (b "hello");
  Alcotest.(check int) "nothing durable yet" 0 (D.durable_bytes d);
  Alcotest.(check int) "pending" 5 (D.pending_bytes d);
  Alcotest.(check string) "a live reader sees it" "hello" (s (D.contents d));
  Alcotest.(check string) "a crash would not" "" (s (D.durable_contents d));
  D.sync d;
  Alcotest.(check int) "sync made it durable" 5 (D.durable_bytes d);
  Alcotest.(check string) "on the platter" "hello" (s (D.durable_contents d))

let test_crash_loses_unsynced_tail () =
  let d = D.create ~seed:1 () in
  D.write d (b "keep");
  D.sync d;
  D.write d (b "lose");
  D.crash d;
  Alcotest.(check string) "synced prefix survives" "keep" (s (D.durable_contents d));
  Alcotest.(check int) "pending gone" 0 (D.pending_bytes d);
  Alcotest.(check string) "live view = durable view after a crash" "keep" (s (D.contents d))

let test_truncate_cuts_durable_image () =
  let d = D.create ~seed:1 () in
  D.write d (b "0123456789");
  D.sync d;
  D.truncate d 4;
  Alcotest.(check string) "cut to first n bytes" "0123" (s (D.durable_contents d));
  D.truncate d 99;
  Alcotest.(check string) "over-long truncate is a no-op" "0123" (s (D.durable_contents d))

(* ---------------- lost flush ---------------- *)

let test_lost_flush_lies_then_crash_loses_acknowledged_bytes () =
  let d = D.create ~seed:1 () in
  D.set_faults d [ { D.fault = D.Lost_flush; nth = 0 } ];
  D.write d (b "vote");
  D.sync d;
  (* the barrier lied: the caller thinks "vote" is durable *)
  Alcotest.(check int) "nothing on the platter" 0 (D.durable_bytes d);
  Alcotest.(check int) "bytes in limbo" 4 (D.limbo_bytes d);
  Alcotest.(check string) "a live reader still sees them" "vote" (s (D.contents d));
  Alcotest.(check int) "the lie is counted" 1 (D.stats d).D.lost_flushes;
  D.crash d;
  Alcotest.(check string) "crash loses what the sync acknowledged" "" (s (D.durable_contents d))

let test_lost_flush_limbo_flushed_by_next_sync () =
  let d = D.create ~seed:1 () in
  D.set_faults d [ { D.fault = D.Lost_flush; nth = 0 } ];
  D.write d (b "a");
  D.sync d;
  D.write d (b "b");
  D.sync d;
  (* the next successful sync flushes limbo and pending, in order *)
  Alcotest.(check string) "everything durable, in order" "ab" (s (D.durable_contents d));
  Alcotest.(check int) "limbo drained" 0 (D.limbo_bytes d)

(* ---------------- torn and corrupt tails ---------------- *)

let test_torn_crash_keeps_strict_prefix_of_tail () =
  let d = D.create ~seed:3 () in
  D.write d (b "prefix.");
  D.sync d;
  D.set_faults d [ { D.fault = D.Torn; nth = 0 } ];
  D.write d (b "torn-tail");
  D.crash d;
  let image = s (D.durable_contents d) in
  let n = String.length image in
  Alcotest.(check bool) "synced prefix intact" true (n >= 7 && String.sub image 0 7 = "prefix.");
  Alcotest.(check bool) "a strict prefix of the tail persisted" true (n < 7 + 9);
  Alcotest.(check string) "what persisted is a prefix, not garbage"
    (String.sub "prefix.torn-tail" 0 n) image;
  Alcotest.(check int) "fault counted" 1 (D.stats d).D.torn_fired

let test_corrupt_crash_flips_exactly_one_bit () =
  let d = D.create ~seed:3 () in
  D.write d (b "prefix.");
  D.sync d;
  D.set_faults d [ { D.fault = D.Corrupt; nth = 0 } ];
  D.write d (b "tail");
  D.crash d;
  let image = s (D.durable_contents d) in
  Alcotest.(check int) "tail persists in full" (7 + 4) (String.length image);
  Alcotest.(check string) "prefix untouched" "prefix." (String.sub image 0 7);
  let original = "prefix.tail" in
  let flipped_bits = ref 0 in
  String.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code original.[i] in
      let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
      flipped_bits := !flipped_bits + popcount x)
    image;
  Alcotest.(check int) "exactly one flipped bit" 1 !flipped_bits;
  Alcotest.(check int) "fault counted" 1 (D.stats d).D.corrupt_fired

let test_faults_key_on_occurrence_index () =
  (* an injection armed for the second crash must not fire at the first *)
  let d = D.create ~seed:5 () in
  D.set_faults d [ { D.fault = D.Corrupt; nth = 1 } ];
  D.write d (b "one");
  D.crash d;
  Alcotest.(check string) "first crash loses the tail cleanly" "" (s (D.durable_contents d));
  D.write d (b "two");
  D.crash d;
  Alcotest.(check int) "second crash fires the injection" 1 (D.stats d).D.corrupt_fired

(* ---------------- the frame scan ---------------- *)

let encode_all payloads =
  let buf = Buffer.create 64 in
  List.iter (fun p -> Buffer.add_bytes buf (D.Frame.encode (b p))) payloads;
  Buffer.to_bytes buf

let payloads_testable = Alcotest.(list string)
let scanned image = let ps, r = D.Frame.scan image in (List.map s ps, r)

let test_frame_round_trip () =
  let ps, repair = scanned (encode_all [ "a"; ""; "longer payload" ]) in
  Alcotest.check payloads_testable "all payloads back" [ "a"; ""; "longer payload" ] ps;
  Alcotest.(check bool) "clean" true (D.Frame.clean repair);
  Alcotest.(check int) "counted" 3 repair.D.Frame.valid_records

let test_frame_scan_stops_at_torn_body () =
  let good = encode_all [ "first"; "second" ] in
  let torn = Bytes.sub (encode_all [ "first"; "second"; "third" ]) 0 (Bytes.length good + 9) in
  let ps, repair = scanned torn in
  Alcotest.check payloads_testable "valid prefix survives" [ "first"; "second" ] ps;
  Alcotest.(check (option string)) "reason names the tear" (Some "torn record body")
    repair.D.Frame.reason;
  Alcotest.(check int) "dropped bytes counted" 9 repair.D.Frame.dropped_bytes

let test_frame_scan_stops_at_checksum_mismatch () =
  let image = encode_all [ "first"; "second" ] in
  (* flip a bit inside the second frame's payload *)
  let off = Bytes.length (D.Frame.encode (b "first")) + D.Frame.header_len in
  Bytes.set image off (Char.chr (Char.code (Bytes.get image off) lxor 1));
  let ps, repair = scanned image in
  Alcotest.check payloads_testable "only the first survives" [ "first" ] ps;
  Alcotest.(check (option string)) "reason" (Some "checksum mismatch") repair.D.Frame.reason

let test_frame_scan_stops_at_absurd_length () =
  let image = encode_all [ "ok" ] in
  let garbage = Bytes.make D.Frame.header_len '\xff' in
  let ps, repair = scanned (Bytes.cat image garbage) in
  Alcotest.check payloads_testable "valid prefix survives" [ "ok" ] ps;
  Alcotest.(check bool) "reason mentions the length" true
    (match repair.D.Frame.reason with
    | Some r -> String.length r >= 6 && String.sub r 0 6 = "absurd"
    | None -> false)

let gen_payloads =
  QCheck2.Gen.(small_list (string_size (int_range 0 20)))

let prop_scan_of_any_cut_is_a_valid_prefix =
  Helpers.qtest "scan of any cut image yields a prefix of the payloads"
    QCheck2.Gen.(pair gen_payloads (int_range 0 1000))
    (fun (payloads, cut) ->
      let image = encode_all payloads in
      let cut = min cut (Bytes.length image) in
      let ps, repair = D.Frame.scan (Bytes.sub image 0 cut) in
      let survived = List.map s ps in
      let expected_prefix =
        List.filteri (fun i _ -> i < List.length survived) payloads
      in
      survived = expected_prefix
      && repair.D.Frame.valid_records = List.length survived
      && D.Frame.clean repair = (repair.D.Frame.dropped_bytes = 0)
      && repair.D.Frame.dropped_bytes >= 0)

let suite =
  [
    Alcotest.test_case "write is volatile until sync" `Quick test_write_is_volatile_until_sync;
    Alcotest.test_case "crash loses the unsynced tail" `Quick test_crash_loses_unsynced_tail;
    Alcotest.test_case "truncate cuts the durable image" `Quick test_truncate_cuts_durable_image;
    Alcotest.test_case "lost flush: lie then crash" `Quick
      test_lost_flush_lies_then_crash_loses_acknowledged_bytes;
    Alcotest.test_case "lost flush: next sync flushes limbo" `Quick
      test_lost_flush_limbo_flushed_by_next_sync;
    Alcotest.test_case "torn crash keeps a strict prefix" `Quick
      test_torn_crash_keeps_strict_prefix_of_tail;
    Alcotest.test_case "corrupt crash flips one bit" `Quick test_corrupt_crash_flips_exactly_one_bit;
    Alcotest.test_case "faults key on occurrence index" `Quick test_faults_key_on_occurrence_index;
    Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
    Alcotest.test_case "frame scan: torn body" `Quick test_frame_scan_stops_at_torn_body;
    Alcotest.test_case "frame scan: checksum mismatch" `Quick
      test_frame_scan_stops_at_checksum_mismatch;
    Alcotest.test_case "frame scan: absurd length" `Quick test_frame_scan_stops_at_absurd_length;
    prop_scan_of_any_cut_is_a_valid_prefix;
  ]
