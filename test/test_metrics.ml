(** Tests for {!Sim.Metrics}: the geometric-bucket histograms behind the
    observability layer — bucket boundaries, percentile accuracy against
    a sorted-sample oracle, JSON export round-trips, and determinism. *)

module M = Sim.Metrics
module J = Sim.Json

(* ---------------- bucket layout ---------------- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "zero -> bucket 0" 0 (M.bucket_index 0.0);
  Alcotest.(check int) "negative -> bucket 0" 0 (M.bucket_index (-3.0));
  Alcotest.(check int) "tiny -> bucket 0" 0 (M.bucket_index 1e-9);
  Alcotest.(check int) "nan -> bucket 0" 0 (M.bucket_index Float.nan);
  Alcotest.(check int) "huge -> last bucket" (M.n_buckets - 1) (M.bucket_index 1e30);
  Alcotest.(check int) "infinity -> last bucket" (M.n_buckets - 1)
    (M.bucket_index Float.infinity);
  (* a value on a bucket's lower boundary belongs to that bucket
     ([lower, upper) intervals), and interior points stay inside *)
  for i = 1 to M.n_buckets - 2 do
    let lo = M.bucket_lower i and hi = M.bucket_upper i in
    Alcotest.(check bool) (Fmt.str "bucket %d lower < upper" i) true (lo < hi);
    Alcotest.(check int) (Fmt.str "lower boundary of bucket %d" i) i (M.bucket_index lo);
    let mid = Float.sqrt (lo *. hi) in
    Alcotest.(check int) (Fmt.str "midpoint of bucket %d" i) i (M.bucket_index mid)
  done;
  (* buckets tile the positive axis: upper(i) = lower(i+1) *)
  for i = 0 to M.n_buckets - 3 do
    Alcotest.(check (float 1e-12))
      (Fmt.str "upper %d = lower %d" i (i + 1))
      (M.bucket_upper i) (M.bucket_lower (i + 1))
  done

let test_bucket_index_monotone () =
  let rng = Sim.Rng.create ~seed:7 in
  let values =
    List.init 2_000 (fun _ -> Sim.Rng.float rng 2.0e6) |> List.sort compare
  in
  let _ =
    List.fold_left
      (fun prev v ->
        let i = M.bucket_index v in
        Alcotest.(check bool) "bucket index nondecreasing" true (i >= prev);
        i)
      0 values
  in
  ()

(* ---------------- summaries and percentiles ---------------- *)

let test_summary_exact_fields () =
  let m = M.create () in
  List.iter (M.observe m "x") [ 3.0; 1.0; 2.0; 10.0 ];
  match M.summarize m "x" with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "count" 4 s.M.count;
      Alcotest.(check (float 1e-9)) "total" 16.0 s.M.total;
      Alcotest.(check (float 1e-9)) "mean" 4.0 s.M.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.M.min;
      Alcotest.(check (float 1e-9)) "max" 10.0 s.M.max

let test_percentile_against_oracle () =
  (* percentiles interpolated from geometric buckets must land within one
     bucket width (a factor of 1.25) of the exact sorted-sample value *)
  let rng = Sim.Rng.create ~seed:42 in
  let n = 5_000 in
  let values = List.init n (fun _ -> 0.001 +. Sim.Rng.float rng 1000.0) in
  let m = M.create () in
  List.iter (M.observe m "lat") values;
  let sorted = Array.of_list (List.sort compare values) in
  let oracle p =
    let rank = int_of_float (Float.round (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  in
  List.iter
    (fun p ->
      match M.percentile m "lat" p with
      | None -> Alcotest.fail "expected a percentile"
      | Some est ->
          let exact = oracle p in
          let ratio = est /. exact in
          Alcotest.(check bool)
            (Fmt.str "p%.0f estimate %.4f within a bucket of exact %.4f" p est exact)
            true
            (ratio > 1.0 /. 1.3 && ratio < 1.3))
    [ 50.0; 90.0; 99.0 ];
  (* edge percentiles are exact: tracked min/max *)
  Alcotest.(check (option (float 1e-9))) "p0 = min" (Some sorted.(0)) (M.percentile m "lat" 0.0);
  Alcotest.(check (option (float 1e-9)))
    "p100 = max"
    (Some sorted.(n - 1))
    (M.percentile m "lat" 100.0)

let test_percentiles_ordered () =
  let m = M.create () in
  let rng = Sim.Rng.create ~seed:9 in
  List.iter (fun _ -> M.observe m "d" (Sim.Rng.exponential rng ~mean:5.0)) (List.init 1000 Fun.id);
  match M.summarize m "d" with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check bool) "min <= p50" true (s.M.min <= s.M.p50);
      Alcotest.(check bool) "p50 <= p90" true (s.M.p50 <= s.M.p90);
      Alcotest.(check bool) "p90 <= p99" true (s.M.p90 <= s.M.p99);
      Alcotest.(check bool) "p99 <= max" true (s.M.p99 <= s.M.max)

(* ---------------- counters, gauges, timers ---------------- *)

let test_counters_and_gauges () =
  let m = M.create () in
  M.incr m "a";
  M.incr ~by:4 m "a";
  M.incr m "b";
  Alcotest.(check int) "a" 5 (M.counter m "a");
  Alcotest.(check int) "b" 1 (M.counter m "b");
  Alcotest.(check int) "unknown counter" 0 (M.counter m "nope");
  M.gauge_max m "depth" 3;
  M.gauge_max m "depth" 9;
  M.gauge_max m "depth" 5;
  Alcotest.(check int) "gauge keeps max" 9 (M.gauge m "depth");
  Alcotest.(check (list (pair string int))) "counters sorted" [ ("a", 5); ("b", 1) ] (M.counters m)

let test_timers () =
  let m = M.create () in
  M.timer_start m "op" ~key:1 ~at:10.0;
  M.timer_start m "op" ~key:2 ~at:11.0;
  M.timer_stop m "op" ~key:2 ~at:14.0;
  M.timer_stop m "op" ~key:1 ~at:12.0;
  M.timer_stop m "op" ~key:3 ~at:99.0;
  (* no matching start: ignored *)
  M.timer_start m "op" ~key:4 ~at:0.0;
  M.timer_discard m "op" ~key:4;
  M.timer_stop m "op" ~key:4 ~at:50.0;
  (* discarded: ignored *)
  match M.summarize m "op" with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "two completed timers" 2 s.M.count;
      Alcotest.(check (float 1e-9)) "total elapsed" 5.0 s.M.total;
      Alcotest.(check (float 1e-9)) "min elapsed" 2.0 s.M.min;
      Alcotest.(check (float 1e-9)) "max elapsed" 3.0 s.M.max

(* ---------------- JSON ---------------- *)

let test_json_roundtrip () =
  let m = M.create () in
  M.incr ~by:7 m "msgs";
  M.gauge_max m "queue" 12;
  let rng = Sim.Rng.create ~seed:3 in
  List.iter (fun _ -> M.observe m "lat" (Sim.Rng.float rng 50.0)) (List.init 500 Fun.id);
  let j = M.to_json m in
  let s = J.to_string j in
  let j' = J.of_string s in
  (* canonical after one round trip: parse(print(j)) prints identically *)
  Alcotest.(check string) "fixed point" s (J.to_string j');
  (* spot-check structure through the parsed tree *)
  Alcotest.(check (option (float 0.0)))
    "counter preserved" (Some 7.0)
    Option.(bind (J.member "counters" j') (J.member "msgs") |> fun o -> bind o J.to_float_opt);
  Alcotest.(check (option (float 0.0)))
    "gauge preserved" (Some 12.0)
    Option.(bind (J.member "gauges" j') (J.member "queue") |> fun o -> bind o J.to_float_opt);
  let hist =
    Option.bind (J.member "histograms" j') (J.member "lat")
  in
  Alcotest.(check (option (float 0.0)))
    "histogram count preserved" (Some 500.0)
    Option.(bind hist (J.member "count") |> fun o -> bind o J.to_float_opt);
  (match Option.bind hist (J.member "buckets") with
  | Some (J.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "expected non-empty buckets list");
  (* NaN and infinities degrade to null, not invalid JSON *)
  Alcotest.(check string)
    "non-finite -> null" "[null,null,null]"
    (J.to_string (J.List [ J.Float Float.nan; J.Float Float.infinity; J.Float Float.neg_infinity ]))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.fail (Fmt.str "expected parse error on %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_run_deterministic () =
  (* the full metrics snapshot of a simulated run is a pure function of
     the seed: byte-identical JSON across runs *)
  let snapshot () =
    let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
    let plan =
      Engine.Failure_plan.crash_at_step ~site:1 ~step:2 ~mode:(Engine.Failure_plan.After_logging 0)
    in
    let r = Engine.Runtime.run (Engine.Runtime.config ~plan ~seed:5 rb) in
    J.to_string r.Engine.Runtime.metrics_json
  in
  Alcotest.(check string) "same seed, same metrics" (snapshot ()) (snapshot ())

(* ---------------- merge, drain, wall filtering ---------------- *)

let hist_names = [| "lat"; "dur"; "q" |]

type op = Obs of int * float | Incr of int * int | Gauge of int * int

let gen_ops =
  let open QCheck2.Gen in
  let gen_op =
    oneof
      [
        map2 (fun i v -> Obs (i, v)) (int_range 0 2) (float_range 0.0005 5000.0);
        map2 (fun i n -> Incr (i, n)) (int_range 0 2) (int_range 1 5);
        map2 (fun i n -> Gauge (i, n)) (int_range 0 2) (int_range 0 100);
      ]
  in
  pair (list_size (int_range 0 400) gen_op) (int_range 1 5)

let apply m = function
  | Obs (i, v) -> M.observe m hist_names.(i) v
  | Incr (i, n) -> M.incr ~by:n m ("c_" ^ hist_names.(i))
  | Gauge (i, n) -> M.gauge_max m ("g_" ^ hist_names.(i)) n

let buckets_of m name =
  Option.bind (J.member "histograms" (M.to_json m)) (J.member name)
  |> Fun.flip Option.bind (J.member "buckets")
  |> Option.map J.to_string

(* Sharding a stream of updates K ways and merging must be observably
   equivalent to applying the stream to one registry: counters and gauges
   exact, histogram bucket arrays / count / min / max exact — hence
   identical percentiles — and totals equal up to float reassociation. *)
let prop_merge_equals_single =
  Helpers.qtest ~count:150 "merge: K-way sharded registries = the single run" gen_ops
    (fun (ops, k) ->
      let single = M.create () in
      List.iter (apply single) ops;
      let shards = Array.init k (fun _ -> M.create ()) in
      List.iteri (fun ix op -> apply shards.(ix mod k) op) ops;
      let merged = M.merge_all (Array.to_list shards) in
      M.counters merged = M.counters single
      && Array.for_all
           (fun name -> M.gauge merged ("g_" ^ name) = M.gauge single ("g_" ^ name))
           hist_names
      && Array.for_all
           (fun name ->
             buckets_of merged name = buckets_of single name
             &&
             match (M.summarize merged name, M.summarize single name) with
             | None, None -> true
             | Some a, Some b ->
                 a.M.count = b.M.count && a.M.min = b.M.min && a.M.max = b.M.max
                 && a.M.p50 = b.M.p50 && a.M.p90 = b.M.p90 && a.M.p99 = b.M.p99
                 && Float.abs (a.M.total -. b.M.total)
                    <= 1e-9 *. Float.max 1.0 (Float.abs b.M.total)
             | _ -> false)
           hist_names)

let test_drain_timers () =
  let m = M.create () in
  M.timer_start m "op" ~key:1 ~at:1.0;
  M.timer_start m "op" ~key:2 ~at:2.0;
  M.timer_stop m "op" ~key:1 ~at:3.0;
  M.timer_start m "other" ~key:1 ~at:0.0;
  Alcotest.(check (list (pair string int)))
    "in flight" [ ("op", 1); ("other", 1) ] (M.timers_in_flight m);
  M.drain_timers m;
  Alcotest.(check int) "op leak counted" 1 (M.counter m "timers_in_flight_op");
  Alcotest.(check int) "other leak counted" 1 (M.counter m "timers_in_flight_other");
  Alcotest.(check (list (pair string int))) "drained" [] (M.timers_in_flight m);
  (* a stop after the drain is ignored: its start was cleared *)
  M.timer_stop m "op" ~key:2 ~at:9.0;
  (match M.summarize m "op" with
  | Some s -> Alcotest.(check int) "only the completed timer observed" 1 s.M.count
  | None -> Alcotest.fail "expected a summary");
  M.drain_timers m;
  Alcotest.(check int) "drain idempotent" 1 (M.counter m "timers_in_flight_op")

let test_merge_drains_in_flight () =
  let a = M.create () and b = M.create () in
  M.timer_start a "op" ~key:1 ~at:0.0;
  M.timer_start b "op" ~key:9 ~at:5.0;
  M.merge a b;
  Alcotest.(check int) "both sides' leaks counted" 2 (M.counter a "timers_in_flight_op");
  Alcotest.(check (list (pair string int))) "nothing left in flight" [] (M.timers_in_flight a)

let test_drop_wall () =
  Alcotest.(check bool) "wall_ prefix detected" true (M.is_wall "wall_oracle_atomicity_s");
  Alcotest.(check bool) "plain name kept" false (M.is_wall "oracle_atomicity_s");
  let m = M.create () in
  M.incr m "wall_ticks";
  M.incr m "sim_ticks";
  M.observe m "wall_oracle_atomicity_s" 0.5;
  M.observe m "lat" 1.0;
  let j = M.to_json ~drop_wall:true m in
  let has section name = Option.bind (J.member section j) (J.member name) <> None in
  Alcotest.(check bool) "wall counter dropped" false (has "counters" "wall_ticks");
  Alcotest.(check bool) "sim counter kept" true (has "counters" "sim_ticks");
  Alcotest.(check bool) "wall histogram dropped" false (has "histograms" "wall_oracle_atomicity_s");
  Alcotest.(check bool) "sim histogram kept" true (has "histograms" "lat");
  let full = M.to_json m in
  Alcotest.(check bool)
    "default keeps wall series" true
    (Option.bind (J.member "counters" full) (J.member "wall_ticks") <> None)

(* ---------------- report ---------------- *)

let test_report_sections () =
  let r = Sim.Report.create () in
  Sim.Report.add r "first" (J.Int 1);
  Sim.Report.add r "second" (J.Str "two");
  Sim.Report.add r "first" (J.Int 3);
  (* replaced in place *)
  Alcotest.(check string)
    "insertion order, schema_version first"
    "{\"schema_version\":1,\"first\":3,\"second\":\"two\"}"
    (J.to_string (Sim.Report.to_json r))

let suite =
  [
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "bucket index monotone" `Quick test_bucket_index_monotone;
    Alcotest.test_case "summary exact fields" `Quick test_summary_exact_fields;
    Alcotest.test_case "percentiles vs sorted oracle" `Quick test_percentile_against_oracle;
    Alcotest.test_case "percentiles ordered" `Quick test_percentiles_ordered;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "labelled timers" `Quick test_timers;
    Alcotest.test_case "to_json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "run metrics deterministic" `Quick test_run_deterministic;
    prop_merge_equals_single;
    Alcotest.test_case "drain_timers accounts leaks" `Quick test_drain_timers;
    Alcotest.test_case "merge drains in-flight timers" `Quick test_merge_drains_in_flight;
    Alcotest.test_case "to_json ~drop_wall filters wall_ series" `Quick test_drop_wall;
    Alcotest.test_case "report sections" `Quick test_report_sections;
  ]
