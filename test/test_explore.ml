(** Tests for the coverage-guided fault-space explorer:
    {!Sim.Coverage} accounting, mutation closure over the protocol's
    clause families, worker-count determinism of {!Engine.Explore.search},
    the corpus save/load round-trip, guided rediscovery of the pinned
    2PC coordinator wedge — and regression pins for the masked
    crash-recover-window wedges the explorer itself found in 3PC. *)

module E = Engine.Explore
module FP = Engine.Failure_plan
module C = Sim.Coverage

let plan : FP.t Alcotest.testable = Alcotest.testable FP.pp FP.equal

(* ---------------- Sim.Coverage ---------------- *)

let test_coverage_accounting () =
  let t = C.create () in
  Alcotest.(check int) "empty accumulator" 0 (C.count t);
  Alcotest.(check int) "first fingerprint is all-new" 3 (C.add t [ "a"; "b"; "c" ]);
  Alcotest.(check int) "duplicates within a fingerprint count once" 1 (C.add t [ "c"; "d"; "d" ]);
  Alcotest.(check int) "novel does not record" 1 (C.novel t [ "d"; "e" ]);
  Alcotest.(check int) "novel left the accumulator alone" 1 (C.novel t [ "d"; "e" ]);
  Alcotest.(check int) "count is distinct features" 4 (C.count t);
  Alcotest.(check bool) "mem sees a feature" true (C.mem t "b");
  Alcotest.(check bool) "mem rejects the unseen" false (C.mem t "e");
  Alcotest.(check (list string)) "features are sorted" [ "a"; "b"; "c"; "d" ] (C.features t)

let test_bucket () =
  Alcotest.(check string) "exact below 5" "3" (C.bucket 3);
  Alcotest.(check string) "boundary 4 stays exact" "4" (C.bucket 4);
  Alcotest.(check string) "5 coarsens" (C.bucket 7) (C.bucket 5);
  Alcotest.(check string) "log2 bucket" "le8" (C.bucket 5);
  Alcotest.(check string) "le16" (C.bucket 16) (C.bucket 9)

(* upper bound of the bucket a count landed in: "3" -> 3, "le16" -> 16 *)
let bucket_ceiling s =
  match int_of_string_opt s with
  | Some n -> n
  | None ->
      Scanf.sscanf s "le%d" Fun.id

let prop_bucket_total_and_monotone =
  Helpers.qtest "bucket is total, contains its input, and is monotone"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (a, b) ->
      let a, b = (min a b, max a b) in
      a <= bucket_ceiling (C.bucket a)
      && bucket_ceiling (C.bucket a) <= bucket_ceiling (C.bucket b))

(* ---------------- mutation closure ---------------- *)

(* the family gate the CLI relies on: however many mutation steps run,
   a plan that started inside a protocol's families never grows a clause
   that protocol rejects *)
let prop_mutate_stays_in_families =
  Helpers.qtest ~count:100 "mutants never leave the protocol's clause families"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 12))
    (fun (seed, steps) ->
      List.for_all
        (fun protocol ->
          let families = E.protocol_families ~protocol in
          let rng = Sim.Rng.create ~seed in
          let p = ref FP.none in
          for _ = 1 to steps do
            p := E.mutate rng ~n_sites:3 ~horizon:300.0 ~families !p
          done;
          FP.unsupported_clauses ~protocol !p = [])
        [ "central-2pc"; "central-3pc"; "paxos-commit" ])

let prop_splice_draws_from_parents =
  (* crossover never invents a fault: every clause of the child appears
     in one of the parents (checked on the families text renders through) *)
  Helpers.qtest ~count:100 "splice only recombines parent faults"
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2, s3) ->
      let grow seed =
        let rng = Sim.Rng.create ~seed in
        let families = E.protocol_families ~protocol:"central-3pc" in
        let p = ref FP.none in
        for _ = 1 to 6 do
          p := E.mutate rng ~n_sites:3 ~horizon:300.0 ~families !p
        done;
        !p
      in
      let a = grow s1 and b = grow s2 in
      let child = E.splice (Sim.Rng.create ~seed:s3) a b in
      let clauses p =
        match FP.to_string p with
        | "" -> []
        | s -> List.map String.trim (String.split_on_char ';' s)
      in
      let pool = clauses a @ clauses b in
      List.for_all (fun c -> List.mem c pool) (clauses child))

(* ---------------- search determinism + rediscovery ---------------- *)

let engine_2pc () =
  E.engine_harness ~k:1 (Engine.Rulebook.compile (Core.Catalog.central_2pc 3))

let test_search_rediscovers_wedge_and_is_worker_invariant () =
  (* one guided search at the smoke budget must rediscover the pinned
     2PC coordinator step-crash wedge shrunk to a single fault, and the
     result must be byte-identical whatever the worker count *)
  let budget = 96 in
  let r1 = E.search ~workers:1 (engine_2pc ()) ~mode:`Guided ~budget () in
  let r2 = E.search ~workers:2 (engine_2pc ()) ~mode:`Guided ~budget () in
  Alcotest.(check int) "coverage is worker-invariant" r1.E.coverage r2.E.coverage;
  Alcotest.(check (list string)) "features are worker-invariant" r1.E.features r2.E.features;
  Alcotest.(check (list plan))
    "corpus is worker-invariant"
    (List.map fst r1.E.corpus)
    (List.map fst r2.E.corpus);
  Alcotest.(check (list plan))
    "shrunk bugs are worker-invariant"
    (List.map (fun b -> b.E.bug_shrunk) r1.E.bugs)
    (List.map (fun b -> b.E.bug_shrunk) r2.E.bugs);
  let wedge =
    List.find_opt
      (fun b -> b.E.bug_oracle = "progress" && FP.fault_count b.E.bug_shrunk <= 1)
      r1.E.bugs
  in
  Alcotest.(check bool) "progress wedge rediscovered, shrunk to <= 1 fault" true (wedge <> None)

let test_corpus_save_load_round_trip () =
  let r = E.search (engine_2pc ()) ~mode:`Guided ~budget:32 () in
  (* tests run in dune's per-test sandbox, so a fixed name cannot collide *)
  let dir = "explore-corpus-test" in
  E.save_corpus ~dir r;
  let loaded = E.load_corpus ~dir in
  let corpus_plans = List.map fst r.E.corpus in
  let bug_plans = List.map (fun b -> b.E.bug_shrunk) r.E.bugs in
  Alcotest.(check int)
    "one file per corpus entry plus one per shrunk bug"
    (List.length corpus_plans + List.length bug_plans)
    (List.length loaded);
  (* every persisted plan parses back to a plan the search produced *)
  List.iter
    (fun (file, p) ->
      Alcotest.(check bool)
        (Fmt.str "%s matches a search plan" file)
        true
        (List.exists (FP.equal p) (corpus_plans @ bug_plans)))
    loaded;
  Alcotest.(check (list string))
    "load_corpus on a missing dir is empty" []
    (List.map fst (E.load_corpus ~dir:"no-such-corpus-dir"));
  (* replay of the persisted corpus must reproduce at least one violation
     iff the search saw one *)
  if r.E.violating_runs > 0 then begin
    let reports = E.replay (engine_2pc ()) (List.map snd loaded) in
    Alcotest.(check bool) "replay reproduces a violation" true
      (List.exists (fun (_, (rep : E.report)) -> rep.E.violations <> []) reports)
  end

(* ---------------- pinned wedge regressions ---------------- *)

(* The explorer's first catch: a crash-recover window shorter than the
   world's detection delay produces NO failure report, so (a) an
   undecided waiter used to ignore the recoveree's outcome queries and
   (b) a recoveree that resolved locally never re-announced — either
   way the never-crashed sites waited forever.  Fixed in Runtime by
   treating a peer's outcome query as failure evidence and re-announcing
   on recovery; pinned here on the exact shrunk plans. *)
let test_masked_recovery_window_terminates () =
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  List.iter
    (fun text ->
      let plan = FP.of_string_exn text in
      let r = Engine.Runtime.run (Engine.Runtime.config ~plan rb) in
      Alcotest.(check bool)
        (Fmt.str "%S: all operational sites decide" text)
        true r.Engine.Runtime.all_operational_decided;
      Alcotest.(check bool) (Fmt.str "%S: consistent" text) true r.Engine.Runtime.consistent;
      Alcotest.(check int)
        (Fmt.str "%S: no blocked operational site" text)
        0 r.Engine.Runtime.blocked_operational)
    [
      "step-crash site=3 step=1 mode=before; recover site=3 at=4";
      "step-crash site=1 step=1 mode=before; recover site=1 at=3";
      "step-crash site=1 step=1 mode=before; recover site=1 at=4";
      "crash site=2 at=1; recover site=2 at=2";
    ]

let test_storm_plan_terminates () =
  (* a short storm is repeated masked windows back-to-back — the same
     fix must hold wave after wave *)
  let rb = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let plan = FP.of_string_exn "storm site=3 first=2 waves=3 period=60 down=1.5" in
  let r = Engine.Runtime.run (Engine.Runtime.config ~plan ~until:1500.0 rb) in
  Alcotest.(check bool) "storm run consistent" true r.Engine.Runtime.consistent;
  Alcotest.(check int) "no blocked operational site" 0 r.Engine.Runtime.blocked_operational

let suite =
  [
    Alcotest.test_case "coverage accounting" `Quick test_coverage_accounting;
    Alcotest.test_case "bucket pins" `Quick test_bucket;
    prop_bucket_total_and_monotone;
    prop_mutate_stays_in_families;
    prop_splice_draws_from_parents;
    Alcotest.test_case "guided search: worker-invariant, rediscovers the 2PC wedge" `Slow
      test_search_rediscovers_wedge_and_is_worker_invariant;
    Alcotest.test_case "corpus save/load round trip" `Quick test_corpus_save_load_round_trip;
    Alcotest.test_case "masked crash-recover window terminates (pinned wedges)" `Quick
      test_masked_recovery_window_terminates;
    Alcotest.test_case "crash-recover storm terminates" `Quick test_storm_plan_terminates;
  ]
