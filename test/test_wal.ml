(** Property tests for the WAL binary codecs ({!Engine.Wal} and
    {!Kv.Kv_wal}): round trips, totality of [of_bytes] on damaged input,
    and the serialization-agreement contract — the durability summaries
    ([last_state] / [voted_yes] / [decided]) computed from an in-memory
    log must agree with those computed from a decode of its serialized
    bytes, including after a crash truncates the tail. *)

module W = Engine.Wal
module KW = Kv.Kv_wal
module D = Sim.Disk

(* ---------------- generators ---------------- *)

let gen_state = QCheck2.Gen.oneofl [ "q"; "w"; "p"; "a"; "c"; "pre-commit"; "" ]

let gen_record =
  let open QCheck2.Gen in
  oneof
    [
      map2
        (fun protocol initial -> W.Began { protocol; initial })
        (oneofl [ "central-2pc"; "central-3pc"; "x"; "" ])
        gen_state;
      map2
        (fun to_state vote -> W.Transitioned { to_state; vote })
        gen_state
        (oneofl [ None; Some Core.Types.Yes; Some Core.Types.No ]);
      map (fun to_state -> W.Moved { to_state }) gen_state;
      map (fun o -> W.Decided o) (oneofl [ Core.Types.Committed; Core.Types.Aborted ]);
    ]

let gen_kv_record =
  let open QCheck2.Gen in
  let txn = int_range 0 10_000 in
  let site = int_range 1 9 in
  let key = string_size (int_range 0 8) in
  let commit = bool in
  oneof
    [
      (let* t = txn and* c = site and* ps = small_list site in
       let* writes = small_list (pair key (int_range (-500) 500)) in
       let* locks =
         small_list (pair key (oneofl [ Kv.Lock_table.Shared; Kv.Lock_table.Exclusive ]))
       in
       return (KW.P_prepared { txn = t; coordinator = c; participants = ps; writes; locks }));
      map (fun t -> KW.P_precommitted { txn = t }) txn;
      map2 (fun t c -> KW.P_outcome { txn = t; commit = c }) txn commit;
      (let* t = txn and* ps = small_list site and* three_phase = bool in
       return (KW.C_begin { txn = t; participants = ps; three_phase }));
      map (fun t -> KW.C_precommitted { txn = t }) txn;
      map2 (fun t c -> KW.C_decided { txn = t; commit = c }) txn commit;
      map (fun t -> KW.C_finished { txn = t }) txn;
    ]

(* ---------------- codec round trips and totality ---------------- *)

let prop_engine_codec_round_trip =
  Helpers.qtest "engine codec: of_bytes (to_bytes r) = Ok r" gen_record (fun r ->
      match W.of_bytes (W.to_bytes r) with Ok r' -> W.equal_record r r' | Error _ -> false)

let prop_kv_codec_round_trip =
  Helpers.qtest "kv codec: of_bytes (to_bytes r) = Ok r" gen_kv_record (fun r ->
      match KW.of_bytes (KW.to_bytes r) with Ok r' -> KW.equal_record r r' | Error _ -> false)

let prop_engine_codec_total_on_truncation =
  Helpers.qtest "engine codec: any truncation decodes without raising"
    QCheck2.Gen.(pair gen_record (int_range 0 200))
    (fun (r, cut) ->
      let b = W.to_bytes r in
      let cut = min cut (Bytes.length b) in
      match W.of_bytes (Bytes.sub b 0 cut) with
      | Ok r' -> cut = Bytes.length b && W.equal_record r r'
      | Error _ -> cut < Bytes.length b)

let prop_kv_codec_total_on_truncation =
  Helpers.qtest "kv codec: any truncation decodes without raising"
    QCheck2.Gen.(pair gen_kv_record (int_range 0 400))
    (fun (r, cut) ->
      let b = KW.to_bytes r in
      let cut = min cut (Bytes.length b) in
      match KW.of_bytes (Bytes.sub b 0 cut) with
      | Ok r' -> cut = Bytes.length b && KW.equal_record r r'
      | Error _ -> cut < Bytes.length b)

let prop_kv_codec_total_on_bit_flips =
  Helpers.qtest "kv codec: a flipped bit decodes without raising"
    QCheck2.Gen.(pair gen_kv_record (int_range 0 10_000))
    (fun (r, bit) ->
      let b = KW.to_bytes r in
      let bit = bit mod (8 * Bytes.length b) in
      Bytes.set b (bit / 8)
        (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
      match KW.of_bytes b with Ok _ | Error _ -> true)

(* ---------------- serialization agreement ---------------- *)

let summaries w = (W.last_state w, W.voted_yes w, W.decided w)

let replay_through_codec records =
  let w = W.create ~durable:false () in
  List.iter
    (fun r ->
      match W.of_bytes (W.to_bytes r) with
      | Ok r' -> W.append w r'
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    records;
  w

let prop_memory_and_codec_summaries_agree =
  Helpers.qtest "last_state/voted_yes/decided agree through the codec"
    QCheck2.Gen.(small_list gen_record)
    (fun records ->
      let mem = W.create ~durable:false () in
      List.iter (W.append mem) records;
      summaries mem = summaries (replay_through_codec records))

let prop_durable_crash_without_faults_preserves_forced_records =
  Helpers.qtest "a fault-free crash preserves exactly the forced prefix"
    QCheck2.Gen.(pair (small_list gen_record) (small_list gen_record))
    (fun (forced, unsynced) ->
      let w = W.create ~durable:true () in
      List.iter (W.force w) forced;
      List.iter (W.append w) unsynced;
      ignore (W.crash w);
      let mem = W.create ~durable:false () in
      List.iter (W.append mem) forced;
      List.for_all2 W.equal_record (W.records w) forced && summaries w = summaries mem)

let prop_torn_tail_recovers_a_prefix =
  Helpers.qtest "a torn crash recovers a prefix whose summaries agree"
    QCheck2.Gen.(triple (small_list gen_record) (small_list gen_record) (int_range 0 1000))
    (fun (forced, tail, seed) ->
      let w = W.create ~seed ~durable:true () in
      W.set_faults w [ { D.fault = D.Torn; nth = 0 } ];
      List.iter (W.force w) forced;
      List.iter (W.append w) tail;
      ignore (W.crash w);
      let survived = W.records w in
      let n = List.length survived in
      (* what survives is a prefix of what was appended... *)
      n >= List.length forced
      && n <= List.length forced + List.length tail
      && List.for_all2 W.equal_record survived
           (List.filteri (fun i _ -> i < n) (forced @ tail))
      &&
      (* ...and the summaries computed from it equal the in-memory
         summaries of that same prefix *)
      let mem = W.create ~durable:false () in
      List.iter (W.append mem) survived;
      summaries w = summaries mem)

let test_torn_tail_repair_reported () =
  (* deterministic pinned case: a torn crash that cuts a record in half
     must surface in [repairs] with a scan reason *)
  let seen = ref false in
  for seed = 0 to 20 do
    let w = W.create ~seed ~durable:true () in
    W.set_faults w [ { D.fault = D.Torn; nth = 0 } ];
    W.force w (W.Began { protocol = "x"; initial = "q" });
    W.append w (W.Transitioned { to_state = "w"; vote = Some Core.Types.Yes });
    (match W.crash w with
    | Some rep -> if rep.W.reason <> None then seen := true
    | None -> ());
    ignore (W.repairs w)
  done;
  Alcotest.(check bool) "some seed tears mid-record and reports a reason" true !seen

(* ---------------- the store ---------------- *)

let test_store_sites_iter_fold () =
  let store = W.Store.create ~n_sites:3 () in
  W.append (W.Store.log store ~site:2) (W.Decided Core.Types.Aborted);
  W.append (W.Store.log store ~site:3) (W.Began { protocol = "x"; initial = "q" });
  W.append (W.Store.log store ~site:3) (W.Decided Core.Types.Committed);
  Alcotest.(check (list int)) "sites in order" [ 1; 2; 3 ] (W.Store.sites store);
  let visited = ref [] in
  W.Store.iter (fun site w -> visited := (site, W.length w) :: !visited) store;
  Alcotest.(check (list (pair int int)))
    "iter visits every site once" [ (1, 0); (2, 1); (3, 2) ] (List.rev !visited);
  let total = W.Store.fold (fun acc _ w -> acc + W.length w) 0 store in
  Alcotest.(check int) "fold accumulates" 3 total

let suite =
  [
    prop_engine_codec_round_trip;
    prop_kv_codec_round_trip;
    prop_engine_codec_total_on_truncation;
    prop_kv_codec_total_on_truncation;
    prop_kv_codec_total_on_bit_flips;
    prop_memory_and_codec_summaries_agree;
    prop_durable_crash_without_faults_preserves_forced_records;
    prop_torn_tail_recovers_a_prefix;
    Alcotest.test_case "torn tail surfaces in repairs" `Quick test_torn_tail_repair_reported;
    Alcotest.test_case "store: sites, iter, fold" `Quick test_store_sites_iter_fold;
  ]
