(** Tests for {!Sim.Nemesis} (seeded fault-schedule generation) and the
    message-fault layer of {!Sim.World} it drives: determinism, split
    stream independence, the ≤ k concurrent-failure bound, and the three
    message fault kinds actually firing on the wire. *)

module N = Sim.Nemesis

(* ---------------- schedule generation ---------------- *)

let gen ?(n_sites = 3) ?(k = 1) ?(profile = N.default_profile) seed =
  N.generate (Sim.Rng.create ~seed) ~n_sites ~k profile

let test_same_seed_same_schedule () =
  List.iter
    (fun seed ->
      let a = gen seed and b = gen seed in
      Alcotest.(check bool) (Fmt.str "seed %d schedules equal" seed) true (N.equal_schedule a b);
      Alcotest.(check string)
        (Fmt.str "seed %d renders byte-identical" seed)
        (N.to_string a) (N.to_string b))
    [ 0; 1; 7; 35; 48; 176; 999 ]

let test_different_seeds_differ () =
  (* not guaranteed for an arbitrary pair, but pinned: these seeds draw
     visibly different schedules *)
  Alcotest.(check bool) "seeds 1 and 2 differ" false (N.equal_schedule (gen 1) (gen 2))

let test_split_streams_independent () =
  (* the Kv convention: first split is the workload stream, second the
     schedule stream — they must not alias *)
  let root = Sim.Rng.create ~seed:48 in
  let s1 = Sim.Rng.split root in
  let s2 = Sim.Rng.split root in
  let a = N.generate s1 ~n_sites:4 ~k:1 N.default_profile in
  let b = N.generate s2 ~n_sites:4 ~k:1 N.default_profile in
  Alcotest.(check bool) "sibling split streams generate different schedules" false
    (N.equal_schedule a b)

let prop_schedule_deterministic =
  Helpers.qtest "generate is a pure function of the stream"
    QCheck2.Gen.(triple (int_range 0 5_000) (int_range 2 5) (int_range 0 2))
    (fun (seed, n_sites, k) ->
      let a = N.generate (Sim.Rng.create ~seed) ~n_sites ~k N.default_profile in
      let b = N.generate (Sim.Rng.create ~seed) ~n_sites ~k N.default_profile in
      N.equal_schedule a b)

(* max concurrent failures = max over interval start points of the number
   of down-intervals containing that point.  A crash's interval closes at
   its site's recovery, mirroring the generator's own bookkeeping: a
   recovered site is up, so a later crash elsewhere is not concurrent
   with it. *)
let max_concurrent schedule =
  let recovery_of site =
    List.find_map
      (function N.Recover { site = s; at } when s = site -> Some at | _ -> None)
      schedule
  in
  let intervals =
    List.filter_map
      (fun fault ->
        match (fault, N.interval fault) with
        | ( (N.Crash { site; _ } | N.Step_crash { site; _ } | N.Backup_crash { site; _ }),
            Some (from_t, until_t) ) ->
            Some (from_t, Option.value ~default:until_t (recovery_of site))
        | _ -> None)
      schedule
  in
  List.fold_left
    (fun acc (s, _) ->
      max acc
        (List.length (List.filter (fun (s', e') -> s' <= s && s < e') intervals)))
    0 intervals

let prop_at_most_k_concurrent =
  Helpers.qtest "crash incidents never exceed k concurrent failures"
    QCheck2.Gen.(triple (int_range 0 5_000) (int_range 2 5) (int_range 0 3))
    (fun (seed, n_sites, k) ->
      max_concurrent (N.generate (Sim.Rng.create ~seed) ~n_sites ~k N.default_profile) <= k)

let prop_k_zero_no_crashes =
  Helpers.qtest "k=0 generates no crash incidents" (QCheck2.Gen.int_range 0 2_000) (fun seed ->
      List.for_all
        (function
          | N.Crash _ | N.Step_crash _ | N.Backup_crash _ | N.Acceptor_crash _ | N.Storm _ ->
              false
          | N.Recover _ | N.Partition _ | N.Msg _ | N.Disk_fault _ | N.Delay_window _ | N.Stall _
          | N.Hb_loss _ | N.Lease_fault _ ->
              true)
        (N.generate (Sim.Rng.create ~seed) ~n_sites:3 ~k:0 N.default_profile))

let test_default_profile_respects_network_assumptions () =
  (* drops, partitions and storage faults violate the paper's model: the
     correctness profile must never generate them *)
  for seed = 0 to 200 do
    List.iter
      (function
        | N.Msg { fault = Sim.World.Fault_drop; _ } ->
            Alcotest.failf "seed %d generated a drop under the default profile" seed
        | N.Partition _ ->
            Alcotest.failf "seed %d generated a partition under the default profile" seed
        | N.Disk_fault _ ->
            Alcotest.failf "seed %d generated a disk fault under the default profile" seed
        | _ -> ())
      (gen seed)
  done

let test_disk_fault_profile_generates_disk_faults () =
  (* with p_disk_fault armed, some seed must attach a storage fault to a
     crash incident — and never a lost flush unless its weight is > 0 *)
  let profile = { N.default_profile with N.p_disk_fault = 0.6 } in
  let faults =
    List.concat_map
      (fun seed ->
        List.filter_map
          (function N.Disk_fault { fault; _ } -> Some fault | _ -> None)
          (gen ~profile seed))
      (List.init 50 Fun.id)
  in
  Alcotest.(check bool) "some disk faults generated" true (faults <> []);
  Alcotest.(check bool) "lost flushes stay ablation-only" false
    (List.mem Sim.Disk.Lost_flush faults)

let test_zero_disk_fault_profile_is_stream_transparent () =
  (* p_disk_fault = 0 must draw nothing extra: schedules stay
     byte-identical to the disk-fault-free profile, so every PR-3 seed
     replays unchanged *)
  let profile = { N.default_profile with N.lost_flush_weight = 3; disk_sync_window = 99 } in
  for seed = 0 to 100 do
    Alcotest.(check bool)
      (Fmt.str "seed %d schedule unchanged" seed)
      true
      (N.equal_schedule (gen seed) (gen ~profile seed))
  done

(* ---------------- crash-recover storms ---------------- *)

let storm_profile = { N.default_profile with N.p_storm = 1.0 }

let storms_of schedule =
  List.filter_map (function N.Storm _ as s -> Some s | _ -> None) schedule

let test_zero_storm_profile_is_stream_transparent () =
  (* the storm draw comes last and is guarded on p_storm > 0: the
     default (storm-free) profile must replay every pre-storm seed
     byte-identically, and tuning the storm shape knobs alone must draw
     nothing either *)
  let shaped =
    { N.default_profile with N.storm_waves_max = 9; storm_period_max = 500.0 }
  in
  for seed = 0 to 100 do
    Alcotest.(check bool)
      (Fmt.str "seed %d schedule unchanged" seed)
      true
      (N.equal_schedule (gen seed) (gen ~profile:shaped seed))
  done

let prop_storm_shape_within_profile =
  Helpers.qtest "generated storms respect the profile's shape bounds"
    QCheck2.Gen.(int_range 0 3_000)
    (fun seed ->
      let p = storm_profile in
      List.for_all
        (function
          | N.Storm { site; first; waves; period; down } ->
              site >= 1 && site <= 3
              && first >= 0.0 && first <= p.N.horizon
              && waves >= p.N.storm_waves_min && waves <= p.N.storm_waves_max
              && period >= p.N.storm_period_min && period <= p.N.storm_period_max
              && down >= p.N.storm_down_frac_min *. period
              && down <= p.N.storm_down_frac_max *. period
              && down < period
          | _ -> true)
        (gen ~profile:storm_profile seed))

let prop_storm_events_expansion =
  Helpers.qtest "storm_events expands wave i at first + i*period, up for period - down"
    QCheck2.Gen.(int_range 0 3_000)
    (fun seed ->
      List.for_all
        (function
          | N.Storm { site; first; waves; period; down } as storm ->
              let events = N.storm_events storm in
              List.length events = waves
              && List.for_all2
                   (fun i (s, crash_at, recover_at) ->
                     s = site
                     && Float.equal crash_at (first +. (float_of_int i *. period))
                     && Float.equal recover_at (crash_at +. down))
                   (List.init waves Fun.id) events
          | other -> N.storm_events other = [])
        (gen ~profile:storm_profile seed))

let prop_storm_respects_k_envelope =
  (* a storm's ≤ k interval is its whole first-crash-to-last-recovery
     envelope: under k=1 a storm never coexists with a timed crash whose
     interval overlaps it *)
  Helpers.qtest "storms count against the ≤ k bound by whole envelope"
    QCheck2.Gen.(int_range 0 3_000)
    (fun seed ->
      let schedule = gen ~profile:storm_profile ~k:1 seed in
      let recovery_of site =
        match
          List.find_map
            (function N.Recover { site = s; at } when s = site -> Some at | _ -> None)
            schedule
        with
        | Some at -> at
        | None -> infinity
      in
      match storms_of schedule with
      | [] -> true
      | [ N.Storm { first; waves; period; down; _ } ] ->
          let s_end = first +. (float_of_int (waves - 1) *. period) +. down in
          List.for_all
            (function
              | N.Crash { site; at } ->
                  (* the crash is down over [at, recovery): the storm's
                     solid envelope must not overlap that interval *)
                  not (first < recovery_of site && at < s_end)
              | N.Step_crash _ | N.Backup_crash _ ->
                  (* pinned crashes are conservatively down from 0 —
                     incompatible with any storm under k=1 *)
                  false
              | _ -> true)
            schedule
      | _ -> false (* at most one storm per schedule *))

(* ---------------- the World message-fault layer ---------------- *)

type wmsg = Ping | Pong

let wmsg_str = function Ping -> "ping" | Pong -> "pong"

let quiet ?(on_message = fun _ ~src:_ _ -> ()) ?(on_start = fun _ -> ()) () _site =
  {
    Sim.World.on_start;
    on_message;
    on_peer_down = (fun _ _ -> ());
    on_peer_up = (fun _ _ -> ());
    on_restart = (fun _ -> ());
  }

(* one Ping from site 1 to site 2, with [faults] armed; returns the
   arrival times at site 2 and the final metrics *)
let one_ping faults =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.set_msg_faults w faults;
  let arrivals = ref [] in
  let handlers =
    quiet
      ~on_start:(fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 Ping)
      ~on_message:(fun ctx ~src:_ _ -> arrivals := Sim.World.now ctx.Sim.World.world :: !arrivals)
      ()
  in
  ignore (Sim.World.run w ~handlers ());
  (List.rev !arrivals, Sim.World.metrics w)

let test_fault_duplicate_delivers_twice () =
  let arrivals, metrics = one_ping [ (0, Sim.World.Fault_duplicate) ] in
  Alcotest.(check int) "two deliveries" 2 (List.length arrivals);
  Alcotest.(check int) "one duplication counted" 1 (Sim.Metrics.counter metrics "messages_duplicated");
  match arrivals with
  | [ a; b ] -> Alcotest.(check bool) "independent latency draws" true (a <> b)
  | _ -> Alcotest.fail "expected two arrivals"

let test_fault_drop_loses_message () =
  let arrivals, metrics = one_ping [ (0, Sim.World.Fault_drop) ] in
  Alcotest.(check int) "nothing delivered" 0 (List.length arrivals);
  Alcotest.(check int) "one chaos drop counted" 1
    (Sim.Metrics.counter metrics "messages_chaos_dropped")

let test_fault_delay_adds_latency () =
  let arrivals, metrics = one_ping [ (0, Sim.World.Fault_delay 7.0) ] in
  Alcotest.(check int) "delivered once" 1 (List.length arrivals);
  Alcotest.(check bool) "extra latency applied" true (List.hd arrivals > 7.0);
  Alcotest.(check int) "one chaos delay counted" 1
    (Sim.Metrics.counter metrics "messages_chaos_delayed")

let test_fault_index_beyond_sends_never_fires () =
  let arrivals, metrics = one_ping [ (5, Sim.World.Fault_drop) ] in
  Alcotest.(check int) "delivered normally" 1 (List.length arrivals);
  Alcotest.(check int) "no chaos drop" 0 (Sim.Metrics.counter metrics "messages_chaos_dropped")

let test_fault_delay_reorders () =
  (* delay the first of two back-to-back sends past the second: FIFO is
     broken exactly as a reordering adversary would *)
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:wmsg_str () in
  Sim.World.set_msg_faults w [ (0, Sim.World.Fault_delay 7.0) ];
  let order = ref [] in
  let handlers =
    quiet
      ~on_start:(fun ctx ->
        if ctx.Sim.World.self = 1 then begin
          Sim.World.send ctx ~dst:2 Ping;
          Sim.World.send ctx ~dst:2 Pong
        end)
      ~on_message:(fun _ ~src:_ m -> order := m :: !order)
      ()
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check bool) "second send arrives first" true (List.rev !order = [ Pong; Ping ])

let suite =
  [
    Alcotest.test_case "same seed, same schedule" `Quick test_same_seed_same_schedule;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "split streams independent" `Quick test_split_streams_independent;
    prop_schedule_deterministic;
    prop_at_most_k_concurrent;
    prop_k_zero_no_crashes;
    Alcotest.test_case "default profile: no drops, no partitions" `Quick
      test_default_profile_respects_network_assumptions;
    Alcotest.test_case "disk-fault profile generates disk faults" `Quick
      test_disk_fault_profile_generates_disk_faults;
    Alcotest.test_case "p_disk_fault=0 draws nothing from the stream" `Quick
      test_zero_disk_fault_profile_is_stream_transparent;
    Alcotest.test_case "p_storm=0 draws nothing from the stream" `Quick
      test_zero_storm_profile_is_stream_transparent;
    prop_storm_shape_within_profile;
    prop_storm_events_expansion;
    prop_storm_respects_k_envelope;
    Alcotest.test_case "msg fault: duplicate" `Quick test_fault_duplicate_delivers_twice;
    Alcotest.test_case "msg fault: drop" `Quick test_fault_drop_loses_message;
    Alcotest.test_case "msg fault: delay" `Quick test_fault_delay_adds_latency;
    Alcotest.test_case "msg fault: unused index" `Quick test_fault_index_beyond_sends_never_fires;
    Alcotest.test_case "msg fault: delay reorders" `Quick test_fault_delay_reorders;
  ]
