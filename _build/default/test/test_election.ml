(** Tests for {!Engine.Election}: the bully algorithm under crashes,
    cascades and usurping recoveries. *)

module E = Engine.Election

let test_failure_free () =
  let t = E.create ~n_sites:5 ~seed:1 () in
  ignore (E.run t ());
  Alcotest.(check bool) "agreement" true (E.agreement t);
  List.iter
    (fun s ->
      Alcotest.(check (option int)) (Fmt.str "site %d elects 5" s) (Some 5) (E.leader_at t ~site:s))
    [ 1; 2; 3; 4; 5 ]

let test_two_sites () =
  let t = E.create ~n_sites:2 ~seed:1 () in
  ignore (E.run t ());
  Alcotest.(check (option int)) "site 1 elects 2" (Some 2) (E.leader_at t ~site:1);
  Alcotest.(check (option int)) "site 2 elects itself" (Some 2) (E.leader_at t ~site:2)

let test_leader_crash_reelection () =
  let t = E.create ~n_sites:4 ~seed:3 () in
  ignore (E.run t ~crashes:[ (4, 30.0) ] ());
  Alcotest.(check bool) "agreement among survivors" true (E.agreement t);
  List.iter
    (fun s ->
      Alcotest.(check (option int)) (Fmt.str "site %d now elects 3" s) (Some 3) (E.leader_at t ~site:s))
    [ 1; 2; 3 ]

let test_cascading_crashes () =
  let t = E.create ~n_sites:4 ~seed:5 () in
  ignore (E.run t ~crashes:[ (4, 20.0); (3, 40.0); (2, 60.0) ] ());
  Alcotest.(check (option int)) "last survivor leads itself" (Some 1) (E.leader_at t ~site:1);
  Alcotest.(check bool) "agreement" true (E.agreement t);
  (* site 1 witnessed the whole succession *)
  let history = List.map snd (E.leader_history t ~site:1) in
  Alcotest.(check (list int)) "succession 4, 3, 2, 1" [ 4; 3; 2; 1 ] history

let test_recovery_usurps () =
  (* the highest site crashes, a lower one takes over, then the highest
     recovers and bullies its way back *)
  let t = E.create ~n_sites:3 ~seed:7 () in
  ignore (E.run t ~crashes:[ (3, 20.0) ] ~recoveries:[ (3, 50.0) ] ());
  Alcotest.(check bool) "agreement" true (E.agreement t);
  List.iter
    (fun s ->
      Alcotest.(check (option int)) (Fmt.str "site %d back to 3" s) (Some 3) (E.leader_at t ~site:s))
    [ 1; 2; 3 ];
  let history = List.map snd (E.leader_history t ~site:1) in
  Alcotest.(check (list int)) "site 1 saw 3, then 2, then 3 again" [ 3; 2; 3 ] history

let test_candidate_crash_mid_election () =
  (* the would-be winner dies right after the initial elections start;
     the answer timeout plus the detector sort it out *)
  let t = E.create ~n_sites:3 ~seed:9 () in
  ignore (E.run t ~crashes:[ (3, 0.5) ] ());
  Alcotest.(check bool) "agreement" true (E.agreement t);
  Alcotest.(check (option int)) "site 2 wins" (Some 2) (E.leader_at t ~site:1)

let test_determinism () =
  let run () =
    let t = E.create ~n_sites:5 ~seed:11 () in
    ignore (E.run t ~crashes:[ (5, 10.0); (4, 25.0) ] ());
    List.map (fun s -> E.leader_at t ~site:s) [ 1; 2; 3 ]
  in
  Alcotest.(check (list (option int))) "same leaders both runs" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "failure-free: highest wins" `Quick test_failure_free;
    Alcotest.test_case "two sites" `Quick test_two_sites;
    Alcotest.test_case "leader crash re-election" `Quick test_leader_crash_reelection;
    Alcotest.test_case "cascading crashes" `Quick test_cascading_crashes;
    Alcotest.test_case "recovered site usurps" `Quick test_recovery_usurps;
    Alcotest.test_case "candidate crash mid-election" `Quick test_candidate_crash_mid_election;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
