(** Tests for {!Kv.Lock_table}: strict 2PL with deadlock detection. *)

module L = Kv.Lock_table

let test_grant_exclusive () =
  let t = L.create () in
  Alcotest.check Helpers.lock_outcome "first exclusive" L.Granted
    (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  Alcotest.check Helpers.lock_outcome "re-acquire is granted" L.Granted
    (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  Alcotest.check Helpers.lock_outcome "second txn waits" L.Waiting
    (L.acquire t ~txn:2 ~key:"k" ~mode:L.Exclusive)

let test_shared_compatible () =
  let t = L.create () in
  Alcotest.check Helpers.lock_outcome "reader 1" L.Granted (L.acquire t ~txn:1 ~key:"k" ~mode:L.Shared);
  Alcotest.check Helpers.lock_outcome "reader 2" L.Granted (L.acquire t ~txn:2 ~key:"k" ~mode:L.Shared);
  Alcotest.check Helpers.lock_outcome "writer waits" L.Waiting
    (L.acquire t ~txn:3 ~key:"k" ~mode:L.Exclusive)

let test_exclusive_holder_allows_own_shared () =
  let t = L.create () in
  ignore (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  Alcotest.check Helpers.lock_outcome "own shared under exclusive" L.Granted
    (L.acquire t ~txn:1 ~key:"k" ~mode:L.Shared)

let test_upgrade () =
  let t = L.create () in
  ignore (L.acquire t ~txn:1 ~key:"k" ~mode:L.Shared);
  Alcotest.check Helpers.lock_outcome "sole reader upgrades" L.Granted
    (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  Alcotest.(check (list string)) "holds k" [ "k" ] (L.held_keys t ~txn:1)

let test_release_promotes_fifo () =
  let t = L.create () in
  let granted = ref [] in
  L.on_grant t (fun txn -> granted := txn :: !granted);
  ignore (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"k" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:3 ~key:"k" ~mode:L.Exclusive);
  L.release_all t ~txn:1;
  Alcotest.(check (list int)) "txn 2 first" [ 2 ] !granted;
  L.release_all t ~txn:2;
  Alcotest.(check (list int)) "then txn 3" [ 3; 2 ] !granted

let test_release_promotes_readers_together () =
  let t = L.create () in
  let granted = ref [] in
  L.on_grant t (fun txn -> granted := txn :: !granted);
  ignore (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"k" ~mode:L.Shared);
  ignore (L.acquire t ~txn:3 ~key:"k" ~mode:L.Shared);
  L.release_all t ~txn:1;
  Alcotest.(check (list int)) "both readers granted" [ 2; 3 ] (List.sort compare !granted)

let test_deadlock_two_txns () =
  let t = L.create () in
  ignore (L.acquire t ~txn:1 ~key:"a" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"b" ~mode:L.Exclusive);
  Alcotest.check Helpers.lock_outcome "1 waits for b" L.Waiting
    (L.acquire t ~txn:1 ~key:"b" ~mode:L.Exclusive);
  (match L.acquire t ~txn:2 ~key:"a" ~mode:L.Exclusive with
  | L.Deadlock _ -> ()
  | other -> Alcotest.failf "expected deadlock, got %a" L.pp_outcome other);
  (* the victim was not queued: releasing txn 1's locks should leave txn 2
     able to proceed *)
  L.release_all t ~txn:1;
  Alcotest.check Helpers.lock_outcome "2 proceeds after victim release" L.Granted
    (L.acquire t ~txn:2 ~key:"a" ~mode:L.Exclusive)

let test_deadlock_three_txns () =
  let t = L.create () in
  ignore (L.acquire t ~txn:1 ~key:"a" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"b" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:3 ~key:"c" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:1 ~key:"b" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"c" ~mode:L.Exclusive);
  match L.acquire t ~txn:3 ~key:"a" ~mode:L.Exclusive with
  | L.Deadlock cycle -> Alcotest.(check bool) "cycle mentions requester" true (List.mem 3 cycle)
  | other -> Alcotest.failf "expected 3-cycle deadlock, got %a" L.pp_outcome other

let test_no_false_deadlock () =
  let t = L.create () in
  ignore (L.acquire t ~txn:1 ~key:"a" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"b" ~mode:L.Exclusive);
  Alcotest.check Helpers.lock_outcome "chain, not cycle" L.Waiting
    (L.acquire t ~txn:2 ~key:"a" ~mode:L.Exclusive)

let test_force_grant () =
  let t = L.create () in
  L.force_grant t ~txn:9 ~key:"k" ~mode:L.Exclusive;
  Alcotest.(check (list string)) "recovered lock held" [ "k" ] (L.held_keys t ~txn:9);
  Alcotest.check Helpers.lock_outcome "others wait behind it" L.Waiting
    (L.acquire t ~txn:1 ~key:"k" ~mode:L.Shared)

let test_n_waiting () =
  let t = L.create () in
  ignore (L.acquire t ~txn:1 ~key:"k" ~mode:L.Exclusive);
  ignore (L.acquire t ~txn:2 ~key:"k" ~mode:L.Shared);
  ignore (L.acquire t ~txn:3 ~key:"k" ~mode:L.Shared);
  Alcotest.(check int) "two waiting" 2 (L.n_waiting t);
  L.release_all t ~txn:1;
  Alcotest.(check int) "none waiting" 0 (L.n_waiting t)

(* property: under random single-key schedules, never two exclusive holders *)
let prop_no_double_exclusive =
  Helpers.qtest "no two exclusive holders on one key" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (int_range 1 5) (oneofl [ `Acquire_x; `Acquire_s; `Release ])))
    (fun script ->
      let t = L.create () in
      let ok = ref true in
      let others_hold txn =
        List.exists
          (fun other -> other <> txn && L.held_keys t ~txn:other <> [])
          [ 1; 2; 3; 4; 5 ]
      in
      List.iter
        (fun (txn, action) ->
          match action with
          | `Acquire_x -> (
              match L.acquire t ~txn ~key:"k" ~mode:L.Exclusive with
              | L.Granted -> if others_hold txn then ok := false
              | L.Waiting | L.Deadlock _ -> ())
          | `Acquire_s -> ignore (L.acquire t ~txn ~key:"k" ~mode:L.Shared)
          | `Release -> L.release_all t ~txn)
        script;
      !ok)

let suite =
  [
    Alcotest.test_case "exclusive grants" `Quick test_grant_exclusive;
    Alcotest.test_case "shared compatibility" `Quick test_shared_compatible;
    Alcotest.test_case "own shared under exclusive" `Quick test_exclusive_holder_allows_own_shared;
    Alcotest.test_case "lock upgrade" `Quick test_upgrade;
    Alcotest.test_case "FIFO promotion" `Quick test_release_promotes_fifo;
    Alcotest.test_case "readers promoted together" `Quick test_release_promotes_readers_together;
    Alcotest.test_case "two-transaction deadlock" `Quick test_deadlock_two_txns;
    Alcotest.test_case "three-transaction deadlock" `Quick test_deadlock_three_txns;
    Alcotest.test_case "no false deadlock on chains" `Quick test_no_false_deadlock;
    Alcotest.test_case "force grant (recovery)" `Quick test_force_grant;
    Alcotest.test_case "waiting count" `Quick test_n_waiting;
    prop_no_double_exclusive;
  ]
