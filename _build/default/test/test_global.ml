(** Tests for {!Core.Global}: global transaction states and the successor
    relation. *)

module G = Core.Global
module C = Core.Catalog
module M = Core.Message

let p2 = C.central_2pc 2

let test_initial () =
  let g = G.initial p2 in
  Alcotest.(check (array string)) "everyone starts in q" [| "q"; "q" |] g.G.locals;
  Alcotest.(check int) "the request is on the tape" 1 (M.Multiset.cardinal g.G.network);
  Alcotest.(check bool) "no yes votes" true (Array.for_all not g.G.voted_yes)

let test_initial_not_final () =
  let g = G.initial p2 in
  Alcotest.(check bool) "not final" false (G.is_final p2 g);
  Alcotest.(check bool) "not inconsistent" false (G.is_inconsistent p2 g);
  Alcotest.(check bool) "not terminal" false (G.is_terminal p2 g)

let test_successors_from_initial () =
  (* only the coordinator can move: it consumes the request *)
  let g = G.initial p2 in
  let succs = G.successors p2 g in
  Alcotest.(check int) "exactly one successor" 1 (List.length succs);
  let site, _tr, g' = List.hd succs in
  Alcotest.(check int) "coordinator moved" 1 site;
  Alcotest.(check string) "coordinator now in w" "w" (G.local g' 1);
  Alcotest.(check string) "slave still in q" "q" (G.local g' 2)

let test_fire_vote_tracking () =
  let g = G.initial p2 in
  let _, _, g1 = List.hd (G.successors p2 g) in
  (* slave now has the xact: both vote transitions enabled *)
  let slave_moves = List.filter (fun (s, _, _) -> s = 2) (G.successors p2 g1) in
  Alcotest.(check int) "slave has two choices" 2 (List.length slave_moves);
  let yes_move =
    List.find (fun (_, tr, _) -> tr.Core.Automaton.vote = Some Core.Types.Yes) slave_moves
  in
  let _, _, g2 = yes_move in
  Alcotest.(check bool) "slave vote recorded" true g2.G.voted_yes.(1);
  Alcotest.(check bool) "coordinator vote not recorded" false g2.G.voted_yes.(0)

let test_fire_not_enabled () =
  let g = G.initial p2 in
  let fake =
    {
      Core.Automaton.from_state = "q";
      to_state = "w";
      consumes = [ M.make ~name:"ghost" ~src:0 ~dst:1 ];
      emits = [];
      vote = None;
    }
  in
  Alcotest.check_raises "firing disabled transition"
    (Invalid_argument "Global.fire: transition not enabled") (fun () ->
      ignore (G.fire g ~site:1 fake))

let test_inconsistency_detection () =
  (* construct an artificial mixed state *)
  let g = G.initial p2 in
  let mixed = { g with G.locals = [| "c"; "a" |] } in
  Alcotest.(check bool) "commit+abort is inconsistent" true (G.is_inconsistent p2 mixed);
  Alcotest.(check bool) "mixed state is final" true (G.is_final p2 mixed);
  let all_c = { g with G.locals = [| "c"; "c" |] } in
  Alcotest.(check bool) "all-commit consistent" false (G.is_inconsistent p2 all_c)

let test_equal_and_hash () =
  let g = G.initial p2 in
  let g' = G.initial p2 in
  Alcotest.(check bool) "structurally equal" true (G.equal g g');
  Alcotest.(check bool) "equal hash" true (G.hash g = G.hash g');
  let _, _, g1 = List.hd (G.successors p2 g) in
  Alcotest.(check bool) "successor differs" false (G.equal g g1)

let test_run_to_completion () =
  (* drive an arbitrary maximal path; it must end in a consistent final state *)
  let rec drive g steps =
    if steps > 100 then Alcotest.fail "no quiescence after 100 steps"
    else
      match G.successors p2 g with
      | [] -> g
      | (_, _, g') :: _ -> drive g' (steps + 1)
  in
  let final = drive (G.initial p2) 0 in
  Alcotest.(check bool) "terminal" true (G.is_terminal p2 final);
  Alcotest.(check bool) "final" true (G.is_final p2 final);
  Alcotest.(check bool) "consistent" false (G.is_inconsistent p2 final)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial;
    Alcotest.test_case "initial classification" `Quick test_initial_not_final;
    Alcotest.test_case "successors from initial" `Quick test_successors_from_initial;
    Alcotest.test_case "vote tracking" `Quick test_fire_vote_tracking;
    Alcotest.test_case "fire requires enablement" `Quick test_fire_not_enabled;
    Alcotest.test_case "inconsistency detection" `Quick test_inconsistency_detection;
    Alcotest.test_case "equality and hashing" `Quick test_equal_and_hash;
    Alcotest.test_case "drive to completion" `Quick test_run_to_completion;
  ]
