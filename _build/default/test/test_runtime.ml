(** Tests for {!Engine.Runtime}: executing the catalog protocols on the
    simulator under systematic failure injection.

    The central assertions mirror the paper:
    - atomicity is never violated, under any crash pattern;
    - under 3PC every operational site terminates (nonblocking);
    - under 2PC survivors block exactly when the theorem says they must,
      and unblock when the coordinator recovers. *)

module R = Engine.Runtime
module FP = Engine.Failure_plan
module RB = Engine.Rulebook

(* compile each rulebook once: the graph analyses dominate test time *)
let rb_c2 = lazy (RB.compile (Core.Catalog.central_2pc 3))
let rb_c3 = lazy (RB.compile (Core.Catalog.central_3pc 3))
let rb_d2 = lazy (RB.compile (Core.Catalog.decentralized_2pc 3))
let rb_d3 = lazy (RB.compile (Core.Catalog.decentralized_3pc 3))
let rb_1p = lazy (RB.compile (Core.Catalog.one_pc 3))

let run ?votes ?plan ?(seed = 1) rb = R.run (R.config ?votes ?plan ~seed (Lazy.force rb))

let check_all_outcome name expected (r : R.result) =
  List.iter
    (fun (s : R.site_report) ->
      Alcotest.(check (option Helpers.outcome)) (Fmt.str "%s site %d" name s.R.site) (Some expected)
        s.R.outcome)
    r.R.reports;
  Alcotest.(check bool) (name ^ " consistent") true r.R.consistent

let test_failure_free_commit () =
  List.iter
    (fun (name, rb) -> check_all_outcome name Core.Types.Committed (run rb))
    [ ("c2", rb_c2); ("c3", rb_c3); ("d2", rb_d2); ("d3", rb_d3); ("1p", rb_1p) ]

let test_failure_free_abort_on_no () =
  List.iter
    (fun (name, rb) ->
      check_all_outcome name Core.Types.Aborted (run ~votes:[ (2, Core.Types.No) ] rb))
    [ ("c2", rb_c2); ("c3", rb_c3); ("d2", rb_d2); ("d3", rb_d3) ]

let test_coordinator_no_vote () =
  check_all_outcome "coordinator veto" Core.Types.Aborted (run ~votes:[ (1, Core.Types.No) ] rb_c3)

(* The sweep: every site × protocol step × crash mode.  Steps range over
   the longest path (4 transitions in 3PC); nonexistent steps are no-ops. *)
let crash_modes k = [ FP.Before_transition; FP.After_logging 0; FP.After_logging k; FP.After_transition ]

let sweep rb ~nonblocking =
  let count = ref 0 in
  List.iter
    (fun site ->
      List.iter
        (fun step ->
          List.iter
            (fun mode ->
              incr count;
              let plan = FP.crash_at_step ~site ~step ~mode in
              let r = run ~plan ~seed:(100 + !count) rb in
              let label = Fmt.str "site %d step %d %a" site step FP.pp_crash_mode mode in
              Alcotest.(check bool) (label ^ ": consistent") true r.R.consistent;
              if nonblocking then
                Alcotest.(check bool)
                  (label ^ ": all operational sites decided")
                  true r.R.all_operational_decided)
            (crash_modes 1))
        [ 0; 1; 2; 3 ])
    [ 1; 2; 3 ]

let test_sweep_central_3pc () = sweep rb_c3 ~nonblocking:true
let test_sweep_decentralized_3pc () = sweep rb_d3 ~nonblocking:true
let test_sweep_central_2pc () = sweep rb_c2 ~nonblocking:false
let test_sweep_decentralized_2pc () = sweep rb_d2 ~nonblocking:false

let test_2pc_blocks_on_commit_point_crash () =
  (* the coordinator logs its commit decision and dies before telling
     anyone: 2PC survivors must block *)
  let plan = FP.crash_at_step ~site:1 ~step:1 ~mode:(FP.After_logging 0) in
  let r = run ~plan rb_c2 in
  Alcotest.(check int) "both slaves blocked" 2 r.R.blocked_operational;
  Alcotest.(check bool) "consistent" true r.R.consistent

let test_3pc_never_blocks_same_crash () =
  let plan = FP.crash_at_step ~site:1 ~step:1 ~mode:(FP.After_logging 0) in
  let r = run ~plan rb_c3 in
  Alcotest.(check int) "no blocked site" 0 r.R.blocked_operational;
  (* the coordinator had only reached the buffer phase: survivors abort *)
  check_all_outcome "survivors"
    Core.Types.Aborted
    { r with R.reports = List.filter (fun (s : R.site_report) -> s.R.operational) r.R.reports }

let test_3pc_commit_side_termination () =
  (* coordinator dies mid commit-broadcast: one slave learned commit, so
     the backup relays commit to everyone *)
  let plan = FP.crash_at_step ~site:1 ~step:2 ~mode:(FP.After_logging 1) in
  let r = run ~plan rb_c3 in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  List.iter
    (fun (s : R.site_report) ->
      if s.R.operational then
        Alcotest.(check (option Helpers.outcome))
          (Fmt.str "site %d committed" s.R.site)
          (Some Core.Types.Committed) s.R.outcome)
    r.R.reports

let test_2pc_unblocks_on_recovery () =
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 1; step = 1; mode = FP.After_logging 0 } ]
      ~recoveries:[ (1, 50.0) ] ()
  in
  let r = run ~plan rb_c2 in
  Alcotest.(check int) "no one left blocked" 0 r.R.blocked_operational;
  check_all_outcome "all commit after recovery" Core.Types.Committed r

let test_recovery_before_vote_aborts () =
  (* a slave crashes before voting and recovers: unilateral abort *)
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 2; step = 0; mode = FP.Before_transition } ]
      ~recoveries:[ (2, 50.0) ] ()
  in
  let r = run ~plan rb_c3 in
  check_all_outcome "everyone aborted" Core.Types.Aborted r

let test_recovered_site_learns_commit () =
  (* a slave crashes after voting yes; the rest commit; on recovery it
     must learn the commit, not abort *)
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 3; step = 1; mode = FP.After_transition } ]
      ~recoveries:[ (3, 80.0) ] ()
  in
  let r = run ~plan rb_c3 in
  check_all_outcome "everyone committed" Core.Types.Committed r

let test_cascade_coordinator_then_backup () =
  (* coordinator dies; backup (site 2) dies after moving one site; the
     last survivor must still terminate *)
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 1; step = 1; mode = FP.After_logging 0 } ]
      ~move_crashes:[ (2, 1) ] ()
  in
  let r = run ~plan rb_c3 in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  Alcotest.(check bool) "survivor decided" true r.R.all_operational_decided

let test_cascade_backup_dies_mid_decide () =
  (* backup crashes after sending one Decide: the remaining site already
     has the outcome or takes over; both must agree *)
  let plan =
    FP.make
      ~step_crashes:[ { FP.site = 1; step = 2; mode = FP.After_logging 0 } ]
      ~decide_crashes:[ (2, 1) ] ()
  in
  let r = run ~plan rb_c3 in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  Alcotest.(check bool) "survivor decided" true r.R.all_operational_decided

let test_down_to_one_survivor () =
  (* kill every site but 3, at different steps: 3PC still terminates *)
  let plan =
    FP.make
      ~step_crashes:
        [
          { FP.site = 1; step = 1; mode = FP.After_logging 0 };
          { FP.site = 2; step = 1; mode = FP.After_transition };
        ]
      ()
  in
  let r = run ~plan rb_c3 in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  Alcotest.(check bool) "last survivor decided" true r.R.all_operational_decided

let test_one_pc_blocking_slave () =
  (* 1PC: coordinator crashes before announcing; slaves cannot even abort
     unilaterally (no veto right) — they block *)
  let plan = FP.crash_at_step ~site:1 ~step:0 ~mode:FP.Before_transition in
  let r = run ~plan rb_1p in
  Alcotest.(check int) "both slaves blocked" 2 r.R.blocked_operational;
  Alcotest.(check bool) "consistent" true r.R.consistent

let test_message_counts_failure_free () =
  (* central 2PC on n sites: xact, vote, commit per slave = 3(n-1)
     messages; 3PC adds prepare+ack = 5(n-1) *)
  let r2 = run rb_c2 and r3 = run rb_c3 in
  Alcotest.(check int) "2pc messages" 6 r2.R.messages_sent;
  Alcotest.(check int) "3pc messages" 10 r3.R.messages_sent

let test_determinism () =
  let plan = FP.crash_at_step ~site:1 ~step:1 ~mode:(FP.After_logging 1) in
  let a = run ~plan ~seed:7 rb_c3 and b = run ~plan ~seed:7 rb_c3 in
  Alcotest.(check int) "same messages" a.R.messages_sent b.R.messages_sent;
  List.iter2
    (fun (x : R.site_report) (y : R.site_report) ->
      Alcotest.(check (option Helpers.outcome)) "same outcome" x.R.outcome y.R.outcome)
    a.R.reports b.R.reports

let test_duration_reported () =
  let r = run rb_c3 in
  Alcotest.(check bool) "positive duration" true (r.R.duration > 0.0)

let suite =
  [
    Alcotest.test_case "failure-free commit (all protocols)" `Quick test_failure_free_commit;
    Alcotest.test_case "failure-free abort on no vote" `Quick test_failure_free_abort_on_no;
    Alcotest.test_case "coordinator veto" `Quick test_coordinator_no_vote;
    Alcotest.test_case "crash sweep: central 3PC (nonblocking)" `Slow test_sweep_central_3pc;
    Alcotest.test_case "crash sweep: decentralized 3PC (nonblocking)" `Slow
      test_sweep_decentralized_3pc;
    Alcotest.test_case "crash sweep: central 2PC (consistent)" `Slow test_sweep_central_2pc;
    Alcotest.test_case "crash sweep: decentralized 2PC (consistent)" `Slow
      test_sweep_decentralized_2pc;
    Alcotest.test_case "2PC blocks on commit-point crash" `Quick test_2pc_blocks_on_commit_point_crash;
    Alcotest.test_case "3PC terminates on the same crash" `Quick test_3pc_never_blocks_same_crash;
    Alcotest.test_case "3PC commit-side termination" `Quick test_3pc_commit_side_termination;
    Alcotest.test_case "2PC unblocks on coordinator recovery" `Quick test_2pc_unblocks_on_recovery;
    Alcotest.test_case "recovery before vote aborts" `Quick test_recovery_before_vote_aborts;
    Alcotest.test_case "recovered site learns commit" `Quick test_recovered_site_learns_commit;
    Alcotest.test_case "cascade: coordinator then backup" `Quick test_cascade_coordinator_then_backup;
    Alcotest.test_case "cascade: backup dies mid-decide" `Quick test_cascade_backup_dies_mid_decide;
    Alcotest.test_case "down to one survivor" `Quick test_down_to_one_survivor;
    Alcotest.test_case "1PC slaves block" `Quick test_one_pc_blocking_slave;
    Alcotest.test_case "message counts" `Quick test_message_counts_failure_free;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "duration reported" `Quick test_duration_reported;
  ]
