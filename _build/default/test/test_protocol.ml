(** Tests for {!Core.Protocol}: construction validation and derived
    structure. *)

module P = Core.Protocol
module A = Core.Automaton

let st id kind = { A.id; kind }

let valid_fsa site =
  A.make ~site
    ~states:[ st "q" Core.Types.Initial; st "c" Core.Types.Commit; st "a" Core.Types.Abort ]
    ~initial:"q"
    ~transitions:
      [
        { A.from_state = "q"; to_state = "c"; consumes = []; emits = []; vote = Some Core.Types.Yes };
        { A.from_state = "q"; to_state = "a"; consumes = []; emits = []; vote = Some Core.Types.No };
      ]

let test_make_checks_site_ids () =
  Alcotest.check_raises "wrong site id"
    (Invalid_argument "Protocol.make: automaton at index 0 claims site 2") (fun () ->
      ignore
        (P.make ~name:"bad" ~paradigm:P.Decentralized
           ~automata:[| valid_fsa 2 |]
           ~initial_network:[]))

let test_make_validates_fsas () =
  let cyclic =
    A.make ~site:1
      ~states:[ st "q" Core.Types.Initial; st "w" Core.Types.Wait ]
      ~initial:"q"
      ~transitions:
        [
          { A.from_state = "q"; to_state = "w"; consumes = []; emits = []; vote = None };
          { A.from_state = "w"; to_state = "q"; consumes = []; emits = []; vote = None };
        ]
  in
  Alcotest.(check bool) "cyclic FSA rejected" true
    (match P.make ~name:"bad" ~paradigm:P.Decentralized ~automata:[| cyclic |] ~initial_network:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_automaton_range () =
  let p = Core.Catalog.central_2pc 3 in
  Alcotest.check_raises "site 0" (Invalid_argument "Protocol.automaton: site 0 out of range 1..3")
    (fun () -> ignore (P.automaton p 0));
  Alcotest.check_raises "site 4" (Invalid_argument "Protocol.automaton: site 4 out of range 1..3")
    (fun () -> ignore (P.automaton p 4))

let test_sites () =
  Alcotest.(check (list int)) "sites 1..4" [ 1; 2; 3; 4 ] (P.sites (Core.Catalog.central_2pc 4))

let test_single_site_homogeneous () =
  let p = P.make ~name:"solo" ~paradigm:P.Decentralized ~automata:[| valid_fsa 1 |] ~initial_network:[] in
  Alcotest.(check bool) "single site is homogeneous" true (P.homogeneous p);
  Alcotest.(check int) "one phase" 1 (P.phases p)

let test_pp_runs () =
  (* smoke: the printers must not raise on catalog protocols *)
  List.iter
    (fun (e : Core.Catalog.entry) ->
      let p = e.Core.Catalog.build 2 in
      let s = Fmt.str "%a" P.pp p in
      Alcotest.(check bool) (e.Core.Catalog.label ^ " pp nonempty") true (String.length s > 50))
    Core.Catalog.all

let suite =
  [
    Alcotest.test_case "site id validation" `Quick test_make_checks_site_ids;
    Alcotest.test_case "FSA validation" `Quick test_make_validates_fsas;
    Alcotest.test_case "automaton range" `Quick test_automaton_range;
    Alcotest.test_case "sites listing" `Quick test_sites;
    Alcotest.test_case "single-site protocol" `Quick test_single_site_homogeneous;
    Alcotest.test_case "pretty printers" `Quick test_pp_runs;
  ]
