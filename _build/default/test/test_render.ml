(** Tests for {!Core.Render}: the DOT and text renderings behind the
    figure regeneration. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_automaton_dot () =
  let a = Core.Protocol.automaton (Core.Catalog.central_2pc 2) 2 in
  let dot = Core.Render.automaton_to_dot a in
  Alcotest.(check bool) "digraph header" true (contains ~needle:"digraph site2" dot);
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " node present") true (contains ~needle:(s ^ " [label=") dot))
    [ "q"; "w"; "a"; "c" ];
  Alcotest.(check bool) "edge q->w" true (contains ~needle:"q -> w" dot);
  Alcotest.(check bool) "commit colored" true (contains ~needle:"color=darkgreen" dot);
  Alcotest.(check bool) "abort colored" true (contains ~needle:"color=red3" dot)

let test_skeleton_dot () =
  let dot = Core.Render.skeleton_to_dot Core.Skeleton.canonical_3pc in
  Alcotest.(check bool) "buffer dashed" true (contains ~needle:"style=dashed" dot);
  Alcotest.(check bool) "committable starred" true (contains ~needle:"p*" dot);
  Alcotest.(check bool) "edge w->p" true (contains ~needle:"w -> p" dot)

let test_reachability_dot () =
  let g = Core.Reachability.build (Core.Catalog.central_2pc 2) in
  let dot = Core.Render.reachability_to_dot g in
  Alcotest.(check bool) "initial node" true (contains ~needle:"n0 [label=\"q,q\"]" dot);
  (* one DOT node per reachable global state *)
  let count_nodes =
    String.split_on_char '\n' dot
    |> List.filter (fun l -> contains ~needle:"[label=" l && not (contains ~needle:"->" l))
    |> List.length
  in
  Alcotest.(check int) "node count matches graph" (Core.Reachability.n_nodes g) count_nodes;
  let full = Core.Render.reachability_to_dot ~full:true g in
  Alcotest.(check bool) "full mode includes network" true (contains ~needle:"request" full)

let test_concurrency_table () =
  let g = Core.Reachability.build (Core.Catalog.decentralized_2pc 2) in
  let table = Core.Render.concurrency_table g in
  Alcotest.(check bool) "CS(w) line" true (contains ~needle:"CS(w) = {a, c, q, w}" table);
  Alcotest.(check bool) "CS(c) line" true (contains ~needle:"CS(c) = {c, w}" table)

let test_dot_escaping () =
  Alcotest.(check string) "quotes escaped" "a\\\"b" (Core.Render.dot_escape "a\"b")

let suite =
  [
    Alcotest.test_case "automaton DOT" `Quick test_automaton_dot;
    Alcotest.test_case "skeleton DOT" `Quick test_skeleton_dot;
    Alcotest.test_case "reachability DOT" `Quick test_reachability_dot;
    Alcotest.test_case "concurrency table" `Quick test_concurrency_table;
    Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
  ]
