(** Tests for {!Core.Nonblocking}: the fundamental nonblocking theorem on
    the whole catalog — the paper's central result. *)

module C = Core.Catalog
module N = Core.Nonblocking

let analyze label n =
  let entry = C.find label in
  N.analyze_protocol (entry.C.build n)

let test_catalog_verdicts () =
  List.iter
    (fun (entry : C.entry) ->
      List.iter
        (fun n ->
          let report = N.analyze_protocol (entry.C.build n) in
          Alcotest.(check bool)
            (Fmt.str "%s n=%d nonblocking" entry.C.label n)
            entry.C.nonblocking_expected report.N.nonblocking)
        [ 2; 3; 4 ])
    C.all

let test_2pc_violations_at_w () =
  let r = analyze "central-2pc" 3 in
  (* every violation concerns a slave's w state, and each slave violates
     both conditions *)
  Alcotest.(check int) "four violations" 4 (List.length r.N.violations);
  List.iter
    (fun v ->
      Alcotest.(check string) "state w" "w" v.N.state;
      Alcotest.(check bool) "slave site" true (v.N.site > 1))
    r.N.violations

let test_2pc_coordinator_satisfies () =
  let r = analyze "central-2pc" 4 in
  Alcotest.(check (list int)) "only the coordinator satisfies" [ 1 ] r.N.satisfying_sites;
  Alcotest.(check int) "resilience 0" 0 r.N.resilience

let test_3pc_resilience () =
  List.iter
    (fun n ->
      let r = analyze "central-3pc" n in
      Alcotest.(check (list int))
        (Fmt.str "all %d sites satisfy" n)
        (List.init n (fun i -> i + 1))
        r.N.satisfying_sites;
      Alcotest.(check int) "resilience n-1" (n - 1) r.N.resilience)
    [ 2; 3; 4 ]

let test_decentralized_2pc_no_site_satisfies () =
  let r = analyze "decentralized-2pc" 3 in
  Alcotest.(check (list int)) "no site satisfies" [] r.N.satisfying_sites

let test_1pc_blocking_via_condition1 () =
  let r = analyze "1pc" 3 in
  Alcotest.(check bool) "blocking" false r.N.nonblocking;
  Alcotest.(check bool) "condition 1 violated somewhere" true
    (List.exists (fun v -> v.N.condition = `Both_commit_and_abort) r.N.violations)

let test_violation_conditions_2pc () =
  let r = analyze "decentralized-2pc" 2 in
  let conds site =
    List.filter_map (fun v -> if v.N.site = site then Some v.N.condition else None) r.N.violations
  in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Fmt.str "site %d violates condition 1" site)
        true
        (List.mem `Both_commit_and_abort (conds site));
      Alcotest.(check bool)
        (Fmt.str "site %d violates condition 2" site)
        true
        (List.mem `Noncommittable_sees_commit (conds site)))
    [ 1; 2 ]

let test_3pc_no_violations () =
  List.iter
    (fun label ->
      let r = analyze label 3 in
      Alcotest.(check int) (label ^ " violation count") 0 (List.length r.N.violations))
    [ "central-3pc"; "decentralized-3pc" ]

let test_report_names_protocol () =
  let r = analyze "central-2pc" 2 in
  Alcotest.(check string) "protocol name" "central-2pc-2" r.N.protocol_name

let suite =
  [
    Alcotest.test_case "catalog verdicts (paper's table of protocols)" `Slow test_catalog_verdicts;
    Alcotest.test_case "2PC violations pinpoint w" `Quick test_2pc_violations_at_w;
    Alcotest.test_case "2PC coordinator satisfies both conditions" `Quick
      test_2pc_coordinator_satisfies;
    Alcotest.test_case "3PC resilience is n-1 (corollary)" `Quick test_3pc_resilience;
    Alcotest.test_case "decentralized 2PC: no site satisfies" `Quick
      test_decentralized_2pc_no_site_satisfies;
    Alcotest.test_case "1PC blocks via condition 1" `Quick test_1pc_blocking_via_condition1;
    Alcotest.test_case "2PC violates both conditions" `Quick test_violation_conditions_2pc;
    Alcotest.test_case "3PC: zero violations" `Quick test_3pc_no_violations;
    Alcotest.test_case "report carries protocol name" `Quick test_report_names_protocol;
  ]
