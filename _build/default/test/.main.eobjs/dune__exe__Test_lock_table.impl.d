test/test_lock_table.ml: Alcotest Helpers Kv List QCheck2
