test/test_protocol.ml: Alcotest Core Fmt List String
