test/test_synchrony.ml: Alcotest Core Fmt List
