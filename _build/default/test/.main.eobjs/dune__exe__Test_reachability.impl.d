test/test_reachability.ml: Alcotest Array Core List
