test/test_read_only_termination.ml: Alcotest Fmt Kv List
