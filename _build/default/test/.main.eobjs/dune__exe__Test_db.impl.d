test/test_db.ml: Alcotest Fmt Kv List Sim
