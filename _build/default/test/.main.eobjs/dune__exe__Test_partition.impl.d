test/test_partition.ml: Alcotest Core Engine Helpers Lazy List Sim
