test/test_automaton.ml: Alcotest Core Dump Fmt Helpers List
