test/main.mli:
