test/test_message.ml: Alcotest Core Helpers List QCheck2
