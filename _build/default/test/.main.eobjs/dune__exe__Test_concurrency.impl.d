test/test_concurrency.ml: Alcotest Core Fmt Helpers List
