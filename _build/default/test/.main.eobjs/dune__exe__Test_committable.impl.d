test/test_committable.ml: Alcotest Core Fmt List
