test/test_global.ml: Alcotest Array Core List
