test/test_nonblocking.ml: Alcotest Core Fmt List
