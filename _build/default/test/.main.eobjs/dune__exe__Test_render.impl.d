test/test_render.ml: Alcotest Core List String
