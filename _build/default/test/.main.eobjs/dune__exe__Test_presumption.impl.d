test/test_presumption.ml: Alcotest Fmt Kv List Sim
