test/test_properties.ml: Core Engine Fmt Helpers Kv Lazy List QCheck2 Sim
