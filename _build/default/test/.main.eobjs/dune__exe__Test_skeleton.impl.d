test/test_skeleton.ml: Alcotest Core Helpers List
