test/test_termination_rule.ml: Alcotest Core Fmt Helpers List
