test/test_model_check_quorum.ml: Alcotest Core Engine Fmt List
