test/test_db_quorum.ml: Alcotest Kv List Sim
