test/test_engine.ml: Alcotest Core Engine Fmt Helpers List
