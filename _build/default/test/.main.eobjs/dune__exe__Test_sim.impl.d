test/test_sim.ml: Alcotest Fmt Fun Helpers List Option QCheck2 Sim String
