test/test_catalog.ml: Alcotest Core Fmt Helpers List
