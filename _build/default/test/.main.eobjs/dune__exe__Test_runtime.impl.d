test/test_runtime.ml: Alcotest Core Engine Fmt Helpers Lazy List
