test/helpers.ml: Alcotest Core Engine Kv List QCheck2 QCheck_alcotest
