test/test_election.ml: Alcotest Engine Fmt List
