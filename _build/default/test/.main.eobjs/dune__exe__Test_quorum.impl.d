test/test_quorum.ml: Alcotest Core Engine Fmt Helpers Lazy List
