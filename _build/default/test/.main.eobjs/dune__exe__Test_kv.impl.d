test/test_kv.ml: Alcotest Helpers Kv List QCheck2 Sim
