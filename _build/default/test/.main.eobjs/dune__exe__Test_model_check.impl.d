test/test_model_check.ml: Alcotest Array Core Engine Fmt List
