(** Randomized property suites spanning the whole stack: the design
    method on random skeletons, the runtime under random fault plans, and
    the database under random workloads with random failure schedules. *)

module Gen = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* the design method on random canonical skeletons                     *)
(* ------------------------------------------------------------------ *)

(* Random layered, acyclic skeletons in the shape of commit protocols:
   an initial state, a chain of wait layers, final commit and abort
   states, random forward edges, and a committability marking constrained
   as in real protocols (committable states are never adjacent to abort
   states: a state implying "everyone voted yes" cannot sit next to a
   unilateral abort). *)
let gen_skeleton : Core.Skeleton.t Gen.t =
  let open Gen in
  let* n_waits = int_range 1 4 in
  let wait i = Fmt.str "w%d" i in
  let waits = List.init n_waits wait in
  (* chain edges q -> w0 -> w1 ... -> c, plus q -> a and random extras *)
  let base_states =
    [ ("q", Core.Types.Initial); ("a", Core.Types.Abort); ("c", Core.Types.Commit) ]
    @ List.map (fun w -> (w, Core.Types.Wait)) waits
  in
  let order = ("q" :: waits) @ [ "c" ] in
  let chain = List.map2 (fun a b -> (a, b)) (List.filteri (fun i _ -> i < List.length order - 1) order)
      (List.tl order) in
  (* optional extra abort edges from waits, and skip edges forward *)
  let* abort_edges =
    flatten_l
      (List.map (fun w -> map (fun b -> if b then [ (w, "a") ] else []) bool) ("q" :: waits))
  in
  let* skip_edges =
    flatten_l
      (List.mapi
         (fun i w ->
           if i + 2 < List.length order then
             map (fun b -> if b then [ (w, List.nth order (i + 2)) ] else []) bool
           else return [])
         order)
  in
  let edges = List.sort_uniq compare (chain @ List.concat abort_edges @ List.concat skip_edges) in
  (* committable marking: suffix of the wait chain that has no abort edge
     (and c itself); q never committable *)
  let adjacent_to_abort s = List.mem (s, "a") edges || List.mem ("a", s) edges in
  let* commit_depth = int_range 0 n_waits in
  let committable s =
    s = "c"
    || (List.exists (fun w -> w = s) waits
       && (not (adjacent_to_abort s))
       &&
       let idx = List.mapi (fun i w -> (w, i)) waits |> List.assoc s in
       idx >= n_waits - commit_depth)
  in
  (* a committable wait adjacent to a noncommittable neighbour with abort
     edges is fine; only direct adjacency to the abort state is excluded,
     matching the generator's constraint above *)
  let states =
    List.map (fun (id, kind) -> { Core.Skeleton.id; kind; committable = committable id }) base_states
  in
  return (Core.Skeleton.make ~name:"random" ~states ~initial:"q" ~edges)

let prop_synthesis_yields_nonblocking =
  Helpers.qtest ~count:300 "buffer synthesis yields a nonblocking skeleton" gen_skeleton
    (fun sk -> Core.Skeleton.is_nonblocking (Core.Synthesis.buffer_skeleton sk))

let prop_synthesis_idempotent =
  Helpers.qtest ~count:300 "buffer synthesis is idempotent" gen_skeleton (fun sk ->
      let once = Core.Synthesis.buffer_skeleton sk in
      Core.Skeleton.equal once (Core.Synthesis.buffer_skeleton once))

let prop_synthesis_preserves_states =
  Helpers.qtest ~count:300 "buffer synthesis only adds states" gen_skeleton (fun sk ->
      let once = Core.Synthesis.buffer_skeleton sk in
      List.for_all
        (fun (s : Core.Skeleton.state) ->
          List.exists (fun (s' : Core.Skeleton.state) -> s'.Core.Skeleton.id = s.Core.Skeleton.id) once.Core.Skeleton.states)
        sk.Core.Skeleton.states)

(* ------------------------------------------------------------------ *)
(* the runtime under random fault plans                                *)
(* ------------------------------------------------------------------ *)

let rulebooks =
  lazy
    [
      Engine.Rulebook.compile (Core.Catalog.central_2pc 3);
      Engine.Rulebook.compile (Core.Catalog.central_3pc 3);
      Engine.Rulebook.compile (Core.Catalog.decentralized_2pc 3);
      Engine.Rulebook.compile (Core.Catalog.decentralized_3pc 3);
    ]

let gen_fault_scenario =
  let open Gen in
  let* rb_ix = int_range 0 3 in
  let* votes = flatten_l (List.map (fun s -> map (fun no -> (s, no)) (frequencyl [ (4, false); (1, true) ])) [ 1; 2; 3 ]) in
  let gen_mode =
    oneof
      [
        return Engine.Failure_plan.Before_transition;
        map (fun k -> Engine.Failure_plan.After_logging k) (int_range 0 2);
        return Engine.Failure_plan.After_transition;
      ]
  in
  let gen_crash =
    let* site = int_range 1 3 in
    let* step = int_range 0 3 in
    let* mode = gen_mode in
    return { Engine.Failure_plan.site; step; mode }
  in
  let* n_crashes = int_range 0 2 in
  let* crashes = list_repeat n_crashes gen_crash in
  (* at most one step-crash per site, else the plan is ambiguous *)
  let crashes =
    List.fold_left
      (fun acc c ->
        if List.exists (fun c' -> c'.Engine.Failure_plan.site = c.Engine.Failure_plan.site) acc then acc
        else c :: acc)
      [] crashes
  in
  let* recover = bool in
  let* seed = int_range 1 100_000 in
  return (rb_ix, votes, crashes, recover, seed)

let prop_runtime_always_consistent =
  Helpers.qtest ~count:150 "runtime: atomicity under random faults" gen_fault_scenario
    (fun (rb_ix, votes, crashes, recover, seed) ->
      let rb = List.nth (Lazy.force rulebooks) rb_ix in
      let plan =
        Engine.Failure_plan.make ~step_crashes:crashes
          ~recoveries:
            (if recover then
               List.map (fun c -> (c.Engine.Failure_plan.site, 70.0)) crashes
             else [])
          ()
      in
      let votes =
        List.filter_map (fun (s, no) -> if no then Some (s, Core.Types.No) else None) votes
      in
      let r = Engine.Runtime.run (Engine.Runtime.config ~votes ~plan ~seed rb) in
      r.Engine.Runtime.consistent)

let prop_3pc_runtime_nonblocking =
  Helpers.qtest ~count:150 "runtime: 3PC operational sites always decide" gen_fault_scenario
    (fun (rb_ix, votes, crashes, _recover, seed) ->
      (* force a 3PC rulebook; no recoveries needed for the property *)
      let rb = List.nth (Lazy.force rulebooks) (1 + (rb_ix land 1) * 2) in
      let plan = Engine.Failure_plan.make ~step_crashes:crashes () in
      let votes =
        List.filter_map (fun (s, no) -> if no then Some (s, Core.Types.No) else None) votes
      in
      let r = Engine.Runtime.run (Engine.Runtime.config ~votes ~plan ~seed rb) in
      r.Engine.Runtime.consistent && r.Engine.Runtime.all_operational_decided)

let prop_runtime_validity =
  Helpers.qtest ~count:100 "runtime: outcome respects the votes (no failures)"
    Gen.(pair (int_range 0 3) (flatten_l (List.map (fun s -> map (fun no -> (s, no)) bool) [ 1; 2; 3 ])))
    (fun (rb_ix, votes) ->
      let rb = List.nth (Lazy.force rulebooks) rb_ix in
      let any_no = List.exists snd votes in
      let votes = List.filter_map (fun (s, no) -> if no then Some (s, Core.Types.No) else None) votes in
      let r = Engine.Runtime.run (Engine.Runtime.config ~votes rb) in
      let expected = if any_no then Core.Types.Aborted else Core.Types.Committed in
      List.for_all (fun (s : Engine.Runtime.site_report) -> s.outcome = Some expected) r.Engine.Runtime.reports)

(* ------------------------------------------------------------------ *)
(* the database under random workloads and failures                    *)
(* ------------------------------------------------------------------ *)

let gen_db_scenario =
  let open Gen in
  let* seed = int_range 1 10_000 in
  let* protocol = oneofl [ Kv.Node.Two_phase; Kv.Node.Three_phase ] in
  let* n_txns = int_range 10 60 in
  let* crash = opt (pair (int_range 1 3) (float_range 5.0 60.0)) in
  let* recover = bool in
  return (seed, protocol, n_txns, crash, recover)

let prop_db_atomicity =
  Helpers.qtest ~count:40 "db: atomicity + conservation under random schedules" gen_db_scenario
    (fun (seed, protocol, n_txns, crash, recover) ->
      let accounts = 12 in
      let rng = Sim.Rng.create ~seed in
      let wl = Kv.Workload.bank rng ~n_txns ~accounts ~arrival_rate:1.5 in
      let crashes = match crash with Some (s, t) -> [ (s, t) ] | None -> [] in
      let recoveries =
        match crash with Some (s, t) when recover -> [ (s, t +. 120.0) ] | _ -> []
      in
      let cfg =
        Kv.Db.config ~n_sites:3 ~protocol ~seed ~crashes ~recoveries
          ~initial_data:(Kv.Workload.bank_initial ~accounts ~initial_balance:50)
          ()
      in
      let r = Kv.Db.run cfg wl in
      r.Kv.Db.atomicity_ok
      && ((not (crashes = [] || recoveries <> []))
         || r.Kv.Db.storage_totals = Kv.Workload.bank_total ~accounts ~initial_balance:50))

let suite =
  [
    prop_synthesis_yields_nonblocking;
    prop_synthesis_idempotent;
    prop_synthesis_preserves_states;
    prop_runtime_always_consistent;
    prop_3pc_runtime_nonblocking;
    prop_runtime_validity;
    prop_db_atomicity;
  ]
