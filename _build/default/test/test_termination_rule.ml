(** Tests for {!Core.Termination_rule}: the backup coordinator's decision
    rule and its safety (paper §8). *)

module T = Core.Termination_rule
module Sk = Core.Skeleton
module C = Core.Catalog
module R = Core.Reachability

let test_canonical_3pc_table () =
  (* the paper's table: commit iff the backup's state is in {p, c} *)
  List.iter
    (fun (state, expected) ->
      Alcotest.check Helpers.outcome (Fmt.str "backup in %s" state) expected
        (T.decide_skeleton Sk.canonical_3pc ~state))
    [
      ("q", Core.Types.Aborted);
      ("w", Core.Types.Aborted);
      ("p", Core.Types.Committed);
      ("a", Core.Types.Aborted);
      ("c", Core.Types.Committed);
    ]

let test_canonical_2pc_rule_unsafe () =
  (* mechanically the rule says commit from w (its adjacency set contains
     c) — exactly the decision that is unsafe in 2PC *)
  Alcotest.check Helpers.outcome "2pc w would commit" Core.Types.Committed
    (T.decide_skeleton Sk.canonical_2pc ~state:"w")

let test_exact_table_3pc () =
  (* the paper's rule is applied by backup coordinators, which in the
     central-site model are always slaves; for them the literal rule gives
     the canonical table.  The coordinator's own p1 is the documented
     asymmetry: its exact concurrency set contains no c (slaves reach c
     only after it leaves p1), so the literal rule reads abort there —
     the engine's Rulebook generalizes the rule to close that gap. *)
  let graph = R.build (C.central_3pc 3) in
  let table = T.table graph in
  List.iter
    (fun (site, state, decision) ->
      let expected =
        if site = 1 && state = "p" then Core.Types.Aborted
        else if state = "p" || state = "c" then Core.Types.Committed
        else Core.Types.Aborted
      in
      Alcotest.check Helpers.outcome (Fmt.str "site %d state %s" site state) expected decision)
    table

let test_unsafe_states () =
  (* the rule is safe for every state of a nonblocking protocol, and unsafe
     exactly at the blocking states of 2PC *)
  Alcotest.(check (list (pair int string))) "3pc central: safe everywhere" []
    (T.unsafe_states (R.build (C.central_3pc 3)));
  Alcotest.(check (list (pair int string))) "3pc decentralized: safe everywhere" []
    (T.unsafe_states (R.build (C.decentralized_3pc 3)));
  let unsafe = T.unsafe_states (R.build (C.central_2pc 3)) in
  Alcotest.(check (list (pair int string))) "2pc central: slaves' w unsafe"
    [ (2, "w"); (3, "w") ]
    (List.sort compare unsafe)

let test_decide_exact_2pc_coordinator () =
  (* the coordinator of central 2PC can decide safely from every state *)
  let graph = R.build (C.central_2pc 3) in
  let cs = Core.Concurrency.compute graph in
  List.iter
    (fun (state, expected) ->
      Alcotest.check Helpers.outcome (Fmt.str "coordinator %s" state) expected
        (T.decide cs ~site:1 ~state))
    [
      ("q", Core.Types.Aborted);
      ("w", Core.Types.Aborted);
      ("a", Core.Types.Aborted);
      ("c", Core.Types.Committed);
    ]

let suite =
  [
    Alcotest.test_case "canonical 3PC decision table (paper figure)" `Quick
      test_canonical_3pc_table;
    Alcotest.test_case "2PC rule unsafe at w" `Quick test_canonical_2pc_rule_unsafe;
    Alcotest.test_case "exact table for central 3PC" `Quick test_exact_table_3pc;
    Alcotest.test_case "rule safety per protocol" `Quick test_unsafe_states;
    Alcotest.test_case "2PC coordinator decisions" `Quick test_decide_exact_2pc_coordinator;
  ]
