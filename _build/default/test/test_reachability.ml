(** Tests for {!Core.Reachability}: the reachable state graph of every
    catalog protocol — no deadlocks, no inconsistent states, both outcomes
    reachable (paper §3). *)

module R = Core.Reachability
module C = Core.Catalog

let stats_of p = R.stats (R.build p)

let catalog n =
  [ C.one_pc n; C.central_2pc n; C.central_3pc n; C.decentralized_2pc n; C.decentralized_3pc n ]

let test_no_inconsistent_states () =
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let s = stats_of p in
          Alcotest.(check int) (p.Core.Protocol.name ^ " inconsistent") 0 s.R.inconsistent)
        (catalog n))
    [ 2; 3 ]

let test_no_deadlocks () =
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          let s = stats_of p in
          Alcotest.(check int) (p.Core.Protocol.name ^ " deadlocked") 0 s.R.deadlocked)
        (catalog n))
    [ 2; 3 ]

let test_both_outcomes_reachable () =
  List.iter
    (fun p ->
      let s = stats_of p in
      Alcotest.(check bool) (p.Core.Protocol.name ^ " commit reachable") true s.R.commit_reachable;
      Alcotest.(check bool) (p.Core.Protocol.name ^ " abort reachable") true s.R.abort_reachable)
    (catalog 3)

let test_terminal_are_final () =
  List.iter
    (fun p ->
      let g = R.build p in
      List.iter
        (fun node ->
          Alcotest.(check bool)
            (p.Core.Protocol.name ^ " terminal is final")
            true
            (Core.Global.is_final p node.R.state))
        (R.terminal_nodes g))
    (catalog 3)

let test_2site_2pc_size () =
  (* The paper's figure: the reachable state graph for the 2-site 2PC
     protocol.  Our encoding (with vote flags in the state identity) gives
     a fixed, regression-checked size. *)
  let s = stats_of (C.central_2pc 2) in
  Alcotest.(check int) "states" 9 s.R.states;
  Alcotest.(check int) "edges" 8 s.R.edges;
  Alcotest.(check int) "final" 3 s.R.final

let test_growth_with_sites () =
  (* exponential growth in the number of sites (paper §3) *)
  let sizes =
    List.map (fun n -> (stats_of (C.central_2pc n)).R.states) [ 2; 3; 4 ]
  in
  match sizes with
  | [ a; b; c ] ->
      Alcotest.(check bool) "monotone growth" true (a < b && b < c);
      Alcotest.(check bool) "superlinear" true (c - b > b - a)
  | _ -> assert false

let test_initial_node () =
  let g = R.build (C.central_2pc 2) in
  let n0 = R.initial_node g in
  Alcotest.(check int) "initial has index 0" 0 n0.R.index;
  Alcotest.(check bool) "initial state matches" true
    (Core.Global.equal n0.R.state (Core.Global.initial (C.central_2pc 2)))

let test_limit () =
  Alcotest.(check bool) "limit raises Too_large" true
    (match R.build ~limit:5 (C.central_2pc 3) with
    | exception R.Too_large _ -> true
    | _ -> false)

let test_edges_consistent () =
  (* every recorded edge's target index must be in range and the fired
     transition must actually lead there *)
  let p = C.decentralized_3pc 2 in
  let g = R.build p in
  R.iter_nodes
    (fun node ->
      List.iter
        (fun (site, tr, dst) ->
          Alcotest.(check bool) "target in range" true (dst >= 0 && dst < R.n_nodes g);
          let fired = Core.Global.fire node.R.state ~site tr in
          Alcotest.(check bool) "edge target correct" true
            (Core.Global.equal fired (R.node g dst).R.state))
        node.R.succs)
    g

let test_all_yes_path_commits () =
  (* restricting to yes votes only, every terminal state commits *)
  let p = C.central_3pc 3 in
  let g = R.build p in
  let commit_only =
    R.terminal_nodes g
    |> List.for_all (fun node ->
           let kinds =
             Array.to_list node.R.state.Core.Global.locals
             |> List.mapi (fun i id ->
                    Core.Automaton.kind_of (Core.Protocol.automaton p (i + 1)) id)
           in
           (* terminal states are all-commit or all-abort, never mixed *)
           List.for_all Core.Types.is_commit kinds || List.for_all Core.Types.is_abort kinds)
  in
  Alcotest.(check bool) "terminals are uniform" true commit_only

let suite =
  [
    Alcotest.test_case "no inconsistent states" `Quick test_no_inconsistent_states;
    Alcotest.test_case "no deadlocks" `Quick test_no_deadlocks;
    Alcotest.test_case "both outcomes reachable" `Quick test_both_outcomes_reachable;
    Alcotest.test_case "terminal states are final" `Quick test_terminal_are_final;
    Alcotest.test_case "2-site 2PC graph size (paper figure)" `Quick test_2site_2pc_size;
    Alcotest.test_case "exponential growth" `Quick test_growth_with_sites;
    Alcotest.test_case "initial node" `Quick test_initial_node;
    Alcotest.test_case "node limit" `Quick test_limit;
    Alcotest.test_case "edge consistency" `Quick test_edges_consistent;
    Alcotest.test_case "terminal uniformity" `Quick test_all_yes_path_commits;
  ]
