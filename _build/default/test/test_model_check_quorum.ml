(** Exhaustive model checking of the {e quorum} termination rule: the
    monotonicity argument (never demote a precommit, majority thresholds
    both ways) verified over every interleaving.

    Under the quorum rule blocking is expected — a backup below the
    quorum stays put — so these suites assert safety only, plus the
    specific blocking/termination structure. *)

module MC = Engine.Model_check

let rb label n = Engine.Rulebook.compile ((Core.Catalog.find label).Core.Catalog.build n)

let run label n k =
  MC.run
    {
      MC.rulebook = rb label n;
      max_crashes = k;
      limit = 4_000_000;
      rule = `Quorum ((n / 2) + 1);
    }

let test_quorum_3pc_safe () =
  List.iter
    (fun (label, n, k) ->
      let r = run label n k in
      Alcotest.(check bool) (Fmt.str "%s n=%d k=%d safe" label n k) true r.MC.safe;
      Alcotest.(check bool) "explored something" true (r.MC.explored > 10))
    [ ("central-3pc", 2, 1); ("central-3pc", 3, 1); ("central-3pc", 3, 2) ]

let test_quorum_3pc_single_crash_can_block () =
  (* even with a surviving majority the quorum rule can block: a mixed
     view (one survivor prepared, one not, after a partial prepare
     broadcast) satisfies neither threshold.  Skeen's rule decides here —
     that is precisely the liveness the quorum rule trades away.  Safety
     must still be unconditional. *)
  let r = run "central-3pc" 3 1 in
  Alcotest.(check bool) "safe" true r.MC.safe;
  Alcotest.(check bool) "mixed views block (expected)" false r.MC.nonblocking

let test_quorum_3pc_two_crashes_blocks () =
  (* with two crashes a lone survivor can be left below quorum: blocked
     terminals exist (the liveness price), but safety holds throughout *)
  let r = run "central-3pc" 3 2 in
  Alcotest.(check bool) "safe" true r.MC.safe;
  Alcotest.(check bool) "some blocked terminals (lone survivor)" false r.MC.nonblocking

let test_quorum_decentralized_safe () =
  let r = run "decentralized-3pc" 3 1 in
  Alcotest.(check bool) "safe" true r.MC.safe

let test_quorum_2pc_safe () =
  (* quorum termination over 2PC: no buffer state exists, so the rule may
     only relay visible outcomes — the unprepared-quorum abort would be
     unsound (the coordinator commits straight from w), which this
     exhaustive check regression-guards *)
  let r = run "central-2pc" 3 1 in
  Alcotest.(check bool) "safe" true r.MC.safe;
  let r2 = run "central-2pc" 3 2 in
  Alcotest.(check bool) "safe with two crashes" true r2.MC.safe

let suite =
  [
    Alcotest.test_case "quorum rule safe (exhaustive)" `Slow test_quorum_3pc_safe;
    Alcotest.test_case "single crash: mixed views may block" `Quick
      test_quorum_3pc_single_crash_can_block;
    Alcotest.test_case "two crashes: lone survivor blocks" `Slow test_quorum_3pc_two_crashes_blocks;
    Alcotest.test_case "decentralized 3PC safe" `Slow test_quorum_decentralized_safe;
    Alcotest.test_case "2PC under the quorum rule safe" `Quick test_quorum_2pc_safe;
  ]
