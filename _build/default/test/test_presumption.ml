(** Tests for the commit-protocol presumptions and the read-only
    optimization on the KV commit path. *)

let n_sites = 3

(* one cross-site write transaction *)
let write_txn =
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 1) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, 1); Kv.Txn.Add (k2, 1) ] }

(* same two keys, but the second site only reads *)
let mixed_txn =
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 1) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, 1); Kv.Txn.Get k2 ] }

(* a transaction that will be vetoed: seed the lock conflict via a no-vote
   isn't expressible here, so use two txns deadlocking instead; simpler:
   measure the abort side through the empty-participant refusal path is
   not an abort either — use a direct veto via lock timeout *)

let run ?presumption ?read_only_opt ?(txn = write_txn) () =
  let cfg = Kv.Db.config ~n_sites ~protocol:Kv.Node.Two_phase ?presumption ?read_only_opt ~seed:5 () in
  Kv.Db.run cfg [ (1.0, txn) ]

let test_commit_message_counts () =
  let std = run () in
  let pa = run ~presumption:Kv.Node.Presume_abort () in
  let pc = run ~presumption:Kv.Node.Presume_commit () in
  Alcotest.(check int) "all commit" 1 std.Kv.Db.committed;
  Alcotest.(check int) "pa commits" 1 pa.Kv.Db.committed;
  Alcotest.(check int) "pc commits" 1 pc.Kv.Db.committed;
  (* on the commit path, presumed-commit saves exactly the Done acks *)
  Alcotest.(check bool) "pc cheaper than standard" true
    (pc.Kv.Db.messages_sent < std.Kv.Db.messages_sent);
  Alcotest.(check int) "pa = standard on commits" std.Kv.Db.messages_sent pa.Kv.Db.messages_sent;
  Alcotest.(check int) "pc saves one Done per participant" (std.Kv.Db.messages_sent - 2)
    pc.Kv.Db.messages_sent

let test_read_only_optimization () =
  let std = run ~txn:mixed_txn () in
  let ro = run ~read_only_opt:true ~txn:mixed_txn () in
  Alcotest.(check int) "both commit" std.Kv.Db.committed ro.Kv.Db.committed;
  (* the read-only participant skips the Outcome and Done messages *)
  Alcotest.(check int) "read-only saves two messages" (std.Kv.Db.messages_sent - 2)
    ro.Kv.Db.messages_sent;
  Alcotest.(check bool) "read-only vote counted" true
    (List.mem_assoc "read_only_votes" ro.Kv.Db.metrics)

let test_all_read_only () =
  (* every participant read-only: phase 2 disappears entirely *)
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 1) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  let txn = { Kv.Txn.id = 1; ops = [ Kv.Txn.Get k1; Kv.Txn.Get k2 ] } in
  let r = run ~read_only_opt:true ~txn () in
  Alcotest.(check int) "committed" 1 r.Kv.Db.committed;
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok

let bank_with ~presumption ~crashes ~recoveries =
  let accounts = 16 in
  let rng = Sim.Rng.create ~seed:21 in
  let wl = Kv.Workload.bank rng ~n_txns:80 ~accounts ~arrival_rate:1.0 in
  let cfg =
    Kv.Db.config ~n_sites ~protocol:Kv.Node.Two_phase ~presumption ~seed:21 ~crashes ~recoveries
      ~initial_data:(Kv.Workload.bank_initial ~accounts ~initial_balance:100)
      ()
  in
  Kv.Db.run cfg wl

let test_presumptions_preserve_atomicity_under_crashes () =
  List.iter
    (fun presumption ->
      let r =
        bank_with ~presumption ~crashes:[ (2, 30.0) ] ~recoveries:[ (2, 120.0) ]
      in
      Alcotest.(check bool)
        (Fmt.str "%s atomic" (Kv.Node.show_presumption presumption))
        true r.Kv.Db.atomicity_ok;
      Alcotest.(check int)
        (Fmt.str "%s invariant" (Kv.Node.show_presumption presumption))
        (Kv.Workload.bank_total ~accounts:16 ~initial_balance:100)
        r.Kv.Db.storage_totals)
    [ Kv.Node.No_presumption; Kv.Node.Presume_abort; Kv.Node.Presume_commit ]

let test_workload_savings_shape () =
  (* on an all-write, all-commit workload: PC < PA = standard *)
  let msgs presumption =
    (bank_with ~presumption ~crashes:[] ~recoveries:[]).Kv.Db.messages_sent
  in
  let std = msgs Kv.Node.No_presumption
  and pa = msgs Kv.Node.Presume_abort
  and pc = msgs Kv.Node.Presume_commit in
  Alcotest.(check bool) (Fmt.str "pc (%d) < std (%d)" pc std) true (pc < std);
  Alcotest.(check bool) (Fmt.str "pa (%d) <= std (%d)" pa std) true (pa <= std)

let suite =
  [
    Alcotest.test_case "commit-side message counts" `Quick test_commit_message_counts;
    Alcotest.test_case "read-only optimization" `Quick test_read_only_optimization;
    Alcotest.test_case "fully read-only transaction" `Quick test_all_read_only;
    Alcotest.test_case "presumptions preserve atomicity under crashes" `Quick
      test_presumptions_preserve_atomicity_under_crashes;
    Alcotest.test_case "workload savings shape" `Quick test_workload_savings_shape;
  ]
