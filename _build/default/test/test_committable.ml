(** Tests for {!Core.Committable}: the vote-based inference of committable
    states (paper §3). *)

module C = Core.Catalog
module Cm = Core.Committable
module R = Core.Reachability

let committable_ids p = Cm.committable_ids (Cm.compute (R.build p))

let test_2pc_single_committable () =
  (* "A blocking protocol usually has only one committable state" *)
  Alcotest.(check (list string)) "central 2pc: only c" [ "c" ]
    (committable_ids (C.central_2pc 3));
  Alcotest.(check (list string)) "decentralized 2pc: only c" [ "c" ]
    (committable_ids (C.decentralized_2pc 3))

let test_3pc_two_committable () =
  (* "nonblocking protocols always have more than one" *)
  Alcotest.(check (list string)) "central 3pc: p and c" [ "c"; "p" ]
    (committable_ids (C.central_3pc 3));
  Alcotest.(check (list string)) "decentralized 3pc: p and c" [ "c"; "p" ]
    (committable_ids (C.decentralized_3pc 3))

let test_per_site () =
  let cm = Cm.compute (R.build (C.central_3pc 3)) in
  List.iter
    (fun site ->
      Alcotest.(check bool) (Fmt.str "site %d: w noncommittable" site) false
        (Cm.is_committable cm ~site ~state:"w");
      Alcotest.(check bool) (Fmt.str "site %d: p committable" site) true
        (Cm.is_committable cm ~site ~state:"p");
      Alcotest.(check bool) (Fmt.str "site %d: q noncommittable" site) false
        (Cm.is_committable cm ~site ~state:"q"))
    [ 1; 2; 3 ]

let test_one_pc_implicit_consent () =
  (* 1PC slaves never vote: their consent is implicit, so occupancy of c
     still counts as committable (the blocking defect of 1PC lies in its
     concurrency sets, not here) *)
  Alcotest.(check (list string)) "1pc: c committable" [ "c" ] (committable_ids (C.one_pc 3))

let test_committable_pairs_sorted () =
  let cm = Cm.compute (R.build (C.central_2pc 2)) in
  let pairs = Cm.committable_pairs cm in
  Alcotest.(check bool) "sorted" true (List.sort compare pairs = pairs);
  Alcotest.(check bool) "contains (1, c)" true (List.mem (1, "c") pairs);
  Alcotest.(check bool) "contains (2, c)" true (List.mem (2, "c") pairs)

let test_abort_states_noncommittable () =
  (* a state reachable with a no vote cast can never be committable *)
  List.iter
    (fun p ->
      let cm = Cm.compute (R.build p) in
      List.iter
        (fun site ->
          Alcotest.(check bool)
            (Fmt.str "%s site %d: a noncommittable" p.Core.Protocol.name site)
            false
            (Cm.is_committable cm ~site ~state:"a"))
        (Core.Protocol.sites p))
    [ C.central_2pc 3; C.central_3pc 3; C.decentralized_2pc 3 ]

let suite =
  [
    Alcotest.test_case "2PC: one committable state" `Quick test_2pc_single_committable;
    Alcotest.test_case "3PC: two committable states" `Quick test_3pc_two_committable;
    Alcotest.test_case "per-site committability" `Quick test_per_site;
    Alcotest.test_case "1PC implicit consent" `Quick test_one_pc_implicit_consent;
    Alcotest.test_case "committable pairs" `Quick test_committable_pairs_sorted;
    Alcotest.test_case "abort states noncommittable" `Quick test_abort_states_noncommittable;
  ]
