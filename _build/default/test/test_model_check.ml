(** Tests for {!Engine.Model_check}: exhaustive verification of the
    protocols with failures — the strongest evidence this repository
    offers for the paper's claims. *)

module MC = Engine.Model_check

let rb label n = Engine.Rulebook.compile ((Core.Catalog.find label).Core.Catalog.build n)

let run label n k = MC.run { MC.rulebook = rb label n; max_crashes = k; limit = 4_000_000; rule = `Skeen }

let test_3pc_safe_and_nonblocking () =
  List.iter
    (fun (label, n, k) ->
      let r = run label n k in
      Alcotest.(check bool) (Fmt.str "%s n=%d k=%d safe" label n k) true r.MC.safe;
      Alcotest.(check bool) (Fmt.str "%s n=%d k=%d nonblocking" label n k) true r.MC.nonblocking;
      Alcotest.(check bool) "explored something" true (r.MC.explored > 10))
    [
      ("central-3pc", 2, 1);
      ("central-3pc", 3, 1);
      ("central-3pc", 3, 2);
      ("central-3pc", 4, 2);
      ("decentralized-3pc", 2, 1);
      ("decentralized-3pc", 3, 1);
    ]

let test_corollary_to_one_survivor () =
  (* the corollary in full: n=4, three cascading crashes — every
     interleaving, including two successive backup failures with stale
     moves in flight (the scenario that forced election epochs) *)
  let r = run "central-3pc" 4 3 in
  Alcotest.(check bool) "safe" true r.MC.safe;
  Alcotest.(check bool) "nonblocking down to one survivor" true r.MC.nonblocking

let test_3pc_decentralized_two_crashes () =
  (* the big one: every interleaving of two crashes among three sites *)
  let r = run "decentralized-3pc" 3 2 in
  Alcotest.(check bool) "safe" true r.MC.safe;
  Alcotest.(check bool) "nonblocking" true r.MC.nonblocking

let test_2pc_safe_but_blocking () =
  List.iter
    (fun (n, k) ->
      let r = run "central-2pc" n k in
      Alcotest.(check bool) (Fmt.str "2pc n=%d k=%d safe" n k) true r.MC.safe;
      Alcotest.(check bool) (Fmt.str "2pc n=%d k=%d has blocked terminals" n k) false
        r.MC.nonblocking)
    [ (2, 1); (3, 1); (3, 2) ]

let test_2pc_blocked_example_shape () =
  (* the canonical blocked terminal: the coordinator logged its decision
     and died; an operational slave is stuck in w *)
  let r = run "central-2pc" 2 1 in
  Alcotest.(check bool) "a blocked terminal with a slave in w exists" true
    (List.exists
       (fun (st : MC.st) -> (not st.MC.alive.(0)) && st.MC.alive.(1) && st.MC.locals.(1) = "w")
       r.MC.blocked_terminals)

let test_1pc_blocking () =
  let r = run "1pc" 2 1 in
  Alcotest.(check bool) "1pc safe (no recovery modelled)" true r.MC.safe;
  Alcotest.(check bool) "1pc blocks" false r.MC.nonblocking

let test_no_crashes_degenerates_to_reachability () =
  (* with zero crashes the model adds nothing: same safety, all terminals
     decided, and the state count matches the plain reachability graph *)
  let r = run "central-3pc" 3 0 in
  Alcotest.(check bool) "safe" true r.MC.safe;
  Alcotest.(check bool) "all terminals decided" true r.MC.nonblocking;
  let plain = Core.Reachability.stats (Core.Reachability.build (Core.Catalog.central_3pc 3)) in
  Alcotest.(check int) "state count = plain reachability" plain.Core.Reachability.states
    r.MC.explored

let test_limit_enforced () =
  Alcotest.(check bool) "limit raises" true
    (match MC.run { MC.rulebook = rb "central-3pc" 3; max_crashes = 2; limit = 100; rule = `Skeen } with
    | exception Failure _ -> true
    | _ -> false)

let test_counterexample_none_when_safe () =
  let r = run "central-3pc" 2 1 in
  Alcotest.(check bool) "no counterexample" true (r.MC.counterexample = None)

let suite =
  [
    Alcotest.test_case "3PC safe and nonblocking (exhaustive)" `Slow test_3pc_safe_and_nonblocking;
    Alcotest.test_case "decentralized 3PC, two crashes" `Slow test_3pc_decentralized_two_crashes;
    Alcotest.test_case "corollary: n=4 down to one survivor" `Slow test_corollary_to_one_survivor;
    Alcotest.test_case "2PC safe but blocking (exhaustive)" `Quick test_2pc_safe_but_blocking;
    Alcotest.test_case "2PC blocked-terminal shape" `Quick test_2pc_blocked_example_shape;
    Alcotest.test_case "1PC blocks" `Quick test_1pc_blocking;
    Alcotest.test_case "k=0 degenerates to reachability" `Quick
      test_no_crashes_degenerates_to_reachability;
    Alcotest.test_case "state limit" `Quick test_limit_enforced;
    Alcotest.test_case "no counterexample when safe" `Quick test_counterexample_none_when_safe;
  ]
