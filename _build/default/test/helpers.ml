(** Shared alcotest testables and small utilities for the test suites. *)

let msg : Core.Message.t Alcotest.testable =
  Alcotest.testable Core.Message.pp Core.Message.equal

let outcome : Core.Types.outcome Alcotest.testable =
  Alcotest.testable Core.Types.pp_outcome Core.Types.equal_outcome

let state_kind : Core.Types.state_kind Alcotest.testable =
  Alcotest.testable Core.Types.pp_state_kind Core.Types.equal_state_kind

let verdict : Engine.Rulebook.verdict Alcotest.testable =
  Alcotest.testable Engine.Rulebook.pp_verdict Engine.Rulebook.equal_verdict

let lock_outcome : Kv.Lock_table.outcome Alcotest.testable =
  Alcotest.testable Kv.Lock_table.pp_outcome Kv.Lock_table.equal_outcome

let sorted_strings l = List.sort_uniq compare l

(** merged concurrency set of [state] as a sorted string list *)
let cs_ids graph state =
  let cs = Core.Concurrency.compute graph in
  Core.Concurrency.String_set.elements (Core.Concurrency.merged_ids cs ~state)

let graph_of protocol = Core.Reachability.build protocol

let check_sorted_list name = Alcotest.(check (list string)) name

(** Quick constructor for qcheck tests registered as alcotest cases. *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
