(** Tests for the database substrate: {!Kv.Storage}, {!Kv.Txn},
    {!Kv.Kv_wal} and {!Kv.Workload}. *)

(* ---------------- Storage ---------------- *)

let test_storage_basic () =
  let s = Kv.Storage.create () in
  Kv.Storage.load s [ ("a", 10); ("b", 20) ];
  Alcotest.(check (option int)) "get a" (Some 10) (Kv.Storage.get s "a");
  Alcotest.(check int) "get_or default" 0 (Kv.Storage.get_or s "zz" ~default:0);
  Alcotest.(check int) "total" 30 (Kv.Storage.total s)

let test_storage_apply () =
  let s = Kv.Storage.create () in
  Kv.Storage.load s [ ("a", 10) ];
  Kv.Storage.apply s ~txn:7 [ ("a", 5); ("c", 1) ];
  Alcotest.(check (option int)) "a overwritten" (Some 5) (Kv.Storage.get s "a");
  Alcotest.(check (option int)) "c created" (Some 1) (Kv.Storage.get s "c");
  Alcotest.(check bool) "txn journaled" true (Kv.Storage.has_applied s ~txn:7);
  Alcotest.(check bool) "other txn absent" false (Kv.Storage.has_applied s ~txn:8);
  Alcotest.(check (list int)) "applied txns" [ 7 ] (Kv.Storage.applied_txns s)

(* ---------------- Txn ---------------- *)

let test_txn_partitioning () =
  let n_sites = 4 in
  let keys = List.init 50 (fun i -> Kv.Workload.key_name i) in
  List.iter
    (fun k ->
      let o = Kv.Txn.owner ~n_sites k in
      Alcotest.(check bool) "owner in range" true (o >= 1 && o <= n_sites))
    keys

let test_txn_participants () =
  let n_sites = 3 in
  let t = { Kv.Txn.id = 1; ops = [ Kv.Txn.Get "x"; Kv.Txn.Put ("y", 1); Kv.Txn.Add ("x", 2) ] } in
  let ps = Kv.Txn.participants ~n_sites t in
  Alcotest.(check bool) "sorted unique" true (List.sort_uniq compare ps = ps);
  Alcotest.(check int) "coordinator owns first key" (Kv.Txn.owner ~n_sites "x")
    (Kv.Txn.coordinator ~n_sites t)

let prop_ops_for_partitions =
  Helpers.qtest "ops_for partitions the operation list"
    QCheck2.Gen.(
      pair (int_range 2 6)
        (list_size (int_range 1 10)
           (map (fun i -> Kv.Txn.Add (Kv.Workload.key_name i, 1)) (int_range 0 40))))
    (fun (n_sites, ops) ->
      let t = { Kv.Txn.id = 1; ops } in
      let scattered =
        List.concat_map
          (fun site -> Kv.Txn.ops_for ~n_sites t ~site)
          (List.init n_sites (fun i -> i + 1))
      in
      List.sort compare scattered = List.sort compare ops)

let test_txn_empty_coordinator () =
  Alcotest.check_raises "empty transaction" (Invalid_argument "Txn.coordinator: empty transaction")
    (fun () -> ignore (Kv.Txn.coordinator ~n_sites:3 { Kv.Txn.id = 1; ops = [] }))

(* ---------------- Kv_wal ---------------- *)

let test_kv_wal_participant_classification () =
  let w = Kv.Kv_wal.create () in
  Alcotest.(check bool) "unknown before logging" true
    (Kv.Kv_wal.classify_participant w ~txn:1 = Kv.Kv_wal.P_unknown);
  Kv.Kv_wal.append w
    (Kv.Kv_wal.P_prepared
       { txn = 1; coordinator = 2; participants = [ 1; 2 ]; writes = [ ("k", 5) ]; locks = [] });
  (match Kv.Kv_wal.classify_participant w ~txn:1 with
  | Kv.Kv_wal.P_in_doubt { coordinator; precommitted; writes; _ } ->
      Alcotest.(check int) "coordinator" 2 coordinator;
      Alcotest.(check bool) "not precommitted" false precommitted;
      Alcotest.(check (list (pair string int))) "writes" [ ("k", 5) ] writes
  | _ -> Alcotest.fail "expected in-doubt");
  Kv.Kv_wal.append w (Kv.Kv_wal.P_precommitted { txn = 1 });
  (match Kv.Kv_wal.classify_participant w ~txn:1 with
  | Kv.Kv_wal.P_in_doubt { precommitted = true; _ } -> ()
  | _ -> Alcotest.fail "expected precommitted in-doubt");
  Kv.Kv_wal.append w (Kv.Kv_wal.P_outcome { txn = 1; commit = true });
  Alcotest.(check bool) "resolved commit" true
    (Kv.Kv_wal.classify_participant w ~txn:1 = Kv.Kv_wal.P_resolved true)

let test_kv_wal_coordinator_classification () =
  let w = Kv.Kv_wal.create () in
  Kv.Kv_wal.append w (Kv.Kv_wal.C_begin { txn = 4; participants = [ 1; 2 ]; three_phase = true });
  (match Kv.Kv_wal.classify_coordinator w ~txn:4 with
  | Kv.Kv_wal.C_collecting { three_phase = true; _ } -> ()
  | _ -> Alcotest.fail "expected collecting");
  Kv.Kv_wal.append w (Kv.Kv_wal.C_precommitted { txn = 4 });
  (match Kv.Kv_wal.classify_coordinator w ~txn:4 with
  | Kv.Kv_wal.C_in_precommit _ -> ()
  | _ -> Alcotest.fail "expected in-precommit");
  Kv.Kv_wal.append w (Kv.Kv_wal.C_decided { txn = 4; commit = true });
  (match Kv.Kv_wal.classify_coordinator w ~txn:4 with
  | Kv.Kv_wal.C_resolved { commit = true; finished = false; _ } -> ()
  | _ -> Alcotest.fail "expected resolved");
  Kv.Kv_wal.append w (Kv.Kv_wal.C_finished { txn = 4 });
  match Kv.Kv_wal.classify_coordinator w ~txn:4 with
  | Kv.Kv_wal.C_resolved { finished = true; _ } -> ()
  | _ -> Alcotest.fail "expected finished"

let test_kv_wal_txn_listing () =
  let w = Kv.Kv_wal.create () in
  Kv.Kv_wal.append w (Kv.Kv_wal.C_begin { txn = 1; participants = []; three_phase = false });
  Kv.Kv_wal.append w
    (Kv.Kv_wal.P_prepared { txn = 2; coordinator = 1; participants = []; writes = []; locks = [] });
  Alcotest.(check (list int)) "coordinated" [ 1 ] (Kv.Kv_wal.coordinated_txns w);
  Alcotest.(check (list int)) "participated" [ 2 ] (Kv.Kv_wal.participated_txns w)

(* ---------------- Workload ---------------- *)

let test_workload_mixed_properties () =
  let rng = Sim.Rng.create ~seed:5 in
  let wl = Kv.Workload.mixed rng Kv.Workload.default_spec in
  Alcotest.(check int) "count" Kv.Workload.default_spec.Kv.Workload.n_txns (List.length wl);
  let times = List.map fst wl in
  Alcotest.(check bool) "arrivals increase" true (List.sort compare times = times);
  let ids = List.map (fun (_, t) -> t.Kv.Txn.id) wl in
  Alcotest.(check bool) "ids unique" true (List.sort_uniq compare ids = List.sort compare ids)

let test_workload_bank_conservation () =
  let rng = Sim.Rng.create ~seed:5 in
  let wl = Kv.Workload.bank rng ~n_txns:100 ~accounts:16 ~arrival_rate:1.0 in
  List.iter
    (fun (_, t) ->
      let delta =
        List.fold_left
          (fun acc op -> match op with Kv.Txn.Add (_, d) -> acc + d | _ -> acc)
          0 t.Kv.Txn.ops
      in
      Alcotest.(check int) "transfer sums to zero" 0 delta;
      Alcotest.(check int) "two ops" 2 (List.length t.Kv.Txn.ops))
    wl

let test_workload_zipf_skew () =
  let rng = Sim.Rng.create ~seed:5 in
  let spec = { Kv.Workload.default_spec with Kv.Workload.zipf_skew = 1.2; n_txns = 300 } in
  let wl = Kv.Workload.mixed rng spec in
  (* hot keys: key 0 should appear far more often than key 50 *)
  let count k =
    List.length
      (List.filter
         (fun (_, t) -> List.exists (fun op -> Kv.Txn.key_of_op op = Kv.Workload.key_name k) t.Kv.Txn.ops)
         wl)
  in
  Alcotest.(check bool) "skew concentrates on low keys" true (count 0 > count 50)

let suite =
  [
    Alcotest.test_case "storage basics" `Quick test_storage_basic;
    Alcotest.test_case "storage apply journal" `Quick test_storage_apply;
    Alcotest.test_case "key partitioning" `Quick test_txn_partitioning;
    Alcotest.test_case "participants and coordinator" `Quick test_txn_participants;
    prop_ops_for_partitions;
    Alcotest.test_case "empty transaction rejected" `Quick test_txn_empty_coordinator;
    Alcotest.test_case "participant log classification" `Quick test_kv_wal_participant_classification;
    Alcotest.test_case "coordinator log classification" `Quick test_kv_wal_coordinator_classification;
    Alcotest.test_case "log transaction listing" `Quick test_kv_wal_txn_listing;
    Alcotest.test_case "mixed workload properties" `Quick test_workload_mixed_properties;
    Alcotest.test_case "bank transfers conserve money" `Quick test_workload_bank_conservation;
    Alcotest.test_case "zipf skew" `Quick test_workload_zipf_skew;
  ]
