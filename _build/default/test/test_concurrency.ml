(** Tests for {!Core.Concurrency}: exact concurrency sets, checked against
    the tables printed in the paper. *)

module C = Core.Catalog
module Cs = Core.Concurrency
module R = Core.Reachability

let test_canonical_2pc_table () =
  (* the paper's figure "Concurrency sets in the canonical 2PC protocol":
     CS(q) = {q,w,a}, CS(w) = {q,w,a,c}, CS(a) = {q,w,a}, CS(c) = {w,c} —
     realised exactly by the 2-site decentralized 2PC *)
  let g = R.build (C.decentralized_2pc 2) in
  Helpers.check_sorted_list "CS(q)" [ "a"; "q"; "w" ] (Helpers.cs_ids g "q");
  Helpers.check_sorted_list "CS(w)" [ "a"; "c"; "q"; "w" ] (Helpers.cs_ids g "w");
  Helpers.check_sorted_list "CS(a)" [ "a"; "q"; "w" ] (Helpers.cs_ids g "a");
  Helpers.check_sorted_list "CS(c)" [ "c"; "w" ] (Helpers.cs_ids g "c")

let test_canonical_3pc_table () =
  (* the 3PC counterpart: the buffer state separates w from c *)
  let g = R.build (C.decentralized_3pc 2) in
  Helpers.check_sorted_list "CS(q)" [ "a"; "q"; "w" ] (Helpers.cs_ids g "q");
  Helpers.check_sorted_list "CS(w)" [ "a"; "p"; "q"; "w" ] (Helpers.cs_ids g "w");
  Helpers.check_sorted_list "CS(p)" [ "c"; "p"; "w" ] (Helpers.cs_ids g "p");
  Helpers.check_sorted_list "CS(a)" [ "a"; "q"; "w" ] (Helpers.cs_ids g "a");
  Helpers.check_sorted_list "CS(c)" [ "c"; "p" ] (Helpers.cs_ids g "c")

let test_central_2pc_coordinator_never_sees_commit_in_w () =
  (* the key asymmetry of central 2PC: a slave in w may coexist with a
     commit state, the coordinator in w may not *)
  let g = R.build (C.central_2pc 3) in
  let cs = Cs.compute g in
  Alcotest.(check bool) "coordinator w: no commit" false
    (Cs.contains_commit cs ~site:1 ~state:"w");
  Alcotest.(check bool) "slave w: commit possible" true
    (Cs.contains_commit cs ~site:2 ~state:"w");
  Alcotest.(check bool) "slave w: abort possible" true (Cs.contains_abort cs ~site:2 ~state:"w")

let test_central_3pc_p_has_no_abort () =
  let g = R.build (C.central_3pc 3) in
  let cs = Cs.compute g in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Fmt.str "site %d p: no abort" site)
        false
        (Cs.contains_abort cs ~site ~state:"p"))
    [ 1; 2; 3 ]

let test_occupied_states () =
  let g = R.build (C.central_2pc 2) in
  let cs = Cs.compute g in
  Helpers.check_sorted_list "coordinator occupies all four" [ "a"; "c"; "q"; "w" ]
    (Cs.occupied_states cs ~site:1);
  Helpers.check_sorted_list "slave occupies all four" [ "a"; "c"; "q"; "w" ]
    (Cs.occupied_states cs ~site:2)

let test_set_symmetry () =
  (* j's state in CS_i(s_i) iff i's state in CS_j(s_j) for the witnessing
     global state: check the pairwise-set symmetry on a whole graph *)
  let p = C.decentralized_2pc 3 in
  let g = R.build p in
  let cs = Cs.compute g in
  List.iter
    (fun site ->
      List.iter
        (fun state ->
          Cs.Pair_set.iter
            (fun (j, t) ->
              Alcotest.(check bool)
                (Fmt.str "symmetric (%d,%s)<->(%d,%s)" site state j t)
                true
                (Cs.Pair_set.mem (site, state) (Cs.set cs ~site:j ~state:t)))
            (Cs.set cs ~site ~state))
        (Cs.occupied_states cs ~site))
    (Core.Protocol.sites p)

let test_unreachable_state_empty_cs () =
  let g = R.build (C.central_2pc 2) in
  let cs = Cs.compute g in
  Alcotest.(check bool) "unknown state has empty CS" true
    (Cs.Pair_set.is_empty (Cs.set cs ~site:1 ~state:"zz"))

let test_decentralized_sites_symmetric () =
  (* in a homogeneous protocol every site's per-state CS projects to the
     same id set *)
  let g = R.build (C.decentralized_3pc 3) in
  let cs = Cs.compute g in
  List.iter
    (fun state ->
      let ids site = Cs.String_set.elements (Cs.set_ids cs ~site ~state) in
      Alcotest.(check (list string)) (Fmt.str "site1 = site2 on %s" state) (ids 1) (ids 2);
      Alcotest.(check (list string)) (Fmt.str "site2 = site3 on %s" state) (ids 2) (ids 3))
    [ "q"; "w"; "p"; "a"; "c" ]

let suite =
  [
    Alcotest.test_case "canonical 2PC table (paper figure)" `Quick test_canonical_2pc_table;
    Alcotest.test_case "canonical 3PC table" `Quick test_canonical_3pc_table;
    Alcotest.test_case "central 2PC coordinator asymmetry" `Quick
      test_central_2pc_coordinator_never_sees_commit_in_w;
    Alcotest.test_case "central 3PC: no abort beside p" `Quick test_central_3pc_p_has_no_abort;
    Alcotest.test_case "occupied states" `Quick test_occupied_states;
    Alcotest.test_case "pairwise symmetry" `Quick test_set_symmetry;
    Alcotest.test_case "unreachable state" `Quick test_unreachable_state_empty_cs;
    Alcotest.test_case "homogeneous site symmetry" `Quick test_decentralized_sites_symmetric;
  ]
