(** Regression tests for the interaction of the read-only optimization
    with the termination protocol: a read-only participant knows nothing
    about the outcome and must never act as a backup coordinator.  Before
    the fix, a read-only site elected as backup would broadcast a commit
    outcome it never learned, contradicting the recovered coordinator's
    presumed abort. *)

let n_sites = 3

(* a transaction whose lowest-numbered participant is read-only: the
   coordinator is the owner of the first key (site 2); site 1 only reads;
   site 3 writes *)
let txn_with_readonly_min () =
  let key_at s = List.find (fun k -> Kv.Txn.owner ~n_sites k = s) (List.init 200 Kv.Workload.key_name) in
  let k2 = key_at 2 and k1 = key_at 1 and k3 = key_at 3 in
  ((k1, k2, k3), { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k2, 1); Kv.Txn.Get k1; Kv.Txn.Add (k3, 1) ] })

let run ~crashes ~recoveries =
  let (k1, k2, k3), txn = txn_with_readonly_min () in
  Kv.Db.run
    (Kv.Db.config ~n_sites ~protocol:Kv.Node.Three_phase ~read_only_opt:true ~seed:5 ~crashes
       ~recoveries ~initial_data:[ (k1, 10); (k2, 10); (k3, 10) ] ())
    [ (1.0, txn) ]

let test_readonly_backup_stays_silent () =
  (* coordinator (site 2) dies right after collecting the votes; the
     read-only site 1 is the lowest eligible backup but must not decide —
     the prepared site 3 (next eligible after the fix removes site 1's
     participation) terminates with abort; the recovered coordinator's
     presumed abort then agrees *)
  List.iter
    (fun crash_at ->
      let r = run ~crashes:[ (2, crash_at) ] ~recoveries:[ (2, 60.0) ] in
      Alcotest.(check bool) (Fmt.str "atomicity preserved (crash %.1f)" crash_at) true
        r.Kv.Db.atomicity_ok;
      Alcotest.(check int) (Fmt.str "no pending (crash %.1f)" crash_at) 0 r.Kv.Db.pending;
      (* the outcome depends on how far the commit got before the crash,
         but storage must agree with it *)
      Alcotest.(check int)
        (Fmt.str "storage matches outcome (crash %.1f)" crash_at)
        (if r.Kv.Db.committed = 1 then 32 else 30)
        r.Kv.Db.storage_totals)
    [ 2.5; 3.0; 3.3; 4.5 ]

let test_readonly_with_commit () =
  (* no failures: the read-only site reads, the writers commit *)
  let r = run ~crashes:[] ~recoveries:[] in
  Alcotest.(check int) "committed" 1 r.Kv.Db.committed;
  Alcotest.(check bool) "atomic" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "both writes applied" 32 r.Kv.Db.storage_totals

let test_readonly_crash_after_decision () =
  (* coordinator dies after the precommit round: the prepared writer
     terminates with commit; the read-only site needs nothing *)
  let r = run ~crashes:[ (2, 5.6) ] ~recoveries:[ (2, 60.0) ] in
  Alcotest.(check bool) "atomic" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "no pending" 0 r.Kv.Db.pending

let suite =
  [
    Alcotest.test_case "read-only backup stays silent (regression)" `Quick
      test_readonly_backup_stays_silent;
    Alcotest.test_case "read-only with commit" `Quick test_readonly_with_commit;
    Alcotest.test_case "crash after decision" `Quick test_readonly_crash_after_decision;
  ]
