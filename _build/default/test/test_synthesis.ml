(** Tests for {!Core.Synthesis}: the paper's design method — inserting
    buffer states turns blocking protocols into nonblocking ones. *)

module Sk = Core.Skeleton
module Sy = Core.Synthesis
module C = Core.Catalog

let test_skeleton_2pc_to_3pc () =
  (* the headline transformation of the paper *)
  let result = Sy.buffer_skeleton Sk.canonical_2pc in
  Alcotest.(check bool) "equals canonical 3pc" true (Sk.equal result Sk.canonical_3pc);
  Alcotest.(check bool) "nonblocking" true (Sk.is_nonblocking result)

let test_skeleton_idempotent_on_nonblocking () =
  let result = Sy.buffer_skeleton Sk.canonical_3pc in
  Alcotest.(check bool) "3pc unchanged" true (Sk.equal result Sk.canonical_3pc)

let test_skeleton_1pc () =
  (* 1PC also gains a buffer state; the result satisfies the lemma *)
  let result = Sy.buffer_skeleton Sk.canonical_1pc in
  Alcotest.(check bool) "nonblocking after buffering" true (Sk.is_nonblocking result);
  Alcotest.(check int) "one state added" (List.length Sk.canonical_1pc.Sk.states + 1)
    (List.length result.Sk.states)

let test_protocol_central_2pc () =
  (* full message-level synthesis: central 2PC + buffer = nonblocking, and
     its skeleton is exactly canonical 3PC *)
  List.iter
    (fun n ->
      let graph = Core.Reachability.build (C.central_2pc n) in
      let { Sy.protocol; buffers_added } = Sy.buffer_protocol graph in
      Alcotest.(check int) (Fmt.str "one buffer per site (n=%d)" n) n (List.length buffers_added);
      let report = Core.Nonblocking.analyze_protocol protocol in
      Alcotest.(check bool) (Fmt.str "buffered 2pc nonblocking (n=%d)" n) true
        report.Core.Nonblocking.nonblocking;
      Alcotest.(check int) "resilience n-1" (n - 1) report.Core.Nonblocking.resilience)
    [ 2; 3 ]

let test_protocol_synthesis_matches_catalog_3pc () =
  (* the synthesized protocol has the same committable structure and
     concurrency sets as the hand-written central 3PC *)
  let graph2 = Core.Reachability.build (C.central_2pc 3) in
  let { Sy.protocol = synth; _ } = Sy.buffer_protocol graph2 in
  let g_synth = Core.Reachability.build synth in
  let g_cat = Core.Reachability.build (C.central_3pc 3) in
  let ids g state = Helpers.cs_ids g state in
  List.iter
    (fun state ->
      Alcotest.(check (list string))
        (Fmt.str "CS(%s) matches catalog 3pc" state)
        (ids g_cat state) (ids g_synth state))
    [ "q"; "w"; "p"; "a"; "c" ];
  Alcotest.(check (list string)) "committable ids match"
    (Core.Committable.committable_ids (Core.Committable.compute g_cat))
    (Core.Committable.committable_ids (Core.Committable.compute g_synth))

let test_protocol_synthesis_synchronous () =
  let graph = Core.Reachability.build (C.central_2pc 2) in
  let { Sy.protocol; _ } = Sy.buffer_protocol graph in
  let r = Core.Synchrony.check protocol in
  Alcotest.(check bool) "synthesized protocol stays synchronous" true r.Core.Synchrony.synchronous

let test_protocol_decentralized () =
  (* the decentralized rewrite: one extra interchange, nonblocking, same
     analysis as the hand-written decentralized 3PC *)
  List.iter
    (fun n ->
      let graph = Core.Reachability.build (C.decentralized_2pc n) in
      let { Sy.protocol; buffers_added } = Sy.buffer_protocol graph in
      Alcotest.(check int) "one buffer per site" n (List.length buffers_added);
      Alcotest.(check int) "three phases" 3 (Core.Protocol.phases protocol);
      let report = Core.Nonblocking.analyze_protocol protocol in
      Alcotest.(check bool) (Fmt.str "nonblocking n=%d" n) true report.Core.Nonblocking.nonblocking;
      Alcotest.(check int) "resilience n-1" (n - 1) report.Core.Nonblocking.resilience)
    [ 2; 3 ]

let test_protocol_decentralized_matches_catalog () =
  let graph2 = Core.Reachability.build (C.decentralized_2pc 2) in
  let { Sy.protocol = synth; _ } = Sy.buffer_protocol graph2 in
  let g_synth = Core.Reachability.build synth in
  let g_cat = Core.Reachability.build (C.decentralized_3pc 2) in
  List.iter
    (fun state ->
      Alcotest.(check (list string))
        (Fmt.str "CS(%s) matches catalog dec-3pc" state)
        (Helpers.cs_ids g_cat state) (Helpers.cs_ids g_synth state))
    [ "q"; "w"; "p"; "a"; "c" ];
  Alcotest.(check (list string)) "committable ids match"
    (Core.Committable.committable_ids (Core.Committable.compute g_cat))
    (Core.Committable.committable_ids (Core.Committable.compute g_synth))

let test_fresh_buffer_names () =
  (* if "p" is taken the synthesizer picks p1, p2, ... *)
  let sk =
    Sk.make ~name:"with-p"
      ~states:
        [
          { Sk.id = "q"; kind = Core.Types.Initial; committable = false };
          { Sk.id = "w"; kind = Core.Types.Wait; committable = false };
          { Sk.id = "p"; kind = Core.Types.Wait; committable = false };
          { Sk.id = "a"; kind = Core.Types.Abort; committable = false };
          { Sk.id = "c"; kind = Core.Types.Commit; committable = true };
        ]
      ~initial:"q"
      ~edges:[ ("q", "w"); ("q", "a"); ("w", "p"); ("p", "c"); ("w", "a") ]
  in
  let result = Sy.buffer_skeleton sk in
  Alcotest.(check bool) "p1 introduced" true
    (List.exists (fun s -> s.Sk.id = "p1") result.Sk.states)

let suite =
  [
    Alcotest.test_case "canonical 2PC + buffer = canonical 3PC" `Quick test_skeleton_2pc_to_3pc;
    Alcotest.test_case "idempotent on nonblocking skeletons" `Quick
      test_skeleton_idempotent_on_nonblocking;
    Alcotest.test_case "1PC gains a buffer" `Quick test_skeleton_1pc;
    Alcotest.test_case "message-level synthesis on central 2PC" `Quick test_protocol_central_2pc;
    Alcotest.test_case "synthesized protocol matches catalog 3PC" `Quick
      test_protocol_synthesis_matches_catalog_3pc;
    Alcotest.test_case "synthesized protocol stays synchronous" `Quick
      test_protocol_synthesis_synchronous;
    Alcotest.test_case "decentralized synthesis" `Quick test_protocol_decentralized;
    Alcotest.test_case "decentralized synthesis matches catalog 3PC" `Quick
      test_protocol_decentralized_matches_catalog;
    Alcotest.test_case "fresh buffer-state names" `Quick test_fresh_buffer_names;
  ]
