(** Integration tests for {!Kv.Db}: end-to-end transactions over the
    partitioned store under 2PC and 3PC, with crash/recovery — the paper's
    blocking-vs-nonblocking story on a live database. *)

let bank_cfg ?(protocol = Kv.Node.Three_phase) ?(seed = 11) ?(crashes = []) ?(recoveries = []) () =
  Kv.Db.config ~n_sites:4 ~protocol ~seed ~crashes ~recoveries
    ~initial_data:(Kv.Workload.bank_initial ~accounts:24 ~initial_balance:100) ()

let bank_wl ?(n_txns = 80) ~seed () =
  let rng = Sim.Rng.create ~seed in
  Kv.Workload.bank rng ~n_txns ~accounts:24 ~arrival_rate:0.7

let expected_total = Kv.Workload.bank_total ~accounts:24 ~initial_balance:100

let test_bank_no_failures_3pc () =
  let r = Kv.Db.run (bank_cfg ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check int) "all committed" 80 r.Kv.Db.committed;
  Alcotest.(check int) "none pending" 0 r.Kv.Db.pending;
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "bank invariant" expected_total r.Kv.Db.storage_totals

let test_bank_no_failures_2pc () =
  let r = Kv.Db.run (bank_cfg ~protocol:Kv.Node.Two_phase ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check int) "all committed" 80 r.Kv.Db.committed;
  Alcotest.(check int) "bank invariant" expected_total r.Kv.Db.storage_totals

let test_3pc_cheaper_in_messages_under_2pc () =
  (* the price of nonblocking: 3PC sends ~1.5x the messages of 2PC *)
  let r2 = Kv.Db.run (bank_cfg ~protocol:Kv.Node.Two_phase ()) (bank_wl ~seed:11 ()) in
  let r3 = Kv.Db.run (bank_cfg ~protocol:Kv.Node.Three_phase ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check bool) "3pc sends more messages" true
    (r3.Kv.Db.messages_sent > r2.Kv.Db.messages_sent);
  let ratio = float_of_int r3.Kv.Db.messages_sent /. float_of_int r2.Kv.Db.messages_sent in
  Alcotest.(check bool) (Fmt.str "ratio %.2f in [1.2, 1.8]" ratio) true (ratio > 1.2 && ratio < 1.8)

let test_crash_preserves_invariant_with_recovery () =
  (* crash two sites mid-run, recover them before the end: invariant and
     atomicity must hold for both protocols *)
  List.iter
    (fun protocol ->
      let r =
        Kv.Db.run
          (bank_cfg ~protocol ~crashes:[ (2, 30.0); (3, 55.0) ] ~recoveries:[ (2, 90.0); (3, 120.0) ] ())
          (bank_wl ~seed:13 ())
      in
      Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok;
      Alcotest.(check int)
        (Fmt.str "%s invariant after recovery" (Kv.Node.show_protocol protocol))
        expected_total r.Kv.Db.storage_totals)
    [ Kv.Node.Two_phase; Kv.Node.Three_phase ]

let test_atomicity_under_repeated_crashes () =
  (* a harsher schedule: every site except 1 bounces once *)
  List.iter
    (fun seed ->
      let r =
        Kv.Db.run
          (bank_cfg ~seed
             ~crashes:[ (2, 25.0); (3, 50.0); (4, 75.0) ]
             ~recoveries:[ (2, 60.0); (3, 100.0); (4, 130.0) ]
             ())
          (bank_wl ~seed ())
      in
      Alcotest.(check bool) (Fmt.str "atomicity seed %d" seed) true r.Kv.Db.atomicity_ok;
      Alcotest.(check int) (Fmt.str "invariant seed %d" seed) expected_total r.Kv.Db.storage_totals)
    [ 3; 17; 42 ]

let test_2pc_blocking_vs_3pc_on_vote_window_crash () =
  (* single cross-site transfer, coordinator crashes in the vote window:
     2PC leaves the transaction pending (blocked), 3PC resolves it *)
  let n_sites = 3 in
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 3) (List.init 100 Kv.Workload.key_name) in
  let wl = [ (1.0, { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, -5); Kv.Txn.Add (k2, 5) ] }) ] in
  let run protocol =
    Kv.Db.run
      (Kv.Db.config ~n_sites ~protocol ~seed:3 ~crashes:[ (2, 3.05) ]
         ~initial_data:[ (k1, 100); (k2, 100) ] ())
      wl
  in
  let r2 = run Kv.Node.Two_phase and r3 = run Kv.Node.Three_phase in
  Alcotest.(check int) "2pc: blocked pending" 1 r2.Kv.Db.pending;
  Alcotest.(check int) "3pc: resolved" 0 r3.Kv.Db.pending;
  Alcotest.(check bool) "2pc consistent anyway" true r2.Kv.Db.atomicity_ok;
  Alcotest.(check bool) "3pc consistent" true r3.Kv.Db.atomicity_ok

let test_2pc_blocked_txn_resolves_on_recovery () =
  let n_sites = 3 in
  let k1 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 2) (List.init 100 Kv.Workload.key_name) in
  let k2 = List.find (fun k -> Kv.Txn.owner ~n_sites k = 3) (List.init 100 Kv.Workload.key_name) in
  let wl = [ (1.0, { Kv.Txn.id = 1; ops = [ Kv.Txn.Add (k1, -5); Kv.Txn.Add (k2, 5) ] }) ] in
  let r =
    Kv.Db.run
      (Kv.Db.config ~n_sites ~protocol:Kv.Node.Two_phase ~seed:3 ~crashes:[ (2, 3.05) ]
         ~recoveries:[ (2, 40.0) ] ~initial_data:[ (k1, 100); (k2, 100) ] ())
      wl
  in
  Alcotest.(check int) "resolved after recovery" 0 r.Kv.Db.pending;
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok;
  Alcotest.(check int) "invariant" 200 r.Kv.Db.storage_totals

let test_deadlocks_cause_unilateral_aborts () =
  (* a maximally contended workload on few keys must produce deadlock or
     timeout aborts — the unilateral no votes the paper motivates *)
  let rng = Sim.Rng.create ~seed:23 in
  let spec =
    {
      Kv.Workload.default_spec with
      Kv.Workload.n_txns = 120;
      keys = 6;
      ops_per_txn = 3;
      write_ratio = 1.0;
      arrival_rate = 3.0;
    }
  in
  let wl = Kv.Workload.mixed rng spec in
  let r = Kv.Db.run (Kv.Db.config ~n_sites:3 ~protocol:Kv.Node.Three_phase ~seed:23 ()) wl in
  Alcotest.(check bool) "some aborts happened" true (r.Kv.Db.aborted > 0);
  Alcotest.(check bool) "deadlock aborts happened" true (r.Kv.Db.deadlock_aborts > 0);
  Alcotest.(check bool) "some transactions still commit" true (r.Kv.Db.committed > 0);
  Alcotest.(check int) "every transaction accounted for" 120
    (r.Kv.Db.committed + r.Kv.Db.aborted + r.Kv.Db.pending);
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok

let test_determinism () =
  let a = Kv.Db.run (bank_cfg ()) (bank_wl ~seed:11 ()) in
  let b = Kv.Db.run (bank_cfg ()) (bank_wl ~seed:11 ()) in
  Alcotest.(check int) "same committed" a.Kv.Db.committed b.Kv.Db.committed;
  Alcotest.(check int) "same messages" a.Kv.Db.messages_sent b.Kv.Db.messages_sent;
  Alcotest.(check bool) "same fates" true (a.Kv.Db.fates = b.Kv.Db.fates)

let test_refuse_when_participant_down () =
  (* transactions touching a known-down site are refused outright *)
  let r =
    Kv.Db.run
      (bank_cfg ~protocol:Kv.Node.Three_phase ~crashes:[ (2, 5.0) ] ())
      (bank_wl ~seed:29 ~n_txns:60 ())
  in
  Alcotest.(check bool) "some refused" true
    (List.mem_assoc "refused_participant_down" r.Kv.Db.metrics);
  Alcotest.(check bool) "atomicity" true r.Kv.Db.atomicity_ok

let suite =
  [
    Alcotest.test_case "bank, 3PC, no failures" `Quick test_bank_no_failures_3pc;
    Alcotest.test_case "bank, 2PC, no failures" `Quick test_bank_no_failures_2pc;
    Alcotest.test_case "3PC message overhead" `Quick test_3pc_cheaper_in_messages_under_2pc;
    Alcotest.test_case "crash + recovery preserves invariant" `Slow
      test_crash_preserves_invariant_with_recovery;
    Alcotest.test_case "repeated crashes, atomicity holds" `Slow test_atomicity_under_repeated_crashes;
    Alcotest.test_case "2PC blocks, 3PC terminates (vote-window crash)" `Quick
      test_2pc_blocking_vs_3pc_on_vote_window_crash;
    Alcotest.test_case "2PC blocked txn resolves on recovery" `Quick
      test_2pc_blocked_txn_resolves_on_recovery;
    Alcotest.test_case "deadlocks produce unilateral aborts" `Quick
      test_deadlocks_cause_unilateral_aborts;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "down participants refused" `Quick test_refuse_when_participant_down;
  ]
