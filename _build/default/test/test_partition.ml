(** Tests for the partition ablation: what happens when the paper's
    reliable-failure-detection assumption is violated.

    The headline negative result (well known since the paper): under a
    network partition, 3PC's termination protocol can split-brain — the
    minority side elects its own backup and decides from its local state
    while the majority decides the other way.  2PC, by contrast, merely
    blocks the orphaned side.  Skeen's assumptions exclude partitions for
    exactly this reason; these tests pin the behaviour down. *)

module R = Engine.Runtime
module FP = Engine.Failure_plan

let rb3 = lazy (Engine.Rulebook.compile (Core.Catalog.central_3pc 3))
let rb2 = lazy (Engine.Rulebook.compile (Core.Catalog.central_2pc 3))

(* World-level sanity: partitions drop cross-group messages and produce
   false suspicions, and heal cleanly. *)
let test_world_partition_drops () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:(fun s -> s) () in
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:50.0 [ [ 1 ]; [ 2 ] ];
  let got = ref 0 and suspected = ref [] in
  let handlers _site =
    {
      Sim.World.on_start = (fun ctx -> if ctx.Sim.World.self = 1 then Sim.World.send ctx ~dst:2 "hi");
      on_message = (fun _ ~src:_ _ -> incr got);
      on_peer_down = (fun ctx s -> suspected := (ctx.Sim.World.self, s) :: !suspected);
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "message dropped" 0 !got;
  Alcotest.(check (list (pair int int))) "mutual false suspicion" [ (1, 2); (2, 1) ]
    (List.sort compare !suspected);
  Alcotest.(check int) "partition drop counted" 1
    (Sim.Metrics.counter (Sim.World.metrics w) "messages_partitioned")

let test_world_partition_heals () =
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~msg_to_string:(fun s -> s) () in
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:5.0 [ [ 1 ]; [ 2 ] ];
  let ups = ref [] and got = ref 0 in
  let handlers _site =
    {
      Sim.World.on_start = (fun _ -> ());
      on_message = (fun _ ~src:_ _ -> incr got);
      on_peer_down = (fun _ _ -> ());
      on_peer_up =
        (fun ctx s ->
          ups := (ctx.Sim.World.self, s) :: !ups;
          (* the link works again *)
          Sim.World.send ctx ~dst:s "hello-again");
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check (list (pair int int))) "mutual recovery report" [ (1, 2); (2, 1) ]
    (List.sort compare !ups);
  Alcotest.(check int) "post-heal messages flow" 2 !got

let test_short_partition_invisible () =
  (* healed before the detection delay: no false suspicion fires *)
  let w = Sim.World.create ~n_sites:2 ~seed:1 ~detection_delay:2.0 ~msg_to_string:(fun s -> s) () in
  Sim.World.schedule_partition w ~from_t:0.0 ~until_t:1.0 [ [ 1 ]; [ 2 ] ];
  let suspected = ref 0 in
  let handlers _site =
    {
      Sim.World.on_start = (fun _ -> ());
      on_message = (fun _ ~src:_ _ -> ());
      on_peer_down = (fun _ _ -> incr suspected);
      on_peer_up = (fun _ _ -> ());
      on_restart = (fun _ -> ());
    }
  in
  ignore (Sim.World.run w ~handlers ());
  Alcotest.(check int) "no suspicion" 0 !suspected

(* Protocol-level ablation.  Partition the lone slave 3 away from {1,2}
   right after the votes are in (t = 2.5): under 3PC both sides terminate
   — in opposite directions; under 2PC the minority blocks instead. *)
let test_3pc_splits_brain_under_partition () =
  let r =
    Engine.Partition_ablation.run ~rulebook:(Lazy.force rb3) ~from_t:2.5 ~until_t:200.0
      ~groups:[ [ 1; 2 ]; [ 3 ] ] ~seed:1 ()
  in
  Alcotest.(check bool) "INCONSISTENT outcome (split brain)" false r.R.consistent;
  (* majority side committed, minority aborted *)
  let outcome s = (List.nth r.R.reports (s - 1)).R.outcome in
  Alcotest.(check (option Helpers.outcome)) "site 1 committed" (Some Core.Types.Committed) (outcome 1);
  Alcotest.(check (option Helpers.outcome)) "site 2 committed" (Some Core.Types.Committed) (outcome 2);
  Alcotest.(check (option Helpers.outcome)) "site 3 aborted" (Some Core.Types.Aborted) (outcome 3)

let test_2pc_blocks_but_stays_consistent () =
  let r =
    Engine.Partition_ablation.run ~rulebook:(Lazy.force rb2) ~from_t:2.5 ~until_t:200.0
      ~groups:[ [ 1; 2 ]; [ 3 ] ] ~seed:1 ()
  in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  let outcome s = (List.nth r.R.reports (s - 1)).R.outcome in
  Alcotest.(check (option Helpers.outcome)) "site 1 committed" (Some Core.Types.Committed) (outcome 1);
  (* the partitioned slave eventually learns the outcome after healing *)
  Alcotest.(check (option Helpers.outcome)) "site 3 resolves after heal"
    (Some Core.Types.Committed) (outcome 3)

let test_no_partition_no_difference () =
  (* the ablation entry point with an empty partition behaves like run *)
  let r =
    Engine.Partition_ablation.run ~rulebook:(Lazy.force rb3) ~from_t:0.0 ~until_t:0.0 ~groups:[]
      ~seed:1 ()
  in
  Alcotest.(check bool) "consistent" true r.R.consistent;
  Alcotest.(check bool) "all decided" true r.R.all_operational_decided

let suite =
  [
    Alcotest.test_case "partition drops messages + false suspicion" `Quick
      test_world_partition_drops;
    Alcotest.test_case "partition heals" `Quick test_world_partition_heals;
    Alcotest.test_case "short partition invisible" `Quick test_short_partition_invisible;
    Alcotest.test_case "3PC split-brain under partition (known limit)" `Quick
      test_3pc_splits_brain_under_partition;
    Alcotest.test_case "2PC blocks but stays consistent" `Quick
      test_2pc_blocks_but_stays_consistent;
    Alcotest.test_case "ablation with no partition" `Quick test_no_partition_no_difference;
  ]
