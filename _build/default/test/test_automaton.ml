(** Tests for {!Core.Automaton}: structure, validation, adjacency, levels,
    enabled transitions. *)

module A = Core.Automaton
module M = Core.Message

let st id kind = { A.id; kind }
let msg name src dst = M.make ~name ~src ~dst

let tr ?(consumes = []) ?(emits = []) ?vote from_state to_state =
  { A.from_state; to_state; consumes; emits; vote }

let simple =
  A.make ~site:1
    ~states:[ st "q" Core.Types.Initial; st "w" Core.Types.Wait; st "a" Core.Types.Abort; st "c" Core.Types.Commit ]
    ~initial:"q"
    ~transitions:
      [
        tr "q" "w" ~consumes:[ msg "xact" 0 1 ] ~emits:[ msg "yes" 1 2 ] ~vote:Core.Types.Yes;
        tr "q" "a" ~consumes:[ msg "xact" 0 1 ] ~emits:[ msg "no" 1 2 ] ~vote:Core.Types.No;
        tr "w" "c" ~consumes:[ msg "commit" 2 1 ];
        tr "w" "a" ~consumes:[ msg "abort" 2 1 ];
      ]

let test_valid () = Alcotest.(check bool) "simple FSA is valid" true (A.is_valid simple)

let test_successors () =
  Alcotest.(check (list string)) "succ q" [ "a"; "w" ] (A.successors simple "q");
  Alcotest.(check (list string)) "succ w" [ "a"; "c" ] (A.successors simple "w");
  Alcotest.(check (list string)) "succ c" [] (A.successors simple "c")

let test_predecessors () =
  Alcotest.(check (list string)) "pred a" [ "q"; "w" ] (A.predecessors simple "a");
  Alcotest.(check (list string)) "pred q" [] (A.predecessors simple "q")

let test_adjacent () =
  Alcotest.(check (list string)) "adjacent w" [ "a"; "c"; "q" ] (A.adjacent simple "w");
  Alcotest.(check (list string)) "adjacent c" [ "w" ] (A.adjacent simple "c")

let test_kind_lookup () =
  Alcotest.check Helpers.state_kind "kind c" Core.Types.Commit (A.kind_of simple "c");
  Alcotest.check_raises "unknown state"
    (Invalid_argument "Automaton.state_exn: unknown state zz at site 1") (fun () ->
      ignore (A.kind_of simple "zz"))

let test_final_partition () =
  Alcotest.(check int) "two final states" 2 (List.length (A.final_states simple));
  Alcotest.(check int) "one commit" 1 (List.length (A.commit_states simple));
  Alcotest.(check int) "one abort" 1 (List.length (A.abort_states simple))

let test_validate_cycle () =
  let cyclic =
    A.make ~site:1
      ~states:[ st "q" Core.Types.Initial; st "w" Core.Types.Wait ]
      ~initial:"q"
      ~transitions:[ tr "q" "w"; tr "w" "q" ]
  in
  match A.validate cyclic with
  | [ A.Cyclic _ ] -> ()
  | other -> Alcotest.failf "expected cycle violation, got %a" Fmt.(Dump.list A.pp_violation) other

let test_validate_final_successor () =
  let bad =
    A.make ~site:1
      ~states:[ st "q" Core.Types.Initial; st "c" Core.Types.Commit; st "a" Core.Types.Abort ]
      ~initial:"q"
      ~transitions:[ tr "q" "c"; tr "c" "a" ]
  in
  Alcotest.(check bool) "commit with successor rejected" true
    (List.mem (A.Final_with_successor "c") (A.validate bad))

let test_validate_unreachable () =
  let bad =
    A.make ~site:1
      ~states:[ st "q" Core.Types.Initial; st "c" Core.Types.Commit; st "w" Core.Types.Wait ]
      ~initial:"q"
      ~transitions:[ tr "q" "c" ]
  in
  Alcotest.(check bool) "unreachable state reported" true
    (List.mem (A.Unreachable "w") (A.validate bad))

let test_validate_unknown_state () =
  let bad =
    A.make ~site:1 ~states:[ st "q" Core.Types.Initial ] ~initial:"q"
      ~transitions:[ tr "q" "ghost" ]
  in
  Alcotest.(check bool) "unknown state reported" true
    (List.mem (A.Unknown_state "ghost") (A.validate bad))

let test_levels () =
  (* a chain without the q->a shortcut has well-defined phases *)
  let chain =
    A.make ~site:1
      ~states:
        [ st "q" Core.Types.Initial; st "w" Core.Types.Wait; st "p" Core.Types.Buffer; st "c" Core.Types.Commit ]
      ~initial:"q"
      ~transitions:[ tr "q" "w"; tr "w" "p"; tr "p" "c" ]
  in
  match A.levels chain with
  | Ok levels ->
      Alcotest.(check (option int)) "q at level 0" (Some 0) (List.assoc_opt "q" levels);
      Alcotest.(check (option int)) "w at level 1" (Some 1) (List.assoc_opt "w" levels);
      Alcotest.(check (option int)) "c at level 3" (Some 3) (List.assoc_opt "c" levels)
  | Error id -> Alcotest.failf "unexpected level conflict at %s" id

let test_levels_conflict () =
  (* state [a] reachable in 1 step (q->a) and 2 steps (q->w->a): the phase
     is ill-defined, which [levels] must report. *)
  match A.levels simple with
  | Error "a" -> ()
  | Error other -> Alcotest.failf "conflict at wrong state %s" other
  | Ok _ -> Alcotest.fail "expected a level conflict on state a"

let test_enabled () =
  let net = M.Multiset.of_list [ msg "xact" 0 1 ] in
  let en = A.enabled simple "q" net in
  Alcotest.(check int) "both vote transitions enabled" 2 (List.length en);
  Alcotest.(check int) "nothing enabled on empty tape" 0
    (List.length (A.enabled simple "q" M.Multiset.empty));
  let spont =
    A.make ~site:1
      ~states:[ st "q" Core.Types.Initial; st "a" Core.Types.Abort ]
      ~initial:"q" ~transitions:[ tr "q" "a" ]
  in
  Alcotest.(check int) "spontaneous transition always enabled" 1
    (List.length (A.enabled spont "q" M.Multiset.empty))

let suite =
  [
    Alcotest.test_case "valid FSA" `Quick test_valid;
    Alcotest.test_case "successors" `Quick test_successors;
    Alcotest.test_case "predecessors" `Quick test_predecessors;
    Alcotest.test_case "adjacent" `Quick test_adjacent;
    Alcotest.test_case "kind lookup" `Quick test_kind_lookup;
    Alcotest.test_case "final partition" `Quick test_final_partition;
    Alcotest.test_case "cycle detection" `Quick test_validate_cycle;
    Alcotest.test_case "final irreversibility" `Quick test_validate_final_successor;
    Alcotest.test_case "unreachable detection" `Quick test_validate_unreachable;
    Alcotest.test_case "unknown state detection" `Quick test_validate_unknown_state;
    Alcotest.test_case "levels" `Quick test_levels;
    Alcotest.test_case "level conflict (2PC abort)" `Quick test_levels_conflict;
    Alcotest.test_case "enabled transitions" `Quick test_enabled;
  ]
