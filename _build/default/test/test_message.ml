(** Tests for {!Core.Message}: message identity and the network multiset. *)

module M = Core.Message
module MS = Core.Message.Multiset

let m ?(name = "yes") ?(src = 1) ?(dst = 2) () = M.make ~name ~src ~dst

let test_equality () =
  Alcotest.check Helpers.msg "same fields equal" (m ()) (m ());
  Alcotest.(check bool) "different name" false (M.equal (m ()) (m ~name:"no" ()));
  Alcotest.(check bool) "different src" false (M.equal (m ()) (m ~src:3 ()));
  Alcotest.(check bool) "different dst" false (M.equal (m ()) (m ~dst:3 ()))

let test_show () =
  Alcotest.(check string) "render" "yes(site1->site2)" (M.show (m ()));
  Alcotest.(check string) "env sender" "xact(env->site1)"
    (M.show (M.make ~name:"xact" ~src:Core.Types.env ~dst:1))

let test_multiset_add_remove () =
  let a = m () and b = m ~name:"no" () in
  let s = MS.of_list [ a; b; a ] in
  Alcotest.(check int) "cardinal" 3 (MS.cardinal s);
  Alcotest.(check bool) "mem a" true (MS.mem a s);
  let s' = MS.remove a s in
  Alcotest.(check int) "one removed" 2 (MS.cardinal s');
  Alcotest.(check bool) "still mem a (was twice)" true (MS.mem a s');
  let s'' = MS.remove a s' in
  Alcotest.(check bool) "a gone" false (MS.mem a s'');
  Alcotest.(check bool) "b remains" true (MS.mem b s'')

let test_multiset_remove_missing () =
  let s = MS.of_list [ m () ] in
  Alcotest.check_raises "remove missing raises" Not_found (fun () ->
      ignore (MS.remove (m ~name:"nope" ()) s))

let test_remove_all () =
  let a = m () and b = m ~name:"no" () and c = m ~name:"ack" () in
  let s = MS.of_list [ a; b; c ] in
  (match MS.remove_all [ a; c ] s with
  | Some rest ->
      Alcotest.(check int) "two removed" 1 (MS.cardinal rest);
      Alcotest.(check bool) "b left" true (MS.mem b rest)
  | None -> Alcotest.fail "remove_all should succeed");
  Alcotest.(check bool) "missing element fails" true
    (MS.remove_all [ a; a ] s = None);
  Alcotest.(check bool) "contains_all subset" true (MS.contains_all [ b ] s);
  Alcotest.(check bool) "contains_all with duplicate demand" false (MS.contains_all [ b; b ] s)

let test_empty () =
  Alcotest.(check int) "empty cardinal" 0 (MS.cardinal MS.empty);
  Alcotest.(check bool) "contains_all [] of empty" true (MS.contains_all [] MS.empty)

(* --- properties --- *)

let gen_msg =
  QCheck2.Gen.(
    let* name = oneofl [ "xact"; "yes"; "no"; "commit"; "abort"; "prepare"; "ack" ] in
    let* src = int_range 0 5 in
    let* dst = int_range 0 5 in
    return (M.make ~name ~src ~dst))

let prop_sorted =
  Helpers.qtest "multiset stays sorted under adds" (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 30) gen_msg)
    (fun msgs ->
      let s = List.fold_left (fun acc x -> MS.add x acc) MS.empty msgs in
      let l = MS.to_list s in
      List.sort M.compare l = l && MS.cardinal s = List.length msgs)

let prop_add_remove_roundtrip =
  Helpers.qtest "add then remove is identity"
    QCheck2.Gen.(pair gen_msg (list_size (int_range 0 20) gen_msg))
    (fun (x, msgs) ->
      let s = MS.of_list msgs in
      MS.equal (MS.remove x (MS.add x s)) s)

let prop_remove_all_order_independent =
  Helpers.qtest "remove_all result independent of demand order"
    QCheck2.Gen.(pair (list_size (int_range 0 8) gen_msg) (list_size (int_range 0 15) gen_msg))
    (fun (demand, msgs) ->
      let s = MS.of_list (demand @ msgs) in
      match (MS.remove_all demand s, MS.remove_all (List.rev demand) s) with
      | Some a, Some b -> MS.equal a b
      | _ -> false)

let suite =
  [
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "show" `Quick test_show;
    Alcotest.test_case "multiset add/remove" `Quick test_multiset_add_remove;
    Alcotest.test_case "multiset remove missing" `Quick test_multiset_remove_missing;
    Alcotest.test_case "remove_all" `Quick test_remove_all;
    Alcotest.test_case "empty multiset" `Quick test_empty;
    prop_sorted;
    prop_add_remove_roundtrip;
    prop_remove_all_order_independent;
  ]
