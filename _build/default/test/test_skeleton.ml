(** Tests for {!Core.Skeleton}: the canonical protocol abstraction, its
    adjacency-based concurrency sets, and the lemma at the canonical
    level. *)

module Sk = Core.Skeleton

let cs sk state = Sk.String_set.elements (Sk.concurrency_set sk state)

let test_canonical_2pc_concurrency_sets () =
  let sk = Sk.canonical_2pc in
  Alcotest.(check (list string)) "CS(q)" [ "a"; "q"; "w" ] (cs sk "q");
  Alcotest.(check (list string)) "CS(w)" [ "a"; "c"; "q"; "w" ] (cs sk "w");
  Alcotest.(check (list string)) "CS(a)" [ "a"; "q"; "w" ] (cs sk "a");
  Alcotest.(check (list string)) "CS(c)" [ "c"; "w" ] (cs sk "c")

let test_canonical_2pc_blocking () =
  let violations = Sk.lemma_violations Sk.canonical_2pc in
  Alcotest.(check bool) "blocking" false (Sk.is_nonblocking Sk.canonical_2pc);
  Alcotest.(check bool) "w violates condition 1" true
    (List.mem ("w", `Both_commit_and_abort) violations);
  Alcotest.(check bool) "w violates condition 2" true
    (List.mem ("w", `Noncommittable_sees_commit) violations);
  Alcotest.(check int) "only w violates" 2 (List.length violations)

let test_canonical_3pc_nonblocking () =
  Alcotest.(check bool) "nonblocking" true (Sk.is_nonblocking Sk.canonical_3pc);
  Alcotest.(check (list (pair string string))) "no violations" []
    (List.map (fun (s, _) -> (s, s)) (Sk.lemma_violations Sk.canonical_3pc))

let test_canonical_1pc_blocking () =
  let violations = Sk.lemma_violations Sk.canonical_1pc in
  Alcotest.(check bool) "blocking" false (Sk.is_nonblocking Sk.canonical_1pc);
  Alcotest.(check bool) "q adjacent to both finals" true
    (List.mem ("q", `Both_commit_and_abort) violations)

let test_canonical_3pc_structure () =
  let sk = Sk.canonical_3pc in
  Alcotest.(check (list string)) "succ w" [ "a"; "p" ] (List.sort compare (Sk.successors sk "w"));
  Alcotest.(check (list string)) "pred c" [ "p" ] (Sk.predecessors sk "c");
  Alcotest.(check bool) "p committable" true (Sk.is_committable sk "p");
  Alcotest.(check bool) "w noncommittable" false (Sk.is_committable sk "w");
  Alcotest.check Helpers.state_kind "p is a buffer" Core.Types.Buffer (Sk.kind_of sk "p")

let test_make_validation () =
  Alcotest.check_raises "unknown initial" (Invalid_argument "Skeleton.make: unknown initial state x")
    (fun () ->
      ignore
        (Sk.make ~name:"bad"
           ~states:[ { Sk.id = "q"; kind = Core.Types.Initial; committable = false } ]
           ~initial:"x" ~edges:[]));
  Alcotest.check_raises "unknown edge" (Invalid_argument "Skeleton.make: unknown edge q->z")
    (fun () ->
      ignore
        (Sk.make ~name:"bad"
           ~states:[ { Sk.id = "q"; kind = Core.Types.Initial; committable = false } ]
           ~initial:"q"
           ~edges:[ ("q", "z") ]))

let test_of_protocol_analysis_2pc () =
  (* abstracting the decentralized 2PC recovers the canonical 2PC skeleton *)
  let g = Core.Reachability.build (Core.Catalog.decentralized_2pc 2) in
  let sk = Sk.of_protocol_analysis g in
  Alcotest.(check bool) "equals canonical 2pc" true (Sk.equal sk Sk.canonical_2pc)

let test_of_protocol_analysis_3pc () =
  let g = Core.Reachability.build (Core.Catalog.decentralized_3pc 2) in
  let sk = Sk.of_protocol_analysis g in
  Alcotest.(check bool) "equals canonical 3pc" true (Sk.equal sk Sk.canonical_3pc)

let test_skeleton_equal_ignores_name () =
  let a = Sk.canonical_2pc in
  let b = Sk.make ~name:"renamed" ~states:a.Sk.states ~initial:a.Sk.initial ~edges:a.Sk.edges in
  Alcotest.(check bool) "names don't matter" true (Sk.equal a b)

let suite =
  [
    Alcotest.test_case "canonical 2PC concurrency sets (paper figure)" `Quick
      test_canonical_2pc_concurrency_sets;
    Alcotest.test_case "canonical 2PC blocks at w" `Quick test_canonical_2pc_blocking;
    Alcotest.test_case "canonical 3PC nonblocking" `Quick test_canonical_3pc_nonblocking;
    Alcotest.test_case "canonical 1PC blocking" `Quick test_canonical_1pc_blocking;
    Alcotest.test_case "canonical 3PC structure" `Quick test_canonical_3pc_structure;
    Alcotest.test_case "construction validation" `Quick test_make_validation;
    Alcotest.test_case "abstraction: dec 2PC -> canonical 2PC" `Quick test_of_protocol_analysis_2pc;
    Alcotest.test_case "abstraction: dec 3PC -> canonical 3PC" `Quick test_of_protocol_analysis_3pc;
    Alcotest.test_case "skeleton equality" `Quick test_skeleton_equal_ignores_name;
  ]
