(** Tests for {!Core.Synchrony}: the "synchronous within one state
    transition" property (paper §4) and the adjacency lemma. *)

module C = Core.Catalog
module S = Core.Synchrony

let test_catalog_synchronous () =
  (* both paradigms of both protocols are synchronous within one state
     transition, as the paper claims *)
  List.iter
    (fun (entry : C.entry) ->
      List.iter
        (fun n ->
          let r = S.check (entry.C.build n) in
          Alcotest.(check bool) (Fmt.str "%s n=%d synchronous" entry.C.label n) true r.S.synchronous;
          Alcotest.(check int) (Fmt.str "%s n=%d max lead" entry.C.label n) 1 r.S.max_lead)
        [ 2; 3 ])
    C.all

let test_hasty_2pc_not_synchronous () =
  (* a coordinator that aborts without reading the votes can get two
     transitions ahead of a slave still in q *)
  let r = S.check (C.central_2pc_hasty 3) in
  Alcotest.(check bool) "not synchronous" false r.S.synchronous;
  Alcotest.(check bool) "lead exceeds 1" true (r.S.max_lead > 1);
  Alcotest.(check bool) "witness produced" true (r.S.witness <> None)

let test_lemma_agrees_with_theorem_homogeneous () =
  (* on homogeneous synchronous protocols the adjacency lemma and the exact
     theorem agree per (site, state) *)
  List.iter
    (fun label ->
      let p = (C.find label).C.build 3 in
      let graph = Core.Reachability.build p in
      let exact = Core.Nonblocking.analyze graph in
      let cm = Core.Committable.compute graph in
      let lemma =
        S.lemma_check p ~is_committable:(fun ~site ~state ->
            Core.Committable.is_committable cm ~site ~state)
      in
      let key (v : Core.Nonblocking.violation) = (v.site, v.state, v.condition) in
      Alcotest.(check bool)
        (label ^ ": lemma = theorem")
        true
        (List.sort_uniq compare (List.map key exact.Core.Nonblocking.violations)
        = List.sort_uniq compare (List.map key lemma)))
    [ "decentralized-2pc"; "decentralized-3pc" ]

let test_lemma_verdict_agrees_on_central () =
  (* on central-site protocols the lemma over-approximates per site (it
     may flag the coordinator) but the overall verdict must agree *)
  List.iter
    (fun (label, expect_nonblocking) ->
      let p = (C.find label).C.build 3 in
      let graph = Core.Reachability.build p in
      let cm = Core.Committable.compute graph in
      let lemma =
        S.lemma_check p ~is_committable:(fun ~site ~state ->
            Core.Committable.is_committable cm ~site ~state)
      in
      Alcotest.(check bool) (label ^ " lemma verdict") expect_nonblocking (lemma = []))
    [ ("central-2pc", false); ("central-3pc", true); ("1pc", false) ]

let test_explored_counts () =
  let r = S.check (C.central_2pc 2) in
  Alcotest.(check bool) "explored something" true (r.S.explored > 0)

let test_limit () =
  Alcotest.(check bool) "limit raises" true
    (match S.check ~limit:3 (C.central_2pc 3) with
    | exception Core.Reachability.Too_large _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "catalog is synchronous within one transition" `Slow
      test_catalog_synchronous;
    Alcotest.test_case "hasty 2PC variant is not synchronous" `Quick test_hasty_2pc_not_synchronous;
    Alcotest.test_case "lemma = theorem on homogeneous protocols" `Quick
      test_lemma_agrees_with_theorem_homogeneous;
    Alcotest.test_case "lemma verdict on central-site protocols" `Quick
      test_lemma_verdict_agrees_on_central;
    Alcotest.test_case "exploration counting" `Quick test_explored_counts;
    Alcotest.test_case "exploration limit" `Quick test_limit;
  ]
