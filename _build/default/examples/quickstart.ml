(** Quickstart: commit one distributed transaction with the nonblocking
    central-site 3PC protocol on three sites, then watch the termination
    protocol save the day when the coordinator crashes.

    Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a protocol from the catalog and analyze it once.  The
     rulebook compiles the paper's fundamental-theorem analysis into the
     decision table backup coordinators use. *)
  let protocol = Core.Catalog.central_3pc 3 in
  let rulebook = Engine.Rulebook.compile protocol in
  Fmt.pr "protocol %s: %s, survives %d site failure(s)@.@." protocol.Core.Protocol.name
    (if rulebook.Engine.Rulebook.nonblocking then "NONBLOCKING" else "BLOCKING")
    rulebook.Engine.Rulebook.resilience;

  (* 2. A failure-free commit: every site votes yes. *)
  let result = Engine.Runtime.run (Engine.Runtime.config ~tracing:true rulebook) in
  Fmt.pr "--- failure-free run ---@.%a@.@." Engine.Runtime.pp_result result;

  (* 3. The paper's nightmare scenario: the coordinator reaches its
     decision and crashes before telling anyone.  Under 3PC the survivors
     elect a backup coordinator and terminate on their own. *)
  let plan =
    Engine.Failure_plan.crash_at_step ~site:1 ~step:1 ~mode:(Engine.Failure_plan.After_logging 0)
  in
  let result = Engine.Runtime.run (Engine.Runtime.config ~plan ~tracing:true rulebook) in
  Fmt.pr "--- coordinator crashes before announcing ---@.%a@.@." Engine.Runtime.pp_result result;
  Fmt.pr "trace of the termination protocol:@.";
  List.iter (fun e -> Fmt.pr "%8.2f  %s@." e.Sim.World.at e.Sim.World.what) result.Engine.Runtime.trace;

  (* 4. The same crash under 2PC blocks the survivors. *)
  let rulebook_2pc = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in
  let result = Engine.Runtime.run (Engine.Runtime.config ~plan rulebook_2pc) in
  Fmt.pr "@.--- same crash under 2PC ---@.%a@." Engine.Runtime.pp_result result;
  Fmt.pr "blocked survivors: %d (this is why the paper exists)@."
    result.Engine.Runtime.blocked_operational
