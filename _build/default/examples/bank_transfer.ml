(** Bank transfers on the distributed key-value store: the workload the
    paper's introduction motivates.  Money moves between accounts spread
    over four sites; a coordinator crash mid-commit shows the operational
    difference between blocking 2PC and nonblocking 3PC — under 2PC the
    in-doubt transfer pins its locks (and the affected accounts) until the
    coordinator comes back; under 3PC the survivors terminate it.

    Run with: dune exec examples/bank_transfer.exe *)

let accounts = 32
let initial_balance = 100
let expected_total = Kv.Workload.bank_total ~accounts ~initial_balance

let run ?(quiet = false) ~label ~protocol ~seed ~crashes ~recoveries () =
  let rng = Sim.Rng.create ~seed in
  let workload = Kv.Workload.bank rng ~n_txns:200 ~accounts ~arrival_rate:2.0 in
  let cfg =
    Kv.Db.config ~n_sites:4 ~protocol ~seed ~crashes ~recoveries
      ~initial_data:(Kv.Workload.bank_initial ~accounts ~initial_balance)
      ()
  in
  let r = Kv.Db.run cfg workload in
  if not quiet then begin
    Fmt.pr "--- %s ---@.%a@." label Kv.Db.pp_result r;
    Fmt.pr "conservation of money: expected %d, measured %d -> %s@.@." expected_total
      r.Kv.Db.storage_totals
      (if r.Kv.Db.storage_totals = expected_total then "OK"
       else "pending at crashed sites (applied on recovery)")
  end;
  r

let () =
  Fmt.pr "Bank workload: 200 transfers across %d accounts on 4 sites@.@." accounts;

  ignore
    (run ~label:"3PC, no failures" ~protocol:Kv.Node.Three_phase ~seed:2024 ~crashes:[]
       ~recoveries:[] ());
  ignore
    (run ~label:"2PC, no failures" ~protocol:Kv.Node.Two_phase ~seed:2024 ~crashes:[]
       ~recoveries:[] ());

  (* Site 2 hosts a quarter of the accounts and coordinates a quarter of
     the transfers; kill it mid-run.  Whether the crash catches transfers
     in their in-doubt window (prepared, awaiting the verdict) depends on
     timing, so aggregate over ten seeds. *)
  let crashes = [ (2, 25.0) ] in
  let seeds = List.init 10 (fun i -> 3000 + i) in
  let aggregate protocol =
    List.fold_left
      (fun (blocked, pending) seed ->
        let r = run ~quiet:true ~label:"" ~protocol ~seed ~crashes ~recoveries:[] () in
        assert r.Kv.Db.atomicity_ok;
        (blocked +. r.Kv.Db.blocked_time, pending + r.Kv.Db.pending))
      (0.0, 0) seeds
  in
  Fmt.pr "--- site 2 dies at t=25, 10 seeds, no recovery ---@.";
  let blocked2, pending2 = aggregate Kv.Node.Two_phase in
  let blocked3, pending3 = aggregate Kv.Node.Three_phase in
  Fmt.pr "=> total lock time pinned by in-doubt transfers: 2PC %.1f vs 3PC %.1f@." blocked2 blocked3;
  Fmt.pr "=> unresolved transfers at quiescence:           2PC %d  vs 3PC %d@.@." pending2 pending3;
  Fmt.pr "Under 2PC a transfer caught between its yes vote and the verdict@.";
  Fmt.pr "keeps its accounts locked until the coordinator returns; under 3PC@.";
  Fmt.pr "the surviving sites elect a backup and settle it immediately.@.@.";

  (* with recovery, even 2PC eventually resolves and the invariant holds *)
  let r =
    run ~label:"2PC, site 2 dies at t=25 and recovers at t=200" ~protocol:Kv.Node.Two_phase
      ~seed:3004 ~crashes ~recoveries:[ (2, 200.0) ] ()
  in
  assert r.Kv.Db.atomicity_ok;
  Fmt.pr "2PC resolves once the coordinator recovers — but only then.@."
