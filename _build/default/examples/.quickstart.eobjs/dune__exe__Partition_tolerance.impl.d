examples/partition_tolerance.ml: Core Engine Fmt List
