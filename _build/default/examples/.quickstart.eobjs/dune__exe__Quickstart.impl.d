examples/quickstart.ml: Core Engine Fmt List Sim
