examples/bank_transfer.ml: Fmt Kv List Sim
