examples/inventory.mli:
