examples/protocol_designer.mli:
