examples/quickstart.mli:
