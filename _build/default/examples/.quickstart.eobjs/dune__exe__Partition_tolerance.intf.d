examples/partition_tolerance.mli:
