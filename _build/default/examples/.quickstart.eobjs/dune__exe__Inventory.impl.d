examples/inventory.ml: Fmt Kv List Sim
