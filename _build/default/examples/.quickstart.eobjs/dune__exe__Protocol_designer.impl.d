examples/protocol_designer.ml: Core Fmt List
