(** Using the paper's design method as a library: take a blocking commit
    protocol, diagnose it with the fundamental nonblocking theorem, apply
    the buffer-state transformation, and verify the result — the full
    workflow of sections 5-7 of the paper, mechanized.

    Run with: dune exec examples/protocol_designer.exe *)

let () =
  (* Step 1: the subject — classical central-site 2PC on four sites. *)
  let p2 = Core.Catalog.central_2pc 4 in
  let graph = Core.Reachability.build p2 in
  Fmt.pr "subject: %s@." p2.Core.Protocol.name;
  Fmt.pr "reachable state graph: %a@.@." Core.Reachability.pp_stats (Core.Reachability.stats graph);

  (* Step 2: diagnose.  The theorem pinpoints the states from which a
     lone survivor can neither commit nor abort. *)
  let report = Core.Nonblocking.analyze graph in
  Fmt.pr "%a@.@." Core.Nonblocking.pp_report report;

  (* Step 3: check the hypothesis of the design lemma — synchronicity
     within one state transition. *)
  let sync = Core.Synchrony.check p2 in
  Fmt.pr "synchronous within one transition: %b (max lead %d)@.@." sync.Core.Synchrony.synchronous
    sync.Core.Synchrony.max_lead;

  (* Step 4: transform.  A buffer state is spliced in front of every
     commit transition reachable from a noncommittable state. *)
  let { Core.Synthesis.protocol = p3; buffers_added } = Core.Synthesis.buffer_protocol graph in
  Fmt.pr "buffer states added: %a@.@."
    Fmt.(list ~sep:comma (pair ~sep:(any " at site ") int string))
    (List.map (fun (s, b) -> (s, b)) buffers_added);

  (* Step 5: verify the result. *)
  let report3 = Core.Nonblocking.analyze_protocol p3 in
  Fmt.pr "%a@.@." Core.Nonblocking.pp_report report3;
  assert report3.Core.Nonblocking.nonblocking;

  (* Step 6: the canonical view.  Abstracting both the synthesized
     protocol and the paper's hand-written 3PC yields the same skeleton as
     transforming the canonical 2PC directly. *)
  let canonical = Core.Synthesis.buffer_skeleton Core.Skeleton.canonical_2pc in
  Fmt.pr "canonical transformation:@.%a@." Core.Skeleton.pp canonical;
  assert (Core.Skeleton.equal canonical Core.Skeleton.canonical_3pc);
  Fmt.pr "canonical 2PC + buffer state = canonical 3PC  (verified)@.@.";

  (* Step 7: and the termination protocol it enables. *)
  Fmt.pr "termination decision table for the synthesized protocol:@.";
  List.iter
    (fun state ->
      Fmt.pr "  backup in %-2s -> %a@." state Core.Termination_rule.pp_decision
        (Core.Termination_rule.decide_skeleton canonical ~state))
    [ "q"; "w"; "p"; "a"; "c" ];
  Fmt.pr "@.The protocol you just designed is Skeen's three-phase commit.@."
