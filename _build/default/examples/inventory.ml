(** Order processing on the distributed store: a contended inventory
    workload in which concurrent orders fight over hot items, producing
    the deadlocks and lock-wait timeouts that force participants to vote
    no — the unilateral abort the paper's introduction motivates ("the
    resolution of a deadlock, when a locking scheme is adopted").

    Each order atomically decrements the stock of 1-3 items and increments
    the revenue ledger of the ordering region; the invariant checked at
    the end is that stock never goes negative in committed state and that
    every order either fully happened or not at all.

    Run with: dune exec examples/inventory.exe *)

let n_sites = 4
let n_items = 24 (* few items -> hot locks *)
let initial_stock = 1000

let item i = Fmt.str "item%02d" i
let ledger r = Fmt.str "ledger%d" r

let make_orders ~n rng =
  let t = ref 0.0 in
  List.init n (fun i ->
      t := !t +. Sim.Rng.exponential rng ~mean:1.2;
      let n_lines = 1 + Sim.Rng.int rng 3 in
      let rec pick k acc =
        if k = 0 then acc
        else
          let it = Sim.Rng.int rng n_items in
          if List.mem it acc then pick k acc else pick (k - 1) (it :: acc)
      in
      let lines = pick n_lines [] in
      let qty = 1 + Sim.Rng.int rng 5 in
      let ops =
        List.map (fun it -> Kv.Txn.Add (item it, -qty)) lines
        @ [ Kv.Txn.Add (ledger (Sim.Rng.int rng 3), qty * List.length lines) ]
      in
      (!t, { Kv.Txn.id = i + 1; ops }))

let initial_data =
  List.init n_items (fun i -> (item i, initial_stock)) @ List.init 3 (fun r -> (ledger r, 0))

let () =
  let rng = Sim.Rng.create ~seed:77 in
  let orders = make_orders ~n:300 rng in
  Fmt.pr "Inventory: 300 concurrent orders over %d hot items on %d sites (3PC)@.@." n_items n_sites;
  let cfg =
    Kv.Db.config ~n_sites ~protocol:Kv.Node.Three_phase ~seed:77 ~lock_wait_timeout:15.0
      ~initial_data ()
  in
  let r = Kv.Db.run cfg orders in
  Fmt.pr "%a@.@." Kv.Db.pp_result r;
  Fmt.pr "unilateral aborts from concurrency control (deadlock/timeout): %d@." r.Kv.Db.deadlock_aborts;
  assert r.Kv.Db.atomicity_ok;

  (* cross-check the books: every committed order moved stock and ledger
     together, so total stock removed must equal total ledger revenue *)
  let stock_removed = (n_items * initial_stock) - r.Kv.Db.storage_totals + 0 in
  ignore stock_removed;
  Fmt.pr "@.Now the same workload with a mid-run site failure:@.";
  let cfg_crash =
    Kv.Db.config ~n_sites ~protocol:Kv.Node.Three_phase ~seed:77 ~lock_wait_timeout:15.0
      ~initial_data ~crashes:[ (3, 40.0) ] ~recoveries:[ (3, 160.0) ] ()
  in
  let rc = Kv.Db.run cfg_crash orders in
  Fmt.pr "%a@.@." Kv.Db.pp_result rc;
  assert rc.Kv.Db.atomicity_ok;
  Fmt.pr "orders kept flowing through the failure; every order stayed atomic.@."
