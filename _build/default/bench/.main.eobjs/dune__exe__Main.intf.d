bench/main.mli:
