bench/main.ml: Analyze Array Bechamel Benchmark Core Engine Experiments Fmt Hashtbl Instance Kv List Measure Sim Staged Sys Test Time Toolkit
