bench/experiments.ml: Core Engine Fmt Helpers_bench Kv List Option Sim String
