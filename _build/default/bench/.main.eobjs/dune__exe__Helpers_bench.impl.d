bench/helpers_bench.ml: Core
