(** Small shared helpers for the bench/experiment executable. *)

(** merged concurrency set of [state] as a sorted string list *)
let cs_ids graph state =
  let cs = Core.Concurrency.compute graph in
  Core.Concurrency.String_set.elements (Core.Concurrency.merged_ids cs ~state)
