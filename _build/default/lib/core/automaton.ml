(** The per-site nondeterministic finite state automaton.

    Transaction execution at each site is modelled as an FSA whose input and
    output tapes are the network (paper §2, "the formal model in brief").  A
    transition reads a string of messages addressed to the site, writes a
    string of messages, and moves to the next local state.

    The FSAs of commit protocols satisfy structural properties the paper
    enumerates: they are nondeterministic, their final states partition into
    commit and abort states, committing and aborting are irreversible, and
    their state diagrams are acyclic.  {!validate} checks all of these. *)

type state = {
  id : string;  (** unique within the automaton, e.g. ["q"], ["w"], ["p"] *)
  kind : Types.state_kind;
}
[@@deriving show { with_path = false }, eq, ord]

type transition = {
  from_state : string;
  to_state : string;
  consumes : Message.t list;
      (** messages that must all be present and addressed to this site; the
          empty list models an internal (spontaneous) decision such as the
          coordinator's own unilateral abort *)
  emits : Message.t list;
  vote : Types.vote option;
      (** [Some Yes] when firing this transition constitutes the site's yes
          vote on committing; used by committable-state inference *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  site : Types.site;
  states : state list;
  initial : string;
  transitions : transition list;
}

let make ~site ~states ~initial ~transitions = { site; states; initial; transitions }

let state_exn t id =
  match List.find_opt (fun s -> s.id = id) t.states with
  | Some s -> s
  | None -> Fmt.invalid_arg "Automaton.state_exn: unknown state %s at site %d" id t.site

let kind_of t id = (state_exn t id).kind

let transitions_from t id = List.filter (fun tr -> tr.from_state = id) t.transitions
let transitions_into t id = List.filter (fun tr -> tr.to_state = id) t.transitions

(** Successor state ids of [id] in the state diagram. *)
let successors t id =
  transitions_from t id |> List.map (fun tr -> tr.to_state) |> List.sort_uniq compare

(** Predecessor state ids of [id] in the state diagram. *)
let predecessors t id =
  transitions_into t id |> List.map (fun tr -> tr.from_state) |> List.sort_uniq compare

(** Adjacent states: predecessors and successors, as used by the paper's
    lemma for protocols synchronous within one state transition. *)
let adjacent t id = List.sort_uniq compare (successors t id @ predecessors t id)

let final_states t = List.filter (fun s -> Types.is_final s.kind) t.states
let commit_states t = List.filter (fun s -> Types.is_commit s.kind) t.states
let abort_states t = List.filter (fun s -> Types.is_abort s.kind) t.states

(** Structural problems {!validate} can report. *)
type violation =
  | Unknown_state of string  (** a transition mentions a state not declared *)
  | Cyclic of string list  (** the state diagram contains the given cycle *)
  | Final_with_successor of string  (** commit/abort must be irreversible *)
  | Unreachable of string  (** state not reachable from the initial state *)
  | Initial_not_declared
[@@deriving show { with_path = false }, eq]

(** [validate t] checks the structural properties of commit-protocol FSAs
    (paper §2): acyclicity, irreversibility of final states, reachability of
    every declared state. *)
let validate t =
  let errs = ref [] in
  let known id = List.exists (fun s -> s.id = id) t.states in
  if not (known t.initial) then errs := Initial_not_declared :: !errs;
  List.iter
    (fun tr ->
      if not (known tr.from_state) then errs := Unknown_state tr.from_state :: !errs;
      if not (known tr.to_state) then errs := Unknown_state tr.to_state :: !errs)
    t.transitions;
  (* Final states must have no outgoing transitions: irreversibility. *)
  List.iter
    (fun s ->
      if Types.is_final s.kind && transitions_from t s.id <> [] then
        errs := Final_with_successor s.id :: !errs)
    t.states;
  (* Cycle detection by DFS with colors. *)
  (if !errs = [] then
     let color = Hashtbl.create 16 in
     let rec dfs path id =
       match Hashtbl.find_opt color id with
       | Some `Done -> ()
       | Some `Active -> errs := Cyclic (List.rev (id :: path)) :: !errs
       | None ->
           Hashtbl.replace color id `Active;
           List.iter (dfs (id :: path)) (successors t id);
           Hashtbl.replace color id `Done
     in
     List.iter (fun s -> dfs [] s.id) t.states);
  (* Reachability from the initial state. *)
  (if !errs = [] then
     let seen = Hashtbl.create 16 in
     let rec walk id =
       if not (Hashtbl.mem seen id) then begin
         Hashtbl.add seen id ();
         List.iter walk (successors t id)
       end
     in
     walk t.initial;
     List.iter (fun s -> if not (Hashtbl.mem seen s.id) then errs := Unreachable s.id :: !errs) t.states);
  List.rev !errs

let is_valid t = validate t = []

(** [levels t] assigns each state its distance (in transitions) from the
    initial state.  Commit-protocol FSAs are acyclic and, in the protocols of
    the paper, every path from [q] to a state has the same length — the
    "phase" of the state.  Returns [Error id] naming a state with paths of
    two different lengths, which would make the phase notion ill-defined. *)
let levels t : ((string * int) list, string) result =
  let lvl = Hashtbl.create 16 in
  Hashtbl.replace lvl t.initial 0;
  let conflict = ref None in
  (* Breadth-first over the acyclic diagram; revisit checks consistency. *)
  let rec bfs frontier =
    match frontier with
    | [] -> ()
    | _ ->
        let next = ref [] in
        List.iter
          (fun id ->
            let d = Hashtbl.find lvl id in
            List.iter
              (fun succ ->
                match Hashtbl.find_opt lvl succ with
                | Some d' -> if d' <> d + 1 && !conflict = None then conflict := Some succ
                | None ->
                    Hashtbl.replace lvl succ (d + 1);
                    next := succ :: !next)
              (successors t id))
          frontier;
        bfs !next
  in
  bfs [ t.initial ];
  match !conflict with
  | Some id -> Error id
  | None -> Ok (Hashtbl.fold (fun k v acc -> (k, v) :: acc) lvl [] |> List.sort compare)

(** [longest_path t] is the maximum number of transitions on any path from
    the initial state to a final state — the number of {e phases} this
    site participates in ("a phase occurs when all sites executing the
    protocol make a state transition", paper §2).  Assumes the FSA is
    acyclic ({!validate}). *)
let longest_path t =
  let memo = Hashtbl.create 16 in
  let rec depth id =
    match Hashtbl.find_opt memo id with
    | Some d -> d
    | None ->
        let d =
          match successors t id with
          | [] -> 0
          | succs -> 1 + List.fold_left (fun acc s -> max acc (depth s)) 0 succs
        in
        Hashtbl.replace memo id d;
        d
  in
  depth t.initial

(** [enabled t state network] returns the transitions of [t] from [state]
    whose consumed messages are all present in [network] (addressed to this
    site).  Spontaneous transitions (empty [consumes]) are always enabled. *)
let enabled t state_id network =
  transitions_from t state_id
  |> List.filter (fun tr -> Message.Multiset.contains_all tr.consumes network)

let pp ppf t =
  Fmt.pf ppf "@[<v>FSA site %d (initial %s)@," t.site t.initial;
  List.iter
    (fun s -> Fmt.pf ppf "  state %-4s %a@," s.id Types.pp_state_kind s.kind)
    t.states;
  List.iter
    (fun tr ->
      Fmt.pf ppf "  %s -> %s  consumes %a emits %a%s@," tr.from_state tr.to_state
        Fmt.(brackets (list ~sep:comma Message.pp))
        tr.consumes
        Fmt.(brackets (list ~sep:comma Message.pp))
        tr.emits
        (match tr.vote with
        | Some Types.Yes -> "  [votes yes]"
        | Some Types.No -> "  [votes no]"
        | None -> ""))
    t.transitions;
  Fmt.pf ppf "@]"
