(** Global transaction states (paper §3): the local states of all FSAs
    plus the outstanding messages in the network, extended with the
    yes-vote flags the committability analysis requires. *)

type t = {
  locals : string array;  (** local state id of each site, index = site − 1 *)
  voted_yes : bool array;
  network : Message.Multiset.t;
}

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val local : t -> Types.site -> string
val initial : Protocol.t -> t

val is_final : Protocol.t -> t -> bool
(** All local states are final. *)

val is_inconsistent : Protocol.t -> t -> bool
(** Contains both a local commit and a local abort state — an atomicity
    violation; unreachable in any correct commit protocol. *)

val fire : t -> site:Types.site -> Automaton.transition -> t
(** One step of one site.
    @raise Invalid_argument if the transition is not enabled. *)

val successors : Protocol.t -> t -> (Types.site * Automaton.transition * t) list
(** All immediately reachable successors; transitions at different sites
    are asynchronous, so any site with an enabled transition may move. *)

val is_terminal : Protocol.t -> t -> bool
(** No immediately reachable successors.  A terminal state that is not
    final is a deadlocked state. *)

val pp : Format.formatter -> t -> unit
val show : t -> string
