(** The decision rule for backup coordinators (paper §8): commit iff the
    concurrency set of the backup's current local state contains a commit
    state; otherwise abort.  For canonical 3PC: commit iff the state is
    in \{p, c\}. *)

type decision = Types.outcome = Committed | Aborted

val decide : Concurrency.t -> site:Types.site -> state:string -> decision
(** The literal rule on exact concurrency sets. *)

val decide_skeleton : Skeleton.t -> state:string -> decision
(** The rule at the canonical level (adjacency concurrency sets). *)

val table : Reachability.t -> (Types.site * string * decision) list
(** The full decision table: every occupiable (site, state) pair. *)

val unsafe_states : Reachability.t -> (Types.site * string) list
(** States where the rule's decision is unsafe (commit despite a
    co-occupiable abort or noncommittable state; abort despite a
    co-occupiable commit).  Empty exactly when the protocol satisfies the
    fundamental theorem — the blocking states of 2PC show up here. *)

val pp_decision : Format.formatter -> decision -> unit
