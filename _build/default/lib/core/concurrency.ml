(** Concurrency sets (paper §3): given that site [k] occupies local state
    [s], the concurrency set [C(s)] is the set of local states that may be
    concurrently occupied by the {e other} sites, derived from the reachable
    state graph.

    Computed exactly, per (site, state) pair, and also merged per state id —
    the form the paper uses for homogeneous (canonical/decentralized)
    protocols where every site runs the same FSA. *)

module String_set = Set.Make (String)

module Pair_set = Set.Make (struct
  type t = Types.site * string

  let compare = compare
end)

type t = {
  graph : Reachability.t;
  exact : (Types.site * string, Pair_set.t) Hashtbl.t;
      (** (site, state id) -> set of (other site, state id) co-occupiable *)
}

(** [compute g] derives every concurrency set of the protocol from its
    reachable state graph in one sweep over the nodes. *)
let compute (graph : Reachability.t) : t =
  let exact = Hashtbl.create 64 in
  let add key v =
    let cur = Option.value ~default:Pair_set.empty (Hashtbl.find_opt exact key) in
    Hashtbl.replace exact key (Pair_set.add v cur)
  in
  let p = graph.Reachability.protocol in
  let sites = Protocol.sites p in
  Reachability.iter_nodes
    (fun node ->
      let locals = node.Reachability.state.Global.locals in
      List.iter
        (fun i ->
          List.iter
            (fun j -> if i <> j then add (i, locals.(i - 1)) (j, locals.(j - 1)))
            sites)
        sites)
    graph;
  { graph; exact }

(** [set t ~site ~state] is the exact concurrency set of [state] at [site]:
    every (other site, state) pair co-occupiable with it.  Empty if the
    (site, state) pair is unreachable. *)
let set t ~site ~state =
  Option.value ~default:Pair_set.empty (Hashtbl.find_opt t.exact (site, state))

(** [set_ids t ~site ~state] projects {!set} onto state ids. *)
let set_ids t ~site ~state =
  Pair_set.fold (fun (_, id) acc -> String_set.add id acc) (set t ~site ~state) String_set.empty

(** [merged_ids t ~state] is the union over all sites declaring [state] of
    {!set_ids} — the paper's per-state concurrency set for homogeneous
    protocols, e.g. CS(w) = \{q, w, a, c\} in canonical 2PC. *)
let merged_ids t ~state =
  let p = t.graph.Reachability.protocol in
  Protocol.sites p
  |> List.fold_left
       (fun acc site -> String_set.union acc (set_ids t ~site ~state))
       String_set.empty

(** Kinds present in the concurrency set of [state] at [site]. *)
let kinds t ~site ~state =
  let p = t.graph.Reachability.protocol in
  Pair_set.fold
    (fun (j, id) acc -> Automaton.kind_of (Protocol.automaton p j) id :: acc)
    (set t ~site ~state) []
  |> List.sort_uniq compare

let contains_commit t ~site ~state = List.exists Types.is_commit (kinds t ~site ~state)
let contains_abort t ~site ~state = List.exists Types.is_abort (kinds t ~site ~state)

(** States of [site] that actually occur in some reachable global state. *)
let occupied_states t ~site =
  Hashtbl.fold (fun (s, id) _ acc -> if s = site then id :: acc else acc) t.exact []
  |> List.sort_uniq compare

let pp_ids ppf ids =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma string) (String_set.elements ids)
