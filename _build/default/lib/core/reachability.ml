(** The reachable state graph (paper §3): all global states reachable from
    the transaction's initial global state, built by breadth-first search
    with hash-consed nodes.

    The graph grows exponentially with the number of sites; the paper notes
    that in practice it seldom needs to be built — the adjacency lemma
    suffices for synchronous protocols — but we build it exactly for small
    [n] both to regenerate the paper's figure and to cross-check the fast
    path. *)

module Tbl = Hashtbl.Make (Global)

type node = {
  state : Global.t;
  index : int;  (** BFS discovery order, 0 = initial state *)
  mutable succs : (Types.site * Automaton.transition * int) list;
      (** outgoing edges: (site that moved, transition fired, target index) *)
}

type t = {
  protocol : Protocol.t;
  nodes : node array;  (** indexed by node [index] *)
  table : int Tbl.t;  (** global state -> index *)
}

exception Too_large of int

(** [build ?limit p] explores the full reachable state graph of [p].
    Raises {!Too_large} if more than [limit] (default 2_000_000) global
    states are discovered. *)
let build ?(limit = 2_000_000) (p : Protocol.t) : t =
  let table = Tbl.create 4096 in
  let nodes = ref [] and n_nodes = ref 0 in
  let queue = Queue.create () in
  let intern state =
    match Tbl.find_opt table state with
    | Some ix -> (ix, false)
    | None ->
        let ix = !n_nodes in
        if ix >= limit then raise (Too_large ix);
        incr n_nodes;
        Tbl.add table state ix;
        let node = { state; index = ix; succs = [] } in
        nodes := node :: !nodes;
        Queue.add node queue;
        (ix, true)
  in
  let init = Global.initial p in
  ignore (intern init);
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    let succs =
      Global.successors p node.state
      |> List.map (fun (site, tr, s') ->
             let ix, _fresh = intern s' in
             (site, tr, ix))
    in
    node.succs <- succs
  done;
  let arr = Array.make !n_nodes (List.hd !nodes) in
  List.iter (fun node -> arr.(node.index) <- node) !nodes;
  { protocol = p; nodes = arr; table }

let n_nodes t = Array.length t.nodes
let n_edges t = Array.fold_left (fun acc node -> acc + List.length node.succs) 0 t.nodes
let node t ix = t.nodes.(ix)
let initial_node t = t.nodes.(0)
let iter_nodes f t = Array.iter f t.nodes

let fold_nodes f t acc = Array.fold_left (fun acc node -> f node acc) acc t.nodes

(** Indices of terminal states (no successors). *)
let terminal_nodes t =
  Array.to_list t.nodes |> List.filter (fun node -> node.succs = [])

(** Terminal states that are not final: deadlocked states. *)
let deadlocked_nodes t =
  terminal_nodes t |> List.filter (fun node -> not (Global.is_final t.protocol node.state))

(** Reachable states containing both a local commit and a local abort —
    atomicity violations.  Empty for every correct commit protocol. *)
let inconsistent_nodes t =
  Array.to_list t.nodes |> List.filter (fun node -> Global.is_inconsistent t.protocol node.state)

(** The possible global verdicts: which final outcomes are reachable. *)
let reachable_outcomes t =
  let commit = ref false and abort = ref false in
  iter_nodes
    (fun node ->
      if Global.is_final t.protocol node.state then
        match node.state.Global.locals.(0) with
        | id ->
            let kind = Automaton.kind_of (Protocol.automaton t.protocol 1) id in
            if Types.is_commit kind then commit := true;
            if Types.is_abort kind then abort := true)
    t;
  (!commit, !abort)

(** Statistics summarising a reachable state graph, as printed by the
    experiment harness. *)
type stats = {
  states : int;
  edges : int;
  final : int;
  terminal : int;
  deadlocked : int;
  inconsistent : int;
  commit_reachable : bool;
  abort_reachable : bool;
}

let stats t =
  let commit_reachable, abort_reachable = reachable_outcomes t in
  {
    states = n_nodes t;
    edges = n_edges t;
    final =
      fold_nodes (fun node acc -> if Global.is_final t.protocol node.state then acc + 1 else acc) t 0;
    terminal = List.length (terminal_nodes t);
    deadlocked = List.length (deadlocked_nodes t);
    inconsistent = List.length (inconsistent_nodes t);
    commit_reachable;
    abort_reachable;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>global states : %d@,edges         : %d@,final states  : %d@,terminal      : %d@,\
     deadlocked    : %d@,inconsistent  : %d@,commit reachable: %b@,abort reachable : %b@]"
    s.states s.edges s.final s.terminal s.deadlocked s.inconsistent s.commit_reachable
    s.abort_reachable
