(** The per-site nondeterministic finite state automaton of the paper's
    formal model: transitions read a string of messages addressed to the
    site, write a string of messages, and move to the next local state. *)

type state = { id : string; kind : Types.state_kind }

val pp_state : Format.formatter -> state -> unit
val show_state : state -> string
val equal_state : state -> state -> bool
val compare_state : state -> state -> int

type transition = {
  from_state : string;
  to_state : string;
  consumes : Message.t list;
      (** messages that must all be present and addressed to this site;
          empty models an internal (spontaneous) decision *)
  emits : Message.t list;
  vote : Types.vote option;
      (** [Some Yes] when firing constitutes the site's yes vote *)
}

val pp_transition : Format.formatter -> transition -> unit
val show_transition : transition -> string
val equal_transition : transition -> transition -> bool

type t = {
  site : Types.site;
  states : state list;
  initial : string;
  transitions : transition list;
}

val make :
  site:Types.site -> states:state list -> initial:string -> transitions:transition list -> t

val state_exn : t -> string -> state
(** @raise Invalid_argument on an unknown state id. *)

val kind_of : t -> string -> Types.state_kind
val transitions_from : t -> string -> transition list
val transitions_into : t -> string -> transition list

val successors : t -> string -> string list
(** Successor state ids in the state diagram, sorted and deduplicated. *)

val predecessors : t -> string -> string list

val adjacent : t -> string -> string list
(** Predecessors and successors — the adjacency used by the paper's lemma
    for protocols synchronous within one state transition. *)

val final_states : t -> state list
val commit_states : t -> state list
val abort_states : t -> state list

(** Structural problems {!validate} can report. *)
type violation =
  | Unknown_state of string
  | Cyclic of string list
  | Final_with_successor of string  (** commit/abort must be irreversible *)
  | Unreachable of string
  | Initial_not_declared

val pp_violation : Format.formatter -> violation -> unit
val show_violation : violation -> string
val equal_violation : violation -> violation -> bool

val validate : t -> violation list
(** Checks the structural properties of commit-protocol FSAs (paper §2):
    acyclicity, irreversibility of final states, reachability of every
    declared state. *)

val is_valid : t -> bool

val levels : t -> ((string * int) list, string) result
(** Distance in transitions from the initial state, when well defined
    ("the phase of the state"); [Error id] names a state reachable by
    paths of two different lengths. *)

val longest_path : t -> int
(** Maximum transitions from the initial state to a final state — the
    number of phases this site participates in.  Assumes acyclicity. *)

val enabled : t -> string -> Message.Multiset.t -> transition list
(** [enabled t state network]: transitions from [state] whose consumed
    messages are all present.  Spontaneous transitions are always
    enabled. *)

val pp : Format.formatter -> t -> unit
