(** Concurrency sets (paper §3): given that site [k] occupies local state
    [s], the concurrency set C(s) is the set of local states the other
    sites may concurrently occupy, derived exactly from the reachable
    state graph. *)

module String_set : Set.S with type elt = string

module Pair_set : Set.S with type elt = Types.site * string

type t

val compute : Reachability.t -> t
(** One sweep over the graph derives every concurrency set. *)

val set : t -> site:Types.site -> state:string -> Pair_set.t
(** Exact concurrency set: every (other site, state) pair co-occupiable
    with [state] at [site].  Empty if the pair is unreachable. *)

val set_ids : t -> site:Types.site -> state:string -> String_set.t
(** {!set} projected onto state ids. *)

val merged_ids : t -> state:string -> String_set.t
(** Union of {!set_ids} over all sites — the paper's per-state
    concurrency set for homogeneous protocols, e.g. CS(w) = \{q,w,a,c\}
    in canonical 2PC. *)

val kinds : t -> site:Types.site -> state:string -> Types.state_kind list
val contains_commit : t -> site:Types.site -> state:string -> bool
val contains_abort : t -> site:Types.site -> state:string -> bool

val occupied_states : t -> site:Types.site -> string list
(** States of [site] occurring in some reachable global state, sorted. *)

val pp_ids : Format.formatter -> String_set.t -> unit
