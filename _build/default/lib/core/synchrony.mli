(** Synchronicity within one state transition (paper §4): one site never
    leads another by more than one state transition — the hypothesis of
    the adjacency lemma and the buffer-state design method. *)

type result = {
  synchronous : bool;
  max_lead : int;  (** largest observed difference in transitions made *)
  witness : (Global.t * int list) option;
      (** a reachable state with lead > 1, when not synchronous *)
  explored : int;
}

val check : ?limit:int -> Protocol.t -> result
(** Explores all executions, tracking per-site transition counts.
    @raise Reachability.Too_large beyond [limit] (default 2_000_000). *)

val lemma_check :
  Protocol.t ->
  is_committable:(site:Types.site -> state:string -> bool) ->
  Nonblocking.violation list
(** The adjacency lemma (paper §6), evaluated syntactically on the FSAs:
    no state adjacent to both a commit and an abort state, no
    noncommittable state adjacent to a commit state.  Sound only for
    synchronous protocols; exact on homogeneous ones, over-approximate on
    central-site protocols (it may flag the coordinator) — the overall
    verdict still agrees with {!Nonblocking.analyze} on the catalog. *)
