(** Messages on the network tape.

    The paper models the network as a common input/output tape: a state
    transition reads a (nonempty) string of messages addressed to the site
    and writes a string of messages.  A message is identified by its name
    and its (sender, receiver) pair — the decentralized protocols subscript
    messages with both, e.g. [yes_ij]. *)

type t = {
  name : string;  (** e.g. ["xact"], ["yes"], ["no"], ["prepare"], ["ack"], ["commit"], ["abort"] *)
  src : Types.site;
  dst : Types.site;
}
[@@deriving eq, ord]

let make ~name ~src ~dst = { name; src; dst }

let pp ppf m = Fmt.pf ppf "%s(%a->%a)" m.name Types.pp_site m.src Types.pp_site m.dst

let show m = Fmt.to_to_string pp m

(* Canonical message names used by the protocol catalog. *)
let xact = "xact"
let request = "request"
let yes = "yes"
let no = "no"
let commit = "commit"
let abort = "abort"
let prepare = "prepare"
let ack = "ack"

(** A multiset of messages, kept as a sorted list so that global states
    compare and hash structurally.  The network contents of a global state
    is such a multiset. *)
module Multiset = struct
  let pp_one = pp

  type msg = t [@@deriving eq, ord]
  type t = msg list [@@deriving eq, ord]

  let empty : t = []
  let of_list ms : t = List.sort compare_msg ms
  let to_list (t : t) = t
  let cardinal = List.length

  let add m (t : t) : t =
    let rec ins = function
      | [] -> [ m ]
      | x :: rest as l -> if compare_msg m x <= 0 then m :: l else x :: ins rest
    in
    ins t

  let add_all ms t = List.fold_left (fun acc m -> add m acc) t ms

  (** [remove m t] removes one occurrence of [m]; raises [Not_found] if
      absent. *)
  let remove m (t : t) : t =
    let rec rm = function
      | [] -> raise Not_found
      | x :: rest -> if equal_msg m x then rest else x :: rm rest
    in
    rm t

  let mem m (t : t) = List.exists (equal_msg m) t

  (** [remove_all ms t] removes one occurrence of each message in [ms];
      returns [None] if any is missing (the transition is not enabled). *)
  let remove_all ms (t : t) : t option =
    let rec go t = function
      | [] -> Some t
      | m :: rest -> ( match remove m t with exception Not_found -> None | t' -> go t' rest)
    in
    go t ms

  let contains_all ms t = match remove_all ms t with Some _ -> true | None -> false
  let pp ppf (t : t) = Fmt.pf ppf "[%a]" Fmt.(list ~sep:comma pp_one) t
end
