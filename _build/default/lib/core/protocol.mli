(** An n-site commit protocol: one FSA per participating site plus the
    initial network contents (the transaction request injected by the
    environment). *)

(** The two prevalent paradigms the paper considers. *)
type paradigm = Central_site | Decentralized

val pp_paradigm : Format.formatter -> paradigm -> unit
val show_paradigm : paradigm -> string
val equal_paradigm : paradigm -> paradigm -> bool

type t = {
  name : string;
  paradigm : paradigm;
  automata : Automaton.t array;  (** indexed by site − 1; site ids are 1..n *)
  initial_network : Message.t list;
}

val n_sites : t -> int
val sites : t -> Types.site list

val automaton : t -> Types.site -> Automaton.t
(** [automaton t site] is the FSA run by [site] (1-based).
    @raise Invalid_argument if [site] is out of range. *)

val make :
  name:string ->
  paradigm:paradigm ->
  automata:Automaton.t array ->
  initial_network:Message.t list ->
  t
(** Validates every FSA and its claimed site id.
    @raise Invalid_argument on a structural violation. *)

val state_ids : t -> string list
(** All distinct local state ids across sites, sorted. *)

val phases : t -> int
(** The number of phases: the maximum over sites of the longest
    transition path — 1 for 1PC, 2 for 2PC, 3 for 3PC. *)

val homogeneous : t -> bool
(** Whether every site runs a structurally identical FSA (modulo message
    subscripts) — the decentralized model. *)

val pp : Format.formatter -> t -> unit
