(** Messages on the network tape.

    The paper models the network as a common input/output tape: a state
    transition reads a (nonempty) string of messages addressed to the site
    and writes a string of messages.  A message is identified by its name
    and its (sender, receiver) pair — the decentralized protocols
    subscript messages with both, e.g. [yes_ij]. *)

type t = { name : string; src : Types.site; dst : Types.site }

val make : name:string -> src:Types.site -> dst:Types.site -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

(** Canonical message names used by the protocol catalog. *)

val xact : string
val request : string
val yes : string
val no : string
val commit : string
val abort : string
val prepare : string
val ack : string

(** A multiset of messages, kept canonically sorted so global states
    compare and hash structurally.  The network contents of a global state
    is such a multiset. *)
module Multiset : sig
  type msg = t

  type t
  (** the multiset *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val empty : t
  val of_list : msg list -> t
  val to_list : t -> msg list
  val cardinal : t -> int
  val add : msg -> t -> t
  val add_all : msg list -> t -> t

  val remove : msg -> t -> t
  (** removes one occurrence; raises [Not_found] if absent *)

  val mem : msg -> t -> bool

  val remove_all : msg list -> t -> t option
  (** [remove_all ms t] removes one occurrence of each message of [ms];
      [None] if any is missing (the transition is not enabled). *)

  val contains_all : msg list -> t -> bool
  val pp : Format.formatter -> t -> unit
end
