(** Canonical protocol skeletons (paper §6, "The similarity between 2PC
    protocols").

    The paper abstracts both 2PC paradigms into one {e canonical} protocol:
    a single acyclic state diagram (q, w, a, c) that every site traverses,
    with the protocol synchronous within one state transition.  At this
    level the concurrency set of a state is computable syntactically —
    [C(s) = \{s\} ∪ adjacent(s)] — and the design method is a pure graph
    transformation: insert a buffer state on every path from a
    noncommittable state into a commit state.

    The skeleton carries committability as a marking (at this abstraction
    there are no votes to infer it from); {!of_protocol_analysis} builds a
    skeleton from a full protocol's exact analysis so that the two levels
    can be cross-checked. *)

module String_set = Set.Make (String)

type state = { id : string; kind : Types.state_kind; committable : bool }
[@@deriving show { with_path = false }, eq]

type t = {
  name : string;
  states : state list;
  initial : string;
  edges : (string * string) list;  (** directed: one state transition *)
}

let make ~name ~states ~initial ~edges =
  let known id = List.exists (fun s -> s.id = id) states in
  if not (known initial) then Fmt.invalid_arg "Skeleton.make: unknown initial state %s" initial;
  List.iter
    (fun (a, b) ->
      if not (known a && known b) then Fmt.invalid_arg "Skeleton.make: unknown edge %s->%s" a b)
    edges;
  { name; states; initial; edges }

let state_exn t id =
  match List.find_opt (fun s -> s.id = id) t.states with
  | Some s -> s
  | None -> Fmt.invalid_arg "Skeleton.state_exn: unknown state %s" id

let kind_of t id = (state_exn t id).kind
let is_committable t id = (state_exn t id).committable

let successors t id = List.filter_map (fun (a, b) -> if a = id then Some b else None) t.edges
let predecessors t id = List.filter_map (fun (a, b) -> if b = id then Some a else None) t.edges

let adjacent t id = List.sort_uniq compare (successors t id @ predecessors t id)

(** The concurrency set of a state in a protocol synchronous within one
    state transition: the state itself plus its adjacent states (paper §6,
    "Concurrency sets in the canonical 2PC protocol"). *)
let concurrency_set t id = String_set.of_list (id :: adjacent t id)

(** The adjacency lemma, exactly as the paper states it: nonblocking iff no
    local state is adjacent to both a commit and an abort state, and no
    noncommittable state is adjacent to a commit state. *)
let lemma_violations t =
  List.concat_map
    (fun s ->
      let adj_kinds = List.map (kind_of t) (adjacent t s.id) in
      let has_commit = List.exists Types.is_commit adj_kinds
      and has_abort = List.exists Types.is_abort adj_kinds in
      let v1 = if has_commit && has_abort then [ (s.id, `Both_commit_and_abort) ] else [] in
      let v2 =
        if has_commit && not s.committable then [ (s.id, `Noncommittable_sees_commit) ] else []
      in
      v1 @ v2)
    t.states

let is_nonblocking t = lemma_violations t = []

(** The canonical two-phase commit skeleton of the paper's figure:
    q → w (vote yes), q → a (vote no), w → c, w → a.  Its single
    committable state is [c]. *)
let canonical_2pc =
  make ~name:"canonical-2pc"
    ~states:
      [
        { id = "q"; kind = Types.Initial; committable = false };
        { id = "w"; kind = Types.Wait; committable = false };
        { id = "a"; kind = Types.Abort; committable = false };
        { id = "c"; kind = Types.Commit; committable = true };
      ]
    ~initial:"q"
    ~edges:[ ("q", "w"); ("q", "a"); ("w", "c"); ("w", "a") ]

(** The canonical three-phase commit skeleton: 2PC with the buffer state
    [p] (prepared to commit) between [w] and [c].  Committable states:
    [p] and [c]. *)
let canonical_3pc =
  make ~name:"canonical-3pc"
    ~states:
      [
        { id = "q"; kind = Types.Initial; committable = false };
        { id = "w"; kind = Types.Wait; committable = false };
        { id = "p"; kind = Types.Buffer; committable = true };
        { id = "a"; kind = Types.Abort; committable = false };
        { id = "c"; kind = Types.Commit; committable = true };
      ]
    ~initial:"q"
    ~edges:[ ("q", "w"); ("q", "a"); ("w", "p"); ("w", "a"); ("p", "c") ]

(** The canonical one-phase commit skeleton: the client decision is relayed;
    there is no voting, so consent is implicit and [c] is committable —
    1PC blocks because q is adjacent to both [a] and [c]. *)
let canonical_1pc =
  make ~name:"canonical-1pc"
    ~states:
      [
        { id = "q"; kind = Types.Initial; committable = false };
        { id = "a"; kind = Types.Abort; committable = false };
        { id = "c"; kind = Types.Commit; committable = true };
      ]
    ~initial:"q"
    ~edges:[ ("q", "c"); ("q", "a") ]

(** [of_protocol_analysis graph] abstracts a full (homogeneous) protocol
    into its skeleton: state ids and kinds from site 1's FSA, edges from
    site 1's transitions, committability from the exact inference.  Used to
    cross-check the canonical figures against the message-level catalog. *)
let of_protocol_analysis (graph : Reachability.t) : t =
  let p = graph.Reachability.protocol in
  let cm = Committable.compute graph in
  let a = Protocol.automaton p 1 in
  let committable_everywhere id =
    Protocol.sites p
    |> List.for_all (fun site ->
           let auto = Protocol.automaton p site in
           (not (List.exists (fun s -> s.Automaton.id = id) auto.Automaton.states))
           || Committable.is_committable cm ~site ~state:id)
  in
  make ~name:(p.Protocol.name ^ "-skeleton")
    ~states:
      (List.map
         (fun (s : Automaton.state) ->
           { id = s.Automaton.id; kind = s.Automaton.kind; committable = committable_everywhere s.Automaton.id })
         a.Automaton.states)
    ~initial:a.Automaton.initial
    ~edges:
      (List.map
         (fun (tr : Automaton.transition) -> (tr.Automaton.from_state, tr.Automaton.to_state))
         a.Automaton.transitions
      |> List.sort_uniq compare)

let equal a b =
  a.initial = b.initial
  && List.sort compare a.states = List.sort compare b.states
  && List.sort_uniq compare a.edges = List.sort_uniq compare b.edges

let pp ppf t =
  Fmt.pf ppf "@[<v>skeleton %s (initial %s)@," t.name t.initial;
  List.iter
    (fun s ->
      Fmt.pf ppf "  %-4s %a%s@," s.id Types.pp_state_kind s.kind
        (if s.committable then " [committable]" else ""))
    t.states;
  List.iter (fun (a, b) -> Fmt.pf ppf "  %s -> %s@," a b) t.edges;
  Fmt.pf ppf "@]"
