(** The design method for nonblocking protocols (paper §6): insert a
    {e buffer state} ("prepare to commit") on every path from a
    noncommittable state into a commit state. *)

val buffer_skeleton : Skeleton.t -> Skeleton.t
(** Pure graph rewrite on a canonical skeleton; on
    {!Skeleton.canonical_2pc} it yields exactly
    {!Skeleton.canonical_3pc}.  Identity on skeletons with no offending
    edges. *)

type protocol_result = {
  protocol : Protocol.t;
  buffers_added : (Types.site * string) list;  (** buffer-state names per site *)
}

val buffer_protocol : Reachability.t -> protocol_result
(** Message-level transformation of a protocol of either paradigm,
    locating the offending transitions via the exact committability of the
    input graph.  Central site: the coordinator's commit announcement
    becomes a prepare round followed by an ack-collected commit round;
    slaves gain the prepared state.  Decentralized: one extra interchange
    of [prepare] messages precedes committing.  On the catalog 2PC
    protocols this reconstructs the corresponding 3PC. *)
