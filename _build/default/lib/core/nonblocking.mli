(** The fundamental nonblocking theorem (paper §5): a protocol is
    nonblocking iff at every site (1) no state's concurrency set contains
    both an abort and a commit state, and (2) no noncommittable state's
    concurrency set contains a commit state. *)

type violation = {
  site : Types.site;
  state : string;
  condition : [ `Both_commit_and_abort | `Noncommittable_sees_commit ];
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  protocol_name : string;
  violations : violation list;
  satisfying_sites : Types.site list;
      (** sites all of whose occupiable states satisfy both conditions *)
  resilience : int;
      (** nonblocking w.r.t. this many site failures (the corollary:
          k − 1 where k = |satisfying sites|) *)
  nonblocking : bool;
}

val analyze : Reachability.t -> report
(** Evaluates both conditions for every occupiable local state, using
    exact concurrency sets and inferred committability. *)

val analyze_protocol : ?limit:int -> Protocol.t -> report
(** Builds the graph and analyzes in one call. *)

val pp_report : Format.formatter -> report -> unit
