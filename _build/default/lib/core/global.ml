(** Global transaction states (paper §3, "The definition of a global
    transaction state").

    A global state comprises the local states of all FSAs and the
    outstanding messages in the network.  We additionally record which sites
    have cast a yes vote; this is path information the paper's committable
    analysis needs ("occupancy of that state implies that all sites have
    voted yes") and is part of "the complete processing state of a
    transaction". *)

type t = {
  locals : string array;  (** local state id of each site, index = site - 1 *)
  voted_yes : bool array;  (** whether each site has cast a yes vote *)
  network : Message.Multiset.t;
}
[@@deriving eq, ord]

let local t site = t.locals.(site - 1)

let initial (p : Protocol.t) =
  let n = Protocol.n_sites p in
  {
    locals = Array.init n (fun i -> (Protocol.automaton p (i + 1)).Automaton.initial);
    voted_yes = Array.make n false;
    network = Message.Multiset.of_list p.Protocol.initial_network;
  }

(** A global state is {e final} if all local states are final. *)
let is_final (p : Protocol.t) t =
  Array.to_list t.locals
  |> List.mapi (fun i id -> Automaton.kind_of (Protocol.automaton p (i + 1)) id)
  |> List.for_all Types.is_final

(** A global state is {e inconsistent} if it contains both a local commit
    state and a local abort state.  A protocol preserving atomicity can have
    no reachable inconsistent state. *)
let is_inconsistent (p : Protocol.t) t =
  let kinds =
    Array.to_list t.locals
    |> List.mapi (fun i id -> Automaton.kind_of (Protocol.automaton p (i + 1)) id)
  in
  List.exists Types.is_commit kinds && List.exists Types.is_abort kinds

(** One step of one site: fire [transition] at [site].  Assumes the
    transition is enabled (its consumed messages are present). *)
let fire (t : t) ~site (tr : Automaton.transition) =
  let network =
    match Message.Multiset.remove_all tr.consumes t.network with
    | Some net -> Message.Multiset.add_all tr.emits net
    | None -> invalid_arg "Global.fire: transition not enabled"
  in
  let locals = Array.copy t.locals in
  locals.(site - 1) <- tr.to_state;
  let voted_yes = Array.copy t.voted_yes in
  (match tr.vote with Some Types.Yes -> voted_yes.(site - 1) <- true | Some Types.No | None -> ());
  { locals; voted_yes; network }

(** All immediately reachable successor states, with the site and transition
    that produces each.  State transitions at different sites are
    asynchronous, so any site with an enabled transition may move. *)
let successors (p : Protocol.t) (t : t) : (Types.site * Automaton.transition * t) list =
  Protocol.sites p
  |> List.concat_map (fun site ->
         let a = Protocol.automaton p site in
         Automaton.enabled a (local t site) t.network
         |> List.map (fun tr -> (site, tr, fire t ~site tr)))

(** A {e terminal} state has no immediately reachable successors; a terminal
    state that is not final is a {e deadlocked} state. *)
let is_terminal p t = successors p t = []

let hash t =
  Hashtbl.hash (t.locals, t.voted_yes, List.map Message.show (Message.Multiset.to_list t.network))

let pp ppf t =
  Fmt.pf ppf "@[<h><%a | voted=%a | %a>@]"
    Fmt.(array ~sep:comma string)
    t.locals
    Fmt.(array ~sep:comma bool)
    t.voted_yes Message.Multiset.pp t.network

let show = Fmt.to_to_string pp
