(** Synchronicity within one state transition (paper §4).

    A protocol is {e synchronous within one state transition} if one site
    never leads another by more than one state transition during any
    execution.  Both catalog paradigms have this property; it is the
    hypothesis of the adjacency lemma and of the buffer-state design method.

    Checking it requires counting transitions made, which is path
    information not present in a {!Global.t}; we therefore run a dedicated
    breadth-first search whose states are (global state, step vector)
    pairs.  Commit-protocol FSAs are acyclic, so step counts are bounded and
    the search terminates. *)

type counted = { g : Global.t; steps : int list } [@@deriving eq]

let hash_counted c = Hashtbl.hash (Global.hash c.g, c.steps)

module Tbl = Hashtbl.Make (struct
  type t = counted

  let equal = equal_counted
  let hash = hash_counted
end)

type result = {
  synchronous : bool;
  max_lead : int;  (** largest observed difference in transitions made *)
  witness : (Global.t * int list) option;
      (** a reachable state with lead > 1, when not synchronous *)
  explored : int;
}

let lead steps =
  match steps with
  | [] -> 0
  | s :: rest ->
      let mn, mx = List.fold_left (fun (mn, mx) x -> (min mn x, max mx x)) (s, s) rest in
      mx - mn

(** [check ?limit p] explores all executions of [p], tracking per-site
    transition counts, and reports the maximal lead.  Raises
    {!Reachability.Too_large} beyond [limit] (default 2_000_000) states. *)
let check ?(limit = 2_000_000) (p : Protocol.t) : result =
  let seen = Tbl.create 4096 in
  let queue = Queue.create () in
  let n = Protocol.n_sites p in
  let init = { g = Global.initial p; steps = List.init n (fun _ -> 0) } in
  Tbl.add seen init ();
  Queue.add init queue;
  let max_lead = ref 0 and witness = ref None and explored = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    incr explored;
    if !explored > limit then raise (Reachability.Too_large !explored);
    let l = lead c.steps in
    if l > !max_lead then begin
      max_lead := l;
      if l > 1 then witness := Some (c.g, c.steps)
    end;
    List.iter
      (fun (site, _tr, g') ->
        let steps = List.mapi (fun i s -> if i = site - 1 then s + 1 else s) c.steps in
        let c' = { g = g'; steps } in
        if not (Tbl.mem seen c') then begin
          Tbl.add seen c' ();
          Queue.add c' queue
        end)
      (Global.successors p c.g)
  done;
  { synchronous = !max_lead <= 1; max_lead = !max_lead; witness = !witness; explored = !explored }

(** The adjacency lemma (paper §6): a protocol synchronous within one state
    transition is nonblocking iff it contains no local state adjacent to
    both a commit and an abort state, and no noncommittable state adjacent
    to a commit state.  [lemma_check] evaluates exactly those two syntactic
    conditions on the FSAs, given committability information.

    It is only sound for synchronous protocols: callers should first verify
    {!check}.  [Nonblocking.analyze] is the exact (graph-based) check; tests
    validate that lemma and theorem agree on the synchronous catalog. *)
let lemma_check (p : Protocol.t) ~(is_committable : site:Types.site -> state:string -> bool) :
    Nonblocking.violation list =
  let violations = ref [] in
  List.iter
    (fun site ->
      let a = Protocol.automaton p site in
      List.iter
        (fun (s : Automaton.state) ->
          let adj = Automaton.adjacent a s.Automaton.id in
          let kinds = List.map (fun id -> Automaton.kind_of a id) adj in
          let has_commit = List.exists Types.is_commit kinds
          and has_abort = List.exists Types.is_abort kinds in
          if has_commit && has_abort then
            violations :=
              { Nonblocking.site; state = s.Automaton.id; condition = `Both_commit_and_abort }
              :: !violations;
          if has_commit && not (is_committable ~site ~state:s.Automaton.id) then
            violations :=
              { Nonblocking.site; state = s.Automaton.id; condition = `Noncommittable_sees_commit }
              :: !violations)
        a.Automaton.states)
    (Protocol.sites p);
  List.rev !violations
