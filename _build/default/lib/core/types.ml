(** Basic vocabulary shared by the whole formal model.

    Sites are identified by small integers.  The distinguished identifier
    {!env} denotes the environment (the client submitting the transaction):
    the initial [xact]/[request] messages are injected into the network with
    [env] as their sender, exactly as the paper leaves the distribution
    mechanism unmodelled ("an xact message will be simply received"). *)

type site = int [@@deriving eq, ord]
(** A participating site.  Sites are numbered from 1, following the paper
    (site 1 is the coordinator in the central-site model). *)

let env : site = 0
(** The environment pseudo-site: source of the initial transaction request. *)

(** Classification of a local FSA state.  The paper partitions final states
    into commit and abort states; intermediate states are the initial state
    [q], wait states [w], and buffer states [p] introduced by the nonblocking
    transformation. *)
type state_kind =
  | Initial  (** the state [q] occupied before the transaction arrives *)
  | Wait  (** an intermediate, non-final state such as [w] *)
  | Buffer  (** a prepared-to-commit buffer state such as [p] *)
  | Commit  (** a final commit state [c] *)
  | Abort  (** a final abort state [a] *)
[@@deriving show { with_path = false }, eq, ord]

let is_final = function
  | Commit | Abort -> true
  | Initial | Wait | Buffer -> false

let is_commit = function Commit -> true | Initial | Wait | Buffer | Abort -> false
let is_abort = function Abort -> true | Initial | Wait | Buffer | Commit -> false

(** The vote a site casts when it first processes the transaction.  A
    transition may be marked with the vote it embodies; committable-state
    inference (paper §3) tracks which sites have voted yes. *)
type vote = Yes | No [@@deriving show { with_path = false }, eq, ord]

(** Outcome of a terminated distributed transaction as observed at one
    site, or the global verdict of a run. *)
type outcome = Committed | Aborted [@@deriving show { with_path = false }, eq, ord]

let outcome_of_kind = function
  | Commit -> Some Committed
  | Abort -> Some Aborted
  | Initial | Wait | Buffer -> None

let pp_site ppf s = if s = env then Fmt.string ppf "env" else Fmt.pf ppf "site%d" s
