(** Committable states (paper §3): a local state is {e committable} if
    occupancy of that state by any site implies that all sites have voted
    yes on committing the transaction.  A state that is not committable is
    {e noncommittable}.

    We infer committability from the reachable state graph: state [s] of
    site [i] is committable iff in every reachable global state where site
    [i] occupies [s], every voting site has cast a yes vote.

    A site whose FSA contains no vote-marked transitions (e.g. the 1PC
    slave) has no veto right; its consent is implicit and it does not count
    against committability of other sites' states — the paper's definition
    tacitly assumes every site votes. *)

type t = {
  committable : (Types.site * string, bool) Hashtbl.t;
  voters : bool array;  (** voters.(i-1): does site i's FSA ever cast a vote *)
}

let compute (graph : Reachability.t) : t =
  let p = graph.Reachability.protocol in
  let n = Protocol.n_sites p in
  let voters =
    Array.init n (fun i ->
        let a = Protocol.automaton p (i + 1) in
        List.exists (fun (tr : Automaton.transition) -> tr.vote <> None) a.Automaton.transitions)
  in
  let committable = Hashtbl.create 64 in
  (* Start by assuming every occupied (site, state) committable, then refute
     with any witness global state in which some voter has not voted yes. *)
  Reachability.iter_nodes
    (fun node ->
      let g = node.Reachability.state in
      let all_voted_yes =
        let ok = ref true in
        Array.iteri (fun i voted -> if voters.(i) && not voted then ok := false) g.Global.voted_yes;
        !ok
      in
      Array.iteri
        (fun i id ->
          let key = (i + 1, id) in
          match Hashtbl.find_opt committable key with
          | Some false -> ()
          | Some true | None -> Hashtbl.replace committable key all_voted_yes)
        g.Global.locals)
    graph;
  { committable; voters }

(** [is_committable t ~site ~state]: committability of [state] at [site].
    Unreachable states are vacuously committable (they are never occupied);
    callers interested only in occupiable states should restrict to
    {!Concurrency.occupied_states}. *)
let is_committable t ~site ~state =
  Option.value ~default:true (Hashtbl.find_opt t.committable (site, state))

(** All committable (site, state id) pairs, sorted. *)
let committable_pairs t =
  Hashtbl.fold (fun k v acc -> if v then k :: acc else acc) t.committable [] |> List.sort compare

(** Committable state ids: those committable at {e every} site declaring
    them — the homogeneous-protocol view (e.g. \{p, c\} for canonical 3PC). *)
let committable_ids t =
  let by_id = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (_site, id) v ->
      let cur = Option.value ~default:true (Hashtbl.find_opt by_id id) in
      Hashtbl.replace by_id id (cur && v))
    t.committable;
  Hashtbl.fold (fun id v acc -> if v then id :: acc else acc) by_id [] |> List.sort compare
