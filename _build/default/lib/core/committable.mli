(** Committable states (paper §3): a local state is committable if
    occupancy of that state by any site implies that all sites have voted
    yes on committing — inferred here from the reachable state graph's
    vote flags.

    A site whose FSA casts no votes (e.g. the 1PC slave) has no veto
    right; its consent is implicit and does not count against
    committability — the paper's definition tacitly assumes every site
    votes. *)

type t

val compute : Reachability.t -> t

val is_committable : t -> site:Types.site -> state:string -> bool
(** Unreachable states are vacuously committable; callers interested only
    in occupiable states should restrict to
    {!Concurrency.occupied_states}. *)

val committable_pairs : t -> (Types.site * string) list
(** All committable (site, state id) pairs, sorted. *)

val committable_ids : t -> string list
(** State ids committable at every site declaring them — the
    homogeneous-protocol view, e.g. \{p, c\} for 3PC and \{c\} for 2PC. *)
