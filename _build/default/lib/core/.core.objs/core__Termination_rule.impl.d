lib/core/termination_rule.pp.ml: Committable Concurrency Fmt List Protocol Reachability Skeleton Types
