lib/core/synchrony.pp.ml: Automaton Global Hashtbl List Nonblocking Ppx_deriving_runtime Protocol Queue Reachability Types
