lib/core/skeleton.pp.ml: Automaton Committable Fmt List Ppx_deriving_runtime Protocol Reachability Set String Types
