lib/core/reachability.pp.mli: Automaton Format Global Hashtbl Protocol Types
