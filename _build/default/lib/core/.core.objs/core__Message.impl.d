lib/core/message.pp.ml: Fmt List Ppx_deriving_runtime Types
