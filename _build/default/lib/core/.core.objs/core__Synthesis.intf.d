lib/core/synthesis.pp.mli: Protocol Reachability Skeleton Types
