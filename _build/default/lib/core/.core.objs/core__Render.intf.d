lib/core/render.pp.mli: Automaton Reachability Skeleton
