lib/core/catalog.pp.ml: Array Automaton Fmt List Message Protocol String Types
