lib/core/skeleton.pp.mli: Format Reachability Set Types
