lib/core/automaton.pp.ml: Fmt Hashtbl List Message Ppx_deriving_runtime Types
