lib/core/synthesis.pp.ml: Array Automaton Committable Fmt List Message Protocol Reachability Skeleton Types
