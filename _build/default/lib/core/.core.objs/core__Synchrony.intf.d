lib/core/synchrony.pp.mli: Global Nonblocking Protocol Types
