lib/core/render.pp.ml: Automaton Buffer Concurrency Fmt Global List Message Protocol Reachability Skeleton String Types
