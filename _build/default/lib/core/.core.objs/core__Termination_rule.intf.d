lib/core/termination_rule.pp.mli: Concurrency Format Reachability Skeleton Types
