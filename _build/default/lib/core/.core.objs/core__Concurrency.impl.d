lib/core/concurrency.pp.ml: Array Automaton Fmt Global Hashtbl List Option Protocol Reachability Set String Types
