lib/core/types.pp.mli: Format
