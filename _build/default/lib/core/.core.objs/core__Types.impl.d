lib/core/types.pp.ml: Fmt Ppx_deriving_runtime
