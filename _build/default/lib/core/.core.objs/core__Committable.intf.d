lib/core/committable.pp.mli: Reachability Types
