lib/core/global.pp.mli: Automaton Format Message Protocol Types
