lib/core/nonblocking.pp.mli: Format Protocol Reachability Types
