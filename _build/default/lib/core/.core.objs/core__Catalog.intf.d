lib/core/catalog.pp.mli: Protocol
