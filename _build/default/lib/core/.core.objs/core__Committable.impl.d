lib/core/committable.pp.ml: Array Automaton Global Hashtbl List Option Protocol Reachability Types
