lib/core/protocol.pp.ml: Array Automaton Fmt List Message Ppx_deriving_runtime
