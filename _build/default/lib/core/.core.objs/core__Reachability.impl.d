lib/core/reachability.pp.ml: Array Automaton Fmt Global Hashtbl List Protocol Queue Types
