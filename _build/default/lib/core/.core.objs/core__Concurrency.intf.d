lib/core/concurrency.pp.mli: Format Reachability Set Types
