lib/core/automaton.pp.mli: Format Message Types
