lib/core/protocol.pp.mli: Automaton Format Message Types
