lib/core/nonblocking.pp.ml: Committable Concurrency Fmt List Protocol Reachability Types
