lib/core/global.pp.ml: Array Automaton Fmt Hashtbl List Message Ppx_deriving_runtime Protocol Types
