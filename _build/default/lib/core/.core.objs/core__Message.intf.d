lib/core/message.pp.mli: Format Types
