(** The fundamental nonblocking theorem (paper §5).

    A protocol is nonblocking if and only if, at every participating site,
    both of the following hold:

    + {b Condition 1}: no local state's concurrency set contains both an
      abort and a commit state;
    + {b Condition 2}: no noncommittable state's concurrency set contains a
      commit state.

    When a site's state violates one of the conditions, a site left alone in
    that state by failures can neither safely commit (it cannot infer that
    all sites voted yes) nor safely abort (another site may have committed
    before crashing) — it {e blocks}.

    The corollary: a protocol is nonblocking with respect to [k-1] site
    failures iff some subset of [k] sites satisfies both conditions; the
    analysis below reports exactly which sites satisfy them. *)

type violation = {
  site : Types.site;
  state : string;
  condition : [ `Both_commit_and_abort | `Noncommittable_sees_commit ];
}

let pp_violation ppf v =
  Fmt.pf ppf "site %d, state %s: %s" v.site v.state
    (match v.condition with
    | `Both_commit_and_abort -> "concurrency set contains both a commit and an abort state"
    | `Noncommittable_sees_commit -> "noncommittable state whose concurrency set contains a commit state")

type report = {
  protocol_name : string;
  violations : violation list;
  satisfying_sites : Types.site list;
      (** sites all of whose occupiable states satisfy both conditions *)
  resilience : int;
      (** the protocol is nonblocking w.r.t. this many site failures: the
          corollary gives k-1 where k = |satisfying sites| *)
  nonblocking : bool;
}

(** [analyze graph] evaluates both theorem conditions for every occupiable
    local state of every site, using exact concurrency sets and inferred
    committability. *)
let analyze (graph : Reachability.t) : report =
  let p = graph.Reachability.protocol in
  let cs = Concurrency.compute graph in
  let cm = Committable.compute graph in
  let violations = ref [] in
  List.iter
    (fun site ->
      List.iter
        (fun state ->
          let has_commit = Concurrency.contains_commit cs ~site ~state in
          let has_abort = Concurrency.contains_abort cs ~site ~state in
          if has_commit && has_abort then
            violations := { site; state; condition = `Both_commit_and_abort } :: !violations;
          if has_commit && not (Committable.is_committable cm ~site ~state) then
            violations := { site; state; condition = `Noncommittable_sees_commit } :: !violations)
        (Concurrency.occupied_states cs ~site))
    (Protocol.sites p);
  let violations = List.rev !violations in
  let satisfying_sites =
    Protocol.sites p |> List.filter (fun s -> not (List.exists (fun v -> v.site = s) violations))
  in
  let k = List.length satisfying_sites in
  {
    protocol_name = p.Protocol.name;
    violations;
    satisfying_sites;
    resilience = max 0 (k - 1);
    nonblocking = violations = [];
  }

let pp_report ppf r =
  Fmt.pf ppf "@[<v>protocol %s: %s@," r.protocol_name
    (if r.nonblocking then "NONBLOCKING" else "BLOCKING");
  if r.violations <> [] then
    Fmt.pf ppf "violations:@,%a@,"
      Fmt.(list ~sep:cut (fun ppf v -> Fmt.pf ppf "  - %a" pp_violation v))
      r.violations;
  Fmt.pf ppf "sites satisfying both conditions: %a@,nonblocking w.r.t. %d failure(s)@]"
    Fmt.(brackets (list ~sep:comma int))
    r.satisfying_sites r.resilience

(** Convenience: build the graph and analyze in one call. *)
let analyze_protocol ?limit (p : Protocol.t) = analyze (Reachability.build ?limit p)
