(** Rendering of FSAs, skeletons and reachable state graphs as Graphviz
    DOT and plain text — the CLI and experiment harness regenerate the
    paper's figures through these. *)

val dot_escape : string -> string
(** Escape double quotes for DOT labels. *)

val automaton_to_dot : Automaton.t -> string
(** Transition labels follow the paper's "consumed / emitted"
    convention. *)

val skeleton_to_dot : Skeleton.t -> string

val reachability_to_dot : ?full:bool -> Reachability.t -> string
(** Node labels show the local state vector; pass [~full:true] to include
    network contents and vote flags. *)

val concurrency_table : Reachability.t -> string
(** The per-state-id concurrency-set table, one [CS(s) = {…}] line per
    state — the form of the paper's canonical-2PC figure. *)
