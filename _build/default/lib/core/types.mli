(** Basic vocabulary shared by the whole formal model. *)

type site = int
(** A participating site.  Sites are numbered from 1, following the paper
    (site 1 is the coordinator in the central-site model). *)

val equal_site : site -> site -> bool
val compare_site : site -> site -> int

val env : site
(** The environment pseudo-site (site 0): source of the initial
    transaction request; the paper leaves the distribution mechanism
    unmodelled. *)

(** Classification of a local FSA state.  Final states partition into
    commit and abort states (paper §2); [Buffer] marks the
    prepared-to-commit states introduced by the nonblocking
    transformation. *)
type state_kind =
  | Initial  (** the state [q] occupied before the transaction arrives *)
  | Wait  (** an intermediate, non-final state such as [w] *)
  | Buffer  (** a prepared-to-commit buffer state such as [p] *)
  | Commit  (** a final commit state [c] *)
  | Abort  (** a final abort state [a] *)

val pp_state_kind : Format.formatter -> state_kind -> unit
val show_state_kind : state_kind -> string
val equal_state_kind : state_kind -> state_kind -> bool
val compare_state_kind : state_kind -> state_kind -> int

val is_final : state_kind -> bool
(** Commit and abort states are final; committing and aborting are
    irreversible. *)

val is_commit : state_kind -> bool
val is_abort : state_kind -> bool

(** The vote a site casts on committing the transaction. *)
type vote = Yes | No

val pp_vote : Format.formatter -> vote -> unit
val show_vote : vote -> string
val equal_vote : vote -> vote -> bool
val compare_vote : vote -> vote -> int

(** Outcome of a terminated distributed transaction. *)
type outcome = Committed | Aborted

val pp_outcome : Format.formatter -> outcome -> unit
val show_outcome : outcome -> string
val equal_outcome : outcome -> outcome -> bool
val compare_outcome : outcome -> outcome -> int

val outcome_of_kind : state_kind -> outcome option
(** The outcome a final state denotes; [None] for non-final states. *)

val pp_site : Format.formatter -> site -> unit
