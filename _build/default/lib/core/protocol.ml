(** An n-site commit protocol: one FSA per participating site plus the
    initial network contents (the transaction request injected by the
    environment).

    Two prevalent paradigms are modelled (paper §4): the central-site model,
    in which site 1 runs the coordinator FSA and every other site the slave
    FSA; and the fully decentralized model, in which all sites run the same
    FSA and exchange messages in rounds. *)

type paradigm = Central_site | Decentralized [@@deriving show { with_path = false }, eq]

type t = {
  name : string;
  paradigm : paradigm;
  automata : Automaton.t array;  (** indexed by site - 1; site ids are 1..n *)
  initial_network : Message.t list;
      (** messages present on the tape before any transition: the
          environment's [request]/[xact] messages *)
}

let n_sites t = Array.length t.automata

let sites t = List.init (n_sites t) (fun i -> i + 1)

(** [automaton t site] is the FSA run by [site] (1-based). *)
let automaton t site =
  if site < 1 || site > n_sites t then
    Fmt.invalid_arg "Protocol.automaton: site %d out of range 1..%d" site (n_sites t);
  t.automata.(site - 1)

let make ~name ~paradigm ~automata ~initial_network =
  Array.iteri
    (fun i a ->
      if a.Automaton.site <> i + 1 then
        Fmt.invalid_arg "Protocol.make: automaton at index %d claims site %d" i a.Automaton.site;
      match Automaton.validate a with
      | [] -> ()
      | v :: _ ->
          Fmt.invalid_arg "Protocol.make: invalid FSA for site %d: %s" (i + 1)
            (Automaton.show_violation v))
    automata;
  { name; paradigm; automata; initial_network }

(** All distinct local state ids across sites, tagged with the sites that
    declare them.  In homogeneous (decentralized or canonical) protocols the
    per-site FSAs share state ids; analyses can then be presented per state
    id rather than per (site, state). *)
let state_ids t =
  Array.to_list t.automata
  |> List.concat_map (fun a -> List.map (fun s -> s.Automaton.id) a.Automaton.states)
  |> List.sort_uniq compare

(** [phases t] is the number of phases of the protocol: the maximum, over
    sites, of the longest transition path from initial to final state.
    The catalog protocols recover their names — 1 for 1PC, 2 for both 2PC
    paradigms, 3 for both 3PC paradigms ("commit protocols have at least
    two phases", paper §2, and the buffer-state transformation adds
    exactly one). *)
let phases t =
  Array.fold_left (fun acc a -> max acc (Automaton.longest_path a)) 0 t.automata

(** [homogeneous t] is true when every site runs a structurally identical
    FSA (modulo the site subscript on messages) — the decentralized model. *)
let homogeneous t =
  match Array.to_list t.automata with
  | [] | [ _ ] -> true
  | a0 :: rest ->
      let sig_of a =
        ( List.map (fun s -> (s.Automaton.id, s.Automaton.kind)) a.Automaton.states,
          List.map
            (fun (tr : Automaton.transition) ->
              (tr.from_state, tr.to_state, List.length tr.consumes, List.length tr.emits, tr.vote))
            a.Automaton.transitions )
      in
      let s0 = sig_of a0 in
      List.for_all (fun a -> sig_of a = s0) rest

let pp ppf t =
  Fmt.pf ppf "@[<v>protocol %S (%a, %d sites)@,initial network: %a@,%a@]" t.name pp_paradigm
    t.paradigm (n_sites t)
    Fmt.(brackets (list ~sep:comma Message.pp))
    t.initial_network
    Fmt.(list ~sep:cut Automaton.pp)
    (Array.to_list t.automata)
