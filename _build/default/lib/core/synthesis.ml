(** The design method for nonblocking protocols (paper §6, "Making the
    canonical 2PC protocol nonblocking").

    Given a protocol synchronous within one state transition, the lemma's
    two constraints are violated only on edges leading into commit states
    from noncommittable states.  Inserting a {e buffer state} ("prepare to
    commit") on every such edge satisfies both constraints: the buffer state
    is committable (it is entered only once every site has voted yes), it
    separates the wait state from the commit state, and the extra message
    round keeps the protocol synchronous.

    Two levels are provided:
    - {!buffer_skeleton} transforms a canonical skeleton (pure graph
      rewrite) — applied to {!Skeleton.canonical_2pc} it yields exactly
      {!Skeleton.canonical_3pc};
    - {!buffer_protocol} transforms a full message-level catalog protocol
      by splicing a prepare/ack phase in front of every commit-entering
      transition — applied to [Catalog.central_2pc] it yields a protocol
      whose analysis is nonblocking and whose skeleton equals canonical
      3PC. *)

(** [buffer_skeleton sk] inserts a fresh buffer state on every edge from a
    noncommittable state into a commit state.  The buffer state is marked
    committable; when several offending edges share a source, one buffer
    state per (source, commit target) pair is created, named
    ["p"], ["p1"], … *)
let buffer_skeleton (sk : Skeleton.t) : Skeleton.t =
  let offending =
    List.filter
      (fun (src, dst) ->
        Types.is_commit (Skeleton.kind_of sk dst) && not (Skeleton.is_committable sk src))
      sk.Skeleton.edges
  in
  if offending = [] then sk
  else begin
    let fresh_names =
      let taken = List.map (fun s -> s.Skeleton.id) sk.Skeleton.states in
      let rec gen i acc = function
        | [] -> List.rev acc
        | _ :: rest ->
            let rec next j =
              let cand = if j = 0 then "p" else Fmt.str "p%d" j in
              if List.mem cand taken || List.mem cand acc then next (j + 1) else cand
            in
            let name = next i in
            gen (i + 1) (name :: acc) rest
      in
      gen 0 [] offending
    in
    let buffers =
      List.map2
        (fun (src, dst) name -> ((src, dst), name))
        offending fresh_names
    in
    let states =
      sk.Skeleton.states
      @ List.map
          (fun (_, name) -> { Skeleton.id = name; kind = Types.Buffer; committable = true })
          buffers
    in
    let edges =
      List.concat_map
        (fun (src, dst) ->
          match List.assoc_opt (src, dst) buffers with
          | Some name -> [ (src, name); (name, dst) ]
          | None -> [ (src, dst) ])
        sk.Skeleton.edges
    in
    Skeleton.make ~name:(sk.Skeleton.name ^ "+buffer") ~states ~initial:sk.Skeleton.initial ~edges
  end

(** Result of transforming a full protocol: the rewritten protocol plus the
    names of the buffer states introduced at each site. *)
type protocol_result = { protocol : Protocol.t; buffers_added : (Types.site * string) list }

(* Rewrites one FSA: every transition [src -> c] where [c] is a commit state
   and [src] is noncommittable gets split into [src -> p] and [p -> c].  In
   the central-site paradigm the coordinator announces the new phase with
   [prepare] and collects [ack]; slaves answer [prepare] with [ack] and wait
   for the deferred commit notice. *)
let buffer_automaton ~role ~peers ~(is_committable : string -> bool) (a : Automaton.t) :
    Automaton.t * string list =
  let offending =
    List.filter
      (fun (tr : Automaton.transition) ->
        Types.is_commit (Automaton.kind_of a tr.Automaton.to_state)
        && not (is_committable tr.Automaton.from_state))
      a.Automaton.transitions
  in
  if offending = [] then (a, [])
  else begin
    let taken = ref (List.map (fun s -> s.Automaton.id) a.Automaton.states) in
    let fresh () =
      let rec next j =
        let cand = if j = 0 then "p" else Fmt.str "p%d" j in
        if List.mem cand !taken then next (j + 1) else cand
      in
      let name = next 0 in
      taken := name :: !taken;
      name
    in
    (* One buffer per source state: all offending transitions from the same
       source share one buffer state (the prepared state is per-site, not
       per-edge, in the message-level protocol). *)
    let sources =
      List.sort_uniq compare (List.map (fun tr -> tr.Automaton.from_state) offending)
    in
    let buffer_of = List.map (fun src -> (src, fresh ())) sources in
    let site = a.Automaton.site in
    let transitions =
      List.concat_map
        (fun (tr : Automaton.transition) ->
          if
            Types.is_commit (Automaton.kind_of a tr.Automaton.to_state)
            && not (is_committable tr.Automaton.from_state)
          then begin
            let p = List.assoc tr.Automaton.from_state buffer_of in
            match role with
            | `Coordinator ->
                (* w -[votes / prepare to all]-> p ; p -[acks / commit to all]-> c *)
                [
                  {
                    tr with
                    Automaton.to_state = p;
                    emits = List.map (fun j -> Message.make ~name:Message.prepare ~src:site ~dst:j) peers;
                  };
                  {
                    Automaton.from_state = p;
                    to_state = tr.Automaton.to_state;
                    consumes = List.map (fun j -> Message.make ~name:Message.ack ~src:j ~dst:site) peers;
                    emits = tr.Automaton.emits;
                    vote = None;
                  };
                ]
            | `Slave ->
                (* w -(prepare/ack)-> p ; p -(commit)-> c.  The original
                   consumed commit notice moves to the second hop. *)
                [
                  {
                    Automaton.from_state = tr.Automaton.from_state;
                    to_state = p;
                    consumes = [ Message.make ~name:Message.prepare ~src:1 ~dst:site ];
                    emits = [ Message.make ~name:Message.ack ~src:site ~dst:1 ];
                    vote = tr.Automaton.vote;
                  };
                  {
                    Automaton.from_state = p;
                    to_state = tr.Automaton.to_state;
                    consumes = tr.Automaton.consumes;
                    emits = tr.Automaton.emits;
                    vote = None;
                  };
                ]
          end
          else [ tr ])
        a.Automaton.transitions
    in
    let states =
      a.Automaton.states
      @ List.map (fun (_, p) -> { Automaton.id = p; kind = Types.Buffer }) buffer_of
    in
    ( Automaton.make ~site ~states ~initial:a.Automaton.initial ~transitions,
      List.map snd buffer_of )
  end

(* Decentralized rewrite: every transition [src -> c] from a noncommittable
   [src] becomes [src -> p] announcing [prepare] to every site, and
   [p -> c] consuming the full round of prepares — one extra interchange,
   exactly the decentralized 3PC construction. *)
let buffer_automaton_decentralized ~n ~(is_committable : string -> bool) (a : Automaton.t) :
    Automaton.t * string list =
  let everyone = List.init n (fun j -> j + 1) in
  let offending =
    List.filter
      (fun (tr : Automaton.transition) ->
        Types.is_commit (Automaton.kind_of a tr.Automaton.to_state)
        && not (is_committable tr.Automaton.from_state))
      a.Automaton.transitions
  in
  if offending = [] then (a, [])
  else begin
    let taken = ref (List.map (fun s -> s.Automaton.id) a.Automaton.states) in
    let fresh () =
      let rec next j =
        let cand = if j = 0 then "p" else Fmt.str "p%d" j in
        if List.mem cand !taken then next (j + 1) else cand
      in
      let name = next 0 in
      taken := name :: !taken;
      name
    in
    let sources =
      List.sort_uniq compare (List.map (fun tr -> tr.Automaton.from_state) offending)
    in
    let buffer_of = List.map (fun src -> (src, fresh ())) sources in
    let site = a.Automaton.site in
    let transitions =
      List.concat_map
        (fun (tr : Automaton.transition) ->
          if
            Types.is_commit (Automaton.kind_of a tr.Automaton.to_state)
            && not (is_committable tr.Automaton.from_state)
          then begin
            let p = List.assoc tr.Automaton.from_state buffer_of in
            [
              {
                tr with
                Automaton.to_state = p;
                emits = List.map (fun j -> Message.make ~name:Message.prepare ~src:site ~dst:j) everyone;
              };
              {
                Automaton.from_state = p;
                to_state = tr.Automaton.to_state;
                consumes =
                  List.map (fun j -> Message.make ~name:Message.prepare ~src:j ~dst:site) everyone;
                emits = tr.Automaton.emits;
                vote = None;
              };
            ]
          end
          else [ tr ])
        a.Automaton.transitions
    in
    let states =
      a.Automaton.states
      @ List.map (fun (_, p) -> { Automaton.id = p; kind = Types.Buffer }) buffer_of
    in
    ( Automaton.make ~site ~states ~initial:a.Automaton.initial ~transitions,
      List.map snd buffer_of )
  end

(** [buffer_protocol graph] applies the buffer-state transformation to a
    protocol of either paradigm, using the exact committability inferred
    from its reachable state graph to locate the offending transitions.
    Central site: the coordinator's commit announcement becomes a prepare
    round followed by an ack-collected commit round.  Decentralized: one
    extra interchange of [prepare] messages precedes committing. *)
let buffer_protocol (graph : Reachability.t) : protocol_result =
  let p = graph.Reachability.protocol in
  let cm = Committable.compute graph in
  let n = Protocol.n_sites p in
  let slaves = List.init (n - 1) (fun i -> i + 2) in
  let buffers = ref [] in
  let automata =
    Array.init n (fun i ->
        let site = i + 1 in
        let a = Protocol.automaton p site in
        let is_committable state = Committable.is_committable cm ~site ~state in
        let a', added =
          match p.Protocol.paradigm with
          | Protocol.Central_site ->
              let role = if site = 1 then `Coordinator else `Slave in
              buffer_automaton ~role ~peers:slaves ~is_committable a
          | Protocol.Decentralized -> buffer_automaton_decentralized ~n ~is_committable a
        in
        List.iter (fun b -> buffers := (site, b) :: !buffers) added;
        a')
  in
  {
    protocol =
      Protocol.make ~name:(p.Protocol.name ^ "+buffer") ~paradigm:p.Protocol.paradigm ~automata
        ~initial_network:p.Protocol.initial_network;
    buffers_added = List.rev !buffers;
  }
