(** Canonical protocol skeletons (paper §6): a single acyclic state
    diagram every site traverses, for protocols synchronous within one
    state transition.  At this level the concurrency set is syntactic —
    C(s) = \{s\} ∪ adjacent(s) — and the design method is a pure graph
    transformation. *)

module String_set : Set.S with type elt = string

type state = { id : string; kind : Types.state_kind; committable : bool }

val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool

type t = {
  name : string;
  states : state list;
  initial : string;
  edges : (string * string) list;
}

val make :
  name:string -> states:state list -> initial:string -> edges:(string * string) list -> t
(** @raise Invalid_argument on unknown initial state or edge endpoints. *)

val state_exn : t -> string -> state
val kind_of : t -> string -> Types.state_kind
val is_committable : t -> string -> bool
val successors : t -> string -> string list
val predecessors : t -> string -> string list
val adjacent : t -> string -> string list

val concurrency_set : t -> string -> String_set.t
(** \{s\} ∪ adjacent(s), per the paper's synchronous-protocol rule. *)

val lemma_violations : t -> (string * [ `Both_commit_and_abort | `Noncommittable_sees_commit ]) list
(** The adjacency lemma, exactly as the paper states it. *)

val is_nonblocking : t -> bool

val canonical_2pc : t
(** q → w (vote yes), q → a (vote no), w → c, w → a; committable: \{c\}. *)

val canonical_3pc : t
(** 2PC with the buffer state [p] between [w] and [c];
    committable: \{p, c\}. *)

val canonical_1pc : t
(** The client decision relayed; no voting, [c] committable by implicit
    consent; blocks because [q] is adjacent to both finals. *)

val of_protocol_analysis : Reachability.t -> t
(** Abstracts a full (homogeneous) protocol into its skeleton: state ids,
    kinds and edges from site 1's FSA, committability from the exact
    inference — used to cross-check the canonical figures against the
    message-level catalog. *)

val equal : t -> t -> bool
(** Structural equality up to the name. *)

val pp : Format.formatter -> t -> unit
