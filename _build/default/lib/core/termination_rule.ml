(** The decision rule for backup coordinators (paper §8).

    When site failures interrupt a nonblocking commit protocol, the
    operational sites elect a backup coordinator, which decides {e from its
    local state alone}:

    - if the concurrency set of its current state contains a commit state,
      the transaction is {b committed};
    - otherwise it is {b aborted}.

    For canonical 3PC this gives: commit iff the backup's state is in
    \{p, c\}; abort iff it is in \{q, w, a\} (the paper's termination
    table).

    The rule is {e safe} exactly when the protocol satisfies the fundamental
    nonblocking theorem: condition 1 guarantees the chosen outcome cannot
    contradict a final state some crashed site already reached, and
    condition 2 guarantees that committing is only chosen from committable
    states. *)

type decision = Types.outcome = Committed | Aborted

(** [decide cs ~site ~state] applies the rule using exact concurrency
    sets. *)
let decide (cs : Concurrency.t) ~site ~state : decision =
  if Concurrency.contains_commit cs ~site ~state then Committed else Aborted

(** [decide_skeleton sk ~state] applies the rule at the canonical level,
    where the concurrency set is the adjacency set. *)
let decide_skeleton (sk : Skeleton.t) ~state : decision =
  let cs = Skeleton.concurrency_set sk state in
  let has_commit =
    Skeleton.String_set.exists (fun id -> Types.is_commit (Skeleton.kind_of sk id)) cs
  in
  if has_commit then Committed else Aborted

(** The full decision table for a protocol: every occupiable (site, state)
    pair with its decision.  This is the table the backup coordinator ships
    with; the experiment harness prints it for canonical 3PC and compares
    against the paper's figure. *)
let table (graph : Reachability.t) : (Types.site * string * decision) list =
  let cs = Concurrency.compute graph in
  let p = graph.Reachability.protocol in
  Protocol.sites p
  |> List.concat_map (fun site ->
         Concurrency.occupied_states cs ~site
         |> List.map (fun state -> (site, state, decide cs ~site ~state)))

(** Safety of the rule for a given protocol: for every state, if the rule
    says [Committed] the concurrency set must contain no abort state, and
    the state must be committable; if it says [Aborted] the concurrency set
    must contain no commit state (immediate from the rule).  Returns the
    offending states — empty iff the rule is safe, which the fundamental
    theorem guarantees for nonblocking protocols. *)
let unsafe_states (graph : Reachability.t) : (Types.site * string) list =
  let cs = Concurrency.compute graph in
  let cm = Committable.compute graph in
  let p = graph.Reachability.protocol in
  Protocol.sites p
  |> List.concat_map (fun site ->
         Concurrency.occupied_states cs ~site
         |> List.filter (fun state ->
                match decide cs ~site ~state with
                | Committed ->
                    Concurrency.contains_abort cs ~site ~state
                    || not (Committable.is_committable cm ~site ~state)
                | Aborted -> Concurrency.contains_commit cs ~site ~state)
         |> List.map (fun state -> (site, state)))

let pp_decision ppf = function
  | Committed -> Fmt.string ppf "COMMIT"
  | Aborted -> Fmt.string ppf "ABORT"
