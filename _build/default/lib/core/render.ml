(** Rendering of FSAs, skeletons and reachable state graphs, as Graphviz DOT
    and as plain text, used by the CLI and the experiment harness to
    regenerate the paper's figures. *)

let dot_escape s = String.concat "\\\"" (String.split_on_char '"' s)

let kind_attrs = function
  | Types.Initial -> "shape=circle"
  | Types.Wait -> "shape=circle"
  | Types.Buffer -> "shape=doublecircle style=dashed"
  | Types.Commit -> "shape=doublecircle color=darkgreen"
  | Types.Abort -> "shape=doublecircle color=red3"

(** DOT rendering of one site's FSA; transition labels follow the paper's
    "consumed / emitted" convention. *)
let automaton_to_dot (a : Automaton.t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph site%d {\n  rankdir=TB;\n" a.Automaton.site;
  List.iter
    (fun (s : Automaton.state) ->
      pf "  %s [label=\"%s\" %s];\n" s.Automaton.id (dot_escape s.Automaton.id)
        (kind_attrs s.Automaton.kind))
    a.Automaton.states;
  List.iter
    (fun (tr : Automaton.transition) ->
      let side msgs = Fmt.str "%a" Fmt.(list ~sep:comma Message.pp) msgs in
      pf "  %s -> %s [label=\"%s / %s\"];\n" tr.Automaton.from_state tr.Automaton.to_state
        (dot_escape (side tr.Automaton.consumes))
        (dot_escape (side tr.Automaton.emits)))
    a.Automaton.transitions;
  pf "}\n";
  Buffer.contents buf

(** DOT rendering of a canonical skeleton. *)
let skeleton_to_dot (sk : Skeleton.t) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph %s {\n  rankdir=TB;\n" (String.map (function '-' | '+' -> '_' | c -> c) sk.Skeleton.name);
  List.iter
    (fun (s : Skeleton.state) ->
      pf "  %s [label=\"%s%s\" %s];\n" s.Skeleton.id s.Skeleton.id
        (if s.Skeleton.committable then "*" else "")
        (kind_attrs s.Skeleton.kind))
    sk.Skeleton.states;
  List.iter (fun (a, b) -> pf "  %s -> %s;\n" a b) sk.Skeleton.edges;
  pf "}\n";
  Buffer.contents buf

(** DOT rendering of a reachable state graph.  Node labels show the local
    state vector; the network contents are elided for readability (pass
    [~full:true] to include them). *)
let reachability_to_dot ?(full = false) (g : Reachability.t) : string =
  let buf = Buffer.create 4096 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph reachable {\n  rankdir=TB;\n  node [shape=box fontname=monospace];\n";
  Reachability.iter_nodes
    (fun node ->
      let st = node.Reachability.state in
      let label =
        if full then Global.show st
        else Fmt.str "%a" Fmt.(array ~sep:(any ",") string) st.Global.locals
      in
      let color =
        if Global.is_inconsistent g.Reachability.protocol st then " color=red3"
        else if Global.is_final g.Reachability.protocol st then " color=darkgreen"
        else ""
      in
      pf "  n%d [label=\"%s\"%s];\n" node.Reachability.index (dot_escape label) color)
    g;
  Reachability.iter_nodes
    (fun node ->
      List.iter
        (fun (site, _tr, dst) -> pf "  n%d -> n%d [label=\"s%d\"];\n" node.Reachability.index dst site)
        node.Reachability.succs)
    g;
  pf "}\n";
  Buffer.contents buf

(** Text rendering of the concurrency-set table of a protocol, merged per
    state id — the form of the paper's canonical-2PC figure. *)
let concurrency_table (graph : Reachability.t) : string =
  let cs = Concurrency.compute graph in
  let p = graph.Reachability.protocol in
  let buf = Buffer.create 512 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  List.iter
    (fun id ->
      let ids = Concurrency.merged_ids cs ~state:id in
      if not (Concurrency.String_set.is_empty ids) then
        pf "CS(%s) = {%s}\n" id (String.concat ", " (Concurrency.String_set.elements ids)))
    (Protocol.state_ids p);
  Buffer.contents buf
