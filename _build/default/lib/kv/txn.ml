(** Distributed transactions over the partitioned store.

    Operations are deliberately read-modify-write friendly: [Add] lets a
    bank transfer be expressed without a separate read round, while still
    requiring exclusive locks and (for the invariant checker) exercising
    atomicity across sites. *)

type op =
  | Get of string  (** shared lock, read *)
  | Put of string * int  (** exclusive lock, absolute write *)
  | Add of string * int  (** exclusive lock, increment *)
[@@deriving show { with_path = false }, eq]

type t = { id : int; ops : op list } [@@deriving show { with_path = false }, eq]

let key_of_op = function Get k | Put (k, _) | Add (k, _) -> k

let keys t = List.map key_of_op t.ops |> List.sort_uniq compare

let lock_mode = function
  | Get _ -> Lock_table.Shared
  | Put _ | Add _ -> Lock_table.Exclusive

(** [owner ~n_sites key] : the site storing [key] (hash partitioning,
    sites 1..n). *)
let owner ~n_sites key = (Hashtbl.hash key mod n_sites) + 1

(** [participants ~n_sites t] : the sites touched by [t], sorted. *)
let participants ~n_sites t =
  List.map (owner ~n_sites) (keys t) |> List.sort_uniq compare

(** [coordinator ~n_sites t] : the site that coordinates [t] — the owner of
    its first key, so coordination is spread across the system. *)
let coordinator ~n_sites t =
  match t.ops with
  | [] -> invalid_arg "Txn.coordinator: empty transaction"
  | op :: _ -> owner ~n_sites (key_of_op op)

(** Operations of [t] that execute at [site]. *)
let ops_for ~n_sites t ~site =
  List.filter (fun op -> owner ~n_sites (key_of_op op) = site) t.ops
