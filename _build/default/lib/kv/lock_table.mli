(** Strict two-phase locking with waits-for deadlock detection — the
    concurrency-control substrate behind the paper's unilateral no votes
    ("the resolution of a deadlock, when a locking scheme is adopted"). *)

type mode = Shared | Exclusive

val pp_mode : Format.formatter -> mode -> unit
val show_mode : mode -> string
val equal_mode : mode -> mode -> bool

type outcome =
  | Granted
  | Waiting  (** queued FIFO; the [on_grant] callback fires when granted *)
  | Deadlock of int list
      (** granting would close this waits-for cycle; the request was not
          queued and the caller must abort the transaction *)

val pp_outcome : Format.formatter -> outcome -> unit
val equal_outcome : outcome -> outcome -> bool

type t

val create : unit -> t

val on_grant : t -> (int -> unit) -> unit
(** Callback invoked with each transaction whose pending request becomes
    granted after a release. *)

val acquire : t -> txn:int -> key:string -> mode:mode -> outcome

val release_all : t -> txn:int -> unit
(** Drop every lock and queued request of [txn] (commit or abort time),
    promoting newly grantable waiters in FIFO order. *)

val held_keys : t -> txn:int -> string list
val n_waiting : t -> int

val waits_for : t -> int -> int list
(** Transactions [txn] currently waits for. *)

val force_grant : t -> txn:int -> key:string -> mode:mode -> unit
(** Install a lock unconditionally — crash recovery re-establishing the
    locks of prepared transactions from the log. *)
