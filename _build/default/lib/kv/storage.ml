(** Site-local versioned key-value storage.

    Values are integers (account balances, counters).  Writes reach storage
    only through {!apply}, which installs a transaction's whole write set
    atomically and records which transaction produced it — the atomicity
    checker uses that journal to verify that a distributed transaction's
    effects appear either at all its sites or at none. *)

type key = string

type t = {
  table : (key, int) Hashtbl.t;
  mutable version : int;
  mutable applied : (int * (key * int) list) list;  (** (txn id, write set), newest first *)
}

let create () = { table = Hashtbl.create 64; version = 0; applied = [] }

let get t k = Hashtbl.find_opt t.table k
let get_or t k ~default = Option.value ~default (get t k)

(** [load t bindings] initialises storage outside any transaction. *)
let load t bindings = List.iter (fun (k, v) -> Hashtbl.replace t.table k v) bindings

(** [apply t ~txn writes] atomically installs [writes] on behalf of
    transaction [txn]. *)
let apply t ~txn writes =
  List.iter (fun (k, v) -> Hashtbl.replace t.table k v) writes;
  t.version <- t.version + 1;
  t.applied <- (txn, writes) :: t.applied

let applied_txns t = List.rev_map fst t.applied |> List.sort_uniq compare

let has_applied t ~txn = List.mem_assoc txn t.applied

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let total t = Hashtbl.fold (fun _ v acc -> acc + v) t.table 0
