(** The database write-ahead log: per-site stable storage for the commit
    path, with forced records at every protocol boundary. *)

type record =
  | P_prepared of {
      txn : int;
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
    }
  | P_precommitted of { txn : int }
  | P_outcome of { txn : int; commit : bool }
  | C_begin of { txn : int; participants : Core.Types.site list; three_phase : bool }
  | C_precommitted of { txn : int }
  | C_decided of { txn : int; commit : bool }
  | C_finished of { txn : int }

val pp_record : Format.formatter -> record -> unit
val show_record : record -> string
val equal_record : record -> record -> bool

type t

val create : unit -> t
val append : t -> record -> unit
val records : t -> record list
val length : t -> int

(** Participant-side classification of a transaction from the log. *)
type p_class =
  | P_unknown  (** nothing logged: crashed before voting — unilateral abort *)
  | P_in_doubt of {
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
      precommitted : bool;
    }
  | P_resolved of bool

val classify_participant : t -> txn:int -> p_class

(** Coordinator-side classification. *)
type c_class =
  | C_unknown
  | C_collecting of { participants : Core.Types.site list; three_phase : bool }
  | C_in_precommit of { participants : Core.Types.site list }
  | C_resolved of { participants : Core.Types.site list; commit : bool; finished : bool }

val classify_coordinator : t -> txn:int -> c_class
val coordinated_txns : t -> int list
val participated_txns : t -> int list
