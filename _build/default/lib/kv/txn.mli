(** Distributed transactions over the partitioned store. *)

type op =
  | Get of string  (** shared lock, read *)
  | Put of string * int  (** exclusive lock, absolute write *)
  | Add of string * int  (** exclusive lock, increment (read-modify-write) *)

val pp_op : Format.formatter -> op -> unit
val show_op : op -> string
val equal_op : op -> op -> bool

type t = { id : int; ops : op list }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val key_of_op : op -> string
val keys : t -> string list
val lock_mode : op -> Lock_table.mode

val owner : n_sites:int -> string -> Core.Types.site
(** The site storing a key (hash partitioning, sites 1..n). *)

val participants : n_sites:int -> t -> Core.Types.site list
val coordinator : n_sites:int -> t -> Core.Types.site
(** The owner of the first key coordinates, spreading coordination.
    @raise Invalid_argument on empty transactions. *)

val ops_for : n_sites:int -> t -> site:Core.Types.site -> op list
