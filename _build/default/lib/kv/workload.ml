(** Workload generators for the database experiments.

    Two families: a uniform/zipfian read-write mix, and the bank-transfer
    workload (the classic atomicity showcase: every transaction moves money
    between two accounts, so the global balance total is invariant under
    any mix of commits and aborts — but not under a half-applied
    transaction). *)

type spec = {
  n_txns : int;
  arrival_rate : float;  (** mean transaction arrivals per time unit (Poisson) *)
  keys : int;  (** size of the key space *)
  ops_per_txn : int;
  write_ratio : float;  (** fraction of operations that write *)
  zipf_skew : float;  (** 0.0 = uniform; higher = more contended *)
}

let default_spec =
  { n_txns = 200; arrival_rate = 0.5; keys = 64; ops_per_txn = 4; write_ratio = 0.5; zipf_skew = 0.0 }

let key_name i = Fmt.str "k%04d" i

(** Zipf-ish key draw by inverse-power rejection-free CDF sampling over a
    precomputed table. *)
let make_key_sampler rng ~keys ~skew =
  if skew <= 0.0 then fun () -> Sim.Rng.int rng keys
  else begin
    let weights = Array.init keys (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) skew) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make keys 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. w;
        cdf.(i) <- !acc /. total)
      weights;
    fun () ->
      let u = Sim.Rng.float rng 1.0 in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cdf.(mid) < u then search (mid + 1) hi else search lo mid
      in
      search 0 (keys - 1)
  end

(** [mixed rng spec] : a generic read/write workload with Poisson arrivals.
    Returns (arrival time, transaction) pairs with ids 1..n. *)
let mixed rng (spec : spec) : (float * Txn.t) list =
  let sample_key = make_key_sampler rng ~keys:spec.keys ~skew:spec.zipf_skew in
  let t = ref 0.0 in
  List.init spec.n_txns (fun i ->
      t := !t +. Sim.Rng.exponential rng ~mean:(1.0 /. spec.arrival_rate);
      let rec distinct_keys n acc =
        if n = 0 then acc
        else
          let k = sample_key () in
          if List.mem k acc then distinct_keys n acc else distinct_keys (n - 1) (k :: acc)
      in
      let ks = distinct_keys spec.ops_per_txn [] in
      let ops =
        List.map
          (fun k ->
            if Sim.Rng.flip rng ~p:spec.write_ratio then Txn.Add (key_name k, 1)
            else Txn.Get (key_name k))
          ks
      in
      (!t, { Txn.id = i + 1; ops }))

(** [bank rng ~n_txns ~accounts ~arrival_rate ~initial_balance] : transfer
    workload.  Each transaction moves a random amount between two distinct
    accounts; {!bank_initial} gives the matching initial data, and
    {!bank_total_invariant} is the conservation check. *)
let bank rng ~n_txns ~accounts ~arrival_rate : (float * Txn.t) list =
  let t = ref 0.0 in
  List.init n_txns (fun i ->
      t := !t +. Sim.Rng.exponential rng ~mean:(1.0 /. arrival_rate);
      let from_acct = Sim.Rng.int rng accounts in
      let to_acct =
        let x = Sim.Rng.int rng (accounts - 1) in
        if x >= from_acct then x + 1 else x
      in
      let amount = 1 + Sim.Rng.int rng 10 in
      ( !t,
        {
          Txn.id = i + 1;
          ops = [ Txn.Add (key_name from_acct, -amount); Txn.Add (key_name to_acct, amount) ];
        } ))

let bank_initial ~accounts ~initial_balance =
  List.init accounts (fun i -> (key_name i, initial_balance))

let bank_total ~accounts ~initial_balance = accounts * initial_balance
