lib/kv/storage.pp.mli:
