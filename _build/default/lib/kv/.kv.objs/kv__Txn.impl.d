lib/kv/txn.pp.ml: Hashtbl List Lock_table Ppx_deriving_runtime
