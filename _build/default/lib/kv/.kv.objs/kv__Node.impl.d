lib/kv/node.pp.ml: Core Hashtbl Kv_msg Kv_wal List Lock_table Ppx_deriving_runtime Sim Storage Txn
