lib/kv/db.pp.ml: Array Core Fmt Hashtbl Kv_msg Kv_wal List Node Ppx_deriving_runtime Sim Storage Txn
