lib/kv/workload.pp.ml: Array Float Fmt List Sim Txn
