lib/kv/kv_wal.pp.ml: Core List Lock_table Ppx_deriving_runtime
