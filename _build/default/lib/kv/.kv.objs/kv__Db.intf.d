lib/kv/db.pp.mli: Core Format Node Txn
