lib/kv/kv_msg.pp.mli: Core Format Txn
