lib/kv/lock_table.pp.mli: Format
