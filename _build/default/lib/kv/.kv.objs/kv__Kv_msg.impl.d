lib/kv/kv_msg.pp.ml: Core Fmt List Ppx_deriving_runtime Txn
