lib/kv/node.pp.mli: Core Format Hashtbl Kv_msg Kv_wal Lock_table Sim Storage Txn
