lib/kv/lock_table.pp.ml: Hashtbl List Ppx_deriving_runtime Queue
