lib/kv/kv_wal.pp.mli: Core Format Lock_table
