lib/kv/storage.pp.ml: Hashtbl List Option
