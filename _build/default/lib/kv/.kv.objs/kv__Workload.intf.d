lib/kv/workload.pp.mli: Sim Txn
