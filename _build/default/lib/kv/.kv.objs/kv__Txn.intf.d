lib/kv/txn.pp.mli: Core Format Lock_table
