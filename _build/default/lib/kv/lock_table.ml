(** Strict two-phase locking with waits-for deadlock detection.

    This is the concurrency-control substrate the paper's introduction
    appeals to: "a server may not be able to commit its part of a
    transaction due to issues of concurrency control, e.g. the resolution
    of a deadlock" — the organic source of unilateral {e no} votes.

    Locks are per-key, shared (read) or exclusive (write).  Requests that
    cannot be granted wait in FIFO order; a waits-for graph is maintained
    and checked for cycles on every new wait edge.  When a cycle is found
    the {e requesting} transaction is chosen as the victim (deterministic,
    and the newcomer has done the least work). *)

type mode = Shared | Exclusive [@@deriving show { with_path = false }, eq]

type granted = { txn : int; mode : mode }

type waiting = { w_txn : int; w_mode : mode }

type entry = { mutable holders : granted list; mutable queue : waiting list }

type outcome =
  | Granted
  | Waiting
  | Deadlock of int list  (** the waits-for cycle found, requester first *)
[@@deriving show { with_path = false }, eq]

type t = {
  locks : (string, entry) Hashtbl.t;
  mutable grants : (int -> unit) option;
      (** callback invoked with each transaction whose pending request
          becomes granted after a release *)
}

let create () = { locks = Hashtbl.create 64; grants = None }

let on_grant t f = t.grants <- Some f

let entry t key =
  match Hashtbl.find_opt t.locks key with
  | Some e -> e
  | None ->
      let e = { holders = []; queue = [] } in
      Hashtbl.add t.locks key e;
      e

let compatible held requested =
  match (held, requested) with Shared, Shared -> true | _ -> false

let holds_sufficient e ~txn ~mode =
  List.exists
    (fun g -> g.txn = txn && (g.mode = Exclusive || g.mode = mode))
    e.holders

let can_grant e ~txn ~mode =
  List.for_all (fun g -> g.txn = txn || compatible g.mode mode) e.holders

(* ---- waits-for graph, rebuilt on demand from the tables ---- *)

(** Transactions that [txn] currently waits for: the holders and the
    earlier queue entries of every key where [txn] queues. *)
let waits_for t txn =
  Hashtbl.fold
    (fun _key e acc ->
      if List.exists (fun w -> w.w_txn = txn) e.queue then
        let holders = List.filter_map (fun g -> if g.txn <> txn then Some g.txn else None) e.holders in
        let ahead =
          let rec take acc = function
            | [] -> acc
            | w :: _ when w.w_txn = txn -> acc
            | w :: rest -> take (w.w_txn :: acc) rest
          in
          take [] e.queue
        in
        holders @ ahead @ acc
      else acc)
    t.locks []
  |> List.sort_uniq compare

(** Cycle search in the waits-for graph: pretending [start] additionally
    waits for [extra], a cycle through [start] exists iff [start] is
    reachable from some node of [extra].  Breadth-first with a shared
    visited set (linear in the graph) and a parent map to reconstruct the
    cycle for diagnostics. *)
let find_cycle t ~start ~extra =
  let visited = Hashtbl.create 16 in
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.add visited n ();
        Queue.add n queue
      end)
    extra;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    if node = start then begin
      (* reconstruct start <- ... <- entry point *)
      let rec path n acc =
        match Hashtbl.find_opt parent n with None -> n :: acc | Some p -> path p (n :: acc)
      in
      found := Some (start :: path node [])
    end
    else
      List.iter
        (fun next ->
          if not (Hashtbl.mem visited next) then begin
            Hashtbl.add visited next ();
            Hashtbl.replace parent next node;
            Queue.add next queue
          end)
        (waits_for t node)
  done;
  !found

(** [acquire t ~txn ~key ~mode] requests a lock.  [Granted] means the lock
    is held on return.  [Waiting] means the request is queued; the
    [on_grant] callback fires when it is eventually granted.  [Deadlock]
    means granting would close a waits-for cycle: the request is {e not}
    queued and the caller must abort [txn]. *)
let acquire t ~txn ~key ~mode : outcome =
  let e = entry t key in
  if holds_sufficient e ~txn ~mode then Granted
  else if can_grant e ~txn ~mode && e.queue = [] then begin
    (* Lock upgrade replaces the shared grant. *)
    e.holders <- { txn; mode } :: List.filter (fun g -> g.txn <> txn) e.holders;
    Granted
  end
  else begin
    let blockers =
      List.filter_map (fun g -> if g.txn <> txn then Some g.txn else None) e.holders
      @ List.map (fun w -> w.w_txn) e.queue
      |> List.sort_uniq compare
    in
    match find_cycle t ~start:txn ~extra:blockers with
    | Some cycle -> Deadlock cycle
    | None ->
        e.queue <- e.queue @ [ { w_txn = txn; w_mode = mode } ];
        Waiting
  end

(* After any release, promote waiters in FIFO order. *)
let promote t key e =
  let rec go () =
    match e.queue with
    | [] -> ()
    | w :: rest ->
        if can_grant e ~txn:w.w_txn ~mode:w.w_mode then begin
          e.queue <- rest;
          e.holders <- { txn = w.w_txn; mode = w.w_mode } :: List.filter (fun g -> g.txn <> w.w_txn) e.holders;
          (match t.grants with Some f -> f w.w_txn | None -> ());
          go ()
        end
  in
  ignore key;
  go ()

(** [release_all t ~txn] drops every lock and queued request of [txn]
    (commit or abort time), promoting any newly grantable waiters. *)
let release_all t ~txn =
  Hashtbl.iter
    (fun key e ->
      let had = List.exists (fun g -> g.txn = txn) e.holders in
      e.holders <- List.filter (fun g -> g.txn <> txn) e.holders;
      e.queue <- List.filter (fun w -> w.w_txn <> txn) e.queue;
      if had || e.queue <> [] then promote t key e)
    t.locks

(** Keys on which [txn] currently holds a lock. *)
let held_keys t ~txn =
  Hashtbl.fold
    (fun key e acc -> if List.exists (fun g -> g.txn = txn) e.holders then key :: acc else acc)
    t.locks []
  |> List.sort compare

(** Number of transactions currently waiting on some lock. *)
let n_waiting t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.queue) t.locks 0

(** [force_grant t ~txn ~key ~mode] installs a lock unconditionally — used
    by crash recovery to re-establish the locks of prepared transactions
    from the log before the shard accepts new work. *)
let force_grant t ~txn ~key ~mode =
  let e = entry t key in
  if not (holds_sufficient e ~txn ~mode) then
    e.holders <- { txn; mode } :: List.filter (fun g -> g.txn <> txn) e.holders
