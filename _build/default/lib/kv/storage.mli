(** Site-local versioned key-value storage.  Writes land only through
    {!apply}, which installs a transaction's write set atomically and
    journals which transaction produced it — the atomicity checker uses
    that journal. *)

type key = string
type t

val create : unit -> t
val get : t -> key -> int option
val get_or : t -> key -> default:int -> int

val load : t -> (key * int) list -> unit
(** Initialise outside any transaction. *)

val apply : t -> txn:int -> (key * int) list -> unit
(** Atomically install a committed write set on behalf of [txn]. *)

val applied_txns : t -> int list
val has_applied : t -> txn:int -> bool
val keys : t -> key list
val total : t -> int
(** Sum of all values — the bank-invariant probe. *)
