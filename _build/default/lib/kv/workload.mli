(** Workload generators for the database experiments. *)

type spec = {
  n_txns : int;
  arrival_rate : float;  (** mean arrivals per time unit (Poisson) *)
  keys : int;
  ops_per_txn : int;
  write_ratio : float;
  zipf_skew : float;  (** 0.0 = uniform; higher = more contended *)
}

val default_spec : spec
val key_name : int -> string

val mixed : Sim.Rng.t -> spec -> (float * Txn.t) list
(** Generic read/write workload with Poisson arrivals; transaction ids
    are 1..n, arrival times increase. *)

val bank : Sim.Rng.t -> n_txns:int -> accounts:int -> arrival_rate:float -> (float * Txn.t) list
(** Transfer workload: each transaction moves a random amount between two
    distinct accounts, so the global balance total is invariant. *)

val bank_initial : accounts:int -> initial_balance:int -> (string * int) list
val bank_total : accounts:int -> initial_balance:int -> int
