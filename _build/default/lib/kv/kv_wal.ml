(** The database write-ahead log: per-site stable storage for the commit
    path.  Forced records at every protocol boundary, replayed by crash
    recovery to re-establish locks of in-doubt transactions and to classify
    them (before the vote: unilateral abort; after: in doubt). *)

type record =
  | P_prepared of {
      txn : int;
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
    }
      (** participant voted yes; its write set, locks and the transaction's
          topology are on the log (recovery needs to know whom to ask) *)
  | P_precommitted of { txn : int }
  | P_outcome of { txn : int; commit : bool }  (** participant learned / applied the outcome *)
  | C_begin of { txn : int; participants : Core.Types.site list; three_phase : bool }
      (** coordinator accepted the transaction *)
  | C_precommitted of { txn : int }  (** coordinator logged the buffer phase *)
  | C_decided of { txn : int; commit : bool }
  | C_finished of { txn : int }
[@@deriving show { with_path = false }, eq]

type t = { mutable records : record list (* newest first *) }

let create () = { records = [] }
let append t r = t.records <- r :: t.records
let records t = List.rev t.records
let length t = List.length t.records

(** Participant-side classification of [txn] from the log. *)
type p_class =
  | P_unknown  (** nothing logged: crashed before voting — unilateral abort *)
  | P_in_doubt of {
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
      precommitted : bool;
    }
  | P_resolved of bool

let classify_participant t ~txn : p_class =
  List.fold_left
    (fun acc r ->
      match r with
      | P_prepared { txn = x; coordinator; participants; writes; locks } when x = txn ->
          P_in_doubt { coordinator; participants; writes; locks; precommitted = false }
      | P_precommitted { txn = x } when x = txn -> (
          match acc with
          | P_in_doubt d -> P_in_doubt { d with precommitted = true }
          | other -> other)
      | P_outcome { txn = x; commit } when x = txn -> P_resolved commit
      | _ -> acc)
    P_unknown (records t)

(** Coordinator-side classification. *)
type c_class =
  | C_unknown
  | C_collecting of { participants : Core.Types.site list; three_phase : bool }
  | C_in_precommit of { participants : Core.Types.site list }
  | C_resolved of { participants : Core.Types.site list; commit : bool; finished : bool }

let classify_coordinator t ~txn : c_class =
  List.fold_left
    (fun acc r ->
      match (r, acc) with
      | C_begin { txn = x; participants; three_phase }, _ when x = txn ->
          C_collecting { participants; three_phase }
      | C_precommitted { txn = x }, C_collecting { participants; _ } when x = txn ->
          C_in_precommit { participants }
      | C_decided { txn = x; commit }, C_collecting { participants; _ } when x = txn ->
          C_resolved { participants; commit; finished = false }
      | C_decided { txn = x; commit }, C_in_precommit { participants } when x = txn ->
          C_resolved { participants; commit; finished = false }
      | C_finished { txn = x }, C_resolved res when x = txn ->
          C_resolved { res with finished = true }
      | _ -> acc)
    C_unknown (records t)

(** Every transaction id mentioned as coordinator on this log. *)
let coordinated_txns t =
  List.filter_map (function C_begin { txn; _ } -> Some txn | _ -> None) (records t)
  |> List.sort_uniq compare

(** Every transaction id mentioned as participant on this log. *)
let participated_txns t =
  List.filter_map (function P_prepared { txn; _ } -> Some txn | _ -> None) (records t)
  |> List.sort_uniq compare
