(** Per-site write-ahead log on stable storage: the protocol runtime
    forces a record before acting on a state transition; the recovery
    protocol replays the log to classify where the site was when it
    failed. *)

type record =
  | Began of { protocol : string; initial : string }
  | Transitioned of { to_state : string; vote : Core.Types.vote option }
      (** a protocol FSA transition, logged before its messages are sent *)
  | Moved of { to_state : string }
      (** termination phase 1: adopted the backup's state *)
  | Decided of Core.Types.outcome

val pp_record : Format.formatter -> record -> unit
val show_record : record -> string
val equal_record : record -> record -> bool

type t

val create : unit -> t
val append : t -> record -> unit
val records : t -> record list
(** Oldest first. *)

val length : t -> int

val last_state : t -> string option
(** Last logged local state, replayed in order. *)

val voted_yes : t -> bool
(** Whether the site cast a yes vote before the log ends — the "commit
    point" question for a participant. *)

val decided : t -> Core.Types.outcome option
val pp : Format.formatter -> t -> unit

(** Stable storage for a whole simulated system: one log per site,
    surviving that site's crashes. *)
module Store : sig
  type wal = t
  type t

  val create : n_sites:int -> t
  val log : t -> site:Core.Types.site -> wal
end
