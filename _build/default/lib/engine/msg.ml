(** Wire messages exchanged by the protocol runtime: ordinary protocol FSA
    messages, the termination protocol's two phases, and the recovery
    protocol's outcome queries. *)

type t =
  | Proto of Core.Message.t  (** a commit-protocol FSA message *)
  | Move_to of string  (** termination phase 1: adopt this local state *)
  | Move_ack of string  (** acknowledgement, carrying the adopted state *)
  | Decide of Core.Types.outcome  (** termination phase 2 / final notice *)
  | Query_outcome  (** recovery / blocked-site query: what happened? *)
  | Outcome_reply of Core.Types.outcome option
  | State_req  (** quorum termination: a backup polls participant states *)
  | State_rep of string  (** the participant's current local state *)
[@@deriving show { with_path = false }, eq]

let to_string = function
  | Proto m -> Core.Message.show m
  | Move_to s -> "move-to(" ^ s ^ ")"
  | Move_ack s -> "move-ack(" ^ s ^ ")"
  | Decide Core.Types.Committed -> "decide(commit)"
  | Decide Core.Types.Aborted -> "decide(abort)"
  | Query_outcome -> "query-outcome"
  | Outcome_reply None -> "outcome-reply(unknown)"
  | Outcome_reply (Some Core.Types.Committed) -> "outcome-reply(commit)"
  | Outcome_reply (Some Core.Types.Aborted) -> "outcome-reply(abort)"
  | State_req -> "state-req"
  | State_rep s -> "state-rep(" ^ s ^ ")"
