(** Per-site write-ahead log on stable storage.

    The paper assumes each site has a local recovery strategy providing
    atomicity at the local level.  We model it with an append-only log that
    survives crashes (it lives outside the site's volatile state): the
    protocol runtime forces a record {e before} acting on a state
    transition, and the recovery protocol replays the log to classify where
    the site was when it failed. *)

type record =
  | Began of { protocol : string; initial : string }
  | Transitioned of { to_state : string; vote : Core.Types.vote option }
      (** a protocol FSA transition, logged before its messages are sent *)
  | Moved of { to_state : string }
      (** phase 1 of the termination protocol: adopted the backup's state *)
  | Decided of Core.Types.outcome
[@@deriving show { with_path = false }, eq]

type t = { mutable records : record list (* newest first *) }

let create () = { records = [] }
let append t r = t.records <- r :: t.records
let records t = List.rev t.records
let length t = List.length t.records

(** Last logged local state, replayed in order: [Began] sets it,
    [Transitioned]/[Moved] update it. *)
let last_state t =
  List.fold_left
    (fun acc r ->
      match r with
      | Began { initial; _ } -> Some initial
      | Transitioned { to_state; _ } | Moved { to_state } -> Some to_state
      | Decided _ -> acc)
    None (records t)

(** Whether the site had cast a yes vote before the log ends — the paper's
    "commit point" question for a participant: before voting yes it may
    abort unilaterally upon recovery. *)
let voted_yes t =
  List.exists
    (function Transitioned { vote = Some Core.Types.Yes; _ } -> true | _ -> false)
    (records t)

let decided t =
  List.fold_left (fun acc r -> match r with Decided o -> Some o | _ -> acc) None (records t)

let pp ppf t = Fmt.(list ~sep:cut pp_record) ppf (records t)

(** Stable storage for a whole simulated system: one log per site,
    surviving that site's crashes. *)
module Store = struct
  type wal = t
  type nonrec t = wal array (* index = site - 1 *)

  let create ~n_sites : t = Array.init n_sites (fun _ -> create ())

  let log (t : t) ~site = t.(site - 1)
end
