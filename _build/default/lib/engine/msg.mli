(** Wire messages exchanged by the protocol runtime. *)

type t =
  | Proto of Core.Message.t  (** a commit-protocol FSA message *)
  | Move_to of string  (** termination phase 1: adopt this local state *)
  | Move_ack of string
  | Decide of Core.Types.outcome  (** termination phase 2 / final notice *)
  | Query_outcome  (** recovery / blocked-site query *)
  | Outcome_reply of Core.Types.outcome option
  | State_req  (** quorum termination: a backup polls participant states *)
  | State_rep of string

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val to_string : t -> string
