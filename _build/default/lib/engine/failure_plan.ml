(** Failure injection plans.

    A plan describes, for a single simulated run, which sites crash, when,
    and how "cleanly".  Crashes can be pinned to protocol progress — before
    a site's k-th state transition, or part-way through the message sends of
    that transition (the paper's partially completed transition: "only part
    of the messages that should be sent during a transition are actually
    transmitted") — or to wall-clock simulation time.  Recoveries are
    scheduled by time. *)

type crash_mode =
  | Before_transition  (** crash before logging/acting on the transition *)
  | After_logging of int
      (** complete the forced log write, then send only the first [k]
          messages of the transition before crashing *)
  | After_transition  (** crash after the transition completes fully *)
[@@deriving show { with_path = false }, eq]

type step_crash = {
  site : Core.Types.site;
  step : int;  (** the site's n-th protocol transition, 0-based *)
  mode : crash_mode;
}
[@@deriving show { with_path = false }, eq]

type t = {
  step_crashes : step_crash list;
  timed_crashes : (Core.Types.site * float) list;
  recoveries : (Core.Types.site * float) list;
  move_crashes : (Core.Types.site * int) list;
      (** crash a backup coordinator after sending the first [k] Move_to
          messages of termination phase 1 (cascading-failure experiments) *)
  decide_crashes : (Core.Types.site * int) list;
      (** crash a backup coordinator after sending the first [k] Decide
          messages of termination phase 2 *)
}
[@@deriving show { with_path = false }, eq]

let none =
  { step_crashes = []; timed_crashes = []; recoveries = []; move_crashes = []; decide_crashes = [] }

let make ?(step_crashes = []) ?(timed_crashes = []) ?(recoveries = []) ?(move_crashes = [])
    ?(decide_crashes = []) () =
  { step_crashes; timed_crashes; recoveries; move_crashes; decide_crashes }

(** [crash_at_step ~site ~step ~mode] : the simplest single-crash plan. *)
let crash_at_step ~site ~step ~mode = { none with step_crashes = [ { site; step; mode } ] }

let find_step_crash t ~site ~step =
  List.find_opt (fun c -> c.site = site && c.step = step) t.step_crashes
  |> Option.map (fun c -> c.mode)

let crashing_sites t =
  List.map (fun c -> c.site) t.step_crashes
  @ List.map fst t.timed_crashes @ List.map fst t.move_crashes @ List.map fst t.decide_crashes
  |> List.sort_uniq compare
