(** A distributed election protocol (bully algorithm).

    The paper's termination protocol begins by electing a backup
    coordinator and notes that "any distributed election mechanism can be
    used".  The {!Runtime} uses the deterministic rank rule induced by the
    reliable failure detector (lowest operational never-crashed site);
    this module provides a full message-based alternative — Garcia-Molina's
    bully algorithm — as a standalone substrate, so the election cost and
    behaviour under cascading failures can be studied in isolation.

    Protocol (highest id wins):
    - a site starting an election sends [Election] to every higher id;
    - an operational higher site replies [Answer] and starts its own
      election (thereby bullying the lower candidate out);
    - a candidate hearing no [Answer] within the timeout declares itself
      by broadcasting [Coordinator];
    - the failure detector restarts the election when the incumbent
      crashes, and a recovered higher site usurps on restart. *)

type msg = Election | Answer | Coordinator of int

let msg_to_string = function
  | Election -> "election"
  | Answer -> "answer"
  | Coordinator c -> Fmt.str "coordinator(%d)" c

type site_state = {
  site : int;
  mutable leader : int option;
  mutable awaiting_answers : bool;
  mutable answer_timer : int option;
  mutable leaders_seen : (float * int) list;  (** (time, leader) history, newest first *)
}

type t = {
  world : msg Sim.World.t;
  states : site_state array;
  answer_timeout : float;
}

let state t site = t.states.(site - 1)

let higher t site = List.filter (fun s -> s > site) (Sim.World.sites t.world)
let everyone_else t site = List.filter (fun s -> s <> site) (Sim.World.sites t.world)

let note_leader t st leader =
  (match st.leaders_seen with
  | (_, l) :: _ when l = leader -> ()
  | _ -> st.leaders_seen <- (Sim.World.now t.world, leader) :: st.leaders_seen);
  st.leader <- Some leader

let declare_victory t ctx =
  let self = ctx.Sim.World.self in
  let st = state t self in
  st.awaiting_answers <- false;
  if st.leader <> Some self then Sim.Metrics.incr (Sim.World.metrics t.world) "elections_won";
  note_leader t st self;
  (* re-broadcast even as the incumbent: a requester that just started an
     election is waiting to hear who is in charge *)
  Sim.World.broadcast ctx ~dsts:(everyone_else t self) (Coordinator self)

let rec start_election t ctx =
  let self = ctx.Sim.World.self in
  let st = state t self in
  if not st.awaiting_answers then begin
    Sim.Metrics.incr (Sim.World.metrics t.world) "elections_started";
    match higher t self with
    | [] -> declare_victory t ctx
    | rivals ->
        st.awaiting_answers <- true;
        Sim.World.broadcast ctx ~dsts:rivals Election;
        let timer =
          Sim.World.set_timer ctx ~delay:t.answer_timeout (fun () ->
              if st.awaiting_answers then declare_victory t ctx)
        in
        st.answer_timer <- Some timer
  end

and on_message t ctx ~src msg =
  let self = ctx.Sim.World.self in
  let st = state t self in
  match msg with
  | Election ->
      (* a lower site wants the job: bully it and run ourselves *)
      Sim.World.send ctx ~dst:src Answer;
      start_election t ctx
  | Answer ->
      (* a higher site is alive: stand down and wait for its declaration *)
      st.awaiting_answers <- false;
      (match st.answer_timer with
      | Some id ->
          Sim.World.cancel_timer ctx id;
          st.answer_timer <- None
      | None -> ())
  | Coordinator c ->
      st.awaiting_answers <- false;
      note_leader t st c

let on_peer_down t ctx failed =
  let st = state t ctx.Sim.World.self in
  (* restart the election if the incumbent died, or if we were waiting on
     the failed rival's answer *)
  if st.leader = Some failed then begin
    st.leader <- None;
    start_election t ctx
  end
  else if st.awaiting_answers && failed > ctx.Sim.World.self then start_election t ctx

let on_restart t ctx =
  let st = state t ctx.Sim.World.self in
  st.leader <- None;
  st.awaiting_answers <- false;
  st.answer_timer <- None;
  (* a recovered site re-enters the fray: if it outranks the incumbent it
     will usurp *)
  start_election t ctx

(** [create ~n_sites ~seed ()] sets up an election world; call {!run} to
    execute it with a crash/recovery schedule. *)
let create ?(answer_timeout = 4.0) ~n_sites ~seed () =
  let world = Sim.World.create ~n_sites ~seed ~msg_to_string () in
  {
    world;
    states =
      Array.init n_sites (fun i ->
          { site = i + 1; leader = None; awaiting_answers = false; answer_timer = None; leaders_seen = [] });
    answer_timeout;
  }

(** [run t ~crashes ~recoveries ()] starts an election at every site at
    time 0 and plays out the failure schedule.  Returns the final
    simulation time. *)
let run t ?(crashes = []) ?(recoveries = []) ?(until = 10_000.0) () =
  List.iter (fun (s, at) -> Sim.World.schedule_crash t.world ~at s) crashes;
  List.iter (fun (s, at) -> Sim.World.schedule_recovery t.world ~at s) recoveries;
  let handlers _site : msg Sim.World.handlers =
    {
      Sim.World.on_start = (fun ctx -> start_election t ctx);
      on_message = (fun ctx ~src msg -> on_message t ctx ~src msg);
      on_peer_down = (fun ctx failed -> on_peer_down t ctx failed);
      on_peer_up = (fun _ctx _ -> ());
      on_restart = (fun ctx -> on_restart t ctx);
    }
  in
  Sim.World.run t.world ~handlers ~until ()

(** The leader according to [site], as of the end of the run. *)
let leader_at t ~site = (state t site).leader

(** Every (time, leader) declaration [site] witnessed, oldest first. *)
let leader_history t ~site = List.rev (state t site).leaders_seen

(** All operational sites agree on an operational leader. *)
let agreement t =
  let ops = Sim.World.operational_sites t.world in
  match ops with
  | [] -> true
  | first :: _ -> (
      match leader_at t ~site:first with
      | None -> false
      | Some l ->
          Sim.World.is_alive t.world l
          && List.for_all (fun s -> leader_at t ~site:s = Some l) ops)
