(** The backup coordinator's rulebook, compiled from the formal analysis.

    Before a protocol is deployed, its reachable state graph is analyzed
    once; the resulting table tells a backup coordinator, for each local
    state it may find itself in, whether the decision rule yields commit,
    abort — or whether the state is a {e blocking} state (its concurrency
    set offers no safe decision, which the fundamental theorem proves can
    only happen in blocking protocols such as 2PC). *)

type verdict =
  | Decide of Core.Types.outcome
  | Blocked  (** no safe unilateral decision exists from this state *)
[@@deriving show { with_path = false }, eq]

type t = {
  protocol : Core.Protocol.t;
  verdicts : (Core.Types.site * string, verdict) Hashtbl.t;
  nonblocking : bool;  (** the fundamental theorem's verdict on the protocol *)
  resilience : int;
}

(** [compile protocol] builds the graph, evaluates the theorem and the
    decision rule for every occupiable (site, state) pair.

    The verdict generalizes the paper's rule so it stays safe {e and}
    coherent across sites (cascading backups must never reach opposite
    decisions from the same state id):

    - {b commit} iff the state is committable and its concurrency set
      contains no abort state — everyone has voted yes and nobody can have
      aborted;
    - otherwise {b abort} iff its concurrency set contains no commit state
      — nobody can have committed;
    - otherwise {b blocked}.

    On the canonical (homogeneous) protocols this coincides with the
    paper's "commit iff the concurrency set contains a commit state": under
    the theorem's condition 2 a concurrency set containing a commit state
    implies committability.  The generalized form additionally lets the
    central-site 3PC coordinator commit from its buffer state [p1] — whose
    exact concurrency set contains no [c] (slaves enter [c] only after the
    coordinator leaves [p1]) yet from which commit is the only decision
    coherent with what a slave backup in [p] would decide. *)
let compile (protocol : Core.Protocol.t) : t =
  let graph = Core.Reachability.build protocol in
  let cs = Core.Concurrency.compute graph in
  let cm = Core.Committable.compute graph in
  let report = Core.Nonblocking.analyze graph in
  let verdicts = Hashtbl.create 64 in
  List.iter
    (fun site ->
      List.iter
        (fun state ->
          let has_commit = Core.Concurrency.contains_commit cs ~site ~state in
          let has_abort = Core.Concurrency.contains_abort cs ~site ~state in
          let committable = Core.Committable.is_committable cm ~site ~state in
          let verdict =
            if committable && not has_abort then Decide Core.Types.Committed
            else if not has_commit then Decide Core.Types.Aborted
            else Blocked
          in
          Hashtbl.replace verdicts (site, state) verdict)
        (Core.Concurrency.occupied_states cs ~site))
    (Core.Protocol.sites protocol);
  (* Coherence: no state id may yield opposite decisions at two sites —
     successive backup coordinators homogenized by phase 1 would then
     contradict each other.  This can only arise for protocols outside the
     catalog; refuse rather than risk inconsistency. *)
  let by_id = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (_site, id) v ->
      match v with
      | Decide o -> (
          match Hashtbl.find_opt by_id id with
          | Some o' when o' <> o ->
              Fmt.invalid_arg "Rulebook.compile: incoherent decisions for state %s of %s" id
                protocol.Core.Protocol.name
          | _ -> Hashtbl.replace by_id id o)
      | Blocked -> ())
    verdicts;
  (* Final states decide themselves regardless of concurrency sets. *)
  List.iter
    (fun site ->
      let a = Core.Protocol.automaton protocol site in
      List.iter
        (fun (s : Core.Automaton.state) ->
          match Core.Types.outcome_of_kind s.Core.Automaton.kind with
          | Some o -> Hashtbl.replace verdicts (site, s.Core.Automaton.id) (Decide o)
          | None -> ())
        a.Core.Automaton.states)
    (Core.Protocol.sites protocol);
  {
    protocol;
    verdicts;
    nonblocking = report.Core.Nonblocking.nonblocking;
    resilience = report.Core.Nonblocking.resilience;
  }

(** [verdict t ~site ~state] : what a backup coordinator at [site], finding
    itself in [state], may safely do. *)
let verdict t ~site ~state =
  match Hashtbl.find_opt t.verdicts (site, state) with
  | Some v -> v
  | None ->
      (* A state never occupied in failure-free runs (it cannot arise);
         conservatively treat as blocked. *)
      Blocked

let pp ppf t =
  Fmt.pf ppf "@[<v>rulebook for %s (%s, resilience %d):@," t.protocol.Core.Protocol.name
    (if t.nonblocking then "nonblocking" else "blocking")
    t.resilience;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.verdicts []
  |> List.sort compare
  |> List.iter (fun ((site, state), v) ->
         Fmt.pf ppf "  site %d, %-4s -> %a@," site state pp_verdict v);
  Fmt.pf ppf "@]"
