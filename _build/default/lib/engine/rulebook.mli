(** The backup coordinator's rulebook, compiled from the formal analysis:
    for each local state, whether the decision rule yields commit, abort,
    or no safe decision at all (a blocking state — which the fundamental
    theorem proves exist only in blocking protocols). *)

type verdict =
  | Decide of Core.Types.outcome
  | Blocked  (** no safe unilateral decision exists from this state *)

val pp_verdict : Format.formatter -> verdict -> unit
val show_verdict : verdict -> string
val equal_verdict : verdict -> verdict -> bool

type t = private {
  protocol : Core.Protocol.t;
  verdicts : (Core.Types.site * string, verdict) Hashtbl.t;
  nonblocking : bool;  (** the fundamental theorem's verdict *)
  resilience : int;
}

val compile : Core.Protocol.t -> t
(** Builds the reachable state graph and evaluates, per (site, state):
    commit iff the state is committable and its concurrency set contains
    no abort state; abort iff the set contains no commit state; blocked
    otherwise.  This generalization of the paper's rule coincides with it
    on canonical protocols and is additionally coherent per state id
    across sites (a cascade of backup coordinators can never reach
    opposite decisions from the same moved-to state).
    @raise Invalid_argument if a protocol would yield incoherent
    decisions. *)

val verdict : t -> site:Core.Types.site -> state:string -> verdict
(** Unreachable states are conservatively [Blocked]. *)

val pp : Format.formatter -> t -> unit
