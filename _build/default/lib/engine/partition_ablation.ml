(** The partition ablation: run a commit protocol with the paper's
    reliable-failure-detection assumption deliberately violated.

    A network partition makes each side's detector wrongly report the
    other side as failed.  Under 3PC the minority side's termination
    protocol then decides from its own local state while the majority
    decides the other way — split brain, the classic limit of 3PC that
    motivates why Skeen's model explicitly assumes the network "never
    fails" and reports failures reliably.  Under 2PC the orphaned side
    merely blocks (and resolves after healing), trading availability for
    safety.

    This lives next to {!Runtime} so the experiment harness and tests can
    name the ablation explicitly. *)

let run ~rulebook ~from_t ~until_t ~groups ?(seed = 1) ?(tracing = false) () : Runtime.result =
  Runtime.run
    (Runtime.config ~seed ~tracing ~partition:(from_t, until_t, groups) rulebook)
