(** Failure injection plans: which sites crash, when, and how cleanly —
    pinned to protocol progress (a site's k-th transition, possibly
    part-way through its message sends: the paper's partially completed
    transition) or to simulation time.  Recoveries are timed. *)

type crash_mode =
  | Before_transition  (** crash before logging/acting on the transition *)
  | After_logging of int
      (** complete the forced log write, then send only the first [k]
          messages of the transition before crashing *)
  | After_transition

val pp_crash_mode : Format.formatter -> crash_mode -> unit
val show_crash_mode : crash_mode -> string
val equal_crash_mode : crash_mode -> crash_mode -> bool

type step_crash = { site : Core.Types.site; step : int; mode : crash_mode }

val pp_step_crash : Format.formatter -> step_crash -> unit

type t = {
  step_crashes : step_crash list;
  timed_crashes : (Core.Types.site * float) list;
  recoveries : (Core.Types.site * float) list;
  move_crashes : (Core.Types.site * int) list;
      (** crash a backup after sending the first [k] Move_to messages *)
  decide_crashes : (Core.Types.site * int) list;
      (** crash a backup after sending the first [k] Decide messages *)
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val none : t

val make :
  ?step_crashes:step_crash list ->
  ?timed_crashes:(Core.Types.site * float) list ->
  ?recoveries:(Core.Types.site * float) list ->
  ?move_crashes:(Core.Types.site * int) list ->
  ?decide_crashes:(Core.Types.site * int) list ->
  unit ->
  t

val crash_at_step : site:Core.Types.site -> step:int -> mode:crash_mode -> t
(** The simplest single-crash plan. *)

val find_step_crash : t -> site:Core.Types.site -> step:int -> crash_mode option
val crashing_sites : t -> Core.Types.site list
