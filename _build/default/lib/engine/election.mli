(** A distributed election protocol (bully algorithm, highest id wins).

    The paper's termination protocol begins by electing a backup
    coordinator, noting that "any distributed election mechanism can be
    used"; this module provides a full message-based implementation as a
    standalone substrate (the {!Runtime} uses the simpler deterministic
    rank rule its reliable failure detector licenses). *)

type msg = Election | Answer | Coordinator of int

val msg_to_string : msg -> string

type t

val create : ?answer_timeout:float -> n_sites:int -> seed:int -> unit -> t

val run :
  t ->
  ?crashes:(int * float) list ->
  ?recoveries:(int * float) list ->
  ?until:float ->
  unit ->
  float
(** Start an election at every site at time 0 and play out the failure
    schedule; returns the final simulation time. *)

val leader_at : t -> site:int -> int option
(** The leader according to [site] at the end of the run. *)

val leader_history : t -> site:int -> (float * int) list
(** Every distinct (time, leader) declaration [site] witnessed, oldest
    first. *)

val agreement : t -> bool
(** All operational sites agree on an operational leader. *)
