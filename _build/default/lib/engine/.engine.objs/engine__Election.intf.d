lib/engine/election.pp.mli:
