lib/engine/runtime.pp.mli: Core Failure_plan Format Rulebook Sim
