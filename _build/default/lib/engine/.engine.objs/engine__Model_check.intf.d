lib/engine/model_check.pp.mli: Core Format Rulebook
