lib/engine/rulebook.pp.ml: Core Fmt Hashtbl List Ppx_deriving_runtime
