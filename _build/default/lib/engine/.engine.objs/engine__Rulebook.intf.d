lib/engine/rulebook.pp.mli: Core Format Hashtbl
