lib/engine/wal.pp.mli: Core Format
