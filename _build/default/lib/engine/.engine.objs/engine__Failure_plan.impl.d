lib/engine/failure_plan.pp.ml: Core List Option Ppx_deriving_runtime
