lib/engine/model_check.pp.ml: Array Core Fmt Hashtbl List Queue Rulebook String
