lib/engine/msg.pp.mli: Core Format
