lib/engine/election.pp.ml: Array Fmt List Sim
