lib/engine/runtime.pp.ml: Array Core Failure_plan Fmt List Msg Option Rulebook Sim Wal
