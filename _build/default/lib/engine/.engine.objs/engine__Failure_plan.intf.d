lib/engine/failure_plan.pp.mli: Core Format
