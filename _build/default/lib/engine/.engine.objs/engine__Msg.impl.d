lib/engine/msg.pp.ml: Core Ppx_deriving_runtime
