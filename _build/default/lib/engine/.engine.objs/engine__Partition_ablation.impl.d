lib/engine/partition_ablation.pp.ml: Runtime
