lib/engine/wal.pp.ml: Array Core Fmt List Ppx_deriving_runtime
