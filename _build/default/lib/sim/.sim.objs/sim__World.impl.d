lib/sim/world.pp.ml: Array Eventq Fmt List Metrics Rng
