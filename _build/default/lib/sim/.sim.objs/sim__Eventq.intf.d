lib/sim/eventq.pp.mli:
