lib/sim/rng.pp.ml: Array Int64 List
