lib/sim/eventq.pp.ml: Array Float
