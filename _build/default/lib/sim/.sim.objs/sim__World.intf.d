lib/sim/world.pp.mli: Format Metrics Rng
