lib/sim/metrics.pp.ml: Fmt Hashtbl List
