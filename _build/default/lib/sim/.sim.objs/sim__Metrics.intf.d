lib/sim/metrics.pp.mli: Format
