(** A binary min-heap of timestamped events.  Ties on time are broken by
    insertion sequence, making the schedule fully deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on negative or NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> float option
