(** Simulation metrics: labelled counters and simple summary statistics,
    collected per run and reported by the experiment harness. *)

type summary = { count : int; total : float; min : float; max : float; mean : float }

type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; samples = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name v =
  match Hashtbl.find_opt t.samples name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add t.samples name (ref [ v ])

let summarize t name : summary option =
  match Hashtbl.find_opt t.samples name with
  | None | Some { contents = [] } -> None
  | Some { contents = xs } ->
      let count = List.length xs in
      let total = List.fold_left ( +. ) 0.0 xs in
      let mn = List.fold_left min infinity xs and mx = List.fold_left max neg_infinity xs in
      Some { count; total; min = mn; max = mx; mean = total /. float_of_int count }

let counters t = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters [] |> List.sort compare

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-28s %d@," k v) (counters t);
  Hashtbl.fold (fun k _ acc -> k :: acc) t.samples []
  |> List.sort compare
  |> List.iter (fun k ->
         match summarize t k with
         | Some s ->
             Fmt.pf ppf "%-28s n=%d mean=%.3f min=%.3f max=%.3f@," k s.count s.mean s.min s.max
         | None -> ())
