(** Simulation metrics: labelled counters and simple summary statistics,
    collected per run and reported by the experiment harness. *)

type t

type summary = { count : int; total : float; min : float; max : float; mean : float }

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 for unknown counters. *)

val observe : t -> string -> float -> unit
val summarize : t -> string -> summary option
val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
