(** What the paper's network assumption is worth: run 3PC through a
    network partition three ways.

    Skeen's model assumes the network never fails and reports site
    failures reliably.  This example deliberately breaks that assumption —
    a partition separates site 3 from sites 1 and 2 during the commit
    window, and each side's failure detector wrongly reports the other
    side dead — then shows:

    1. 3PC with the paper's termination rule splits its brain
       (the majority commits, the minority aborts);
    2. 2PC merely blocks the minority and recovers consistency when the
       partition heals;
    3. 3PC with quorum-based termination stays consistent AND converges —
       the direction Skeen's quorum-commit follow-up work takes.

    Run with: dune exec examples/partition_tolerance.exe *)

let partition = (1.5, 200.0, [ [ 1; 2 ]; [ 3 ] ])

let describe label (r : Engine.Runtime.result) =
  Fmt.pr "--- %s ---@.%a@." label Engine.Runtime.pp_result r;
  Fmt.pr "verdict: %s@.@."
    (if not r.Engine.Runtime.consistent then "ATOMICITY VIOLATED (split brain)"
     else if r.Engine.Runtime.blocked_operational > 0 then "consistent, but sites left blocked"
     else "consistent, everyone decided");
  r

let () =
  Fmt.pr
    "Partition {1,2} | {3} from t=1.5 to t=200, with false failure reports@.\
     on both sides (the paper's assumptions, violated).@.@.";

  let rb3 = Engine.Rulebook.compile (Core.Catalog.central_3pc 3) in
  let rb2 = Engine.Rulebook.compile (Core.Catalog.central_2pc 3) in

  let r1 =
    describe "3PC, Skeen termination rule"
      (Engine.Runtime.run (Engine.Runtime.config ~partition rb3))
  in
  assert (not r1.Engine.Runtime.consistent);

  let r2 =
    describe "2PC (blocks instead)" (Engine.Runtime.run (Engine.Runtime.config ~partition rb2))
  in
  assert r2.Engine.Runtime.consistent;

  let r3 =
    describe "3PC, quorum termination (majority = 2)"
      (Engine.Runtime.run
         (Engine.Runtime.config ~partition
            ~termination:(Engine.Runtime.Quorum (Engine.Runtime.majority 3))
            rb3))
  in
  assert r3.Engine.Runtime.consistent;
  assert (List.for_all (fun (s : Engine.Runtime.site_report) -> s.outcome <> None) r3.Engine.Runtime.reports);

  Fmt.pr
    "Summary:@.\
    \  - the paper's theorem is sharp: its nonblocking guarantee consumes@.\
    \    the reliable-detector assumption entirely;@.\
    \  - 2PC trades availability for safety under partitions;@.\
    \  - quorum termination buys both, at the price of blocking minorities@.\
    \    (and of never terminating with fewer than a quorum of survivors).@."
