(** The reachable state graph (paper §3): all global states reachable from
    the transaction's initial global state, built by breadth-first search
    with hash-consed nodes.

    The graph grows exponentially with the number of sites; the paper notes
    that in practice it seldom needs to be built — the adjacency lemma
    suffices for synchronous protocols — but we build it exactly for small
    [n] both to regenerate the paper's figure and to cross-check the fast
    path.

    The search runs entirely over {!Intern}'s compact encoding: a global
    state is one packed [int array] (vote bitset, interned local state
    codes, sorted int-coded message multiset) deduplicated under a
    memoized FNV hash.  The earlier implementation hashed states by
    formatting every network message to a string on every hash; interning
    removes all string traffic from the hot loop while producing the
    identical graph (same states, same indices, same edge order — see the
    differential tests in [test_statespace.ml]). *)

type node = {
  state : Global.t;
  index : int;  (** BFS discovery order, 0 = initial state *)
  mutable succs : (Types.site * Automaton.transition * int) list;
      (** outgoing edges: (site that moved, transition fired, target index) *)
}

type t = {
  protocol : Protocol.t;
  nodes : node array;  (** indexed by node [index] *)
}

exception Too_large of int

(* Packed encoding of a global state, for [n] sites:
   [| voted bitset; local code (site 1) .. local code (site n);
      sorted message codes ... |] *)

let decode_state (c : Intern.t) (data : int array) : Global.t =
  let n = c.Intern.n in
  let voted = data.(0) in
  {
    Global.locals = Array.init n (fun i -> Intern.state_name c data.(i + 1));
    voted_yes = Array.init n (fun i -> voted land (1 lsl i) <> 0);
    network =
      Message.Multiset.of_list
        (List.init (Array.length data - n - 1) (fun j -> Intern.decode_msg c data.(j + n + 1)));
  }

(** [build ?limit p] explores the full reachable state graph of [p].
    Raises {!Too_large} if more than [limit] (default 2_000_000) global
    states are discovered. *)
let build ?(limit = 2_000_000) (p : Protocol.t) : t =
  let c = Intern.compile p in
  let n = Protocol.n_sites p in
  let table = Intern.Tbl.create 4096 in
  let nodes = ref (Array.make 1024 None) and n_nodes = ref 0 in
  let queue = Queue.create () in
  let intern_packed data =
    let key = Intern.key data in
    match Intern.Tbl.find_opt table key with
    | Some ix -> ix
    | None ->
        let ix = !n_nodes in
        if ix >= limit then raise (Too_large ix);
        incr n_nodes;
        Intern.Tbl.add table key ix;
        if ix >= Array.length !nodes then begin
          let grown = Array.make (2 * Array.length !nodes) None in
          Array.blit !nodes 0 grown 0 (Array.length !nodes);
          nodes := grown
        end;
        let node = { state = decode_state c data; index = ix; succs = [] } in
        !nodes.(ix) <- Some node;
        Queue.add (node, data) queue;
        ix
  in
  let init =
    let data = Array.make (1 + n + Array.length c.Intern.initial_net) 0 in
    for i = 0 to n - 1 do
      data.(i + 1) <- c.Intern.initial_locals.(i)
    done;
    Array.blit c.Intern.initial_net 0 data (n + 1) (Array.length c.Intern.initial_net);
    data
  in
  ignore (intern_packed init);
  while not (Queue.is_empty queue) do
    let node, data = Queue.pop queue in
    let voted = data.(0) in
    let net_len = Array.length data - n - 1 in
    let net = Array.sub data (n + 1) net_len in
    let succs = ref [] in
    (* iterate sites in descending order so the accumulated (prepended)
       list comes out in ascending site order, matching the original
       [List.concat_map] over sites *)
    for i = n - 1 downto 0 do
      let trs = c.Intern.trans.(i).(data.(i + 1)) in
      for ti = Array.length trs - 1 downto 0 do
        let tr = trs.(ti) in
        match Intern.Net.remove_all tr.Intern.c_consumes net with
        | None -> ()
        | Some base ->
            let net' = Intern.Net.add_all tr.Intern.c_emits_sorted base in
            let data' = Array.make (1 + n + Array.length net') 0 in
            data'.(0) <- (if tr.Intern.c_vote_yes then voted lor (1 lsl i) else voted);
            Array.blit data 1 data' 1 n;
            data'.(i + 1) <- tr.Intern.c_to;
            Array.blit net' 0 data' (n + 1) (Array.length net');
            let ix = intern_packed data' in
            succs := (i + 1, tr.Intern.c_tr, ix) :: !succs
      done
    done;
    node.succs <- !succs
  done;
  let arr =
    Array.init !n_nodes (fun i ->
        match !nodes.(i) with Some node -> node | None -> assert false)
  in
  { protocol = p; nodes = arr }

let n_nodes t = Array.length t.nodes
let n_edges t = Array.fold_left (fun acc node -> acc + List.length node.succs) 0 t.nodes
let node t ix = t.nodes.(ix)
let initial_node t = t.nodes.(0)
let iter_nodes f t = Array.iter f t.nodes

let fold_nodes f t acc = Array.fold_left (fun acc node -> f node acc) acc t.nodes

(** Indices of terminal states (no successors). *)
let terminal_nodes t =
  Array.to_list t.nodes |> List.filter (fun node -> node.succs = [])

(** Terminal states that are not final: deadlocked states. *)
let deadlocked_nodes t =
  terminal_nodes t |> List.filter (fun node -> not (Global.is_final t.protocol node.state))

(** Reachable states containing both a local commit and a local abort —
    atomicity violations.  Empty for every correct commit protocol. *)
let inconsistent_nodes t =
  Array.to_list t.nodes |> List.filter (fun node -> Global.is_inconsistent t.protocol node.state)

(** The possible global verdicts: which final outcomes are reachable. *)
let reachable_outcomes t =
  let commit = ref false and abort = ref false in
  iter_nodes
    (fun node ->
      if Global.is_final t.protocol node.state then
        match node.state.Global.locals.(0) with
        | id ->
            let kind = Automaton.kind_of (Protocol.automaton t.protocol 1) id in
            if Types.is_commit kind then commit := true;
            if Types.is_abort kind then abort := true)
    t;
  (!commit, !abort)

(** Statistics summarising a reachable state graph, as printed by the
    experiment harness. *)
type stats = {
  states : int;
  edges : int;
  final : int;
  terminal : int;
  deadlocked : int;
  inconsistent : int;
  commit_reachable : bool;
  abort_reachable : bool;
}

(* One pass over the node array computes every count (the per-count list
   materialisations this replaced walked the array five times and built
   four intermediate lists). *)
let stats t =
  let edges = ref 0
  and final = ref 0
  and terminal = ref 0
  and deadlocked = ref 0
  and inconsistent = ref 0
  and commit_reachable = ref false
  and abort_reachable = ref false in
  Array.iter
    (fun node ->
      edges := !edges + List.length node.succs;
      let is_final = Global.is_final t.protocol node.state in
      if is_final then begin
        incr final;
        let kind = Automaton.kind_of (Protocol.automaton t.protocol 1) node.state.Global.locals.(0) in
        if Types.is_commit kind then commit_reachable := true;
        if Types.is_abort kind then abort_reachable := true
      end;
      if node.succs = [] then begin
        incr terminal;
        if not is_final then incr deadlocked
      end;
      if Global.is_inconsistent t.protocol node.state then incr inconsistent)
    t.nodes;
  {
    states = n_nodes t;
    edges = !edges;
    final = !final;
    terminal = !terminal;
    deadlocked = !deadlocked;
    inconsistent = !inconsistent;
    commit_reachable = !commit_reachable;
    abort_reachable = !abort_reachable;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>global states : %d@,edges         : %d@,final states  : %d@,terminal      : %d@,\
     deadlocked    : %d@,inconsistent  : %d@,commit reachable: %b@,abort reachable : %b@]"
    s.states s.edges s.final s.terminal s.deadlocked s.inconsistent s.commit_reachable
    s.abort_reachable
