(** The commit-protocol catalog: every protocol figure in the paper,
    parameterized by the number of participating sites.

    Vote collectors read the complete string of votes in one transition
    (as in the paper's figures), so transition counts are exponential in
    the number of voters; generators insist on [n <= max_sites]. *)

val max_sites : int

val central_2pc : int -> Protocol.t
(** Central-site two-phase commit: site 1 coordinates, sites 2..n are
    slaves. *)

val central_3pc : int -> Protocol.t
(** Central-site three-phase commit: 2PC with the buffer state [p]
    between [w] and [c] (prepare/ack phase). *)

val decentralized_2pc : int -> Protocol.t
(** Every site runs the same FSA, broadcasting its vote (including to
    itself, per the paper) and reading the full vote vector. *)

val decentralized_3pc : int -> Protocol.t
(** A third interchange of [prepare] messages before committing. *)

val one_pc : int -> Protocol.t
(** One-phase commit: the coordinator relays the client's decision;
    slaves cannot vote — the paper's example of an inadequate protocol. *)

val paxos_commit : int -> Protocol.t
(** Paxos Commit's single-site projection: a 2PC-shaped FSA per
    participant.  The nonblocking-ness of Paxos Commit lives in the
    replicated coordinator, outside the single-site formalism, so the
    catalog marks the projection blocking; the replication win shows up
    on the runtime harnesses. *)

val central_2pc_hasty : int -> Protocol.t
(** A deliberately broken 2PC in which the coordinator may abort
    spontaneously without reading the votes: {e not} synchronous within
    one state transition.  Used in tests. *)

type entry = { label : string; build : int -> Protocol.t; nonblocking_expected : bool }

val all : entry list
(** Every protocol with the paper's verdict on it (the hasty variant is
    excluded). *)

val find : string -> entry
(** @raise Invalid_argument on unknown labels, listing the known ones. *)
