(** Per-run interning and compact state encoding for the state-space
    engines ({!Reachability} and the engine-level model checker).

    The explorers used to hash global states by formatting every network
    message to a string ([Message.show]) on every hash of every state —
    the dominant cost of exhaustive exploration.  This module interns
    automaton state ids and message names into small ints once per run,
    compiles every FSA transition to int-coded consume/emit arrays, packs
    whole messages into single ints, and provides a hash table keyed by
    packed [int array] encodings under a memoized FNV-1a hash.  Explorers
    then never touch a string on the hot path. *)

(* ---------------- symbol tables ---------------- *)

type symtab = {
  mutable next : int;
  fwd : (string, int) Hashtbl.t;
  mutable bwd : string array;  (** code -> symbol; grown on demand *)
}

let create_symtab () = { next = 0; fwd = Hashtbl.create 16; bwd = Array.make 8 "" }

let intern t s =
  match Hashtbl.find_opt t.fwd s with
  | Some i -> i
  | None ->
      let i = t.next in
      t.next <- i + 1;
      Hashtbl.add t.fwd s i;
      if i >= Array.length t.bwd then begin
        let bwd = Array.make (2 * Array.length t.bwd) "" in
        Array.blit t.bwd 0 bwd 0 (Array.length t.bwd);
        t.bwd <- bwd
      end;
      t.bwd.(i) <- s;
      i

let find t s = Hashtbl.find_opt t.fwd s

let name_of t i =
  if i < 0 || i >= t.next then Fmt.invalid_arg "Intern.name_of: unknown code %d" i;
  t.bwd.(i)

let size t = t.next

(* ---------------- FNV-1a over int arrays ---------------- *)

(* 64-bit FNV-1a constants; the offset basis is truncated to OCaml's
   63-bit native int (multiplication wraps, which is exactly what FNV
   wants).  The result is masked non-negative for Hashtbl. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x4bf29ce484222325

let fnv (a : int array) =
  let h = ref (fnv_offset lxor Array.length a) in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor a.(i)) * fnv_prime
  done;
  !h land max_int

(* ---------------- packed keys with memoized hash ---------------- *)

type key = { data : int array; hash : int }

let key data = { data; hash = fnv data }

module Tbl = Hashtbl.Make (struct
  type t = key

  let hash k = k.hash

  let equal a b =
    a.hash = b.hash
    && Array.length a.data = Array.length b.data
    &&
    let rec go i = i < 0 || (a.data.(i) = b.data.(i) && go (i - 1)) in
    go (Array.length a.data - 1)
end)

(* ---------------- sorted int-multiset operations ---------------- *)

(** The network of a packed state is a sorted [int array] of message
    codes — the multiset identity the explorers deduplicate on. *)
module Net = struct
  let empty : int array = [||]

  (** [remove_all consumes net]: remove one occurrence of each code in
      [consumes] (sorted); [None] if any is missing. *)
  let remove_all (consumes : int array) (net : int array) : int array option =
    let nc = Array.length consumes and nn = Array.length net in
    if nc = 0 then Some net
    else if nc > nn then None
    else begin
      let out = Array.make (nn - nc) 0 in
      let exception Missing in
      try
        let k = ref 0 and i = ref 0 in
        for j = 0 to nc - 1 do
          let c = consumes.(j) in
          while !i < nn && net.(!i) < c do
            (* more leftovers than capacity means some later consume
               cannot be present *)
            if !k >= nn - nc then raise Missing;
            out.(!k) <- net.(!i);
            incr k;
            incr i
          done;
          if !i >= nn || net.(!i) <> c then raise Missing;
          incr i
        done;
        Array.blit net !i out !k (nn - !i);
        Some out
      with Missing -> None
    end

  let contains_all consumes net = remove_all consumes net <> None

  (** [add_all adds net]: merge [adds] (sorted) into [net]. *)
  let add_all (adds : int array) (net : int array) : int array =
    let na = Array.length adds and nn = Array.length net in
    if na = 0 then net
    else begin
      let out = Array.make (na + nn) 0 in
      let i = ref 0 and j = ref 0 in
      for k = 0 to na + nn - 1 do
        if !j >= na || (!i < nn && net.(!i) <= adds.(!j)) then begin
          out.(k) <- net.(!i);
          incr i
        end
        else begin
          out.(k) <- adds.(!j);
          incr j
        end
      done;
      out
    end

  let add_one code net =
    let nn = Array.length net in
    let out = Array.make (nn + 1) 0 in
    let i = ref 0 in
    while !i < nn && net.(!i) <= code do
      out.(!i) <- net.(!i);
      incr i
    done;
    out.(!i) <- code;
    Array.blit net !i out (!i + 1) (nn - !i);
    out

  (** Remove the element at index [ix] (used when consuming one known
      occurrence during iteration). *)
  let remove_index ix net =
    let nn = Array.length net in
    let out = Array.make (nn - 1) 0 in
    Array.blit net 0 out 0 ix;
    Array.blit net (ix + 1) out ix (nn - 1 - ix);
    out
end

(* ---------------- compiled protocols ---------------- *)

type ctrans = {
  c_to : int;  (** target state code *)
  c_consumes : int array;  (** sorted message codes *)
  c_emits : int array;  (** message codes in emission order (partial-crash prefixes) *)
  c_emits_sorted : int array;  (** the same codes sorted, for merging *)
  c_vote_yes : bool;
  c_tr : Automaton.transition;  (** the original transition, for graph edges *)
}

type t = {
  protocol : Protocol.t;
  n : int;
  states : symtab;  (** automaton state ids, shared across sites *)
  msg_names : symtab;  (** protocol message names *)
  kinds : Types.state_kind option array array;
      (** site-1 -> state code -> kind ([None] = not declared at that site) *)
  trans : ctrans array array array;  (** site-1 -> from-state code -> transitions *)
  initial_locals : int array;  (** initial state code per site *)
  initial_net : int array;  (** sorted message codes *)
}

(* Message codec: a whole message packs into one int.
   code = (name_code * (n+1) + src) * (n+1) + dst, src in 0..n (0 = env),
   dst in 1..n.  Name codes beyond the interned protocol names are free
   for callers (the model checker assigns termination-message tags
   there); the codec functions work for any name code. *)

let msg_code t ~name ~src ~dst = ((name * (t.n + 1)) + src) * (t.n + 1) + dst
let msg_dst t code = code mod (t.n + 1)
let msg_src t code = code / (t.n + 1) mod (t.n + 1)
let msg_name_code t code = code / ((t.n + 1) * (t.n + 1))

let encode_msg t (m : Message.t) =
  match find t.msg_names m.Message.name with
  | Some name -> msg_code t ~name ~src:m.Message.src ~dst:m.Message.dst
  | None -> Fmt.invalid_arg "Intern.encode_msg: unknown message name %S" m.Message.name

(** Decode a protocol-message code ([msg_name_code] below the symbol-table
    size).  The model checker layers its own decoder for termination
    codes on top. *)
let decode_msg t code =
  Message.make
    ~name:(name_of t.msg_names (msg_name_code t code))
    ~src:(msg_src t code) ~dst:(msg_dst t code)

let compile (p : Protocol.t) : t =
  let n = Protocol.n_sites p in
  let states = create_symtab () in
  let msg_names = create_symtab () in
  (* Intern every state id and message name up front so codes are stable
     regardless of exploration order. *)
  Array.iter
    (fun (a : Automaton.t) ->
      List.iter (fun (s : Automaton.state) -> ignore (intern states s.Automaton.id)) a.Automaton.states;
      List.iter
        (fun (tr : Automaton.transition) ->
          List.iter (fun (m : Message.t) -> ignore (intern msg_names m.Message.name)) tr.Automaton.consumes;
          List.iter (fun (m : Message.t) -> ignore (intern msg_names m.Message.name)) tr.Automaton.emits)
        a.Automaton.transitions)
    p.Protocol.automata;
  List.iter (fun (m : Message.t) -> ignore (intern msg_names m.Message.name)) p.Protocol.initial_network;
  let n_codes = size states in
  let t =
    {
      protocol = p;
      n;
      states;
      msg_names;
      kinds = Array.init n (fun _ -> Array.make n_codes None);
      trans = Array.init n (fun _ -> Array.make n_codes [||]);
      initial_locals = Array.make n 0;
      initial_net = [||];
    }
  in
  let encode m = encode_msg t m in
  Array.iteri
    (fun i (a : Automaton.t) ->
      List.iter
        (fun (s : Automaton.state) ->
          t.kinds.(i).(intern states s.Automaton.id) <- Some s.Automaton.kind)
        a.Automaton.states;
      t.initial_locals.(i) <- intern states a.Automaton.initial;
      List.iter
        (fun (s : Automaton.state) ->
          let code = intern states s.Automaton.id in
          let ctrs =
            Automaton.transitions_from a s.Automaton.id
            |> List.map (fun (tr : Automaton.transition) ->
                   let consumes =
                     let arr = Array.of_list (List.map encode tr.Automaton.consumes) in
                     Array.sort compare arr;
                     arr
                   in
                   let emits = Array.of_list (List.map encode tr.Automaton.emits) in
                   let emits_sorted = Array.copy emits in
                   Array.sort compare emits_sorted;
                   {
                     c_to = intern states tr.Automaton.to_state;
                     c_consumes = consumes;
                     c_emits = emits;
                     c_emits_sorted = emits_sorted;
                     c_vote_yes = tr.Automaton.vote = Some Types.Yes;
                     c_tr = tr;
                   })
          in
          t.trans.(i).(code) <- Array.of_list ctrs)
        a.Automaton.states)
    p.Protocol.automata;
  let net = Array.of_list (List.map encode p.Protocol.initial_network) in
  Array.sort compare net;
  { t with initial_net = net }

let n_state_codes t = size t.states
let state_code t id = find t.states id
let state_name t code = name_of t.states code

let kind_of t ~site ~code =
  match t.kinds.(site - 1).(code) with
  | Some k -> k
  | None ->
      Fmt.invalid_arg "Intern.kind_of: state %s not declared at site %d" (name_of t.states code)
        site
