(** The reachable state graph (paper §3): all global states reachable from
    the transaction's initial global state, built breadth-first over
    {!Intern}'s packed state encoding (no string formatting or hashing on
    the hot path). *)

type node = {
  state : Global.t;
  index : int;  (** BFS discovery order, 0 = initial state *)
  mutable succs : (Types.site * Automaton.transition * int) list;
      (** outgoing edges: (site that moved, transition fired, target index) *)
}

type t = private {
  protocol : Protocol.t;
  nodes : node array;
}

exception Too_large of int

val build : ?limit:int -> Protocol.t -> t
(** Explores the full reachable state graph.
    @raise Too_large past [limit] (default 2_000_000) global states. *)

val n_nodes : t -> int
val n_edges : t -> int
val node : t -> int -> node
val initial_node : t -> node
val iter_nodes : (node -> unit) -> t -> unit
val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a

val terminal_nodes : t -> node list
(** Nodes with no successors. *)

val deadlocked_nodes : t -> node list
(** Terminal but not final — empty for correct protocols. *)

val inconsistent_nodes : t -> node list
(** Nodes containing both a commit and an abort local state — empty for
    correct protocols. *)

val reachable_outcomes : t -> bool * bool
(** (commit reachable, abort reachable). *)

(** Summary statistics, as printed by the experiment harness. *)
type stats = {
  states : int;
  edges : int;
  final : int;
  terminal : int;
  deadlocked : int;
  inconsistent : int;
  commit_reachable : bool;
  abort_reachable : bool;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
