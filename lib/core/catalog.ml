(** The commit-protocol catalog: every protocol figure in the paper,
    parameterized by the number of participating sites.

    Modelling note on vote collection: in the paper's FSA figures the
    decision transition of a vote collector reads the complete string of
    votes (e.g. the coordinator's [w1] transition is labelled
    "(yes_1), yes_2 … yes_n / commit_2 … commit_n").  We therefore generate
    one transition per vote vector — all-yes leading to the commit path, any
    vector containing a no leading to abort.  This is what makes both
    paradigms *synchronous within one state transition* (paper §4), the
    property on which the adjacency lemma and the buffer-state design method
    rest.  The number of transitions is exponential in the number of voters,
    so the generators insist on [n <= max_sites]; the analyses in this
    repository never need more.

    An internal decision — the coordinator "agreeing" (yes_1) or unilaterally
    vetoing (no_1) — is folded into the same transition, as in the figures:
    the all-yes vector yields both a commit-path transition (coordinator
    votes yes) and an abort transition (coordinator votes no). *)

let max_sites = 10

let check_n n =
  if n < 2 then Fmt.invalid_arg "Catalog: need at least 2 sites, got %d" n;
  if n > max_sites then
    Fmt.invalid_arg "Catalog: vote-vector FSAs limited to %d sites, got %d" max_sites n

(* State constructors shared by every catalog protocol.  The canonical state
   names of the paper are reused at every site: q, w, p, a, c. *)
let st_q = { Automaton.id = "q"; kind = Types.Initial }
let st_w = { Automaton.id = "w"; kind = Types.Wait }
let st_p = { Automaton.id = "p"; kind = Types.Buffer }
let st_a = { Automaton.id = "a"; kind = Types.Abort }
let st_c = { Automaton.id = "c"; kind = Types.Commit }

let msg name src dst = Message.make ~name ~src ~dst

(** All vote vectors over the given voters: each voter maps to [Yes] or
    [No].  Returned as (vector, all_yes) pairs where the vector lists one
    vote message name per voter. *)
let vote_vectors voters =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = go rest in
        List.concat_map (fun tl -> [ (v, Types.Yes) :: tl; (v, Types.No) :: tl ]) tails
  in
  go voters

let vote_msg (site, v) ~dst =
  match v with
  | Types.Yes -> msg Message.yes site dst
  | Types.No -> msg Message.no site dst

let all_yes vector = List.for_all (fun (_, v) -> v = Types.Yes) vector

(* ------------------------------------------------------------------ *)
(* Central-site 2PC (paper Fig. "The FSAs for the 2PC protocol")       *)
(* ------------------------------------------------------------------ *)

let central_coordinator_2pc n =
  let slaves = List.init (n - 1) (fun i -> i + 2) in
  let t_start =
    {
      Automaton.from_state = "q";
      to_state = "w";
      consumes = [ msg Message.request Types.env 1 ];
      emits = List.map (fun i -> msg Message.xact 1 i) slaves;
      vote = None;
    }
  in
  let decision_transitions =
    vote_vectors slaves
    |> List.concat_map (fun vector ->
           let consumed = List.map (vote_msg ~dst:1) vector in
           if all_yes vector then
             [
               (* (yes_1), yes_2 … yes_n / commit_2 … commit_n *)
               {
                 Automaton.from_state = "w";
                 to_state = "c";
                 consumes = consumed;
                 emits = List.map (fun i -> msg Message.commit 1 i) slaves;
                 vote = Some Types.Yes;
               };
               (* (no_1), yes_2 … yes_n / abort_2 … abort_n : unilateral veto *)
               {
                 Automaton.from_state = "w";
                 to_state = "a";
                 consumes = consumed;
                 emits = List.map (fun i -> msg Message.abort 1 i) slaves;
                 vote = Some Types.No;
               };
             ]
           else
             [
               {
                 Automaton.from_state = "w";
                 to_state = "a";
                 consumes = consumed;
                 emits =
                   List.filter_map
                     (fun (i, v) ->
                       (* a slave that voted no has already aborted; the
                          abort notice goes to the yes-voters *)
                       if v = Types.Yes then Some (msg Message.abort 1 i) else None)
                     vector;
                 vote = None;
               };
             ])
  in
  Automaton.make ~site:1
    ~states:[ st_q; st_w; st_a; st_c ]
    ~initial:"q"
    ~transitions:(t_start :: decision_transitions)

let central_slave_2pc i =
  Automaton.make ~site:i
    ~states:[ st_q; st_w; st_a; st_c ]
    ~initial:"q"
    ~transitions:
      [
        {
          from_state = "q";
          to_state = "w";
          consumes = [ msg Message.xact 1 i ];
          emits = [ msg Message.yes i 1 ];
          vote = Some Types.Yes;
        };
        {
          from_state = "q";
          to_state = "a";
          consumes = [ msg Message.xact 1 i ];
          emits = [ msg Message.no i 1 ];
          vote = Some Types.No;
        };
        {
          from_state = "w";
          to_state = "c";
          consumes = [ msg Message.commit 1 i ];
          emits = [];
          vote = None;
        };
        {
          from_state = "w";
          to_state = "a";
          consumes = [ msg Message.abort 1 i ];
          emits = [];
          vote = None;
        };
      ]

(** Central-site two-phase commit on [n] sites: site 1 is the coordinator,
    sites 2..n are slaves. *)
let central_2pc n =
  check_n n;
  Protocol.make ~name:(Fmt.str "central-2pc-%d" n) ~paradigm:Protocol.Central_site
    ~automata:
      (Array.init n (fun i -> if i = 0 then central_coordinator_2pc n else central_slave_2pc (i + 1)))
    ~initial_network:[ msg Message.request Types.env 1 ]

(* ------------------------------------------------------------------ *)
(* Central-site 3PC (paper Fig. "A nonblocking central site 3PC")      *)
(* ------------------------------------------------------------------ *)

let central_coordinator_3pc n =
  let slaves = List.init (n - 1) (fun i -> i + 2) in
  let t_start =
    {
      Automaton.from_state = "q";
      to_state = "w";
      consumes = [ msg Message.request Types.env 1 ];
      emits = List.map (fun i -> msg Message.xact 1 i) slaves;
      vote = None;
    }
  in
  let decision_transitions =
    vote_vectors slaves
    |> List.concat_map (fun vector ->
           let consumed = List.map (vote_msg ~dst:1) vector in
           if all_yes vector then
             [
               (* all yes / prepare_2 … prepare_n : enter the buffer state *)
               {
                 Automaton.from_state = "w";
                 to_state = "p";
                 consumes = consumed;
                 emits = List.map (fun i -> msg Message.prepare 1 i) slaves;
                 vote = Some Types.Yes;
               };
               {
                 Automaton.from_state = "w";
                 to_state = "a";
                 consumes = consumed;
                 emits = List.map (fun i -> msg Message.abort 1 i) slaves;
                 vote = Some Types.No;
               };
             ]
           else
             [
               {
                 Automaton.from_state = "w";
                 to_state = "a";
                 consumes = consumed;
                 emits =
                   List.filter_map
                     (fun (i, v) ->
                       if v = Types.Yes then Some (msg Message.abort 1 i) else None)
                     vector;
                 vote = None;
               };
             ])
  in
  let t_commit =
    {
      Automaton.from_state = "p";
      to_state = "c";
      consumes = List.map (fun i -> msg Message.ack i 1) slaves;
      emits = List.map (fun i -> msg Message.commit 1 i) slaves;
      vote = None;
    }
  in
  Automaton.make ~site:1
    ~states:[ st_q; st_w; st_p; st_a; st_c ]
    ~initial:"q"
    ~transitions:((t_start :: decision_transitions) @ [ t_commit ])

let central_slave_3pc i =
  Automaton.make ~site:i
    ~states:[ st_q; st_w; st_p; st_a; st_c ]
    ~initial:"q"
    ~transitions:
      [
        {
          from_state = "q";
          to_state = "w";
          consumes = [ msg Message.xact 1 i ];
          emits = [ msg Message.yes i 1 ];
          vote = Some Types.Yes;
        };
        {
          from_state = "q";
          to_state = "a";
          consumes = [ msg Message.xact 1 i ];
          emits = [ msg Message.no i 1 ];
          vote = Some Types.No;
        };
        {
          from_state = "w";
          to_state = "p";
          consumes = [ msg Message.prepare 1 i ];
          emits = [ msg Message.ack i 1 ];
          vote = None;
        };
        {
          from_state = "w";
          to_state = "a";
          consumes = [ msg Message.abort 1 i ];
          emits = [];
          vote = None;
        };
        {
          from_state = "p";
          to_state = "c";
          consumes = [ msg Message.commit 1 i ];
          emits = [];
          vote = None;
        };
      ]

(** Central-site three-phase commit on [n] sites: 2PC with the buffer state
    [p] (prepared to commit) inserted between [w] and [c]. *)
let central_3pc n =
  check_n n;
  Protocol.make ~name:(Fmt.str "central-3pc-%d" n) ~paradigm:Protocol.Central_site
    ~automata:
      (Array.init n (fun i -> if i = 0 then central_coordinator_3pc n else central_slave_3pc (i + 1)))
    ~initial_network:[ msg Message.request Types.env 1 ]

(* ------------------------------------------------------------------ *)
(* Decentralized 2PC (paper Fig. "The decentralized 2PC protocol")     *)
(* ------------------------------------------------------------------ *)

let dec_site_2pc n i =
  let everyone = List.init n (fun j -> j + 1) in
  let t_vote_yes =
    {
      Automaton.from_state = "q";
      to_state = "w";
      consumes = [ msg Message.xact Types.env i ];
      emits = List.map (fun j -> msg Message.yes i j) everyone;
      vote = Some Types.Yes;
    }
  and t_vote_no =
    {
      Automaton.from_state = "q";
      to_state = "a";
      consumes = [ msg Message.xact Types.env i ];
      emits = List.map (fun j -> msg Message.no i j) everyone;
      vote = Some Types.No;
    }
  in
  let decision_transitions =
    vote_vectors everyone
    |> List.filter_map (fun vector ->
           (* a site in w has voted yes itself, so only vectors where its own
              vote is yes are receivable *)
           if List.assoc i vector <> Types.Yes then None
           else
             let consumed = List.map (vote_msg ~dst:i) vector in
             if all_yes vector then
               Some
                 {
                   Automaton.from_state = "w";
                   to_state = "c";
                   consumes = consumed;
                   emits = [];
                   vote = None;
                 }
             else
               Some
                 {
                   Automaton.from_state = "w";
                   to_state = "a";
                   consumes = consumed;
                   emits = [];
                   vote = None;
                 })
  in
  Automaton.make ~site:i
    ~states:[ st_q; st_w; st_a; st_c ]
    ~initial:"q"
    ~transitions:(t_vote_yes :: t_vote_no :: decision_transitions)

(** Fully decentralized two-phase commit: every site runs the same FSA,
    broadcasting its vote (including to itself, per the paper) and reading
    the full vote vector. *)
let decentralized_2pc n =
  check_n n;
  Protocol.make ~name:(Fmt.str "decentralized-2pc-%d" n) ~paradigm:Protocol.Decentralized
    ~automata:(Array.init n (fun i -> dec_site_2pc n (i + 1)))
    ~initial_network:(List.init n (fun i -> msg Message.xact Types.env (i + 1)))

(* ------------------------------------------------------------------ *)
(* Decentralized 3PC (paper Fig. "A nonblocking decentralized 3PC")    *)
(* ------------------------------------------------------------------ *)

let dec_site_3pc n i =
  let everyone = List.init n (fun j -> j + 1) in
  let t_vote_yes =
    {
      Automaton.from_state = "q";
      to_state = "w";
      consumes = [ msg Message.xact Types.env i ];
      emits = List.map (fun j -> msg Message.yes i j) everyone;
      vote = Some Types.Yes;
    }
  and t_vote_no =
    {
      Automaton.from_state = "q";
      to_state = "a";
      consumes = [ msg Message.xact Types.env i ];
      emits = List.map (fun j -> msg Message.no i j) everyone;
      vote = Some Types.No;
    }
  in
  let decision_transitions =
    vote_vectors everyone
    |> List.filter_map (fun vector ->
           if List.assoc i vector <> Types.Yes then None
           else
             let consumed = List.map (vote_msg ~dst:i) vector in
             if all_yes vector then
               Some
                 {
                   Automaton.from_state = "w";
                   to_state = "p";
                   consumes = consumed;
                   emits = List.map (fun j -> msg Message.prepare i j) everyone;
                   vote = None;
                 }
             else
               Some
                 {
                   Automaton.from_state = "w";
                   to_state = "a";
                   consumes = consumed;
                   emits = [];
                   vote = None;
                 })
  in
  let t_commit =
    {
      Automaton.from_state = "p";
      to_state = "c";
      consumes = List.map (fun j -> msg Message.prepare j i) everyone;
      emits = [];
      vote = None;
    }
  in
  Automaton.make ~site:i
    ~states:[ st_q; st_w; st_p; st_a; st_c ]
    ~initial:"q"
    ~transitions:(t_vote_yes :: t_vote_no :: decision_transitions @ [ t_commit ])

(** Fully decentralized three-phase commit: a third round of [prepare]
    interchange is inserted before committing, making the protocol
    nonblocking. *)
let decentralized_3pc n =
  check_n n;
  Protocol.make ~name:(Fmt.str "decentralized-3pc-%d" n) ~paradigm:Protocol.Decentralized
    ~automata:(Array.init n (fun i -> dec_site_3pc n (i + 1)))
    ~initial_network:(List.init n (fun i -> msg Message.xact Types.env (i + 1)))

(* ------------------------------------------------------------------ *)
(* 1PC (paper §"1-Phase Commit Protocol")                              *)
(* ------------------------------------------------------------------ *)

(** One-phase commit: the coordinator relays the client's decision; slaves
    cannot vote.  Kept in the catalog to demonstrate the paper's point that
    1PC is inadequate (no unilateral abort) and blocking. *)
let one_pc n =
  check_n n;
  let slaves = List.init (n - 1) (fun i -> i + 2) in
  let coordinator =
    Automaton.make ~site:1
      ~states:[ st_q; st_a; st_c ]
      ~initial:"q"
      ~transitions:
        [
          {
            from_state = "q";
            to_state = "c";
            consumes = [ msg Message.request Types.env 1 ];
            emits = List.map (fun i -> msg Message.commit 1 i) slaves;
            vote = Some Types.Yes;
          };
          {
            from_state = "q";
            to_state = "a";
            consumes = [ msg Message.request Types.env 1 ];
            emits = List.map (fun i -> msg Message.abort 1 i) slaves;
            vote = Some Types.No;
          };
        ]
  in
  let slave i =
    Automaton.make ~site:i
      ~states:[ st_q; st_a; st_c ]
      ~initial:"q"
      ~transitions:
        [
          {
            from_state = "q";
            to_state = "c";
            consumes = [ msg Message.commit 1 i ];
            emits = [];
            vote = None;
          };
          {
            from_state = "q";
            to_state = "a";
            consumes = [ msg Message.abort 1 i ];
            emits = [];
            vote = None;
          };
        ]
  in
  Protocol.make ~name:(Fmt.str "1pc-%d" n) ~paradigm:Protocol.Central_site
    ~automata:(Array.init n (fun i -> if i = 0 then coordinator else slave (i + 1)))
    ~initial_network:[ msg Message.request Types.env 1 ]

(** A deliberately broken central 2PC variant in which the coordinator may
    abort spontaneously (a timeout) without reading the votes.  Used in
    tests: it is {e not} synchronous within one state transition, so the
    adjacency lemma does not apply to it. *)
let central_2pc_hasty n =
  check_n n;
  let base = central_2pc n in
  let coord = Protocol.automaton base 1 in
  let slaves = List.init (n - 1) (fun i -> i + 2) in
  let hasty_abort =
    {
      Automaton.from_state = "w";
      to_state = "a";
      consumes = [];
      emits = List.map (fun i -> msg Message.abort 1 i) slaves;
      vote = Some Types.No;
    }
  in
  let coord' =
    Automaton.make ~site:1 ~states:coord.Automaton.states ~initial:coord.Automaton.initial
      ~transitions:(coord.Automaton.transitions @ [ hasty_abort ])
  in
  Protocol.make
    ~name:(Fmt.str "central-2pc-hasty-%d" n)
    ~paradigm:Protocol.Central_site
    ~automata:(Array.init n (fun i -> if i = 0 then coord' else Protocol.automaton base (i + 1)))
    ~initial_network:base.Protocol.initial_network

(** Paxos Commit's single-site projection: each participant runs a
    2PC-shaped FSA — vote, then learn the outcome.  The nonblocking-ness
    of Paxos Commit lives in the replicated coordinator, outside the
    single-site FSA formalism, so the projection itself is blocking and
    the catalog says so ([nonblocking_expected = false]): the
    concurrency-set and buffer-state analyses apply to what a single
    site can observe, and the replication win shows up only on the
    runtime harnesses ({!module:Engine.Paxos} and the database layer). *)
let paxos_commit n =
  check_n n;
  let base = central_2pc n in
  Protocol.make
    ~name:(Fmt.str "paxos-commit-%d" n)
    ~paradigm:Protocol.Central_site
    ~automata:(Array.init n (fun i -> Protocol.automaton base (i + 1)))
    ~initial_network:base.Protocol.initial_network

type entry = { label : string; build : int -> Protocol.t; nonblocking_expected : bool }

(** Every protocol in the catalog, with the paper's verdict on it. *)
let all : entry list =
  [
    { label = "1pc"; build = one_pc; nonblocking_expected = false };
    { label = "central-2pc"; build = central_2pc; nonblocking_expected = false };
    { label = "decentralized-2pc"; build = decentralized_2pc; nonblocking_expected = false };
    { label = "central-3pc"; build = central_3pc; nonblocking_expected = true };
    { label = "decentralized-3pc"; build = decentralized_3pc; nonblocking_expected = true };
    { label = "paxos-commit"; build = paxos_commit; nonblocking_expected = false };
  ]

let find label =
  match List.find_opt (fun e -> e.label = label) all with
  | Some e -> e
  | None ->
      Fmt.invalid_arg "Catalog.find: unknown protocol %S (known: %s)" label
        (String.concat ", " (List.map (fun e -> e.label) all))
