(** Per-run interning and compact state encoding for the state-space
    engines: symbol tables mapping automaton state ids and message names
    to small ints, a one-int message codec, compiled int-coded FSA
    transition tables, sorted-int-array multiset operations, and a hash
    table keyed by packed [int array] state encodings under a memoized
    FNV-1a hash.  Explorers built on this never format or hash a string
    on the hot path. *)

(** {1 Symbol tables} *)

type symtab

val create_symtab : unit -> symtab

val intern : symtab -> string -> int
(** Existing code of the symbol, or the next free code (assigned in
    first-intern order). *)

val find : symtab -> string -> int option
val name_of : symtab -> int -> string
(** @raise Invalid_argument on an unassigned code. *)

val size : symtab -> int

(** {1 Packed-key hash tables} *)

val fnv : int array -> int
(** FNV-1a over the elements (and length), masked non-negative. *)

type key = private { data : int array; hash : int }

val key : int array -> key
(** Pack an encoding with its hash computed once; all subsequent table
    operations reuse the memoized hash. *)

module Tbl : Hashtbl.S with type key = key

(** {1 Sorted int-multiset operations}

    Network contents encode as sorted [int array]s of message codes. *)

module Net : sig
  val empty : int array

  val remove_all : int array -> int array -> int array option
  (** [remove_all consumes net]: remove one occurrence of each code
      (both sorted); [None] if any is missing. *)

  val contains_all : int array -> int array -> bool
  val add_all : int array -> int array -> int array
  (** Merge two sorted arrays. *)

  val add_one : int -> int array -> int array
  val remove_index : int -> int array -> int array
end

(** {1 Compiled protocols} *)

type ctrans = {
  c_to : int;  (** target state code *)
  c_consumes : int array;  (** sorted message codes *)
  c_emits : int array;  (** emission order, for partial-crash prefixes *)
  c_emits_sorted : int array;
  c_vote_yes : bool;
  c_tr : Automaton.transition;  (** the original transition, for graph edges *)
}

type t = private {
  protocol : Protocol.t;
  n : int;
  states : symtab;
  msg_names : symtab;
  kinds : Types.state_kind option array array;
      (** site-1 -> state code -> kind ([None] = not declared there) *)
  trans : ctrans array array array;  (** site-1 -> from-state code -> transitions *)
  initial_locals : int array;
  initial_net : int array;
}

val compile : Protocol.t -> t

(** {2 Message codec}

    A whole message packs into one int:
    [(name_code * (n+1) + src) * (n+1) + dst].  Name codes beyond the
    interned protocol names are free for callers (the model checker
    assigns termination-message tags there). *)

val msg_code : t -> name:int -> src:int -> dst:int -> int
val msg_name_code : t -> int -> int
val msg_src : t -> int -> int
val msg_dst : t -> int -> int

val encode_msg : t -> Message.t -> int
(** @raise Invalid_argument on a message name not in the protocol. *)

val decode_msg : t -> int -> Message.t
(** Inverse of {!encode_msg} for protocol-name codes. *)

(** {2 State codes} *)

val n_state_codes : t -> int
val state_code : t -> string -> int option
val state_name : t -> int -> string

val kind_of : t -> site:Types.site -> code:int -> Types.state_kind
(** @raise Invalid_argument when the state is not declared at [site]
    (mirrors [Automaton.state_exn]). *)
