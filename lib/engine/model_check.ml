(** Exhaustive model checking of a commit protocol {e with failures} and
    the termination protocol layered on top.

    The paper notes that "failures cause an exponential growth in the
    number of reachable global states" and sidesteps building that graph;
    this module builds it anyway, for small site counts and a bounded
    number of crashes, and verifies over {e every} interleaving what the
    simulation sweeps can only sample:

    - {b safety}: no reachable global state mixes a committed site with an
      aborted one (counting the last forced-log state of crashed sites —
      a coordinator that logged its commit and died counts as committed);
    - {b termination} (for nonblocking protocols): in every terminal
      state, every operational site has reached a final state.

    The model extends the paper's global states with: fail-stop crashes
    (with partially completed transitions: the log forced first, then any
    prefix of the emitted messages), an instantaneous accurate failure
    detector, the backup election (lowest operational site), the
    two-phase backup protocol of the paper driven by the compiled
    {!Rulebook}, and partial broadcasts by crashing backups.  Recoveries
    are not modelled (a recovered site only queries; it cannot affect
    safety of the operational sites' decisions).

    Termination-protocol messages ride the same network multiset as
    protocol messages, under reserved names ("!move:…", "!mack",
    "!decide:…") no catalog FSA matches.

    {b Engine.}  Exploration runs entirely over {!Core.Intern}'s compact
    encoding: state ids and message names are interned to small ints once
    per run, whole messages pack into single ints (termination messages
    become tagged name codes above the protocol's — no prefix-string
    parsing on the hot path), and each global state dedups as one packed
    [int array] under a memoized FNV hash.  The frontier is a queue of
    state indices over index-based [seen]/[parent] tables.  The original
    string-keyed engine survives as {!Model_check_ref}; differential
    tests assert both produce identical [explored] counts and verdicts,
    and [Packed] below exposes the codec for round-trip tests. *)

module MS = Core.Message.Multiset

type st = {
  locals : string array;  (** last forced-log state per site *)
  voted : bool array;
  alive : bool array;
  aware : bool array;
      (** per site: has its failure detector reported some crash yet?
          Detection is asynchronous, so awareness spreads
          nondeterministically; an aware site freezes its commit-protocol
          FSA (the protocol is impaired) and may act as backup *)
  crashes_left : int;
  network : MS.t;
  moving : (string * int list) option array;
      (** per site: as backup coordinator, phase 1 in flight —
          (move target, sites whose acks are still awaited) *)
  polling : (int list * (int * string) list) option array;
      (** quorum rule only: a state poll in flight — (sites whose replies
          are awaited, replies so far) *)
  polled : bool array;
      (** quorum rule only: this site already ran its one poll (no retry:
          a below-quorum backup stays blocked, making blocking visible as
          a terminal state) *)
  epoch : int array;
      (** highest-ranked backup each site has obeyed.  Successive backups
          have strictly increasing ranks under fail-stop, so moves from
          lower ranks are stale directives from deposed backups and are
          discarded — without this, a stale move re-promotes a participant
          out of the current backup's state (found at n=4, k=3). *)
}

type config = {
  rulebook : Rulebook.t;
  max_crashes : int;
  limit : int;  (** abort exploration past this many states *)
  rule : [ `Skeen | `Quorum of int ];
      (** how backups decide — the paper's rule, or quorum termination *)
}

type report = {
  explored : int;
  inconsistent : st list;
  blocked_terminals : st list;
  safe : bool;
  nonblocking : bool;
  counterexample : st list option;  (** path from the initial state to the first inconsistency *)
}

module I = Core.Intern

(* ---------------- interned context ---------------- *)

(* Termination-message name codes are laid out above the protocol's
   interned message names (codes < [base] are protocol messages):

     base+0            !mack
     base+1            !streq
     base+2 / base+3   !decide:c / !decide:a
     base+4+s          !move:<state s>      (s < n_state_codes)
     base+4+S+s        !strep:<state s>

   so a whole termination message still packs into one int via the
   shared [(name * (n+1) + src) * (n+1) + dst] codec. *)
type ctx = {
  c : I.t;
  n : int;
  base : int;  (** first termination name code *)
  s_codes : int;  (** number of interned state ids *)
  full_alive : int;  (** bitset of all n sites *)
  kinds : Core.Types.state_kind option array array;  (** site-1 -> code *)
  commit_code : int array;  (** per site: its commit final state's code *)
  abort_code : int array;
  buffer_code : int option array;  (** per site: first declared Buffer state *)
  verdicts : Rulebook.verdict array array;  (** site-1 -> code -> verdict *)
}

let make_ctx (rulebook : Rulebook.t) : ctx =
  let protocol = rulebook.Rulebook.protocol in
  let c = I.compile protocol in
  let n = c.I.n in
  let s_codes = I.n_state_codes c in
  let find_kind i want =
    let a = Core.Protocol.automaton protocol (i + 1) in
    List.find_opt (fun s -> s.Core.Automaton.kind = want) a.Core.Automaton.states
  in
  let code_exn id =
    match I.state_code c id with Some x -> x | None -> assert false
  in
  {
    c;
    n;
    base = I.size c.I.msg_names;
    s_codes;
    full_alive = (1 lsl n) - 1;
    kinds = c.I.kinds;
    commit_code =
      Array.init n (fun i ->
          match find_kind i Core.Types.Commit with
          | Some s -> code_exn s.Core.Automaton.id
          | None -> -1);
    abort_code =
      Array.init n (fun i ->
          match find_kind i Core.Types.Abort with
          | Some s -> code_exn s.Core.Automaton.id
          | None -> -1);
    buffer_code =
      Array.init n (fun i ->
          Option.map (fun s -> code_exn s.Core.Automaton.id) (find_kind i Core.Types.Buffer));
    verdicts =
      Array.init n (fun i ->
          Array.init s_codes (fun code ->
              if c.I.kinds.(i).(code) = None then Rulebook.Blocked
              else Rulebook.verdict rulebook ~site:(i + 1) ~state:(I.state_name c code)));
  }

(* termination name codes *)
let mack_nc ctx = ctx.base
let streq_nc ctx = ctx.base + 1
let decide_nc ctx (o : Core.Types.outcome) =
  match o with Core.Types.Committed -> ctx.base + 2 | Aborted -> ctx.base + 3

let move_nc ctx state = ctx.base + 4 + state
let strep_nc ctx state = ctx.base + 4 + ctx.s_codes + state
let is_term ctx code = I.msg_name_code ctx.c code >= ctx.base
let is_move_nc ctx nc = nc >= ctx.base + 4 && nc < ctx.base + 4 + ctx.s_codes
let is_strep_nc ctx nc = nc >= ctx.base + 4 + ctx.s_codes
let move_target_nc ctx nc = nc - ctx.base - 4
let strep_state_nc ctx nc = nc - ctx.base - 4 - ctx.s_codes

let kind_exn ctx i code =
  match ctx.kinds.(i).(code) with
  | Some k -> k
  | None ->
      Fmt.invalid_arg "Model_check: state %s not declared at site %d" (I.state_name ctx.c code)
        (i + 1)

let term_name ctx nc =
  if nc = mack_nc ctx then "!mack"
  else if nc = streq_nc ctx then "!streq"
  else if nc = ctx.base + 2 then "!decide:c"
  else if nc = ctx.base + 3 then "!decide:a"
  else if is_move_nc ctx nc then "!move:" ^ I.state_name ctx.c (move_target_nc ctx nc)
  else "!strep:" ^ I.state_name ctx.c (strep_state_nc ctx nc)

let term_name_code ctx name =
  let state_code_exn id =
    match I.state_code ctx.c id with
    | Some x -> x
    | None -> Fmt.invalid_arg "Model_check: unknown state id %S" id
  in
  let has_prefix p = String.length name > String.length p && String.sub name 0 (String.length p) = p in
  let after p = String.sub name (String.length p) (String.length name - String.length p) in
  if name = "!mack" then mack_nc ctx
  else if name = "!streq" then streq_nc ctx
  else if name = "!decide:c" then ctx.base + 2
  else if name = "!decide:a" then ctx.base + 3
  else if has_prefix "!move:" then move_nc ctx (state_code_exn (after "!move:"))
  else if has_prefix "!strep:" then strep_nc ctx (state_code_exn (after "!strep:"))
  else Fmt.invalid_arg "Model_check: unknown termination message %S" name

(* ---------------- interned working state ---------------- *)

(* The working representation during exploration: bitsets for the boolean
   arrays (record copies are then free), int codes everywhere, the
   network a sorted int array.  [moving]/[polling] keep the reference
   engine's list shapes — and crucially its list {e orders} — so state
   identity matches [Model_check_ref.equal_st] exactly: the awaiting and
   reps lists there compare order-sensitively, and reps order feeds the
   quorum rule's [to_move]. *)
type ist = {
  ilocals : int array;  (** state code per site *)
  ivoted : int;
  ialive : int;
  iaware : int;
  ipolled : int;
  icrashes : int;
  inet : int array;  (** sorted message codes *)
  imoving : (int * int list) option array;  (** (target code, awaiting sites) *)
  ipolling : (int list * int list) option array;
      (** (awaiting sites, reps); a rep packs as [src * s_codes + state code] *)
  iepoch : int array;
}

let rep_pack ctx ~src ~code = (src * ctx.s_codes) + code
let rep_src ctx r = r / ctx.s_codes
let rep_code ctx r = r mod ctx.s_codes

(* ---------------- packed canonical encoding ---------------- *)

(* Layout (variable-length sections carry explicit lengths, so the
   encoding is injective):
     [0]  crashes_left    [1] voted  [2] alive  [3] aware  [4] polled
     [5 .. 5+n-1]         locals
     [5+n .. 5+2n-1]      epoch
     moving  mask; per set bit (ascending site): target, |awaiting|, awaiting…
     polling mask; per set bit: |awaiting|, awaiting…, |reps|, reps…
     network codes (the remaining tail) *)

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 256 0; len = 0 }
  let clear b = b.len <- 0

  let reserve b extra =
    if b.len + extra > Array.length b.a then begin
      let cap = ref (2 * Array.length b.a) in
      while b.len + extra > !cap do
        cap := 2 * !cap
      done;
      let a = Array.make !cap 0 in
      Array.blit b.a 0 a 0 b.len;
      b.a <- a
    end

  let push b x =
    reserve b 1;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let blit b src =
    let k = Array.length src in
    reserve b k;
    Array.blit src 0 b.a b.len k;
    b.len <- b.len + k

  let to_array b = Array.sub b.a 0 b.len
end

let pack_into ctx (buf : Ibuf.t) (s : ist) : int array =
  let n = ctx.n in
  Ibuf.clear buf;
  Ibuf.push buf s.icrashes;
  Ibuf.push buf s.ivoted;
  Ibuf.push buf s.ialive;
  Ibuf.push buf s.iaware;
  Ibuf.push buf s.ipolled;
  Ibuf.blit buf s.ilocals;
  Ibuf.blit buf s.iepoch;
  let mask = ref 0 in
  for i = 0 to n - 1 do
    if s.imoving.(i) <> None then mask := !mask lor (1 lsl i)
  done;
  Ibuf.push buf !mask;
  for i = 0 to n - 1 do
    match s.imoving.(i) with
    | None -> ()
    | Some (target, awaiting) ->
        Ibuf.push buf target;
        Ibuf.push buf (List.length awaiting);
        List.iter (Ibuf.push buf) awaiting
  done;
  mask := 0;
  for i = 0 to n - 1 do
    if s.ipolling.(i) <> None then mask := !mask lor (1 lsl i)
  done;
  Ibuf.push buf !mask;
  for i = 0 to n - 1 do
    match s.ipolling.(i) with
    | None -> ()
    | Some (awaiting, reps) ->
        Ibuf.push buf (List.length awaiting);
        List.iter (Ibuf.push buf) awaiting;
        Ibuf.push buf (List.length reps);
        List.iter (Ibuf.push buf) reps
  done;
  Ibuf.blit buf s.inet;
  Ibuf.to_array buf

let unpack ctx (data : int array) : ist =
  let n = ctx.n in
  let pos = ref (5 + (2 * n)) in
  let take () =
    let x = data.(!pos) in
    incr pos;
    x
  in
  let take_list () = List.init (take ()) (fun _ -> take ()) in
  let moving_mask = take () in
  let imoving =
    Array.init n (fun i ->
        if moving_mask land (1 lsl i) = 0 then None
        else begin
          let target = take () in
          Some (target, take_list ())
        end)
  in
  let polling_mask = take () in
  let ipolling =
    Array.init n (fun i ->
        if polling_mask land (1 lsl i) = 0 then None
        else begin
          let awaiting = take_list () in
          let reps = take_list () in
          Some (awaiting, reps)
        end)
  in
  {
    icrashes = data.(0);
    ivoted = data.(1);
    ialive = data.(2);
    iaware = data.(3);
    ipolled = data.(4);
    ilocals = Array.sub data 5 n;
    iepoch = Array.sub data (5 + n) n;
    imoving;
    ipolling;
    inet = Array.sub data !pos (Array.length data - !pos);
  }

(* ---------------- interned <-> public state ---------------- *)

let decode_tmsg ctx code =
  let nc = I.msg_name_code ctx.c code in
  let name = if nc < ctx.base then I.name_of ctx.c.I.msg_names nc else term_name ctx nc in
  Core.Message.make ~name ~src:(I.msg_src ctx.c code) ~dst:(I.msg_dst ctx.c code)

let encode_tmsg ctx (m : Core.Message.t) =
  let name =
    if String.length m.Core.Message.name > 0 && m.Core.Message.name.[0] = '!' then
      term_name_code ctx m.Core.Message.name
    else
      match I.find ctx.c.I.msg_names m.Core.Message.name with
      | Some nc -> nc
      | None -> Fmt.invalid_arg "Model_check: unknown message name %S" m.Core.Message.name
  in
  I.msg_code ctx.c ~name ~src:m.Core.Message.src ~dst:m.Core.Message.dst

let to_public ctx (s : ist) : st =
  let n = ctx.n in
  let bit set i = set land (1 lsl i) <> 0 in
  {
    locals = Array.init n (fun i -> I.state_name ctx.c s.ilocals.(i));
    voted = Array.init n (bit s.ivoted);
    alive = Array.init n (bit s.ialive);
    aware = Array.init n (bit s.iaware);
    crashes_left = s.icrashes;
    network = MS.of_list (Array.to_list (Array.map (decode_tmsg ctx) s.inet));
    moving =
      Array.map
        (Option.map (fun (target, awaiting) -> (I.state_name ctx.c target, awaiting)))
        s.imoving;
    polling =
      Array.map
        (Option.map (fun (awaiting, reps) ->
             ( awaiting,
               List.map (fun r -> (rep_src ctx r, I.state_name ctx.c (rep_code ctx r))) reps )))
        s.ipolling;
    polled = Array.init n (bit s.ipolled);
    epoch = Array.copy s.iepoch;
  }

let of_public ctx (s : st) : ist =
  let bits a =
    let x = ref 0 in
    Array.iteri (fun i b -> if b then x := !x lor (1 lsl i)) a;
    !x
  in
  let state_code_exn id =
    match I.state_code ctx.c id with
    | Some x -> x
    | None -> Fmt.invalid_arg "Model_check: unknown state id %S" id
  in
  let inet = Array.of_list (List.map (encode_tmsg ctx) (MS.to_list s.network)) in
  Array.sort compare inet;
  {
    ilocals = Array.map state_code_exn s.locals;
    ivoted = bits s.voted;
    ialive = bits s.alive;
    iaware = bits s.aware;
    ipolled = bits s.polled;
    icrashes = s.crashes_left;
    inet;
    imoving = Array.map (Option.map (fun (t, aw) -> (state_code_exn t, aw))) s.moving;
    ipolling =
      Array.map
        (Option.map (fun (aw, reps) ->
             (aw, List.map (fun (src, id) -> rep_pack ctx ~src ~code:(state_code_exn id)) reps)))
        s.polling;
    iepoch = Array.copy s.epoch;
  }

(* ---------------- the checker ---------------- *)

let run (cfg : config) : report =
  let ctx = make_ctx cfg.rulebook in
  let c = ctx.c in
  let n = ctx.n in
  let decided s i = Core.Types.is_final (kind_exn ctx i s.ilocals.(i)) in
  let site_outcome s i = Core.Types.outcome_of_kind (kind_exn ctx i s.ilocals.(i)) in
  let alive s i = s.ialive land (1 lsl i) <> 0 in
  (* the elected backup: lowest operational site (no recoveries, so
     operational = never crashed) *)
  let leader s =
    let rec go i = if i >= n then -1 else if alive s i then i else go (i + 1) in
    go 0
  in
  let some_crash s = s.ialive <> ctx.full_alive in
  (* drop messages whose target is dead (reliable network: undeliverable) *)
  let deliverable s (codes : int array) =
    let kept = ref 0 in
    Array.iter (fun m -> if alive s (I.msg_dst c m - 1) then incr kept) codes;
    if !kept = Array.length codes then codes
    else begin
      let out = Array.make !kept 0 in
      let k = ref 0 in
      Array.iter
        (fun m ->
          if alive s (I.msg_dst c m - 1) then begin
            out.(!k) <- m;
            incr k
          end)
        codes;
      out
    end
  in
  let final_code i (o : Core.Types.outcome) =
    match o with Core.Types.Committed -> ctx.commit_code.(i) | Aborted -> ctx.abort_code.(i)
  in

  (* ---- successor enumeration ----
     A transcription of [Model_check_ref]'s successor function over the
     interned representation; every branch mirrors the reference 1:1 so
     the explored state set is identical.  [push] is the caller's sink —
     successors are packed and deduped as they are produced rather than
     collected into a list. *)
  let successors s push =
    for i = 0 to n - 1 do
      if alive s i then begin
        let bit = 1 lsl i in
        (* 1. protocol FSA steps, complete and (if crash budget remains)
           partially completed.  A backup coordinator with phase 1 in
           flight is frozen: its decision must come from the state it
           moved everyone to, not from wherever a stale protocol message
           would drift it (the runtime enforces the same freeze by not
           firing the FSA outside Normal mode — an earlier version of
           this model omitted it and the checker produced a genuine
           split-brain counterexample through exactly that hole) *)
        if (not (decided s i)) && s.imoving.(i) = None && s.iaware land bit = 0 then begin
          let trs = c.I.trans.(i).(s.ilocals.(i)) in
          for ti = 0 to Array.length trs - 1 do
            let tr = trs.(ti) in
            match I.Net.remove_all tr.I.c_consumes s.inet with
            | None -> ()
            | Some base_net ->
                let ilocals = Array.copy s.ilocals in
                ilocals.(i) <- tr.I.c_to;
                let ivoted = if tr.I.c_vote_yes then s.ivoted lor bit else s.ivoted in
                (* complete transition *)
                push
                  {
                    s with
                    ilocals;
                    ivoted;
                    inet = I.Net.add_all (deliverable s tr.I.c_emits_sorted) base_net;
                  };
                (* crash after forcing the log, having sent only the first
                   k messages, for every k *)
                if s.icrashes > 0 then
                  for k = 0 to Array.length tr.I.c_emits do
                    let sent =
                      let pfx = Array.sub tr.I.c_emits 0 k in
                      Array.sort compare pfx;
                      deliverable s pfx
                    in
                    let imoving = Array.copy s.imoving in
                    imoving.(i) <- None;
                    let ipolling = Array.copy s.ipolling in
                    ipolling.(i) <- None;
                    push
                      {
                        s with
                        ilocals;
                        ivoted;
                        ialive = s.ialive land lnot bit;
                        icrashes = s.icrashes - 1;
                        inet = I.Net.add_all sent base_net;
                        imoving;
                        ipolling;
                      }
                  done
          done
        end;
        (* 2. spontaneous crash (before any transition) *)
        if s.icrashes > 0 then begin
          let imoving = Array.copy s.imoving in
          imoving.(i) <- None;
          let ipolling = Array.copy s.ipolling in
          ipolling.(i) <- None;
          push
            { s with ialive = s.ialive land lnot bit; icrashes = s.icrashes - 1; imoving; ipolling }
        end;
        (* 2b. failure detection: after any crash, each site becomes aware
           at a nondeterministic moment; from then on its commit-protocol
           FSA is frozen and it may serve as backup coordinator *)
        if some_crash s && s.iaware land bit = 0 then push { s with iaware = s.iaware lor bit };
        (* 3. termination-message deliveries addressed to site i+1 *)
        for j = 0 to Array.length s.inet - 1 do
          let m = s.inet.(j) in
          if I.msg_dst c m = i + 1 && is_term ctx m then begin
            let net = I.Net.remove_index j s.inet in
            (* receiving a termination message is itself awareness *)
            let s = if s.iaware land bit <> 0 then s else { s with iaware = s.iaware lor bit } in
            let nc = I.msg_name_code c m in
            let src = I.msg_src c m in
            if is_move_nc ctx nc then begin
              if src < s.iepoch.(i) then
                (* stale directive from a deposed backup: discard *)
                push { s with inet = net }
              else if decided s i then
                (* answer with the outcome instead of an ack *)
                (match site_outcome s i with
                | Some o ->
                    let reply = I.msg_code c ~name:(decide_nc ctx o) ~src:(i + 1) ~dst:src in
                    let inet =
                      if alive s (src - 1) then I.Net.add_one reply net else net
                    in
                    push { s with inet }
                | None -> assert false)
              else begin
                let ilocals = Array.copy s.ilocals in
                ilocals.(i) <- move_target_nc ctx nc;
                let iepoch = Array.copy s.iepoch in
                iepoch.(i) <- src;
                let ack = I.msg_code c ~name:(mack_nc ctx) ~src:(i + 1) ~dst:src in
                let inet = if alive s (src - 1) then I.Net.add_one ack net else net in
                push { s with ilocals; iepoch; inet }
              end
            end
            else if nc = mack_nc ctx then (
              match s.imoving.(i) with
              | Some (target, awaiting) when List.mem src awaiting ->
                  let awaiting = List.filter (fun x -> x <> src) awaiting in
                  let imoving = Array.copy s.imoving in
                  imoving.(i) <- Some (target, awaiting);
                  push { s with inet = net; imoving }
              | _ -> push { s with inet = net })
            else if nc = streq_nc ctx then begin
              (* quorum poll: report the current local state *)
              let reply =
                I.msg_code c ~name:(strep_nc ctx s.ilocals.(i)) ~src:(i + 1) ~dst:src
              in
              let inet = if alive s (src - 1) then I.Net.add_one reply net else net in
              push { s with inet }
            end
            else if is_strep_nc ctx nc then (
              match s.ipolling.(i) with
              | Some (awaiting, reps) when List.mem src awaiting ->
                  let awaiting = List.filter (fun x -> x <> src) awaiting in
                  let ipolling = Array.copy s.ipolling in
                  ipolling.(i) <-
                    Some (awaiting, rep_pack ctx ~src ~code:(strep_state_nc ctx nc) :: reps);
                  push { s with inet = net; ipolling }
              | _ -> push { s with inet = net })
            else begin
              (* a decide *)
              let o =
                if nc = ctx.base + 2 then Core.Types.Committed else Core.Types.Aborted
              in
              if decided s i then push { s with inet = net }
              else begin
                let ilocals = Array.copy s.ilocals in
                ilocals.(i) <- final_code i o;
                let imoving = Array.copy s.imoving in
                imoving.(i) <- None;
                push { s with ilocals; inet = net; imoving }
              end
            end
          end
        done;
        (* 4. backup coordinator actions at the elected leader, once it is
           aware of a failure *)
        if leader s = i && some_crash s && s.iaware land bit <> 0 then begin
          let others = List.init n (fun j -> j) |> List.filter (fun j -> j <> i && alive s j) in
          (* broadcast helper with partial-crash variants.  All broadcasts
             send one name from src i+1 to ascending destinations, so the
             code array is sorted, as is any prefix of it. *)
          let broadcast name after =
            let msgs =
              Array.of_list (List.map (fun j -> I.msg_code c ~name ~src:(i + 1) ~dst:(j + 1)) others)
            in
            (* complete broadcast *)
            push (after { s with inet = I.Net.add_all (deliverable s msgs) s.inet });
            if s.icrashes > 0 then
              for k = 0 to Array.length msgs do
                let sent = deliverable s (Array.sub msgs 0 k) in
                let s' = after { s with inet = I.Net.add_all sent s.inet } in
                let imoving = Array.copy s'.imoving in
                imoving.(i) <- None;
                let ipolling = Array.copy s'.ipolling in
                ipolling.(i) <- None;
                push
                  {
                    s' with
                    ialive = s'.ialive land lnot bit;
                    icrashes = s.icrashes - 1;
                    imoving;
                    ipolling;
                  }
              done
          in
          match s.imoving.(i) with
          | Some (_, awaiting) ->
              (* phase 1 in flight: complete it when every awaited site is
                 acked or dead *)
              if List.for_all (fun j -> not (alive s (j - 1))) awaiting then begin
                match ctx.verdicts.(i).(s.ilocals.(i)) with
                | Rulebook.Decide o ->
                    let ilocals = Array.copy s.ilocals in
                    ilocals.(i) <- final_code i o;
                    let imoving = Array.copy s.imoving in
                    imoving.(i) <- None;
                    broadcast (decide_nc ctx o) (fun s -> { s with ilocals; imoving })
                | Rulebook.Blocked -> ()
              end
          | None ->
              if decided s i then begin
                (* already final: phase 1 omitted; announce, but only if
                   someone still needs it and no announcement is already
                   in flight (keeps the graph finite) *)
                match site_outcome s i with
                | Some o ->
                    let dnc = decide_nc ctx o in
                    let needed =
                      List.exists
                        (fun j ->
                          (not (decided s j))
                          && not
                               (Array.exists
                                  (fun m ->
                                    I.msg_dst c m = j + 1 && I.msg_name_code c m = dnc)
                                  s.inet))
                        others
                    in
                    if needed then broadcast dnc (fun s -> s)
                | None -> assert false
              end
              else begin
                match cfg.rule with
                | `Skeen -> (
                    match ctx.verdicts.(i).(s.ilocals.(i)) with
                    | Rulebook.Decide _ ->
                        (* phase 1: move everyone to our state — only once
                           per configuration (no move already in flight
                           from us) *)
                        let already =
                          Array.exists
                            (fun m ->
                              I.msg_src c m = i + 1 && is_move_nc ctx (I.msg_name_code c m))
                            s.inet
                        in
                        if not already then begin
                          let target = s.ilocals.(i) in
                          let imoving = Array.copy s.imoving in
                          imoving.(i) <- Some (target, List.map (fun j -> j + 1) others);
                          let iepoch = Array.copy s.iepoch in
                          iepoch.(i) <- max iepoch.(i) (i + 1);
                          broadcast (move_nc ctx target) (fun s -> { s with imoving; iepoch })
                        end
                    | Rulebook.Blocked -> ())
                | `Quorum q -> (
                    match s.ipolling.(i) with
                    | None ->
                        if s.ipolled land bit = 0 then begin
                          (* start the (single) state poll *)
                          let ipolling = Array.copy s.ipolling in
                          ipolling.(i) <- Some (List.map (fun j -> j + 1) others, []);
                          let iepoch = Array.copy s.iepoch in
                          iepoch.(i) <- max iepoch.(i) (i + 1);
                          broadcast (streq_nc ctx) (fun s ->
                              { s with ipolled = s.ipolled lor bit; ipolling; iepoch })
                        end
                    | Some (awaiting, reps)
                      when awaiting = [] || List.for_all (fun j -> not (alive s (j - 1))) awaiting
                      -> (
                        (* the view is complete: decide by counts, moves
                           monotone (never demoting a precommit) *)
                        let view = rep_pack ctx ~src:(i + 1) ~code:s.ilocals.(i) :: reps in
                        let kinds =
                          List.map (fun r -> kind_exn ctx (rep_src ctx r - 1) (rep_code ctx r)) view
                        in
                        let commit_decide o =
                          let ilocals = Array.copy s.ilocals in
                          ilocals.(i) <- final_code i o;
                          let ipolling = Array.copy s.ipolling in
                          ipolling.(i) <- None;
                          broadcast (decide_nc ctx o) (fun s -> { s with ilocals; ipolling })
                        in
                        let prepared_up =
                          List.length
                            (List.filter
                               (fun k -> k = Core.Types.Buffer || Core.Types.is_commit k)
                               kinds)
                        in
                        if List.exists Core.Types.is_commit kinds then
                          commit_decide Core.Types.Committed
                        else if List.exists Core.Types.is_abort kinds then
                          commit_decide Core.Types.Aborted
                        else if prepared_up >= q then begin
                          (* move the view up to the buffer state, then the
                             shared phase-1 completion commits *)
                          match ctx.buffer_code.(i) with
                          | Some target ->
                              let ilocals = Array.copy s.ilocals in
                              ilocals.(i) <- target;
                              let ipolling = Array.copy s.ipolling in
                              ipolling.(i) <- None;
                              let to_move =
                                List.filter_map
                                  (fun r ->
                                    let src = rep_src ctx r in
                                    if src <> i + 1 && alive s (src - 1) && rep_code ctx r <> target
                                    then Some src
                                    else None)
                                  reps
                              in
                              let imoving = Array.copy s.imoving in
                              imoving.(i) <- Some (target, to_move);
                              let iepoch = Array.copy s.iepoch in
                              iepoch.(i) <- max iepoch.(i) (i + 1);
                              (* the move goes to every other operational
                                 site — a harmless re-move for
                                 already-buffered ones keeps the broadcast
                                 uniform *)
                              broadcast (move_nc ctx target) (fun s ->
                                  { s with ilocals; ipolling; imoving; iepoch })
                          | None -> ()
                        end
                        else if List.length kinds - prepared_up >= q && ctx.buffer_code.(i) <> None
                          (* the unprepared-quorum abort is sound only when
                             committing requires a quorum-visible buffer
                             phase; without one (2PC) only visible outcomes
                             may decide *)
                        then commit_decide Core.Types.Aborted
                        else (* below quorum either way: blocked *) ())
                    | Some _ -> ())
              end
        end
      end
    done
  in

  (* ---- BFS over packed states: Queue-of-indices frontier, index-based
     seen/parent tables ---- *)
  let init =
    {
      ilocals = Array.copy c.I.initial_locals;
      ivoted = 0;
      ialive = ctx.full_alive;
      iaware = 0;
      ipolled = 0;
      icrashes = cfg.max_crashes;
      inet = Array.copy c.I.initial_net;
      imoving = Array.make n None;
      ipolling = Array.make n None;
      iepoch = Array.make n 0;
    }
  in
  let seen : int I.Tbl.t = I.Tbl.create 4096 in
  let keys = ref (Array.make 4096 I.(key [||])) in
  let parent = ref (Array.make 4096 (-1)) in
  let n_states = ref 0 in
  let buf = Ibuf.create () in
  let intern_state parent_ix s =
    let k = I.key (pack_into ctx buf s) in
    match I.Tbl.find_opt seen k with
    | Some _ -> None
    | None ->
        let ix = !n_states in
        incr n_states;
        I.Tbl.add seen k ix;
        if ix >= Array.length !keys then begin
          let grow a fill =
            let g = Array.make (2 * Array.length a) fill in
            Array.blit a 0 g 0 (Array.length a);
            g
          in
          keys := grow !keys I.(key [||]);
          parent := grow !parent (-1)
        end;
        !keys.(ix) <- k;
        !parent.(ix) <- parent_ix;
        Some ix
  in
  (* the frontier carries the working state alongside its index, so no
     state is ever unpacked on the hot path (decoding only happens for
     the handful of reported states at the end) *)
  let queue : (ist * int) Queue.t = Queue.create () in
  (match intern_state (-1) init with
  | Some ix -> Queue.add (init, ix) queue
  | None -> assert false);
  let explored = ref 0 in
  let inconsistent = ref [] and blocked_terminals = ref [] in
  while not (Queue.is_empty queue) do
    let s, ix = Queue.pop queue in
    incr explored;
    if !explored > cfg.limit then failwith "Model_check.run: state limit exceeded";
    (* safety: mixed outcomes across ALL sites (crashed sites' last forced
       log state counts) *)
    let commit = ref false and abort = ref false in
    Array.iteri
      (fun i code ->
        let k = kind_exn ctx i code in
        if Core.Types.is_commit k then commit := true;
        if Core.Types.is_abort k then abort := true)
      s.ilocals;
    if !commit && !abort then inconsistent := ix :: !inconsistent;
    let n_succ = ref 0 in
    successors s (fun succ ->
        incr n_succ;
        match intern_state ix succ with
        | None -> ()
        | Some six -> Queue.add (succ, six) queue);
    if !n_succ = 0 then begin
      (* terminal: every operational site should have decided *)
      let blocked = ref false in
      for i = 0 to n - 1 do
        if s.ialive land (1 lsl i) <> 0 && not (decided s i) then blocked := true
      done;
      if !blocked then blocked_terminals := ix :: !blocked_terminals
    end
  done;
  let decode ix = to_public ctx (unpack ctx (!keys.(ix)).I.data) in
  let path_to target =
    let rec go ix acc =
      let acc = decode ix :: acc in
      if !parent.(ix) < 0 then acc else go !parent.(ix) acc
    in
    go target []
  in
  {
    explored = !explored;
    inconsistent = List.map decode !inconsistent;
    blocked_terminals = List.map decode !blocked_terminals;
    safe = !inconsistent = [];
    nonblocking = !blocked_terminals = [];
    counterexample =
      (match !inconsistent with [] -> None | ix :: _ -> Some (path_to ix));
  }

(* ---------------- packed codec, exposed for round-trip tests ---------------- *)

module Packed = struct
  type nonrec ctx = ctx

  let ctx rulebook = make_ctx rulebook
  let encode ctx s = pack_into ctx (Ibuf.create ()) (of_public ctx s)
  let decode ctx data = to_public ctx (unpack ctx data)
end

let pp_st ppf st =
  Fmt.pf ppf "<%a | alive=%a | %a>"
    Fmt.(array ~sep:comma string)
    st.locals
    Fmt.(array ~sep:comma bool)
    st.alive MS.pp st.network

let pp_report ppf r =
  Fmt.pf ppf "@[<v>explored %d states@,inconsistent: %d@,blocked terminals: %d@,safe: %b@,nonblocking: %b@]"
    r.explored (List.length r.inconsistent)
    (List.length r.blocked_terminals)
    r.safe r.nonblocking
