(** Wire messages exchanged by the protocol runtime: ordinary protocol FSA
    messages, the termination protocol's two phases, the recovery
    protocol's outcome queries, and — in timeout-detector mode — the
    failure detector's heartbeats and the bully-election traffic.

    Termination directives ([Move_to], [State_req], [Decide]) carry the
    issuing backup's election epoch so a participant can fence stale
    directives from a deposed-but-alive backup.  Epochs are allotted as
    [round * n_sites + (site - 1)], which makes them globally unique per
    site and, at round 0, ordered exactly like site rank — the reliable
    detector's deterministic election falls out as the special case. *)

type t =
  | Proto of Core.Message.t  (** a commit-protocol FSA message *)
  | Move_to of { target : string; epoch : int }
      (** termination phase 1: adopt this local state *)
  | Move_ack of string  (** acknowledgement, carrying the adopted state *)
  | Decide of { outcome : Core.Types.outcome; epoch : int }
      (** termination phase 2 / final notice *)
  | Query_outcome  (** recovery / blocked-site query: what happened? *)
  | Outcome_reply of Core.Types.outcome option
  | State_req of { epoch : int }
      (** quorum termination: a backup polls participant states *)
  | State_rep of string  (** the participant's current local state *)
  | Heartbeat  (** detector mode: periodic evidence of life *)
  | Elect of { epoch : int }
      (** detector mode: a candidate backup asks every better-ranked site
          to object before it assumes leadership at [epoch] *)
  | Elect_ack  (** the objection: a better-ranked live site will lead instead *)
  | Epoch_reject of { epoch : int }
      (** a participant refused a directive fenced below its current
          epoch; carries that epoch so the deposed backup stands down *)
[@@deriving show { with_path = false }, eq]

let to_string = function
  | Proto m -> Core.Message.show m
  | Move_to { target; epoch } -> Printf.sprintf "move-to(%s,e%d)" target epoch
  | Move_ack s -> "move-ack(" ^ s ^ ")"
  | Decide { outcome = Core.Types.Committed; epoch } -> Printf.sprintf "decide(commit,e%d)" epoch
  | Decide { outcome = Core.Types.Aborted; epoch } -> Printf.sprintf "decide(abort,e%d)" epoch
  | Query_outcome -> "query-outcome"
  | Outcome_reply None -> "outcome-reply(unknown)"
  | Outcome_reply (Some Core.Types.Committed) -> "outcome-reply(commit)"
  | Outcome_reply (Some Core.Types.Aborted) -> "outcome-reply(abort)"
  | State_req { epoch } -> Printf.sprintf "state-req(e%d)" epoch
  | State_rep s -> "state-rep(" ^ s ^ ")"
  | Heartbeat -> "heartbeat"
  | Elect { epoch } -> Printf.sprintf "elect(e%d)" epoch
  | Elect_ack -> "elect-ack"
  | Epoch_reject { epoch } -> Printf.sprintf "epoch-reject(e%d)" epoch
