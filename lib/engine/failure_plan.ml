(** Failure injection plans.

    A plan describes, for a single simulated run, which sites crash, when,
    and how "cleanly".  Crashes can be pinned to protocol progress — before
    a site's k-th state transition, or part-way through the message sends of
    that transition (the paper's partially completed transition: "only part
    of the messages that should be sent during a transition are actually
    transmitted") — or to wall-clock simulation time.  Recoveries are
    scheduled by time.  Plans also carry the network-level faults a chaos
    schedule composes: partition windows and message-level faults keyed by
    global send index.

    Plans round-trip through a compact text form ({!to_string} /
    {!of_string}), so a shrunk chaos counterexample can be pasted into a
    deterministic regression test. *)

type crash_mode =
  | Before_transition  (** crash before logging/acting on the transition *)
  | After_logging of int
      (** complete the forced log write, then send only the first [k]
          messages of the transition before crashing *)
  | After_transition  (** crash after the transition completes fully *)
[@@deriving show { with_path = false }, eq]

type step_crash = {
  site : Core.Types.site;
  step : int;  (** the site's n-th protocol transition, 0-based *)
  mode : crash_mode;
}
[@@deriving show { with_path = false }, eq]

type partition_spec = {
  from_t : float;
  until_t : float;
  groups : Core.Types.site list list;
}
[@@deriving show { with_path = false }, eq]

type delay_spec = {
  d_site : Core.Types.site;
  d_from : float;
  d_until : float;
  d_extra : float;  (** added to every message touching the site in the window *)
}
[@@deriving show { with_path = false }, eq]

type window_spec = { w_site : Core.Types.site; w_from : float; w_until : float }
[@@deriving show { with_path = false }, eq]

type storm_spec = {
  s_site : Core.Types.site;
  s_first : float;  (** first wave's crash time *)
  s_waves : int;
  s_period : float;  (** crash-to-crash spacing between waves *)
  s_down : float;  (** downtime per wave, [< s_period] *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  step_crashes : step_crash list;
  timed_crashes : (Core.Types.site * float) list;
  recoveries : (Core.Types.site * float) list;
  move_crashes : (Core.Types.site * int) list;
      (** crash a backup coordinator after sending the first [k] Move_to
          messages of termination phase 1 (cascading-failure experiments) *)
  decide_crashes : (Core.Types.site * int) list;
      (** crash a backup coordinator after sending the first [k] Decide
          messages of termination phase 2 *)
  partitions : partition_spec list;
  msg_faults : (int * Sim.World.msg_fault) list;
      (** the nth global send attempt suffers the paired fault *)
  disk_faults : (Core.Types.site * Sim.Disk.injection) list;
      (** storage faults armed on the site's log device *)
  delay_spikes : delay_spec list;  (** latency-spike windows *)
  stalls : window_spec list;  (** slow-site ("GC pause") windows *)
  hb_losses : window_spec list;  (** heartbeat-loss bursts *)
  acceptor_crashes : (Core.Types.site * float) list;
      (** timed crashes aimed at Paxos-Commit acceptor sites; a plain
          crash semantically, kept distinct so family validation and
          acceptor-targeted sweeps can tell them apart *)
  lease_faults : float list;
      (** leader-lease expiries: at each time a standby acceptor opens a
          higher-ballot recovery round while the leader is still alive *)
  storms : storm_spec list;
      (** crash-recover storms: repeated crash/recover waves on one site,
          expanded at lowering time via {!Sim.Nemesis.storm_events} *)
}
[@@deriving show { with_path = false }, eq]

let none =
  {
    step_crashes = [];
    timed_crashes = [];
    recoveries = [];
    move_crashes = [];
    decide_crashes = [];
    partitions = [];
    msg_faults = [];
    disk_faults = [];
    delay_spikes = [];
    stalls = [];
    hb_losses = [];
    acceptor_crashes = [];
    lease_faults = [];
    storms = [];
  }

let make ?(step_crashes = []) ?(timed_crashes = []) ?(recoveries = []) ?(move_crashes = [])
    ?(decide_crashes = []) ?(partitions = []) ?(msg_faults = []) ?(disk_faults = [])
    ?(delay_spikes = []) ?(stalls = []) ?(hb_losses = []) ?(acceptor_crashes = [])
    ?(lease_faults = []) ?(storms = []) () =
  {
    step_crashes;
    timed_crashes;
    recoveries;
    move_crashes;
    decide_crashes;
    partitions;
    msg_faults;
    disk_faults;
    delay_spikes;
    stalls;
    hb_losses;
    acceptor_crashes;
    lease_faults;
    storms;
  }

(** [crash_at_step ~site ~step ~mode] : the simplest single-crash plan. *)
let crash_at_step ~site ~step ~mode = { none with step_crashes = [ { site; step; mode } ] }

let find_step_crash t ~site ~step =
  List.find_opt (fun c -> c.site = site && c.step = step) t.step_crashes
  |> Option.map (fun c -> c.mode)

let storm_events (s : storm_spec) =
  Sim.Nemesis.storm_events
    (Sim.Nemesis.Storm
       { site = s.s_site; first = s.s_first; waves = s.s_waves; period = s.s_period; down = s.s_down })

let crashing_sites t =
  List.map (fun c -> c.site) t.step_crashes
  @ List.map fst t.timed_crashes @ List.map fst t.move_crashes @ List.map fst t.decide_crashes
  @ List.map fst t.acceptor_crashes
  @ List.map (fun s -> s.s_site) t.storms
  |> List.sort_uniq compare

let fault_count t =
  List.length t.step_crashes + List.length t.timed_crashes + List.length t.recoveries
  + List.length t.move_crashes + List.length t.decide_crashes + List.length t.partitions
  + List.length t.msg_faults + List.length t.disk_faults + List.length t.delay_spikes
  + List.length t.stalls + List.length t.hb_losses + List.length t.acceptor_crashes
  + List.length t.lease_faults + List.length t.storms

(** Lower a generated {!Sim.Nemesis} schedule into a plan the runtime can
    execute.  Order within each fault family is preserved. *)
let of_schedule (schedule : Sim.Nemesis.schedule) =
  List.fold_left
    (fun plan fault ->
      match fault with
      | Sim.Nemesis.Crash { site; at } ->
          { plan with timed_crashes = plan.timed_crashes @ [ (site, at) ] }
      | Sim.Nemesis.Step_crash { site; step; sent } ->
          let mode =
            match sent with None -> Before_transition | Some j -> After_logging j
          in
          { plan with step_crashes = plan.step_crashes @ [ { site; step; mode } ] }
      | Sim.Nemesis.Backup_crash { site; phase = Sim.Nemesis.Move; sent } ->
          { plan with move_crashes = plan.move_crashes @ [ (site, sent) ] }
      | Sim.Nemesis.Backup_crash { site; phase = Sim.Nemesis.Decide; sent } ->
          { plan with decide_crashes = plan.decide_crashes @ [ (site, sent) ] }
      | Sim.Nemesis.Recover { site; at } ->
          { plan with recoveries = plan.recoveries @ [ (site, at) ] }
      | Sim.Nemesis.Partition { from_t; until_t; groups } ->
          { plan with partitions = plan.partitions @ [ { from_t; until_t; groups } ] }
      | Sim.Nemesis.Msg { nth; fault } ->
          { plan with msg_faults = plan.msg_faults @ [ (nth, fault) ] }
      | Sim.Nemesis.Disk_fault { site; fault; nth } ->
          { plan with disk_faults = plan.disk_faults @ [ (site, { Sim.Disk.fault; nth }) ] }
      | Sim.Nemesis.Delay_window { site; from_t; until_t; extra } ->
          {
            plan with
            delay_spikes =
              plan.delay_spikes
              @ [ { d_site = site; d_from = from_t; d_until = until_t; d_extra = extra } ];
          }
      | Sim.Nemesis.Stall { site; from_t; until_t } ->
          {
            plan with
            stalls = plan.stalls @ [ { w_site = site; w_from = from_t; w_until = until_t } ];
          }
      | Sim.Nemesis.Hb_loss { site; from_t; until_t } ->
          {
            plan with
            hb_losses = plan.hb_losses @ [ { w_site = site; w_from = from_t; w_until = until_t } ];
          }
      | Sim.Nemesis.Acceptor_crash { site; at } ->
          { plan with acceptor_crashes = plan.acceptor_crashes @ [ (site, at) ] }
      | Sim.Nemesis.Lease_fault { at } ->
          { plan with lease_faults = plan.lease_faults @ [ at ] }
      | Sim.Nemesis.Storm { site; first; waves; period; down } ->
          {
            plan with
            storms =
              plan.storms
              @ [ { s_site = site; s_first = first; s_waves = waves; s_period = period; s_down = down } ];
          })
    none schedule

(** Inverse of {!of_schedule} on its image: rebuild a {!Sim.Nemesis}
    schedule from a plan, family-grouped in clause order.  The only lossy
    corner is [After_transition] step crashes, which {!of_schedule} never
    produces — they lower to a before-transition crash of the same step.
    This is what lets the kv harness (which consumes schedules, not
    plans) replay corpus entries persisted as plan text. *)
let to_schedule t =
  List.map
    (fun c ->
      let sent =
        match c.mode with
        | Before_transition | After_transition -> None
        | After_logging k -> Some k
      in
      Sim.Nemesis.Step_crash { site = c.site; step = c.step; sent })
    t.step_crashes
  @ List.map (fun (site, at) -> Sim.Nemesis.Crash { site; at }) t.timed_crashes
  @ List.map (fun (site, at) -> Sim.Nemesis.Recover { site; at }) t.recoveries
  @ List.map
      (fun (site, sent) -> Sim.Nemesis.Backup_crash { site; phase = Sim.Nemesis.Move; sent })
      t.move_crashes
  @ List.map
      (fun (site, sent) -> Sim.Nemesis.Backup_crash { site; phase = Sim.Nemesis.Decide; sent })
      t.decide_crashes
  @ List.map
      (fun p -> Sim.Nemesis.Partition { from_t = p.from_t; until_t = p.until_t; groups = p.groups })
      t.partitions
  @ List.map (fun (nth, fault) -> Sim.Nemesis.Msg { nth; fault }) t.msg_faults
  @ List.map
      (fun (site, { Sim.Disk.fault; nth }) -> Sim.Nemesis.Disk_fault { site; fault; nth })
      t.disk_faults
  @ List.map
      (fun d ->
        Sim.Nemesis.Delay_window
          { site = d.d_site; from_t = d.d_from; until_t = d.d_until; extra = d.d_extra })
      t.delay_spikes
  @ List.map
      (fun w -> Sim.Nemesis.Stall { site = w.w_site; from_t = w.w_from; until_t = w.w_until })
      t.stalls
  @ List.map
      (fun w -> Sim.Nemesis.Hb_loss { site = w.w_site; from_t = w.w_from; until_t = w.w_until })
      t.hb_losses
  @ List.map (fun (site, at) -> Sim.Nemesis.Acceptor_crash { site; at }) t.acceptor_crashes
  @ List.map (fun at -> Sim.Nemesis.Lease_fault { at }) t.lease_faults
  @ List.map
      (fun s ->
        Sim.Nemesis.Storm
          { site = s.s_site; first = s.s_first; waves = s.s_waves; period = s.s_period; down = s.s_down })
      t.storms

(* ------------------------------------------------------------------ *)
(* Textual round-trip.  One clause per fault, "; "-separated, so a
   shrunk counterexample pastes into a test as a single string.  Floats
   print with %.17g, which [float_of_string] reads back exactly. *)

let float_str x = Printf.sprintf "%.17g" x

let mode_str = function
  | Before_transition -> "before"
  | After_logging k -> Printf.sprintf "after-logging:%d" k
  | After_transition -> "after-transition"

let clause_strings t =
  List.map
    (fun c -> Printf.sprintf "step-crash site=%d step=%d mode=%s" c.site c.step (mode_str c.mode))
    t.step_crashes
  @ List.map (fun (s, at) -> Printf.sprintf "crash site=%d at=%s" s (float_str at)) t.timed_crashes
  @ List.map (fun (s, at) -> Printf.sprintf "recover site=%d at=%s" s (float_str at)) t.recoveries
  @ List.map (fun (s, k) -> Printf.sprintf "move-crash site=%d sent=%d" s k) t.move_crashes
  @ List.map (fun (s, k) -> Printf.sprintf "decide-crash site=%d sent=%d" s k) t.decide_crashes
  @ List.map
      (fun p ->
        Printf.sprintf "partition from=%s until=%s groups=%s" (float_str p.from_t)
          (float_str p.until_t)
          (String.concat "|"
             (List.map (fun g -> String.concat "," (List.map string_of_int g)) p.groups)))
      t.partitions
  @ List.map
      (fun (nth, f) ->
        let f_str =
          match f with
          | Sim.World.Fault_drop -> "drop"
          | Sim.World.Fault_duplicate -> "dup"
          | Sim.World.Fault_delay extra -> Printf.sprintf "delay:%s" (float_str extra)
        in
        Printf.sprintf "msg nth=%d fault=%s" nth f_str)
      t.msg_faults
  @ List.map
      (fun (site, { Sim.Disk.fault; nth }) ->
        let f_str =
          match fault with
          | Sim.Disk.Torn -> "torn"
          | Sim.Disk.Corrupt -> "corrupt"
          | Sim.Disk.Lost_flush -> "lost-flush"
        in
        Printf.sprintf "disk site=%d fault=%s nth=%d" site f_str nth)
      t.disk_faults
  @ List.map
      (fun d ->
        Printf.sprintf "delay site=%d from=%s until=%s extra=%s" d.d_site (float_str d.d_from)
          (float_str d.d_until) (float_str d.d_extra))
      t.delay_spikes
  @ List.map
      (fun w ->
        Printf.sprintf "stall site=%d from=%s until=%s" w.w_site (float_str w.w_from)
          (float_str w.w_until))
      t.stalls
  @ List.map
      (fun w ->
        Printf.sprintf "hb-loss site=%d from=%s until=%s" w.w_site (float_str w.w_from)
          (float_str w.w_until))
      t.hb_losses
  @ List.map
      (fun (s, at) -> Printf.sprintf "acceptor-crash site=%d at=%s" s (float_str at))
      t.acceptor_crashes
  @ List.map (fun at -> Printf.sprintf "lease-fault at=%s" (float_str at)) t.lease_faults
  @ List.map
      (fun s ->
        Printf.sprintf "storm site=%d first=%s waves=%d period=%s down=%s" s.s_site
          (float_str s.s_first) s.s_waves (float_str s.s_period) (float_str s.s_down))
      t.storms

let to_string t = String.concat "; " (clause_strings t)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let kv_of_token token =
  match String.index_opt token '=' with
  | Some i ->
      (String.sub token 0 i, String.sub token (i + 1) (String.length token - i - 1))
  | None -> parse_fail "expected key=value, got %S" token

let get key kvs =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> parse_fail "missing %s=..." key

let int_of key v = try int_of_string v with _ -> parse_fail "bad int for %s: %S" key v
let float_of key v = try float_of_string v with _ -> parse_fail "bad float for %s: %S" key v

let parse_mode = function
  | "before" -> Before_transition
  | "after-transition" -> After_transition
  | v -> (
      match String.split_on_char ':' v with
      | [ "after-logging"; k ] -> After_logging (int_of "mode" k)
      | _ -> parse_fail "bad mode: %S" v)

let parse_groups v =
  String.split_on_char '|' v
  |> List.map (fun g ->
         String.split_on_char ',' g
         |> List.filter (fun s -> s <> "")
         |> List.map (fun s -> int_of "groups" s))

let parse_msg_fault = function
  | "drop" -> Sim.World.Fault_drop
  | "dup" -> Sim.World.Fault_duplicate
  | v -> (
      match String.split_on_char ':' v with
      | [ "delay"; x ] -> Sim.World.Fault_delay (float_of "fault" x)
      | _ -> parse_fail "bad msg fault: %S" v)

let parse_clause plan clause =
  match
    String.split_on_char ' ' (String.trim clause) |> List.filter (fun s -> s <> "")
  with
  | [] -> plan
  | verb :: tokens -> (
      let kvs = List.map kv_of_token tokens in
      match verb with
      | "step-crash" ->
          let c =
            {
              site = int_of "site" (get "site" kvs);
              step = int_of "step" (get "step" kvs);
              mode = parse_mode (get "mode" kvs);
            }
          in
          { plan with step_crashes = plan.step_crashes @ [ c ] }
      | "crash" ->
          let c = (int_of "site" (get "site" kvs), float_of "at" (get "at" kvs)) in
          { plan with timed_crashes = plan.timed_crashes @ [ c ] }
      | "recover" ->
          let r = (int_of "site" (get "site" kvs), float_of "at" (get "at" kvs)) in
          { plan with recoveries = plan.recoveries @ [ r ] }
      | "move-crash" ->
          let c = (int_of "site" (get "site" kvs), int_of "sent" (get "sent" kvs)) in
          { plan with move_crashes = plan.move_crashes @ [ c ] }
      | "decide-crash" ->
          let c = (int_of "site" (get "site" kvs), int_of "sent" (get "sent" kvs)) in
          { plan with decide_crashes = plan.decide_crashes @ [ c ] }
      | "partition" ->
          let p =
            {
              from_t = float_of "from" (get "from" kvs);
              until_t = float_of "until" (get "until" kvs);
              groups = parse_groups (get "groups" kvs);
            }
          in
          { plan with partitions = plan.partitions @ [ p ] }
      | "msg" ->
          let f = (int_of "nth" (get "nth" kvs), parse_msg_fault (get "fault" kvs)) in
          { plan with msg_faults = plan.msg_faults @ [ f ] }
      | "disk" ->
          let fault =
            match get "fault" kvs with
            | "torn" -> Sim.Disk.Torn
            | "corrupt" -> Sim.Disk.Corrupt
            | "lost-flush" -> Sim.Disk.Lost_flush
            | v -> parse_fail "bad disk fault: %S" v
          in
          let d = (int_of "site" (get "site" kvs), { Sim.Disk.fault; nth = int_of "nth" (get "nth" kvs) }) in
          { plan with disk_faults = plan.disk_faults @ [ d ] }
      | "delay" ->
          let d =
            {
              d_site = int_of "site" (get "site" kvs);
              d_from = float_of "from" (get "from" kvs);
              d_until = float_of "until" (get "until" kvs);
              d_extra = float_of "extra" (get "extra" kvs);
            }
          in
          { plan with delay_spikes = plan.delay_spikes @ [ d ] }
      | "stall" ->
          let w =
            {
              w_site = int_of "site" (get "site" kvs);
              w_from = float_of "from" (get "from" kvs);
              w_until = float_of "until" (get "until" kvs);
            }
          in
          { plan with stalls = plan.stalls @ [ w ] }
      | "hb-loss" ->
          let w =
            {
              w_site = int_of "site" (get "site" kvs);
              w_from = float_of "from" (get "from" kvs);
              w_until = float_of "until" (get "until" kvs);
            }
          in
          { plan with hb_losses = plan.hb_losses @ [ w ] }
      | "acceptor-crash" ->
          let c = (int_of "site" (get "site" kvs), float_of "at" (get "at" kvs)) in
          { plan with acceptor_crashes = plan.acceptor_crashes @ [ c ] }
      | "lease-fault" ->
          { plan with lease_faults = plan.lease_faults @ [ float_of "at" (get "at" kvs) ] }
      | "storm" ->
          let s =
            {
              s_site = int_of "site" (get "site" kvs);
              s_first = float_of "first" (get "first" kvs);
              s_waves = int_of "waves" (get "waves" kvs);
              s_period = float_of "period" (get "period" kvs);
              s_down = float_of "down" (get "down" kvs);
            }
          in
          { plan with storms = plan.storms @ [ s ] }
      | v -> parse_fail "unknown fault kind: %S" v)

(** Inverse of {!to_string}; clauses separated by ';' or newlines.
    @raise Parse_error on malformed input. *)
let of_string_exn s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ';')
  |> List.fold_left parse_clause none

(** Total version for anything that parses user input — the CLI's
    [--plan], a counterexample pasted from a report: a malformed clause
    becomes a friendly [Error message], never a backtrace. *)
let of_string s = match of_string_exn s with p -> Ok p | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Protocol-family validation.  Some clauses only make sense against a
   runtime that actually has the targeted machinery: termination-phase
   crashes need 3PC's backup coordinators, acceptor/lease faults need
   Paxos Commit's replicated coordinator, and decide-crashes need either
   (both broadcast a decision from an elected backup/leader). *)

let is_3pc protocol =
  match protocol with "central-3pc" | "decentralized-3pc" -> true | _ -> false

let is_paxos protocol =
  String.length protocol >= 5 && String.sub protocol 0 5 = "paxos"

let unsupported_clauses ~protocol t =
  let reject clauses fmt_clause needs =
    List.map
      (fun c ->
        Printf.sprintf "%s: %s (protocol %s does not implement it)" (fmt_clause c) needs protocol)
      clauses
  in
  (if is_3pc protocol then []
   else
     reject t.move_crashes
       (fun (s, k) -> Printf.sprintf "move-crash site=%d sent=%d" s k)
       "termination phase 1 requires a 3PC protocol")
  @ (if is_3pc protocol || is_paxos protocol then []
     else
       reject t.decide_crashes
         (fun (s, k) -> Printf.sprintf "decide-crash site=%d sent=%d" s k)
         "a backup/leader decision broadcast requires 3PC or Paxos Commit")
  @ (if is_paxos protocol then []
     else
       reject t.acceptor_crashes
         (fun (s, at) -> Printf.sprintf "acceptor-crash site=%d at=%s" s (float_str at))
         "acceptors exist only under Paxos Commit")
  @
  if is_paxos protocol then []
  else
    reject t.lease_faults
      (fun at -> Printf.sprintf "lease-fault at=%s" (float_str at))
      "leader leases exist only under Paxos Commit"
