(** Chaos harness: randomized fault schedules, consistency oracles, and
    counterexample shrinking.

    Every run is a pure function of [(protocol, n, k, seed)]: the seed
    drives {!Sim.Nemesis.generate} through a {!Sim.Rng.split} stream, the
    schedule lowers to a {!Failure_plan.t} via
    {!Failure_plan.of_schedule}, one protocol instance executes it, and
    four oracles judge the quiesced history — atomicity (crashed sites
    judged by their WAL), nonblocking progress under ≤ k concurrent
    failures (the [until] horizon is the stall budget), recovery
    convergence, and durability (what the world observed from a site must
    be derivable from its durable log after crash + repair).  Violations
    are greedily shrunk to a minimal plan that {!Failure_plan.to_string}
    renders ready to paste into a regression test. *)

type oracle = Atomicity | Progress | Recovery_convergence | Durability | Split_brain

val pp_oracle : Format.formatter -> oracle -> unit
val equal_oracle : oracle -> oracle -> bool
val oracle_name : oracle -> string

type violation = { oracle : oracle; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type run_outcome = {
  seed : int;
  plan : Failure_plan.t;
  result : Runtime.result;
  violations : violation list;
}

type counterexample = {
  cx_seed : int;
  cx_violation : violation;
  cx_plan : Failure_plan.t;  (** shrunk to a local minimum *)
  cx_original_faults : int;
  cx_shrunk_faults : int;
  cx_shrink_runs : int;  (** re-executions spent shrinking *)
  cx_trace : Sim.World.trace_entry list;  (** trace of the minimal plan's run *)
}

type summary = {
  protocol : string;
  n_sites : int;
  k : int;
  seeds_run : int;
  counterexamples : counterexample list;
  violations_by_oracle : (oracle * int) list;
  metrics : Sim.Metrics.t;
      (** chaos_runs / shrink_runs / violations_* counters, per-oracle
          [wall_oracle_*_s] timing histograms (host wall clock,
          nondeterministic), schedule_faults histogram *)
}

val violations_of :
  ?metrics:Sim.Metrics.t ->
  ?presumption:Runtime.presumption ->
  ?read_only:Core.Types.site list ->
  Runtime.result ->
  violation list
(** Run the five oracles on a finished run (timing each into [metrics]
    when given).  [Split_brain] checks no election epoch in
    [result.directive_epochs] is claimed by two distinct sites.
    [presumption] licenses exactly one durability gap: an announced
    covered outcome whose appended-not-forced [Decided] record the crash
    took.  [read_only] sites are exempt from the progress, recovery and
    durability oracles (their log is volatile by design and they are
    excluded from termination). *)

val fingerprint_of : Runtime.result -> string list
(** The run's behavioural signature for the coverage-guided explorer
    ({!Explore}): per-site-class protocol-state edges walked by the
    stable log (read post hoc from the WAL store — the runtime's metrics
    stay untouched), terminal outcomes, bucketed detector/election
    activity ({!Sim.Coverage.bucket}) and oracle near-miss flags.
    Deterministic in the run. *)

val run_plan :
  ?metrics:Sim.Metrics.t ->
  ?until:float ->
  ?termination:Runtime.termination_rule ->
  ?tracing:bool ->
  ?presumption:Runtime.presumption ->
  ?read_only:Core.Types.site list ->
  ?group_commit:Wal.group_commit ->
  ?sync_latency:float ->
  ?late_force:bool ->
  ?detector:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?election_timeout:float ->
  ?fencing:bool ->
  Rulebook.t ->
  plan:Failure_plan.t ->
  seed:int ->
  unit ->
  Runtime.result * violation list
(** Execute one explicit plan (e.g. a pasted counterexample) and judge
    it.  [until] (default 1500.0) is the stall budget; [late_force]
    (default false) runs the mis-placed-force-point ablation the
    durability oracle must catch. *)

val run_one :
  ?metrics:Sim.Metrics.t ->
  ?profile:Sim.Nemesis.profile ->
  ?until:float ->
  ?termination:Runtime.termination_rule ->
  ?presumption:Runtime.presumption ->
  ?read_only:Core.Types.site list ->
  ?group_commit:Wal.group_commit ->
  ?sync_latency:float ->
  ?late_force:bool ->
  ?detector:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?election_timeout:float ->
  ?fencing:bool ->
  Rulebook.t ->
  k:int ->
  seed:int ->
  unit ->
  run_outcome
(** Generate the seed's schedule and execute it.  Deterministic. *)

val shrink :
  ?metrics:Sim.Metrics.t ->
  ?until:float ->
  ?termination:Runtime.termination_rule ->
  ?presumption:Runtime.presumption ->
  ?read_only:Core.Types.site list ->
  ?group_commit:Wal.group_commit ->
  ?sync_latency:float ->
  ?late_force:bool ->
  ?detector:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?election_timeout:float ->
  ?fencing:bool ->
  Rulebook.t ->
  seed:int ->
  oracle:oracle ->
  Failure_plan.t ->
  Failure_plan.t * int
(** Greedy minimisation: repeatedly drop single faults, then round fault
    times, keeping any candidate that still trips [oracle] under the same
    seed.  Returns the minimal plan and the number of re-runs spent. *)

val sweep :
  ?profile:Sim.Nemesis.profile ->
  ?until:float ->
  ?termination:Runtime.termination_rule ->
  ?presumption:Runtime.presumption ->
  ?read_only:Core.Types.site list ->
  ?group_commit:Wal.group_commit ->
  ?sync_latency:float ->
  ?late_force:bool ->
  ?detector:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?election_timeout:float ->
  ?fencing:bool ->
  ?seed_base:int ->
  ?max_counterexamples:int ->
  ?workers:int ->
  Rulebook.t ->
  k:int ->
  seeds:int ->
  unit ->
  summary
(** Run seeds [seed_base .. seed_base + seeds - 1]; shrink (and trace) at
    most [max_counterexamples] violations (default 5).

    [workers] (default 1) shards the seed range across OCaml domains via
    {!Sim.Sweep}: each seed runs in a fully isolated World/Metrics/Rng
    instance and per-seed registries merge in seed order, so the summary
    — counterexamples included — and the deterministic projection of
    [metrics] ({!Sim.Metrics.to_json} [~drop_wall:true]) are
    byte-identical whatever the worker count.  Only the [wall_]-prefixed
    oracle-timing histograms vary run to run.  Shrinking runs in a
    sequential seed-ordered phase after the sharded runs. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_summary : Format.formatter -> summary -> unit
