(** Per-site write-ahead log on stable storage.

    The paper assumes each site has a local recovery strategy providing
    atomicity at the local level.  Through PR 3 we modelled that with a
    perfect in-memory append; this version earns the assumption: records
    are serialized through a binary codec ({!to_bytes}/{!of_bytes}),
    framed with a length prefix and CRC-32 ({!Sim.Disk.Frame}), and
    written to a simulated disk whose [sync] barrier defines what a
    crash preserves.  {!append} alone is *not* durable — the runtime
    must {!force} (append + sync) before any externally visible action,
    which is exactly the paper's "forces a record to stable storage
    before acting".

    On crash the log replays itself from the disk: scan the durable
    image, verify checksums, truncate at the first invalid frame, and
    report what was repaired.  A record that was appended but never
    synced is gone — a *different*, and correctly handled, state than a
    crash after the sync. *)

type record =
  | Began of { protocol : string; initial : string }
  | Transitioned of { to_state : string; vote : Core.Types.vote option }
      (** a protocol FSA transition, logged before its messages are sent *)
  | Moved of { to_state : string }
      (** phase 1 of the termination protocol: adopted the backup's state *)
  | Decided of Core.Types.outcome
[@@deriving show { with_path = false }, eq]

(* ---------------- binary codec ---------------- *)

let put_string b s =
  let n = String.length s in
  if n > 0xffff then invalid_arg "Wal: string too long to encode";
  Buffer.add_uint16_le b n;
  Buffer.add_string b s

let to_bytes r =
  let b = Buffer.create 32 in
  (match r with
  | Began { protocol; initial } ->
      Buffer.add_uint8 b 0;
      put_string b protocol;
      put_string b initial
  | Transitioned { to_state; vote } ->
      Buffer.add_uint8 b 1;
      put_string b to_state;
      Buffer.add_uint8 b
        (match vote with None -> 0 | Some Core.Types.Yes -> 1 | Some Core.Types.No -> 2)
  | Moved { to_state } ->
      Buffer.add_uint8 b 2;
      put_string b to_state
  | Decided o ->
      Buffer.add_uint8 b 3;
      Buffer.add_uint8 b (match o with Core.Types.Committed -> 0 | Core.Types.Aborted -> 1));
  Buffer.to_bytes b

let of_bytes bytes =
  let total = Bytes.length bytes in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Failure m)) fmt in
  let u8 () =
    if !pos >= total then fail "truncated record at byte %d" !pos;
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let str () =
    if !pos + 2 > total then fail "truncated string length at byte %d" !pos;
    let n = Bytes.get_uint16_le bytes !pos in
    pos := !pos + 2;
    if !pos + n > total then fail "truncated string body at byte %d" !pos;
    let s = Bytes.sub_string bytes !pos n in
    pos := !pos + n;
    s
  in
  match
    let r =
      match u8 () with
      | 0 ->
          let protocol = str () in
          let initial = str () in
          Began { protocol; initial }
      | 1 ->
          let to_state = str () in
          let vote =
            match u8 () with
            | 0 -> None
            | 1 -> Some Core.Types.Yes
            | 2 -> Some Core.Types.No
            | v -> fail "bad vote byte %d" v
          in
          Transitioned { to_state; vote }
      | 2 -> Moved { to_state = str () }
      | 3 -> (
          match u8 () with
          | 0 -> Decided Core.Types.Committed
          | 1 -> Decided Core.Types.Aborted
          | v -> fail "bad outcome byte %d" v)
      | tag -> fail "unknown record tag %d" tag
    in
    if !pos <> total then fail "%d trailing bytes after record" (total - !pos);
    r
  with
  | r -> Ok r
  | exception Failure m -> Error m

(* ---------------- the log ---------------- *)

type repair = {
  survived : int;  (** records readable from the durable image after the crash *)
  lost_records : int;  (** appended records that did not survive — unsynced, torn or corrupted *)
  dropped_bytes : int;  (** bytes the recovery scan cut from the durable image *)
  reason : string option;
      (** why the scan truncated ([None]: the tail was lost cleanly at
          the sync boundary, nothing to scan away) *)
}
[@@deriving show { with_path = false }, eq]

type mode = Memory | Durable of Sim.Disk.t

type group_commit = Sim.Batch.group = { max_batch : int; max_wait : float }

type t = {
  mutable cache : record list;  (** newest first — the live (volatile) view of the log *)
  mode : mode;
  mutable repair_log : repair list;  (** newest first; one entry per crash that lost anything *)
  batch : Sim.Batch.t option;
      (** group-commit batcher over the disk's sync barrier; [None] on
          the fast path (no group, zero sync latency) where every force
          is a synchronous sync *)
  mutable metrics : Sim.Metrics.t option;
}

(** [durable:false] is the PR 3 in-memory log — sync is free and a crash
    loses nothing; it remains as the benchmark baseline the codec+sync
    overhead is measured against.  [seed] feeds the disk's private fault
    stream (torn lengths, flipped bits) only. *)
let create ?(seed = 0) ?(durable = true) ?group_commit ?(sync_latency = 0.0) () =
  let mode = if durable then Durable (Sim.Disk.create ~seed ()) else Memory in
  let batch =
    match mode with
    | Memory -> None
    | Durable disk ->
        if group_commit = None && sync_latency = 0.0 then None
        else
          Some
            (Sim.Batch.create ?group:group_commit ~sync_latency
               ~sync:(fun () -> Sim.Disk.sync disk)
               ())
  in
  { cache = []; mode; repair_log = []; batch; metrics = None }

(** Wire the log into a run: forces count into [metrics] and deferred
    flushes ride [schedule] — pass a site-bound timer so pending batches
    die with the site's crash. *)
let attach ?on_drain t ~metrics ~schedule =
  t.metrics <- Some metrics;
  match t.batch with
  | None -> ()
  | Some b ->
      Sim.Batch.attach b ~schedule
        ~on_flush:(fun ~batch ->
          Sim.Metrics.incr metrics "wal_group_flushes";
          Sim.Metrics.observe metrics "group_batch_size" (float_of_int batch))
        ?on_drain ()

let count_force t =
  match t.metrics with None -> () | Some m -> Sim.Metrics.incr m "wal_forces"

let append t r =
  t.cache <- r :: t.cache;
  match t.mode with
  | Memory -> ()
  | Durable disk -> Sim.Disk.write disk (Sim.Disk.Frame.encode (to_bytes r))

let sync t = match t.mode with Memory -> () | Durable disk -> Sim.Disk.sync disk

(** The paper's forced write: not durable until both halves complete.
    With a batcher armed, flushes through synchronously (covering the
    queue ahead of it too). *)
let force t r =
  count_force t;
  append t r;
  match t.batch with None -> sync t | Some b -> Sim.Batch.flush_now b

(** Asynchronous force: append now, run [k] once the record is on stable
    storage.  Fast path = [force t r; k ()]; a crash in between loses
    both record and callback. *)
let force_k t r k =
  count_force t;
  append t r;
  match t.batch with
  | None ->
      sync t;
      k ()
  | Some b -> Sim.Batch.submit b k

(** Run [k] once everything appended so far is durable — immediately when
    nothing is pending. *)
let after_durable t k = match t.batch with None -> k () | Some b -> Sim.Batch.barrier b k

let pending_forces t = match t.batch with None -> 0 | Some b -> Sim.Batch.pending b

let records t = List.rev t.cache
let length t = List.length t.cache

let set_faults t injections =
  match t.mode with
  | Memory -> ()
  | Durable disk -> Sim.Disk.set_faults disk injections

let disk t = match t.mode with Memory -> None | Durable d -> Some d

(** Crash the log's disk and rebuild the cache from what the durable
    image yields: scan frames, verify checksums, truncate at the first
    invalid one (and cut the disk back to that valid prefix, so
    post-recovery appends land after well-formed frames).  After this
    returns, the in-memory view *is* the durable view. *)
let crash t =
  (match t.batch with Some b -> Sim.Batch.crash b | None -> ());
  match t.mode with
  | Memory -> None
  | Durable disk ->
      let before = List.length t.cache in
      Sim.Disk.crash disk;
      let image = Sim.Disk.durable_contents disk in
      let payloads, frame_repair = Sim.Disk.Frame.scan image in
      (* a frame whose checksum passes but whose payload does not decode
         would be a codec bug, not a storage fault; treat it like
         corruption all the same and truncate there *)
      let rec decode acc kept_bytes err = function
        | [] -> (acc, kept_bytes, err)
        | p :: rest -> (
            match of_bytes p with
            | Ok r ->
                decode (r :: acc) (kept_bytes + Sim.Disk.Frame.header_len + Bytes.length p) err rest
            | Error e -> (acc, kept_bytes, Some (Printf.sprintf "undecodable record: %s" e)))
      in
      let rev_records, kept_bytes, decode_err = decode [] 0 None payloads in
      Sim.Disk.truncate disk kept_bytes;
      t.cache <- rev_records;
      let survived = List.length rev_records in
      let repair =
        {
          survived;
          lost_records = before - survived;
          dropped_bytes = Bytes.length image - kept_bytes;
          reason = (match decode_err with Some _ as e -> e | None -> frame_repair.Sim.Disk.Frame.reason);
        }
      in
      if repair.lost_records > 0 || repair.dropped_bytes > 0 then begin
        t.repair_log <- repair :: t.repair_log;
        Some repair
      end
      else None

let repairs t = List.rev t.repair_log

(** Last logged local state, replayed in order: [Began] sets it,
    [Transitioned]/[Moved] update it. *)
let last_state t =
  List.fold_left
    (fun acc r ->
      match r with
      | Began { initial; _ } -> Some initial
      | Transitioned { to_state; _ } | Moved { to_state } -> Some to_state
      | Decided _ -> acc)
    None (records t)

(** Whether the site had cast a yes vote before the log ends — the paper's
    "commit point" question for a participant: before voting yes it may
    abort unilaterally upon recovery. *)
let voted_yes t =
  List.exists
    (function Transitioned { vote = Some Core.Types.Yes; _ } -> true | _ -> false)
    (records t)

let decided t =
  List.fold_left (fun acc r -> match r with Decided o -> Some o | _ -> acc) None (records t)

let pp ppf t = Fmt.(list ~sep:cut pp_record) ppf (records t)

(** Stable storage for a whole simulated system: one log per site,
    surviving that site's crashes. *)
module Store = struct
  type wal = t
  type nonrec t = wal array (* index = site - 1 *)

  (* each site's disk gets its own fault stream, seeded by site id:
     independent of the world RNG and of every other disk *)
  let create ?(durable = true) ?group_commit ?(sync_latency = 0.0) ~n_sites () : t =
    Array.init n_sites (fun i -> create ~seed:(i + 1) ~durable ?group_commit ~sync_latency ())

  let log (t : t) ~site = t.(site - 1)
  let sites (t : t) = List.init (Array.length t) (fun i -> i + 1)
  let iter f (t : t) = Array.iteri (fun i w -> f (i + 1) w) t

  let fold f init (t : t) =
    let acc = ref init in
    Array.iteri (fun i w -> acc := f !acc (i + 1) w) t;
    !acc
end
