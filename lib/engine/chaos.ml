(** Chaos harness: randomized fault schedules, consistency oracles, and
    counterexample shrinking.

    Each run is a pure function of [(protocol, n, k, seed)]: the seed
    feeds a {!Sim.Rng.split} stream to {!Sim.Nemesis.generate}, the
    schedule lowers to a {!Failure_plan.t}, and one protocol instance
    executes it on the simulator.  After quiescence three oracles judge
    the history:

    - {e atomicity}: no history where one site commits and another
      aborts; crashed sites are judged by their last WAL-forced state
      ([wal_outcome]), since a site that logged a commit-final transition
      and died mid-broadcast has decided, whatever its volatile memory
      said.
    - {e nonblocking progress}: every operational never-crashed site
      decides when concurrent failures stay ≤ k (the generator enforces
      the bound).  The run's [until] horizon is the stall budget: a
      liveness violation is detected, not hung on.
    - {e recovery convergence}: every recovered site replays its WAL and
      reaches the cohort's decision, when one exists.  When no site
      decided at all and every site crashed at least once, that is the
      paper's total-failure scenario — out of scope for the termination
      protocol, so not flagged.
    - {e durability}: anything a site let the world observe must be
      justified by its durable log.  A yes vote on the wire with no
      yes-vote record surviving on the log, or an announced outcome the
      log cannot reproduce after crash + repair, means the site acted
      before its forced write was stable — a repaired-away record must
      never resurrect (or un-decide) a transaction.

    On violation the schedule is greedily shrunk — drop faults one at a
    time, then round fault times — re-running after each candidate until
    no single removal preserves the violation.  The minimal plan prints
    as a {!Failure_plan.to_string} value that pastes straight into a
    regression test, together with the event trace of its run. *)

type oracle = Atomicity | Progress | Recovery_convergence | Durability | Split_brain
[@@deriving show { with_path = false }, eq]

let oracle_name = function
  | Atomicity -> "atomicity"
  | Progress -> "progress"
  | Recovery_convergence -> "recovery"
  | Durability -> "durability"
  | Split_brain -> "split-brain"

type violation = { oracle : oracle; detail : string } [@@deriving show { with_path = false }, eq]

type run_outcome = {
  seed : int;
  plan : Failure_plan.t;
  result : Runtime.result;
  violations : violation list;
}

type counterexample = {
  cx_seed : int;
  cx_violation : violation;
  cx_plan : Failure_plan.t;  (** shrunk to a local minimum *)
  cx_original_faults : int;
  cx_shrunk_faults : int;
  cx_shrink_runs : int;  (** re-executions spent shrinking *)
  cx_trace : Sim.World.trace_entry list;  (** trace of the minimal plan's run *)
}

type summary = {
  protocol : string;
  n_sites : int;
  k : int;
  seeds_run : int;
  counterexamples : counterexample list;
  violations_by_oracle : (oracle * int) list;
  metrics : Sim.Metrics.t;
      (** chaos_runs, shrink_runs, per-oracle violation counters and
          wall_oracle_*_s timing histograms, schedule_faults histogram *)
}

let outcome_str = function Core.Types.Committed -> "commit" | Core.Types.Aborted -> "abort"

(* A site's effective decision: what its stable log forced, falling back
   to nothing.  Volatile [outcome] is always backed by a WAL record
   ([finalize] writes before it sets), so the WAL view subsumes it; the
   interesting divergence is a crashed site whose log decided. *)
let effective (r : Runtime.site_report) =
  match r.outcome with Some o -> Some o | None -> r.wal_outcome

let check_atomicity (result : Runtime.result) =
  let decided =
    List.filter_map
      (fun (r : Runtime.site_report) -> Option.map (fun o -> (r.site, o)) (effective r))
      result.reports
  in
  let commits = List.filter (fun (_, o) -> o = Core.Types.Committed) decided in
  let aborts = List.filter (fun (_, o) -> o = Core.Types.Aborted) decided in
  if commits <> [] && aborts <> [] then
    Some
      {
        oracle = Atomicity;
        detail =
          Printf.sprintf "sites %s committed but sites %s aborted"
            (String.concat "," (List.map (fun (s, _) -> string_of_int s) commits))
            (String.concat "," (List.map (fun (s, _) -> string_of_int s) aborts));
      }
  else None

(* Read-only sites are outside the progress and recovery contracts: they
   are excluded from backup leadership and quorum counts, so a run where
   only read-only sites survive is the total-failure scenario for them —
   and their recovery asks peers with no log of its own to converge
   from. *)
let check_progress ?(read_only = []) (result : Runtime.result) =
  let stuck =
    List.filter
      (fun (r : Runtime.site_report) ->
        r.operational
        && (not r.ever_crashed)
        && (not (List.mem r.site read_only))
        && r.outcome = None)
      result.reports
  in
  if stuck <> [] then
    Some
      {
        oracle = Progress;
        detail =
          Printf.sprintf "operational never-crashed site(s) %s undecided at the stall budget"
            (String.concat ","
               (List.map (fun (r : Runtime.site_report) -> string_of_int r.site) stuck));
      }
  else None

let check_recovery ?(read_only = []) (result : Runtime.result) =
  let decisions =
    List.filter_map effective result.reports |> List.sort_uniq compare
  in
  match decisions with
  | [ d ] ->
      (* a unique cohort decision exists: every recovered operational
         site must have converged to it (a contradictory decision is the
         atomicity oracle's finding, not this one's) *)
      let stuck =
        List.filter
          (fun (r : Runtime.site_report) ->
            r.operational && r.ever_crashed
            && (not (List.mem r.site read_only))
            && r.outcome = None)
          result.reports
      in
      if stuck <> [] then
        Some
          {
            oracle = Recovery_convergence;
            detail =
              Printf.sprintf "cohort decided %s but recovered site(s) %s never converged"
                (outcome_str d)
                (String.concat ","
                   (List.map (fun (r : Runtime.site_report) -> string_of_int r.site) stuck));
          }
      else None
  | _ -> None

(* Durability: what the world observed from a site must be derivable from
   its durable log.  [Wal.crash] rebuilds the volatile view from the
   durable image at every crash, so a crashed site's WAL view *is* its
   durable prefix after repair — comparing it against the sticky
   [sent_yes]/[announced] flags (which survive crashes precisely because
   the world cannot un-see a message) makes the check sound post-hoc. *)
let check_durability ?(presumption = Runtime.No_presumption) ?(read_only = [])
    (result : Runtime.result) =
  (* the presumption licenses exactly one gap: an announced covered
     outcome whose [Decided] record the crash took — the record was
     appended, not forced, by design.  A log that resolved the *other*
     way is still a breach, as is a covered gap under the wrong
     presumption. *)
  let presumed_covered o =
    match (presumption, o) with
    | Runtime.Presume_abort, Core.Types.Aborted -> true
    | Runtime.Presume_commit, Core.Types.Committed -> true
    | (Runtime.No_presumption | Runtime.Presume_abort | Runtime.Presume_commit), _ -> false
  in
  let problems =
    List.filter_map
      (fun (r : Runtime.site_report) ->
        if List.mem r.site read_only then
          (* a read-only site's log is volatile by design: nothing it
             shows (or fails to show) is binding *)
          None
        else
          let wal = Wal.Store.log result.store ~site:r.site in
          if r.sent_yes && not (Wal.voted_yes wal) then
            Some
              (Printf.sprintf "site %d sent a yes vote its durable log cannot justify" r.site)
          else
            match r.announced with
            | Some o when r.wal_outcome = None && presumed_covered o -> None
            | Some o when r.wal_outcome <> Some o ->
                Some
                  (Printf.sprintf "site %d announced %s but its durable log says %s" r.site
                     (outcome_str o)
                     (match r.wal_outcome with Some o' -> outcome_str o' | None -> "nothing"))
            | _ -> None)
      result.reports
  in
  if problems <> [] then
    Some { oracle = Durability; detail = String.concat "; " problems }
  else None

(* Split-brain: election epochs are globally unique per site by
   construction ([round * n_sites + (site - 1)]), so an epoch claimed by
   two distinct sites means two backups believed they owned the same
   election round — exactly what fencing is meant to exclude.  (The
   observable damage of a split brain — contradictory decisions — is the
   atomicity oracle's finding; this one pins the structural invariant.) *)
let check_split_brain (result : Runtime.result) =
  let owner = Hashtbl.create 8 in
  let dup =
    List.find_opt
      (fun (site, e) ->
        match Hashtbl.find_opt owner e with
        | Some s -> s <> site
        | None ->
            Hashtbl.replace owner e site;
            false)
      result.Runtime.directive_epochs
  in
  match dup with
  | None -> None
  | Some (site, e) ->
      Some
        {
          oracle = Split_brain;
          detail = Printf.sprintf "epoch %d claimed by two sites, e.g. site %d" e site;
        }

(* Run the five oracles, timing each into [metrics] when provided.  The
   timing histograms carry the reserved [wall_] prefix: they are host
   wall-clock measurements through the one shared clock ({!Sim.Clock}),
   nondeterministic across runs and excluded from sweep
   merge-equivalence checks.  Never [Sys.time] here — that is
   process-wide CPU time, which sums across a parallel sweep's domains
   and turns every per-oracle histogram into garbage. *)
let violations_of ?metrics ?presumption ?read_only result =
  let timed name f =
    match metrics with
    | None -> f result
    | Some m ->
        let v, dt = Sim.Clock.time (fun () -> f result) in
        Sim.Metrics.observe m (Printf.sprintf "wall_oracle_%s_s" name) dt;
        v
  in
  List.filter_map Fun.id
    [
      timed "atomicity" check_atomicity;
      timed "progress" (check_progress ?read_only);
      timed "recovery" (check_recovery ?read_only);
      timed "durability" (check_durability ?presumption ?read_only);
      timed "split_brain" check_split_brain;
    ]

(* The per-run detector counters worth aggregating across a sweep: they
   answer "how often did suspicion misfire, and what did fencing stop". *)
let detector_counter_names =
  [ "false_suspicions"; "elections_started"; "elections"; "epoch_rejected_directives" ]

let aggregate_run_metrics m result =
  let rm = result.Runtime.run_metrics in
  List.iter
    (fun name ->
      match Sim.Metrics.counter rm name with
      | 0 -> ()
      | by -> Sim.Metrics.incr ~by m name)
    detector_counter_names;
  (* fold the crash-to-suspicion latency histogram by re-observing bucket
     midpoints: within one bucket width of exact, which is all the
     summary percentiles claim anyway *)
  List.iter
    (fun (lower, upper, count) ->
      let v = if Float.is_finite upper then (lower +. upper) /. 2.0 else lower in
      for _ = 1 to count do
        Sim.Metrics.observe m "suspicion_latency" v
      done)
    (Sim.Metrics.buckets rm "suspicion_latency")

(* ---------------- coverage fingerprints ---------------- *)

(* The run's behavioural signature for the coverage-guided explorer
   ({!Explore}): per-site-class protocol-state edges walked by the
   stable log — read post hoc from the WAL store, so the runtime's
   metrics stay byte-identical to every pinned expectation — plus
   terminal outcomes, bucketed detector/election activity and oracle
   near-miss flags.  Everything here is deterministic in the run; no
   wall-clock measurement may leak in. *)
let fingerprint_of (result : Runtime.result) =
  let open Sim.Coverage in
  let site_features (r : Runtime.site_report) =
    let class_ = if r.site = 1 then "coord" else "part" in
    let labels =
      List.map
        (function
          | Wal.Began { initial; _ } -> initial
          | Wal.Transitioned { to_state; vote } -> (
              match vote with
              | Some Core.Types.Yes -> to_state ^ "+y"
              | Some Core.Types.No -> to_state ^ "+n"
              | None -> to_state)
          | Wal.Moved { to_state } -> "mv-" ^ to_state
          | Wal.Decided o -> "dec-" ^ outcome_str o)
        (Wal.records (Wal.Store.log result.store ~site:r.site))
    in
    let rec edges = function
      | a :: (b :: _ as rest) -> edge ~class_ a b :: edges rest
      | [] | [ _ ] -> []
    in
    edges labels
    @ [
        feat ("final-" ^ class_) r.final_state;
        feat ("end-" ^ class_)
          (Printf.sprintf "%s%s%s"
             (match effective r with Some o -> outcome_str o | None -> "undecided")
             (if r.ever_crashed then "+crashed" else "")
             (if r.operational then "" else "+down"));
      ]
  in
  List.concat_map site_features result.reports
  @ [
      feat "outcome"
        (match result.global_outcome with Some o -> outcome_str o | None -> "none");
      feat "consistent" (string_of_bool result.consistent);
      feat "blocked" (bucket result.blocked_operational);
      feat "epochs" (bucket (List.length result.directive_epochs));
      feat "epoch-sites"
        (bucket
           (List.length (List.sort_uniq compare (List.map fst result.directive_epochs))));
    ]
  @ List.map
      (fun name -> feat name (bucket (Sim.Metrics.counter result.run_metrics name)))
      detector_counter_names

let run_plan ?metrics ?(until = 1500.0) ?(termination = Runtime.Skeen) ?(tracing = false)
    ?presumption ?read_only ?group_commit ?sync_latency ?(late_force = false) ?detector
    ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing rulebook ~plan ~seed () =
  let result =
    Runtime.run
      (Runtime.config ~plan ~seed ~tracing ~until ~termination ?presumption ?read_only
         ?group_commit ?sync_latency ~late_force ?detector ?heartbeat_period ?suspicion_timeout
         ?election_timeout ?fencing rulebook)
  in
  (match metrics with Some m -> aggregate_run_metrics m result | None -> ());
  (result, violations_of ?metrics ?presumption ?read_only result)

let run_one ?metrics ?(profile = Sim.Nemesis.default_profile) ?until ?termination ?presumption
    ?read_only ?group_commit ?sync_latency ?late_force ?detector ?heartbeat_period
    ?suspicion_timeout ?election_timeout ?fencing rulebook ~k ~seed () =
  let n_sites = Core.Protocol.n_sites rulebook.Rulebook.protocol in
  (* The seed's randomness splits: the schedule draws from its own
     stream, the world's latency draws from another, so the schedule
     never perturbs message timing beyond the faults it injects. *)
  let sched_rng = Sim.Rng.split (Sim.Rng.create ~seed) in
  let schedule = Sim.Nemesis.generate sched_rng ~n_sites ~k profile in
  let plan = Failure_plan.of_schedule schedule in
  (match metrics with
  | Some m ->
      Sim.Metrics.incr m "chaos_runs";
      Sim.Metrics.observe m "schedule_faults" (float_of_int (Failure_plan.fault_count plan))
  | None -> ());
  let result, violations =
    run_plan ?metrics ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
      ?late_force ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing
      rulebook ~plan ~seed ()
  in
  { seed; plan; result; violations }

(* ---------------- shrinking ---------------- *)

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

let removal_candidates (p : Failure_plan.t) =
  let open Failure_plan in
  List.mapi (fun i _ -> { p with step_crashes = remove_nth i p.step_crashes }) p.step_crashes
  @ List.mapi (fun i _ -> { p with timed_crashes = remove_nth i p.timed_crashes }) p.timed_crashes
  @ List.mapi (fun i _ -> { p with recoveries = remove_nth i p.recoveries }) p.recoveries
  @ List.mapi (fun i _ -> { p with move_crashes = remove_nth i p.move_crashes }) p.move_crashes
  @ List.mapi (fun i _ -> { p with decide_crashes = remove_nth i p.decide_crashes }) p.decide_crashes
  @ List.mapi (fun i _ -> { p with partitions = remove_nth i p.partitions }) p.partitions
  @ List.mapi (fun i _ -> { p with msg_faults = remove_nth i p.msg_faults }) p.msg_faults
  @ List.mapi (fun i _ -> { p with disk_faults = remove_nth i p.disk_faults }) p.disk_faults
  @ List.mapi (fun i _ -> { p with delay_spikes = remove_nth i p.delay_spikes }) p.delay_spikes
  @ List.mapi (fun i _ -> { p with stalls = remove_nth i p.stalls }) p.stalls
  @ List.mapi (fun i _ -> { p with hb_losses = remove_nth i p.hb_losses }) p.hb_losses
  @ List.mapi
      (fun i _ -> { p with acceptor_crashes = remove_nth i p.acceptor_crashes })
      p.acceptor_crashes
  @ List.mapi (fun i _ -> { p with lease_faults = remove_nth i p.lease_faults }) p.lease_faults
  @ List.mapi (fun i _ -> { p with storms = remove_nth i p.storms }) p.storms
  (* a storm is one discrete fault but has an internal dimension: also
     offer each storm with one fewer wave, so a wedge that needs only the
     first crash/recover cycle shrinks past the whole-storm clause *)
  @ List.concat
      (List.mapi
         (fun i (s : Failure_plan.storm_spec) ->
           if s.s_waves > 1 then
             [
               {
                 p with
                 storms =
                   List.mapi
                     (fun j s' -> if j = i then { s with s_waves = s.s_waves - 1 } else s')
                     p.storms;
               };
             ]
           else [])
         p.storms)

(* Round every non-integral fault time, one at a time, so the minimal
   counterexample reads "crash site=1 at=2" rather than "at=2.0386...". *)
let rounding_candidates (p : Failure_plan.t) =
  let open Failure_plan in
  let set_nth n x l = List.mapi (fun i y -> if i = n then x else y) l in
  let rounded f k l =
    List.concat
      (List.mapi
         (fun i x ->
           match f x with Some x' -> [ k (set_nth i x' l) ] | None -> [])
         l)
  in
  let round_time (s, at) =
    if Float.round at <> at then Some (s, Float.round at) else None
  in
  rounded round_time (fun l -> { p with timed_crashes = l }) p.timed_crashes
  @ rounded round_time (fun l -> { p with recoveries = l }) p.recoveries
  @ rounded
      (fun (pt : partition_spec) ->
        let from_t = Float.round pt.from_t and until_t = Float.round pt.until_t in
        if from_t <> pt.from_t || until_t <> pt.until_t then Some { pt with from_t; until_t }
        else None)
      (fun l -> { p with partitions = l })
      p.partitions
  @ rounded
      (fun (nth, f) ->
        match f with
        | Sim.World.Fault_delay extra when Float.round extra <> extra && Float.round extra > 0.0
          ->
            Some (nth, Sim.World.Fault_delay (Float.round extra))
        | _ -> None)
      (fun l -> { p with msg_faults = l })
      p.msg_faults
  @ rounded
      (fun (d : delay_spec) ->
        let d_from = Float.round d.d_from
        and d_until = Float.round d.d_until
        and d_extra = Float.max 1.0 (Float.round d.d_extra) in
        if d_from <> d.d_from || d_until <> d.d_until || d_extra <> d.d_extra then
          Some { d with d_from; d_until; d_extra }
        else None)
      (fun l -> { p with delay_spikes = l })
      p.delay_spikes
  @ rounded
      (fun (w : window_spec) ->
        let w_from = Float.round w.w_from and w_until = Float.round w.w_until in
        if w_from <> w.w_from || w_until <> w.w_until then Some { w with w_from; w_until }
        else None)
      (fun l -> { p with stalls = l })
      p.stalls
  @ rounded
      (fun (w : window_spec) ->
        let w_from = Float.round w.w_from and w_until = Float.round w.w_until in
        if w_from <> w.w_from || w_until <> w.w_until then Some { w with w_from; w_until }
        else None)
      (fun l -> { p with hb_losses = l })
      p.hb_losses
  @ rounded round_time (fun l -> { p with acceptor_crashes = l }) p.acceptor_crashes
  @ rounded
      (fun at -> if Float.round at <> at then Some (Float.round at) else None)
      (fun l -> { p with lease_faults = l })
      p.lease_faults
  @ rounded
      (fun (s : storm_spec) ->
        (* only the start time: rounding period/down could break the
           down < period invariant the storm model relies on *)
        if Float.round s.s_first <> s.s_first then Some { s with s_first = Float.round s.s_first }
        else None)
      (fun l -> { p with storms = l })
      p.storms

let shrink ?metrics ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
    ?late_force ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing
    rulebook ~seed ~oracle plan =
  let runs = ref 0 in
  let still_fails p =
    incr runs;
    (match metrics with Some m -> Sim.Metrics.incr m "shrink_runs" | None -> ());
    let _, vs =
      run_plan ?metrics ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
        ?late_force ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing
        rulebook ~plan:p ~seed ()
    in
    List.exists (fun v -> v.oracle = oracle) vs
  in
  let rec reduce candidates_of p =
    match List.find_opt still_fails (candidates_of p) with
    | Some p' -> reduce candidates_of p'
    | None -> p
  in
  let p = reduce removal_candidates plan in
  let p = reduce rounding_candidates p in
  (p, !runs)

let counterexample_of ?metrics ?until ?termination ?presumption ?read_only ?group_commit
    ?sync_latency ?late_force ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout
    ?fencing rulebook (run : run_outcome) violation =
  let cx_plan, cx_shrink_runs =
    shrink ?metrics ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
      ?late_force ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing
      rulebook ~seed:run.seed ~oracle:violation.oracle run.plan
  in
  (* replay the minimal plan with tracing to capture the evidence *)
  let result, vs =
    run_plan ?until ?termination ~tracing:true ?presumption ?read_only ?group_commit
      ?sync_latency ?late_force ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout
      ?fencing rulebook ~plan:cx_plan ~seed:run.seed ()
  in
  let cx_violation =
    match List.find_opt (fun v -> v.oracle = violation.oracle) vs with
    | Some v -> v
    | None -> violation (* unreachable: shrinking preserved the oracle *)
  in
  {
    cx_seed = run.seed;
    cx_violation;
    cx_plan;
    cx_original_faults = Failure_plan.fault_count run.plan;
    cx_shrunk_faults = Failure_plan.fault_count cx_plan;
    cx_shrink_runs;
    cx_trace = result.Runtime.trace;
  }

(* ---------------- seed sweeps ---------------- *)

let sweep ?(profile = Sim.Nemesis.default_profile) ?until ?termination ?presumption ?read_only
    ?group_commit ?sync_latency ?late_force ?detector ?heartbeat_period ?suspicion_timeout
    ?election_timeout ?fencing ?(seed_base = 0) ?(max_counterexamples = 5) ?(workers = 1)
    rulebook ~k ~seeds () =
  (* Phase 1, embarrassingly parallel: each seed runs in full isolation —
     its own World, Metrics registry and Rng stream, sharing only the
     read-only compiled rulebook — so worker assignment is unobservable. *)
  let runs, metrics =
    Sim.Sweep.sweep ~workers ~seed_base ~seeds (fun ~metrics ~seed ->
        let run =
          run_one ~metrics ~profile ?until ?termination ?presumption ?read_only ?group_commit
            ?sync_latency ?late_force ?detector ?heartbeat_period ?suspicion_timeout
            ?election_timeout ?fencing rulebook ~k ~seed ()
        in
        List.iter
          (fun v ->
            Sim.Metrics.incr metrics (Printf.sprintf "violations_%s" (oracle_name v.oracle)))
          run.violations;
        run)
  in
  (* Phase 2, sequential and seed-ordered: aggregate verdicts and shrink
     the first [max_counterexamples] violations — identical selection and
     results whatever the worker count. *)
  let counterexamples = ref [] in
  let by_oracle = Hashtbl.create 4 in
  Array.iter
    (fun run ->
      List.iter
        (fun v ->
          Hashtbl.replace by_oracle v.oracle
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_oracle v.oracle));
          if List.length !counterexamples < max_counterexamples then
            counterexamples :=
              counterexample_of ~metrics ?until ?termination ?presumption ?read_only
                ?group_commit ?sync_latency ?late_force ?detector ?heartbeat_period
                ?suspicion_timeout ?election_timeout ?fencing rulebook run v
              :: !counterexamples)
        run.violations)
    runs;
  {
    protocol = rulebook.Rulebook.protocol.Core.Protocol.name;
    n_sites = Core.Protocol.n_sites rulebook.Rulebook.protocol;
    k;
    seeds_run = seeds;
    counterexamples = List.rev !counterexamples;
    violations_by_oracle =
      Hashtbl.fold (fun o c acc -> (o, c) :: acc) by_oracle [] |> List.sort compare;
    metrics;
  }

let pp_counterexample ppf cx =
  Fmt.pf ppf "@[<v>seed %d: %s violation — %s@,shrunk %d -> %d fault(s) in %d re-run(s)@,plan: %s@,trace:@,%a@]"
    cx.cx_seed
    (oracle_name cx.cx_violation.oracle)
    cx.cx_violation.detail cx.cx_original_faults cx.cx_shrunk_faults cx.cx_shrink_runs
    (match Failure_plan.to_string cx.cx_plan with "" -> "(no faults)" | s -> s)
    (Fmt.list ~sep:Fmt.cut (fun ppf (e : Sim.World.trace_entry) ->
         Fmt.pf ppf "  %8.2f  %s" e.at e.what))
    cx.cx_trace

let pp_summary ppf s =
  Fmt.pf ppf "@[<v>chaos %s n=%d k=%d: %d seed(s), %d violation(s)%a@]" s.protocol s.n_sites s.k
    s.seeds_run
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.violations_by_oracle)
    (Fmt.list ~sep:Fmt.nop (fun ppf (o, c) -> Fmt.pf ppf "@,  %s: %d" (oracle_name o) c))
    s.violations_by_oracle
