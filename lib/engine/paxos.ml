(** Paxos Commit (Gray & Lamport) on the engine harness — see the
    interface for the protocol story.  The runner is self-contained: it
    speaks its own wire language in its own {!Sim.World}, and reports
    through the ordinary {!Runtime.result} so every chaos oracle applies
    unchanged.

    Liveness discipline: every broadcast that can be lost to a dead or
    recovering majority has a retry path.  The current leader re-drives
    its pending phase on a capped-backoff timer and immediately when a
    peer recovers; blocked participants run the shared outcome-query
    loop; leader death (or a lease expiry) fails over to the
    lowest-numbered live standby at a strictly higher ballot. *)

type config = {
  n_sites : int;
  f : int;
  votes : (Core.Types.site * Core.Types.vote) list;
  plan : Failure_plan.t;
  seed : int;
  tracing : bool;
  until : float;
  query_interval : float;
  query_backoff_cap : float;
}

let acceptors ~n_sites ~f =
  if f = 0 then [ 1 ] else List.init ((2 * f) + 1) (fun i -> n_sites - (2 * f) + i)

let config ?(votes = []) ?(plan = Failure_plan.none) ?(seed = 0) ?(tracing = false)
    ?(until = 1500.0) ?(query_interval = 3.0) ?(query_backoff_cap = 45.0) ~n_sites ~f () =
  if n_sites < 2 then Fmt.invalid_arg "Paxos.config: need at least 2 sites, got %d" n_sites;
  if f < 0 then Fmt.invalid_arg "Paxos.config: negative f";
  if f > 0 && (2 * f) + 1 > n_sites then
    Fmt.invalid_arg "Paxos.config: f=%d needs %d acceptor sites but n_sites=%d" f ((2 * f) + 1)
      n_sites;
  { n_sites; f; votes; plan; seed; tracing; until; query_interval; query_backoff_cap }

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)
(* ------------------------------------------------------------------ *)

type msg =
  | Prepare  (** TM → RM: solicit the vote (doubles as the env request at site 1) *)
  | P2a of { rm : Core.Types.site; ballot : int; prepared : bool }
      (** phase 2a of instance [rm]: at ballot 0 sent by the RM itself *)
  | P2b of { rm : Core.Types.site; ballot : int; prepared : bool }  (** acceptor → leader *)
  | P1a of { ballot : int }  (** recovery leader opens phase 1 for every instance *)
  | P1b of { ballot : int; accepted : (Core.Types.site * (int * bool)) list }
      (** the acceptor's highest accepted (ballot, value) per instance *)
  | P_reject of { ballot : int }  (** the acceptor's promise outranks the proposal *)
  | Outcome of Core.Types.outcome
  | Query_outcome
  | Outcome_reply of Core.Types.outcome option
  | Lease_expire  (** environment-injected leader-lease expiry *)

let msg_to_string = function
  | Prepare -> "prepare"
  | P2a { rm; ballot; prepared } ->
      Printf.sprintf "p2a(rm=%d,b=%d,%s)" rm ballot (if prepared then "prepared" else "abort")
  | P2b { rm; ballot; prepared } ->
      Printf.sprintf "p2b(rm=%d,b=%d,%s)" rm ballot (if prepared then "prepared" else "abort")
  | P1a { ballot } -> Printf.sprintf "p1a(b=%d)" ballot
  | P1b { ballot; accepted } -> Printf.sprintf "p1b(b=%d,%d accepted)" ballot (List.length accepted)
  | P_reject { ballot } -> Printf.sprintf "p-reject(b=%d)" ballot
  | Outcome Core.Types.Committed -> "outcome(commit)"
  | Outcome Core.Types.Aborted -> "outcome(abort)"
  | Query_outcome -> "query-outcome"
  | Outcome_reply None -> "outcome-reply(unknown)"
  | Outcome_reply (Some Core.Types.Committed) -> "outcome-reply(commit)"
  | Outcome_reply (Some Core.Types.Aborted) -> "outcome-reply(abort)"
  | Lease_expire -> "lease-expire"

(* ------------------------------------------------------------------ *)
(* Per-site state                                                      *)
(* ------------------------------------------------------------------ *)

type lead = {
  l_ballot : int;
  mutable l_phase2 : bool;  (** ballot 0 starts here; recovery needs f+1 promises first *)
  mutable l_promised : (Core.Types.site * (Core.Types.site * (int * bool)) list) list;
      (** phase-1b replies: acceptor → its accepted map *)
  mutable l_proposals : (Core.Types.site * bool) list;
      (** recovery phase 2: the value proposed per instance *)
  mutable l_accepts : (Core.Types.site * Core.Types.site list) list;
      (** instance → acceptors that accepted at [l_ballot] *)
  mutable l_chosen : (Core.Types.site * bool) list;
  mutable l_attempt : int;  (** re-drive backoff attempt *)
}

type site_rt = {
  site : Core.Types.site;
  wal : Wal.t;
  mutable steps : int;  (** fired protocol transitions — the step-crash anchor *)
  mutable tm_started : bool;  (** sticky: the TM runs ballot 0 once per run *)
  mutable voted : Core.Types.vote option;
  mutable outcome : Core.Types.outcome option;
  mutable decided_at : float option;
  mutable ever_crashed : bool;
  mutable sent_yes : bool;  (** sticky across crashes, like the runtime's *)
  mutable announced : Core.Types.outcome option;  (** sticky *)
  mutable highest_seen : int;  (** highest ballot observed in any message *)
  mutable promised : int;  (** acceptor: highest promised ballot (-1 = none) *)
  mutable accepted : (Core.Types.site * (int * bool)) list;
      (** acceptor: instance → highest accepted (ballot, value) *)
  mutable leading : lead option;
  mutable querying : bool;
  mutable query_attempt : int;
}

type exec = {
  cfg : config;
  world : msg Sim.World.t;
  store : Wal.Store.t;
  rts : site_rt array;
  acceptor_set : Core.Types.site list;
  query_rng : Sim.Rng.t;
  mutable directive_epochs : (Core.Types.site * int) list;
}

let metrics t = Sim.World.metrics t.world
let rt_of t site = t.rts.(site - 1)
let alive t rt = Sim.World.is_alive t.world rt.site
let all_sites t = List.init t.cfg.n_sites (fun i -> i + 1)
let others t rt = List.filter (fun s -> s <> rt.site) (all_sites t)

(* Ballots reuse the election-epoch encoding round * n + (site - 1), so
   the leader of a ballot is recoverable from the ballot alone — ballot
   0 is round 0 at site 1, the TM. *)
let leader_of t ballot = (ballot mod t.cfg.n_sites) + 1

(* Recovery-eligible standbys: the TM and every acceptor (phase 1 needs
   acceptor replies, not acceptor identity, but keeping the candidate
   set small keeps elections deterministic). *)
let candidates t = List.sort_uniq compare (1 :: t.acceptor_set)

let force t rt record =
  Sim.Metrics.incr (metrics t) "wal_appends";
  Wal.force rt.wal record

(* Fire one protocol transition: honor any step crash pinned to this
   site's k-th transition, forcing [log] before the sends — the paper's
   partially completed transition. *)
let fire t ctx rt ?log ~sends () =
  rt.steps <- rt.steps + 1;
  let do_log () = match log with None -> () | Some r -> force t rt r in
  (match Failure_plan.find_step_crash t.cfg.plan ~site:rt.site ~step:rt.steps with
  | Some Failure_plan.Before_transition -> Sim.World.crash_self ctx
  | Some (Failure_plan.After_logging k) ->
      do_log ();
      List.iteri (fun i send -> if i < k then send ()) sends;
      Sim.World.crash_self ctx
  | Some Failure_plan.After_transition ->
      do_log ();
      List.iter (fun send -> send ()) sends;
      Sim.World.crash_self ctx
  | None ->
      do_log ();
      List.iter (fun send -> send ()) sends);
  alive t rt

let note_ballot rt ballot = if ballot > rt.highest_seen then rt.highest_seen <- ballot

(* Acceptor durable state rides [Moved] records with a private encoding;
   [rebuild] below is its inverse. *)
let prom_record ballot = Wal.Moved { to_state = Printf.sprintf "prom:%d" ballot }

let acc_record rm ballot prepared =
  Wal.Moved { to_state = Printf.sprintf "acc:%d:%d:%d" rm ballot (if prepared then 1 else 0) }

(* ------------------------------------------------------------------ *)
(* Learning and announcing outcomes                                    *)
(* ------------------------------------------------------------------ *)

let learn t rt outcome =
  if rt.outcome = None then begin
    (match Wal.decided rt.wal with Some _ -> () | None -> force t rt (Wal.Decided outcome));
    rt.outcome <- Some outcome;
    rt.decided_at <- Some (Sim.World.now t.world);
    rt.leading <- None;
    Sim.Metrics.observe (metrics t) "decision_latency" (Sim.World.now t.world);
    Sim.Metrics.observe (metrics t) "messages_to_decision"
      (float_of_int (Sim.Metrics.counter (metrics t) "messages_sent"))
  end

(* The deciding leader announces to everyone; a decide-crash clause cuts
   the broadcast short after k sends. *)
let announce t ctx rt outcome =
  let k =
    match List.assoc_opt rt.site t.cfg.plan.Failure_plan.decide_crashes with
    | Some k -> k
    | None -> max_int
  in
  let dsts = others t rt in
  List.iteri
    (fun i dst ->
      if i < k then begin
        rt.announced <- Some outcome;
        Sim.World.send ctx ~dst (Outcome outcome)
      end)
    dsts;
  if k < List.length dsts then Sim.World.crash_self ctx

(* ------------------------------------------------------------------ *)
(* Leading: phase drives and re-drives                                 *)
(* ------------------------------------------------------------------ *)

(* Broadcast the leader's pending phase.  Idempotent at every receiver,
   so re-driving after silence (lost messages, a recovering acceptor
   majority) is always safe. *)
let send_phase t ctx rt (ld : lead) =
  if ld.l_ballot = 0 then
    (* ballot 0: re-solicit the vote of every instance not yet chosen —
       an RM that already voted re-sends its phase 2a *)
    List.iter
      (fun s -> if not (List.mem_assoc s ld.l_chosen) then Sim.World.send ctx ~dst:s Prepare)
      (others t rt)
  else if not ld.l_phase2 then
    List.iter (fun a -> Sim.World.send ctx ~dst:a (P1a { ballot = ld.l_ballot })) t.acceptor_set
  else
    List.iter
      (fun (rm, prepared) ->
        if not (List.mem_assoc rm ld.l_chosen) then
          List.iter
            (fun a -> Sim.World.send ctx ~dst:a (P2a { rm; ballot = ld.l_ballot; prepared }))
            t.acceptor_set)
      ld.l_proposals

let rec arm_redrive t ctx rt (ld : lead) =
  let attempt = ld.l_attempt in
  ld.l_attempt <- attempt + 1;
  let delay =
    Sim.Backoff.delay ~rng:t.query_rng ~interval:t.cfg.query_interval
      ~cap:t.cfg.query_backoff_cap ~attempt
  in
  ignore
    (Sim.World.set_timer ctx ~delay (fun () ->
         match rt.leading with
         | Some ld' when ld'.l_ballot = ld.l_ballot && rt.outcome = None ->
             send_phase t ctx rt ld';
             arm_redrive t ctx rt ld'
         | _ -> ()))

let new_lead ballot ~phase2 =
  {
    l_ballot = ballot;
    l_phase2 = phase2;
    l_promised = [];
    l_proposals = [];
    l_accepts = [];
    l_chosen = [];
    l_attempt = 0;
  }

(* Open a recovery round at a ballot strictly above everything this site
   has seen — in particular above every possible round-0 ballot, so
   acceptors must promote and phase 1 cannot be skipped. *)
let start_recovery t ctx rt =
  let already = match rt.leading with Some ld -> ld.l_ballot > 0 | None -> false in
  if rt.outcome = None && not already then begin
    let n = t.cfg.n_sites in
    let rec pick round =
      let b = (round * n) + (rt.site - 1) in
      if b > rt.highest_seen then b else pick (round + 1)
    in
    let ballot = pick 1 in
    rt.highest_seen <- ballot;
    let ld = new_lead ballot ~phase2:false in
    rt.leading <- Some ld;
    t.directive_epochs <- (rt.site, ballot) :: t.directive_epochs;
    Sim.Metrics.incr (metrics t) "paxos_recoveries";
    Sim.Metrics.incr (metrics t) "elections";
    Sim.World.record t.world "site %d leads paxos recovery at ballot %d" rt.site ballot;
    send_phase t ctx rt ld;
    arm_redrive t ctx rt ld
  end

(* ------------------------------------------------------------------ *)
(* Blocked-participant outcome queries (shared backoff discipline)     *)
(* ------------------------------------------------------------------ *)

let rec arm_query t ctx rt =
  if (not rt.querying) && rt.outcome = None then begin
    rt.querying <- true;
    let delay =
      Sim.Backoff.delay ~rng:t.query_rng ~interval:t.cfg.query_interval
        ~cap:t.cfg.query_backoff_cap ~attempt:rt.query_attempt
    in
    rt.query_attempt <- rt.query_attempt + 1;
    ignore
      (Sim.World.set_timer ctx ~delay (fun () ->
           rt.querying <- false;
           if rt.outcome = None then begin
             (* Liveness net: a promise can name a leader that died before
                the promise was even made (its P1a was in flight when it
                crashed), so the peer-down report predates the belief and
                no further failure report will ever fire for it.  Re-check
                at every tick: if the believed leader is dead and this
                site is the lowest live standby, open a recovery round. *)
             (let believed = leader_of t rt.highest_seen in
              let leaderless =
                (not (Sim.World.is_alive t.world believed))
                (* a restarted TM believes itself leader but the crash
                   wiped its lead state: nobody else will act for it *)
                || (believed = rt.site && rt.leading = None)
              in
              if leaderless then
                match
                  List.filter (fun s -> Sim.World.is_alive t.world s) (candidates t)
                with
                | s :: _ when s = rt.site -> start_recovery t ctx rt
                | _ -> ());
             Sim.Metrics.incr (metrics t) "outcome_queries";
             List.iter (fun dst -> Sim.World.send ctx ~dst Query_outcome) (others t rt);
             arm_query t ctx rt
           end))
  end

let decide t ctx rt (ld : lead) =
  let outcome =
    if List.for_all (fun (_, prepared) -> prepared) ld.l_chosen then Core.Types.Committed
    else Core.Types.Aborted
  in
  Sim.Metrics.observe (metrics t) "rounds_to_decision"
    (float_of_int (4 + (4 * (ld.l_ballot / t.cfg.n_sites))));
  learn t rt outcome;
  announce t ctx rt outcome

(* ------------------------------------------------------------------ *)
(* The RM vote                                                         *)
(* ------------------------------------------------------------------ *)

let cast_vote t ctx rt =
  match rt.voted with
  | Some Core.Types.Yes when rt.outcome = None ->
      (* a repeated Prepare means the leader is still waiting: re-send
         the ballot-0 phase 2a (idempotent at the acceptors) *)
      List.iter
        (fun a -> Sim.World.send ctx ~dst:a (P2a { rm = rt.site; ballot = 0; prepared = true }))
        t.acceptor_set
  | Some _ -> ()
  | None ->
      if rt.outcome = None then begin
        let v = try List.assoc rt.site t.cfg.votes with Not_found -> Core.Types.Yes in
        rt.voted <- Some v;
        (match v with
        | Core.Types.Yes ->
            let sends =
              List.map
                (fun a () ->
                  rt.sent_yes <- true;
                  Sim.World.send ctx ~dst:a (P2a { rm = rt.site; ballot = 0; prepared = true }))
                t.acceptor_set
            in
            if
              fire t ctx rt
                ~log:(Wal.Transitioned { to_state = "w"; vote = Some Core.Types.Yes })
                ~sends ()
            then arm_query t ctx rt
        | Core.Types.No ->
            (* unilateral abort: no committed outcome can exist without
               this instance choosing Prepared *)
            let sends =
              List.map
                (fun a () ->
                  Sim.World.send ctx ~dst:a (P2a { rm = rt.site; ballot = 0; prepared = false }))
                t.acceptor_set
            in
            if
              fire t ctx rt
                ~log:(Wal.Transitioned { to_state = "a"; vote = Some Core.Types.No })
                ~sends ()
            then learn t rt Core.Types.Aborted)
      end

(* ------------------------------------------------------------------ *)
(* Message handlers                                                    *)
(* ------------------------------------------------------------------ *)

let on_prepare t ctx rt =
  if rt.site = 1 && not rt.tm_started then begin
    rt.tm_started <- true;
    let ld = new_lead 0 ~phase2:true in
    rt.leading <- Some ld;
    t.directive_epochs <- (1, 0) :: t.directive_epochs;
    let sends = List.map (fun s () -> Sim.World.send ctx ~dst:s Prepare) (others t rt) in
    if fire t ctx rt ~sends () then begin
      cast_vote t ctx rt;
      if alive t rt then arm_redrive t ctx rt ld
    end
  end
  else cast_vote t ctx rt

let on_p2a t ctx rt ~src ~rm ~ballot ~prepared =
  note_ballot rt ballot;
  if ballot >= rt.promised then begin
    if ballot > rt.promised then rt.promised <- ballot;
    (match List.assoc_opt rm rt.accepted with
    | Some (b, v) when b = ballot && v = prepared -> ()  (* re-delivery: already durable *)
    | _ ->
        rt.accepted <- (rm, (ballot, prepared)) :: List.remove_assoc rm rt.accepted;
        force t rt (acc_record rm ballot prepared));
    Sim.World.send ctx ~dst:(leader_of t ballot) (P2b { rm; ballot; prepared })
  end
  else begin
    Sim.Metrics.incr (metrics t) "paxos_rejected";
    Sim.World.send ctx ~dst:src (P_reject { ballot = rt.promised });
    (* a ballot-0 P2a is an RM's own vote, relayed on the TM's behalf:
       the TM itself never hears this reject and would re-drive ballot 0
       forever, deferring standbys that expect the lowest candidate to
       recover.  Tell the outranked ballot's leader directly. *)
    let ld = leader_of t ballot in
    if ld <> src then Sim.World.send ctx ~dst:ld (P_reject { ballot = rt.promised })
  end

let on_p1a t ctx rt ~src ~ballot =
  note_ballot rt ballot;
  if ballot >= rt.promised then begin
    if ballot > rt.promised then begin
      rt.promised <- ballot;
      (* the promise must survive a crash or a later leader could read a
         stale "free" and resurrect an old ballot's proposal *)
      force t rt (prom_record ballot)
    end;
    Sim.World.send ctx ~dst:src (P1b { ballot; accepted = rt.accepted })
  end
  else begin
    Sim.Metrics.incr (metrics t) "paxos_rejected";
    Sim.World.send ctx ~dst:src (P_reject { ballot = rt.promised })
  end

let on_p1b t ctx rt ~src ~ballot ~accepted =
  note_ballot rt ballot;
  match rt.leading with
  | Some ld when ld.l_ballot = ballot && not ld.l_phase2 ->
      if not (List.mem_assoc src ld.l_promised) then
        ld.l_promised <- (src, accepted) :: ld.l_promised;
      if List.length ld.l_promised >= t.cfg.f + 1 then begin
        ld.l_phase2 <- true;
        (* per instance: adopt the highest-ballot accepted value any
           promiser reports; a free instance is proposed Aborted *)
        let value rm =
          List.fold_left
            (fun best (_, acc_map) ->
              match (List.assoc_opt rm acc_map, best) with
              | Some (b, v), Some (b', _) when b > b' -> Some (b, v)
              | Some bv, None -> Some bv
              | _ -> best)
            None ld.l_promised
        in
        ld.l_proposals <-
          List.map
            (fun rm ->
              (rm, match value rm with Some (_, prepared) -> prepared | None -> false))
            (all_sites t);
        send_phase t ctx rt ld
      end
  | _ -> ()

let on_p2b t ctx rt ~src ~rm ~ballot ~prepared =
  note_ballot rt ballot;
  match rt.leading with
  | Some ld when ld.l_ballot = ballot && ld.l_phase2 && not (List.mem_assoc rm ld.l_chosen) ->
      let accs = try List.assoc rm ld.l_accepts with Not_found -> [] in
      if not (List.mem src accs) then begin
        let accs = src :: accs in
        ld.l_accepts <- (rm, accs) :: List.remove_assoc rm ld.l_accepts;
        if List.length accs >= t.cfg.f + 1 then begin
          ld.l_chosen <- (rm, prepared) :: ld.l_chosen;
          if List.length ld.l_chosen = t.cfg.n_sites then decide t ctx rt ld
        end
      end
  | _ -> ()

let on_p_reject t ctx rt ~ballot =
  note_ballot rt ballot;
  match rt.leading with
  | Some ld when ballot > ld.l_ballot ->
      (* deposed: a higher-ballot leader is active; fall back to the
         blocked-participant query loop *)
      Sim.Metrics.incr (metrics t) "paxos_deposed";
      rt.leading <- None;
      arm_query t ctx rt
  | _ -> ()

let on_lease_expire t ctx rt =
  if rt.outcome = None then begin
    let believed = leader_of t rt.highest_seen in
    let standbys =
      List.filter (fun s -> s <> believed && Sim.World.is_alive t.world s) (candidates t)
    in
    match standbys with
    | s :: _ when s = rt.site ->
        Sim.Metrics.incr (metrics t) "lease_takeovers";
        start_recovery t ctx rt
    | _ -> ()
  end

let on_message t ctx ~src msg =
  let rt = rt_of t ctx.Sim.World.self in
  match msg with
  | Prepare -> on_prepare t ctx rt
  | P2a { rm; ballot; prepared } -> on_p2a t ctx rt ~src ~rm ~ballot ~prepared
  | P2b { rm; ballot; prepared } -> on_p2b t ctx rt ~src ~rm ~ballot ~prepared
  | P1a { ballot } -> on_p1a t ctx rt ~src ~ballot
  | P1b { ballot; accepted } -> on_p1b t ctx rt ~src ~ballot ~accepted
  | P_reject { ballot } -> on_p_reject t ctx rt ~ballot
  | Outcome o -> learn t rt o
  | Query_outcome ->
      (match rt.outcome with Some o -> rt.announced <- Some o | None -> ());
      Sim.World.send ctx ~dst:src (Outcome_reply rt.outcome)
  | Outcome_reply (Some o) -> learn t rt o
  | Outcome_reply None -> ()
  | Lease_expire -> on_lease_expire t ctx rt

(* ------------------------------------------------------------------ *)
(* Failure and recovery reports                                        *)
(* ------------------------------------------------------------------ *)

let on_peer_down t ctx failed =
  let rt = rt_of t ctx.Sim.World.self in
  if rt.outcome = None then begin
    (* the TM escalates when a participant whose instance is still open
       dies: only a higher ballot may propose (Aborted) on its behalf *)
    let tm_escalates =
      match rt.leading with
      | Some ld -> ld.l_ballot = 0 && not (List.mem_assoc failed ld.l_chosen)
      | None -> false
    in
    if tm_escalates then start_recovery t ctx rt
    else if not (Sim.World.is_alive t.world (leader_of t rt.highest_seen)) then begin
      match List.filter (fun s -> Sim.World.is_alive t.world s) (candidates t) with
      | s :: _ when s = rt.site -> start_recovery t ctx rt
      | _ -> ()
    end
  end

let on_peer_up t ctx _recovered =
  let rt = rt_of t ctx.Sim.World.self in
  (* a recovered acceptor may have restored the majority: the leader
     re-drives its pending phase immediately rather than waiting out the
     backoff *)
  match rt.leading with
  | Some ld when rt.outcome = None -> send_phase t ctx rt ld
  | _ -> ()

let rebuild rt =
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Wal.Began _ -> ()
      | Wal.Transitioned { vote = Some v; _ } -> rt.voted <- Some v
      | Wal.Transitioned { vote = None; _ } -> ()
      | Wal.Moved { to_state } -> (
          match String.split_on_char ':' to_state with
          | [ "prom"; b ] -> rt.promised <- max rt.promised (int_of_string b)
          | [ "acc"; rm; b; p ] ->
              let rm = int_of_string rm and b = int_of_string b in
              let prepared = p = "1" in
              rt.promised <- max rt.promised b;
              (match List.assoc_opt rm rt.accepted with
              | Some (b', _) when b' >= b -> ()
              | _ -> rt.accepted <- (rm, (b, prepared)) :: List.remove_assoc rm rt.accepted)
          | _ -> ())
      | Wal.Decided o -> rt.outcome <- Some o)
    (Wal.records rt.wal)

let on_restart t ctx =
  let rt = rt_of t ctx.Sim.World.self in
  rt.ever_crashed <- true;
  rebuild rt;
  Sim.Metrics.incr (metrics t) "recoveries_processed";
  if rt.outcome = None then begin
    rt.query_attempt <- 0;
    arm_query t ctx rt
  end

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let attach_wal t ctx =
  Wal.attach
    (Wal.Store.log t.store ~site:ctx.Sim.World.self)
    ~metrics:(metrics t)
    ~schedule:(fun delay k -> ignore (Sim.World.set_timer ctx ~delay k))

let handlers t _site : msg Sim.World.handlers =
  {
    Sim.World.on_start = (fun ctx -> attach_wal t ctx);
    on_message = (fun ctx ~src msg -> on_message t ctx ~src msg);
    on_peer_down = (fun ctx failed -> on_peer_down t ctx failed);
    on_peer_up = (fun ctx recovered -> on_peer_up t ctx recovered);
    on_restart =
      (fun ctx ->
        attach_wal t ctx;
        on_restart t ctx);
  }

let run (cfg : config) : Runtime.result =
  let n = cfg.n_sites in
  let world = Sim.World.create ~n_sites:n ~seed:cfg.seed ~msg_to_string () in
  Sim.World.set_tracing world cfg.tracing;
  let store = Wal.Store.create ~n_sites:n () in
  List.iter
    (fun site ->
      match
        List.filter_map
          (fun (s, inj) -> if s = site then Some inj else None)
          cfg.plan.Failure_plan.disk_faults
      with
      | [] -> ()
      | injs -> Wal.set_faults (Wal.Store.log store ~site) injs)
    (Wal.Store.sites store);
  let protocol_name = Printf.sprintf "paxos-commit-%d-f%d" n cfg.f in
  let rts =
    Array.init n (fun i ->
        let site = i + 1 in
        let wal = Wal.Store.log store ~site in
        Sim.Metrics.incr (Sim.World.metrics world) "wal_appends";
        Wal.force wal (Wal.Began { protocol = protocol_name; initial = "q" });
        {
          site;
          wal;
          steps = 0;
          tm_started = false;
          voted = None;
          outcome = None;
          decided_at = None;
          ever_crashed = false;
          sent_yes = false;
          announced = None;
          highest_seen = 0;
          promised = -1;
          accepted = [];
          leading = None;
          querying = false;
          query_attempt = 0;
        })
  in
  let t =
    {
      cfg;
      world;
      store;
      rts;
      acceptor_set = acceptors ~n_sites:n ~f:cfg.f;
      query_rng = Sim.Rng.split (Sim.Rng.create ~seed:cfg.seed);
      directive_epochs = [];
    }
  in
  (* a crash takes the log down with the site and wipes its volatile
     protocol memory — only the durable image survives into on_restart *)
  Sim.World.add_crash_hook world (fun site ->
      (match Wal.crash (Wal.Store.log store ~site) with
      | None -> ()
      | Some rep ->
          Sim.Metrics.incr (Sim.World.metrics world) "wal_repairs";
          Sim.World.record world "site %d wal repair: %d survived, %d lost" site rep.Wal.survived
            rep.Wal.lost_records);
      let rt = rts.(site - 1) in
      rt.ever_crashed <- true;
      rt.voted <- None;
      rt.outcome <- None;
      rt.leading <- None;
      rt.promised <- -1;
      rt.accepted <- [];
      rt.highest_seen <- 0;
      rt.querying <- false;
      rt.query_attempt <- 0);
  (* the environment request: Prepare injected at the TM starts ballot 0 *)
  Sim.World.inject world ~dst:1 ~at:0.01 Prepare;
  List.iter (fun (s, at) -> Sim.World.schedule_crash world ~at s) cfg.plan.Failure_plan.timed_crashes;
  List.iter
    (fun (s, at) -> Sim.World.schedule_crash world ~at s)
    cfg.plan.Failure_plan.acceptor_crashes;
  List.iter
    (fun (s, at) -> Sim.World.schedule_recovery world ~at s)
    cfg.plan.Failure_plan.recoveries;
  List.iter
    (fun (st : Failure_plan.storm_spec) ->
      List.iter
        (fun (site, crash_at, recover_at) ->
          Sim.World.schedule_crash world ~at:crash_at site;
          Sim.World.schedule_recovery world ~at:recover_at site)
        (Failure_plan.storm_events st))
    cfg.plan.Failure_plan.storms;
  List.iter
    (fun at ->
      List.iter (fun site -> Sim.World.inject world ~dst:site ~at Lease_expire) (all_sites t))
    cfg.plan.Failure_plan.lease_faults;
  List.iter
    (fun (p : Failure_plan.partition_spec) ->
      if p.groups <> [] then
        Sim.World.schedule_partition world ~from_t:p.from_t ~until_t:p.until_t p.groups)
    cfg.plan.Failure_plan.partitions;
  Sim.World.set_msg_faults world cfg.plan.Failure_plan.msg_faults;
  List.iter
    (fun (d : Failure_plan.delay_spec) ->
      Sim.World.schedule_latency_spike world ~site:d.Failure_plan.d_site
        ~from_t:d.Failure_plan.d_from ~until_t:d.Failure_plan.d_until ~extra:d.Failure_plan.d_extra)
    cfg.plan.Failure_plan.delay_spikes;
  List.iter
    (fun (w : Failure_plan.window_spec) ->
      Sim.World.schedule_stall world ~site:w.Failure_plan.w_site ~from_t:w.Failure_plan.w_from
        ~until_t:w.Failure_plan.w_until)
    cfg.plan.Failure_plan.stalls;
  List.iter
    (fun (w : Failure_plan.window_spec) ->
      Sim.World.schedule_hb_loss world ~site:w.Failure_plan.w_site ~from_t:w.Failure_plan.w_from
        ~until_t:w.Failure_plan.w_until)
    cfg.plan.Failure_plan.hb_losses;
  ignore (Sim.World.run world ~handlers:(handlers t) ~until:cfg.until ());
  (* ---- reporting (shape-compatible with Runtime.run) ---- *)
  let wal_outcome (rt : site_rt) =
    match Wal.decided rt.wal with
    | Some o -> Some o
    | None ->
        if
          List.exists
            (function Wal.Transitioned { vote = Some Core.Types.No; _ } -> true | _ -> false)
            (Wal.records rt.wal)
        then Some Core.Types.Aborted
        else None
  in
  let reports =
    Array.to_list rts
    |> List.map (fun (rt : site_rt) ->
           {
             Runtime.site = rt.site;
             outcome = rt.outcome;
             wal_outcome = wal_outcome rt;
             final_state =
               (match rt.outcome with
               | Some Core.Types.Committed -> "c"
               | Some Core.Types.Aborted -> "a"
               | None -> if rt.voted = Some Core.Types.Yes then "w" else "q");
             operational = Sim.World.is_alive world rt.site;
             ever_crashed = rt.ever_crashed || not (Sim.World.is_alive world rt.site);
             decided_at = rt.decided_at;
             sent_yes = rt.sent_yes;
             announced = rt.announced;
           })
  in
  let outcomes = List.filter_map (fun (r : Runtime.site_report) -> r.Runtime.outcome) reports in
  let has_commit = List.mem Core.Types.Committed outcomes
  and has_abort = List.mem Core.Types.Aborted outcomes in
  let operational_undecided =
    List.filter
      (fun (r : Runtime.site_report) ->
        r.Runtime.operational && (not r.Runtime.ever_crashed) && r.Runtime.outcome = None)
      reports
  in
  let metrics = Sim.World.metrics world in
  Sim.Metrics.drain_timers metrics;
  {
    Runtime.reports;
    messages_sent = Sim.Metrics.counter metrics "messages_sent";
    messages_delivered = Sim.Metrics.counter metrics "messages_delivered";
    duration =
      List.fold_left
        (fun acc (r : Runtime.site_report) ->
          match r.Runtime.decided_at with Some x -> max acc x | None -> acc)
        0.0 reports;
    global_outcome =
      (if has_commit then Some Core.Types.Committed
       else if has_abort then Some Core.Types.Aborted
       else None);
    consistent = not (has_commit && has_abort);
    blocked_operational = List.length operational_undecided;
    all_operational_decided = operational_undecided = [];
    store;
    directive_epochs = List.rev t.directive_epochs;
    trace = Sim.World.trace_entries world;
    metrics_json = Sim.Metrics.to_json metrics;
    run_metrics = metrics;
  }

(* ------------------------------------------------------------------ *)
(* Chaos integration                                                   *)
(* ------------------------------------------------------------------ *)

let violations ?metrics ~(cfg : config) (result : Runtime.result) =
  let vs = Chaos.violations_of ?metrics result in
  (* Paxos promises liveness only up to f acceptor failures: progress
     violations beyond the fault model are waived; safety still binds *)
  let accs = acceptors ~n_sites:cfg.n_sites ~f:cfg.f in
  let down_acceptors =
    List.length
      (List.filter
         (fun (r : Runtime.site_report) ->
           List.mem r.Runtime.site accs && not r.Runtime.operational)
         result.Runtime.reports)
  in
  if down_acceptors > cfg.f then
    List.filter (fun (v : Chaos.violation) -> v.Chaos.oracle <> Chaos.Progress) vs
  else vs

let sweep_profile ~n_sites ~f =
  {
    Sim.Nemesis.default_profile with
    Sim.Nemesis.p_backup_crash = 0.0;
    (* backup Move/Decide phases are termination-protocol notions *)
    p_acceptor_crash = 0.5;
    acceptor_sites = acceptors ~n_sites ~f;
    max_acceptor_crashes = f;
    p_lease_fault = 0.3;
  }

type run_outcome = {
  ro_seed : int;
  ro_plan : Failure_plan.t;
  ro_result : Runtime.result;
  ro_violations : Chaos.violation list;
}

let run_one ?metrics:m ?profile ?(until = 1500.0) ~n_sites ~f ~k ~seed () =
  let profile = match profile with Some p -> p | None -> sweep_profile ~n_sites ~f in
  let sched_rng = Sim.Rng.split (Sim.Rng.create ~seed) in
  let schedule = Sim.Nemesis.generate sched_rng ~n_sites ~k profile in
  let plan = Failure_plan.of_schedule schedule in
  let cfg = config ~plan ~seed ~until ~n_sites ~f () in
  let result = run cfg in
  (match m with Some m -> Sim.Metrics.incr m "chaos_runs" | None -> ());
  { ro_seed = seed; ro_plan = plan; ro_result = result; ro_violations = violations ?metrics:m ~cfg result }

type sweep_summary = {
  ps_seeds_run : int;
  ps_failing : (int * Chaos.violation list * Failure_plan.t) list;
  ps_metrics : Sim.Metrics.t;
}

let sweep ?metrics:m ?profile ?until ?(seed_base = 0) ~n_sites ~f ~k ~seeds () =
  let m = match m with Some m -> m | None -> Sim.Metrics.create () in
  let failing = ref [] in
  for i = 0 to seeds - 1 do
    let seed = seed_base + i in
    let ro = run_one ~metrics:m ?profile ?until ~n_sites ~f ~k ~seed () in
    if ro.ro_violations <> [] then failing := (seed, ro.ro_violations, ro.ro_plan) :: !failing
  done;
  { ps_seeds_run = seeds; ps_failing = List.rev !failing; ps_metrics = m }
