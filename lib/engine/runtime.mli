(** The protocol runtime: executes any catalog {!Core.Protocol.t} on the
    simulator — one FSA interpreter per site — together with the paper's
    termination protocol (election + two-phase backup protocol) and
    recovery protocol.  Every failure-time decision comes from the
    compiled {!Rulebook}.

    Election: the backup coordinator is the operational site with the
    smallest id that has not previously crashed during this transaction
    (deterministic under the paper's reliable failure detector);
    recovered sites run the recovery protocol instead of competing.
    Cascading failures re-run the election automatically. *)

(** How a backup coordinator decides.

    [Skeen] is the paper's rule: decide from the backup's own local state
    via the compiled {!Rulebook} — maximally live under fail-stop crashes
    (any single survivor terminates) but unsafe if the failure detector
    can lie (network partitions).

    [Quorum q] is quorum-based termination (the direction of Skeen's
    companion quorum-commit work): the backup polls reachable
    participants and commits only if at least [q] are prepared-to-commit,
    aborts only if at least [q] are not, and otherwise waits.  With
    [q > n/2] two partition sides can never decide differently, at the
    price of blocking minorities.  Moves are monotone (no demotions), so
    the rule is cascade-safe without ballots. *)
type termination_rule = Skeen | Quorum of int

(** The classic commit-protocol presumptions, promoted from the database
    layer: the covered outcome's [Decided] record is appended but not
    forced.  Scoped to force-vs-append only — answering inquiries by
    presumption is unsound in this single-transaction model (a site that
    has not yet voted is indistinguishable from one that forgot a
    covered outcome, and the cohort may still commit). *)
type presumption = No_presumption | Presume_abort | Presume_commit

val majority : int -> int
(** [majority n = n/2 + 1]. *)

type config = {
  rulebook : Rulebook.t;
  votes : (Core.Types.site * Core.Types.vote) list;  (** default: everyone votes yes *)
  plan : Failure_plan.t;
  seed : int;
  tracing : bool;
  until : float;
  query_interval : float;  (** base delay of the query backoff *)
  query_backoff_cap : float;
      (** ceiling on the exponential backoff between outcome queries;
          undecided sites retry (with jitter) until the run's [until]
          horizon, not until a counter runs out *)
  partition : (float * float * Core.Types.site list list) option;
      (** (from, until, groups): run under a network partition, violating
          the paper's reliable-detector assumption *)
  termination : termination_rule;
  presumption : presumption;
      (** append rather than force the covered outcome's [Decided] record *)
  read_only : Core.Types.site list;
      (** read-only participants: run the FSA normally (votes and acks
          still flow) but never sync, and are excluded from backup
          leadership, termination moves and quorum counts (a volatile
          prepared state must not widen a commit quorum).  They still
          learn outcomes from phase 2 broadcasts. *)
  group_commit : Wal.group_commit option;
      (** coalesce concurrent WAL forces into shared syncs — API parity
          with the database layer; with one transaction a site has at
          most one force in flight, so this is a correctness lever here,
          not a throughput one *)
  sync_latency : float;
      (** simulated seconds per WAL sync (0.0: synchronous forces,
          byte-identical replay of every prior run) *)
  durable_wal : bool;
      (** [false]: the PR 3 in-memory log (sync free, crash lossless) —
          kept as the benchmark baseline *)
  late_force : bool;
      (** deliberately mis-place the transition force point (append, send,
          then sync) — a test-only ablation the durability oracle must
          catch *)
  detector : bool;
      (** [true]: replace the oracle failure reports with the
          timeout-based {!Sim.Detector} (heartbeats over real sends,
          revocable suspicion, bully election with epochs).  [false] (the
          default) keeps the paper's reliable-detector oracle; every
          pre-detector run replays unchanged. *)
  heartbeat_period : float;  (** detector mode: heartbeat broadcast period *)
  suspicion_timeout : float;  (** detector mode: silence before suspicion *)
  election_timeout : float;
      (** detector mode: how long a candidate waits for a better-ranked
          site to object to its [Elect] before leading *)
  fencing : bool;
      (** [false]: accept every termination directive regardless of epoch —
          the ablation that must reproduce a split-brain, mirroring
          [late_force].  Default [true]. *)
}

val config :
  ?votes:(Core.Types.site * Core.Types.vote) list ->
  ?plan:Failure_plan.t ->
  ?seed:int ->
  ?tracing:bool ->
  ?until:float ->
  ?query_interval:float ->
  ?query_backoff_cap:float ->
  ?partition:float * float * Core.Types.site list list ->
  ?termination:termination_rule ->
  ?presumption:presumption ->
  ?read_only:Core.Types.site list ->
  ?group_commit:Wal.group_commit ->
  ?sync_latency:float ->
  ?durable_wal:bool ->
  ?late_force:bool ->
  ?detector:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?election_timeout:float ->
  ?fencing:bool ->
  Rulebook.t ->
  config

type site_report = {
  site : Core.Types.site;
  outcome : Core.Types.outcome option;
  wal_outcome : Core.Types.outcome option;
      (** the decision forced to this site's stable log — a [Decided]
          record, or a final state the log reached before a crash cut the
          announcements short.  Crashed sites are judged by this. *)
  final_state : string;
  operational : bool;  (** alive when the run ended *)
  ever_crashed : bool;
  decided_at : float option;
  sent_yes : bool;
      (** a yes-vote transition's message reached the wire — sticky across
          crashes, unlike the log: the durability oracle compares what the
          world observed against what the durable log can justify *)
  announced : Core.Types.outcome option;
      (** an outcome this site actually announced to a peer — sticky for
          the same reason *)
}

type result = {
  reports : site_report list;
  messages_sent : int;
  messages_delivered : int;
  duration : float;  (** latest decision time among deciding sites *)
  global_outcome : Core.Types.outcome option;
  consistent : bool;  (** no mix of commit and abort across all logs *)
  blocked_operational : int;
      (** operational never-crashed sites left undecided — nonzero only
          for blocking protocols or total-failure scenarios *)
  all_operational_decided : bool;
  store : Wal.Store.t;  (** every site's stable log, for post-hoc oracles *)
  directive_epochs : (Core.Types.site * int) list;
      (** every leadership assumption of the run, in order: (site, epoch)
          when the site began issuing directives.  The split-brain oracle
          checks no epoch is shared by two distinct sites. *)
  trace : Sim.World.trace_entry list;
  metrics_json : Sim.Json.t;
      (** full metrics snapshot of the run ({!Sim.Metrics.to_json}):
          counters, gauges and latency histograms — decision latency,
          messages-to-decision, WAL appends, termination rounds, event
          counts and queue-depth high-water mark *)
  run_metrics : Sim.Metrics.t;
      (** the run's live metrics registry (the source of [metrics_json]),
          so sweeps can aggregate detector counters across runs *)
}

val run : config -> result
(** Executes one distributed transaction under the configured protocol,
    votes and failure plan.  Deterministic in the seed. *)

val pp_result : Format.formatter -> result -> unit
