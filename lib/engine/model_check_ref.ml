(** Reference implementation of {!Model_check}: the original
    string-keyed exhaustive checker, kept verbatim as the differential
    baseline for the interned engine.

    It hashes every state by formatting every network message to a string
    ([Core.Message.show]) and parses termination messages out of prefixed
    names ("!move:…") — exactly the costs the interned engine removes.
    The differential tests (and the [@bench-smoke] alias) assert both
    engines produce identical [explored] counts and verdicts over the
    catalog; the state-space bench reports the speedup against this
    module.  Not for production use: orders of magnitude slower on large
    state spaces. *)

module MS = Core.Message.Multiset

type st = Model_check.st = {
  locals : string array;
  voted : bool array;
  alive : bool array;
  aware : bool array;
  crashes_left : int;
  network : MS.t;
  moving : (string * int list) option array;
  polling : (int list * (int * string) list) option array;
  polled : bool array;
  epoch : int array;
}

let equal_st a b =
  a.locals = b.locals && a.voted = b.voted && a.alive = b.alive && a.aware = b.aware
  && a.crashes_left = b.crashes_left
  && MS.equal a.network b.network
  && a.moving = b.moving && a.polling = b.polling && a.polled = b.polled && a.epoch = b.epoch

let hash_st s =
  Hashtbl.hash
    ( s.locals,
      s.voted,
      s.alive,
      s.aware,
      s.crashes_left,
      List.map Core.Message.show (MS.to_list s.network),
      s.moving,
      s.polling,
      s.polled,
      s.epoch )

module Tbl = Hashtbl.Make (struct
  type t = st

  let equal = equal_st
  let hash = hash_st
end)

(* reserved termination-message names *)
let move_name target = "!move:" ^ target
let mack_name = "!mack"
let streq_name = "!streq"
let strep_name state = "!strep:" ^ state

let is_strep m =
  String.length m.Core.Message.name > 7 && String.sub m.Core.Message.name 0 7 = "!strep:"

let strep_state m = String.sub m.Core.Message.name 7 (String.length m.Core.Message.name - 7)
let decide_name (o : Core.Types.outcome) =
  match o with Core.Types.Committed -> "!decide:c" | Aborted -> "!decide:a"

let is_move m = String.length m.Core.Message.name > 6 && String.sub m.Core.Message.name 0 6 = "!move:"
let move_target m = String.sub m.Core.Message.name 6 (String.length m.Core.Message.name - 6)

let outcome_of_decide m =
  if m.Core.Message.name = "!decide:c" then Core.Types.Committed else Core.Types.Aborted

type config = Model_check.config = {
  rulebook : Rulebook.t;
  max_crashes : int;
  limit : int;
  rule : [ `Skeen | `Quorum of int ];
}

type report = Model_check.report = {
  explored : int;
  inconsistent : st list;
  blocked_terminals : st list;
  safe : bool;
  nonblocking : bool;
  counterexample : st list option;
}

let run (cfg : config) : report =
  let protocol = cfg.rulebook.Rulebook.protocol in
  let n = Core.Protocol.n_sites protocol in
  let automaton i = Core.Protocol.automaton protocol (i + 1) in
  let kind_of i id = Core.Automaton.kind_of (automaton i) id in
  let final_state_for i (o : Core.Types.outcome) =
    let want = match o with Core.Types.Committed -> Core.Types.Commit | Aborted -> Core.Types.Abort in
    match
      List.find_opt (fun s -> s.Core.Automaton.kind = want) (automaton i).Core.Automaton.states
    with
    | Some s -> s.Core.Automaton.id
    | None -> assert false
  in
  let decided st i = Core.Types.is_final (kind_of i st.locals.(i)) in
  let site_outcome st i = Core.Types.outcome_of_kind (kind_of i st.locals.(i)) in
  (* the elected backup: lowest operational site (no recoveries, so
     operational = never crashed) *)
  let leader st =
    let rec go i = if i >= n then None else if st.alive.(i) then Some i else go (i + 1) in
    go 0
  in
  let some_crash st = Array.exists not st.alive in
  (* add a message unless its target is dead (reliable network: undeliverable) *)
  let deliverable st msgs = List.filter (fun m -> st.alive.(m.Core.Message.dst - 1)) msgs in

  (* ---- successor enumeration ---- *)
  let successors st : st list =
    let succs = ref [] in
    let push s = succs := s :: !succs in
    for i = 0 to n - 1 do
      if st.alive.(i) then begin
        (* 1. protocol FSA steps, complete and (if crash budget remains)
           partially completed.  A backup coordinator with phase 1 in
           flight is frozen: its decision must come from the state it
           moved everyone to, not from wherever a stale protocol message
           would drift it (the runtime enforces the same freeze by not
           firing the FSA outside Normal mode — an earlier version of
           this model omitted it and the checker produced a genuine
           split-brain counterexample through exactly that hole) *)
        if (not (decided st i)) && st.moving.(i) = None && not st.aware.(i) then
          List.iter
            (fun (tr : Core.Automaton.transition) ->
              let base_net =
                match MS.remove_all tr.Core.Automaton.consumes st.network with
                | Some net -> net
                | None -> assert false
              in
              let locals = Array.copy st.locals in
              locals.(i) <- tr.Core.Automaton.to_state;
              let voted = Array.copy st.voted in
              (match tr.Core.Automaton.vote with
              | Some Core.Types.Yes -> voted.(i) <- true
              | Some Core.Types.No | None -> ());
              (* complete transition *)
              push
                {
                  st with
                  locals;
                  voted;
                  network = MS.add_all (deliverable st tr.Core.Automaton.emits) base_net;
                };
              (* crash after forcing the log, having sent only the first
                 k messages, for every k *)
              if st.crashes_left > 0 then
                for k = 0 to List.length tr.Core.Automaton.emits do
                  let sent = List.filteri (fun j _ -> j < k) tr.Core.Automaton.emits in
                  let alive = Array.copy st.alive in
                  alive.(i) <- false;
                  let moving = Array.copy st.moving in
                  moving.(i) <- None;
                  let polling = Array.copy st.polling in
                  polling.(i) <- None;
                  push
                    {
                      st with
                      locals;
                      voted;
                      alive;
                      crashes_left = st.crashes_left - 1;
                      network = MS.add_all (deliverable st sent) base_net;
                      moving;
                      polling;
                    }
                done)
            (Core.Automaton.enabled (automaton i) st.locals.(i) st.network);
        (* 2. spontaneous crash (before any transition) *)
        if st.crashes_left > 0 then begin
          let alive = Array.copy st.alive in
          alive.(i) <- false;
          let moving = Array.copy st.moving in
          moving.(i) <- None;
          let polling = Array.copy st.polling in
          polling.(i) <- None;
          push { st with alive; crashes_left = st.crashes_left - 1; moving; polling }
        end;
        (* 2b. failure detection: after any crash, each site becomes aware
           at a nondeterministic moment; from then on its commit-protocol
           FSA is frozen and it may serve as backup coordinator *)
        if some_crash st && not st.aware.(i) then begin
          let aware = Array.copy st.aware in
          aware.(i) <- true;
          push { st with aware }
        end;
        (* 3. termination-message deliveries addressed to site i+1 *)
        List.iter
          (fun m ->
            if m.Core.Message.dst = i + 1 && String.length m.Core.Message.name > 0
               && m.Core.Message.name.[0] = '!' then begin
              let net = MS.remove m st.network in
              (* receiving a termination message is itself awareness *)
              let st =
                if st.aware.(i) then st
                else begin
                  let aware = Array.copy st.aware in
                  aware.(i) <- true;
                  { st with aware }
                end
              in
              if is_move m then
                if m.Core.Message.src < st.epoch.(i) then
                  (* stale directive from a deposed backup: discard *)
                  push { st with network = net }
                else if decided st i then
                  (* answer with the outcome instead of an ack *)
                  (match site_outcome st i with
                  | Some o ->
                      push
                        {
                          st with
                          network =
                            MS.add_all
                              (deliverable st
                                 [ Core.Message.make ~name:(decide_name o) ~src:(i + 1) ~dst:m.Core.Message.src ])
                              net;
                        }
                  | None -> assert false)
                else begin
                  let locals = Array.copy st.locals in
                  locals.(i) <- move_target m;
                  let epoch = Array.copy st.epoch in
                  epoch.(i) <- m.Core.Message.src;
                  push
                    {
                      st with
                      locals;
                      epoch;
                      network =
                        MS.add_all
                          (deliverable st
                             [ Core.Message.make ~name:mack_name ~src:(i + 1) ~dst:m.Core.Message.src ])
                          net;
                    }
                end
              else if m.Core.Message.name = mack_name then (
                match st.moving.(i) with
                | Some (target, awaiting) when List.mem m.Core.Message.src awaiting ->
                    let awaiting = List.filter (fun s -> s <> m.Core.Message.src) awaiting in
                    let moving = Array.copy st.moving in
                    moving.(i) <- Some (target, awaiting);
                    push { st with network = net; moving }
                | _ -> push { st with network = net })
              else if m.Core.Message.name = streq_name then
                (* quorum poll: report the current local state *)
                push
                  {
                    st with
                    network =
                      MS.add_all
                        (deliverable st
                           [
                             Core.Message.make
                               ~name:(strep_name st.locals.(i))
                               ~src:(i + 1) ~dst:m.Core.Message.src;
                           ])
                        net;
                  }
              else if is_strep m then (
                match st.polling.(i) with
                | Some (awaiting, reps) when List.mem m.Core.Message.src awaiting ->
                    let awaiting = List.filter (fun s -> s <> m.Core.Message.src) awaiting in
                    let polling = Array.copy st.polling in
                    polling.(i) <- Some (awaiting, (m.Core.Message.src, strep_state m) :: reps);
                    push { st with network = net; polling }
                | _ -> push { st with network = net })
              else begin
                (* a decide *)
                let o = outcome_of_decide m in
                if decided st i then push { st with network = net }
                else begin
                  let locals = Array.copy st.locals in
                  locals.(i) <- final_state_for i o;
                  let moving = Array.copy st.moving in
                  moving.(i) <- None;
                  push { st with locals; network = net; moving }
                end
              end
            end)
          (MS.to_list st.network);
        (* 4. backup coordinator actions at the elected leader, once it is
           aware of a failure *)
        if leader st = Some i && some_crash st && st.aware.(i) then begin
          let others = List.init n (fun j -> j) |> List.filter (fun j -> j <> i && st.alive.(j)) in
          (* broadcast helper with partial-crash variants *)
          let broadcast make_msg after =
            let msgs = List.map make_msg others in
            (* complete broadcast *)
            push (after { st with network = MS.add_all (deliverable st msgs) st.network });
            if st.crashes_left > 0 then
              for k = 0 to List.length msgs do
                let sent = List.filteri (fun j _ -> j < k) msgs in
                let s' = after { st with network = MS.add_all (deliverable st sent) st.network } in
                let alive = Array.copy s'.alive in
                alive.(i) <- false;
                let moving = Array.copy s'.moving in
                moving.(i) <- None;
                let polling = Array.copy s'.polling in
                polling.(i) <- None;
                push { s' with alive; crashes_left = st.crashes_left - 1; moving; polling }
              done
          in
          match st.moving.(i) with
          | Some (_, awaiting) ->
              (* phase 1 in flight: complete it when every awaited site is
                 acked or dead *)
              if List.for_all (fun j -> not st.alive.(j - 1)) awaiting || awaiting = [] then begin
                match
                  Rulebook.verdict cfg.rulebook ~site:(i + 1) ~state:st.locals.(i)
                with
                | Rulebook.Decide o ->
                    let locals = Array.copy st.locals in
                    locals.(i) <- final_state_for i o;
                    let moving = Array.copy st.moving in
                    moving.(i) <- None;
                    broadcast
                      (fun j -> Core.Message.make ~name:(decide_name o) ~src:(i + 1) ~dst:(j + 1))
                      (fun s -> { s with locals; moving })
                | Rulebook.Blocked -> ()
              end
          | None ->
              if decided st i then begin
                (* already final: phase 1 omitted; announce, but only if
                   someone still needs it and no announcement is already
                   in flight (keeps the graph finite) *)
                match site_outcome st i with
                | Some o ->
                    let needed =
                      List.exists
                        (fun j ->
                          (not (decided st j))
                          && not
                               (MS.to_list st.network
                               |> List.exists (fun m ->
                                      m.Core.Message.dst = j + 1
                                      && m.Core.Message.name = decide_name o)))
                        others
                    in
                    if needed then
                      broadcast
                        (fun j -> Core.Message.make ~name:(decide_name o) ~src:(i + 1) ~dst:(j + 1))
                        (fun s -> s)
                | None -> assert false
              end
              else begin
                match cfg.rule with
                | `Skeen -> (
                    match Rulebook.verdict cfg.rulebook ~site:(i + 1) ~state:st.locals.(i) with
                    | Rulebook.Decide _ ->
                        (* phase 1: move everyone to our state — only once
                           per configuration (no move already in flight
                           from us) *)
                        let already =
                          MS.to_list st.network
                          |> List.exists (fun m -> m.Core.Message.src = i + 1 && is_move m)
                        in
                        if not already then begin
                          let target = st.locals.(i) in
                          let moving = Array.copy st.moving in
                          moving.(i) <- Some (target, List.map (fun j -> j + 1) others);
                          let epoch = Array.copy st.epoch in
                          epoch.(i) <- max epoch.(i) (i + 1);
                          broadcast
                            (fun j ->
                              Core.Message.make ~name:(move_name target) ~src:(i + 1) ~dst:(j + 1))
                            (fun s -> { s with moving; epoch })
                        end
                    | Rulebook.Blocked -> ())
                | `Quorum q -> (
                    match st.polling.(i) with
                    | None ->
                        if not st.polled.(i) then begin
                          (* start the (single) state poll *)
                          let polled = Array.copy st.polled in
                          polled.(i) <- true;
                          let polling = Array.copy st.polling in
                          polling.(i) <- Some (List.map (fun j -> j + 1) others, []);
                          let epoch = Array.copy st.epoch in
                          epoch.(i) <- max epoch.(i) (i + 1);
                          broadcast
                            (fun j -> Core.Message.make ~name:streq_name ~src:(i + 1) ~dst:(j + 1))
                            (fun s -> { s with polled; polling; epoch })
                        end
                    | Some (awaiting, reps)
                      when awaiting = [] || List.for_all (fun j -> not st.alive.(j - 1)) awaiting
                      -> (
                        (* the view is complete: decide by counts, moves
                           monotone (never demoting a precommit) *)
                        let view = ((i + 1), st.locals.(i)) :: reps in
                        let kinds = List.map (fun (s, id) -> kind_of (s - 1) id) view in
                        let commit_decide o =
                          let locals = Array.copy st.locals in
                          locals.(i) <- final_state_for i o;
                          let polling = Array.copy st.polling in
                          polling.(i) <- None;
                          broadcast
                            (fun j -> Core.Message.make ~name:(decide_name o) ~src:(i + 1) ~dst:(j + 1))
                            (fun s -> { s with locals; polling })
                        in
                        let prepared_up =
                          List.length
                            (List.filter
                               (fun k -> k = Core.Types.Buffer || Core.Types.is_commit k)
                               kinds)
                        in
                        if List.exists Core.Types.is_commit kinds then
                          commit_decide Core.Types.Committed
                        else if List.exists Core.Types.is_abort kinds then
                          commit_decide Core.Types.Aborted
                        else if prepared_up >= q then begin
                          (* move the view up to the buffer state, then the
                             shared phase-1 completion commits *)
                          match
                            List.find_opt
                              (fun s -> s.Core.Automaton.kind = Core.Types.Buffer)
                              (automaton i).Core.Automaton.states
                          with
                          | Some b ->
                              let target = b.Core.Automaton.id in
                              let locals = Array.copy st.locals in
                              locals.(i) <- target;
                              let polling = Array.copy st.polling in
                              polling.(i) <- None;
                              let to_move =
                                List.filter_map
                                  (fun (s, id) ->
                                    if s <> i + 1 && st.alive.(s - 1) && id <> target then Some s
                                    else None)
                                  reps
                              in
                              let moving = Array.copy st.moving in
                              moving.(i) <- Some (target, to_move);
                              let epoch = Array.copy st.epoch in
                              epoch.(i) <- max epoch.(i) (i + 1);
                              broadcast
                                (fun j ->
                                  if List.mem (j + 1) to_move then
                                    Core.Message.make ~name:(move_name target) ~src:(i + 1)
                                      ~dst:(j + 1)
                                  else
                                    (* harmless re-move for already-buffered
                                       sites keeps the broadcast uniform *)
                                    Core.Message.make ~name:(move_name target) ~src:(i + 1)
                                      ~dst:(j + 1))
                                (fun s -> { s with locals; polling; moving; epoch })
                          | None -> ()
                        end
                        else if
                          List.length kinds - prepared_up >= q
                          && List.exists
                               (fun s -> s.Core.Automaton.kind = Core.Types.Buffer)
                               (automaton i).Core.Automaton.states
                          (* the unprepared-quorum abort is sound only when
                             committing requires a quorum-visible buffer
                             phase; without one (2PC) only visible outcomes
                             may decide *)
                        then commit_decide Core.Types.Aborted
                        else (* below quorum either way: blocked *) ())
                    | Some _ -> ())
              end
        end
      end
    done;
    !succs
  in

  (* ---- BFS ---- *)
  let init =
    {
      locals = Array.init n (fun i -> (automaton i).Core.Automaton.initial);
      voted = Array.make n false;
      alive = Array.make n true;
      aware = Array.make n false;
      crashes_left = cfg.max_crashes;
      network = MS.of_list protocol.Core.Protocol.initial_network;
      moving = Array.make n None;
      polling = Array.make n None;
      polled = Array.make n false;
      epoch = Array.make n 0;
    }
  in
  let seen = Tbl.create 4096 in
  let parent : st Tbl.t = Tbl.create 4096 in
  let queue = Queue.create () in
  Tbl.add seen init ();
  Queue.add init queue;
  let explored = ref 0 in
  let inconsistent = ref [] and blocked_terminals = ref [] in
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    incr explored;
    if !explored > cfg.limit then failwith "Model_check.run: state limit exceeded";
    (* safety: mixed outcomes across ALL sites (crashed sites' last forced
       log state counts) *)
    let kinds = Array.to_list (Array.mapi (fun i id -> kind_of i id) st.locals) in
    if List.exists Core.Types.is_commit kinds && List.exists Core.Types.is_abort kinds then
      inconsistent := st :: !inconsistent;
    let succs = successors st in
    if succs = [] then begin
      (* terminal: every operational site should have decided *)
      let blocked = ref false in
      Array.iteri (fun i a -> if a && not (decided st i) then blocked := true) st.alive;
      if !blocked then blocked_terminals := st :: !blocked_terminals
    end
    else
      List.iter
        (fun s ->
          if not (Tbl.mem seen s) then begin
            Tbl.add seen s ();
            Tbl.add parent s st;
            Queue.add s queue
          end)
        succs
  done;
  let path_to target =
    let rec go st acc =
      match Tbl.find_opt parent st with None -> st :: acc | Some p -> go p (st :: acc)
    in
    go target []
  in
  {
    explored = !explored;
    inconsistent = !inconsistent;
    blocked_terminals = !blocked_terminals;
    safe = !inconsistent = [];
    nonblocking = !blocked_terminals = [];
    counterexample =
      (match !inconsistent with [] -> None | st :: _ -> Some (path_to st));
  }

