(** The protocol runtime: executes any catalog {!Core.Protocol.t} on the
    simulator, one interpreter per site, together with the paper's
    termination protocol (election + two-phase backup protocol) and
    recovery protocol.

    Division of labour with the formal core: the runtime {e executes};
    every safety decision a backup coordinator takes comes from the
    {!Rulebook} compiled from the protocol's reachable state graph — the
    decision rule of the paper, including the detection of blocking states.

    Election: the paper admits "any distributed election mechanism".  We
    use the deterministic rule induced by the reliable failure detector the
    paper assumes: the backup coordinator is the operational site with the
    smallest id that has not previously crashed during this transaction
    (a recovered site runs the recovery protocol instead of competing for
    leadership).  Cascading failures re-run the election automatically. *)

type mode =
  | Normal  (** executing the commit protocol FSA *)
  | Leading of { mutable awaiting : Core.Types.site list }
      (** backup coordinator, phase 1: waiting for move acks *)
  | Polling of { mutable awaiting : Core.Types.site list; mutable polled : (Core.Types.site * string) list }
      (** quorum termination: collecting participant states before
          applying the quorum decision rule *)
  | Stalled
      (** cannot make progress alone (blocked state, or recovered with a
          yes vote on the log): periodically queries for the outcome *)

(** How a backup coordinator decides (see {!start_termination}).

    [Skeen] is the paper's rule: decide from the backup's own local state
    via the compiled {!Rulebook} — maximally live under fail-stop crashes
    (any single survivor terminates) but unsafe if the failure detector
    can lie (network partitions).

    [Quorum q] is the quorum-based termination the paper's companion work
    introduces: the backup polls reachable participants and commits only
    if at least [q] are prepared-to-commit (buffer state or beyond),
    aborts only if at least [q] are not, and otherwise waits.  With
    [q > n/2] two sides of a partition can never decide differently —
    at the price of blocking minorities.  Moves are monotone (a site is
    never demoted out of its buffer state), which makes the counts
    one-directional and the rule cascade-safe without ballots. *)
type termination_rule = Skeen | Quorum of int

(** The classic commit-protocol presumptions, promoted from the database
    layer: the covered outcome's [Decided] record is appended but not
    forced — its durability rides the next sync (or is lost with the
    crash, which the presumption makes reconstructible).  Scoped to the
    force-vs-append of [Decided] records only: answering inquiries by
    presumption is unsound in this single-transaction model (a site that
    has not yet voted is indistinguishable from one that forgot a covered
    outcome, and the cohort may still commit). *)
type presumption = No_presumption | Presume_abort | Presume_commit

type site_rt = {
  site : Core.Types.site;
  automaton : Core.Automaton.t;
  wal : Wal.t;
  mutable state : string;
  mutable inbox : Core.Message.Multiset.t;
  mutable steps : int;  (** FSA transitions fired by this incarnation chain *)
  mutable outcome : Core.Types.outcome option;
  mutable ever_crashed : bool;
  mutable mode : mode;
  mutable query_attempts : int;
      (** consecutive outcome queries sent since the last reset; drives
          the exponential backoff *)
  mutable down_view : Core.Types.site list;  (** failure-detector reports *)
  mutable tainted_view : Core.Types.site list;  (** sites known to have crashed at least once *)
  mutable decided_at : float option;
  mutable epoch_seen : int;
      (** highest election epoch this site has obeyed (-1 before any).
          Epochs are allotted [round * n_sites + (site - 1)]: globally
          unique per site, and at round 0 ordered exactly like site rank —
          so under the reliable detector (where deposed backups are dead
          and rounds stay 0) this generalizes the old [leader_rank_seen]
          rule bit-for-bit.  A directive fenced below [epoch_seen] is a
          stale order from a deposed backup and must be ignored —
          otherwise it can re-move a participant out of the state the
          current backup put it in (the model checker found exactly that
          split-brain at n=4 with three cascading crashes; with a lying
          detector the deposed backup is still *alive*, which is why rank
          alone stopped being enough). *)
  mutable campaigning : bool;
      (** detector mode: this site has broadcast [Elect] and is waiting
          for a better-ranked site to object before leading *)
  mutable lead_epoch : int;
      (** the epoch this site last assumed leadership at — [site - 1]
          (its rank-order authority) until it first leads.  Stamped on
          every directive it issues, so under the oracle a [Move_to] from
          site [s] always carries epoch [s - 1], exactly the rank the old
          rule fenced on. *)
  mutable impaired : bool;
      (** a site failure has been detected: the commit protocol proper is
          over and only the termination/recovery protocols may change this
          site's state.  Without this freeze a stale in-flight protocol
          message (e.g. a delayed [prepare]) could move a participant out
          of the state the backup's phase 1 put it in, and a later backup
          would decide from the drifted state — the model checker found
          exactly that split-brain on central 3PC with two crashes. *)
  mutable sent_yes : bool;
      (** this site put a message of a yes-vote transition on the wire.
          Deliberately volatile-but-sticky (it survives crashes, unlike
          the log): the durability oracle compares what the world could
          observe against what the durable log can justify. *)
  mutable announced : Core.Types.outcome option;
      (** an outcome this site actually announced to a peer (a [Decide],
          an [Outcome_reply], a final transition's messages) — sticky for
          the same reason as [sent_yes]. *)
  mutable firing : bool;
      (** a transition's force is in flight (group commit / sync
          latency): no further transition may fire until its continuation
          runs.  Always false on the synchronous fast path. *)
}

type config = {
  rulebook : Rulebook.t;
  votes : (Core.Types.site * Core.Types.vote) list;  (** default: everyone votes yes *)
  plan : Failure_plan.t;
  seed : int;
  tracing : bool;
  until : float;
  query_interval : float;  (** base delay of the query backoff *)
  query_backoff_cap : float;
      (** ceiling on the exponential backoff between outcome queries.
          Queries retry for as long as the site is undecided — the run's
          [until] horizon bounds them, not a counter; a fixed budget made
          liveness depend on how long a peer stayed unreachable. *)
  partition : (float * float * Core.Types.site list list) option;
      (** (from, until, groups): run under a network partition, violating
          the paper's reliable-detector assumption — the ablation that
          shows why the assumption is needed *)
  termination : termination_rule;
  presumption : presumption;
      (** append rather than force the covered outcome's [Decided]
          record; see {!presumption} for the (narrow) scope *)
  read_only : Core.Types.site list;
      (** read-only participants: run the FSA normally (votes and acks
          still flow) but never sync — they hold no data whose durability
          matters — and are excluded from backup leadership, termination
          moves and quorum counts (a volatile prepared state must not
          widen a commit quorum).  They still learn outcomes in phase 2
          broadcasts. *)
  group_commit : Wal.group_commit option;
      (** coalesce concurrent WAL forces into shared syncs — API parity
          with the database layer; with one transaction a site has at
          most one force in flight, so batches are size 1 and this is a
          correctness lever here, not a throughput one *)
  sync_latency : float;
      (** simulated seconds per WAL sync (0.0: synchronous forces,
          byte-identical replay of every prior run) *)
  durable_wal : bool;  (** [false]: the PR 3 in-memory log (bench baseline) *)
  late_force : bool;
      (** deliberately mis-place the transition force point: append, send
          the transition's messages, and only then sync.  A test-only
          ablation — the durability oracle must catch it. *)
  detector : bool;
      (** [true]: replace the oracle failure reports with the
          timeout-based {!Sim.Detector} (heartbeats over real sends,
          revocable suspicion, bully election with epochs).  [false] (the
          default) keeps the paper's reliable-detector oracle; every
          pre-detector run replays unchanged. *)
  heartbeat_period : float;  (** detector mode: heartbeat broadcast period *)
  suspicion_timeout : float;  (** detector mode: silence before suspicion *)
  election_timeout : float;
      (** detector mode: how long a candidate waits for a better-ranked
          site to object to its [Elect] before leading *)
  fencing : bool;
      (** [false]: accept every directive regardless of epoch — the
          ablation that must reproduce a split-brain, mirroring
          [late_force].  Default [true]. *)
}

let config ?(votes = []) ?(plan = Failure_plan.none) ?(seed = 1) ?(tracing = false)
    ?(until = 10_000.0) ?(query_interval = 5.0) ?(query_backoff_cap = 45.0) ?partition
    ?(termination = Skeen) ?(presumption = No_presumption) ?(read_only = []) ?group_commit
    ?(sync_latency = 0.0) ?(durable_wal = true) ?(late_force = false) ?(detector = false)
    ?(heartbeat_period = 1.0) ?(suspicion_timeout = 5.0) ?(election_timeout = 4.0)
    ?(fencing = true) rulebook =
  if sync_latency < 0.0 then invalid_arg "Runtime.config: sync_latency must be >= 0";
  {
    rulebook;
    votes;
    plan;
    seed;
    tracing;
    until;
    query_interval;
    query_backoff_cap;
    partition;
    termination;
    presumption;
    read_only;
    group_commit;
    sync_latency;
    durable_wal;
    late_force;
    detector;
    heartbeat_period;
    suspicion_timeout;
    election_timeout;
    fencing;
  }

(** A majority quorum for [n] sites. *)
let majority n = (n / 2) + 1

type site_report = {
  site : Core.Types.site;
  outcome : Core.Types.outcome option;
  wal_outcome : Core.Types.outcome option;
      (** the decision forced to this site's stable log — a [Decided]
          record, or a final state the log reached before a crash cut the
          announcements short.  A crashed site is judged by this, not by
          its (lost) volatile [outcome]. *)
  final_state : string;
  operational : bool;  (** alive when the run ended *)
  ever_crashed : bool;
  decided_at : float option;
  sent_yes : bool;  (** a yes-vote transition's message reached the wire *)
  announced : Core.Types.outcome option;  (** an outcome this site announced to a peer *)
}

type result = {
  reports : site_report list;
  messages_sent : int;
  messages_delivered : int;
  duration : float;  (** latest decision time among sites that decided *)
  global_outcome : Core.Types.outcome option;
  consistent : bool;  (** no mix of commit and abort across all logs *)
  blocked_operational : int;
      (** operational never-crashed sites that ended undecided — nonzero
          only for blocking protocols (or total-failure scenarios) *)
  all_operational_decided : bool;
  store : Wal.Store.t;  (** every site's stable log, for post-hoc oracles *)
  directive_epochs : (Core.Types.site * int) list;
      (** every leadership assumption of the run, in order: (site, epoch)
          at the moment the site began issuing directives.  The
          split-brain oracle checks that no epoch is shared by two
          distinct sites. *)
  trace : Sim.World.trace_entry list;
  metrics_json : Sim.Json.t;
      (** full metrics snapshot of the run ({!Sim.Metrics.to_json}):
          counters, gauges and latency histograms *)
  run_metrics : Sim.Metrics.t;
      (** the run's live metrics registry (the source of [metrics_json]),
          so sweeps can aggregate detector counters across runs *)
}

let planned_vote cfg site =
  Option.value ~default:Core.Types.Yes (List.assoc_opt site cfg.votes)

let vote_allowed cfg site (tr : Core.Automaton.transition) =
  match tr.Core.Automaton.vote with None -> true | Some v -> v = planned_vote cfg site

(* Pick a final state id of the given outcome's kind in this automaton, for
   aligning the FSA state with a termination decision. *)
let final_state_for (a : Core.Automaton.t) (o : Core.Types.outcome) =
  let want = match o with Core.Types.Committed -> Core.Types.Commit | Aborted -> Core.Types.Abort in
  match List.find_opt (fun s -> s.Core.Automaton.kind = want) a.Core.Automaton.states with
  | Some s -> s.Core.Automaton.id
  | None -> (match o with Core.Types.Committed -> "c" | Aborted -> "a")

let site_has_veto (a : Core.Automaton.t) =
  List.exists
    (fun (tr : Core.Automaton.transition) -> tr.Core.Automaton.vote = Some Core.Types.No)
    a.Core.Automaton.transitions

(** The full engine for one transaction execution. *)
module Exec = struct
  type t = {
    cfg : config;
    protocol : Core.Protocol.t;
    world : Msg.t Sim.World.t;
    store : Wal.Store.t;
    rts : site_rt array;
    query_rng : Sim.Rng.t;
        (** jitter for the query backoff — its own stream, so query
            timing never perturbs the network latency draws *)
    mutable detector : Msg.t Sim.Detector.t option;
        (** detector mode only; wired in [run] once the world exists *)
    mutable directive_epochs : (Core.Types.site * int) list;
        (** reverse-chronological (site, epoch) of every leadership
            assumption — the split-brain oracle's feed *)
  }

  let rt t site = t.rts.(site - 1)

  let record t fmt = Sim.World.record t.world fmt

  (* every log write goes through here so the run's WAL traffic is
     visible in the metrics *)
  let append_wal t wal r =
    Sim.Metrics.incr (Sim.World.metrics t.world) "wal_appends";
    Wal.append wal r

  let is_ro t site = List.mem site t.cfg.read_only

  (* whether the presumption covers this outcome: its [Decided] record
     may be appended instead of forced *)
  let covered t (o : Core.Types.outcome) =
    match t.cfg.presumption with
    | No_presumption -> false
    | Presume_abort -> o = Core.Types.Aborted
    | Presume_commit -> o = Core.Types.Committed

  (* the paper's forced write: append + sync, durable before the caller
     takes any externally visible action.  Read-only sites never sync —
     nothing of theirs needs to survive a crash. *)
  let force_wal t (rt : site_rt) r =
    Sim.Metrics.incr (Sim.World.metrics t.world) "wal_appends";
    if is_ro t rt.site then Wal.append rt.wal r else Wal.force rt.wal r

  let finalize t (rt : site_rt) (o : Core.Types.outcome) =
    if rt.outcome = None then begin
      (* forced before any caller announces the decision to a peer —
         except when the presumption covers [o]: then the record merely
         rides the next sync, and the durability oracle accepts an
         announced covered outcome the repaired log cannot show *)
      if covered t o then append_wal t rt.wal (Wal.Decided o)
      else force_wal t rt (Wal.Decided o);
      rt.outcome <- Some o;
      rt.decided_at <- Some (Sim.World.now t.world);
      rt.state <- final_state_for rt.automaton o;
      rt.mode <- Normal;
      let m = Sim.World.metrics t.world in
      Sim.Metrics.observe m "decision_latency" (Sim.World.now t.world);
      Sim.Metrics.observe m "messages_to_decision"
        (float_of_int (Sim.Metrics.counter m "messages_sent"));
      record t "site %d decides %s" rt.site
        (match o with Core.Types.Committed -> "COMMIT" | Aborted -> "ABORT")
    end

  (* ---------------- FSA execution ---------------- *)

  let rec try_fire t ctx (rt : site_rt) =
    if rt.outcome = None && rt.mode = Normal && (not rt.impaired) && not rt.firing then begin
      let enabled =
        Core.Automaton.enabled rt.automaton rt.state rt.inbox
        |> List.filter (vote_allowed t.cfg rt.site)
      in
      match enabled with
      | [] -> ()
      | tr :: _ -> (
          let crash_mode = Failure_plan.find_step_crash t.cfg.plan ~site:rt.site ~step:rt.steps in
          match crash_mode with
          | Some Failure_plan.Before_transition ->
              record t "site %d crashes before transition %s->%s" rt.site rt.state
                tr.Core.Automaton.to_state;
              Sim.World.crash_self ctx
          | _ ->
              rt.steps <- rt.steps + 1;
              (match Core.Message.Multiset.remove_all tr.Core.Automaton.consumes rt.inbox with
              | Some inbox -> rt.inbox <- inbox
              | None -> assert false);
              let crash_after_k =
                match crash_mode with
                | Some (Failure_plan.After_logging k) -> Some k
                | Some Failure_plan.After_transition -> Some (List.length tr.Core.Automaton.emits)
                | Some Failure_plan.Before_transition | None -> None
              in
              let announces =
                Core.Types.outcome_of_kind
                  (Core.Automaton.kind_of rt.automaton tr.Core.Automaton.to_state)
              in
              (* everything after the record is durable: sends, volatile
                 state, the decision.  On the synchronous fast path this
                 runs inline and the whole transition is atomic wrt the
                 scheduler, exactly as before the levers existed. *)
              let continue () =
                rt.firing <- false;
                (* a termination directive may have arrived while the
                   force was in flight: the record is durable but the
                   commit protocol proper is over — adopt the state (it
                   is on stable storage; a poll may honestly report it)
                   but put nothing more on the wire *)
                let frozen = rt.impaired || rt.mode <> Normal in
                if not frozen then
                  List.iteri
                    (fun i m ->
                      (match crash_after_k with
                      | Some k when i = k ->
                          record t "site %d crashes mid-transition after %d of %d sends" rt.site
                            k
                            (List.length tr.Core.Automaton.emits);
                          Sim.World.crash_self ctx
                      | _ -> ());
                      (* sends from a crashed site are dropped by the world,
                         so only live sends count as externally observed *)
                      if Sim.World.is_alive t.world rt.site then begin
                        (match tr.Core.Automaton.vote with
                        | Some Core.Types.Yes -> rt.sent_yes <- true
                        | Some Core.Types.No | None -> ());
                        match announces with Some o -> rt.announced <- Some o | None -> ()
                      end;
                      Sim.World.send ctx ~dst:m.Core.Message.dst (Msg.Proto m))
                    tr.Core.Automaton.emits;
                (match crash_after_k with
                | Some k when (not frozen) && k >= List.length tr.Core.Automaton.emits ->
                    record t "site %d crashes right after transition to %s" rt.site
                      tr.Core.Automaton.to_state;
                    Sim.World.crash_self ctx
                | _ -> ());
                if t.cfg.late_force && (not (is_ro t rt.site)) && Sim.World.is_alive t.world rt.site
                then Wal.sync rt.wal;
                rt.state <- tr.Core.Automaton.to_state;
                (if Sim.World.is_alive t.world rt.site then
                   match
                     Core.Types.outcome_of_kind (Core.Automaton.kind_of rt.automaton rt.state)
                   with
                   | Some o -> finalize t rt o
                   | None -> ());
                if Sim.World.is_alive t.world rt.site && not frozen then try_fire t ctx rt
              in
              (* Write-ahead: force the transition record before any message
                 leaves the site — the paper's rule.  Under the [late_force]
                 ablation only the append happens here; the sync is deferred
                 until after the sends, opening exactly the
                 acted-before-durable window the durability oracle must
                 catch.  Read-only sites never sync at all. *)
              let record_ =
                Wal.Transitioned
                  { to_state = tr.Core.Automaton.to_state; vote = tr.Core.Automaton.vote }
              in
              Sim.Metrics.incr (Sim.World.metrics t.world) "wal_appends";
              if t.cfg.late_force || is_ro t rt.site then begin
                Wal.append rt.wal record_;
                continue ()
              end
              else begin
                rt.firing <- true;
                Wal.force_k rt.wal record_ continue
              end)
    end

  (* ---------------- queries (recovery & blocked sites) ---------------- *)

  let query_peers t ctx (rt : site_rt) =
    Sim.Metrics.incr (Sim.World.metrics t.world) "termination_queries";
    let peers = List.filter (fun s -> s <> rt.site) (Sim.World.sites t.world) in
    Sim.World.broadcast ctx ~dsts:peers Msg.Query_outcome

  (* Outcome queries retry for as long as the site is undecided, with
     capped exponential backoff plus jitter ({!Sim.Backoff}): a fixed
     retry budget tied liveness to how long a peer stayed unreachable,
     while a fixed interval kept blocked runs noisy.  The backoff resets
     when a peer comes back (see [on_peer_up]) and on restart. *)
  let rec start_query_loop t ctx (rt : site_rt) =
    if rt.outcome = None then begin
      query_peers t ctx rt;
      let delay =
        Sim.Backoff.delay ~rng:t.query_rng ~interval:t.cfg.query_interval
          ~cap:t.cfg.query_backoff_cap ~attempt:rt.query_attempts
      in
      rt.query_attempts <- rt.query_attempts + 1;
      ignore (Sim.World.set_timer ctx ~delay (fun () -> start_query_loop t ctx rt))
    end

  let enter_stalled t ctx (rt : site_rt) =
    if rt.mode <> Stalled then begin
      rt.mode <- Stalled;
      record t "site %d stalls (state %s): will query for the outcome" rt.site rt.state;
      start_query_loop t ctx rt
    end

  (* ---------------- termination protocol ---------------- *)

  (* Leadership is computed from this site's local detector reports only:
     the paper assumes those reports are reliable, and the partition
     ablation shows what breaks when they are not. *)
  let eligible_leader t (rt : site_rt) =
    let pick ~ignore_taint =
      Sim.World.sites t.world
      (* read-only sites never lead: their log is volatile, so a decision
         derived from it could not honour the force discipline *)
      |> List.filter (fun s -> not (is_ro t s))
      |> List.filter (fun s ->
             if s = rt.site then not rt.ever_crashed
             else
               (not (List.mem s rt.down_view))
               && (ignore_taint || not (List.mem s rt.tainted_view)))
      |> function [] -> None | s :: _ -> Some s
    in
    match pick ~ignore_taint:false with
    | Some _ as r -> r
    | None ->
        (* Under the oracle, taint is fact and an all-tainted view really
           is a total failure.  Under the detector it is hearsay — every
           suspicion, false ones included, taints — so insisting on it
           forever would deadlock runs where every site was briefly
           suspected.  Fall back to current suspicion only; epochs keep
           the extra candidates safe. *)
        if t.cfg.detector then pick ~ignore_taint:true else None

  (* The smallest epoch of this site's allotment ([round * n + site - 1])
     that outranks everything it has already obeyed — a deposed backup
     re-elects itself one round up instead of re-issuing stale orders. *)
  let next_epoch t (rt : site_rt) =
    let n = List.length (Sim.World.sites t.world) in
    let rec go r =
      let e = (r * n) + rt.site - 1 in
      if e > rt.epoch_seen then e else go (r + 1)
    in
    go 0

  let broadcast_decide t ctx (rt : site_rt) o =
    let peers = List.filter (fun s -> s <> rt.site) (Sim.World.sites t.world) in
    let crash_after = List.assoc_opt rt.site t.cfg.plan.Failure_plan.decide_crashes in
    List.iteri
      (fun i dst ->
        (match crash_after with
        | Some k when i = k ->
            record t "backup %d crashes after sending %d decide(s)" rt.site k;
            Sim.World.crash_self ctx
        | _ -> ());
        if Sim.World.is_alive t.world rt.site then rt.announced <- Some o;
        Sim.World.send ctx ~dst
          (Msg.Decide { outcome = o; epoch = max rt.lead_epoch rt.epoch_seen }))
      peers;
    match crash_after with
    | Some k when k >= List.length peers -> Sim.World.crash_self ctx
    | _ -> ()

  let leader_decide t ctx (rt : site_rt) =
    match Rulebook.verdict t.cfg.rulebook ~site:rt.site ~state:rt.state with
    | Rulebook.Decide o ->
        finalize t rt o;
        broadcast_decide t ctx rt o
    | Rulebook.Blocked ->
        (* The decision rule offers no safe outcome: the site blocks.  It
           keeps querying in case a crashed site recovers and resolves the
           transaction (the only way out for 2PC). *)
        record t "backup %d is BLOCKED in state %s" rt.site rt.state;
        enter_stalled t ctx rt

  let maybe_finish_phase1 t ctx (rt : site_rt) =
    match rt.mode with
    | Leading l when l.awaiting = [] && rt.outcome = None -> leader_decide t ctx rt
    | Leading _ | Polling _ | Normal | Stalled -> ()

  (* Read-only sites are excluded from moves and polls: their state is
     volatile, so counting it toward a quorum (or deciding from a move
     they acked) would let a crash shrink a commit quorum after the
     fact.  They still learn the outcome from phase 2 broadcasts. *)
  let reachable_participants t (rt : site_rt) =
    Sim.World.sites t.world
    |> List.filter (fun s ->
           s <> rt.site
           && (not (is_ro t s))
           && (not (List.mem s rt.down_view))
           && not (List.mem s rt.tainted_view))

  (* Phase 1 of the backup protocol: ask the given participants to make a
     transition to [target]; phase 2 happens in [maybe_finish_phase1]. *)
  let run_phase1 t ctx (rt : site_rt) ~target ~participants =
    rt.mode <- Leading { awaiting = participants };
    let crash_after = List.assoc_opt rt.site t.cfg.plan.Failure_plan.move_crashes in
    List.iteri
      (fun i dst ->
        (match crash_after with
        | Some k when i = k ->
            record t "backup %d crashes after sending %d move(s)" rt.site k;
            Sim.World.crash_self ctx
        | _ -> ());
        Sim.World.send ctx ~dst (Msg.Move_to { target; epoch = rt.lead_epoch }))
      participants;
    (match crash_after with
    | Some k when k >= List.length participants -> Sim.World.crash_self ctx
    | _ -> ());
    if Sim.World.is_alive t.world rt.site then maybe_finish_phase1 t ctx rt

  (* The buffer ("prepared to commit") state id of this site's FSA. *)
  let buffer_state_id (rt : site_rt) =
    List.find_opt
      (fun (s : Core.Automaton.state) -> s.Core.Automaton.kind = Core.Types.Buffer)
      rt.automaton.Core.Automaton.states
    |> Option.map (fun s -> s.Core.Automaton.id)

  (* The quorum decision rule over the collected view (which includes the
     leader's own state).  Monotone: sites are only ever moved up into the
     buffer state, so the prepared count can only grow and two quorate
     decisions can never disagree. *)
  let evaluate_quorum t ctx (rt : site_rt) ~q ~(polled : (Core.Types.site * string) list) =
    if rt.outcome <> None then ()
    else begin
      let kinds =
        List.map
          (fun (site, state) ->
            Core.Automaton.kind_of (Core.Protocol.automaton t.protocol site) state)
          polled
      in
      let n_prepared =
        List.length (List.filter (fun k -> k = Core.Types.Buffer || Core.Types.is_commit k) kinds)
      in
      let n_unprepared = List.length kinds - n_prepared in
      if List.exists Core.Types.is_commit kinds then begin
        record t "quorum backup %d: a commit is visible -> COMMIT" rt.site;
        finalize t rt Core.Types.Committed;
        broadcast_decide t ctx rt Core.Types.Committed
      end
      else if List.exists Core.Types.is_abort kinds then begin
        record t "quorum backup %d: an abort is visible -> ABORT" rt.site;
        finalize t rt Core.Types.Aborted;
        broadcast_decide t ctx rt Core.Types.Aborted
      end
      else if n_prepared >= q then begin
        match buffer_state_id rt with
        | Some p ->
            record t "quorum backup %d: %d prepared >= %d -> move up and COMMIT" rt.site
              n_prepared q;
            if rt.state <> p then begin
              force_wal t rt (Wal.Moved { to_state = p });
              rt.state <- p
            end;
            run_phase1 t ctx rt ~target:p
              ~participants:(List.filter_map (fun (s, _) -> if s <> rt.site then Some s else None) polled)
        | None ->
            (* no buffer state (a 2PC run under the quorum rule): without
               a visible commit there is nothing safe to promote *)
            record t "quorum backup %d: no buffer state, cannot commit -> wait" rt.site;
            enter_stalled t ctx rt
      end
      else if n_unprepared >= q && buffer_state_id rt <> None then begin
        (* Monotonicity makes phase 1 unnecessary on the abort side: the
           unprepared count can only have been larger in the past, so no
           commit quorum can ever have existed.  This reasoning consumes
           the buffer phase: it is sound only for protocols whose commit is
           gated by a quorum of prepared-to-commit sites.  In 2PC the
           coordinator commits straight from its wait state, so a quorum of
           unprepared participants proves nothing — the model checker found
           exactly that unsoundness, hence the buffer-state guard. *)
        record t "quorum backup %d: %d unprepared >= %d -> ABORT" rt.site n_unprepared q;
        finalize t rt Core.Types.Aborted;
        broadcast_decide t ctx rt Core.Types.Aborted
      end
      else begin
        record t "quorum backup %d: no quorum (%d prepared, %d unprepared, need %d) -> wait"
          rt.site n_prepared n_unprepared q;
        enter_stalled t ctx rt
      end
    end

  let maybe_finish_poll t ctx (rt : site_rt) ~q =
    match rt.mode with
    | Polling p when p.awaiting = [] ->
        rt.mode <- Normal;
        evaluate_quorum t ctx rt ~q ~polled:p.polled
    | Polling _ | Leading _ | Normal | Stalled -> ()

  let start_termination t ctx (rt : site_rt) =
    match rt.mode with
    | Leading _ | Polling _ | Stalled -> ()
    | Normal -> (
        (* Elect an epoch: the site's rank under the oracle (a deposed
           backup is dead, round 0 suffices and orders exactly like the
           old rank rule), the next free round under the detector (a
           deposed backup may be deposed in error and come back — it must
           outrank its own stale orders). *)
        let e = if t.cfg.detector then next_epoch t rt else rt.site - 1 in
        record t "site %d becomes backup coordinator (state %s, epoch %d)" rt.site rt.state e;
        rt.lead_epoch <- e;
        rt.epoch_seen <- max rt.epoch_seen e;
        t.directive_epochs <- (rt.site, e) :: t.directive_epochs;
        Sim.Metrics.incr (Sim.World.metrics t.world) "elections";
        match rt.outcome with
        | Some o ->
            (* Already final: phase 1 may be omitted (paper §8). *)
            broadcast_decide t ctx rt o
        | None ->
            Sim.Metrics.incr (Sim.World.metrics t.world) "termination_rounds";
            (
            match t.cfg.termination with
            | Quorum q -> (
                (* poll the reachable participants' states first *)
                let participants = reachable_participants t rt in
                rt.mode <- Polling { awaiting = participants; polled = [ (rt.site, rt.state) ] };
                List.iter
                  (fun dst -> Sim.World.send ctx ~dst (Msg.State_req { epoch = e }))
                  participants;
                maybe_finish_poll t ctx rt ~q)
            | Skeen -> (
                match Rulebook.verdict t.cfg.rulebook ~site:rt.site ~state:rt.state with
                | Rulebook.Blocked ->
                    record t "backup %d is BLOCKED in state %s" rt.site rt.state;
                    enter_stalled t ctx rt
                | Rulebook.Decide _ ->
                    (* Phase 1: move every reachable, never-crashed
                       participant to our local state, then decide. *)
                    run_phase1 t ctx rt ~target:rt.state
                      ~participants:(reachable_participants t rt))))

  let rec reconsider_leadership t ctx (rt : site_rt) =
    match eligible_leader t rt with
    | Some s when s = rt.site ->
        if t.cfg.detector then start_campaign t ctx rt else start_termination t ctx rt
    | Some _ -> ()
    | None ->
        (* Every site has crashed at least once: no termination protocol can
           run; undecided survivors fall back to querying. *)
        if rt.outcome = None then enter_stalled t ctx rt

  (* Bully election with a second chance: the candidate asks EVERY
     better-ranked site to object — suspected ones included, because a
     suspicion may be false and a live better-ranked site must win.  An
     objection ([Elect_ack]) makes the candidate stand down; silence for
     [election_timeout] lets it lead. *)
  and start_campaign t ctx (rt : site_rt) =
    match rt.mode with
    | Leading _ | Polling _ | Stalled -> ()
    | Normal ->
        if not rt.campaigning then begin
          let lower = List.filter (fun s -> s < rt.site) (Sim.World.sites t.world) in
          if lower = [] then start_termination t ctx rt
          else begin
            rt.campaigning <- true;
            Sim.Metrics.incr (Sim.World.metrics t.world) "elections_started";
            let e = next_epoch t rt in
            record t "site %d campaigns for leadership at epoch %d" rt.site e;
            Sim.World.broadcast ctx ~dsts:lower (Msg.Elect { epoch = e });
            ignore
              (Sim.World.set_timer ctx ~delay:t.cfg.election_timeout (fun () ->
                   if rt.campaigning then begin
                     rt.campaigning <- false;
                     if eligible_leader t rt = Some rt.site then start_termination t ctx rt
                   end))
          end
        end

  (* ---------------- handlers ---------------- *)

  let handle_peer_down t ctx failed =
    let rt = rt t ctx.Sim.World.self in
    rt.impaired <- true;
    if not (List.mem failed rt.down_view) then rt.down_view <- failed :: rt.down_view;
    if not (List.mem failed rt.tainted_view) then rt.tainted_view <- failed :: rt.tainted_view;
    (match rt.mode with
    | Leading l ->
        l.awaiting <- List.filter (fun x -> x <> failed) l.awaiting;
        maybe_finish_phase1 t ctx rt
    | Polling p ->
        p.awaiting <- List.filter (fun x -> x <> failed) p.awaiting;
        (match t.cfg.termination with
        | Quorum q -> maybe_finish_poll t ctx rt ~q
        | Skeen -> ())
    | Normal | Stalled -> ());
    (* Even a site that has already decided must reconsider: if it is now
       the backup coordinator it announces the outcome, so that sites left
       waiting by a coordinator that crashed mid-broadcast still learn it. *)
    reconsider_leadership t ctx rt

  let on_message t ctx ~src msg =
    let rt = rt t ctx.Sim.World.self in
    match msg with
    | Msg.Proto m ->
        if rt.outcome = None then begin
          rt.inbox <- Core.Message.Multiset.add m rt.inbox;
          try_fire t ctx rt
        end
    | Msg.Heartbeat ->
        (* evidence of life only — already consumed by [Detector.heard] *)
        ()
    | Msg.Move_to { target = s; epoch = e } -> (
        match rt.outcome with
        | Some o ->
            rt.announced <- Some o;
            Sim.World.send ctx ~dst:src (Msg.Decide { outcome = o; epoch = max e rt.epoch_seen })
        | None ->
            if rt.ever_crashed then
              (* Recovered sites follow the recovery protocol only. *)
              ()
            else if t.cfg.fencing && e < rt.epoch_seen then begin
              (* a stale directive from a deposed backup: fence it.  Under
                 the detector the deposed backup is possibly still alive —
                 tell it, so it stands down instead of deciding alone. *)
              Sim.Metrics.incr (Sim.World.metrics t.world) "epoch_rejected_directives";
              record t "site %d fences stale move from deposed backup %d (e%d < e%d)" rt.site src
                e rt.epoch_seen;
              if t.cfg.detector then
                Sim.World.send ctx ~dst:src (Msg.Epoch_reject { epoch = rt.epoch_seen })
            end
            else begin
              (* a backup with higher authority (from a view in which we
                 are not the leader) is directing us: abandon any poll or
                 phase 1 of our own and follow it *)
              rt.epoch_seen <- max rt.epoch_seen e;
              (match rt.mode with
              | Polling _ -> rt.mode <- Normal
              | Leading _ when t.cfg.detector -> rt.mode <- Normal
              | Normal | Leading _ | Stalled -> ());
              (* under the detector a directive is also the failure signal
                 itself: freeze the FSA exactly as an oracle report would *)
              if t.cfg.detector then rt.impaired <- true;
              if rt.state <> s then begin
                (* forced before the ack: the backup will decide from the
                   belief that this move is stable *)
                force_wal t rt (Wal.Moved { to_state = s });
                record t "site %d moves %s -> %s at backup's request" rt.site rt.state s;
                rt.state <- s
              end;
              Sim.World.send ctx ~dst:src (Msg.Move_ack s)
            end)
    | Msg.Move_ack _ -> (
        match rt.mode with
        | Leading l ->
            l.awaiting <- List.filter (fun x -> x <> src) l.awaiting;
            maybe_finish_phase1 t ctx rt
        | Polling _ | Normal | Stalled -> ())
    | Msg.State_req { epoch = e } ->
        if t.cfg.detector && t.cfg.fencing && e < rt.epoch_seen then begin
          Sim.Metrics.incr (Sim.World.metrics t.world) "epoch_rejected_directives";
          record t "site %d fences stale state-req from deposed backup %d (e%d < e%d)" rt.site
            src e rt.epoch_seen;
          Sim.World.send ctx ~dst:src (Msg.Epoch_reject { epoch = rt.epoch_seen })
        end
        else begin
          if t.cfg.detector then begin
            rt.epoch_seen <- max rt.epoch_seen e;
            if rt.outcome = None && not rt.ever_crashed then rt.impaired <- true
          end;
          (* quorum poll: recovered sites that have not resolved keep quiet
             (their pre-crash state is stale); everyone else reports *)
          if rt.outcome <> None || not rt.ever_crashed then
            Sim.World.send ctx ~dst:src (Msg.State_rep rt.state)
        end
    | Msg.State_rep s -> (
        match (rt.mode, t.cfg.termination) with
        | Polling p, Quorum q ->
            if not (List.mem_assoc src p.polled) then p.polled <- (src, s) :: p.polled;
            p.awaiting <- List.filter (fun x -> x <> src) p.awaiting;
            maybe_finish_poll t ctx rt ~q
        | _ -> ())
    | Msg.Decide { outcome = o; epoch = e } ->
        if t.cfg.detector && t.cfg.fencing && e < rt.epoch_seen then begin
          Sim.Metrics.incr (Sim.World.metrics t.world) "epoch_rejected_directives";
          record t "site %d fences stale decide from deposed backup %d (e%d < e%d)" rt.site src
            e rt.epoch_seen;
          Sim.World.send ctx ~dst:src (Msg.Epoch_reject { epoch = rt.epoch_seen })
        end
        else begin
          if t.cfg.detector then rt.epoch_seen <- max rt.epoch_seen e;
          let was_leading =
            match rt.mode with Leading _ -> true | Polling _ | Normal | Stalled -> false
          in
          if rt.outcome = None then begin
            finalize t rt o;
            (* A participant that was already final answered our Move_to
               with the outcome: relay it so phase 2 still reaches
               everyone. *)
            if was_leading then broadcast_decide t ctx rt o
          end
        end
    | Msg.Query_outcome ->
        (match rt.outcome with Some o -> rt.announced <- Some o | None -> ());
        Sim.World.send ctx ~dst:src (Msg.Outcome_reply rt.outcome);
        (* A peer's query is harder failure evidence than any report:
           only a site that abandoned the normal FSA path (crashed and
           recovered, or frozen by a termination directive) queries, so
           it will never send the protocol message this site may still
           be waiting for.  Both failure-signal sources can miss the
           crash behind such a query: the oracle samples liveness after
           [detection_delay], so a crash-recover window shorter than the
           delay produces no report at all, and under the timeout
           detector a chaos-delayed pre-crash heartbeat masks the same
           window.  Either way an undecided coordinator would wait
           forever on a vote or ack the querier lost — the query itself
           is the one signal that cannot be masked. *)
        if rt.outcome = None && not (List.mem src rt.down_view) then begin
          record t "site %d treats site %d's outcome query as failure evidence" rt.site src;
          handle_peer_down t ctx src
        end
    | Msg.Outcome_reply (Some o) ->
        let was_stalled = rt.mode = Stalled in
        if rt.outcome = None then begin
          finalize t rt o;
          (* A blocked backup that finally learned the outcome spreads it to
             the other blocked sites. *)
          if was_stalled then broadcast_decide t ctx rt o
        end
    | Msg.Outcome_reply None -> ()
    | Msg.Elect { epoch = e } ->
        (* A worse-ranked site believes the leader chain is broken.  If we
           are a live, never-crashed better-ranked site we object — the
           candidate stands down — and take the hint to reconsider leading
           ourselves.  A suspected-but-alive site's objection is exactly
           the second chance that makes false suspicion survivable.
           Read-only sites never object: an objection is a promise to
           take over, and they are excluded from leadership. *)
        if rt.site < src && (not rt.ever_crashed) && not (is_ro t rt.site) then begin
          record t "site %d objects to site %d's campaign (epoch %d)" rt.site src e;
          Sim.World.send ctx ~dst:src Msg.Elect_ack;
          reconsider_leadership t ctx rt
        end
    | Msg.Elect_ack ->
        if rt.campaigning then begin
          record t "site %d stands down: a better-ranked site objected" rt.site;
          rt.campaigning <- false
        end
    | Msg.Epoch_reject { epoch = e } -> (
        rt.epoch_seen <- max rt.epoch_seen e;
        match rt.mode with
        | Leading _ | Polling _ ->
            (* Deposed while directing: abandon the round WITHOUT deciding
               (the higher-epoch backup owns the transaction now) and fall
               back to querying for its outcome. *)
            record t "backup %d stands down: deposed at epoch %d" rt.site e;
            rt.mode <- Normal;
            if rt.outcome = None then enter_stalled t ctx rt
        | Normal | Stalled -> ())

  let handle_peer_up t ctx recovered =
    let rt = rt t ctx.Sim.World.self in
    rt.down_view <- List.filter (fun x -> x <> recovered) rt.down_view;
    (* A retracted false suspicion: if no failure evidence remains and no
       termination directive ever reached this site, the freeze was
       spurious — thaw the FSA and resume the normal protocol.  (Once a
       directive has been obeyed the termination protocol owns the
       transaction, so the freeze must stick.) *)
    if
      t.cfg.detector && rt.impaired && rt.down_view = [] && rt.epoch_seen < 0
      && rt.mode = Normal && rt.outcome = None
    then begin
      record t "site %d thaws: every suspicion was retracted" rt.site;
      rt.impaired <- false;
      try_fire t ctx rt
    end;
    (* a stalled site may be deep into its backoff when the peer returns:
       the recovery report is the signal that querying can succeed again
       (messages dropped by a partition are dropped at send time, so
       nothing sent during the window survives to resolve the stall for
       us), so reset the backoff and query immediately — the standing
       timer chain keeps the retries going afterwards *)
    if rt.outcome = None && rt.mode = Stalled then begin
      rt.query_attempts <- 0;
      record t "site %d re-queries: site %d is reachable again" rt.site recovered;
      query_peers t ctx rt
    end;
    (* tainted_view keeps genuinely crashed sites out of leadership; a
       healed partition however reported sites "down" that never crashed,
       and under the quorum rule a blocked minority must now re-poll *)
    match t.cfg.termination with
    | Quorum _ when rt.outcome = None ->
        (match rt.mode with
        | Stalled | Polling _ -> rt.mode <- Normal
        | Normal | Leading _ -> ());
        reconsider_leadership t ctx rt
    | Quorum _ | Skeen -> ()

  (* The oracle's reports and the detector's suspicions drive the same
     view machinery; in detector mode the oracle events are ignored (the
     world still emits them — they are generated from the crash schedule —
     but suspicion is the only failure signal the sites may act on). *)
  let on_peer_down t ctx failed =
    if not t.cfg.detector then handle_peer_down t ctx failed

  let on_peer_up t ctx recovered =
    if not t.cfg.detector then handle_peer_up t ctx recovered

  (* Recovery protocol (paper §7): classify the stable log.  Before the
     commit point — no yes vote on the log — the site aborts unilaterally,
     provided its protocol gives it a veto at all; otherwise, and after a
     yes vote, it must learn the outcome from its peers. *)
  let on_restart t ctx =
    let rt = rt t ctx.Sim.World.self in
    rt.ever_crashed <- true;
    rt.inbox <- Core.Message.Multiset.empty;
    rt.mode <- Normal;
    rt.campaigning <- false;
    rt.firing <- false;
    rt.query_attempts <- 0;
    (* volatile memory did not survive: the decision must be re-derived
       from the stable log.  With a lossless log this is a no-op (the
       [Decided] record restores it below); with a lossy one, keeping the
       pre-crash [outcome] would resurrect a decision the disk lost —
       exactly what the durability oracle exists to catch, not mask. *)
    rt.outcome <- None;
    (match Wal.last_state rt.wal with Some s -> rt.state <- s | None -> ());
    rt.steps <-
      List.length
        (List.filter (function Wal.Transitioned _ -> true | _ -> false) (Wal.records rt.wal));
    (match Wal.decided rt.wal with
    | Some o ->
        rt.outcome <- Some o;
        rt.state <- final_state_for rt.automaton o
    | None -> (
        match Core.Types.outcome_of_kind (Core.Automaton.kind_of rt.automaton rt.state) with
        | Some o ->
            (* The forced log reached a final state before the crash: the
               decision stands even if the [Decided] record is missing. *)
            finalize t rt o
        | None ->
            if is_ro t rt.site then begin
              (* a read-only site's log is volatile by design, so its
                 silence proves nothing — in particular not that it never
                 voted: a unilateral abort here could contradict a commit
                 the cohort reached on its (lost) yes vote *)
              record t "read-only site %d recovers: must ask peers" rt.site;
              enter_stalled t ctx rt
            end
            else if (not (Wal.voted_yes rt.wal)) && site_has_veto rt.automaton then begin
              record t "site %d recovers before its commit point: unilateral abort" rt.site;
              finalize t rt Core.Types.Aborted
            end
            else begin
              record t "site %d recovers after voting yes: must ask peers" rt.site;
              enter_stalled t ctx rt
            end));
    (* A crash-recover window shorter than the detection delay is
       invisible: the oracle samples liveness when the report comes due,
       finds the site back up, and stays silent, so peers never run the
       termination protocol and keep waiting on whatever message died
       with the crash.  When the stable log let this site resolve
       locally (a [Decided] record, a final logged state, or the
       unilateral abort above), re-announce the outcome: [Decide] is
       idempotent, and the broadcast replaces the phase the crash
       swallowed.  A site that could not resolve locally stalls and
       queries instead, and the query-as-failure-evidence rule covers
       that half of the masked window. *)
    (match rt.outcome with
    | Some o ->
        record t "recovered site %d re-announces %s" rt.site
          (match o with Core.Types.Committed -> "COMMIT" | Aborted -> "ABORT");
        rt.announced <- Some o;
        List.iter
          (fun dst ->
            Sim.World.send ctx ~dst
              (Msg.Decide { outcome = o; epoch = max rt.lead_epoch rt.epoch_seen }))
          (List.filter (fun s -> s <> rt.site) (Sim.World.sites t.world))
    | None -> ());
    Sim.Metrics.incr (Sim.World.metrics t.world) "recoveries_processed"

  (* wire the site's log into the run: force counters, and a site-bound
     timer for deferred group-commit flushes (so a pending batch dies
     with the site's crash).  Re-done on restart — the crashed
     incarnation's timers died with it. *)
  let attach_wal t ctx =
    Wal.attach
      (Wal.Store.log t.store ~site:ctx.Sim.World.self)
      ~metrics:(Sim.World.metrics t.world)
      ~schedule:(fun delay k -> ignore (Sim.World.set_timer ctx ~delay k))

  let handlers t _site : Msg.t Sim.World.handlers =
    {
      Sim.World.on_start =
        (fun ctx ->
          attach_wal t ctx;
          match t.detector with Some d -> Sim.Detector.start d ctx | None -> ());
      on_message =
        (fun ctx ~src msg ->
          (match t.detector with
          | Some d -> Sim.Detector.heard d ~self:ctx.Sim.World.self ~src
          | None -> ());
          on_message t ctx ~src msg);
      on_peer_down = (fun ctx failed -> on_peer_down t ctx failed);
      on_peer_up = (fun ctx recovered -> on_peer_up t ctx recovered);
      on_restart =
        (fun ctx ->
          attach_wal t ctx;
          on_restart t ctx;
          (* the crashed incarnation's detector timers died with it *)
          match t.detector with Some d -> Sim.Detector.start d ctx | None -> ());
    }
end

(** [run cfg] executes one distributed transaction under the configured
    protocol, votes and failure plan, and reports the outcome at every
    site. *)
let run (cfg : config) : result =
  let protocol = cfg.rulebook.Rulebook.protocol in
  let n = Core.Protocol.n_sites protocol in
  let world = Sim.World.create ~n_sites:n ~seed:cfg.seed ~msg_to_string:Msg.to_string () in
  Sim.World.set_tracing world cfg.tracing;
  let store =
    Wal.Store.create ~durable:cfg.durable_wal ?group_commit:cfg.group_commit
      ~sync_latency:cfg.sync_latency ~n_sites:n ()
  in
  (* storage faults from the plan arm each site's private disk *)
  List.iter
    (fun site ->
      match
        List.filter_map
          (fun (s, inj) -> if s = site then Some inj else None)
          cfg.plan.Failure_plan.disk_faults
      with
      | [] -> ()
      | injs -> Wal.set_faults (Wal.Store.log store ~site) injs)
    (Wal.Store.sites store);
  (* a crash takes the log down with the site: the unsynced tail is lost
     (with whatever storage faults are armed) and the log rebuilds itself
     from the durable image *)
  Sim.World.set_crash_hook world (fun site ->
      match Wal.crash (Wal.Store.log store ~site) with
      | None -> ()
      | Some rep ->
          Sim.Metrics.incr (Sim.World.metrics world) "wal_repairs";
          Sim.World.record world "site %d wal repair: %d survived, %d lost, %d bytes dropped%s"
            site rep.Wal.survived rep.Wal.lost_records rep.Wal.dropped_bytes
            (match rep.Wal.reason with Some r -> " (" ^ r ^ ")" | None -> ""));
  let rts =
    Array.init n (fun i ->
        let site = i + 1 in
        let automaton = Core.Protocol.automaton protocol site in
        let wal = Wal.Store.log store ~site in
        Sim.Metrics.incr (Sim.World.metrics world) "wal_appends";
        Wal.force wal
          (Wal.Began { protocol = protocol.Core.Protocol.name; initial = automaton.Core.Automaton.initial });
        {
          site;
          automaton;
          wal;
          state = automaton.Core.Automaton.initial;
          inbox = Core.Message.Multiset.empty;
          steps = 0;
          outcome = None;
          ever_crashed = false;
          mode = Normal;
          query_attempts = 0;
          down_view = [];
          tainted_view = [];
          decided_at = None;
          epoch_seen = -1;
          campaigning = false;
          lead_epoch = site - 1;
          impaired = false;
          sent_yes = false;
          announced = None;
          firing = false;
        })
  in
  let exec =
    {
      Exec.cfg;
      protocol;
      world;
      store;
      rts;
      query_rng = Sim.Rng.split (Sim.Rng.create ~seed:cfg.seed);
      detector = None;
      directive_epochs = [];
    }
  in
  if cfg.detector then
    exec.Exec.detector <-
      Some
        (Sim.Detector.create ~heartbeat_period:cfg.heartbeat_period
           ~suspicion_timeout:cfg.suspicion_timeout ~world ~heartbeat:Msg.Heartbeat
           ~is_heartbeat:(function Msg.Heartbeat -> true | _ -> false)
           ~on_suspect:(fun ctx s -> Exec.handle_peer_down exec ctx s)
           ~on_unsuspect:(fun ctx s -> Exec.handle_peer_up exec ctx s)
           ());
  (* Environment input: the initial transaction requests. *)
  List.iter
    (fun m -> Sim.World.inject world ~dst:m.Core.Message.dst ~at:0.01 (Msg.Proto m))
    protocol.Core.Protocol.initial_network;
  (* Timed failures and recoveries. *)
  List.iter (fun (s, at) -> Sim.World.schedule_crash world ~at s) cfg.plan.Failure_plan.timed_crashes;
  List.iter
    (fun (s, at) -> Sim.World.schedule_recovery world ~at s)
    cfg.plan.Failure_plan.recoveries;
  List.iter
    (fun (st : Failure_plan.storm_spec) ->
      List.iter
        (fun (site, crash_at, recover_at) ->
          Sim.World.schedule_crash world ~at:crash_at site;
          Sim.World.schedule_recovery world ~at:recover_at site)
        (Failure_plan.storm_events st))
    cfg.plan.Failure_plan.storms;
  (match cfg.partition with
  | Some (from_t, until_t, groups) when groups <> [] ->
      Sim.World.schedule_partition world ~from_t ~until_t groups
  | Some _ | None -> ());
  List.iter
    (fun (p : Failure_plan.partition_spec) ->
      if p.groups <> [] then
        Sim.World.schedule_partition world ~from_t:p.from_t ~until_t:p.until_t p.groups)
    cfg.plan.Failure_plan.partitions;
  Sim.World.set_msg_faults world cfg.plan.Failure_plan.msg_faults;
  (* detector-stressing faults: scheduled regardless of mode (a latency
     spike perturbs message timing either way; heartbeat loss is inert
     without a detector) *)
  List.iter
    (fun (d : Failure_plan.delay_spec) ->
      Sim.World.schedule_latency_spike world ~site:d.Failure_plan.d_site
        ~from_t:d.Failure_plan.d_from ~until_t:d.Failure_plan.d_until
        ~extra:d.Failure_plan.d_extra)
    cfg.plan.Failure_plan.delay_spikes;
  List.iter
    (fun (w : Failure_plan.window_spec) ->
      Sim.World.schedule_stall world ~site:w.Failure_plan.w_site ~from_t:w.Failure_plan.w_from
        ~until_t:w.Failure_plan.w_until)
    cfg.plan.Failure_plan.stalls;
  List.iter
    (fun (w : Failure_plan.window_spec) ->
      Sim.World.schedule_hb_loss world ~site:w.Failure_plan.w_site ~from_t:w.Failure_plan.w_from
        ~until_t:w.Failure_plan.w_until)
    cfg.plan.Failure_plan.hb_losses;
  ignore (Sim.World.run world ~handlers:(Exec.handlers exec) ~until:cfg.until ());
  (* ---- reporting ---- *)
  let wal_outcome (rt : site_rt) =
    match Wal.decided rt.wal with
    | Some o -> Some o
    | None -> (
        match Wal.last_state rt.wal with
        | Some s -> Core.Types.outcome_of_kind (Core.Automaton.kind_of rt.automaton s)
        | None -> None)
  in
  let reports =
    Array.to_list rts
    |> List.map (fun (rt : site_rt) ->
           {
             site = rt.site;
             outcome = rt.outcome;
             wal_outcome = wal_outcome rt;
             final_state = rt.state;
             operational = Sim.World.is_alive world rt.site;
             ever_crashed = rt.ever_crashed || not (Sim.World.is_alive world rt.site);
             decided_at = rt.decided_at;
             sent_yes = rt.sent_yes;
             announced = rt.announced;
           })
  in
  let outcomes = List.filter_map (fun r -> r.outcome) reports in
  let has_commit = List.mem Core.Types.Committed outcomes
  and has_abort = List.mem Core.Types.Aborted outcomes in
  let operational_undecided =
    List.filter (fun r -> r.operational && (not r.ever_crashed) && r.outcome = None) reports
  in
  let metrics = Sim.World.metrics world in
  (* a site that crashed mid-measure leaves a dangling timer_start:
     account it before anything snapshots or merges this registry *)
  Sim.Metrics.drain_timers metrics;
  {
    reports;
    messages_sent = Sim.Metrics.counter metrics "messages_sent";
    messages_delivered = Sim.Metrics.counter metrics "messages_delivered";
    duration =
      List.fold_left (fun acc r -> match r.decided_at with Some x -> max acc x | None -> acc) 0.0
        reports;
    global_outcome =
      (if has_commit then Some Core.Types.Committed
       else if has_abort then Some Core.Types.Aborted
       else None);
    consistent = not (has_commit && has_abort);
    blocked_operational = List.length operational_undecided;
    all_operational_decided = operational_undecided = [];
    store;
    directive_epochs = List.rev exec.Exec.directive_epochs;
    trace = Sim.World.trace_entries world;
    metrics_json = Sim.Metrics.to_json metrics;
    run_metrics = metrics;
  }

let pp_result ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun s ->
      Fmt.pf ppf "site %d: %s state=%s%s%s@," s.site
        (match s.outcome with
        | Some Core.Types.Committed -> "COMMITTED"
        | Some Core.Types.Aborted -> "ABORTED"
        | None -> "undecided")
        s.final_state
        (if s.operational then "" else " (down)")
        (if s.ever_crashed then " (crashed)" else ""))
    r.reports;
  Fmt.pf ppf "messages: %d sent, %d delivered@,consistent: %b, blocked operational: %d@]"
    r.messages_sent r.messages_delivered r.consistent r.blocked_operational
