(** Failure injection plans: which sites crash, when, and how cleanly —
    pinned to protocol progress (a site's k-th transition, possibly
    part-way through its message sends: the paper's partially completed
    transition) or to simulation time.  Recoveries are timed. *)

type crash_mode =
  | Before_transition  (** crash before logging/acting on the transition *)
  | After_logging of int
      (** complete the forced log write, then send only the first [k]
          messages of the transition before crashing *)
  | After_transition

val pp_crash_mode : Format.formatter -> crash_mode -> unit
val show_crash_mode : crash_mode -> string
val equal_crash_mode : crash_mode -> crash_mode -> bool

type step_crash = { site : Core.Types.site; step : int; mode : crash_mode }

val pp_step_crash : Format.formatter -> step_crash -> unit

type partition_spec = { from_t : float; until_t : float; groups : Core.Types.site list list }

val pp_partition_spec : Format.formatter -> partition_spec -> unit
val equal_partition_spec : partition_spec -> partition_spec -> bool

type delay_spec = {
  d_site : Core.Types.site;
  d_from : float;
  d_until : float;
  d_extra : float;  (** added to every message touching the site in the window *)
}

val pp_delay_spec : Format.formatter -> delay_spec -> unit
val equal_delay_spec : delay_spec -> delay_spec -> bool

type window_spec = { w_site : Core.Types.site; w_from : float; w_until : float }

val pp_window_spec : Format.formatter -> window_spec -> unit
val equal_window_spec : window_spec -> window_spec -> bool

type storm_spec = {
  s_site : Core.Types.site;
  s_first : float;  (** first wave's crash time *)
  s_waves : int;
  s_period : float;  (** crash-to-crash spacing between waves *)
  s_down : float;  (** downtime per wave, [< s_period] *)
}

val pp_storm_spec : Format.formatter -> storm_spec -> unit
val equal_storm_spec : storm_spec -> storm_spec -> bool

type t = {
  step_crashes : step_crash list;
  timed_crashes : (Core.Types.site * float) list;
  recoveries : (Core.Types.site * float) list;
  move_crashes : (Core.Types.site * int) list;
      (** crash a backup after sending the first [k] Move_to messages *)
  decide_crashes : (Core.Types.site * int) list;
      (** crash a backup after sending the first [k] Decide messages *)
  partitions : partition_spec list;
  msg_faults : (int * Sim.World.msg_fault) list;
      (** the nth global send attempt suffers the paired fault *)
  disk_faults : (Core.Types.site * Sim.Disk.injection) list;
      (** storage faults armed on the site's log device *)
  delay_spikes : delay_spec list;  (** latency-spike windows *)
  stalls : window_spec list;  (** slow-site ("GC pause") windows *)
  hb_losses : window_spec list;  (** heartbeat-loss bursts *)
  acceptor_crashes : (Core.Types.site * float) list;
      (** timed crashes aimed at Paxos-Commit acceptor sites *)
  lease_faults : float list;
      (** leader-lease expiries: a standby acceptor opens a higher-ballot
          recovery round while the leader is still alive *)
  storms : storm_spec list;
      (** crash-recover storms: repeated crash/recover waves on one site,
          expanded at lowering time via {!Sim.Nemesis.storm_events} *)
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val none : t

val make :
  ?step_crashes:step_crash list ->
  ?timed_crashes:(Core.Types.site * float) list ->
  ?recoveries:(Core.Types.site * float) list ->
  ?move_crashes:(Core.Types.site * int) list ->
  ?decide_crashes:(Core.Types.site * int) list ->
  ?partitions:partition_spec list ->
  ?msg_faults:(int * Sim.World.msg_fault) list ->
  ?disk_faults:(Core.Types.site * Sim.Disk.injection) list ->
  ?delay_spikes:delay_spec list ->
  ?stalls:window_spec list ->
  ?hb_losses:window_spec list ->
  ?acceptor_crashes:(Core.Types.site * float) list ->
  ?lease_faults:float list ->
  ?storms:storm_spec list ->
  unit ->
  t

val crash_at_step : site:Core.Types.site -> step:int -> mode:crash_mode -> t
(** The simplest single-crash plan. *)

val find_step_crash : t -> site:Core.Types.site -> step:int -> crash_mode option
val crashing_sites : t -> Core.Types.site list

val storm_events : storm_spec -> (Core.Types.site * float * float) list
(** [(site, crash_at, recover_at)] per wave — {!Sim.Nemesis.storm_events}
    on the spec, so runtimes lower plan storms exactly as the kv chaos
    layer lowers schedule storms. *)

val fault_count : t -> int
(** Total number of discrete faults (every clause counts, recoveries
    included) — the size a chaos counterexample is shrunk against. *)

val of_schedule : Sim.Nemesis.schedule -> t
(** Lower a generated nemesis schedule into an executable plan:
    [Step_crash] becomes a [step_crash] ([sent = None] ⇒
    [Before_transition], [Some j] ⇒ [After_logging j]), [Backup_crash]
    becomes a move/decide crash, and the rest map one-to-one. *)

val to_schedule : t -> Sim.Nemesis.schedule
(** Inverse of {!of_schedule} on its image, family-grouped in clause
    order — [of_schedule (to_schedule p) = p] for any plan without
    [After_transition] step crashes (which {!of_schedule} never emits;
    they lower, lossily, to a before-transition crash).  Lets harnesses
    that consume schedules — the kv chaos layer — replay corpus entries
    persisted as plan text. *)

exception Parse_error of string

val to_string : t -> string
(** One clause per fault, "; "-separated — e.g.
    ["crash site=1 at=3.5; msg nth=4 fault=dup"] — printable into a
    regression test and read back by {!of_string} exactly
    ([of_string (to_string p)] equals [p]). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; clauses separated by ';' or newlines.
    Total: malformed input becomes [Error message] — what the CLI's
    [--plan] and any pasted counterexample should go through. *)

val of_string_exn : string -> t
(** As {!of_string} but raising {!Parse_error} — for pinned plans in
    tests where a parse failure is itself the test failure. *)

val unsupported_clauses : protocol:string -> t -> string list
(** Clauses the named protocol family cannot execute, one human-readable
    message each: [move-crash] needs a 3PC protocol, [decide-crash]
    needs 3PC or Paxos Commit, [acceptor-crash]/[lease-fault] need Paxos
    Commit.  Empty means every clause in the plan is runnable — what the
    CLI's [--plan] checks before launching a run. *)
