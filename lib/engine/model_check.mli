(** Exhaustive model checking of a commit protocol {e with failures} and
    the termination protocol on top: builds the failure-extended reachable
    state graph the paper deliberately avoids, for small site counts and a
    bounded number of crashes, and verifies over every interleaving

    - {b safety}: no reachable global state mixes a committed site with an
      aborted one (crashed sites count by their last forced-log state);
    - {b termination}: in every terminal state every operational site has
      decided (holds for nonblocking protocols; 2PC exhibits blocked
      terminals instead).

    The model includes partially completed transitions (log forced, any
    prefix of the emitted messages sent), asynchronous per-site failure
    detection, backup election by rank, the two-phase backup protocol
    driven by the {!Rulebook}, partial broadcasts by crashing backups, and
    cascading backup failures.  Recoveries are not modelled.

    Provenance note: an earlier version of this model (and of the runtime)
    let a site's commit-protocol FSA keep running after termination began;
    the checker produced a genuine split-brain counterexample — a
    participant drifting out of its moved-to state by consuming a stale
    in-flight [prepare].  Both now freeze the FSA once a failure is
    detected, and the checker passes.

    The exploration engine runs over {!Core.Intern}'s packed int-array
    encoding (interned ids, one-int messages, memoized FNV hashing, a
    queue-of-indices frontier); the original string-keyed engine is kept
    as {!Model_check_ref} and the differential tests assert both agree. *)

type st = {
  locals : string array;
  voted : bool array;
  alive : bool array;
  aware : bool array;
  crashes_left : int;
  network : Core.Message.Multiset.t;
  moving : (string * int list) option array;
  polling : (int list * (int * string) list) option array;
  polled : bool array;
  epoch : int array;
      (** highest-ranked backup each site has obeyed (election epoch) *)
}

type config = {
  rulebook : Rulebook.t;
  max_crashes : int;
  limit : int;  (** abort exploration past this many states *)
  rule : [ `Skeen | `Quorum of int ];
      (** how backups decide: the paper's rule, or quorum termination
          (single poll per backup; a below-quorum backup stays blocked,
          so quorum runs may legitimately report blocked terminals) *)
}

type report = {
  explored : int;
  inconsistent : st list;
  blocked_terminals : st list;
  safe : bool;
  nonblocking : bool;
  counterexample : st list option;
      (** path from the initial state to the first inconsistency *)
}

val run : config -> report
(** @raise Failure when the state limit is exceeded. *)

val pp_st : Format.formatter -> st -> unit
val pp_report : Format.formatter -> report -> unit

(** The packed canonical state encoding used internally for
    deduplication, exposed for round-trip testing: [decode ctx
    (encode ctx st)] must reproduce [st] exactly (including the order of
    in-flight move/poll bookkeeping lists, which is part of state
    identity). *)
module Packed : sig
  type ctx

  val ctx : Rulebook.t -> ctx
  val encode : ctx -> st -> int array
  val decode : ctx -> int array -> st
end
