(** Paxos Commit (Gray & Lamport) on the engine harness: one Paxos
    consensus instance per participant vote, replicated across [2f+1]
    acceptor sites, so the transaction manager is no longer a single
    point of blocking.

    Site 1 is the transaction manager (TM) and leader at ballot 0; every
    site is a resource manager (RM) holding one vote.  Acceptors are the
    [2f+1] highest-numbered sites ([{1}] when [f = 0] — the degenerate
    2PC configuration, where the TM's own log is the only replica).  An
    RM's yes vote is a ballot-0 phase-2a message for its own instance,
    sent directly to the acceptors; an instance is chosen once [f+1]
    acceptors have accepted, and the transaction commits iff every
    instance chooses Prepared.

    Recovery: when the current leader is reported failed (or a leader
    lease expires while it is alive), the lowest-numbered live standby
    among TM-and-acceptors opens phase 1 at a higher ballot.  Ballots
    reuse the election-epoch encoding [round * n_sites + (site - 1)], so
    they are globally unique per site and land in
    [Runtime.result.directive_epochs] for the split-brain oracle.  The
    new leader adopts the highest-ballot accepted value of each
    instance from any [f+1] phase-1b replies and proposes Aborted for
    free instances — the paper-faithful nonblocking guarantee up to [f]
    acceptor failures.

    Produces an ordinary {!Runtime.result}, so every chaos oracle in
    {!Chaos} applies unchanged. *)

type config = {
  n_sites : int;
  f : int;  (** tolerated acceptor failures; acceptor set has [2f+1] sites *)
  votes : (Core.Types.site * Core.Types.vote) list;  (** default: everyone votes yes *)
  plan : Failure_plan.t;
  seed : int;
  tracing : bool;
  until : float;
  query_interval : float;  (** base delay of the retry/query backoff *)
  query_backoff_cap : float;
}

val config :
  ?votes:(Core.Types.site * Core.Types.vote) list ->
  ?plan:Failure_plan.t ->
  ?seed:int ->
  ?tracing:bool ->
  ?until:float ->
  ?query_interval:float ->
  ?query_backoff_cap:float ->
  n_sites:int ->
  f:int ->
  unit ->
  config
(** Raises [Invalid_argument] unless [2 <= n_sites] and
    [0 <= f && (f = 0 || 2*f + 1 <= n_sites)]. *)

val acceptors : n_sites:int -> f:int -> Core.Types.site list
(** The acceptor set: [{1}] when [f = 0], else the [2f+1]
    highest-numbered sites. *)

val run : config -> Runtime.result
(** Execute one distributed transaction under Paxos Commit.
    Deterministic in the seed.  Plan clauses honored: step crashes
    (pinned to a site's vote transitions), timed crashes and recoveries,
    acceptor crashes, lease faults, decide crashes (leader crashes after
    [k] Outcome sends), partitions, message faults, disk faults, delay
    spikes, stalls.  [move_crashes] name a 3PC termination phase that
    does not exist here and are ignored — the CLI rejects them up front
    via {!Failure_plan.unsupported_clauses}. *)

val violations : ?metrics:Sim.Metrics.t -> cfg:config -> Runtime.result -> Chaos.violation list
(** The five {!Chaos} oracles, with one Paxos-specific exemption:
    progress violations are waived when more than [f] acceptors are down
    at the end of the run — beyond the fault model the protocol promises
    liveness for.  Safety oracles apply unconditionally. *)

val sweep_profile : n_sites:int -> f:int -> Sim.Nemesis.profile
(** The default chaos profile for Paxos sweeps: the correctness profile
    plus acceptor crashes (capped at [f]) and lease faults; backup-phase
    crashes (a termination-protocol notion) are off. *)

type run_outcome = {
  ro_seed : int;
  ro_plan : Failure_plan.t;
  ro_result : Runtime.result;
  ro_violations : Chaos.violation list;
}

val run_one :
  ?metrics:Sim.Metrics.t ->
  ?profile:Sim.Nemesis.profile ->
  ?until:float ->
  n_sites:int ->
  f:int ->
  k:int ->
  seed:int ->
  unit ->
  run_outcome
(** Generate the seed's fault schedule from the profile (default
    {!sweep_profile}), lower it to a plan, run it, judge it.
    Deterministic. *)

type sweep_summary = {
  ps_seeds_run : int;
  ps_failing : (int * Chaos.violation list * Failure_plan.t) list;
      (** seeds with surviving violations, in seed order *)
  ps_metrics : Sim.Metrics.t;
}

val sweep :
  ?metrics:Sim.Metrics.t ->
  ?profile:Sim.Nemesis.profile ->
  ?until:float ->
  ?seed_base:int ->
  n_sites:int ->
  f:int ->
  k:int ->
  seeds:int ->
  unit ->
  sweep_summary
(** Run seeds [seed_base .. seed_base + seeds - 1] sequentially. *)
