(** Per-site write-ahead log on stable storage: records are serialized
    through a binary codec, framed with a length prefix + CRC-32, and
    written to a simulated {!Sim.Disk} whose sync barrier defines what a
    crash preserves.  {!append} alone is not durable — the runtime must
    {!force} (append + sync) before any externally visible action, the
    paper's forced write.  On crash the log replays itself from the
    durable image, truncating at the first invalid frame and reporting
    what was repaired. *)

type record =
  | Began of { protocol : string; initial : string }
  | Transitioned of { to_state : string; vote : Core.Types.vote option }
      (** a protocol FSA transition, logged before its messages are sent *)
  | Moved of { to_state : string }
      (** termination phase 1: adopted the backup's state *)
  | Decided of Core.Types.outcome

val pp_record : Format.formatter -> record -> unit
val show_record : record -> string
val equal_record : record -> record -> bool

val to_bytes : record -> Bytes.t
(** The on-disk payload (framing is {!Sim.Disk.Frame}'s job). *)

val of_bytes : Bytes.t -> (record, string) result
(** Total inverse of {!to_bytes}: [of_bytes (to_bytes r) = Ok r]; any
    truncated or mangled payload is an [Error], never an exception. *)

type repair = {
  survived : int;  (** records readable from the durable image after the crash *)
  lost_records : int;  (** appended records that did not survive *)
  dropped_bytes : int;  (** bytes the recovery scan cut from the durable image *)
  reason : string option;
      (** why the scan truncated ([None]: clean loss at the sync boundary) *)
}

val pp_repair : Format.formatter -> repair -> unit
val show_repair : repair -> string
val equal_repair : repair -> repair -> bool

type t

(** Group-commit knobs: at most [max_batch] records per shared sync, at
    most [max_wait] simulated seconds of waiting for stragglers while
    the device is idle. *)
type group_commit = Sim.Batch.group = { max_batch : int; max_wait : float }

val create :
  ?seed:int -> ?durable:bool -> ?group_commit:group_commit -> ?sync_latency:float -> unit -> t
(** [durable:false] is the PR 3 in-memory log (sync free, crash
    lossless), kept as the benchmark baseline.  [seed] feeds only the
    disk's private fault stream.  [group_commit] coalesces concurrent
    {!force_k} calls into shared syncs; [sync_latency] charges simulated
    seconds per sync (the cost group commit amortizes).  With neither
    (the default) every force is a synchronous sync and all prior
    behaviour is byte-identical. *)

val attach :
  ?on_drain:(unit -> unit) ->
  t ->
  metrics:Sim.Metrics.t ->
  schedule:(float -> (unit -> unit) -> unit) ->
  unit
(** Wire the log into a run: forces count into [metrics] (wal_forces,
    wal_group_flushes, group_batch_size) and deferred flushes ride
    [schedule] — pass a site-bound timer so pending batches die with the
    site.  [on_drain] fires after each batch's callbacks complete. *)

val append : t -> record -> unit
(** Volatile until the next {!sync}. *)

val sync : t -> unit

val force : t -> record -> unit
(** [append] + [sync]: the paper's "force a record to stable storage".
    With a batcher armed, flushes through synchronously (draining the
    queue ahead of it first). *)

val force_k : t -> record -> (unit -> unit) -> unit
(** Asynchronous force: append now, run the callback once the record is
    on stable storage.  Equals [force t r; k ()] on the fast path; under
    group commit / sync latency the callback waits for the covering
    batch, and a crash in between loses both record and callback. *)

val after_durable : t -> (unit -> unit) -> unit
(** Run the callback once everything appended so far is durable —
    immediately when nothing is pending.  For reply-from-log paths that
    must not expose a not-yet-durable record. *)

val pending_forces : t -> int
(** Forces whose completion callback has not yet fired. *)

val crash : t -> repair option
(** Lose the unsynced tail (with whatever storage faults are armed),
    rescan the durable image, truncate at the first invalid frame, and
    rebuild the in-memory view from what survived — after this the
    volatile view {e is} the durable view.  [Some repair] iff anything
    was lost. *)

val set_faults : t -> Sim.Disk.injection list -> unit
val disk : t -> Sim.Disk.t option

val repairs : t -> repair list
(** Oldest first; one entry per crash that lost records or bytes. *)

val records : t -> record list
(** Oldest first. *)

val length : t -> int

val last_state : t -> string option
(** Last logged local state, replayed in order. *)

val voted_yes : t -> bool
(** Whether the site cast a yes vote before the log ends — the "commit
    point" question for a participant. *)

val decided : t -> Core.Types.outcome option
val pp : Format.formatter -> t -> unit

(** Stable storage for a whole simulated system: one log per site,
    surviving that site's crashes.  Each site's disk gets a private
    fault stream seeded by site id. *)
module Store : sig
  type wal = t
  type t

  val create :
    ?durable:bool -> ?group_commit:group_commit -> ?sync_latency:float -> n_sites:int -> unit -> t
  val log : t -> site:Core.Types.site -> wal
  val sites : t -> Core.Types.site list
  val iter : (Core.Types.site -> wal -> unit) -> t -> unit
  val fold : ('a -> Core.Types.site -> wal -> 'a) -> 'a -> t -> 'a
end
