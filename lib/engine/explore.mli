(** Coverage-guided exploration of the fault-schedule space: a fuzzer
    over {!Failure_plan}s.

    Runs are summarized by {!Sim.Coverage} fingerprints; plans that
    contribute unseen features join a corpus; candidates are mutants of
    corpus entries (add / remove / retime / retarget a fault clause,
    widen a window, splice two plans).  Violations shrink through the
    harness's greedy shrinker; the corpus persists as replayable plan
    text files.  The whole search is a pure function of
    [(harness, mode, budget, seed)], whatever [workers] is. *)

type family =
  | Step_crashes
  | Timed_crashes
  | Recoveries
  | Move_crashes
  | Decide_crashes
  | Msg_faults
  | Delay_spikes
  | Stalls
  | Hb_losses
  | Acceptor_crashes
  | Lease_faults
  | Storms
      (** Clause families a mutation may {e add}.  Partitions, drops and
          disk faults are deliberately not here: they violate the
          paper's model, so they stay ablation-only. *)

val pp_family : Format.formatter -> family -> unit
val equal_family : family -> family -> bool

val protocol_families : protocol:string -> family list
(** The families a protocol can execute — the complement of
    {!Failure_plan.unsupported_clauses}: 3PC adds move/decide crashes,
    Paxos Commit adds decide crashes, acceptor crashes and lease
    faults. *)

type report = {
  fingerprint : string list;  (** {!Sim.Coverage} features of the run *)
  violations : (string * string) list;  (** (oracle name, detail) *)
}

type harness = {
  name : string;
  n_sites : int;
  horizon : float;  (** time scale mutations draw crash/window times from *)
  families : family list;  (** clause families mutations may add *)
  run : seed:int -> Failure_plan.t -> report;
  shrink : seed:int -> oracle:string -> Failure_plan.t -> Failure_plan.t * int;
  random_plan : seed:int -> Failure_plan.t;
      (** the equal-budget baseline: what one classic chaos-sweep seed
          would have executed *)
}
(** What the search needs from a target system.  The engine harness is
    {!engine_harness}; the database harness is built at the bin/bench
    layer (the kv library does not depend on this one). *)

val mutate :
  Sim.Rng.t -> n_sites:int -> horizon:float -> families:family list -> Failure_plan.t -> Failure_plan.t
(** One mutation step: add a random clause from [families], or remove /
    retime / retarget / widen an existing one (via the plan's
    {!Failure_plan.to_schedule} view).  Never introduces a clause family
    outside [families]. *)

val splice : Sim.Rng.t -> Failure_plan.t -> Failure_plan.t -> Failure_plan.t
(** Crossover: an independent coin per parent fault. *)

type bug = {
  bug_oracle : string;
  bug_detail : string;
  bug_found_at : int;  (** global run index that first tripped it *)
  bug_plan : Failure_plan.t;  (** as found *)
  bug_shrunk : Failure_plan.t;
  bug_shrink_runs : int;
}

type result = {
  harness_name : string;
  mode : [ `Guided | `Random ];
  budget : int;
  runs : int;
  coverage : int;  (** distinct features at the end *)
  features : string list;
  curve : (int * int) list;  (** (runs completed, cumulative coverage) per batch *)
  corpus : (Failure_plan.t * int) list;
      (** admitted plans in admission order, with the novelty each brought *)
  violating_runs : int;
  bugs : bug list;  (** deduplicated, shrunk; at most [max_shrunk] *)
}

val mode_name : [ `Guided | `Random ] -> string

val search :
  ?workers:int ->
  ?batch:int ->
  ?max_shrunk:int ->
  ?seed:int ->
  ?initial:Failure_plan.t list ->
  ?progress:(runs:int -> coverage:int -> bugs:int -> unit) ->
  harness ->
  mode:[ `Guided | `Random ] ->
  budget:int ->
  unit ->
  result
(** Run [budget] plans.  [`Guided] mutates the novelty-ranked corpus
    (bootstrapping from [initial] plans, or random plans while the
    corpus is empty); [`Random] runs [harness.random_plan] on seeds
    [0 .. budget-1] — the classic sweep as an equal-budget baseline.
    Candidates are derived sequentially from the search rng, evaluated
    across domains via {!Sim.Sweep.map} in batches of [batch] (default
    16), and folded in order: the result is byte-identical whatever
    [workers] (default 1) is.  At most [max_shrunk] (default 4) distinct
    violations are shrunk; [progress] fires after each batch. *)

val replay :
  ?workers:int -> harness -> Failure_plan.t list -> (Failure_plan.t * report) list
(** Run each plan once (seed = list index) and report — corpus
    regression replay. *)

val save_corpus : dir:string -> result -> unit
(** Write the corpus as [NNN.plan] files (admission order) plus
    [bug-<i>-<oracle>.plan] shrunk violations — each one line of
    {!Failure_plan.to_string}, ready for [--replay] or a pinned test. *)

val load_corpus : dir:string -> (string * Failure_plan.t) list
(** [(filename, plan)] for every [*.plan] file, sorted by name; [[]] if
    [dir] does not exist.
    @raise Failure_plan.Parse_error on a malformed entry. *)

val engine_harness :
  ?until:float ->
  ?termination:Runtime.termination_rule ->
  ?presumption:Runtime.presumption ->
  ?read_only:Core.Types.site list ->
  ?group_commit:Wal.group_commit ->
  ?sync_latency:float ->
  ?detector:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?election_timeout:float ->
  ?fencing:bool ->
  ?profile:Sim.Nemesis.profile ->
  ?k:int ->
  Rulebook.t ->
  harness
(** The protocol-engine harness over {!Chaos}: [run] executes a plan
    under the five oracles and fingerprints it ({!Chaos.fingerprint_of});
    [random_plan] reproduces {!Chaos.run_one}'s seed discipline, so the
    [`Random] baseline is exactly the classic chaos sweep. *)
