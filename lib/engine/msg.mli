(** Wire messages exchanged by the protocol runtime.  Termination
    directives carry the issuing backup's election epoch
    ([round * n_sites + (site - 1)]) so participants can fence directives
    from deposed-but-alive backups; heartbeat and election messages exist
    only in timeout-detector mode. *)

type t =
  | Proto of Core.Message.t  (** a commit-protocol FSA message *)
  | Move_to of { target : string; epoch : int }
      (** termination phase 1: adopt this local state *)
  | Move_ack of string
  | Decide of { outcome : Core.Types.outcome; epoch : int }
      (** termination phase 2 / final notice *)
  | Query_outcome  (** recovery / blocked-site query *)
  | Outcome_reply of Core.Types.outcome option
  | State_req of { epoch : int }
      (** quorum termination: a backup polls participant states *)
  | State_rep of string
  | Heartbeat  (** detector mode: periodic evidence of life *)
  | Elect of { epoch : int }
      (** detector mode: candidate asks better-ranked sites to object *)
  | Elect_ack  (** a better-ranked live site will lead instead *)
  | Epoch_reject of { epoch : int }
      (** a directive was fenced; carries the participant's current epoch *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val to_string : t -> string
