(** Reference implementation of {!Model_check}: the original
    string-keyed checker, kept verbatim as the differential baseline for
    the interned engine (identical types, identical semantics, orders of
    magnitude slower).  Used by the differential tests, the bench-smoke
    cross-check, and the state-space bench's speedup measurement. *)

val run : Model_check.config -> Model_check.report
