(** Coverage-guided exploration of the fault-schedule space: a fuzzer
    whose inputs are {!Failure_plan}s instead of byte strings.

    The classic chaos sweeps sample schedules independently at random,
    so the rare interleavings Skeen's nonblocking claims live or die on
    are reached last.  This module searches instead: every run is
    summarized by a {!Sim.Coverage} fingerprint (protocol-state edges
    walked, bucketed election/detector activity, oracle near-miss
    flags); any run contributing an unseen feature joins a corpus; new
    candidates are mutants of corpus entries — add / remove / retime /
    retarget a fault clause, widen a window, splice two plans — so the
    search climbs towards behaviours it has not seen yet.  Violations
    are auto-shrunk with the harness's greedy shrinker and the corpus
    persists as replayable {!Failure_plan} text files.

    The module is generic over a {!harness} record, so the engine
    harness (built here, over {!Chaos}) and the database harness (built
    at the bin/bench layer, over [Kv.Chaos_db] — the kv library does not
    depend on this one) explore through the same loop and are comparable
    in the same report.

    Determinism: candidates are derived sequentially from the search's
    own {!Sim.Rng} stream, evaluated in parallel via {!Sim.Sweep.map}
    (worker assignment is unobservable), then folded sequentially — the
    whole search is a pure function of [(harness, mode, budget, seed)]
    whatever [workers] is. *)

module N = Sim.Nemesis

(* ------------------------------------------------------------------ *)
(* Clause families a mutation may add.  Partitions, message drops and
   disk faults are deliberately absent: they violate the paper's model,
   so a violation found through them would be an ablation finding, not
   a protocol bug.  Mutations never introduce a family outside the
   harness's list, which is what keeps [Failure_plan.unsupported_clauses]
   empty across a whole search (property-tested). *)

type family =
  | Step_crashes
  | Timed_crashes
  | Recoveries
  | Move_crashes
  | Decide_crashes
  | Msg_faults
  | Delay_spikes
  | Stalls
  | Hb_losses
  | Acceptor_crashes
  | Lease_faults
  | Storms
[@@deriving show { with_path = false }, eq]

let protocol_families ~protocol =
  let is_3pc = protocol = "central-3pc" || protocol = "decentralized-3pc" in
  let is_paxos = String.length protocol >= 5 && String.sub protocol 0 5 = "paxos" in
  [ Step_crashes; Timed_crashes; Recoveries; Msg_faults; Delay_spikes; Stalls; Hb_losses; Storms ]
  @ (if is_3pc then [ Move_crashes; Decide_crashes ] else [])
  @ if is_paxos then [ Decide_crashes; Acceptor_crashes; Lease_faults ] else []

(* ------------------------------------------------------------------ *)

type report = {
  fingerprint : string list;
  violations : (string * string) list;  (** (oracle name, detail) *)
}

type harness = {
  name : string;
  n_sites : int;
  horizon : float;  (** time scale mutations draw crash/window times from *)
  families : family list;  (** clause families mutations may add *)
  run : seed:int -> Failure_plan.t -> report;
  shrink : seed:int -> oracle:string -> Failure_plan.t -> Failure_plan.t * int;
  random_plan : seed:int -> Failure_plan.t;
      (** the equal-budget baseline: what one classic chaos-sweep seed
          would have executed *)
}

(* ------------------------------------------------------------------ *)
(* Mutation operators.  They work on the plan's schedule view
   ([Failure_plan.to_schedule]) because a schedule is a uniform fault
   list — one match arm per operator instead of one per plan field —
   and [of_schedule ∘ to_schedule] is the identity on everything the
   explorer produces. *)

let random_fault rng ~n_sites ~horizon family =
  let site () = 1 + Sim.Rng.int rng n_sites in
  let time () = Sim.Rng.float rng horizon in
  let window () =
    let from_t = time () in
    (from_t, from_t +. (0.1 *. horizon) +. Sim.Rng.float rng (0.4 *. horizon))
  in
  match family with
  | Step_crashes ->
      let sent = if Sim.Rng.bool rng then None else Some (Sim.Rng.int rng 3) in
      N.Step_crash { site = site (); step = Sim.Rng.int rng 4; sent }
  | Timed_crashes -> N.Crash { site = site (); at = time () }
  | Recoveries -> N.Recover { site = site (); at = time () }
  | Move_crashes -> N.Backup_crash { site = site (); phase = N.Move; sent = Sim.Rng.int rng 4 }
  | Decide_crashes -> N.Backup_crash { site = site (); phase = N.Decide; sent = Sim.Rng.int rng 4 }
  | Msg_faults ->
      let fault =
        if Sim.Rng.bool rng then Sim.World.Fault_duplicate
        else Sim.World.Fault_delay (1.0 +. Sim.Rng.float rng 7.0)
      in
      N.Msg { nth = Sim.Rng.int rng 200; fault }
  | Delay_spikes ->
      let from_t, until_t = window () in
      N.Delay_window { site = site (); from_t; until_t; extra = 1.0 +. Sim.Rng.float rng 9.0 }
  | Stalls ->
      let from_t, until_t = window () in
      N.Stall { site = site (); from_t; until_t }
  | Hb_losses ->
      let from_t, until_t = window () in
      N.Hb_loss { site = site (); from_t; until_t }
  | Acceptor_crashes -> N.Acceptor_crash { site = site (); at = time () }
  | Lease_faults -> N.Lease_fault { at = time () }
  | Storms ->
      (* periods of a few horizons: waves land well after the initial
         exchange, exercising repeated WAL replay and re-election *)
      let period = horizon *. (2.0 +. Sim.Rng.float rng 4.0) in
      N.Storm
        {
          site = site ();
          first = time ();
          waves = 2 + Sim.Rng.int rng 3;
          period;
          down = period *. (0.25 +. Sim.Rng.float rng 0.5);
        }

let retime rng ~horizon fault =
  let t () = Sim.Rng.float rng horizon in
  match fault with
  | N.Crash { site; _ } -> N.Crash { site; at = t () }
  | N.Step_crash { site; sent; _ } -> N.Step_crash { site; step = Sim.Rng.int rng 4; sent }
  | N.Backup_crash { site; phase; _ } -> N.Backup_crash { site; phase; sent = Sim.Rng.int rng 4 }
  | N.Recover { site; _ } -> N.Recover { site; at = t () }
  | N.Partition { groups; from_t; until_t } ->
      let shift = t () -. from_t in
      N.Partition { groups; from_t = from_t +. shift; until_t = until_t +. shift }
  | N.Msg { fault; _ } -> N.Msg { nth = Sim.Rng.int rng 200; fault }
  | N.Disk_fault { site; fault; _ } -> N.Disk_fault { site; fault; nth = Sim.Rng.int rng 3 }
  | N.Delay_window { site; from_t; until_t; extra } ->
      let len = until_t -. from_t in
      let from_t = t () in
      N.Delay_window { site; from_t; until_t = from_t +. len; extra }
  | N.Stall { site; from_t; until_t } ->
      let len = until_t -. from_t in
      let from_t = t () in
      N.Stall { site; from_t; until_t = from_t +. len }
  | N.Hb_loss { site; from_t; until_t } ->
      let len = until_t -. from_t in
      let from_t = t () in
      N.Hb_loss { site; from_t; until_t = from_t +. len }
  | N.Acceptor_crash { site; _ } -> N.Acceptor_crash { site; at = t () }
  | N.Lease_fault _ -> N.Lease_fault { at = t () }
  | N.Storm { site; waves; period; down; _ } -> N.Storm { site; first = t (); waves; period; down }

let retarget rng ~n_sites fault =
  let site = 1 + Sim.Rng.int rng n_sites in
  match fault with
  | N.Crash { at; _ } -> Some (N.Crash { site; at })
  | N.Step_crash { step; sent; _ } -> Some (N.Step_crash { site; step; sent })
  | N.Backup_crash { phase; sent; _ } -> Some (N.Backup_crash { site; phase; sent })
  | N.Recover { at; _ } -> Some (N.Recover { site; at })
  | N.Delay_window { from_t; until_t; extra; _ } ->
      Some (N.Delay_window { site; from_t; until_t; extra })
  | N.Stall { from_t; until_t; _ } -> Some (N.Stall { site; from_t; until_t })
  | N.Hb_loss { from_t; until_t; _ } -> Some (N.Hb_loss { site; from_t; until_t })
  | N.Acceptor_crash { at; _ } -> Some (N.Acceptor_crash { site; at })
  | N.Disk_fault { fault; nth; _ } -> Some (N.Disk_fault { site; fault; nth })
  | N.Storm { first; waves; period; down; _ } -> Some (N.Storm { site; first; waves; period; down })
  | N.Partition _ | N.Msg _ | N.Lease_fault _ -> None

let widen rng fault =
  let grow len = len *. (1.25 +. Sim.Rng.float rng 0.75) in
  match fault with
  | N.Delay_window { site; from_t; until_t; extra } ->
      Some (N.Delay_window { site; from_t; until_t = from_t +. grow (until_t -. from_t); extra })
  | N.Stall { site; from_t; until_t } ->
      Some (N.Stall { site; from_t; until_t = from_t +. grow (until_t -. from_t) })
  | N.Hb_loss { site; from_t; until_t } ->
      Some (N.Hb_loss { site; from_t; until_t = from_t +. grow (until_t -. from_t) })
  | N.Partition { groups; from_t; until_t } ->
      Some (N.Partition { groups; from_t; until_t = from_t +. grow (until_t -. from_t) })
  | N.Storm { site; first; waves; period; down } ->
      Some
        (if Sim.Rng.bool rng then N.Storm { site; first; waves = waves + 1; period; down }
         else N.Storm { site; first; waves; period; down = Float.min (grow down) (0.9 *. period) })
  | N.Crash _ | N.Step_crash _ | N.Backup_crash _ | N.Recover _ | N.Msg _ | N.Disk_fault _
  | N.Acceptor_crash _ | N.Lease_fault _ ->
      None

let remove_nth n l = List.filteri (fun i _ -> i <> n) l
let replace_nth n x l = List.mapi (fun i y -> if i = n then x else y) l

let mutate rng ~n_sites ~horizon ~families plan =
  let sched = Failure_plan.to_schedule plan in
  let add () = sched @ [ random_fault rng ~n_sites ~horizon (Sim.Rng.choice rng families) ] in
  let sched' =
    if sched = [] then add ()
    else
      let i = Sim.Rng.int rng (List.length sched) in
      let chosen = List.nth sched i in
      match Sim.Rng.int rng 5 with
      | 0 -> add ()
      | 1 -> remove_nth i sched
      | 2 -> replace_nth i (retime rng ~horizon chosen) sched
      | 3 -> (
          match retarget rng ~n_sites chosen with
          | Some f -> replace_nth i f sched
          | None -> replace_nth i (retime rng ~horizon chosen) sched)
      | _ -> (
          match widen rng chosen with
          | Some f -> replace_nth i f sched
          | None -> replace_nth i (retime rng ~horizon chosen) sched)
  in
  Failure_plan.of_schedule sched'

let splice rng a b =
  let keep l = List.filter (fun _ -> Sim.Rng.bool rng) l in
  Failure_plan.of_schedule (keep (Failure_plan.to_schedule a) @ keep (Failure_plan.to_schedule b))

(* ------------------------------------------------------------------ *)

type bug = {
  bug_oracle : string;
  bug_detail : string;
  bug_found_at : int;  (** global run index that first tripped it *)
  bug_plan : Failure_plan.t;  (** as found *)
  bug_shrunk : Failure_plan.t;
  bug_shrink_runs : int;
}

type result = {
  harness_name : string;
  mode : [ `Guided | `Random ];
  budget : int;
  runs : int;
  coverage : int;  (** distinct features at the end *)
  features : string list;
  curve : (int * int) list;  (** (runs completed, cumulative coverage) per batch *)
  corpus : (Failure_plan.t * int) list;
      (** admitted plans, admission order, with the novelty each brought *)
  violating_runs : int;
  bugs : bug list;  (** deduplicated, shrunk; at most [max_shrunk] *)
}

let mode_name = function `Guided -> "guided" | `Random -> "random"

(* Parent selection: half the draws from the top-novelty quartile, half
   uniform — exploit what paid off without starving the long tail. *)
let pick_parent rng corpus =
  match corpus with
  | [] -> Failure_plan.none
  | entries ->
      let pool =
        if Sim.Rng.bool rng then begin
          let sorted = List.stable_sort (fun (_, a) (_, b) -> compare (b : int) a) entries in
          List.filteri (fun i _ -> i < max 1 (List.length sorted / 4)) sorted
        end
        else entries
      in
      fst (Sim.Rng.choice rng pool)

let search ?(workers = 1) ?(batch = 16) ?(max_shrunk = 4) ?(seed = 0) ?(initial = [])
    ?progress harness ~mode ~budget () =
  let rng = Sim.Rng.create ~seed in
  let cov = Sim.Coverage.create () in
  let corpus = ref [] (* newest first *) in
  let curve = ref [] in
  let bugs = ref [] in
  let seen_violations = Hashtbl.create 16 in
  let violating_runs = ref 0 in
  let runs = ref 0 in
  (* user-provided plans join the corpus before the budget starts *)
  List.iter
    (fun plan ->
      match mode with
      | `Random -> ()
      | `Guided -> corpus := (plan, 1) :: !corpus)
    initial;
  while !runs < budget do
    let n = min batch (budget - !runs) in
    (* candidate derivation is sequential in the search rng: worker
       count must never influence what gets run *)
    let candidates =
      Array.init n (fun i ->
          match mode with
          | `Random -> harness.random_plan ~seed:(!runs + i)
          | `Guided ->
              if !corpus = [] then harness.random_plan ~seed:(!runs + i)
              else begin
                let parent = pick_parent rng !corpus in
                if Sim.Rng.flip rng ~p:0.3 && List.length !corpus > 1 then
                  splice rng parent (pick_parent rng !corpus)
                else
                  mutate rng ~n_sites:harness.n_sites ~horizon:harness.horizon
                    ~families:harness.families parent
              end)
    in
    let base = !runs in
    let reports =
      Sim.Sweep.map ~workers ~seed_base:base ~seeds:n (fun ~seed ->
          harness.run ~seed candidates.(seed - base))
    in
    (* sequential fold: admission order and shrink selection are
       identical whatever the worker count *)
    Array.iteri
      (fun i report ->
        let plan = candidates.(i) in
        let novelty = Sim.Coverage.add cov report.fingerprint in
        if novelty > 0 then corpus := (plan, novelty) :: !corpus;
        if report.violations <> [] then begin
          incr violating_runs;
          let oracle, detail = List.hd report.violations in
          if
            (not (Hashtbl.mem seen_violations (oracle, detail)))
            && List.length !bugs < max_shrunk
          then begin
            Hashtbl.replace seen_violations (oracle, detail) ();
            let shrunk, shrink_runs = harness.shrink ~seed:(base + i) ~oracle plan in
            let key = (oracle, Failure_plan.to_string shrunk) in
            if
              not
                (List.exists
                   (fun b -> (b.bug_oracle, Failure_plan.to_string b.bug_shrunk) = key)
                   !bugs)
            then
              bugs :=
                {
                  bug_oracle = oracle;
                  bug_detail = detail;
                  bug_found_at = base + i;
                  bug_plan = plan;
                  bug_shrunk = shrunk;
                  bug_shrink_runs = shrink_runs;
                }
                :: !bugs
          end
        end)
      reports;
    runs := base + n;
    curve := (!runs, Sim.Coverage.count cov) :: !curve;
    match progress with
    | Some f -> f ~runs:!runs ~coverage:(Sim.Coverage.count cov) ~bugs:(List.length !bugs)
    | None -> ()
  done;
  {
    harness_name = harness.name;
    mode;
    budget;
    runs = !runs;
    coverage = Sim.Coverage.count cov;
    features = Sim.Coverage.features cov;
    curve = List.rev !curve;
    corpus = List.rev !corpus;
    violating_runs = !violating_runs;
    bugs = List.rev !bugs;
  }

let replay ?(workers = 1) harness plans =
  let arr = Array.of_list plans in
  let reports =
    Sim.Sweep.map ~workers ~seeds:(Array.length arr) (fun ~seed -> harness.run ~seed arr.(seed))
  in
  List.mapi (fun i plan -> (plan, reports.(i))) plans

(* ------------------------------------------------------------------ *)
(* Corpus persistence: one [Failure_plan.to_string] per file, so every
   entry pastes straight into a regression test or `skeen chaos
   --plan`.  File order encodes admission order. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let save_corpus ~dir result =
  mkdir_p dir;
  List.iteri
    (fun i (plan, _) ->
      write_file
        (Filename.concat dir (Printf.sprintf "%03d.plan" i))
        (Failure_plan.to_string plan ^ "\n"))
    result.corpus;
  List.iteri
    (fun i b ->
      write_file
        (Filename.concat dir (Printf.sprintf "bug-%d-%s.plan" i b.bug_oracle))
        (Failure_plan.to_string b.bug_shrunk ^ "\n"))
    result.bugs

let load_corpus ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".plan")
    |> List.sort compare
    |> List.map (fun f ->
           let ic = open_in (Filename.concat dir f) in
           let s = really_input_string ic (in_channel_length ic) in
           close_in ic;
           (f, Failure_plan.of_string_exn s))

(* ------------------------------------------------------------------ *)
(* The engine harness, mirroring {!Chaos.run_one}'s seed discipline so
   `--mode random` is exactly the classic chaos sweep per seed. *)

let oracle_of_name name =
  List.find_opt
    (fun o -> Chaos.oracle_name o = name)
    [ Chaos.Atomicity; Chaos.Progress; Chaos.Recovery_convergence; Chaos.Durability; Chaos.Split_brain ]

let engine_harness ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
    ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing
    ?(profile = Sim.Nemesis.default_profile) ?(k = 1) rulebook =
  let n_sites = Core.Protocol.n_sites rulebook.Rulebook.protocol in
  let run ~seed plan =
    let result, violations =
      Chaos.run_plan ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
        ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing rulebook ~plan
        ~seed ()
    in
    {
      fingerprint = Chaos.fingerprint_of result;
      violations =
        List.map (fun (v : Chaos.violation) -> (Chaos.oracle_name v.oracle, v.detail)) violations;
    }
  in
  let shrink ~seed ~oracle plan =
    match oracle_of_name oracle with
    | None -> (plan, 0)
    | Some oracle ->
        Chaos.shrink ?until ?termination ?presumption ?read_only ?group_commit ?sync_latency
          ?detector ?heartbeat_period ?suspicion_timeout ?election_timeout ?fencing rulebook
          ~seed ~oracle plan
  in
  let random_plan ~seed =
    let sched_rng = Sim.Rng.split (Sim.Rng.create ~seed) in
    Failure_plan.of_schedule (Sim.Nemesis.generate sched_rng ~n_sites ~k profile)
  in
  {
    name = rulebook.Rulebook.protocol.Core.Protocol.name;
    n_sites;
    horizon = profile.Sim.Nemesis.horizon;
    families = protocol_families ~protocol:rulebook.Rulebook.protocol.Core.Protocol.name;
    run;
    shrink;
    random_plan;
  }
