(** One database site: a resource manager (shard) for the keys it owns and
    a transaction manager (coordinator) for the transactions submitted to
    it.  {!Db} wires nodes into a world; this interface exposes the
    handler surface plus the observability counters the harness reads. *)

(** [Paxos f] is Paxos Commit (Gray & Lamport) at the decision level: 2PC
    vote collection, but the outcome is chosen by a majority of the 2f+1
    acceptors (the lowest-numbered sites), so any f acceptor crashes —
    including the coordinator's — leave the decision recoverable. *)
type protocol = Two_phase | Three_phase | Paxos of int

val pp_protocol : Format.formatter -> protocol -> unit
val show_protocol : protocol -> string
val equal_protocol : protocol -> protocol -> bool

(** The classic commit-protocol presumptions: the covered outcome is
    forgotten by the coordinator immediately and participants skip its
    final acknowledgement; inquiries are answered by presumption. *)
type presumption = No_presumption | Presume_abort | Presume_commit

val pp_presumption : Format.formatter -> presumption -> unit
val show_presumption : presumption -> string
val equal_presumption : presumption -> presumption -> bool

(** How orphaned transactions are terminated when their coordinator dies
    under 3PC: [T_skeen] decides from the backup's own transaction state
    (the paper's rule — live but partition-unsafe); [T_quorum q] polls
    reachable participants and requires a quorum either way, with
    monotone moves (never demoting a precommit). *)
type termination = T_skeen | T_quorum of int

val pp_termination : Format.formatter -> termination -> unit
val show_termination : termination -> string
val equal_termination : termination -> termination -> bool

type p_status = P_working | P_prepared | P_precommitted | P_done of bool

val pp_p_status : Format.formatter -> p_status -> unit
val equal_p_status : p_status -> p_status -> bool

type p_txn = {
  txn : int;
  coordinator : Core.Types.site;
  participants : Core.Types.site list;
  mutable pending_ops : Txn.op list;
  mutable held : (string * Lock_table.mode) list;
  mutable writes : (string * int) list;
  mutable status : p_status;
  mutable blocked_since : float option;  (** prepared with a dead 2PC coordinator *)
}

type c_status = C_collecting | C_precommitting | C_decided of bool

type c_txn = {
  c_id : int;
  mutable c_participants : Core.Types.site list;
  mutable awaiting_votes : Core.Types.site list;
  mutable awaiting_acks : Core.Types.site list;
  mutable c_status : c_status;
  submitted_at : float;
  mutable votes_in_at : float option;  (** when the last vote arrived (phase split) *)
  mutable pax_accepts : Core.Types.site list;
      (** Paxos: acceptors that accepted this coordinator's proposal *)
}

type backup_state = { mutable b_awaiting : Core.Types.site list; b_commit : bool }

(** A standby acceptor leading Paxos recovery for one transaction. *)
type pax_rec = {
  pr_ballot : int;
  pr_participants : Core.Types.site list;
  mutable pr_promises : (Core.Types.site * (int * bool) option) list;
  mutable pr_accepts : Core.Types.site list;
  mutable pr_phase2 : bool;
  mutable pr_commit : bool;
}

(** Quorum termination: a state poll in flight. *)
type poll_state = {
  mutable q_awaiting : Core.Types.site list;
  mutable q_reps :
    (Core.Types.site * [ `Working | `Prepared | `Precommitted | `Done of bool ]) list;
  q_epoch : int;  (** the epoch this poll (and its move-ups) is fenced at *)
}

type t = {
  site : Core.Types.site;
  n_sites : int;
  protocol : protocol;
  presumption : presumption;
  termination : termination;
  read_only_opt : bool;
  storage : Storage.t;  (** stable: survives crashes *)
  wal : Kv_wal.t;  (** stable: survives crashes *)
  mutable locks : Lock_table.t;  (** volatile *)
  p_txns : (int, p_txn) Hashtbl.t;  (** volatile *)
  c_txns : (int, c_txn) Hashtbl.t;  (** volatile *)
  backups : (int, backup_state) Hashtbl.t;  (** volatile *)
  pollings : (int, poll_state) Hashtbl.t;  (** volatile *)
  pax_recoveries : (int, pax_rec) Hashtbl.t;  (** volatile: Paxos recovery rounds led here *)
  ro_done : (int, unit) Hashtbl.t;
      (** volatile: read-only participations already completed, so a
          duplicated Prepare cannot re-open them (and then force-log a
          spurious abort on a lock-wait timeout) *)
  sent_yes_txns : (int, unit) Hashtbl.t;
      (** transactions whose yes vote this site put on the wire —
          deliberately sticky across crashes (the world cannot un-see a
          message): the durability oracle compares it against what the
          repaired stable log can justify *)
  announced_outcomes : (int, bool) Hashtbl.t;
      (** outcomes this site actually announced to a peer — sticky for
          the same reason *)
  mutable down_view : Core.Types.site list;
  mutable tainted : Core.Types.site list;
  mutable ever_crashed : bool;
  detector : bool;
      (** failure reports come from the timeout {!Sim.Detector}, not the
          oracle: suspicion is revocable, so sender-taint is no longer a
          sound staleness test — epoch fencing replaces it *)
  fencing : bool;  (** [false]: the split-brain ablation (detector mode) *)
  epoch_seen : (int, int) Hashtbl.t;
      (** per transaction: highest election epoch obeyed (absent = -1);
          epochs are [round * n_sites + (site - 1)], globally unique per
          site.  Not reset on restart. *)
  mutable directive_epochs : (int * int) list;
      (** reverse-chronological (txn, epoch) at each termination this
          site led — feed for the split-brain oracle *)
  pipeline_depth : int;
      (** coordinator pipelining bound: admit a new client transaction
          only while fewer than this many WAL forces are in flight.
          Vacuous with synchronous forces (levers off). *)
  admission_q : (Txn.t * float) Queue.t;
      (** volatile: client transactions awaiting admission, with arrival
          times so queueing shows up in commit latency *)
  lock_wait_timeout : float;
  query_interval : float;
  query_backoff_cap : float;
      (** ceiling on the exponential backoff between outcome queries *)
  query_rng : Sim.Rng.t;
  mutable query_budget : int;
  mutable committed : int;
  mutable aborted : int;
  mutable deadlock_aborts : int;
  mutable latencies : float list;
  mutable blocked_time : float;  (** cumulative blocked-lock-holding time *)
}

val create :
  ?presumption:presumption ->
  ?termination:termination ->
  ?read_only_opt:bool ->
  ?pipeline_depth:int ->
  ?query_backoff_cap:float ->
  ?query_rng:Sim.Rng.t ->
  ?detector:bool ->
  ?fencing:bool ->
  site:Core.Types.site ->
  n_sites:int ->
  protocol:protocol ->
  storage:Storage.t ->
  wal:Kv_wal.t ->
  lock_wait_timeout:float ->
  query_interval:float ->
  query_budget:int ->
  unit ->
  t

val on_message : t -> Kv_msg.t Sim.World.ctx -> src:Core.Types.site -> Kv_msg.t -> unit
val on_peer_down : t -> Kv_msg.t Sim.World.ctx -> Core.Types.site -> unit
val on_peer_up : t -> Kv_msg.t Sim.World.ctx -> Core.Types.site -> unit

val on_restart : t -> Kv_msg.t Sim.World.ctx -> unit
(** Crash recovery: rebuild volatile state from the stable log,
    re-establishing the locks of in-doubt transactions before accepting
    new work, and resolve them by presumption or inquiry. *)

val install_grant_hook : t -> Kv_msg.t Sim.World.ctx -> unit
(** Wire the lock table's grant callback so parked transactions resume;
    must be called at start and after every restart. *)

val drain_admissions : t -> Kv_msg.t Sim.World.ctx -> unit
(** Admit queued client transactions while the pipelining gate has room;
    wire it as the WAL batcher's [on_drain] hook so completed forces
    refill the pipeline. *)
