(** Chaos driver for the database harness: {!Sim.Nemesis} schedules
    lowered onto a {!Db} bank-transfer run, judged by end-to-end oracles —
    atomicity (outcome logs agree, committed writes applied), conservation
    (the bank total is invariant once every site is back and nothing is in
    doubt), nonblocking progress (no operational site ends the run
    holding locks in doubt unless its transaction's whole participant set
    crashed), and durability (every yes vote and announced outcome must
    be justified by the announcing site's repaired stable log).
    Violating schedules shrink greedily to a minimal counterexample.
    Deterministic in [(protocol, n_sites, k, seed)]. *)

type oracle = Atomicity | Conservation | Progress | Durability | Split_brain

val pp_oracle : Format.formatter -> oracle -> unit
val equal_oracle : oracle -> oracle -> bool
val oracle_name : oracle -> string

type violation = { oracle : oracle; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val default_profile : Sim.Nemesis.profile
(** Timed crashes, recoveries and message faults only: step- and
    backup-pinned crashes are protocol-engine notions the database cannot
    interpret. *)

val workload_of : seed:int -> (float * Txn.t) list
(** The seed's bank-transfer workload (a split stream of the seed's root
    rng, independent of the schedule stream). *)

val lower :
  Sim.Nemesis.schedule ->
  (Core.Types.site * float) list
  * (Core.Types.site * float) list
  * (float * float * Core.Types.site list list) list
  * (int * Sim.World.msg_fault) list
  * (Core.Types.site * Sim.Disk.injection) list
  * Sim.Nemesis.fault list
  * float list
(** Schedule → (crashes, recoveries, partitions, msg_faults, disk_faults,
    detector_faults, lease_faults) as {!Db.config} takes them.  Step- and
    backup-pinned crashes are dropped; acceptor crashes lower to plain
    crashes; the detector-provoking windows (latency spikes, stalls,
    heartbeat loss) pass through verbatim. *)

val fingerprint_of : Db.result -> string list
(** The run's behavioural signature for the coverage-guided explorer
    ({!Engine.Explore}): per-transaction fates, bucketed outcome /
    conflict / election counters ({!Sim.Coverage.bucket}) and oracle
    near-miss flags, read post hoc from the result — pinned metrics stay
    byte-identical.  Deterministic in the run. *)

val run_schedule :
  ?protocol:Node.protocol ->
  ?termination:Node.termination ->
  ?presumption:Node.presumption ->
  ?read_only_opt:bool ->
  ?group_commit:Kv_wal.group_commit ->
  ?sync_latency:float ->
  ?pipeline_depth:int ->
  ?n_sites:int ->
  ?until:float ->
  ?tracing:bool ->
  ?durable_wal:bool ->
  ?detector:bool ->
  ?fencing:bool ->
  seed:int ->
  Sim.Nemesis.schedule ->
  Db.result * violation list
(** Execute one explicit schedule (e.g. a pinned counterexample) against
    the seed's workload and judge it. *)

type run_outcome = {
  seed : int;
  schedule : Sim.Nemesis.schedule;
  result : Db.result;
  violations : violation list;
}

val run_one :
  ?profile:Sim.Nemesis.profile ->
  ?protocol:Node.protocol ->
  ?termination:Node.termination ->
  ?presumption:Node.presumption ->
  ?read_only_opt:bool ->
  ?group_commit:Kv_wal.group_commit ->
  ?sync_latency:float ->
  ?pipeline_depth:int ->
  ?n_sites:int ->
  ?until:float ->
  ?tracing:bool ->
  ?durable_wal:bool ->
  ?detector:bool ->
  ?fencing:bool ->
  k:int ->
  seed:int ->
  unit ->
  run_outcome
(** Generate the seed's schedule and execute it.  Deterministic. *)

val shrink :
  ?protocol:Node.protocol ->
  ?termination:Node.termination ->
  ?presumption:Node.presumption ->
  ?read_only_opt:bool ->
  ?group_commit:Kv_wal.group_commit ->
  ?sync_latency:float ->
  ?pipeline_depth:int ->
  ?n_sites:int ->
  ?until:float ->
  ?durable_wal:bool ->
  ?detector:bool ->
  ?fencing:bool ->
  seed:int ->
  oracle:oracle ->
  Sim.Nemesis.schedule ->
  Sim.Nemesis.schedule * int
(** Greedy minimisation: drop single faults, then round fault times,
    keeping any candidate that still trips [oracle] under the same seed.
    Returns the minimal schedule and the number of re-runs spent. *)

type summary = {
  protocol : Node.protocol;
  n_sites : int;
  k : int;
  seeds_run : int;
  failing : (int * violation list * Sim.Nemesis.schedule) list;
      (** (seed, violations, shrunk schedule) per failing seed; at most
          [max_counterexamples] of them are shrunk, the rest keep their
          full schedule *)
  violations_by_oracle : (oracle * int) list;
  metrics : Sim.Metrics.t;
      (** per-seed registries (chaos_runs / violations_* / shrink_runs
          counters plus every {!Db.result}.run_metrics) merged in seed
          order — worker-count independent *)
}

val sweep :
  ?profile:Sim.Nemesis.profile ->
  ?protocol:Node.protocol ->
  ?termination:Node.termination ->
  ?presumption:Node.presumption ->
  ?read_only_opt:bool ->
  ?group_commit:Kv_wal.group_commit ->
  ?sync_latency:float ->
  ?pipeline_depth:int ->
  ?n_sites:int ->
  ?until:float ->
  ?durable_wal:bool ->
  ?detector:bool ->
  ?fencing:bool ->
  ?seed_base:int ->
  ?max_counterexamples:int ->
  ?workers:int ->
  k:int ->
  seeds:int ->
  unit ->
  summary
(** [workers] (default 1) shards the seed range across OCaml domains via
    {!Sim.Sweep}; every seed runs in an isolated World/Metrics/Rng and
    the summary (shrunk counterexamples included) is byte-identical
    whatever the worker count.  Shrinking runs sequentially after the
    sharded phase. *)

val pp_summary : Format.formatter -> summary -> unit
