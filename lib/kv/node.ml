(** One database site: a resource manager (shard) for the keys it owns and
    a transaction manager (coordinator) for the transactions submitted to
    it.  The commit path can run as classical central-site 2PC or as the
    paper's nonblocking central-site 3PC; the difference under failures is
    the point of experiment E12.

    Under 2PC, a participant that voted yes and then loses its coordinator
    {e blocks}: it must hold its locks until the coordinator recovers, and
    every transaction that touches those keys queues behind it.  Under
    3PC, the surviving participants elect a backup coordinator which
    applies the paper's decision rule to its own local state (prepared →
    abort, precommitted → commit), preceded by the two-phase backup
    protocol: move every operational participant to my state, collect
    acknowledgements, then announce the decision — so cascading backup
    failures stay safe. *)

type protocol = Two_phase | Three_phase | Paxos of int
[@@deriving show { with_path = false }, eq]
(** [Paxos f] is Paxos Commit (Gray & Lamport) at the decision level: the
    coordinator runs 2PC's vote collection, but the commit/abort decision
    is chosen by a Paxos instance over the [2f+1] lowest-numbered sites
    acting as acceptors, so any [f] failures leave a majority that
    remembers it.  A blocked prepared participant does not wait for the
    coordinator to recover (2PC) or elect a backup from its own state
    (3PC): it nudges a standby acceptor, which completes the instance at a
    higher ballot — adopting any accepted outcome, else aborting.
    [Paxos 0] is the degenerate single-acceptor form, behaviourally 2PC
    with the decision forced on the acceptor's log. *)

(** The classic commit-protocol presumptions (of the R-star system): which outcome the
    coordinator may "forget" immediately, because a recovering or inquiring
    participant will presume it when no information is found.  The covered
    side skips the participants' final acknowledgements and the
    coordinator's retained state. *)
type presumption = No_presumption | Presume_abort | Presume_commit
[@@deriving show { with_path = false }, eq]

(** How orphaned transactions are terminated when their coordinator dies
    under 3PC (see {!Engine.Runtime.termination_rule} for the protocol-level
    discussion): [T_skeen] decides from the backup's own transaction state
    (the paper's rule — live but partition-unsafe); [T_quorum q] polls
    reachable participants and requires a quorum either way, with monotone
    moves (never demoting a precommit). *)
type termination = T_skeen | T_quorum of int [@@deriving show { with_path = false }, eq]

type p_status = P_working | P_prepared | P_precommitted | P_done of bool
[@@deriving show { with_path = false }, eq]

type p_txn = {
  txn : int;
  coordinator : Core.Types.site;
  participants : Core.Types.site list;
  mutable pending_ops : Txn.op list;  (** ops whose locks are not yet held *)
  mutable held : (string * Lock_table.mode) list;
  mutable writes : (string * int) list;
  mutable status : p_status;
  mutable blocked_since : float option;  (** prepared with a dead 2PC coordinator *)
}

type c_status = C_collecting | C_precommitting | C_decided of bool
[@@deriving show { with_path = false }, eq]

type c_txn = {
  c_id : int;
  mutable c_participants : Core.Types.site list;
  mutable awaiting_votes : Core.Types.site list;
  mutable awaiting_acks : Core.Types.site list;
  mutable c_status : c_status;
  submitted_at : float;
  mutable votes_in_at : float option;  (** when the last vote arrived (phase split) *)
  mutable pax_accepts : Core.Types.site list;
      (** Paxos: acceptors that accepted this coordinator's proposal *)
}

(** A standby acceptor leading Paxos recovery for one transaction. *)
type pax_rec = {
  pr_ballot : int;
  pr_participants : Core.Types.site list;
  mutable pr_promises : (Core.Types.site * (int * bool) option) list;
      (** phase 1b replies: acceptor, highest accepted (ballot, outcome) *)
  mutable pr_accepts : Core.Types.site list;  (** phase 2b replies *)
  mutable pr_phase2 : bool;
  mutable pr_commit : bool;  (** the adopted (or free-instance Abort) value *)
}

(** Termination-protocol state for one orphaned transaction (3PC backup
    coordinator): phase 1 in flight. *)
type backup_state = { mutable b_awaiting : Core.Types.site list; b_commit : bool }

(** Quorum termination: a state poll in flight. *)
type poll_state = {
  mutable q_awaiting : Core.Types.site list;
  mutable q_reps : (Core.Types.site * [ `Working | `Prepared | `Precommitted | `Done of bool ]) list;
  q_epoch : int;  (** the epoch this poll (and its move-ups) is fenced at *)
}

type t = {
  site : Core.Types.site;
  n_sites : int;
  protocol : protocol;
  presumption : presumption;
  termination : termination;
  read_only_opt : bool;
      (** participants that only read vote read-only, release their locks
          at once, and drop out of phase 2 *)
  storage : Storage.t;  (** stable: survives crashes *)
  wal : Kv_wal.t;  (** stable: survives crashes *)
  mutable locks : Lock_table.t;  (** volatile *)
  p_txns : (int, p_txn) Hashtbl.t;  (** volatile *)
  c_txns : (int, c_txn) Hashtbl.t;  (** volatile *)
  backups : (int, backup_state) Hashtbl.t;  (** volatile *)
  pollings : (int, poll_state) Hashtbl.t;  (** volatile: quorum-termination polls *)
  pax_recoveries : (int, pax_rec) Hashtbl.t;  (** volatile: Paxos recovery rounds led here *)
  ro_done : (int, unit) Hashtbl.t;
      (** volatile: transactions this site completed as a read-only
          participant.  The p_txn is removed at vote time, so without this
          tombstone a duplicated Prepare would re-open the transaction —
          and a lock-wait timeout on the re-opened copy force-logs an
          abort outcome for a transaction the cohort may have committed.
          Volatile is enough: a crash bumps the site's generation, which
          already kills every pre-crash duplicate in flight. *)
  sent_yes_txns : (int, unit) Hashtbl.t;
      (** transactions whose yes vote this site put on the wire —
          deliberately sticky across crashes (the world cannot un-see a
          message): the durability oracle compares it against what the
          repaired stable log can justify *)
  announced_outcomes : (int, bool) Hashtbl.t;
      (** outcomes this site actually announced to a peer — sticky for
          the same reason *)
  mutable down_view : Core.Types.site list;
  mutable tainted : Core.Types.site list;  (** peers known to have crashed this run *)
  mutable ever_crashed : bool;
  detector : bool;
      (** failure reports come from the timeout {!Sim.Detector}, not the
          oracle: suspicion is revocable, so sender-taint is no longer a
          sound staleness test — epoch fencing replaces it *)
  fencing : bool;  (** [false]: the split-brain ablation (detector mode) *)
  epoch_seen : (int, int) Hashtbl.t;
      (** per transaction: highest election epoch obeyed (absent = -1).
          Epochs are [round * n_sites + (site - 1)] — globally unique per
          site, the live coordinator at round 0.  Deliberately NOT reset
          on restart: a recovered site keeps fencing orders it already
          knows to be stale. *)
  mutable directive_epochs : (int * int) list;
      (** reverse-chronological (txn, epoch) at each termination this
          site led — feed for the split-brain oracle *)
  pipeline_depth : int;
      (** coordinator pipelining bound: admit a new client transaction
          only while fewer than this many WAL forces are in flight at
          this site.  Vacuous (always admits) when forces complete
          synchronously — with sync latency or group commit armed it is
          the window of transactions overlapping their commit forces. *)
  admission_q : (Txn.t * float) Queue.t;
      (** volatile: client transactions awaiting admission (with their
          arrival time, so queueing shows up in commit latency) *)
  lock_wait_timeout : float;
  query_interval : float;
  query_backoff_cap : float;
  query_rng : Sim.Rng.t;  (** jitter stream for the query backoff *)
  mutable query_budget : int;
  (* observability *)
  mutable committed : int;  (** transactions this site coordinated to commit *)
  mutable aborted : int;
  mutable deadlock_aborts : int;
  mutable latencies : float list;
  mutable blocked_time : float;  (** cumulative blocked-lock-holding time *)
}

let create ?(presumption = No_presumption) ?(termination = T_skeen) ?(read_only_opt = false)
    ?(pipeline_depth = 1) ?(query_backoff_cap = 60.0) ?query_rng ?(detector = false)
    ?(fencing = true) ~site ~n_sites ~protocol ~storage ~wal ~lock_wait_timeout ~query_interval
    ~query_budget () =
  if pipeline_depth < 1 then invalid_arg "Node.create: pipeline_depth must be >= 1";
  (match protocol with
  | Paxos f when f < 0 -> invalid_arg "Node.create: Paxos f must be >= 0"
  | Paxos f when (2 * f) + 1 > n_sites ->
      invalid_arg
        (Printf.sprintf "Node.create: Paxos f=%d needs 2f+1=%d acceptors but only %d sites" f
           ((2 * f) + 1) n_sites)
  | _ -> ());
  {
    site;
    n_sites;
    protocol;
    presumption;
    termination;
    read_only_opt;
    storage;
    wal;
    locks = Lock_table.create ();
    p_txns = Hashtbl.create 32;
    c_txns = Hashtbl.create 32;
    backups = Hashtbl.create 8;
    pollings = Hashtbl.create 8;
    pax_recoveries = Hashtbl.create 8;
    ro_done = Hashtbl.create 8;
    sent_yes_txns = Hashtbl.create 8;
    announced_outcomes = Hashtbl.create 8;
    down_view = [];
    tainted = [];
    ever_crashed = false;
    detector;
    fencing;
    epoch_seen = Hashtbl.create 32;
    directive_epochs = [];
    pipeline_depth;
    admission_q = Queue.create ();
    lock_wait_timeout;
    query_interval;
    query_backoff_cap;
    query_rng =
      (match query_rng with Some r -> r | None -> Sim.Rng.create ~seed:(site * 7919));
    query_budget;
    committed = 0;
    aborted = 0;
    deadlock_aborts = 0;
    latencies = [];
    blocked_time = 0.0;
  }

(* an outcome is about to leave this site: record it in the sticky
   announcement table the durability oracle checks post-hoc.  [add], not
   [replace]: if a site ever announces both outcomes, both bindings must
   survive so the contradiction cannot mask itself *)
let note_announce node ~txn ~commit =
  if not (List.mem commit (Hashtbl.find_all node.announced_outcomes txn)) then
    Hashtbl.add node.announced_outcomes txn commit

(* ---- election epochs (see the [epoch_seen] field doc) ---- *)

let epoch_of node ~txn = Option.value ~default:(-1) (Hashtbl.find_opt node.epoch_seen txn)

let bump_epoch node ~txn e =
  if e > epoch_of node ~txn then Hashtbl.replace node.epoch_seen txn e

(* The smallest epoch of this site's allotment that outranks everything it
   has obeyed for [txn].  In oracle mode terminations use plain rank
   ([site - 1], round 0): a deposed backup is dead there, and rank order
   is exactly the old deterministic election. *)
let next_epoch node ~txn =
  let seen = epoch_of node ~txn in
  let rec go r =
    let e = (r * node.n_sites) + node.site - 1 in
    if e > seen then e else go (r + 1)
  in
  go 0

let elect_epoch node ~txn =
  let e = if node.detector then next_epoch node ~txn else node.site - 1 in
  bump_epoch node ~txn e;
  node.directive_epochs <- (txn, e) :: node.directive_epochs;
  e

(* ---- Paxos Commit: acceptor set and ballots ---- *)

let pax_f node = match node.protocol with Paxos f -> f | Two_phase | Three_phase -> 0

(* every site can coordinate, so the acceptor set is pinned to the
   2f+1 lowest-numbered sites regardless of which site leads *)
let acceptors node = List.init ((2 * pax_f node) + 1) (fun i -> i + 1)

(* A standby leader's ballot: the epoch encoding, at round >= 1 so it
   always outranks every coordinator's round-0 ballot (site - 1 <= n - 1)
   — that is what obliges it to run phase 1 and adopt any accepted value
   before proposing.  Recorded in [directive_epochs] like a termination
   election, feeding the split-brain oracle; bumping [epoch_seen] makes
   consecutive ballots from this site strictly increase. *)
let pax_elect_ballot node ~txn =
  let seen = max (epoch_of node ~txn) (node.n_sites - 1) in
  let rec go r =
    let e = (r * node.n_sites) + node.site - 1 in
    if e > seen then e else go (r + 1)
  in
  let e = go 1 in
  bump_epoch node ~txn e;
  node.directive_epochs <- (txn, e) :: node.directive_epochs;
  e

let metric ctx name = Sim.Metrics.incr (Sim.World.metrics ctx.Sim.World.world) name
let now ctx = Sim.World.now ctx.Sim.World.world
let metrics ctx = Sim.World.metrics ctx.Sim.World.world
let observe ctx name v = Sim.Metrics.observe (metrics ctx) name v

(* ------------------------------------------------------------------ *)
(* participant (resource manager) side                                 *)
(* ------------------------------------------------------------------ *)

let release node (p : p_txn) =
  Lock_table.release_all node.locks ~txn:p.txn;
  p.held <- []

let buffered_value node (p : p_txn) key =
  match List.assoc_opt key p.writes with
  | Some v -> v
  | None -> Storage.get_or node.storage key ~default:0

let note_unblocked node ctx (p : p_txn) =
  match p.blocked_since with
  | Some t0 ->
      node.blocked_time <- node.blocked_time +. (now ctx -. t0);
      observe ctx "kv_blocked_duration" (now ctx -. t0);
      p.blocked_since <- None
  | None -> ()

(* Local abort before voting: the unilateral abort right.  [notify] sends
   the no vote to the coordinator. *)
let p_abort_unvoted node ctx (p : p_txn) ~notify =
  match p.status with
  | P_working ->
      Sim.Metrics.timer_discard (metrics ctx) "kv_lock_wait" ~key:p.txn;
      (* status flips before the force so the abort cannot re-enter while
         the record is in flight; locks stay held until it is durable *)
      p.status <- P_done false;
      (* forced before the no vote leaves: the vote is this abort's first
         externally visible consequence *)
      Kv_wal.force_k node.wal
        (Kv_wal.P_outcome { txn = p.txn; commit = false })
        (fun () ->
          release node p;
          if notify then
            Sim.World.send ctx ~dst:p.coordinator (Kv_msg.Vote { txn = p.txn; vote = `No }))
  | P_prepared | P_precommitted | P_done _ -> ()

(** Apply and log the outcome.  [announce] runs once the outcome record
    is durable on this log — outward outcome broadcasts (a backup
    coordinator's, a termination's) go through it so no peer can see an
    outcome a crash could still take back. *)
let p_finish ?announce node ctx (p : p_txn) ~commit =
  match p.status with
  | P_done _ -> (
      match announce with Some k -> Kv_wal.after_durable node.wal k | None -> ())
  | P_working | P_prepared | P_precommitted ->
      p.status <- P_done commit;
      if commit then Storage.apply node.storage ~txn:p.txn p.writes;
      Kv_wal.force_k node.wal
        (Kv_wal.P_outcome { txn = p.txn; commit })
        (fun () ->
          (match announce with Some k -> k () | None -> ());
          note_unblocked node ctx p;
          release node p;
          (* the presumed side needs no acknowledgement: the coordinator has
             already forgotten the transaction *)
          let presumed =
            match node.presumption with
            | No_presumption -> false
            | Presume_abort -> not commit
            | Presume_commit -> commit
          in
          if not presumed then Sim.World.send ctx ~dst:p.coordinator (Kv_msg.Done { txn = p.txn }))

(* Continue acquiring locks for p's remaining ops; once all are held, force
   the prepared record and vote yes. *)
let rec p_continue node ctx (p : p_txn) =
  match p.pending_ops with
  | op :: rest -> (
      let key = Txn.key_of_op op and mode = Txn.lock_mode op in
      match Lock_table.acquire node.locks ~txn:p.txn ~key ~mode with
      | Lock_table.Granted ->
          if (not (List.mem_assoc key p.held)) || mode = Lock_table.Exclusive then
            p.held <- (key, mode) :: List.remove_assoc key p.held;
          (match op with
          | Txn.Get _ -> ()
          | Txn.Put (k, v) -> p.writes <- (k, v) :: List.remove_assoc k p.writes
          | Txn.Add (k, d) ->
              let v = buffered_value node p k + d in
              p.writes <- (k, v) :: List.remove_assoc k p.writes);
          p.pending_ops <- rest;
          p_continue node ctx p
      | Lock_table.Waiting ->
          (* Parked; the lock table's grant callback resumes us.  The timer
             bounds the wait: deadlock cycles spanning several sites escape
             the local detector and resolve by timeout. *)
          metric ctx "lock_waits";
          let txn = p.txn in
          ignore
            (Sim.World.set_timer ctx ~delay:node.lock_wait_timeout (fun () ->
                 match Hashtbl.find_opt node.p_txns txn with
                 | Some p when p.status = P_working && p.pending_ops <> [] ->
                     metric ctx "lock_timeouts";
                     node.deadlock_aborts <- node.deadlock_aborts + 1;
                     p_abort_unvoted node ctx p ~notify:true
                 | _ -> ()))
      | Lock_table.Deadlock _cycle ->
          metric ctx "deadlocks";
          node.deadlock_aborts <- node.deadlock_aborts + 1;
          p_abort_unvoted node ctx p ~notify:true)
  | [] ->
      if p.status = P_working then
        if node.read_only_opt && p.writes = [] then begin
          (* Read-only participant: done at vote time — release the read
             locks and drop out of phase 2 (nothing to log: there is
             nothing to redo or undo here).  Crucially it leaves the
             transaction entirely: were it to stay as a "done" participant
             it could be elected backup coordinator and announce a commit
             outcome it never actually learned. *)
          metric ctx "read_only_votes";
          Sim.Metrics.timer_stop (metrics ctx) "kv_lock_wait" ~key:p.txn ~at:(now ctx);
          release node p;
          Hashtbl.remove node.p_txns p.txn;
          Hashtbl.replace node.ro_done p.txn ();
          Sim.World.send ctx ~dst:p.coordinator (Kv_msg.Vote { txn = p.txn; vote = `Read_only })
        end
        else begin
          Sim.Metrics.timer_stop (metrics ctx) "kv_lock_wait" ~key:p.txn ~at:(now ctx);
          p.status <- P_prepared;
          (* THE force point of the commit path: the prepared record must
             be stable before the yes vote leaves — a crash between them
             is a different (and correctly handled) state than one after *)
          Kv_wal.force_k node.wal
            (Kv_wal.P_prepared
               {
                 txn = p.txn;
                 coordinator = p.coordinator;
                 participants = p.participants;
                 writes = p.writes;
                 locks = p.held;
               })
            (fun () ->
              Hashtbl.replace node.sent_yes_txns p.txn ();
              Sim.World.send ctx ~dst:p.coordinator (Kv_msg.Vote { txn = p.txn; vote = `Yes }))
        end

let on_prepare node ctx ~src ~txn ~ops ~participants =
  if Hashtbl.mem node.ro_done txn then metric ctx "duplicate_prepare_ignored"
  else if not (Hashtbl.mem node.p_txns txn) then begin
    let p =
      {
        txn;
        coordinator = src;
        participants;
        pending_ops = ops;
        held = [];
        writes = [];
        status = P_working;
        blocked_since = None;
      }
    in
    Hashtbl.replace node.p_txns txn p;
    (* lock-wait phase: from the prepare's arrival to this participant's
       vote (stopped in [p_continue], discarded on unilateral abort) *)
    Sim.Metrics.timer_start (metrics ctx) "kv_lock_wait" ~key:txn ~at:(now ctx);
    if List.mem src node.down_view then begin
      (* A chaos-delayed Prepare can outlive its coordinator.  The
         failure notification for [src] has already fired, so nothing
         will ever re-examine this transaction — voting yes now would
         hold locks for an outcome nobody can announce.  Refuse: abort
         unilaterally and answer no (a dead coordinator drops the vote;
         a falsely-suspected live one aborts the transaction). *)
      metric ctx "orphan_prepare_refused";
      p_abort_unvoted node ctx p ~notify:true
    end
    else p_continue node ctx p
  end

(* ------------------------------------------------------------------ *)
(* coordinator (transaction manager) side                              *)
(* ------------------------------------------------------------------ *)

let c_announce node ctx (c : c_txn) ~commit =
  match c.c_status with
  | C_decided _ -> ()  (* a pending decision force already owns this transaction *)
  | C_collecting | C_precommitting ->
      c.c_status <- C_decided commit;
      (* forced before the outcome broadcast below *)
      Kv_wal.force_k node.wal
        (Kv_wal.C_decided { txn = c.c_id; commit })
        (fun () ->
          if commit then node.committed <- node.committed + 1
          else node.aborted <- node.aborted + 1;
          node.latencies <- (now ctx -. c.submitted_at) :: node.latencies;
          observe ctx
            (if commit then "commit_latency" else "abort_latency")
            (now ctx -. c.submitted_at);
          (* decision phase: from the last vote's arrival to the outcome
             broadcast (covers 3PC's precommit round; ~0 under 2PC) *)
          (match c.votes_in_at with
          | Some t0 -> observe ctx "kv_decision_phase" (now ctx -. t0)
          | None -> ());
          if c.c_participants <> [] then note_announce node ~txn:c.c_id ~commit;
          List.iter
            (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Outcome { txn = c.c_id; commit }))
            c.c_participants;
          (* the presumed side is forgotten at once: no acknowledgements
             expected, no retained coordinator state (inquiries are
             answered from the log) *)
          let presumed =
            match node.presumption with
            | No_presumption -> false
            | Presume_abort -> not commit
            | Presume_commit -> commit
          in
          if presumed then begin
            Hashtbl.remove node.c_txns c.c_id;
            Kv_wal.force_k node.wal (Kv_wal.C_finished { txn = c.c_id }) (fun () -> ())
          end)

(* Paxos Commit: all votes were yes — propose Commit to the acceptors at
   the coordinator's round-0 ballot.  The C_precommitted record is forced
   BEFORE the proposal leaves: a coordinator that crashes afterwards must
   classify as in-precommit and query at recovery, never presume abort
   against an outcome a recovery leader may have driven to Commit. *)
(* The accept round retries under [query_budget], like {!query_round}: a
   crashed-and-recovered acceptor (or a dropped 2a/2b) must not strand a
   live coordinator in C_precommitting forever.  Re-sent accepts are
   idempotent at the acceptors; a PaxReject ends the loop by removing the
   c_txn. *)
let rec pax_accept_round node ctx ~txn ~attempt =
  match Hashtbl.find_opt node.c_txns txn with
  | Some c when c.c_status = C_precommitting ->
      let ballot = node.site - 1 in
      List.iter
        (fun dst ->
          Sim.World.send ctx ~dst
            (Kv_msg.PaxAccept { txn; ballot; commit = true; participants = c.c_participants }))
        (acceptors node);
      if node.query_budget > 0 then begin
        node.query_budget <- node.query_budget - 1;
        let delay =
          Sim.Backoff.delay ~rng:node.query_rng ~interval:node.query_interval
            ~cap:node.query_backoff_cap ~attempt
        in
        ignore
          (Sim.World.set_timer ctx ~delay (fun () ->
               pax_accept_round node ctx ~txn ~attempt:(attempt + 1)))
      end
  | _ -> ()

let pax_propose node ctx (c : c_txn) =
  match c.c_status with
  | C_decided _ -> ()
  | C_collecting | C_precommitting ->
      c.c_status <- C_precommitting;
      Kv_wal.force_k node.wal
        (Kv_wal.C_precommitted { txn = c.c_id })
        (fun () ->
          (* the round-0 authority of the epoch encoding *)
          bump_epoch node ~txn:c.c_id (node.site - 1);
          pax_accept_round node ctx ~txn:c.c_id ~attempt:0)

let c_all_votes_in node ctx (c : c_txn) =
  c.votes_in_at <- Some (now ctx);
  (* vote phase: from submission to the last yes vote *)
  observe ctx "kv_vote_phase" (now ctx -. c.submitted_at);
  match node.protocol with
  | Two_phase -> c_announce node ctx c ~commit:true
  | Paxos _ ->
      if c.c_participants = [] then
        (* every participant was read-only: no locks held anywhere, no
           recovery possible — nothing to replicate *)
        c_announce node ctx c ~commit:true
      else pax_propose node ctx c
  | Three_phase ->
      if c.c_participants = [] then
        (* every participant was read-only: nothing to precommit *)
        c_announce node ctx c ~commit:true
      else begin
        (* The buffer phase: log it, then move every participant to
           prepared-to-commit.  A participant that voted yes and has since
           been detected down must be skipped here: it cannot ack, and its
           failure notification already fired (while we were still
           collecting votes), so nothing would ever prune it from the ack
           wait — it learns the outcome at recovery instead. *)
        let up = List.filter (fun s -> not (List.mem s node.down_view)) c.c_participants in
        c.c_status <- C_precommitting;
        c.awaiting_acks <- up;
        (* forced before the precommit round: a recovered coordinator must
           know a backup may have terminated this transaction either way *)
        Kv_wal.force_k node.wal
          (Kv_wal.C_precommitted { txn = c.c_id })
          (fun () ->
            (* the live coordinator's round-0 authority *)
            let epoch = node.site - 1 in
            bump_epoch node ~txn:c.c_id epoch;
            List.iter
              (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Precommit { txn = c.c_id; epoch }))
              up;
            if up = [] then c_announce node ctx c ~commit:true)
      end

let on_client_begin ?submitted_at node ctx (txn : Txn.t) =
  let submitted_at = match submitted_at with Some t -> t | None -> now ctx in
  let involved = Txn.participants ~n_sites:node.n_sites txn in
  (* Under the read-only optimization, sites that only read will drop out
     at vote time; they are therefore excluded from the {e termination}
     participant list up front (every site knows the write-participants
     from the Prepare), so no survivor ever waits for a read-only site to
     act as backup coordinator. *)
  let participants =
    if node.read_only_opt then
      List.filter
        (fun s ->
          Txn.ops_for ~n_sites:node.n_sites txn ~site:s
          |> List.exists (function Txn.Put _ | Txn.Add _ -> true | Txn.Get _ -> false))
        involved
    else involved
  in
  if List.exists (fun s -> List.mem s node.down_view) involved then begin
    (* a participant is known to be down: refuse outright (abort without
       engaging the commit protocol) — one sync covers both records *)
    Kv_wal.append node.wal
      (Kv_wal.C_begin { txn = txn.Txn.id; participants; three_phase = node.protocol = Three_phase });
    Kv_wal.force_k node.wal
      (Kv_wal.C_decided { txn = txn.Txn.id; commit = false })
      (fun () ->
        node.aborted <- node.aborted + 1;
        node.latencies <- 0.0 :: node.latencies;
        metric ctx "refused_participant_down")
  end
  else
  let c =
    {
      c_id = txn.Txn.id;
      c_participants = participants;
      (* every involved site must vote, read-only ones included *)
      awaiting_votes = involved;
      awaiting_acks = [];
      c_status = C_collecting;
      submitted_at;
      votes_in_at = None;
      pax_accepts = [];
    }
  in
  Hashtbl.replace node.c_txns txn.Txn.id c;
  (* forced before the prepares go out *)
  Kv_wal.force_k node.wal
    (Kv_wal.C_begin { txn = txn.Txn.id; participants; three_phase = node.protocol = Three_phase })
    (fun () ->
      List.iter
        (fun dst ->
          Sim.World.send ctx ~dst
            (Kv_msg.Prepare
               {
                 txn = txn.Txn.id;
                 ops = Txn.ops_for ~n_sites:node.n_sites txn ~site:dst;
                 participants;
               }))
        involved)

(* Coordinator pipelining: a client transaction is admitted only while
   fewer than [pipeline_depth] WAL forces are in flight here; the rest
   queue and drain as forces complete (the batcher's on_drain hook).
   Vacuous when forces are synchronous — the gate never sees a pending
   force, so levers-off behaviour is unchanged. *)
let drain_admissions node ctx =
  while
    (not (Queue.is_empty node.admission_q))
    && Kv_wal.pending_forces node.wal < node.pipeline_depth
  do
    let txn, arrived = Queue.pop node.admission_q in
    on_client_begin ~submitted_at:arrived node ctx txn
  done

let admit_client node ctx (txn : Txn.t) =
  if
    Kv_wal.pending_forces node.wal >= node.pipeline_depth
    || not (Queue.is_empty node.admission_q)
  then begin
    metric ctx "pipeline_queued";
    Queue.push (txn, now ctx) node.admission_q
  end
  else on_client_begin node ctx txn

let status_of node ~txn : bool option =
  (* what this site knows about txn's outcome, from stable state *)
  match Kv_wal.classify_coordinator node.wal ~txn with
  | Kv_wal.C_resolved { commit; _ } -> Some commit
  | _ -> (
      match Kv_wal.classify_participant node.wal ~txn with
      | Kv_wal.P_resolved commit -> Some commit
      | _ -> None)

let on_vote node ctx ~src ~txn ~vote =
  match Hashtbl.find_opt node.c_txns txn with
  | None -> (
      (* The transaction is gone from volatile state (decided and
         forgotten).  A vote can still arrive — a chaos-delayed Prepare
         prepares its participant after the decision — and that
         participant now holds locks awaiting an outcome that was
         announced before it voted.  Answer from the log. *)
      Kv_wal.after_durable node.wal (fun () ->
          match status_of node ~txn with
          | Some commit ->
              note_announce node ~txn ~commit;
              Sim.World.send ctx ~dst:src (Kv_msg.Outcome { txn; commit })
          | None -> ()))
  | Some c -> (
      match c.c_status with
      | C_decided commit ->
          (* late or duplicated vote after the decision: the voter is a
             prepared participant that missed the announcement — repeat it
             (once the decision record is safely on stable storage) *)
          Kv_wal.after_durable node.wal (fun () ->
              note_announce node ~txn ~commit;
              Sim.World.send ctx ~dst:src (Kv_msg.Outcome { txn; commit }))
      | C_precommitting -> ()
      | C_collecting -> (
          match vote with
          | `Yes ->
              c.awaiting_votes <- List.filter (fun s -> s <> src) c.awaiting_votes;
              if c.awaiting_votes = [] then c_all_votes_in node ctx c
          | `Read_only ->
              (* already released and done: no outcome for this site *)
              c.awaiting_votes <- List.filter (fun s -> s <> src) c.awaiting_votes;
              c.c_participants <- List.filter (fun s -> s <> src) c.c_participants;
              if c.awaiting_votes = [] then c_all_votes_in node ctx c
          | `No -> c_announce node ctx c ~commit:false))

let on_precommit_ack node ctx ~src ~txn =
  (* either the coordinator collecting 3PC acks, or a backup coordinator in
     termination phase 1 (commit side) *)
  (match Hashtbl.find_opt node.c_txns txn with
  | Some c when c.c_status = C_precommitting ->
      c.awaiting_acks <- List.filter (fun s -> s <> src) c.awaiting_acks;
      if c.awaiting_acks = [] then c_announce node ctx c ~commit:true
  | Some _ | None -> ());
  match Hashtbl.find_opt node.backups txn with
  | Some b when b.b_commit ->
      b.b_awaiting <- List.filter (fun s -> s <> src) b.b_awaiting;
      if b.b_awaiting = [] then begin
        Hashtbl.remove node.backups txn;
        match Hashtbl.find_opt node.p_txns txn with
        | Some p ->
            p_finish node ctx p ~commit:true ~announce:(fun () ->
                note_announce node ~txn ~commit:true;
                List.iter
                  (fun dst ->
                    if dst <> node.site then
                      Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit = true }))
                  p.participants)
        | None -> ()
      end
  | Some _ | None -> ()

let on_demote_ack node ctx ~src ~txn =
  match Hashtbl.find_opt node.backups txn with
  | Some b when not b.b_commit ->
      b.b_awaiting <- List.filter (fun s -> s <> src) b.b_awaiting;
      if b.b_awaiting = [] then begin
        Hashtbl.remove node.backups txn;
        match Hashtbl.find_opt node.p_txns txn with
        | Some p ->
            p_finish node ctx p ~commit:false ~announce:(fun () ->
                note_announce node ~txn ~commit:false;
                List.iter
                  (fun dst ->
                    if dst <> node.site then
                      Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit = false }))
                  p.participants)
        | None -> ()
      end
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* termination protocol (3PC) and blocking (2PC)                       *)
(* ------------------------------------------------------------------ *)

(* Periodic outcome query for in-doubt transactions: a blocked 2PC
   participant asking its (hopefully recovering) coordinator, or a
   recovered site asking its peers.  Retries back off exponentially
   (capped, jittered — {!Sim.Backoff}) so a long outage is not hammered
   at a fixed rate; [query_budget] stays as the outer bound across all
   of this site's in-doubt transactions. *)
let rec query_round ?(on_round = fun () -> ()) node ctx ~txn ~targets ~attempt =
  let unresolved () =
    match Hashtbl.find_opt node.p_txns txn with
    | Some p -> (match p.status with P_done _ -> false | _ -> true)
    | None -> (
        match Kv_wal.classify_coordinator node.wal ~txn with
        | Kv_wal.C_in_precommit _ -> not (Hashtbl.mem node.c_txns txn)
        | _ -> false)
  in
  if unresolved () && node.query_budget > 0 then begin
    node.query_budget <- node.query_budget - 1;
    on_round ();
    List.iter (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Status_req { txn })) targets;
    let delay =
      Sim.Backoff.delay ~rng:node.query_rng ~interval:node.query_interval
        ~cap:node.query_backoff_cap ~attempt
    in
    ignore
      (Sim.World.set_timer ctx ~delay (fun () ->
           query_round ~on_round node ctx ~txn ~targets ~attempt:(attempt + 1)))
  end

let query_loop node ctx ~txn ~targets = query_round node ctx ~txn ~targets ~attempt:0

let reachable_others node (p : p_txn) =
  List.filter
    (fun s ->
      s <> node.site && (not (List.mem s node.down_view)) && not (List.mem s node.tainted))
    p.participants

(* The backup election: lowest operational, never-crashed participant.
   Deterministic under the oracle.  Under the detector, taint is hearsay
   (every suspicion taints) and an all-tainted participant set would
   deadlock the transaction — fall back to current suspicion only; epoch
   fencing keeps the extra candidates safe. *)
let eligible_backup node (p : p_txn) =
  let pick ~ignore_taint =
    List.filter
      (fun s ->
        (not (List.mem s node.down_view))
        && (ignore_taint || not (List.mem s node.tainted))
        && (s <> node.site || not node.ever_crashed))
      p.participants
  in
  match pick ~ignore_taint:false with
  | backup :: _ -> Some backup
  | [] -> (
      if not node.detector then None
      else match pick ~ignore_taint:true with backup :: _ -> Some backup | [] -> None)

(* ---- Paxos Commit recovery (the replicated-coordinator path) ---- *)

(* The standby-leader election: lowest operational acceptor, preferring
   never-crashed ones.  Unlike [eligible_backup], taint is only a
   preference here, never a veto: an acceptor's promise/accept state is
   WAL-durable ([A_promised] records) and every directive is ballot-
   fenced, so a crashed-and-recovered acceptor leads recovery safely —
   vetoing it would deadlock any schedule that touches every acceptor
   once, with a live majority still reachable.  [exclude] skips a site
   regardless (the still-alive coordinator, under a lease fault); 0
   excludes nobody. *)
let eligible_acceptor node ~exclude =
  let pick ~ignore_taint =
    List.filter
      (fun s ->
        s <> exclude
        && (not (List.mem s node.down_view))
        && (ignore_taint || not (List.mem s node.tainted))
        && (ignore_taint || s <> node.site || not node.ever_crashed))
      (acceptors node)
  in
  match pick ~ignore_taint:false with
  | a :: _ -> Some a
  | [] -> ( match pick ~ignore_taint:true with a :: _ -> Some a | [] -> None)

(* A recovery leader's decision: logged coordinator-style (C_begin first,
   so classification and restart re-announcement work), forced before the
   outcome leaves. *)
let pax_leader_decide node ctx ~txn ~participants ~commit =
  (match Kv_wal.classify_coordinator node.wal ~txn with
  | Kv_wal.C_unknown ->
      Kv_wal.append node.wal (Kv_wal.C_begin { txn; participants; three_phase = true })
  | _ -> ());
  Kv_wal.force_k node.wal
    (Kv_wal.C_decided { txn; commit })
    (fun () ->
      if List.exists (fun s -> s <> node.site) participants then note_announce node ~txn ~commit;
      List.iter
        (fun dst -> if dst <> node.site then Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit }))
        participants;
      match Hashtbl.find_opt node.p_txns txn with
      | Some p -> p_finish node ctx p ~commit
      | None -> ())

(** Lead Paxos recovery for [txn]: phase 1a at a fresh round->=1 ballot to
    every acceptor; on f+1 promises adopt the highest-ballot accepted
    outcome (a wholly free instance aborts) and run phase 2a.  Answers
    directly when this site's log already resolves the transaction. *)
let start_pax_recovery node ctx ~txn ~participants =
  Kv_wal.after_durable node.wal (fun () ->
      match status_of node ~txn with
      | Some commit ->
          (* already resolved here: re-announce (the asker missed it) *)
          if List.exists (fun s -> s <> node.site) participants then
            note_announce node ~txn ~commit;
          List.iter
            (fun dst ->
              if dst <> node.site then Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit }))
            participants;
          (match Hashtbl.find_opt node.p_txns txn with
          | Some p -> p_finish node ctx p ~commit
          | None -> ())
      | None -> (
          match Hashtbl.find_opt node.pax_recoveries txn with
          | Some pr ->
              (* already leading: re-drive the pending phase at the same
                 ballot — the first broadcast may have hit a dead majority
                 and a nudge means someone believes acceptors are back.
                 Re-sent 1a/2a messages are idempotent at the acceptors. *)
              List.iter
                (fun dst ->
                  Sim.World.send ctx ~dst
                    (if pr.pr_phase2 then
                       Kv_msg.PaxAccept
                         {
                           txn;
                           ballot = pr.pr_ballot;
                           commit = pr.pr_commit;
                           participants = pr.pr_participants;
                         }
                     else Kv_msg.PaxP1a { txn; ballot = pr.pr_ballot }))
                (acceptors node)
          | None ->
              metric ctx "paxos_recoveries";
              let ballot = pax_elect_ballot node ~txn in
              Hashtbl.replace node.pax_recoveries txn
                {
                  pr_ballot = ballot;
                  pr_participants = participants;
                  pr_promises = [];
                  pr_accepts = [];
                  pr_phase2 = false;
                  pr_commit = false;
                };
              List.iter
                (fun dst -> Sim.World.send ctx ~dst (Kv_msg.PaxP1a { txn; ballot }))
                (acceptors node)))

(* A blocked prepared participant under Paxos: nudge a standby acceptor
   into leading recovery, and keep nudging on every query round — the
   first leader may itself die mid-recovery, and re-election is just
   another nudge at whoever is now the lowest live acceptor. *)
let pax_initiate node ctx (p : p_txn) ~exclude =
  if p.blocked_since = None then p.blocked_since <- Some (now ctx);
  let nudge () =
    match eligible_acceptor node ~exclude with
    | Some a when a = node.site ->
        start_pax_recovery node ctx ~txn:p.txn ~participants:p.participants
    | Some a ->
        Sim.World.send ctx ~dst:a (Kv_msg.PaxRecover { txn = p.txn; participants = p.participants })
    | None -> ()
  in
  let targets =
    (p.coordinator :: acceptors node) @ p.participants
    |> List.filter (fun s -> s <> node.site)
    |> List.sort_uniq compare
  in
  nudge ();
  query_round ~on_round:nudge node ctx ~txn:p.txn ~targets ~attempt:0

(** The backup coordinator's action for one orphaned transaction, driven by
    the paper's decision rule applied to {e its own} participant state. *)
let run_termination node ctx (p : p_txn) =
  if not (Hashtbl.mem node.backups p.txn) then begin
    metric ctx "terminations";
    let others = reachable_others node p in
    match p.status with
    | P_done commit ->
        (* already final: phase 1 omitted (announce once the outcome
           record — possibly still in a pending batch — is durable) *)
        if others <> [] then
          Kv_wal.after_durable node.wal (fun () ->
              note_announce node ~txn:p.txn ~commit;
              List.iter
                (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Outcome { txn = p.txn; commit }))
                others)
    | P_precommitted ->
        (* decision rule: concurrency set of the buffer state contains a
           commit state -> COMMIT.  Phase 1: move everyone up to
           precommitted; phase 2 on the acks. *)
        let epoch = elect_epoch node ~txn:p.txn in
        Hashtbl.replace node.backups p.txn { b_awaiting = others; b_commit = true };
        List.iter
          (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Precommit { txn = p.txn; epoch }))
          others;
        if others = [] then on_precommit_ack node ctx ~src:node.site ~txn:p.txn
    | P_prepared | P_working ->
        (* decision rule: no commit state in the concurrency set -> ABORT.
           Phase 1: move everyone down to prepared; phase 2 on the acks. *)
        let epoch = elect_epoch node ~txn:p.txn in
        Hashtbl.replace node.backups p.txn { b_awaiting = others; b_commit = false };
        List.iter
          (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Demote { txn = p.txn; epoch }))
          others;
        if others = [] then on_demote_ack node ctx ~src:node.site ~txn:p.txn
  end

(* ---- quorum termination (T_quorum): poll, then decide by counts ---- *)

let local_pstate node ~txn : [ `Working | `Prepared | `Precommitted | `Done of bool ] =
  match Hashtbl.find_opt node.p_txns txn with
  | Some p -> (
      match p.status with
      | P_working -> `Working
      | P_prepared -> `Prepared
      | P_precommitted -> `Precommitted
      | P_done o -> `Done o)
  | None -> (
      match Kv_wal.classify_participant node.wal ~txn with
      | Kv_wal.P_resolved o -> `Done o
      | Kv_wal.P_in_doubt { precommitted; _ } -> if precommitted then `Precommitted else `Prepared
      | Kv_wal.P_unknown -> `Working)

let rec evaluate_quorum_poll node ctx (p : p_txn) ~q (poll : poll_state) =
  if poll.q_awaiting = [] && Hashtbl.mem node.pollings p.txn then begin
    Hashtbl.remove node.pollings p.txn;
    let reps = poll.q_reps in
    let has f = List.exists (fun (_, r) -> f r) reps in
    let count f = List.length (List.filter (fun (_, r) -> f r) reps) in
    let prepared_up = function `Precommitted | `Done true -> true | _ -> false in
    if has (fun r -> r = `Done true) then finish_orphan node ctx p ~commit:true
    else if has (fun r -> r = `Done false) then finish_orphan node ctx p ~commit:false
    else if count prepared_up >= q then begin
      (* move the reachable prepared participants up, then commit *)
      let to_move =
        List.filter_map (fun (s, r) -> if s <> node.site && r = `Prepared then Some s else None) reps
      in
      let move_others () =
        Hashtbl.replace node.backups p.txn { b_awaiting = to_move; b_commit = true };
        List.iter
          (fun dst ->
            Sim.World.send ctx ~dst (Kv_msg.Precommit { txn = p.txn; epoch = poll.q_epoch }))
          to_move;
        if to_move = [] then on_precommit_ack node ctx ~src:node.site ~txn:p.txn
      in
      match Hashtbl.find_opt node.p_txns p.txn with
      | Some me when me.status = P_prepared ->
          me.status <- P_precommitted;
          Kv_wal.force_k node.wal (Kv_wal.P_precommitted { txn = p.txn }) move_others
      | _ -> move_others ()
    end
    else if count (fun r -> r = `Working || r = `Prepared) >= q then
      (* monotone: no demotion needed — a commit quorum can never have
         existed and never will among these states *)
      finish_orphan node ctx p ~commit:false
    else begin
      (* below quorum either way: wait for recoveries/healing; the query
         loop doubles as the retry channel *)
      metric ctx "quorum_blocked";
      query_loop node ctx ~txn:p.txn ~targets:p.participants
    end
  end

and finish_orphan node ctx (p : p_txn) ~commit =
  p_finish node ctx p ~commit ~announce:(fun () ->
      if List.exists (fun dst -> dst <> node.site) p.participants then
        note_announce node ~txn:p.txn ~commit;
      List.iter
        (fun dst ->
          if dst <> node.site then Sim.World.send ctx ~dst (Kv_msg.Outcome { txn = p.txn; commit }))
        p.participants)

(** Quorum termination for one orphaned transaction: poll the reachable
    participants' states, then commit only on a quorum of
    prepared-to-commit sites, abort only on a quorum of not-prepared ones,
    and wait otherwise. *)
let run_quorum_termination node ctx (p : p_txn) ~q =
  if (not (Hashtbl.mem node.backups p.txn)) && not (Hashtbl.mem node.pollings p.txn) then begin
    metric ctx "terminations";
    match p.status with
    | P_done commit ->
        let others = reachable_others node p in
        if others <> [] then
          Kv_wal.after_durable node.wal (fun () ->
              note_announce node ~txn:p.txn ~commit;
              List.iter
                (fun dst ->
                  if dst <> node.site then
                    Sim.World.send ctx ~dst (Kv_msg.Outcome { txn = p.txn; commit }))
                others)
    | P_working | P_prepared | P_precommitted ->
        let others = reachable_others node p in
        let epoch = elect_epoch node ~txn:p.txn in
        let poll =
          {
            q_awaiting = others;
            q_reps = [ (node.site, local_pstate node ~txn:p.txn) ];
            q_epoch = epoch;
          }
        in
        Hashtbl.replace node.pollings p.txn poll;
        List.iter
          (fun dst -> Sim.World.send ctx ~dst (Kv_msg.PState_req { txn = p.txn; epoch }))
          others;
        evaluate_quorum_poll node ctx p ~q poll
  end

(* Called when this site learns that [failed] crashed: handle every
   transaction whose progress depended on it. *)
let on_peer_down node ctx failed =
  if not (List.mem failed node.down_view) then node.down_view <- failed :: node.down_view;
  if not (List.mem failed node.tainted) then node.tainted <- failed :: node.tainted;
  (* Coordinator side: a crashed participant means a missing vote (abort),
     a missing precommit ack (skip it), or a missing done (ignore). *)
  Hashtbl.iter
    (fun _ c ->
      if List.mem failed c.c_participants || List.mem failed c.awaiting_votes then
        match (c.c_status, node.protocol) with
        | C_collecting, _ when List.mem failed c.awaiting_votes ->
            c_announce node ctx c ~commit:false
        | C_precommitting, Paxos _ ->
            (* awaiting acceptor majorities, not participant acks: with at
               most f acceptors down the remaining f+1 still answer *)
            ()
        | C_precommitting, _ ->
            c.awaiting_acks <- List.filter (fun s -> s <> failed) c.awaiting_acks;
            if c.awaiting_acks = [] then c_announce node ctx c ~commit:true
        | (C_collecting | C_decided _), _ -> ())
    node.c_txns;
  (* Backup side: a participant crashed during termination phase 1. *)
  Hashtbl.iter
    (fun txn b ->
      if List.mem failed b.b_awaiting then begin
        b.b_awaiting <- List.filter (fun s -> s <> failed) b.b_awaiting;
        if b.b_awaiting = [] then
          if b.b_commit then on_precommit_ack node ctx ~src:failed ~txn
          else on_demote_ack node ctx ~src:failed ~txn
      end)
    node.backups;
  (* Participant side: orphaned transactions (their coordinator died). *)
  Hashtbl.iter
    (fun _ p ->
      if p.coordinator = failed then
        match p.status with
        | P_working ->
            (* before the vote: unilateral abort, release immediately *)
            p_abort_unvoted node ctx p ~notify:false
        | P_prepared | P_precommitted | P_done _ -> (
            match node.protocol with
            | Paxos _ -> (
                match p.status with
                | P_done _ -> ()
                | _ ->
                    (* the replicated coordinator: no blocking, no local
                       decision rule — a standby acceptor completes the
                       Paxos instance at a higher ballot *)
                    metric ctx "blocked_paxos";
                    pax_initiate node ctx p ~exclude:0)
            | Two_phase -> (
                match p.status with
                | P_done _ -> ()
                | _ ->
                    (* The blocking case: locks stay held.  Cooperative
                       termination: query the peers too — one of them may
                       have received the outcome before the coordinator
                       died; if none did, we stay blocked until the
                       coordinator recovers. *)
                    metric ctx "blocked_2pc";
                    if p.blocked_since = None then p.blocked_since <- Some (now ctx);
                    let targets =
                      p.coordinator :: List.filter (fun s -> s <> node.site) p.participants
                      |> List.sort_uniq compare
                    in
                    query_loop node ctx ~txn:p.txn ~targets)
            | Three_phase ->
                (* Elect the backup.  Deterministic given the reliable
                   failure detector; cascading failures re-elect
                   automatically.  A backup already in a final state
                   announces the outcome directly (phase 1 omitted). *)
                (match eligible_backup node p with
                | Some backup when backup = node.site -> (
                    match node.termination with
                    | T_skeen -> run_termination node ctx p
                    | T_quorum q -> run_quorum_termination node ctx p ~q)
                | Some _ -> ()
                | None ->
                    (* every participant crashed at least once: fall back to
                       querying (total-failure case) *)
                    query_loop node ctx ~txn:p.txn ~targets:p.participants)))
    node.p_txns;
  (* quorum polls waiting on the crashed site *)
  Hashtbl.iter
    (fun txn (poll : poll_state) ->
      if List.mem failed poll.q_awaiting then begin
        poll.q_awaiting <- List.filter (fun s -> s <> failed) poll.q_awaiting;
        match (Hashtbl.find_opt node.p_txns txn, node.termination) with
        | Some p, T_quorum q -> evaluate_quorum_poll node ctx p ~q poll
        | _ -> ()
      end)
    node.pollings

let on_peer_up node ctx recovered =
  node.down_view <- List.filter (fun s -> s <> recovered) node.down_view;
  (* a recovered acceptor may have restored the Paxos majority: re-nudge
     recovery for every transaction still blocked here (the parked
     leader re-drives its pending phase on the nudge) *)
  (match node.protocol with
  | Paxos _ ->
      Hashtbl.iter
        (fun _ (p : p_txn) ->
          match p.status with
          | (P_prepared | P_precommitted) when p.blocked_since <> None -> (
              match eligible_acceptor node ~exclude:0 with
              | Some a when a = node.site ->
                  start_pax_recovery node ctx ~txn:p.txn ~participants:p.participants
              | Some a ->
                  Sim.World.send ctx ~dst:a
                    (Kv_msg.PaxRecover { txn = p.txn; participants = p.participants })
              | None -> ())
          | _ -> ())
        node.p_txns
  | Two_phase | Three_phase -> ());
  (* under quorum termination a healed partition may have restored the
     quorum: re-poll every still-orphaned transaction *)
  match node.termination with
  | T_quorum q ->
      Hashtbl.iter
        (fun _ (p : p_txn) ->
          match p.status with
          | (P_prepared | P_precommitted)
            when List.mem p.coordinator node.tainted && not (Hashtbl.mem node.backups p.txn) -> (
              match eligible_backup node p with
              | Some backup when backup = node.site ->
                  Hashtbl.remove node.pollings p.txn;
                  run_quorum_termination node ctx p ~q
              | _ -> ())
          | _ -> ())
        node.p_txns
  | T_skeen -> ()

(* ------------------------------------------------------------------ *)
(* recovery                                                             *)
(* ------------------------------------------------------------------ *)

(** Crash recovery: rebuild volatile state from the stable log.

    Participant transactions: in-doubt entries re-establish their locks
    before any new work is accepted, then query the coordinator for the
    outcome; unlogged transactions aborted implicitly (before the commit
    point).  Coordinated transactions: decided-but-unfinished outcomes are
    re-announced; undecided 2PC/collecting-state transactions are aborted
    (presumed abort — no participant can have learned an outcome); a 3PC
    transaction that had reached its buffer phase may have been terminated
    either way by a backup, so the recovered coordinator must ask. *)
let on_restart node ctx =
  node.ever_crashed <- true;
  node.locks <- Lock_table.create ();
  Queue.clear node.admission_q;
  Hashtbl.reset node.p_txns;
  Hashtbl.reset node.c_txns;
  Hashtbl.reset node.backups;
  Hashtbl.reset node.pollings;
  Hashtbl.reset node.pax_recoveries;
  Hashtbl.reset node.ro_done;
  (* participant side *)
  List.iter
    (fun txn ->
      match Kv_wal.classify_participant node.wal ~txn with
      | Kv_wal.P_unknown | Kv_wal.P_resolved _ -> ()
      | Kv_wal.P_in_doubt { coordinator; participants; writes; locks; precommitted } ->
          List.iter
            (fun (key, mode) -> Lock_table.force_grant node.locks ~txn ~key ~mode)
            locks;
          let p =
            {
              txn;
              coordinator;
              participants;
              pending_ops = [];
              held = locks;
              writes;
              status = (if precommitted then P_precommitted else P_prepared);
              blocked_since = None;
            }
          in
          Hashtbl.replace node.p_txns txn p)
    (Kv_wal.participated_txns node.wal);
  (* coordinator side *)
  List.iter
    (fun txn ->
      match Kv_wal.classify_coordinator node.wal ~txn with
      | Kv_wal.C_unknown -> ()
      | Kv_wal.C_resolved { finished = true; _ } -> ()
      | Kv_wal.C_resolved { participants; commit; finished = false } ->
          if participants <> [] then note_announce node ~txn ~commit;
          List.iter
            (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit }))
            participants
      | Kv_wal.C_collecting { participants; _ } ->
          (* presumed abort: no outcome can have been announced *)
          Kv_wal.force_k node.wal
            (Kv_wal.C_decided { txn; commit = false })
            (fun () ->
              node.aborted <- node.aborted + 1;
              if participants <> [] then note_announce node ~txn ~commit:false;
              List.iter
                (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit = false }))
                participants)
      | Kv_wal.C_in_precommit { participants } -> (
          (* a backup may have committed or aborted it: ask.  Under Paxos
             the decision may also never have been chosen at all (the
             accept round died with this coordinator), so asking is not
             enough — keep nudging a standby acceptor into completing
             the instance. *)
          let targets = List.filter (fun s -> s <> node.site) participants in
          match node.protocol with
          | Paxos _ ->
              let nudge () =
                match eligible_acceptor node ~exclude:0 with
                | Some a when a = node.site -> start_pax_recovery node ctx ~txn ~participants
                | Some a ->
                    Sim.World.send ctx ~dst:a (Kv_msg.PaxRecover { txn; participants })
                | None -> ()
              in
              nudge ();
              query_round ~on_round:nudge node ctx ~txn ~targets ~attempt:0
          | Two_phase | Three_phase -> query_loop node ctx ~txn ~targets))
    (Kv_wal.coordinated_txns node.wal);
  (* the in-doubt participant entries: ask around (under Paxos, also
     nudge recovery — the coordinator may be dead with nobody leading) *)
  Hashtbl.iter
    (fun txn (p : p_txn) ->
      match p.status with
      | P_prepared | P_precommitted -> (
          match node.protocol with
          | Paxos _ -> pax_initiate node ctx p ~exclude:0
          | Two_phase | Three_phase ->
              let everyone =
                List.filter (fun s -> s <> node.site) (List.init node.n_sites (fun i -> i + 1))
              in
              query_loop node ctx ~txn ~targets:everyone)
      | P_working | P_done _ -> ())
    node.p_txns

(* ------------------------------------------------------------------ *)
(* message dispatch                                                     *)
(* ------------------------------------------------------------------ *)

(* A state move is stale when its issuer no longer owns the transaction.
   Under the oracle that is sender-identity: a directive from a crashed
   site was in flight when the sender died, and the live backup now owns
   the transaction's state — adopting it could re-promote a participant
   the backup demoted.  Under the detector the sender may be alive and
   merely deposed, so identity is not enough: the directive's election
   epoch must be no older than the newest this participant has obeyed. *)
let stale_directive node ~src ~txn ~epoch =
  if node.detector then node.fencing && epoch < epoch_of node ~txn
  else List.mem src node.tainted

let fence_directive node ctx ~src ~txn =
  metric ctx "stale_termination_ignored";
  if node.detector then begin
    metric ctx "epoch_rejected_directives";
    (* tell the deposed backup so it stands down instead of retrying *)
    Sim.World.send ctx ~dst:src (Kv_msg.Epoch_reject { txn; epoch = epoch_of node ~txn })
  end

let on_message node ctx ~src (msg : Kv_msg.t) =
  match msg with
  | Kv_msg.Client_begin txn -> admit_client node ctx txn
  | Kv_msg.Prepare { txn; ops; participants } -> on_prepare node ctx ~src ~txn ~ops ~participants
  | Kv_msg.Vote { txn; vote } -> on_vote node ctx ~src ~txn ~vote
  | Kv_msg.Precommit { txn; epoch } when stale_directive node ~src ~txn ~epoch ->
      fence_directive node ctx ~src ~txn
  | Kv_msg.Demote { txn; epoch } when stale_directive node ~src ~txn ~epoch ->
      fence_directive node ctx ~src ~txn
  | Kv_msg.Precommit { txn; epoch } -> (
      bump_epoch node ~txn epoch;
      match Hashtbl.find_opt node.p_txns txn with
      | Some p -> (
          match p.status with
          | P_prepared ->
              p.status <- P_precommitted;
              (* forced before the ack: a recovered backup must find the
                 buffer state it was told about *)
              Kv_wal.force_k node.wal
                (Kv_wal.P_precommitted { txn })
                (fun () -> Sim.World.send ctx ~dst:src (Kv_msg.Precommit_ack { txn }))
          | P_precommitted | P_done true ->
              (* duplicate: the ack must still not outrun the record it
                 vouches for (it may sit in a pending batch) *)
              Kv_wal.after_durable node.wal (fun () ->
                  Sim.World.send ctx ~dst:src (Kv_msg.Precommit_ack { txn }))
          | P_working | P_done false -> ())
      | None -> ())
  | Kv_msg.Precommit_ack { txn } -> on_precommit_ack node ctx ~src ~txn
  | Kv_msg.Demote { txn; epoch } -> (
      bump_epoch node ~txn epoch;
      match Hashtbl.find_opt node.p_txns txn with
      | Some p ->
          (* termination phase 1, abort side: adopt the backup's state
             (prepared), surrendering a precommit if we held one *)
          (match p.status with
          | P_precommitted -> p.status <- P_prepared
          | P_working | P_prepared | P_done _ -> ());
          (match p.status with
          | P_prepared | P_working -> Sim.World.send ctx ~dst:src (Kv_msg.Demote_ack { txn })
          | P_done false -> Sim.World.send ctx ~dst:src (Kv_msg.Demote_ack { txn })
          | P_done true | P_precommitted -> ())
      | None -> Sim.World.send ctx ~dst:src (Kv_msg.Demote_ack { txn }))
  | Kv_msg.Demote_ack { txn } -> on_demote_ack node ctx ~src ~txn
  | Kv_msg.Outcome { txn; commit } -> (
      match Hashtbl.find_opt node.p_txns txn with
      | Some p -> p_finish node ctx p ~commit
      | None ->
          (* nothing prepared here (e.g. recovered before voting): a commit
             outcome is impossible without our yes vote *)
          ())
  | Kv_msg.Done { txn } -> (
      match Hashtbl.find_opt node.c_txns txn with
      | Some c -> (
          match c.c_status with
          | C_decided _ ->
              (* removed before the force so a second Done cannot log a
                 duplicate record while this one is in flight.  Forced not
                 for safety (losing it only causes idempotent outcome
                 re-sends at recovery) but for determinism: the durable
                 image must equal the volatile log at every crash point,
                 so fault-free runs replay byte-identically *)
              Hashtbl.remove node.c_txns txn;
              Kv_wal.force_k node.wal (Kv_wal.C_finished { txn }) (fun () -> ())
          | C_collecting | C_precommitting -> ())
      | None -> ())
  | Kv_msg.Status_req { txn } ->
      (* answered from stable state, once pending forces have landed: a
         decision sitting in an open batch must not be exposed before a
         crash can no longer take it back *)
      Kv_wal.after_durable node.wal (fun () ->
          let outcome = status_of node ~txn in
          (match outcome with Some commit -> note_announce node ~txn ~commit | None -> ());
          Sim.World.send ctx ~dst:src (Kv_msg.Status_rep { txn; outcome }))
  | Kv_msg.PState_req { txn; epoch }
    when node.detector && node.fencing && epoch < epoch_of node ~txn ->
      (* a poll is read-only, so it was never identity-checked under the
         oracle; in detector mode fencing it stops a deposed backup from
         gathering a quorum it would then act on *)
      fence_directive node ctx ~src ~txn
  | Kv_msg.PState_req { txn; epoch } ->
      if node.detector then bump_epoch node ~txn epoch;
      (* the reply feeds a quorum count: a volatile precommit whose record
         is still in a pending batch must not be reported until it is
         durable, or a crash could shrink a counted commit quorum *)
      Kv_wal.after_durable node.wal (fun () ->
          Sim.World.send ctx ~dst:src (Kv_msg.PState_rep { txn; state = local_pstate node ~txn }))
  | Kv_msg.Heartbeat -> ()
  | Kv_msg.Epoch_reject { txn; epoch } ->
      (* a participant refused our directive: a newer backup owns this
         transaction.  Stand down without deciding — abandon the
         termination attempt and fall back to querying for the outcome. *)
      bump_epoch node ~txn epoch;
      if Hashtbl.mem node.backups txn || Hashtbl.mem node.pollings txn then begin
        Hashtbl.remove node.backups txn;
        Hashtbl.remove node.pollings txn;
        match Hashtbl.find_opt node.p_txns txn with
        | Some p -> query_loop node ctx ~txn ~targets:(reachable_others node p)
        | None -> ()
      end
  | Kv_msg.PState_rep { txn; state } -> (
      match (Hashtbl.find_opt node.pollings txn, node.termination) with
      | Some poll, T_quorum q when List.mem src poll.q_awaiting -> (
          poll.q_awaiting <- List.filter (fun s -> s <> src) poll.q_awaiting;
          poll.q_reps <- (src, state) :: poll.q_reps;
          match Hashtbl.find_opt node.p_txns txn with
          | Some p -> evaluate_quorum_poll node ctx p ~q poll
          | None -> ())
      | _ -> ())
  | Kv_msg.PaxAccept { txn; ballot; commit; participants = _ } ->
      (* acceptor, phase 2a: accept unless a higher ballot was promised;
         the accepted record is forced before the reply leaves — it IS
         the replicated decision state a recovering leader rebuilds from *)
      let promised, _ = Kv_wal.acceptor_state node.wal ~txn in
      if ballot < promised then
        Kv_wal.after_durable node.wal (fun () ->
            Sim.World.send ctx ~dst:src (Kv_msg.PaxReject { txn; ballot = promised }))
      else begin
        bump_epoch node ~txn ballot;
        Kv_wal.force_k node.wal
          (Kv_wal.A_accepted { txn; ballot; commit })
          (fun () -> Sim.World.send ctx ~dst:src (Kv_msg.PaxAccepted { txn; ballot; commit }))
      end
  | Kv_msg.PaxP1a { txn; ballot } ->
      (* acceptor, phase 1a: promise (forced) and report the highest
         accepted outcome so the new leader adopts it *)
      let promised, accepted = Kv_wal.acceptor_state node.wal ~txn in
      if ballot < promised then
        Kv_wal.after_durable node.wal (fun () ->
            Sim.World.send ctx ~dst:src (Kv_msg.PaxReject { txn; ballot = promised }))
      else begin
        bump_epoch node ~txn ballot;
        Kv_wal.force_k node.wal
          (Kv_wal.A_promised { txn; ballot })
          (fun () -> Sim.World.send ctx ~dst:src (Kv_msg.PaxP1b { txn; ballot; accepted }))
      end
  | Kv_msg.PaxP1b { txn; ballot; accepted } -> (
      (* recovery leader: count promises; at f+1, adopt and propose *)
      match Hashtbl.find_opt node.pax_recoveries txn with
      | Some pr when (not pr.pr_phase2) && ballot = pr.pr_ballot ->
          if not (List.mem_assoc src pr.pr_promises) then
            pr.pr_promises <- (src, accepted) :: pr.pr_promises;
          if List.length pr.pr_promises >= pax_f node + 1 then begin
            pr.pr_phase2 <- true;
            let adopted =
              List.fold_left
                (fun acc (_, a) ->
                  match (acc, a) with
                  | None, a -> a
                  | Some (b, _), Some (b', _) when b' > b -> a
                  | acc, _ -> acc)
                None pr.pr_promises
            in
            (* a wholly free instance is decided Abort: nothing was ever
               proposed, so nobody can have released locks on a commit *)
            pr.pr_commit <- (match adopted with Some (_, c) -> c | None -> false);
            List.iter
              (fun dst ->
                Sim.World.send ctx ~dst
                  (Kv_msg.PaxAccept
                     {
                       txn;
                       ballot = pr.pr_ballot;
                       commit = pr.pr_commit;
                       participants = pr.pr_participants;
                     }))
              (acceptors node)
          end
      | _ -> ())
  | Kv_msg.PaxAccepted { txn; ballot; commit } -> (
      (* the round-0 coordinator collecting its own proposal *)
      (match Hashtbl.find_opt node.c_txns txn with
      | Some c when c.c_status = C_precommitting && ballot = node.site - 1 ->
          if not (List.mem src c.pax_accepts) then c.pax_accepts <- src :: c.pax_accepts;
          if List.length c.pax_accepts >= pax_f node + 1 then c_announce node ctx c ~commit
      | _ -> ());
      (* a recovery leader collecting phase 2b *)
      match Hashtbl.find_opt node.pax_recoveries txn with
      | Some pr when pr.pr_phase2 && ballot = pr.pr_ballot ->
          if not (List.mem src pr.pr_accepts) then pr.pr_accepts <- src :: pr.pr_accepts;
          if List.length pr.pr_accepts >= pax_f node + 1 then begin
            Hashtbl.remove node.pax_recoveries txn;
            pax_leader_decide node ctx ~txn ~participants:pr.pr_participants ~commit:pr.pr_commit
          end
      | _ -> ())
  | Kv_msg.PaxReject { txn; ballot } ->
      (* deposed: a higher-ballot leader owns the instance.  Stand down
         without deciding and fall back to querying for the outcome. *)
      bump_epoch node ~txn ballot;
      metric ctx "pax_rejected";
      (match Hashtbl.find_opt node.c_txns txn with
      | Some c when c.c_status = C_precommitting ->
          Hashtbl.remove node.c_txns txn;
          query_loop node ctx ~txn
            ~targets:(List.filter (fun s -> s <> node.site) c.c_participants)
      | _ -> ());
      if Hashtbl.mem node.pax_recoveries txn then begin
        Hashtbl.remove node.pax_recoveries txn;
        match Hashtbl.find_opt node.p_txns txn with
        | Some p -> query_loop node ctx ~txn ~targets:(reachable_others node p)
        | None -> ()
      end
  | Kv_msg.PaxRecover { txn; participants } -> (
      match node.protocol with
      | Paxos _ -> start_pax_recovery node ctx ~txn ~participants
      | Two_phase | Three_phase -> ())
  | Kv_msg.Lease_expire -> (
      (* injected lease fault: act as if every coordinator lease lapsed —
         push recovery of each in-doubt transaction to a standby acceptor
         that is NOT its (possibly live) coordinator.  Ballot fencing
         keeps the race between the deposed-but-alive coordinator and the
         new leader safe; the run stays a liveness/split-brain probe. *)
      match node.protocol with
      | Paxos _ ->
          Hashtbl.iter
            (fun _ (p : p_txn) ->
              match p.status with
              | P_prepared | P_precommitted ->
                  (* the full initiation loop, not a one-shot nudge: the
                     elected standby may itself die mid-recovery, and only
                     the re-nudge cadence fails over to the next acceptor *)
                  pax_initiate node ctx p ~exclude:p.coordinator
              | P_working | P_done _ -> ())
            node.p_txns
      | Two_phase | Three_phase -> ())
  | Kv_msg.Status_rep { txn; outcome } -> (
      match outcome with
      | None -> ()
      | Some commit -> (
          (match Hashtbl.find_opt node.p_txns txn with
          | Some p -> p_finish node ctx p ~commit
          | None -> ());
          match Kv_wal.classify_coordinator node.wal ~txn with
          | Kv_wal.C_in_precommit { participants } when not (Hashtbl.mem node.c_txns txn) ->
              Kv_wal.force_k node.wal
                (Kv_wal.C_decided { txn; commit })
                (fun () ->
                  if commit then node.committed <- node.committed + 1
                  else node.aborted <- node.aborted + 1;
                  if participants <> [] then note_announce node ~txn ~commit;
                  List.iter
                    (fun dst -> Sim.World.send ctx ~dst (Kv_msg.Outcome { txn; commit }))
                    participants)
          | _ -> ()))

(* wire the lock table's grant callback so parked transactions resume *)
let install_grant_hook node ctx =
  Lock_table.on_grant node.locks (fun txn ->
      match Hashtbl.find_opt node.p_txns txn with
      | Some p when p.status = P_working -> p_continue node ctx p
      | _ -> ())
