(** The database write-ahead log: per-site stable storage for the commit
    path, with forced records at every protocol boundary.  Records are
    serialized through a binary codec, framed by {!Sim.Disk.Frame}, and
    written to a simulated disk — [append] alone is not durable until the
    next [sync]; crash recovery replays the durable image, truncating at
    the first invalid frame. *)

type record =
  | P_prepared of {
      txn : int;
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
    }
  | P_precommitted of { txn : int }
  | P_outcome of { txn : int; commit : bool }
  | C_begin of { txn : int; participants : Core.Types.site list; three_phase : bool }
  | C_precommitted of { txn : int }
  | C_decided of { txn : int; commit : bool }
  | C_finished of { txn : int }
  | A_promised of { txn : int; ballot : int }
      (** Paxos-Commit acceptor: promised not to accept below [ballot] *)
  | A_accepted of { txn : int; ballot : int; commit : bool }
      (** Paxos-Commit acceptor: accepted the outcome at [ballot] *)

val pp_record : Format.formatter -> record -> unit
val show_record : record -> string
val equal_record : record -> record -> bool

val to_bytes : record -> Bytes.t
(** The on-disk payload (framing is {!Sim.Disk.Frame}'s job). *)

val of_bytes : Bytes.t -> (record, string) result
(** Total inverse of {!to_bytes}: [of_bytes (to_bytes r) = Ok r]; any
    truncated or mangled payload is an [Error], never an exception. *)

type repair = {
  survived : int;
  lost_records : int;
  dropped_bytes : int;
  reason : string option;
}

val pp_repair : Format.formatter -> repair -> unit
val show_repair : repair -> string
val equal_repair : repair -> repair -> bool

type t

(** Group-commit knobs: at most [max_batch] records per shared sync, at
    most [max_wait] simulated seconds of waiting for stragglers while the
    device is idle. *)
type group_commit = Sim.Batch.group = { max_batch : int; max_wait : float }

val create :
  ?seed:int -> ?durable:bool -> ?group_commit:group_commit -> ?sync_latency:float -> unit -> t
(** [durable:false] is the in-memory log (sync free, crash lossless),
    kept as the benchmark baseline.  [seed] feeds only the disk's private
    fault stream.  [group_commit] coalesces concurrent {!force_k} calls
    into shared syncs; [sync_latency] charges simulated seconds per sync
    (the cost group commit amortizes).  With neither (the default) every
    force is a synchronous sync and all prior behaviour is byte-
    identical. *)

val attach :
  ?on_drain:(unit -> unit) ->
  t ->
  metrics:Sim.Metrics.t ->
  schedule:(float -> (unit -> unit) -> unit) ->
  unit
(** Wire the log into a run: forces count into [metrics] (wal_forces,
    wal_group_flushes, group_batch_size) and deferred flushes ride
    [schedule] — pass a site-bound timer so pending batches die with the
    site.  [on_drain] fires after each batch's callbacks complete (the
    pipelining admission gate refills there). *)

val append : t -> record -> unit
(** Volatile until the next {!sync}. *)

val sync : t -> unit

val force : t -> record -> unit
(** [append] + [sync]: the paper's "force a record to stable storage".
    With a batcher armed, flushes through synchronously (draining the
    queue ahead of it first). *)

val force_k : t -> record -> (unit -> unit) -> unit
(** Asynchronous force: append now, run the callback once the record is
    on stable storage.  Equals [force t r; k ()] on the fast path; under
    group commit / sync latency the callback waits for the covering
    batch, and a crash in between loses both record and callback. *)

val after_durable : t -> (unit -> unit) -> unit
(** Run the callback once everything appended so far is durable —
    immediately when nothing is pending.  For reply-from-log paths that
    must not expose a not-yet-durable record. *)

val pending_forces : t -> int
(** Forces whose completion callback has not yet fired. *)

val crash : t -> repair option
(** Lose the unsynced tail (with whatever storage faults are armed) and
    rebuild the in-memory view from the repaired durable image.
    [Some repair] iff anything was lost. *)

val set_faults : t -> Sim.Disk.injection list -> unit
val disk : t -> Sim.Disk.t option

val repairs : t -> repair list
(** Oldest first; one entry per crash that lost records or bytes. *)

val records : t -> record list
val length : t -> int

(** Participant-side classification of a transaction from the log. *)
type p_class =
  | P_unknown  (** nothing logged: crashed before voting — unilateral abort *)
  | P_in_doubt of {
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
      precommitted : bool;
    }
  | P_resolved of bool

val classify_participant : t -> txn:int -> p_class

(** Coordinator-side classification. *)
type c_class =
  | C_unknown
  | C_collecting of { participants : Core.Types.site list; three_phase : bool }
  | C_in_precommit of { participants : Core.Types.site list }
  | C_resolved of { participants : Core.Types.site list; commit : bool; finished : bool }

val classify_coordinator : t -> txn:int -> c_class
val coordinated_txns : t -> int list
val participated_txns : t -> int list

val acceptor_state : t -> txn:int -> int * (int * bool) option
(** Paxos-Commit acceptor state for the transaction: (highest ballot
    promised or accepted, highest accepted (ballot, outcome)).  [-1]
    when nothing was promised — every ballot outranks it. *)
