(** The distributed database: n sites, hash-partitioned keys, concurrent
    transactions committed with either 2PC or the paper's nonblocking 3PC.
    This is the end-to-end harness for experiment E12: what does the extra
    phase cost, and what does blocking cost, on a live workload with
    failures. *)

type config = {
  n_sites : int;
  protocol : Node.protocol;
  presumption : Node.presumption;
  termination : Node.termination;
  read_only_opt : bool;
  seed : int;
  lock_wait_timeout : float;
  query_interval : float;
  query_backoff_cap : float;
  query_budget : int;
  tracing : bool;
  until : float;
  crashes : (Core.Types.site * float) list;
  recoveries : (Core.Types.site * float) list;
  partitions : (float * float * Core.Types.site list list) list;
  msg_faults : (int * Sim.World.msg_fault) list;
  durable_wal : bool;  (** log through simulated disks (sync semantics, crash loses the tail) *)
  group_commit : Kv_wal.group_commit option;
      (** coalesce concurrent WAL forces on one site into shared syncs *)
  sync_latency : float;
      (** simulated seconds per WAL sync (0.0: syncs are instantaneous
          and every force completes synchronously, as before) *)
  pipeline_depth : int;
      (** coordinator pipelining bound: client transactions admitted
          while fewer than this many WAL forces are in flight at the
          coordinator; vacuous at 0.0 sync latency *)
  disk_faults : (Core.Types.site * Sim.Disk.injection) list;
  initial_data : (string * int) list;
  detector : bool;
      (** [true]: replace the oracle failure reports with the timeout-based
          {!Sim.Detector}; termination directives are fenced by election
          epochs instead of sender identity.  [false] (the default) keeps
          the oracle; every pre-detector run replays unchanged. *)
  fencing : bool;  (** [false]: the split-brain ablation — accept any epoch *)
  heartbeat_period : float;
  suspicion_timeout : float;
  detector_faults : Sim.Nemesis.fault list;
      (** detector-provoking windows (latency spikes, stalls, heartbeat
          loss); other fault constructors in the list are ignored here *)
  lease_faults : float list;
      (** Paxos-Commit leader-lease expiries: at each time every node is
          told its coordinator leases lapsed, so standby acceptors open
          higher-ballot recovery rounds for in-flight transactions.
          Ignored (no messages injected) under 2PC/3PC. *)
}

let config ?(n_sites = 4) ?(protocol = Node.Three_phase) ?(presumption = Node.No_presumption)
    ?(termination = Node.T_skeen) ?(read_only_opt = false) ?(seed = 1) ?(lock_wait_timeout = 25.0)
    ?(query_interval = 10.0) ?(query_backoff_cap = 60.0) ?(query_budget = 200) ?(tracing = false)
    ?(until = 100_000.0) ?(crashes = []) ?(recoveries = []) ?(partitions = []) ?(msg_faults = [])
    ?(durable_wal = true) ?group_commit ?(sync_latency = 0.0) ?(pipeline_depth = 1)
    ?(disk_faults = []) ?(initial_data = []) ?(detector = false) ?(fencing = true)
    ?(heartbeat_period = 1.0) ?(suspicion_timeout = 5.0) ?(detector_faults = [])
    ?(lease_faults = []) () =
  {
    n_sites;
    protocol;
    presumption;
    termination;
    read_only_opt;
    seed;
    lock_wait_timeout;
    query_interval;
    query_backoff_cap;
    query_budget;
    tracing;
    until;
    crashes;
    recoveries;
    partitions;
    msg_faults;
    durable_wal;
    group_commit;
    sync_latency;
    pipeline_depth;
    disk_faults;
    initial_data;
    detector;
    fencing;
    heartbeat_period;
    suspicion_timeout;
    detector_faults;
    lease_faults;
  }

type txn_fate = Fate_committed | Fate_aborted | Fate_pending
[@@deriving show { with_path = false }, eq]

type result = {
  committed : int;
  aborted : int;
  pending : int;  (** submitted but unresolved when the run ended (blocked) *)
  deadlock_aborts : int;
  duration : float;  (** simulated time when the system went quiescent *)
  throughput : float;  (** committed transactions per time unit *)
  mean_latency : float option;  (** submission → coordinator decision, committed+aborted *)
  blocked_time : float;  (** total lock-time spent blocked across sites *)
  messages_sent : int;
  wal_forces : int;  (** forced WAL writes across all sites *)
  forces_per_commit : float;
      (** [wal_forces / committed] — the lever benches and sweeps read:
          presumption, the read-only optimization and group commit all
          push it down (0.0 when nothing committed) *)
  atomicity_ok : bool;
      (** every transaction's outcome agrees across all logs, and committed
          writes are applied at every operational participant *)
  outcome_contradiction : bool;
      (** some transaction has both a commit and an abort record across the
          stable logs — the unconditional half of [atomicity_ok] *)
  missing_applied : (int * Core.Types.site * Core.Types.site list) list;
      (** (txn, site, participants): a committed transaction's writes not
          applied at an operational participant — the other half of
          [atomicity_ok], separated out because a total participant-set
          failure legitimately strands a recovered site in doubt *)
  in_doubt : (Core.Types.site * int * Core.Types.site list) list;
      (** (site, txn, participants) still prepared or precommitted at an
          operational site when the run ended — locks held, outcome
          unknown.  Nonempty means blocking (or a total participant-set
          failure the termination protocol does not cover). *)
  durability_breaches : (Core.Types.site * int * string) list;
      (** (site, txn, what): an externally visible action the repaired
          stable log cannot justify — a yes vote on the wire with no
          prepared record surviving, or an announced outcome the log
          resolved the other way.  Always empty under the paper's force
          discipline; nonempty only when the stable-storage axiom itself
          is broken (lying sync) *)
  fates : (int * txn_fate) list;
  directive_epochs : (int * Core.Types.site * int) list;
      (** every termination-leadership assumption of the run, in order:
          (txn, site, epoch) when the site began issuing directives for
          the transaction.  The split-brain oracle checks no (txn, epoch)
          pair is shared by two distinct sites. *)
  storage_totals : int;  (** sum of all values across all sites *)
  trace : Sim.World.trace_entry list;  (** empty unless [tracing] *)
  metrics : (string * int) list;
  metrics_json : Sim.Json.t;
      (** full metrics snapshot ({!Sim.Metrics.to_json}): counters, gauges
          and latency histograms — commit latency and its
          lock-wait/vote/decision phase split, blocked durations *)
  run_metrics : Sim.Metrics.t;
      (** the run's live registry (the source of [metrics_json]), so
          sweeps can {!Sim.Metrics.merge} per-run registries *)
}

(** [run cfg workload] executes [workload] (arrival-time, transaction)
    pairs and reports aggregate behaviour.  Deterministic in [cfg.seed]. *)
let run (cfg : config) (workload : (float * Txn.t) list) : result =
  let world =
    Sim.World.create ~n_sites:cfg.n_sites ~seed:cfg.seed ~msg_to_string:Kv_msg.to_string ()
  in
  Sim.World.set_tracing world cfg.tracing;
  let storages = Array.init cfg.n_sites (fun _ -> Storage.create ()) in
  (* per-site disks seeded by site id: the fault stream is private to the
     disk, so arming storage faults never perturbs the world's RNG *)
  let wals =
    Array.init cfg.n_sites (fun i ->
        Kv_wal.create ~seed:(i + 1) ~durable:cfg.durable_wal ?group_commit:cfg.group_commit
          ~sync_latency:cfg.sync_latency ())
  in
  List.iteri
    (fun i wal ->
      let site = i + 1 in
      match List.filter_map (fun (s, inj) -> if s = site then Some inj else None) cfg.disk_faults with
      | [] -> ()
      | injections -> Kv_wal.set_faults wal injections)
    (Array.to_list wals);
  Sim.World.set_crash_hook world (fun site ->
      match Kv_wal.crash wals.(site - 1) with
      | None -> ()
      | Some rep ->
          Sim.Metrics.incr (Sim.World.metrics world) "wal_repairs";
          Sim.World.record world "site %d wal repair: %d survived, %d lost, %d bytes dropped%s"
            site rep.Kv_wal.survived rep.Kv_wal.lost_records rep.Kv_wal.dropped_bytes
            (match rep.Kv_wal.reason with Some r -> " (" ^ r ^ ")" | None -> ""));
  (* partition the initial data *)
  List.iter
    (fun (k, v) ->
      let site = Txn.owner ~n_sites:cfg.n_sites k in
      Storage.load storages.(site - 1) [ (k, v) ])
    cfg.initial_data;
  Sim.World.set_msg_faults world cfg.msg_faults;
  let qrng_root = Sim.Rng.create ~seed:cfg.seed in
  let nodes =
    Array.init cfg.n_sites (fun i ->
        Node.create ~presumption:cfg.presumption ~termination:cfg.termination
          ~read_only_opt:cfg.read_only_opt ~pipeline_depth:cfg.pipeline_depth
          ~query_backoff_cap:cfg.query_backoff_cap
          ~query_rng:(Sim.Rng.split qrng_root) ~site:(i + 1)
          ~n_sites:cfg.n_sites ~protocol:cfg.protocol ~storage:storages.(i) ~wal:wals.(i)
          ~lock_wait_timeout:cfg.lock_wait_timeout ~query_interval:cfg.query_interval
          ~query_budget:cfg.query_budget ~detector:cfg.detector ~fencing:cfg.fencing ())
  in
  let node site = nodes.(site - 1) in
  (* detector mode: suspicion (revocable) drives the nodes' peer views
     instead of the oracle's crash/recovery reports *)
  let detector =
    if not cfg.detector then None
    else
      Some
        (Sim.Detector.create ~heartbeat_period:cfg.heartbeat_period
           ~suspicion_timeout:cfg.suspicion_timeout ~world ~heartbeat:Kv_msg.Heartbeat
           ~is_heartbeat:(function Kv_msg.Heartbeat -> true | _ -> false)
           ~on_suspect:(fun ctx s -> Node.on_peer_down (node ctx.Sim.World.self) ctx s)
           ~on_unsuspect:(fun ctx s -> Node.on_peer_up (node ctx.Sim.World.self) ctx s)
           ())
  in
  let handlers site : Kv_msg.t Sim.World.handlers =
    let n = node site in
    (* (re)wire the WAL's batcher to this site's timers and the metrics
       registry; completed batches refill the pipelining admission gate.
       Must rebind on every (re)start: timers set through a pre-crash ctx
       die with the crash. *)
    let attach_wal ctx =
      Kv_wal.attach wals.(site - 1)
        ~on_drain:(fun () -> Node.drain_admissions n ctx)
        ~metrics:(Sim.World.metrics world)
        ~schedule:(fun delay k -> ignore (Sim.World.set_timer ctx ~delay k))
    in
    {
      Sim.World.on_start =
        (fun ctx ->
          attach_wal ctx;
          Node.install_grant_hook n ctx;
          match detector with Some d -> Sim.Detector.start d ctx | None -> ());
      on_message =
        (fun ctx ~src msg ->
          (match detector with Some d -> Sim.Detector.heard d ~self:site ~src | None -> ());
          Node.on_message n ctx ~src msg);
      on_peer_down = (fun ctx failed -> if not cfg.detector then Node.on_peer_down n ctx failed);
      on_peer_up = (fun ctx recovered -> if not cfg.detector then Node.on_peer_up n ctx recovered);
      on_restart =
        (fun ctx ->
          attach_wal ctx;
          Node.install_grant_hook n ctx;
          Node.on_restart n ctx;
          match detector with Some d -> Sim.Detector.start d ctx | None -> ());
    }
  in
  (* client arrivals *)
  List.iter
    (fun (at, txn) ->
      let coord = Txn.coordinator ~n_sites:cfg.n_sites txn in
      Sim.World.inject world ~dst:coord ~at (Kv_msg.Client_begin txn))
    workload;
  List.iter (fun (s, at) -> Sim.World.schedule_crash world ~at s) cfg.crashes;
  List.iter
    (fun (from_t, until_t, groups) -> Sim.World.schedule_partition world ~from_t ~until_t groups)
    cfg.partitions;
  List.iter (fun (s, at) -> Sim.World.schedule_recovery world ~at s) cfg.recoveries;
  List.iter
    (function
      | Sim.Nemesis.Delay_window { site; from_t; until_t; extra } ->
          Sim.World.schedule_latency_spike world ~site ~from_t ~until_t ~extra
      | Sim.Nemesis.Stall { site; from_t; until_t } ->
          Sim.World.schedule_stall world ~site ~from_t ~until_t
      | Sim.Nemesis.Hb_loss { site; from_t; until_t } ->
          Sim.World.schedule_hb_loss world ~site ~from_t ~until_t
      | _ -> ())
    cfg.detector_faults;
  List.iter
    (fun at ->
      for site = 1 to cfg.n_sites do
        Sim.World.inject world ~dst:site ~at Kv_msg.Lease_expire
      done)
    cfg.lease_faults;
  let duration = Sim.World.run world ~handlers ~until:cfg.until () in
  (* transactions still blocked at quiescence never resolved: account their
     lock-holding time up to the end of the run *)
  Array.iter
    (fun (n : Node.t) ->
      Hashtbl.iter
        (fun _ (p : Node.p_txn) ->
          match p.Node.blocked_since with
          | Some t0 ->
              n.Node.blocked_time <- n.Node.blocked_time +. (duration -. t0);
              p.Node.blocked_since <- None
          | None -> ())
        n.Node.p_txns)
    nodes;
  (* ---- collect outcomes across all stable logs ---- *)
  let fate_tbl : (int, txn_fate) Hashtbl.t = Hashtbl.create 64 in
  let contradiction = ref false in
  let note txn fate =
    match Hashtbl.find_opt fate_tbl txn with
    | None -> Hashtbl.replace fate_tbl txn fate
    | Some f when f = fate -> ()
    | Some Fate_pending -> Hashtbl.replace fate_tbl txn fate
    | Some _ when fate = Fate_pending -> ()
    | Some _ -> contradiction := true
  in
  List.iter (fun (_, txn) -> note txn.Txn.id Fate_pending) workload;
  Array.iter
    (fun wal ->
      List.iter
        (fun r ->
          match r with
          | Kv_wal.C_decided { txn; commit } | Kv_wal.P_outcome { txn; commit } ->
              note txn (if commit then Fate_committed else Fate_aborted)
          | _ -> ())
        (Kv_wal.records wal))
    wals;
  (* committed writes must be applied at every participant site that is
     currently operational (a down site applies them on recovery) *)
  let missing_applied = ref [] in
  Hashtbl.iter
    (fun txn fate ->
      if fate = Fate_committed then
        match List.find_opt (fun (_, t) -> t.Txn.id = txn) workload with
        | None -> ()
        | Some (_, t) ->
            let participants = Txn.participants ~n_sites:cfg.n_sites t in
            List.iter
              (fun site ->
                if
                  Sim.World.is_alive world site
                  && Txn.ops_for ~n_sites:cfg.n_sites t ~site
                     |> List.exists (function Txn.Put _ | Txn.Add _ -> true | Txn.Get _ -> false)
                  && not (Storage.has_applied storages.(site - 1) ~txn)
                then missing_applied := (txn, site, participants) :: !missing_applied)
              participants)
    fate_tbl;
  let missing_applied = List.sort compare !missing_applied in
  let fates =
    Hashtbl.fold (fun txn fate acc -> (txn, fate) :: acc) fate_tbl [] |> List.sort compare
  in
  let count f = List.length (List.filter (fun (_, x) -> x = f) fates) in
  let committed = count Fate_committed
  and aborted = count Fate_aborted
  and pending = count Fate_pending in
  let latencies = Array.to_list nodes |> List.concat_map (fun n -> n.Node.latencies) in
  let in_doubt =
    Array.to_list nodes
    |> List.concat_map (fun (n : Node.t) ->
           if not (Sim.World.is_alive world n.Node.site) then []
           else
             Hashtbl.fold
               (fun txn (p : Node.p_txn) acc ->
                 match p.Node.status with
                 | Node.P_prepared | Node.P_precommitted ->
                     (n.Node.site, txn, p.Node.participants) :: acc
                 | Node.P_working | Node.P_done _ -> acc)
               n.Node.p_txns [])
    |> List.sort compare
  in
  (* ---- durability oracle inputs: externally visible actions (recorded
     in the nodes' sticky tables at send time, surviving crashes because
     the world cannot un-see a message) judged against what each site's
     repaired stable log can justify ---- *)
  let durability_breaches =
    Array.to_list nodes
    |> List.concat_map (fun (n : Node.t) ->
           let recs = Kv_wal.records n.Node.wal in
           let unjustified_votes =
             Hashtbl.fold
               (fun txn () acc ->
                 if
                   List.exists
                     (function Kv_wal.P_prepared { txn = x; _ } -> x = txn | _ -> false)
                     recs
                 then acc
                 else
                   (n.Node.site, txn, "yes vote on the wire with no prepared record on the log")
                   :: acc)
               n.Node.sent_yes_txns []
           in
           let contradicted_announcements =
             Hashtbl.fold
               (fun txn commit acc ->
                 let opposite =
                   List.exists
                     (function
                       | Kv_wal.C_decided { txn = x; commit = c }
                       | Kv_wal.P_outcome { txn = x; commit = c } ->
                           x = txn && c <> commit
                       | _ -> false)
                     recs
                 in
                 if opposite then
                   ( n.Node.site,
                     txn,
                     Printf.sprintf "announced %s but the log resolved the other way"
                       (if commit then "commit" else "abort") )
                   :: acc
                 else acc)
               n.Node.announced_outcomes []
           in
           unjustified_votes @ contradicted_announcements)
    |> List.sort_uniq compare
  in
  let metrics = Sim.World.metrics world in
  (* account interrupted measurements (e.g. kv_lock_wait timers of sites
     that crashed holding locks) before the registry is snapshot or
     merged into a sweep aggregate *)
  Sim.Metrics.drain_timers metrics;
  let wal_forces = Sim.Metrics.counter metrics "wal_forces" in
  let forces_per_commit =
    if committed > 0 then float_of_int wal_forces /. float_of_int committed else 0.0
  in
  (* derived, but first-class: published into the registry so sweep
     merges aggregate it like any other distribution *)
  if committed > 0 then Sim.Metrics.observe metrics "forces_per_commit" forces_per_commit;
  {
    committed;
    aborted;
    pending;
    deadlock_aborts = Array.to_list nodes |> List.fold_left (fun a n -> a + n.Node.deadlock_aborts) 0;
    duration;
    throughput = (if duration > 0.0 then float_of_int committed /. duration else 0.0);
    mean_latency =
      (match latencies with
      | [] -> None
      | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)));
    blocked_time = Array.to_list nodes |> List.fold_left (fun a n -> a +. n.Node.blocked_time) 0.0;
    messages_sent = Sim.Metrics.counter metrics "messages_sent";
    wal_forces;
    forces_per_commit;
    atomicity_ok = (not !contradiction) && missing_applied = [];
    outcome_contradiction = !contradiction;
    missing_applied;
    in_doubt;
    durability_breaches;
    fates;
    directive_epochs =
      Array.to_list nodes
      |> List.concat_map (fun (n : Node.t) ->
             List.rev_map (fun (txn, e) -> (txn, n.Node.site, e)) n.Node.directive_epochs)
      |> List.sort compare;
    storage_totals = Array.to_list storages |> List.fold_left (fun a s -> a + Storage.total s) 0;
    trace = Sim.World.trace_entries world;
    metrics = Sim.Metrics.counters metrics;
    metrics_json = Sim.Metrics.to_json metrics;
    run_metrics = metrics;
  }

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>committed %d, aborted %d (deadlock %d), pending %d@,\
     duration %.1f, throughput %.4f txn/u, mean latency %a@,\
     blocked lock time %.1f, messages %d@,\
     atomicity ok: %b, storage total %d@]"
    r.committed r.aborted r.deadlock_aborts r.pending r.duration r.throughput
    Fmt.(option ~none:(any "n/a") (fmt "%.2f"))
    r.mean_latency r.blocked_time r.messages_sent r.atomicity_ok r.storage_totals
