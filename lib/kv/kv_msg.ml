(** Wire messages of the database commit path: the commit protocol proper
    (prepare/vote/precommit/outcome), the termination protocol used when a
    coordinator fails under 3PC, and the recovery-time status queries. *)

type t =
  | Client_begin of Txn.t  (** a client submits a transaction to its coordinator *)
  | Prepare of { txn : int; ops : Txn.op list; participants : Core.Types.site list }
      (** phase 1: execute, lock, vote.  Carries the participant list so
          survivors can run the termination protocol without the
          coordinator. *)
  | Vote of { txn : int; vote : [ `Yes | `No | `Read_only ] }
      (** [`Read_only]: the participant only read, has released its locks,
          and need not hear the outcome (the R*-style optimization) *)
  | Precommit of { txn : int; epoch : int }
      (** 3PC buffer phase; also termination phase 1 "move up".  Carries
          the issuing coordinator's election epoch
          ([round * n_sites + (site - 1)], the live coordinator at round
          0) so participants can fence directives from deposed-but-alive
          backups in detector mode. *)
  | Precommit_ack of { txn : int }
  | Demote of { txn : int; epoch : int }  (** termination phase 1 "move down" to prepared *)
  | Demote_ack of { txn : int }
  | Outcome of { txn : int; commit : bool }
  | Done of { txn : int }  (** participant's final acknowledgement *)
  | Status_req of { txn : int }  (** recovery: what happened to this transaction? *)
  | Status_rep of { txn : int; outcome : bool option }
  | PState_req of { txn : int; epoch : int }
      (** quorum termination: a backup polls participant progress *)
  | PState_rep of { txn : int; state : [ `Working | `Prepared | `Precommitted | `Done of bool ] }
  | Heartbeat  (** detector mode: periodic evidence of life *)
  | Epoch_reject of { txn : int; epoch : int }
      (** a directive for [txn] was fenced; carries the participant's
          current epoch so the deposed backup stands down *)
  | PaxAccept of { txn : int; ballot : int; commit : bool; participants : Core.Types.site list }
      (** Paxos Commit phase 2a: a leader (the round-0 coordinator or a
          recovery leader) asks the acceptors to accept the outcome *)
  | PaxAccepted of { txn : int; ballot : int; commit : bool }  (** phase 2b, back to the leader *)
  | PaxP1a of { txn : int; ballot : int }  (** recovery phase 1a: prepare at [ballot] *)
  | PaxP1b of { txn : int; ballot : int; accepted : (int * bool) option }
      (** promise not to accept below [ballot]; carries the acceptor's
          highest accepted (ballot, outcome), if any — the value a new
          leader must adopt *)
  | PaxReject of { txn : int; ballot : int }
      (** the acceptor has promised a higher ballot than the sender's;
          carries it so the deposed leader stands down *)
  | PaxRecover of { txn : int; participants : Core.Types.site list }
      (** a blocked prepared participant nudges a standby acceptor into
          leading recovery for [txn] *)
  | Lease_expire
      (** fault injection: the leader lease lapsed — standby acceptors
          open higher-ballot recovery rounds for in-flight transactions
          even though the coordinator may still be alive *)
[@@deriving show { with_path = false }, eq]

let to_string = function
  | Client_begin t -> Fmt.str "client-begin(t%d)" t.Txn.id
  | Prepare { txn; ops; _ } -> Fmt.str "prepare(t%d,%d ops)" txn (List.length ops)
  | Vote { txn; vote } ->
      Fmt.str "vote(t%d,%s)" txn
        (match vote with `Yes -> "yes" | `No -> "no" | `Read_only -> "read-only")
  | Precommit { txn; epoch } -> Fmt.str "precommit(t%d,e%d)" txn epoch
  | Precommit_ack { txn } -> Fmt.str "precommit-ack(t%d)" txn
  | Demote { txn; epoch } -> Fmt.str "demote(t%d,e%d)" txn epoch
  | Demote_ack { txn } -> Fmt.str "demote-ack(t%d)" txn
  | Outcome { txn; commit } -> Fmt.str "outcome(t%d,%s)" txn (if commit then "commit" else "abort")
  | Done { txn } -> Fmt.str "done(t%d)" txn
  | Status_req { txn } -> Fmt.str "status-req(t%d)" txn
  | Status_rep { txn; outcome } ->
      Fmt.str "status-rep(t%d,%s)" txn
        (match outcome with None -> "unknown" | Some true -> "commit" | Some false -> "abort")
  | PState_req { txn; epoch } -> Fmt.str "pstate-req(t%d,e%d)" txn epoch
  | PState_rep { txn; state } ->
      Fmt.str "pstate-rep(t%d,%s)" txn
        (match state with
        | `Working -> "working"
        | `Prepared -> "prepared"
        | `Precommitted -> "precommitted"
        | `Done true -> "committed"
        | `Done false -> "aborted")
  | Heartbeat -> "heartbeat"
  | Epoch_reject { txn; epoch } -> Fmt.str "epoch-reject(t%d,e%d)" txn epoch
  | PaxAccept { txn; ballot; commit; _ } ->
      Fmt.str "pax-accept(t%d,b%d,%s)" txn ballot (if commit then "commit" else "abort")
  | PaxAccepted { txn; ballot; commit } ->
      Fmt.str "pax-accepted(t%d,b%d,%s)" txn ballot (if commit then "commit" else "abort")
  | PaxP1a { txn; ballot } -> Fmt.str "pax-p1a(t%d,b%d)" txn ballot
  | PaxP1b { txn; ballot; accepted } ->
      Fmt.str "pax-p1b(t%d,b%d,%s)" txn ballot
        (match accepted with
        | None -> "free"
        | Some (b, c) -> Fmt.str "accepted@b%d=%s" b (if c then "commit" else "abort"))
  | PaxReject { txn; ballot } -> Fmt.str "pax-reject(t%d,b%d)" txn ballot
  | PaxRecover { txn; _ } -> Fmt.str "pax-recover(t%d)" txn
  | Lease_expire -> "lease-expire"
