(** The distributed database harness: n sites, hash-partitioned keys,
    concurrent transactions committed with 2PC or the paper's nonblocking
    3PC, under timed crash/recovery schedules — experiment E12's
    instrument. *)

type config = {
  n_sites : int;
  protocol : Node.protocol;
  presumption : Node.presumption;
  termination : Node.termination;
  read_only_opt : bool;
  seed : int;
  lock_wait_timeout : float;
  query_interval : float;
  query_backoff_cap : float;
      (** ceiling on the exponential backoff between outcome queries *)
  query_budget : int;
  tracing : bool;
  until : float;
  crashes : (Core.Types.site * float) list;
  recoveries : (Core.Types.site * float) list;
  partitions : (float * float * Core.Types.site list list) list;
  msg_faults : (int * Sim.World.msg_fault) list;
      (** message-level chaos keyed by global send index
          ({!Sim.World.set_msg_faults}) *)
  durable_wal : bool;
      (** log through simulated disks: appends are volatile until the
          node's next sync, crashes lose the unsynced tail, and recovery
          replays the repaired durable image.  [false] is the PR-3
          in-memory log, kept as the benchmark baseline. *)
  group_commit : Kv_wal.group_commit option;
      (** coalesce concurrent WAL forces on one site into shared syncs
          (ticket-based; callbacks fire after the covering barrier) *)
  sync_latency : float;
      (** simulated seconds per WAL sync.  0.0 (default): syncs are
          instantaneous, every force completes synchronously, and all
          prior runs replay byte-identically. *)
  pipeline_depth : int;
      (** coordinator pipelining: admit a client transaction while fewer
          than this many WAL forces are in flight at the coordinator;
          the rest queue.  Vacuous at 0.0 sync latency. *)
  disk_faults : (Core.Types.site * Sim.Disk.injection) list;
      (** storage faults to arm on specific sites' disks *)
  initial_data : (string * int) list;
  detector : bool;
      (** [true]: replace the oracle failure reports with the timeout-based
          {!Sim.Detector}; termination directives are fenced by election
          epochs instead of sender identity.  [false] (the default) keeps
          the oracle; every pre-detector run replays unchanged. *)
  fencing : bool;  (** [false]: the split-brain ablation — accept any epoch *)
  heartbeat_period : float;
  suspicion_timeout : float;
  detector_faults : Sim.Nemesis.fault list;
      (** detector-provoking windows (latency spikes, stalls, heartbeat
          loss); other fault constructors in the list are ignored here *)
  lease_faults : float list;
      (** times at which a [Lease_expire] is injected to every site —
          Paxos standby acceptors open recovery for in-flight
          transactions; a no-op under 2PC/3PC *)
}

val config :
  ?n_sites:int ->
  ?protocol:Node.protocol ->
  ?presumption:Node.presumption ->
  ?termination:Node.termination ->
  ?read_only_opt:bool ->
  ?seed:int ->
  ?lock_wait_timeout:float ->
  ?query_interval:float ->
  ?query_backoff_cap:float ->
  ?query_budget:int ->
  ?tracing:bool ->
  ?until:float ->
  ?crashes:(Core.Types.site * float) list ->
  ?recoveries:(Core.Types.site * float) list ->
  ?partitions:(float * float * Core.Types.site list list) list ->
  ?msg_faults:(int * Sim.World.msg_fault) list ->
  ?durable_wal:bool ->
  ?group_commit:Kv_wal.group_commit ->
  ?sync_latency:float ->
  ?pipeline_depth:int ->
  ?disk_faults:(Core.Types.site * Sim.Disk.injection) list ->
  ?initial_data:(string * int) list ->
  ?detector:bool ->
  ?fencing:bool ->
  ?heartbeat_period:float ->
  ?suspicion_timeout:float ->
  ?detector_faults:Sim.Nemesis.fault list ->
  ?lease_faults:float list ->
  unit ->
  config

type txn_fate = Fate_committed | Fate_aborted | Fate_pending

val pp_txn_fate : Format.formatter -> txn_fate -> unit
val equal_txn_fate : txn_fate -> txn_fate -> bool

type result = {
  committed : int;
  aborted : int;
  pending : int;  (** submitted but unresolved at the end (blocked or lost) *)
  deadlock_aborts : int;
  duration : float;
  throughput : float;
  mean_latency : float option;
  blocked_time : float;
      (** cumulative lock-holding time of transactions blocked by a dead
          coordinator — the operational cost of a blocking protocol *)
  messages_sent : int;
  wal_forces : int;  (** total WAL forces across all sites *)
  forces_per_commit : float;
      (** [wal_forces / committed] — the lever benches and sweeps read:
          presumption, the read-only optimization and group commit all
          push it down (0.0 when nothing committed) *)
  atomicity_ok : bool;
      (** outcomes agree across all logs and committed writes are applied
          at every operational participant *)
  outcome_contradiction : bool;
      (** some transaction has both a commit and an abort record across the
          stable logs — the unconditional half of [atomicity_ok] *)
  missing_applied : (int * Core.Types.site * Core.Types.site list) list;
      (** (txn, site, participants): a committed transaction's writes not
          applied at an operational participant — the other half of
          [atomicity_ok], separated out because a total participant-set
          failure legitimately strands a recovered site in doubt *)
  in_doubt : (Core.Types.site * int * Core.Types.site list) list;
      (** (site, txn, participants) still prepared or precommitted at an
          operational site when the run ended — locks held, outcome
          unknown.  Nonempty means blocking (or a total participant-set
          failure the termination protocol does not cover). *)
  durability_breaches : (Core.Types.site * int * string) list;
      (** (site, txn, what): an externally visible action the repaired
          stable log cannot justify — a yes vote on the wire with no
          prepared record surviving, or an announced outcome the log
          resolved the other way.  Always empty under the paper's force
          discipline; nonempty only when the stable-storage axiom itself
          is broken (lying sync) *)
  fates : (int * txn_fate) list;
  directive_epochs : (int * Core.Types.site * int) list;
      (** every termination-leadership assumption of the run, in order:
          (txn, site, epoch) when the site began issuing directives for
          the transaction.  The split-brain oracle checks no (txn, epoch)
          pair is shared by two distinct sites. *)
  storage_totals : int;
  trace : Sim.World.trace_entry list;  (** empty unless [tracing] *)
  metrics : (string * int) list;
  metrics_json : Sim.Json.t;
      (** full metrics snapshot ({!Sim.Metrics.to_json}): counters, gauges
          and latency histograms — commit latency and its
          lock-wait/vote/decision phase split, blocked durations *)
  run_metrics : Sim.Metrics.t;
      (** the run's live registry (the source of [metrics_json]), so
          sweeps can {!Sim.Metrics.merge} per-run registries *)
}

val run : config -> (float * Txn.t) list -> result
(** Executes the workload ((arrival time, transaction) pairs).
    Deterministic in the seed. *)

val pp_result : Format.formatter -> result -> unit
