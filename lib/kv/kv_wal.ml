(** The database write-ahead log: per-site stable storage for the commit
    path.  Records are serialized through a binary codec, framed with a
    length prefix + CRC-32 ({!Sim.Disk.Frame}), and written to a
    simulated disk whose sync barrier defines what a crash preserves —
    [append] alone is not durable, the node must [force] (append + sync)
    before any externally visible action.  Crash recovery replays the
    durable image (truncating at the first invalid frame) to re-establish
    locks of in-doubt transactions and to classify them (before the vote:
    unilateral abort; after: in doubt). *)

type record =
  | P_prepared of {
      txn : int;
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
    }
      (** participant voted yes; its write set, locks and the transaction's
          topology are on the log (recovery needs to know whom to ask) *)
  | P_precommitted of { txn : int }
  | P_outcome of { txn : int; commit : bool }  (** participant learned / applied the outcome *)
  | C_begin of { txn : int; participants : Core.Types.site list; three_phase : bool }
      (** coordinator accepted the transaction *)
  | C_precommitted of { txn : int }  (** coordinator logged the buffer phase *)
  | C_decided of { txn : int; commit : bool }
  | C_finished of { txn : int }
  | A_promised of { txn : int; ballot : int }
      (** Paxos-Commit acceptor: promised not to accept below [ballot] —
          forced before the phase-1b reply leaves *)
  | A_accepted of { txn : int; ballot : int; commit : bool }
      (** Paxos-Commit acceptor: accepted the outcome at [ballot] —
          forced before the phase-2b reply leaves (the replicated half of
          the decision; a recovering leader rebuilds from these) *)
[@@deriving show { with_path = false }, eq]

(* ---------------- binary codec ---------------- *)

let put_string b s =
  let n = String.length s in
  if n > 0xffff then invalid_arg "Kv_wal: string too long to encode";
  Buffer.add_uint16_le b n;
  Buffer.add_string b s

let put_int b i = Buffer.add_int32_le b (Int32.of_int i)
let put_bool b x = Buffer.add_uint8 b (if x then 1 else 0)

let put_list b put l =
  let n = List.length l in
  if n > 0xffff then invalid_arg "Kv_wal: list too long to encode";
  Buffer.add_uint16_le b n;
  List.iter (put b) l

let put_site b s = Buffer.add_uint16_le b s
let put_write b (k, v) = put_string b k; put_int b v

let put_lock b (k, m) =
  put_string b k;
  Buffer.add_uint8 b (match m with Lock_table.Shared -> 0 | Lock_table.Exclusive -> 1)

let to_bytes r =
  let b = Buffer.create 48 in
  (match r with
  | P_prepared { txn; coordinator; participants; writes; locks } ->
      Buffer.add_uint8 b 0;
      put_int b txn;
      put_site b coordinator;
      put_list b put_site participants;
      put_list b put_write writes;
      put_list b put_lock locks
  | P_precommitted { txn } ->
      Buffer.add_uint8 b 1;
      put_int b txn
  | P_outcome { txn; commit } ->
      Buffer.add_uint8 b 2;
      put_int b txn;
      put_bool b commit
  | C_begin { txn; participants; three_phase } ->
      Buffer.add_uint8 b 3;
      put_int b txn;
      put_list b put_site participants;
      put_bool b three_phase
  | C_precommitted { txn } ->
      Buffer.add_uint8 b 4;
      put_int b txn
  | C_decided { txn; commit } ->
      Buffer.add_uint8 b 5;
      put_int b txn;
      put_bool b commit
  | C_finished { txn } ->
      Buffer.add_uint8 b 6;
      put_int b txn
  | A_promised { txn; ballot } ->
      Buffer.add_uint8 b 7;
      put_int b txn;
      put_int b ballot
  | A_accepted { txn; ballot; commit } ->
      Buffer.add_uint8 b 8;
      put_int b txn;
      put_int b ballot;
      put_bool b commit);
  Buffer.to_bytes b

let of_bytes bytes =
  let total = Bytes.length bytes in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Failure m)) fmt in
  let u8 () =
    if !pos >= total then fail "truncated record at byte %d" !pos;
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let u16 () =
    if !pos + 2 > total then fail "truncated u16 at byte %d" !pos;
    let v = Bytes.get_uint16_le bytes !pos in
    pos := !pos + 2;
    v
  in
  let int () =
    if !pos + 4 > total then fail "truncated int at byte %d" !pos;
    let v = Int32.to_int (Bytes.get_int32_le bytes !pos) in
    pos := !pos + 4;
    v
  in
  let bool () = match u8 () with 0 -> false | 1 -> true | v -> fail "bad bool byte %d" v in
  let str () =
    let n = u16 () in
    if !pos + n > total then fail "truncated string body at byte %d" !pos;
    let s = Bytes.sub_string bytes !pos n in
    pos := !pos + n;
    s
  in
  let list item () = List.init (u16 ()) (fun _ -> item ()) in
  let site () = u16 () in
  let write () = let k = str () in (k, int ()) in
  let lock () =
    let k = str () in
    (k, match u8 () with 0 -> Lock_table.Shared | 1 -> Lock_table.Exclusive
        | v -> fail "bad lock mode byte %d" v)
  in
  match
    let r =
      match u8 () with
      | 0 ->
          let txn = int () in
          let coordinator = site () in
          let participants = list site () in
          let writes = list write () in
          let locks = list lock () in
          P_prepared { txn; coordinator; participants; writes; locks }
      | 1 -> P_precommitted { txn = int () }
      | 2 ->
          let txn = int () in
          P_outcome { txn; commit = bool () }
      | 3 ->
          let txn = int () in
          let participants = list site () in
          C_begin { txn; participants; three_phase = bool () }
      | 4 -> C_precommitted { txn = int () }
      | 5 ->
          let txn = int () in
          C_decided { txn; commit = bool () }
      | 6 -> C_finished { txn = int () }
      | 7 ->
          let txn = int () in
          A_promised { txn; ballot = int () }
      | 8 ->
          let txn = int () in
          let ballot = int () in
          A_accepted { txn; ballot; commit = bool () }
      | tag -> fail "unknown record tag %d" tag
    in
    if !pos <> total then fail "%d trailing bytes after record" (total - !pos);
    r
  with
  | r -> Ok r
  | exception Failure m -> Error m

(* ---------------- the log ---------------- *)

type repair = {
  survived : int;
  lost_records : int;
  dropped_bytes : int;
  reason : string option;
}
[@@deriving show { with_path = false }, eq]

type mode = Memory | Durable of Sim.Disk.t

type group_commit = Sim.Batch.group = { max_batch : int; max_wait : float }

type t = {
  mutable cache : record list;  (** newest first — the live (volatile) view *)
  mode : mode;
  mutable repair_log : repair list;  (** newest first *)
  batch : Sim.Batch.t option;  (** group-commit / sync-latency machinery, when armed *)
  mutable metrics : Sim.Metrics.t option;
}

let create ?(seed = 0) ?(durable = true) ?group_commit ?(sync_latency = 0.0) () =
  let mode = if durable then Durable (Sim.Disk.create ~seed ()) else Memory in
  let batch =
    match mode with
    | Memory -> None
    | Durable disk ->
        if group_commit = None && sync_latency <= 0.0 then None
        else
          Some
            (Sim.Batch.create ?group:group_commit ~sync_latency
               ~sync:(fun () -> Sim.Disk.sync disk)
               ())
  in
  { cache = []; mode; repair_log = []; batch; metrics = None }

(** [attach t ~metrics ~schedule] wires the log into a run: forces are
    counted into [metrics] (wal_forces / wal_group_flushes /
    group_batch_size) and deferred flushes ride [schedule] — a site-bound
    timer, so pending batches die with the site. *)
let attach ?on_drain t ~metrics ~schedule =
  t.metrics <- Some metrics;
  match t.batch with
  | None -> ()
  | Some b ->
      Sim.Batch.attach b ~schedule
        ~on_flush:(fun ~batch ->
          Sim.Metrics.incr metrics "wal_group_flushes";
          Sim.Metrics.observe metrics "group_batch_size" (float_of_int batch))
        ?on_drain ()

let count_force t =
  match t.metrics with Some m -> Sim.Metrics.incr m "wal_forces" | None -> ()

let append t r =
  t.cache <- r :: t.cache;
  match t.mode with
  | Memory -> ()
  | Durable disk -> Sim.Disk.write disk (Sim.Disk.Frame.encode (to_bytes r))

let sync t = match t.mode with Memory -> () | Durable disk -> Sim.Disk.sync disk

(** The paper's forced write: not durable until both halves complete.
    With a batcher armed this flushes through synchronously, draining
    whatever was queued ahead of it first (order preserved). *)
let force t r =
  count_force t;
  append t r;
  match t.batch with None -> sync t | Some b -> Sim.Batch.flush_now b

(** [force_k t r k] — the asynchronous force: append [r] now, run [k]
    once [r] is on stable storage.  On the fast path (no batcher) that is
    immediately, making it byte-identical to [force t r; k ()]; with
    group commit or sync latency armed, [k] waits for the covering batch
    and a crash in between loses both the record and the callback. *)
let force_k t r k =
  count_force t;
  append t r;
  match t.batch with
  | None ->
      sync t;
      k ()
  | Some b -> Sim.Batch.submit b k

(** [after_durable t k] runs [k] once everything appended so far is on
    stable storage — immediately when nothing is pending.  Used for
    reply-from-log paths that must not expose a not-yet-durable record. *)
let after_durable t k =
  match t.batch with None -> k () | Some b -> Sim.Batch.barrier b k

(** Forces submitted whose completion has not yet fired (the coordinator
    pipelining admission gate reads this). *)
let pending_forces t = match t.batch with None -> 0 | Some b -> Sim.Batch.pending b

let set_faults t injections =
  match t.mode with
  | Memory -> ()
  | Durable disk -> Sim.Disk.set_faults disk injections

let disk t = match t.mode with Memory -> None | Durable d -> Some d

(** Crash the log's disk and rebuild the cache from the durable image:
    scan frames, verify checksums, truncate at the first invalid one (and
    cut the disk back to the valid prefix).  After this the in-memory
    view {e is} the durable view. *)
let crash t =
  (match t.batch with Some b -> Sim.Batch.crash b | None -> ());
  match t.mode with
  | Memory -> None
  | Durable disk ->
      let before = List.length t.cache in
      Sim.Disk.crash disk;
      let image = Sim.Disk.durable_contents disk in
      let payloads, frame_repair = Sim.Disk.Frame.scan image in
      let rec decode acc kept_bytes err = function
        | [] -> (acc, kept_bytes, err)
        | p :: rest -> (
            match of_bytes p with
            | Ok r ->
                decode (r :: acc) (kept_bytes + Sim.Disk.Frame.header_len + Bytes.length p) err rest
            | Error e -> (acc, kept_bytes, Some (Printf.sprintf "undecodable record: %s" e)))
      in
      let rev_records, kept_bytes, decode_err = decode [] 0 None payloads in
      Sim.Disk.truncate disk kept_bytes;
      t.cache <- rev_records;
      let survived = List.length rev_records in
      let repair =
        {
          survived;
          lost_records = before - survived;
          dropped_bytes = Bytes.length image - kept_bytes;
          reason = (match decode_err with Some _ as e -> e | None -> frame_repair.Sim.Disk.Frame.reason);
        }
      in
      if repair.lost_records > 0 || repair.dropped_bytes > 0 then begin
        t.repair_log <- repair :: t.repair_log;
        Some repair
      end
      else None

let repairs t = List.rev t.repair_log
let records t = List.rev t.cache
let length t = List.length t.cache

(** Participant-side classification of [txn] from the log. *)
type p_class =
  | P_unknown  (** nothing logged: crashed before voting — unilateral abort *)
  | P_in_doubt of {
      coordinator : Core.Types.site;
      participants : Core.Types.site list;
      writes : (string * int) list;
      locks : (string * Lock_table.mode) list;
      precommitted : bool;
    }
  | P_resolved of bool

let classify_participant t ~txn : p_class =
  List.fold_left
    (fun acc r ->
      match r with
      | P_prepared { txn = x; coordinator; participants; writes; locks } when x = txn ->
          P_in_doubt { coordinator; participants; writes; locks; precommitted = false }
      | P_precommitted { txn = x } when x = txn -> (
          match acc with
          | P_in_doubt d -> P_in_doubt { d with precommitted = true }
          | other -> other)
      | P_outcome { txn = x; commit } when x = txn -> P_resolved commit
      | _ -> acc)
    P_unknown (records t)

(** Coordinator-side classification. *)
type c_class =
  | C_unknown
  | C_collecting of { participants : Core.Types.site list; three_phase : bool }
  | C_in_precommit of { participants : Core.Types.site list }
  | C_resolved of { participants : Core.Types.site list; commit : bool; finished : bool }

let classify_coordinator t ~txn : c_class =
  List.fold_left
    (fun acc r ->
      match (r, acc) with
      | C_begin { txn = x; participants; three_phase }, _ when x = txn ->
          C_collecting { participants; three_phase }
      | C_precommitted { txn = x }, C_collecting { participants; _ } when x = txn ->
          C_in_precommit { participants }
      | C_decided { txn = x; commit }, C_collecting { participants; _ } when x = txn ->
          C_resolved { participants; commit; finished = false }
      | C_decided { txn = x; commit }, C_in_precommit { participants } when x = txn ->
          C_resolved { participants; commit; finished = false }
      | C_finished { txn = x }, C_resolved res when x = txn ->
          C_resolved { res with finished = true }
      | _ -> acc)
    C_unknown (records t)

(** Every transaction id mentioned as coordinator on this log. *)
let coordinated_txns t =
  List.filter_map (function C_begin { txn; _ } -> Some txn | _ -> None) (records t)
  |> List.sort_uniq compare

(** Paxos-Commit acceptor state for [txn]:
    (highest ballot promised or accepted, highest accepted (ballot, outcome)).
    [-1] when nothing was promised — every ballot outranks it. *)
let acceptor_state t ~txn =
  List.fold_left
    (fun ((promised, accepted) as acc) r ->
      match r with
      | A_promised { txn = x; ballot } when x = txn -> (max promised ballot, accepted)
      | A_accepted { txn = x; ballot; commit } when x = txn ->
          ( max promised ballot,
            match accepted with
            | Some (b, _) when b >= ballot -> accepted
            | _ -> Some (ballot, commit) )
      | _ -> acc)
    (-1, None) (records t)

(** Every transaction id mentioned as participant on this log. *)
let participated_txns t =
  List.filter_map (function P_prepared { txn; _ } -> Some txn | _ -> None) (records t)
  |> List.sort_uniq compare
