(** Chaos driver for the database harness: the same nemesis schedules the
    protocol-level harness uses ({!Sim.Nemesis}), lowered onto a {!Db} run
    of the bank-transfer workload, judged by end-to-end oracles.

    The step- and backup-pinned crash kinds are protocol-engine notions
    with no meaning on a multi-transaction database, so the default
    profile generates timed crashes only; message-level faults (duplicate
    / extra delay, drops opt-in) apply unchanged.

    Every run is a pure function of [(protocol, n_sites, k, seed)]: the
    seed derives both the workload and the schedule through split
    {!Sim.Rng} streams.  A violating schedule is greedily shrunk — drop
    one fault at a time, then round fault times — to a minimal
    counterexample that {!Sim.Nemesis.to_string} renders ready to pin in
    a regression test. *)

type oracle = Atomicity | Conservation | Progress | Durability | Split_brain
[@@deriving show { with_path = false }, eq]

let oracle_name = function
  | Atomicity -> "atomicity"
  | Conservation -> "conservation"
  | Progress -> "progress"
  | Durability -> "durability"
  | Split_brain -> "split-brain"

type violation = { oracle : oracle; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s violation: %s" (oracle_name v.oracle) v.detail

(* Timed faults only: the engine interprets step-pinned crashes, the
   database cannot.  A longer horizon and send window than the protocol
   profile, because a database run spans many transactions. *)
let default_profile =
  {
    Sim.Nemesis.default_profile with
    Sim.Nemesis.p_step_crash = 0.0;
    p_backup_crash = 0.0;
    horizon = 40.0;
    recover_delay_min = 10.0;
    recover_delay_max = 80.0;
    max_msg_faults = 4;
    send_window = 150;
    delay_max = 10.0;
  }

let accounts = 8
let initial_balance = 100
let n_txns = 10

let workload_of ~seed =
  let rng = Sim.Rng.split (Sim.Rng.create ~seed) in
  Workload.bank rng ~n_txns ~accounts ~arrival_rate:0.4

(* Lower a nemesis schedule onto the Db config's fault surface.  Step- and
   backup-pinned crashes (absent under the default profile) are ignored.
   Detector faults (latency spikes, stalls, heartbeat loss) ride through
   via {!Engine.Failure_plan}-style windows in the Db config. *)
let lower (schedule : Sim.Nemesis.schedule) =
  List.fold_left
    (fun (crashes, recoveries, partitions, msg_faults, disk_faults, windows, leases) fault ->
      match fault with
      | Sim.Nemesis.Crash { site; at } | Sim.Nemesis.Acceptor_crash { site; at } ->
          ((site, at) :: crashes, recoveries, partitions, msg_faults, disk_faults, windows, leases)
      | Sim.Nemesis.Recover { site; at } ->
          (crashes, (site, at) :: recoveries, partitions, msg_faults, disk_faults, windows, leases)
      | Sim.Nemesis.Partition { from_t; until_t; groups } ->
          ( crashes,
            recoveries,
            (from_t, until_t, groups) :: partitions,
            msg_faults,
            disk_faults,
            windows,
            leases )
      | Sim.Nemesis.Msg { nth; fault } ->
          (crashes, recoveries, partitions, (nth, fault) :: msg_faults, disk_faults, windows, leases)
      | Sim.Nemesis.Disk_fault { site; fault; nth } ->
          ( crashes,
            recoveries,
            partitions,
            msg_faults,
            (site, { Sim.Disk.fault; nth }) :: disk_faults,
            windows,
            leases )
      | (Sim.Nemesis.Delay_window _ | Sim.Nemesis.Stall _ | Sim.Nemesis.Hb_loss _) as w ->
          (crashes, recoveries, partitions, msg_faults, disk_faults, w :: windows, leases)
      | Sim.Nemesis.Lease_fault { at } ->
          (crashes, recoveries, partitions, msg_faults, disk_faults, windows, at :: leases)
      | Sim.Nemesis.Storm _ as s ->
          (* one discrete fault, many crash/recover pairs: expand through
             the shared event list so every lowering layer agrees *)
          let crashes, recoveries =
            List.fold_left
              (fun (cs, rs) (site, c, r) -> ((site, c) :: cs, (site, r) :: rs))
              (crashes, recoveries) (Sim.Nemesis.storm_events s)
          in
          (crashes, recoveries, partitions, msg_faults, disk_faults, windows, leases)
      | Sim.Nemesis.Step_crash _ | Sim.Nemesis.Backup_crash _ ->
          (crashes, recoveries, partitions, msg_faults, disk_faults, windows, leases))
    ([], [], [], [], [], [], []) schedule
  |> fun (c, r, p, m, d, w, l) ->
  (List.rev c, List.rev r, List.rev p, List.rev m, List.rev d, List.rev w, List.rev l)

let crash_sites schedule =
  List.filter_map
    (function
      | Sim.Nemesis.Crash { site; _ }
      | Sim.Nemesis.Acceptor_crash { site; _ }
      | Sim.Nemesis.Storm { site; _ } ->
          Some site
      | _ -> None)
    schedule

let storm_pairs schedule = List.concat_map Sim.Nemesis.storm_events schedule

let violations ~(protocol : Node.protocol) ~schedule (r : Db.result) =
  let crashed = crash_sites schedule in
  (* A site is down at the end iff its last crash postdates its last
     recovery — membership tests alone would count a crash/recover/crash
     site as "back" and mis-arm the conservation oracle. *)
  let down_at_end =
    let last events site =
      List.fold_left (fun a (s, at) -> if s = site then Float.max a at else a) neg_infinity events
    in
    let crash_times =
      List.filter_map
        (function
          | Sim.Nemesis.Crash { site; at } | Sim.Nemesis.Acceptor_crash { site; at } ->
              Some (site, at)
          | _ -> None)
        schedule
      @ List.map (fun (s, c, _) -> (s, c)) (storm_pairs schedule)
    and recover_times =
      List.filter_map
        (function Sim.Nemesis.Recover { site; at } -> Some (site, at) | _ -> None)
        schedule
      @ List.map (fun (s, _, r) -> (s, r)) (storm_pairs schedule)
    in
    List.filter
      (fun s -> last crash_times s > last recover_times s)
      (List.sort_uniq compare crashed)
  in
  (* Paxos Commit promises liveness only up to f acceptor failures: a
     schedule that leaves a majority of the 2f+1 acceptors down at the end
     is beyond the fault model, and blocking there is legitimate (safety
     oracles still apply in full). *)
  let beyond_paxos_f =
    match protocol with
    | Node.Two_phase | Node.Three_phase -> false
    | Node.Paxos f ->
        let acceptors = List.init ((2 * f) + 1) (fun i -> i + 1) in
        List.length (List.filter (fun s -> List.mem s down_at_end) acceptors) > f
  in
  (* A transaction whose whole participant set crashed at some point is a
     total failure: the paper's termination and recovery protocols
     explicitly do not cover it, so a survivor legitimately stays in doubt
     (and its writes legitimately stay unapplied). *)
  let total_failure participants =
    participants <> [] && List.for_all (fun p -> List.mem p crashed) participants
  in
  let atomicity =
    let missing =
      List.filter (fun (_, _, participants) -> not (total_failure participants)) r.Db.missing_applied
    in
    if r.Db.outcome_contradiction then
      [ { oracle = Atomicity; detail = "a transaction has both commit and abort records" } ]
    else
      match missing with
      | [] -> []
      | (txn, site, _) :: _ ->
          [
            {
              oracle = Atomicity;
              detail =
                Fmt.str "%d committed write set(s) unapplied, e.g. txn %d at site %d"
                  (List.length missing) txn site;
            };
          ]
  in
  (* Nonblocking progress: no operational site may end the run holding
     locks in doubt — unless its transaction's participant set totally
     failed. *)
  let blocked =
    if beyond_paxos_f then []
    else List.filter (fun (_, _, participants) -> not (total_failure participants)) r.Db.in_doubt
  in
  let progress =
    match blocked with
    | [] -> []
    | (site, txn, _) :: _ ->
        [
          {
            oracle = Progress;
            detail =
              Fmt.str "%d in-doubt participant(s) at quiescence, e.g. txn %d at site %d"
                (List.length blocked) txn site;
          };
        ]
  in
  (* Conservation of the bank total: meaningful only once every site is
     back up and no buffered writes are parked in doubt. *)
  let conservation =
    if down_at_end <> [] || r.Db.in_doubt <> [] then []
    else
      let expected = Workload.bank_total ~accounts ~initial_balance in
      if r.Db.storage_totals = expected then []
      else
        [
          {
            oracle = Conservation;
            detail = Fmt.str "bank total %d, expected %d" r.Db.storage_totals expected;
          };
        ]
  in
  (* Durability: what left a site must be justified by its repaired
     stable log — regardless of crashes, recoveries or partitions. *)
  let durability =
    match r.Db.durability_breaches with
    | [] -> []
    | (site, txn, what) :: _ ->
        [
          {
            oracle = Durability;
            detail =
              Fmt.str "%d unjustified external action(s), e.g. txn %d at site %d: %s"
                (List.length r.Db.durability_breaches) txn site what;
          };
        ]
  in
  (* Split-brain: election epochs are globally unique per site by
     construction ([round * n_sites + (site - 1)]), so two distinct sites
     sharing a (txn, epoch) pair means two backups believed they owned
     the same election round — exactly what fencing is meant to exclude. *)
  let split_brain =
    let owner = Hashtbl.create 16 in
    let dup =
      List.find_opt
        (fun (txn, site, e) ->
          match Hashtbl.find_opt owner (txn, e) with
          | Some s -> s <> site
          | None ->
              Hashtbl.replace owner (txn, e) site;
              false)
        r.Db.directive_epochs
    in
    match dup with
    | None -> []
    | Some (txn, site, e) ->
        [
          {
            oracle = Split_brain;
            detail = Fmt.str "epoch %d of txn %d claimed by two sites, e.g. site %d" e txn site;
          };
        ]
  in
  atomicity @ progress @ conservation @ durability @ split_brain

(* The run's behavioural signature for the coverage-guided explorer:
   per-transaction fates, bucketed outcome/conflict/election counters
   and oracle near-miss flags, all read post hoc from the finished
   {!Db.result} — no new runtime counters, so pinned metrics stay
   byte-identical.  Deterministic in the run. *)
let fingerprint_of (r : Db.result) =
  let open Sim.Coverage in
  let fate_str = function
    | Db.Fate_committed -> "committed"
    | Db.Fate_aborted -> "aborted"
    | Db.Fate_pending -> "pending"
  in
  List.map (fun (txn, fate) -> feat (Printf.sprintf "fate%d" txn) (fate_str fate)) r.Db.fates
  @ [
      feat "committed" (bucket r.Db.committed);
      feat "aborted" (bucket r.Db.aborted);
      feat "pending" (bucket r.Db.pending);
      feat "deadlock-aborts" (bucket r.Db.deadlock_aborts);
      feat "in-doubt" (bucket (List.length r.Db.in_doubt));
      feat "missing-applied" (bucket (List.length r.Db.missing_applied));
      feat "contradiction" (string_of_bool r.Db.outcome_contradiction);
      feat "breaches" (bucket (List.length r.Db.durability_breaches));
      feat "epochs" (bucket (List.length r.Db.directive_epochs));
      feat "epoch-sites"
        (bucket
           (List.length
              (List.sort_uniq compare (List.map (fun (_, s, _) -> s) r.Db.directive_epochs))));
      feat "blocked-time" (bucket (int_of_float r.Db.blocked_time));
    ]
  @ List.map (fun (name, v) -> feat name (bucket v)) r.Db.metrics

let run_schedule ?(protocol = Node.Three_phase) ?(termination = Node.T_skeen) ?presumption
    ?read_only_opt ?group_commit ?sync_latency ?pipeline_depth ?(n_sites = 4) ?(until = 3000.0)
    ?(tracing = false) ?(durable_wal = true) ?detector ?fencing ~seed
    (schedule : Sim.Nemesis.schedule) =
  let crashes, recoveries, partitions, msg_faults, disk_faults, detector_faults, lease_faults =
    lower schedule
  in
  let cfg =
    Db.config ~n_sites ~protocol ~termination ?presumption ?read_only_opt ?group_commit
      ?sync_latency ?pipeline_depth ~seed ~until ~tracing ~crashes ~recoveries ~partitions
      ~msg_faults ~durable_wal ~disk_faults ~detector_faults ~lease_faults ?detector ?fencing
      ~initial_data:(Workload.bank_initial ~accounts ~initial_balance)
      ()
  in
  let r = Db.run cfg (workload_of ~seed) in
  (r, violations ~protocol ~schedule r)

type run_outcome = {
  seed : int;
  schedule : Sim.Nemesis.schedule;
  result : Db.result;
  violations : violation list;
}

let run_one ?(profile = default_profile) ?protocol ?termination ?presumption ?read_only_opt
    ?group_commit ?sync_latency ?pipeline_depth ?(n_sites = 4) ?until ?tracing ?durable_wal
    ?detector ?fencing ~k ~seed () =
  let root = Sim.Rng.create ~seed in
  ignore (Sim.Rng.split root) (* the workload stream, consumed by [workload_of] *);
  let sched_rng = Sim.Rng.split root in
  let schedule = Sim.Nemesis.generate sched_rng ~n_sites ~k profile in
  let result, violations =
    run_schedule ?protocol ?termination ?presumption ?read_only_opt ?group_commit ?sync_latency
      ?pipeline_depth ~n_sites ?until ?tracing ?durable_wal ?detector ?fencing ~seed schedule
  in
  { seed; schedule; result; violations }

(* ---- counterexample shrinking, at schedule granularity ---- *)

let remove_nth i l = List.filteri (fun j _ -> j <> i) l

let round_candidates (schedule : Sim.Nemesis.schedule) =
  let non_integral x = Float.round x <> x in
  List.concat
    (List.mapi
       (fun i fault ->
         let replace f' = List.mapi (fun j f -> if j = i then f' else f) schedule in
         match fault with
         | Sim.Nemesis.Crash { site; at } when non_integral at ->
             [ replace (Sim.Nemesis.Crash { site; at = Float.round at }) ]
         | Sim.Nemesis.Recover { site; at } when non_integral at ->
             [ replace (Sim.Nemesis.Recover { site; at = Float.round at }) ]
         | Sim.Nemesis.Partition { from_t; until_t; groups }
           when non_integral from_t || non_integral until_t ->
             [
               replace
                 (Sim.Nemesis.Partition
                    { from_t = Float.round from_t; until_t = Float.round until_t; groups });
             ]
         | Sim.Nemesis.Msg { nth; fault = Sim.World.Fault_delay d } when non_integral d ->
             [
               replace
                 (Sim.Nemesis.Msg
                    { nth; fault = Sim.World.Fault_delay (Float.max 1.0 (Float.round d)) });
             ]
         | Sim.Nemesis.Delay_window { site; from_t; until_t; extra }
           when non_integral from_t || non_integral until_t || non_integral extra ->
             [
               replace
                 (Sim.Nemesis.Delay_window
                    {
                      site;
                      from_t = Float.round from_t;
                      until_t = Float.round until_t;
                      extra = Float.max 1.0 (Float.round extra);
                    });
             ]
         | Sim.Nemesis.Stall { site; from_t; until_t }
           when non_integral from_t || non_integral until_t ->
             [
               replace
                 (Sim.Nemesis.Stall
                    { site; from_t = Float.round from_t; until_t = Float.round until_t });
             ]
         | Sim.Nemesis.Hb_loss { site; from_t; until_t }
           when non_integral from_t || non_integral until_t ->
             [
               replace
                 (Sim.Nemesis.Hb_loss
                    { site; from_t = Float.round from_t; until_t = Float.round until_t });
             ]
         | Sim.Nemesis.Acceptor_crash { site; at } when non_integral at ->
             [ replace (Sim.Nemesis.Acceptor_crash { site; at = Float.round at }) ]
         | Sim.Nemesis.Lease_fault { at } when non_integral at ->
             [ replace (Sim.Nemesis.Lease_fault { at = Float.round at }) ]
         | Sim.Nemesis.Storm { site; first; waves; period; down } ->
             (* a storm is one discrete fault, so give the shrinker a way
                inside it: fewer waves first, then a rounded start time
                (period/down stay put — rounding could break down < period) *)
             (if waves > 1 then
                [ replace (Sim.Nemesis.Storm { site; first; waves = waves - 1; period; down }) ]
              else [])
             @
             if non_integral first then
               [ replace (Sim.Nemesis.Storm { site; first = Float.round first; waves; period; down }) ]
             else []
         | _ -> [])
       schedule)

let shrink ?protocol ?termination ?presumption ?read_only_opt ?group_commit ?sync_latency
    ?pipeline_depth ?n_sites ?until ?durable_wal ?detector ?fencing ~seed ~oracle
    (schedule : Sim.Nemesis.schedule) =
  let runs = ref 0 in
  let still_fails candidate =
    incr runs;
    let _, vs =
      run_schedule ?protocol ?termination ?presumption ?read_only_opt ?group_commit ?sync_latency
        ?pipeline_depth ?n_sites ?until ?durable_wal ?detector ?fencing ~seed candidate
    in
    List.exists (fun v -> v.oracle = oracle) vs
  in
  let rec reduce current =
    let removals = List.mapi (fun i _ -> remove_nth i current) current in
    match List.find_opt still_fails removals with
    | Some smaller -> reduce smaller
    | None -> (
        match List.find_opt still_fails (round_candidates current) with
        | Some rounded -> reduce rounded
        | None -> current)
  in
  let minimal = reduce schedule in
  (minimal, !runs)

type summary = {
  protocol : Node.protocol;
  n_sites : int;
  k : int;
  seeds_run : int;
  failing : (int * violation list * Sim.Nemesis.schedule) list;
      (** (seed, violations, shrunk schedule) for each failing seed, at
          most [max_counterexamples] of them shrunk *)
  violations_by_oracle : (oracle * int) list;
  metrics : Sim.Metrics.t;
      (** per-seed registries (chaos_runs / violations_* / shrink_runs
          counters plus every {!Db.result}.run_metrics — commit
          latencies, lock waits, message counts) merged in seed order *)
}

let sweep ?(profile = default_profile) ?(protocol = Node.Three_phase) ?termination ?presumption
    ?read_only_opt ?group_commit ?sync_latency ?pipeline_depth ?(n_sites = 4) ?until ?durable_wal
    ?detector ?fencing ?(seed_base = 0) ?(max_counterexamples = 3) ?(workers = 1) ~k ~seeds () =
  (* Phase 1, Domain-sharded: one isolated Db run (own World, Metrics,
     Rng) per seed — see {!Sim.Sweep} for the isolation contract. *)
  let outcomes, metrics =
    Sim.Sweep.sweep ~workers ~seed_base ~seeds (fun ~metrics ~seed ->
        let o =
          run_one ~profile ~protocol ?termination ?presumption ?read_only_opt ?group_commit
            ?sync_latency ?pipeline_depth ~n_sites ?until ?durable_wal ?detector ?fencing ~k
            ~seed ()
        in
        Sim.Metrics.incr metrics "chaos_runs";
        List.iter
          (fun v -> Sim.Metrics.incr metrics ("violations_" ^ oracle_name v.oracle))
          o.violations;
        Sim.Metrics.merge metrics o.result.Db.run_metrics;
        o)
  in
  (* Phase 2, sequential in seed order: aggregate and shrink the first
     [max_counterexamples] failing seeds — worker-count independent. *)
  let by_oracle = Hashtbl.create 4 in
  let failing = ref [] in
  Array.iter
    (fun (o : run_outcome) ->
      if o.violations <> [] then begin
        List.iter
          (fun v ->
            Hashtbl.replace by_oracle v.oracle
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_oracle v.oracle)))
          o.violations;
        let shrunk =
          if List.length !failing < max_counterexamples then begin
            let v = List.hd o.violations in
            let minimal, runs =
              shrink ~protocol ?termination ?presumption ?read_only_opt ?group_commit
                ?sync_latency ?pipeline_depth ~n_sites ?until ?durable_wal ?detector ?fencing
                ~seed:o.seed ~oracle:v.oracle o.schedule
            in
            Sim.Metrics.incr ~by:runs metrics "shrink_runs";
            minimal
          end
          else o.schedule
        in
        failing := (o.seed, o.violations, shrunk) :: !failing
      end)
    outcomes;
  {
    protocol;
    n_sites;
    k;
    seeds_run = seeds;
    failing = List.rev !failing;
    violations_by_oracle = Hashtbl.fold (fun o n acc -> (o, n) :: acc) by_oracle [];
    metrics;
  }

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "kv chaos %s n=%d k=%d: %d seed(s), %d failing%a"
    (Node.show_protocol s.protocol) s.n_sites s.k s.seeds_run (List.length s.failing)
    Fmt.(
      list ~sep:nop (fun ppf (o, n) -> Fmt.pf ppf ", %d %s" n (oracle_name o)))
    s.violations_by_oracle
