(** Wire messages of the database commit path. *)

type t =
  | Client_begin of Txn.t
  | Prepare of { txn : int; ops : Txn.op list; participants : Core.Types.site list }
      (** phase 1: execute, lock, vote; carries the participant list so
          survivors can run the termination protocol *)
  | Vote of { txn : int; vote : [ `Yes | `No | `Read_only ] }
  | Precommit of { txn : int; epoch : int }
      (** 3PC buffer phase / termination move-up, fenced by election epoch *)
  | Precommit_ack of { txn : int }
  | Demote of { txn : int; epoch : int }  (** termination phase 1 on the abort side *)
  | Demote_ack of { txn : int }
  | Outcome of { txn : int; commit : bool }
  | Done of { txn : int }
  | Status_req of { txn : int }
  | Status_rep of { txn : int; outcome : bool option }
  | PState_req of { txn : int; epoch : int }
      (** quorum termination: a backup polls participant progress *)
  | PState_rep of { txn : int; state : [ `Working | `Prepared | `Precommitted | `Done of bool ] }
  | Heartbeat  (** detector mode: periodic evidence of life *)
  | Epoch_reject of { txn : int; epoch : int }
      (** a directive was fenced; carries the participant's current epoch *)
  | PaxAccept of { txn : int; ballot : int; commit : bool; participants : Core.Types.site list }
      (** Paxos Commit phase 2a: a leader asks the acceptors to accept *)
  | PaxAccepted of { txn : int; ballot : int; commit : bool }  (** phase 2b *)
  | PaxP1a of { txn : int; ballot : int }  (** recovery phase 1a *)
  | PaxP1b of { txn : int; ballot : int; accepted : (int * bool) option }
      (** promise; carries the highest accepted (ballot, outcome), if any *)
  | PaxReject of { txn : int; ballot : int }
      (** a higher ballot was promised; the deposed leader stands down *)
  | PaxRecover of { txn : int; participants : Core.Types.site list }
      (** a blocked participant nudges a standby acceptor into recovery *)
  | Lease_expire
      (** fault injection: standby acceptors act as if the leader lease
          lapsed, opening higher-ballot recovery while it may be alive *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val to_string : t -> string
