(** A minimal JSON tree, emitter and parser — enough for metrics export
    and bench run reports, with no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  NaN and infinities become [null]. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Inverse of {!to_string} (integers stay [Int], everything with a
    fractional part or exponent becomes [Float]).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj kvs)] looks up [key]; [None] on non-objects. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] succeed, everything else [None]. *)
