(** Deterministic pseudo-random numbers (splitmix64): every simulation is
    a pure function of its seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent generator derived from the current state, so one
    component's draws do not perturb another's.  Splitting consumes one
    draw from the parent, so successive splits yield distinct streams. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val choice : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val flip : t -> p:float -> bool
(** Bernoulli draw with success probability [p]. *)

val exponential : t -> mean:float -> float

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates; returns a fresh list. *)
