let delay ~rng ~interval ~cap ~attempt =
  let backoff = Float.min (interval *. (2.0 ** float_of_int (min attempt 12))) cap in
  let jitter = Rng.float rng (0.25 *. backoff) in
  backoff +. jitter
