(** Randomized fault-schedule generation: seeded, discrete, shrinkable.

    A schedule composes timed crashes with optional recoveries,
    protocol-step-pinned crashes (interpreted by the engine layer),
    backup-phase crashes, at most one partition window, and message-level
    faults keyed by global send index.  Generation is a pure function of
    the {!Rng.t} handed in — same stream, same schedule, byte for byte —
    and the generated crash incidents never exceed [k] concurrent
    failures (step-pinned crashes are conservatively treated as down from
    time 0). *)

type backup_phase = Move | Decide [@@deriving show, eq]

type fault =
  | Crash of { site : int; at : float }
  | Step_crash of { site : int; step : int; sent : int option }
      (** crash at the site's [step]-th protocol transition after sending
          [sent] of its messages ([None] = before the forced log write) *)
  | Backup_crash of { site : int; phase : backup_phase; sent : int }
      (** crash mid-broadcast while acting as elected backup *)
  | Recover of { site : int; at : float }
  | Partition of { from_t : float; until_t : float; groups : int list list }
  | Msg of { nth : int; fault : World.msg_fault }
  | Disk_fault of { site : int; fault : Disk.fault; nth : int }
      (** storage fault on the site's log device: [Torn]/[Corrupt] fire
          at the disk's [nth] crash, [Lost_flush] at its [nth] sync *)
  | Delay_window of { site : int; from_t : float; until_t : float; extra : float }
      (** latency spike on every message touching [site] in the window *)
  | Stall of { site : int; from_t : float; until_t : float }
      (** "GC pause": the site freezes for the window — alive but silent *)
  | Hb_loss of { site : int; from_t : float; until_t : float }
      (** detector heartbeats from [site] suppressed; protocol traffic
          untouched — the canonical false-suspicion provocation *)
  | Acceptor_crash of { site : int; at : float }
      (** timed crash aimed at a Paxos-Commit acceptor site — a [Crash]
          semantically, distinct so sweeps and the CLI family check can
          target the replicated coordinator state *)
  | Lease_fault of { at : float }
      (** leader-lease expiry: a standby acceptor opens a higher-ballot
          recovery round while the leader is still alive *)
  | Storm of { site : int; first : float; waves : int; period : float; down : float }
      (** crash-recover storm: [waves] crash/recover cycles on one site —
          wave [i] crashes at [first + i*period], recovers [down] seconds
          later ([down < period]).  One discrete fault: shrinking drops
          the whole storm, lowering expands it via {!storm_events}. *)
[@@deriving show, eq]

type schedule = fault list [@@deriving show, eq]

type profile = {
  horizon : float;
  p_step_crash : float;
  p_backup_crash : float;
  p_recover : float;
  recover_delay_min : float;
  recover_delay_max : float;
  max_steps : int;
  max_msg_faults : int;
  send_window : int;
  dup_weight : int;
  delay_weight : int;
  drop_weight : int;
  delay_max : float;
  p_partition : float;
  partition_min_len : float;
  partition_max_len : float;
  p_disk_fault : float;
      (** probability a crash incident carries a storage fault on the
          crashing site's log device; when 0 (the default) generation
          draws nothing extra from the stream, keeping schedules
          byte-identical to a disk-fault-free profile *)
  torn_weight : int;
  corrupt_weight : int;
  lost_flush_weight : int;
      (** relative weights of the three {!Disk.fault} kinds; lost
          flushes default to 0 — a lying sync violates the paper's
          stable-storage axiom, so they are ablation-only, like drops *)
  disk_sync_window : int;
  p_delay_spike : float;
      (** probability of one latency-spike window; 0 (the default) draws
          nothing from the stream — the [p_disk_fault] replay discipline *)
  spike_extra_min : float;
  spike_extra_max : float;
  p_stall : float;  (** probability of one slow-site ("GC pause") window; default 0 *)
  p_hb_loss : float;  (** probability of one heartbeat-loss burst; default 0 *)
  detector_window_min : float;
  detector_window_max : float;
  p_acceptor_crash : float;
      (** per-candidate probability an acceptor site crashes; 0 (the
          default) draws nothing from the stream — the [p_disk_fault]
          replay discipline *)
  acceptor_sites : int list;  (** candidate acceptor sites; empty disables *)
  max_acceptor_crashes : int;  (** cap per schedule — sweeps set it to the Paxos F *)
  p_lease_fault : float;  (** probability of one leader-lease expiry; default 0 *)
  p_storm : float;
      (** probability of one crash-recover storm; 0 (the default) draws
          nothing from the stream — the [p_disk_fault] replay discipline *)
  storm_waves_min : int;
  storm_waves_max : int;
  storm_period_min : float;
  storm_period_max : float;
  storm_down_frac_min : float;
  storm_down_frac_max : float;
      (** each wave's downtime is [frac * period] with [frac] drawn from
          this range; keeping [frac < 1] guarantees the site is back up
          before the next wave crashes it *)
}

val default_profile : profile
(** Crashes (timed, step-pinned, backup-pinned) with recoveries, plus
    duplicate and extra-delay message faults.  Message drops and
    partitions are OFF: both violate the paper's network assumptions, so
    they belong to ablation profiles ([drop_weight > 0],
    [p_partition > 0]), not the correctness profile. *)

val generate : Rng.t -> n_sites:int -> k:int -> profile -> schedule
(** Deterministic in the stream: crash incidents hit distinct sites and
    stay within [k] concurrent failures. *)

val interval : fault -> (float * float) option
(** Conservative down-interval of a crash fault ([None] for recoveries,
    partitions and message faults); exposed for the ≤ k bound tests.  A
    storm's interval is its whole envelope — first crash to last
    recovery — so the ≤ k bound holds even mid-storm. *)

val storm_events : fault -> (int * float * float) list
(** [(site, crash_at, recover_at)] per wave of a [Storm]; [[]] for every
    other fault.  The lowering layers (engine runtime, Paxos runtime,
    kv chaos) expand storms through this so all three agree. *)

val to_string : schedule -> string
val pp : Format.formatter -> schedule -> unit
