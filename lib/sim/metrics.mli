(** Simulation metrics: labelled counters, high-water-mark gauges,
    fixed-bucket histograms with percentile summaries, and labelled
    timers.  O(1) insert and O(1) memory per label; exportable as JSON
    for cross-run perf diffing. *)

type t

type summary = {
  count : int;
  total : float;
  min : float;
  max : float;
  mean : float;  (** exact (tracked alongside the buckets) *)
  p50 : float;
  p90 : float;
  p99 : float;  (** bucket-interpolated, within one bucket width *)
}

val create : unit -> t

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 for unknown counters. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Gauges (high-water marks)} *)

val gauge_max : t -> string -> int -> unit
(** Record [v]; the gauge keeps the maximum ever recorded. *)

type gauge
(** A pre-resolved handle to one gauge: callers on hot paths (e.g. the
    simulator's event loop recording queue depth per event) resolve the
    name once and then record through the handle with no per-call
    string-keyed lookup. *)

val gauge_handle : t -> string -> gauge
(** Resolve (creating at 0 if absent) the named gauge. *)

val gauge_record : gauge -> int -> unit
(** Same high-water-mark semantics as {!gauge_max}, O(1). *)

val gauge : t -> string -> int
(** 0 for unknown gauges. *)

val gauges : t -> (string * int) list

(** {1 Histograms} *)

val observe : t -> string -> float -> unit
(** O(1): bump the value's bucket and the exact running count/total/min/max. *)

val summarize : t -> string -> summary option
val percentile : t -> string -> float -> float option
(** [percentile t name p] for [p] in [0..100]; [None] if nothing was
    observed under [name]. *)

val histograms : t -> (string * summary) list
(** All histograms, sorted by name. *)

val buckets : t -> string -> (float * float * int) list
(** Non-empty buckets as [(lower, upper, count)]; the last bucket's upper
    bound is [infinity]. *)

(** {1 Bucket layout (exposed for tests)} *)

val n_buckets : int
val bucket_index : float -> int
val bucket_lower : int -> float
val bucket_upper : int -> float

(** {1 Labelled timers}

    A timer is identified by a label and an integer key (e.g. a
    transaction id), so many instances of the same measurement can be in
    flight at once.  [timer_stop] records the elapsed time into the
    label's histogram. *)

val timer_start : t -> string -> key:int -> at:float -> unit
val timer_stop : t -> string -> key:int -> at:float -> unit
(** No-op if no matching [timer_start] is pending. *)

val timer_discard : t -> string -> key:int -> unit

val timers_in_flight : t -> (string * int) list
(** Labels with pending [timer_start]s and how many, sorted by name. *)

val drain_timers : t -> unit
(** End-of-run accounting for interrupted measurements: every pending
    [timer_start] (e.g. a site that crashed mid-measure and never
    stopped its timer) becomes an increment of the
    [timers_in_flight_<label>] counter and is cleared, so nothing
    dangles into {!merge} and nothing silently vanishes from the
    histograms.  Idempotent. *)

(** {1 Merge (sharded sweeps)} *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counters sum, gauges keep
    the overall high-water mark, histogram bucket arrays add
    element-wise (count and total exact, min/max combined).  Both sides
    are timer-drained first ([src] without being mutated).
    Deterministic: merging the same sources in the same order always
    yields the same [dst], which is what makes a Domain-sharded sweep's
    merged output independent of the worker count. *)

val merge_all : t list -> t
(** A fresh registry with every source merged in list order. *)

(** {1 Export} *)

val is_wall : string -> bool
(** Does the name carry the reserved [wall_] prefix?  Such entries hold
    host wall-clock measurements ({!Clock}) — real time, nondeterministic
    across runs — and are excluded from determinism comparisons. *)

val to_json : ?drop_wall:bool -> t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count,total,min,max,mean,p50,p90,p99,buckets:[{le,count},...]}}}].
    [~drop_wall:true] omits every [wall_]-prefixed entry — the
    deterministic projection compared by sweep merge-equivalence
    checks. *)

val pp : Format.formatter -> t -> unit
