(** The one host clock for wall-clock measurements (bench rows, oracle
    timing, sweep throughput).  Never [Sys.time]: CPU time sums across
    {!Sweep} domains, so CPU-time histograms are garbage under parallel
    sweeps. *)

val now : unit -> float
(** Host wall-clock seconds ([Unix.gettimeofday]). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall time,
    clamped non-negative against clock steps. *)
